#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md.
#
# Usage:  scripts/run_all_experiments.sh [build_dir] [artifact_dir]
#
# Runs the full test suite, then every bench binary, capturing outputs
# under <artifact_dir>/ (default: ./experiment_outputs).  When gnuplot
# is installed, also renders the paper-style figures from the exported
# CSVs.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment_outputs}"

mkdir -p "$OUT_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" | tee "$OUT_DIR/ctest.txt" | tail -2

echo "== benches =="
export CORELITE_ARTIFACTS="$OUT_DIR"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "-- $name"
  "$b" >"$OUT_DIR/$name.txt" 2>&1
done

if command -v gnuplot >/dev/null 2>&1; then
  echo "== figures =="
  (cd "$OUT_DIR" && for gp in *.gp; do [ -f "$gp" ] && gnuplot "$gp"; done)
else
  echo "gnuplot not found; CSVs and .gp scripts are in $OUT_DIR"
fi

echo "done: outputs in $OUT_DIR"

#!/usr/bin/env bash
# Regenerate every experiment in EXPERIMENTS.md.
#
# Usage:  scripts/run_all_experiments.sh [build_dir] [artifact_dir]
#
# Runs the full test suite, then every bench binary, capturing outputs
# under <artifact_dir>/ (default: ./experiment_outputs).  When gnuplot
# is installed, also renders the paper-style figures from the exported
# CSVs.
#
# JOBS controls parallelism (default: nproc).  Bench binaries that
# understand the sweep runner (scale_flows, sweep_harness) get it as
# --jobs; the remaining single-run benches are launched JOBS at a time.
# Every bench is a self-contained deterministic process, so outputs are
# identical at any JOBS value.
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-experiment_outputs}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"

mkdir -p "$OUT_DIR"

echo "== tests =="
ctest --test-dir "$BUILD_DIR" | tee "$OUT_DIR/ctest.txt" | tail -2

echo "== benches (JOBS=$JOBS) =="
export CORELITE_ARTIFACTS="$OUT_DIR"
for b in "$BUILD_DIR"/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "-- $name"
  case "$name" in
    scale_flows|sweep_harness)
      # These parallelize internally via the sweep runner.
      "$b" --jobs "$JOBS" >"$OUT_DIR/$name.txt" 2>&1
      ;;
    *)
      "$b" >"$OUT_DIR/$name.txt" 2>&1 &
      while [ "$(jobs -rp | wc -l)" -ge "$JOBS" ]; do wait -n; done
      ;;
  esac
done
wait

echo "== seed sweep (corelite_sim --sweep) =="
"$BUILD_DIR/tools/corelite_sim" --sweep 5 --jobs "$JOBS" \
  --sweep-scenarios fig3,fig5,fig7,fig9 --sweep-mechanisms corelite,csfq \
  --quiet --json "$OUT_DIR/sweep_summary.json" --sweep-csv "$OUT_DIR/sweep_cells.csv" \
  >"$OUT_DIR/sweep.txt" 2>&1
tail -n +1 "$OUT_DIR/sweep.txt" | head -12

if command -v gnuplot >/dev/null 2>&1; then
  echo "== figures =="
  (cd "$OUT_DIR" && for gp in *.gp; do [ -f "$gp" ] && gnuplot "$gp"; done)
else
  echo "gnuplot not found; CSVs and .gp scripts are in $OUT_DIR"
fi

echo "done: outputs in $OUT_DIR"

// Example: the paper's network-dynamics experiment with CSV export.
//
// Runs the Figures 3/4 scenario (20 flows, churn at t=250 s and
// t=500 s) and writes two CSV files — per-flow allotted rate and
// cumulative service — ready for gnuplot/matplotlib, plus a console
// summary against the weighted max-min ideal.
//
// Usage:  ./build/examples/network_dynamics [output_dir]
#include <cstdio>
#include <fstream>
#include <map>
#include <string>

#include "scenario/scenario.h"
#include "stats/csv_writer.h"

namespace sc = corelite::scenario;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  std::printf("Running the network-dynamics scenario (750 s, 20 flows)...\n");
  const auto spec = sc::fig3_network_dynamics(sc::Mechanism::Corelite);
  const auto result = sc::run_paper_scenario(spec);

  // CSV export.
  std::map<std::string, const corelite::stats::TimeSeries*> rates;
  std::map<std::string, const corelite::stats::TimeSeries*> cumulative;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = result.tracker.series(static_cast<corelite::net::FlowId>(i));
    rates["flow" + std::to_string(i)] = &fs.allotted_rate;
    cumulative["flow" + std::to_string(i)] = &fs.cumulative_delivered;
  }
  const std::string rate_path = out_dir + "/corelite_rates.csv";
  const std::string cum_path = out_dir + "/corelite_cumulative.csv";
  {
    std::ofstream os{rate_path};
    corelite::stats::write_csv(os, rates, 0.0, 750.0, 1.0);
  }
  {
    std::ofstream os{cum_path};
    corelite::stats::write_csv(os, cumulative, 0.0, 750.0, 1.0);
  }
  std::printf("wrote %s and %s\n\n", rate_path.c_str(), cum_path.c_str());

  // Console summary: measured vs ideal in each phase.
  struct Phase {
    const char* name;
    double w0, w1, probe;
  };
  for (const Phase& ph : {Phase{"phase 1 (15 flows, 0-250 s)", 100, 240, 100},
                          Phase{"phase 2 (20 flows, 250-500 s)", 300, 490, 300},
                          Phase{"phase 3 (15 flows, 500-750 s)", 550, 740, 600}}) {
    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(ph.probe));
    std::printf("%s\n", ph.name);
    std::printf("  %-6s %-7s %-9s %-9s\n", "flow", "weight", "ideal", "measured");
    for (corelite::net::FlowId f : {1u, 2u, 5u, 9u, 11u, 15u, 16u}) {
      const double want = ideal.count(f) != 0 ? ideal.at(f) : 0.0;
      const double got =
          result.tracker.series(f).allotted_rate.average_over(ph.w0, ph.w1);
      std::printf("  %-6u %-7.0f %-9.2f %-9.2f\n", f, spec.weights[f - 1], want, got);
    }
  }
  std::printf("\ntotal drops across the run: %llu (of %llu delivered packets)\n",
              static_cast<unsigned long long>(result.total_data_drops),
              static_cast<unsigned long long>(result.tracker.total_delivered()));
  return 0;
}

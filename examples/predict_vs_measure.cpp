// Example: the closed-form LIMD model vs the simulator.
//
// The paper's §2.2 appeals to "both simulations and analysis".  This
// example runs the Figure-5 startup scenario and prints, side by side,
// the analysis module's closed-form predictions and the measured
// values: slow-start exit, per-flow time-to-share, equilibrium queue,
// and the steady-state marker load.
//
// Build & run:  ./build/examples/predict_vs_measure
#include <cstdio>
#include <vector>

#include "analysis/limd_model.h"
#include "scenario/scenario.h"

namespace sc = corelite::scenario;
namespace an = corelite::analysis;

int main() {
  const auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
  std::printf("Closed-form LIMD predictions vs simulation (Figure-5 scenario)\n\n");

  const auto ss = an::predict_slow_start(spec.corelite.adapt);
  std::printf("slow start: exit at %.0f pkt/s after %.0f s (%d doublings)\n", ss.exit_rate_pps,
              ss.exit_time_sec, ss.doublings);

  const auto r = sc::run_paper_scenario(spec);
  const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));

  std::printf("\n%-6s %-7s %-9s %-14s %-14s\n", "flow", "weight", "share", "t_pred[s]",
              "t_measured[s]");
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<corelite::net::FlowId>(i);
    const double share = ideal.at(f);
    const double predicted =
        an::predict_time_to_share(spec.corelite.adapt, spec.corelite.edge_epoch, share);
    double measured = spec.duration.sec();
    for (const auto& pt : r.tracker.series(f).allotted_rate.points()) {
      if (pt.v >= share) {
        measured = pt.t;
        break;
      }
    }
    std::printf("%-6zu %-7.0f %-9.2f %-14.1f %-14.1f\n", i, spec.weights[i - 1], share,
                predicted, measured);
  }

  const double q_pred = an::predict_equilibrium_qavg(spec.corelite, 500.0, spec.num_flows);
  std::printf("\nequilibrium q_avg: predicted %.1f pkts, measured mean %.1f pkts (link C1-C2)\n",
              q_pred, r.mean_q_avg.empty() ? 0.0 : r.mean_q_avg[0]);

  std::vector<double> rates;
  std::vector<double> weights{1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<corelite::net::FlowId>(i)).allotted_rate.average_over(40, 80));
  }
  const double marker_pred = an::link_marker_rate_pps(rates, weights, spec.corelite.k1);
  const double marker_meas = static_cast<double>(r.markers_injected) / spec.duration.sec();
  std::printf("marker load: predicted %.0f markers/s at equilibrium, measured %.0f/s\n",
              marker_pred, marker_meas);
  std::printf("(the measured average includes the slow-start ramp, so it sits below\n"
              "the converged prediction)\n");
  return 0;
}

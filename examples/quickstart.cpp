// Quickstart: the smallest complete Corelite deployment.
//
// Two flows with rate weights 1 and 3 share one 4 Mbps bottleneck
// (500 pkt/s at 1 KB packets).  Weighted max-min fairness says they
// should converge to ~125 and ~375 pkt/s.  This example wires the
// pieces by hand so you can see the full public API surface:
//
//   Simulator            — the discrete-event kernel
//   Network              — nodes + links + routing
//   CoreliteCoreRouter   — congestion detection + weighted marker feedback
//   CoreliteEdgeRouter   — shaping, marker injection, LIMD adaptation
//   FlowTracker          — measurement
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

using namespace corelite;

int main() {
  // 1. The simulation kernel.  Every run is deterministic in the seed.
  sim::Simulator simulator{/*seed=*/2026};

  // 2. Topology: two ingress edges -> one core router -> one sink.
  //    The core->sink link is the bottleneck.
  net::Network network{simulator};
  const net::NodeId edge_a = network.add_node("edgeA");
  const net::NodeId edge_b = network.add_node("edgeB");
  const net::NodeId core = network.add_node("core");
  const net::NodeId sink = network.add_node("sink");

  const auto fast = sim::Rate::mbps(10);
  const auto slow = sim::Rate::mbps(4);  // 500 pkt/s at 1 KB
  const auto delay = sim::TimeDelta::millis(10);
  network.connect_duplex(edge_a, core, fast, delay, /*queue=*/100);
  network.connect_duplex(edge_b, core, fast, delay, /*queue=*/100);
  network.connect_duplex(core, sink, slow, delay, /*queue=*/40);
  network.build_routes();

  // 3. QoS machinery.  The core router keeps NO per-flow state: it
  //    watches its queues and echoes markers when congestion is incipient.
  qos::CoreliteConfig config;  // paper defaults: 100 ms epochs, q_thresh 8, K1 1
  qos::CoreliteCoreRouter core_router{network, core, config};

  stats::FlowTracker tracker;
  qos::CoreliteEdgeRouter edge_router_a{network, edge_a, config, &tracker};
  qos::CoreliteEdgeRouter edge_router_b{network, edge_b, config, &tracker};

  // 4. Two flows with rate weights 1 and 3.
  net::FlowSpec flow1;
  flow1.id = 1;
  flow1.ingress = edge_a;
  flow1.egress = sink;
  flow1.weight = 1.0;
  edge_router_a.add_flow(flow1);

  net::FlowSpec flow2;
  flow2.id = 2;
  flow2.ingress = edge_b;
  flow2.egress = sink;
  flow2.weight = 3.0;
  edge_router_b.add_flow(flow2);

  // Count deliveries at the sink.
  network.node(sink).set_local_sink([&tracker](net::Packet&& p) {
    if (p.is_data()) tracker.on_delivered(p.flow);
  });

  // 5. Run for two simulated minutes.
  simulator.run_until(sim::SimTime::seconds(120));

  // 6. Report.
  std::printf("Corelite quickstart: weights 1:3 on a 500 pkt/s bottleneck\n\n");
  std::printf("%-6s %-7s %-10s %-12s %-10s\n", "flow", "weight", "expected", "allotted",
              "delivered");
  for (net::FlowId f : {1u, 2u}) {
    const auto& s = tracker.series(f);
    const double expected = f == 1 ? 125.0 : 375.0;
    std::printf("%-6u %-7.0f %-10.1f %-12.1f %llu\n", f, s.weight, expected,
                s.allotted_rate.average_over(60, 120),
                static_cast<unsigned long long>(s.delivered));
  }
  std::printf("\nbottleneck drops: %llu (Corelite adapts before queues overflow)\n",
              static_cast<unsigned long long>(
                  network.find_link(core, sink)->stats().dropped));
  std::printf("feedback markers echoed by the core: %llu\n",
              static_cast<unsigned long long>(core_router.total_feedback_sent()));
  std::printf("simulated events: %llu\n",
              static_cast<unsigned long long>(simulator.events_processed()));
  return 0;
}

// Example: Corelite vs weighted CSFQ, side by side.
//
// Reruns the paper's §4.2 startup experiment (Figures 5 and 6): ten
// flows with weights ceil(i/2) start simultaneously on the Figure-2
// topology.  For each mechanism we print the per-flow allotted rate at
// a few checkpoints against the weighted max-min ideal, plus the loss
// and convergence summary that distinguishes the two schemes.
//
// Build & run:  ./build/examples/corelite_vs_csfq
#include <cstdio>

#include "scenario/scenario.h"

namespace sc = corelite::scenario;

namespace {

void report(const char* title, const sc::ScenarioSpec& spec, const sc::ScenarioResult& result) {
  std::printf("\n=== %s ===\n", title);
  std::printf("%-6s %-7s %-9s", "flow", "weight", "ideal");
  for (double t : {10.0, 20.0, 40.0, 79.0}) std::printf("  t=%-5.0fs", t);
  std::printf("\n");

  const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto id = static_cast<corelite::net::FlowId>(i);
    const auto& series = result.tracker.series(id).allotted_rate;
    std::printf("%-6zu %-7.0f %-9.2f", i, spec.weights[i - 1], ideal.at(id));
    for (double t : {10.0, 20.0, 40.0, 79.0}) std::printf("  %7.2f", series.value_at(t));
    std::printf("\n");
  }
  std::printf("data drops (all links): %llu   feedback messages: %llu\n",
              static_cast<unsigned long long>(result.total_data_drops),
              static_cast<unsigned long long>(result.feedback_messages));
  std::printf("events processed: %llu\n",
              static_cast<unsigned long long>(result.events_processed));
}

}  // namespace

int main() {
  std::printf("Corelite vs weighted CSFQ -- paper Figures 5/6 scenario\n");
  std::printf("10 flows, weights ceil(i/2), simultaneous start, 80 s\n");

  {
    const auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    const auto result = sc::run_paper_scenario(spec);
    report("Corelite (Figure 5)", spec, result);
  }
  {
    const auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Csfq);
    const auto result = sc::run_paper_scenario(spec);
    report("Weighted CSFQ (Figure 6)", spec, result);
  }
  return 0;
}

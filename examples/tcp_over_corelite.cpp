// Example: TCP end hosts behind Corelite edge routers (paper §6's
// edge <-> end-host interaction, listed as ongoing work).
//
// Four TCP (NewReno-style) connections with rate weights 1..4 cross the
// paper's 4 Mbps bottleneck.  Each host hangs off its own ingress edge
// router running in transit-shaping mode: the edge diverts the host's
// segments into a per-flow queue drained at the Corelite-allotted rate
// b_g(f).  Consequences to observe:
//   - goodput splits ~1:2:3:4 (weighted max-min, enforced by Corelite),
//   - every in-network link is loss-free,
//   - the only drops are shaping-queue drops at the edges — the loss
//     signal TCP adapts to ("drop packets from ill behaved flows at the
//     edges of the network", paper §6).
//
// Build & run:  ./build/examples/tcp_over_corelite
#include <cstdio>
#include <memory>
#include <vector>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"
#include "transport/tcp.h"

using namespace corelite;

int main() {
  constexpr int kFlows = 4;
  constexpr double kSeconds = 120.0;

  sim::Simulator simulator{7};
  net::Network network{simulator};

  const auto core = network.add_node("core");
  const auto sink_edge = network.add_node("sinkEdge");
  const auto fast = sim::Rate::mbps(20);
  const auto slow = sim::Rate::mbps(4);  // 500 pkt/s bottleneck
  const auto d = sim::TimeDelta::millis(5);
  network.connect_duplex(core, sink_edge, slow, d, 40);

  struct Conn {
    net::NodeId host, edge, rx;
    std::unique_ptr<qos::CoreliteEdgeRouter> edge_router;
    std::unique_ptr<transport::TcpSender> tcp;
    std::unique_ptr<transport::TcpReceiver> receiver;
  };
  std::vector<Conn> conns(kFlows);
  for (int i = 0; i < kFlows; ++i) {
    conns[i].host = network.add_node("host" + std::to_string(i + 1));
    conns[i].edge = network.add_node("edge" + std::to_string(i + 1));
    conns[i].rx = network.add_node("rx" + std::to_string(i + 1));
    network.connect_duplex(conns[i].host, conns[i].edge, fast, d, 200);
    network.connect_duplex(conns[i].edge, core, fast, d, 200);
    network.connect_duplex(sink_edge, conns[i].rx, fast, d, 200);
  }
  network.build_routes();

  qos::CoreliteConfig cfg;
  qos::CoreliteCoreRouter core_router{network, core, cfg};
  stats::FlowTracker tracker;

  for (int i = 0; i < kFlows; ++i) {
    auto& c = conns[i];
    const auto flow = static_cast<net::FlowId>(i + 1);
    c.edge_router = std::make_unique<qos::CoreliteEdgeRouter>(network, c.edge, cfg, &tracker);
    net::FlowSpec fs;
    fs.id = flow;
    fs.ingress = c.edge;
    fs.egress = c.rx;
    fs.weight = static_cast<double>(i + 1);
    c.edge_router->add_transit_flow(fs);

    c.tcp = std::make_unique<transport::TcpSender>(network, c.host, c.rx, flow);
    c.receiver = std::make_unique<transport::TcpReceiver>(network, c.rx, c.host, flow);
    network.node(c.rx).set_local_sink([&c](net::Packet&& p) {
      if (p.kind == net::PacketKind::Data) c.receiver->on_segment(p);
    });
    network.node(c.host).set_local_sink([&c](net::Packet&& p) {
      if (p.kind == net::PacketKind::Ack) c.tcp->on_ack(p);
    });
    c.tcp->start(sim::SimTime::zero());
  }

  simulator.run_until(sim::SimTime::seconds(kSeconds));

  std::printf("TCP over Corelite: 4 connections, weights 1..4, 500 pkt/s bottleneck\n\n");
  std::printf("%-6s %-7s %-10s %-12s %-12s %-10s %-9s\n", "flow", "weight", "ideal",
              "goodput", "allotted", "edgeDrops", "rexmits");
  double total_goodput = 0.0;
  for (int i = 0; i < kFlows; ++i) {
    const auto flow = static_cast<net::FlowId>(i + 1);
    const double goodput =
        static_cast<double>(conns[i].receiver->delivered_in_order()) / kSeconds;
    total_goodput += goodput;
    const double ideal = 500.0 * (i + 1) / 10.0;
    std::printf("%-6d %-7d %-10.1f %-12.1f %-12.1f %-10llu %-9llu\n", i + 1, i + 1, ideal,
                goodput, tracker.series(flow).allotted_rate.average_over(60, kSeconds),
                static_cast<unsigned long long>(conns[i].edge_router->transit_drops()),
                static_cast<unsigned long long>(conns[i].tcp->retransmits()));
  }

  std::uint64_t network_drops = 0;
  for (const auto& link : network.links()) network_drops += link->stats().dropped;
  std::printf("\naggregate goodput: %.1f pkt/s (bottleneck 500)\n", total_goodput);
  std::printf("in-network drops: %llu (Corelite keeps the core loss-free;\n",
              static_cast<unsigned long long>(network_drops));
  std::printf("all loss happens in the edge shaping queues, where TCP sees it)\n");
  return 0;
}

// Example: Corelite on your own topology.
//
// Everything in the library composes outside the paper's Figure-2
// setup.  Here: a "parking lot" of three cascaded bottlenecks with
// *different* capacities (6 / 4 / 2 Mbps), five flows with mixed
// weights and paths, the weighted max-min water-filling oracle applied
// to the custom topology, and a packet trace of marker/feedback
// activity on the tightest link.
//
//   e1 ─┐                               ┌─ x1
//   e2 ─┤                               ├─ x2
//   e3 ─┼─ A ══6M══ B ══4M══ C ══2M══ D ┼─ x3
//   e4 ─┤                               ├─ x4
//   e5 ─┘                               └─ x5
//
//   flow 1 (w=1): A -> D   (all three bottlenecks)
//   flow 2 (w=2): A -> B
//   flow 3 (w=1): B -> C
//   flow 4 (w=2): C -> D
//   flow 5 (w=1): B -> D   (two bottlenecks)
//
// Build & run:  ./build/examples/custom_topology
#include <cstdio>
#include <memory>
#include <sstream>
#include <vector>

#include "net/network.h"
#include "net/tracer.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "stats/flow_tracker.h"

using namespace corelite;

int main() {
  sim::Simulator simulator{12};
  net::Network network{simulator};

  // Core chain with decreasing capacity.
  const auto A = network.add_node("A");
  const auto B = network.add_node("B");
  const auto C = network.add_node("C");
  const auto D = network.add_node("D");
  const auto d = sim::TimeDelta::millis(10);
  network.connect_duplex(A, B, sim::Rate::mbps(6), d, 40);  // 750 pkt/s
  network.connect_duplex(B, C, sim::Rate::mbps(4), d, 40);  // 500 pkt/s
  network.connect_duplex(C, D, sim::Rate::mbps(2), d, 40);  // 250 pkt/s

  // Flows: (ingress core, egress core, weight).
  struct Spec {
    net::NodeId in_core, out_core;
    double weight;
  };
  const std::vector<Spec> defs = {
      {A, D, 1.0}, {A, B, 2.0}, {B, C, 1.0}, {C, D, 2.0}, {B, D, 1.0}};

  qos::CoreliteConfig cfg;
  stats::FlowTracker tracker;
  std::vector<std::unique_ptr<qos::CoreliteEdgeRouter>> edges;
  std::vector<net::NodeId> ingresses;
  std::vector<net::NodeId> egresses;

  for (std::size_t i = 0; i < defs.size(); ++i) {
    const auto ingress = network.add_node("e" + std::to_string(i + 1));
    const auto egress = network.add_node("x" + std::to_string(i + 1));
    network.connect_duplex(ingress, defs[i].in_core, sim::Rate::mbps(10), d, 100);
    network.connect_duplex(defs[i].out_core, egress, sim::Rate::mbps(10), d, 100);
    ingresses.push_back(ingress);
    egresses.push_back(egress);
  }
  network.build_routes();

  // Core routers on every core node; edge router per ingress.
  std::vector<std::unique_ptr<qos::CoreliteCoreRouter>> cores;
  for (net::NodeId c : {A, B, C, D}) {
    cores.push_back(std::make_unique<qos::CoreliteCoreRouter>(network, c, cfg));
  }
  for (std::size_t i = 0; i < defs.size(); ++i) {
    const auto ingress = ingresses[i];
    auto er = std::make_unique<qos::CoreliteEdgeRouter>(network, ingress, cfg, &tracker);
    net::FlowSpec fs;
    fs.id = static_cast<net::FlowId>(i + 1);
    fs.ingress = ingress;
    fs.egress = egresses[i];
    fs.weight = defs[i].weight;
    er->add_flow(fs);
    edges.push_back(std::move(er));
    network.node(egresses[i]).set_local_sink([&tracker](net::Packet&& p) {
      if (p.is_data()) tracker.on_delivered(p.flow);
    });
  }

  // Trace marker/feedback activity on the tightest link for 2 seconds.
  net::PacketTracer tracer;
  tracer.set_kind_filter(net::PacketKind::Marker);
  tracer.set_memory_limit(5);
  tracer.attach(*network.find_link(C, D));

  simulator.run_until(sim::SimTime::seconds(120));

  // Oracle: link capacities in pkt/s, flow paths as link indices.
  const std::vector<double> caps = {750.0, 500.0, 250.0};
  std::vector<stats::MaxMinFlow> oracle_flows = {
      {1, 1.0, {0, 1, 2}}, {2, 2.0, {0}}, {3, 1.0, {1}}, {4, 2.0, {2}}, {5, 1.0, {1, 2}}};
  const auto ideal = stats::weighted_max_min(caps, oracle_flows);

  std::printf("Custom parking-lot topology: bottlenecks 750/500/250 pkt/s\n\n");
  std::printf("%-6s %-7s %-12s %-9s %-9s\n", "flow", "weight", "path", "ideal", "measured");
  const char* paths[] = {"A-B-C-D", "A-B", "B-C", "C-D", "B-C-D"};
  for (std::size_t i = 1; i <= defs.size(); ++i) {
    const auto f = static_cast<net::FlowId>(i);
    std::printf("%-6zu %-7.0f %-12s %-9.2f %-9.2f\n", i, defs[i - 1].weight, paths[i - 1],
                ideal.at(f), tracker.series(f).allotted_rate.average_over(60, 120));
  }

  std::uint64_t drops = 0;
  for (const auto& link : network.links()) drops += link->stats().dropped;
  std::printf("\nnetwork drops: %llu\n", static_cast<unsigned long long>(drops));

  std::printf("\nfirst marker events on the 250 pkt/s link (C->D):\n");
  for (const auto& rec : tracer.records()) {
    std::printf("  %s\n", net::format_trace_record(rec).c_str());
  }
  std::printf("(markers observed on C->D: %llu)\n",
              static_cast<unsigned long long>(tracer.total_events()));
  return 0;
}

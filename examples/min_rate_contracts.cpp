// Example: per-flow minimum rate contracts (the Corelite extension the
// paper's conclusion mentions: "markers are used to ... enable it
// maintain the allowed transmission rate of individual flows").
//
// Ten flows share the Figure-2 topology.  Flow 1 (weight 1) buys a
// 120 pkt/s minimum-rate contract — far above its weighted share of
// ~16.7 pkt/s.  The edge router never throttles it below the floor;
// the remaining capacity is shared among the other flows in proportion
// to their weights, which the run demonstrates quantitatively.
//
// Build & run:  ./build/examples/min_rate_contracts
#include <cstdio>

#include "scenario/scenario.h"

namespace sc = corelite::scenario;

namespace {

void report(const char* title, const sc::ScenarioSpec& spec, const sc::ScenarioResult& r) {
  std::printf("%s\n", title);
  std::printf("  %-6s %-7s %-10s %-11s %-9s\n", "flow", "weight", "contract", "steady",
              "min(t>5)");
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<corelite::net::FlowId>(i);
    const auto& fs = r.tracker.series(f);
    const double contract = i <= spec.min_rates.size() ? spec.min_rates[i - 1] : 0.0;
    std::printf("  %-6zu %-7.0f %-10.0f %-11.1f %-9.1f\n", i, spec.weights[i - 1], contract,
                fs.allotted_rate.average_over(40, 80), fs.allotted_rate.min_over(5, 80));
  }
  std::printf("  drops: %llu\n\n",
              static_cast<unsigned long long>(r.total_data_drops));
}

}  // namespace

int main() {
  std::printf("Minimum rate contracts on the Figure-5 population (weights ceil(i/2))\n\n");

  // Baseline: pure weighted fairness, no contracts.
  auto base = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
  report("Without contracts (pure weighted max-min):", base, sc::run_paper_scenario(base));

  // Flow 1 buys a 120 pkt/s floor.
  auto contracted = base;
  contracted.min_rates.assign(contracted.num_flows, 0.0);
  contracted.min_rates[0] = 120.0;
  report("With a 120 pkt/s contract for flow 1:", contracted,
         sc::run_paper_scenario(contracted));

  std::printf(
      "Expected shape: flow 1 never falls below 120 pkt/s (it keeps the\n"
      "contract plus its weighted share of the excess), while the other\n"
      "flows split the remaining ~380 pkt/s in proportion to their weights\n"
      "(~13 pkt/s per unit weight instead of ~16.7).  Only out-of-profile\n"
      "traffic is marked, so the contracted flow does not skew the cores'\n"
      "running-average rate.\n");
  return 0;
}

// Unit tests for the queue disciplines: drop-tail capacity semantics,
// control-packet bypass, FIFO order, and RED's drop ramp.
#include <gtest/gtest.h>

#include "net/queue.h"
#include "sim/random.h"

namespace corelite::net {
namespace {

Packet data_packet(FlowId flow = 1, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.kind = PacketKind::Data;
  p.flow = flow;
  p.size = sim::DataSize::kilobytes(1);
  return p;
}

Packet marker_packet(FlowId flow = 1) {
  Packet p;
  p.kind = PacketKind::Marker;
  p.flow = flow;
  p.size = sim::DataSize::zero();
  return p;
}

const sim::SimTime t0 = sim::SimTime::zero();

TEST(DropTailQueue, AcceptsUpToCapacity) {
  DropTailQueue q{3};
  EXPECT_TRUE(q.enqueue(data_packet(), t0));
  EXPECT_TRUE(q.enqueue(data_packet(), t0));
  EXPECT_TRUE(q.enqueue(data_packet(), t0));
  EXPECT_EQ(q.data_packet_count(), 3u);
  EXPECT_FALSE(q.enqueue(data_packet(), t0));  // tail drop
  EXPECT_EQ(q.data_packet_count(), 3u);
}

TEST(DropTailQueue, ControlPacketsBypassCapacity) {
  DropTailQueue q{1};
  EXPECT_TRUE(q.enqueue(data_packet(), t0));
  // Queue is "full" for data, but markers (piggybacked headers) always fit
  // and never count toward the data length.
  EXPECT_TRUE(q.enqueue(marker_packet(), t0));
  EXPECT_TRUE(q.enqueue(marker_packet(), t0));
  EXPECT_EQ(q.data_packet_count(), 1u);
  EXPECT_FALSE(q.enqueue(data_packet(), t0));
}

TEST(DropTailQueue, FifoOrderPreserved) {
  DropTailQueue q{10};
  for (std::uint64_t i = 0; i < 5; ++i) ASSERT_TRUE(q.enqueue(data_packet(1, i), t0));
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->uid, i);
  }
  EXPECT_TRUE(q.empty());
}

TEST(DropTailQueue, InterleavedControlKeepsRelativeOrder) {
  DropTailQueue q{10};
  ASSERT_TRUE(q.enqueue(data_packet(1, 1), t0));
  ASSERT_TRUE(q.enqueue(marker_packet(7), t0));
  ASSERT_TRUE(q.enqueue(data_packet(1, 2), t0));
  EXPECT_EQ(q.dequeue(t0)->uid, 1u);
  EXPECT_EQ(q.dequeue(t0)->kind, PacketKind::Marker);
  EXPECT_EQ(q.dequeue(t0)->uid, 2u);
}

TEST(DropTailQueue, DequeueEmptyReturnsNullopt) {
  DropTailQueue q{2};
  EXPECT_FALSE(q.dequeue(t0).has_value());
}

TEST(DropTailQueue, DataCountTracksDequeues) {
  DropTailQueue q{5};
  ASSERT_TRUE(q.enqueue(data_packet(), t0));
  ASSERT_TRUE(q.enqueue(marker_packet(), t0));
  ASSERT_TRUE(q.enqueue(data_packet(), t0));
  EXPECT_EQ(q.data_packet_count(), 2u);
  (void)q.dequeue(t0);  // data
  EXPECT_EQ(q.data_packet_count(), 1u);
  (void)q.dequeue(t0);  // marker
  EXPECT_EQ(q.data_packet_count(), 1u);
  (void)q.dequeue(t0);  // data
  EXPECT_EQ(q.data_packet_count(), 0u);
}

// ---------------------------------------------------------------------------
// RED

TEST(RedQueue, NoDropsBelowMinThresh) {
  sim::Rng rng{1};
  RedQueue::Config cfg;
  cfg.capacity_data_packets = 40;
  cfg.min_thresh = 5.0;
  cfg.max_thresh = 15.0;
  RedQueue q{cfg, rng};
  // Keep the instantaneous queue at 0-1: average stays ~0, nothing drops.
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(q.enqueue(data_packet(), sim::SimTime::seconds(i * 0.01)));
    (void)q.dequeue(sim::SimTime::seconds(i * 0.01));
  }
}

TEST(RedQueue, DropsEverythingAtCapacity) {
  sim::Rng rng{1};
  RedQueue::Config cfg;
  cfg.capacity_data_packets = 10;
  cfg.min_thresh = 2.0;
  cfg.max_thresh = 8.0;
  RedQueue q{cfg, rng};
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    if (q.enqueue(data_packet(), t0)) ++accepted;
  }
  EXPECT_LE(accepted, 10);
}

TEST(RedQueue, RandomDropsBetweenThresholds) {
  sim::Rng rng{1};
  RedQueue::Config cfg;
  cfg.capacity_data_packets = 1000;
  cfg.min_thresh = 5.0;
  cfg.max_thresh = 50.0;
  cfg.max_drop_prob = 0.5;
  cfg.ewma_weight = 0.5;  // fast average so the test converges quickly
  RedQueue q{cfg, rng};
  // Fill without ever dequeuing: the average chases the growing queue;
  // once it crosses min_thresh some (but not all) packets must drop.
  int dropped = 0;
  for (int i = 0; i < 200; ++i) {
    if (!q.enqueue(data_packet(), t0)) ++dropped;
  }
  EXPECT_GT(dropped, 0);
  EXPECT_LT(dropped, 200);
}

TEST(RedQueue, ControlPacketsNeverDropped) {
  sim::Rng rng{1};
  RedQueue::Config cfg;
  cfg.capacity_data_packets = 2;
  RedQueue q{cfg, rng};
  ASSERT_TRUE(q.enqueue(data_packet(), t0));
  ASSERT_TRUE(q.enqueue(data_packet(), t0));
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(q.enqueue(marker_packet(), t0));
}

TEST(RedQueue, IdleAgingDecaysAverage) {
  sim::Rng rng{1};
  RedQueue::Config cfg;
  cfg.capacity_data_packets = 100;
  cfg.ewma_weight = 0.2;
  cfg.typical_service_time = sim::TimeDelta::millis(1);
  RedQueue q{cfg, rng};
  // Build up an average.
  for (int i = 0; i < 30; ++i) (void)q.enqueue(data_packet(), t0);
  const double avg_loaded = q.average_queue();
  EXPECT_GT(avg_loaded, 1.0);
  // Drain completely, then arrive much later: the average must have aged.
  while (q.dequeue(sim::SimTime::seconds(1)).has_value()) {
  }
  (void)q.enqueue(data_packet(), sim::SimTime::seconds(10));
  EXPECT_LT(q.average_queue(), avg_loaded * 0.1);
}

}  // namespace
}  // namespace corelite::net

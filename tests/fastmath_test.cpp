// DecayCache (sim/fastmath.h) correctness.
//
// The whole point of the cache is that it is NOT an approximation: a
// hit returns a value libm itself produced for the same argument bit
// pattern, so every test here asserts bit equality (via bit_cast), not
// tolerance.  Covers randomized domains, adversarial inputs (denormals,
// zeros, infinities, repeats), eviction under collision pressure, the
// CORELITE_NO_FASTMATH escape hatch, and — the acceptance criterion —
// that a full scenario run produces the identical packet-level digest
// with the cache on and off.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <random>
#include <thread>
#include <vector>

#include "scenario/scenario.h"
#include "sim/fastmath.h"
#include "sim/hotpath.h"

namespace corelite {
namespace {

using sim::fastmath::DecayCache;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

TEST(DecayCache, RandomizedExpBitEquality) {
  DecayCache cache;
  std::mt19937_64 eng{12345};
  // The estimator decay domain: exp(-T/K) with T/K spanning tiny gaps
  // to many averaging windows.
  std::uniform_real_distribution<double> arg{-50.0, 0.0};
  for (int i = 0; i < 20000; ++i) {
    const double x = arg(eng);
    const double miss = cache.exp(x);  // first sighting fills from libm
    const double hit = cache.exp(x);   // second is served from the slot
    EXPECT_EQ(bits(miss), bits(std::exp(x)));
    EXPECT_EQ(bits(hit), bits(miss));
  }
}

TEST(DecayCache, RandomizedPowBitEquality) {
  DecayCache cache;
  std::mt19937_64 eng{54321};
  // The RED-family idle decay domain: (1-w)^m, w small, m an idle-slot
  // count (integral-valued but carried as double).
  std::uniform_real_distribution<double> base{0.9, 1.0};
  std::uniform_int_distribution<int> m{0, 100000};
  for (int i = 0; i < 20000; ++i) {
    const double b = base(eng);
    const double e = static_cast<double>(m(eng));
    const double miss = cache.pow(b, e);
    const double hit = cache.pow(b, e);
    EXPECT_EQ(bits(miss), bits(std::pow(b, e)));
    EXPECT_EQ(bits(hit), bits(miss));
  }
}

TEST(DecayCache, AdversarialExpArguments) {
  DecayCache cache;
  const double cases[] = {
      0.0,
      -0.0,  // distinct bit pattern from +0.0: must not hit the prefilled slot
      std::numeric_limits<double>::denorm_min(),
      -std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::min(),
      -std::numeric_limits<double>::min(),
      -745.5,  // underflows exp to exactly +0.0
      -std::numeric_limits<double>::max(),
      -std::numeric_limits<double>::infinity(),  // exp == +0.0
      std::numeric_limits<double>::infinity(),   // exp == +inf
      1.0e-300,
  };
  for (const double x : cases) {
    EXPECT_EQ(bits(cache.exp(x)), bits(std::exp(x))) << "x=" << x;
    // Immediately repeated: served from the slot, same bits.
    EXPECT_EQ(bits(cache.exp(x)), bits(std::exp(x))) << "x=" << x;
  }
}

TEST(DecayCache, PrefilledZeroSlotIsExact) {
  // Slots are initialized to (key +0.0 -> 1.0); exp(0) and pow(0,0)
  // are exactly 1.0 in IEEE754, so even the very first +0.0 lookup
  // (a "hit" on the prefill) is bit-correct.
  DecayCache cache;
  EXPECT_EQ(bits(cache.exp(0.0)), bits(1.0));
  EXPECT_EQ(bits(cache.pow(0.0, 0.0)), bits(1.0));
}

TEST(DecayCache, EvictionUnderCollisionPressureStaysBitExact) {
  // 4x more distinct keys than slots: by pigeonhole every slot sees
  // collisions and overwrites.  Two full passes so pass 2 re-misses
  // evicted keys and refills — correctness must survive any mix of
  // hit/miss/evict.
  DecayCache cache;
  const std::size_t n = DecayCache::slots() * 4;
  std::mt19937_64 eng{99};
  std::uniform_real_distribution<double> arg{-30.0, 0.0};
  std::vector<double> xs(n);
  for (auto& x : xs) x = arg(eng);
  for (int pass = 0; pass < 2; ++pass) {
    for (const double x : xs) {
      ASSERT_EQ(bits(cache.exp(x)), bits(std::exp(x)));
    }
  }
}

TEST(DecayCache, RepeatedArgumentHitsCountInHotPathCounters) {
  // Fresh thread = fresh thread-local cache and counter block.
  std::uint64_t calls = 0;
  std::uint64_t hits = 0;
  std::thread t{[&] {
    sim::reset_hotpath_counters();
    for (int i = 0; i < 5; ++i) (void)sim::fastmath::cached_exp(-1.25);
    calls = sim::hotpath_counters().exp_calls;
    hits = sim::hotpath_counters().exp_cache_hits;
  }};
  t.join();
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(hits, 4u);  // first call fills, the other four hit
}

TEST(DecayCache, EscapeHatchDisablesCachingButNotCorrectness) {
  // The env var is read when a thread's cache is constructed, so run
  // in a fresh thread to get a cache that saw the variable.
  ::setenv("CORELITE_NO_FASTMATH", "1", 1);
  bool enabled = true;
  std::uint64_t hits = 999;
  std::uint64_t value_bits = 0;
  std::thread t{[&] {
    sim::reset_hotpath_counters();
    enabled = sim::fastmath::decay_cache().enabled();
    double v = 0.0;
    for (int i = 0; i < 5; ++i) v = sim::fastmath::cached_exp(-1.25);
    value_bits = bits(v);
    hits = sim::hotpath_counters().exp_cache_hits;
  }};
  t.join();
  ::unsetenv("CORELITE_NO_FASTMATH");
  EXPECT_FALSE(enabled);
  EXPECT_EQ(hits, 0u);  // every call routed to libm
  EXPECT_EQ(value_bits, bits(std::exp(-1.25)));
}

// ---------------------------------------------------------------------------
// Whole-scenario equivalence: the digest of a full CSFQ run (the heavy
// exp consumer) must be identical with the cache enabled and disabled.

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t checksum = 1469598103934665603ULL;
};

Fingerprint run_csfq_fig5() {
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Csfq);
  spec.seed = 42;
  const auto r = scenario::run_paper_scenario(spec);
  Fingerprint fp;
  fp.events = r.events_processed;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    fp.checksum = fnv1a(fp.checksum, i);
    fp.checksum = fnv1a(fp.checksum, fs.delivered);
    fp.checksum = fnv1a(fp.checksum, fs.dropped);
  }
  return fp;
}

TEST(DecayCacheGolden, ScenarioDigestIdenticalCacheOnAndOff) {
  Fingerprint with_cache;
  Fingerprint without_cache;
  {
    // Fresh thread so the cache is constructed with the default
    // (enabled) environment regardless of test ordering.
    std::thread t{[&] { with_cache = run_csfq_fig5(); }};
    t.join();
  }
  ::setenv("CORELITE_NO_FASTMATH", "1", 1);
  {
    std::thread t{[&] { without_cache = run_csfq_fig5(); }};
    t.join();
  }
  ::unsetenv("CORELITE_NO_FASTMATH");
  EXPECT_EQ(with_cache.events, without_cache.events);
  EXPECT_EQ(with_cache.checksum, without_cache.checksum);
}

}  // namespace
}  // namespace corelite

// Metrics-registry tests: registration semantics, the off-by-default
// guarantee, counter/gauge/histogram accumulation, log-bucket math, and
// cross-thread flush + merge.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace corelite::telemetry {
namespace {

// Each test enables telemetry and starts from zeroed values; the suite
// leaves the process-global switch off, matching the binaries' default.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset_metrics();
  }
  void TearDown() override {
    reset_metrics();
    set_enabled(false);
  }

  static std::optional<MetricSnapshot> find(const std::string& name) {
    for (auto& m : metrics_snapshot()) {
      if (m.name == name) return m;
    }
    return std::nullopt;
  }
};

TEST_F(MetricsTest, RegistrationIsIdempotentByName) {
  const MetricId a = register_metric("test.reg.counter", MetricKind::Counter);
  const MetricId b = register_metric("test.reg.counter", MetricKind::Counter);
  ASSERT_NE(a, kInvalidMetric);
  EXPECT_EQ(a, b);
  // Same name, different kind: rejected rather than silently aliased.
  EXPECT_EQ(register_metric("test.reg.counter", MetricKind::Gauge), kInvalidMetric);
}

TEST_F(MetricsTest, DisabledBumpRecordsNothing) {
  const Counter c{"test.off.counter"};
  set_enabled(false);
  c.add(100);
  set_enabled(true);
  const auto snap = find("test.off.counter");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->count, 0u);
  // A default-constructed (unregistered) handle is a safe no-op too.
  const Counter unbound;
  unbound.add();
  EXPECT_EQ(unbound.id(), kInvalidMetric);
}

TEST_F(MetricsTest, CounterAccumulates) {
  const Counter c{"test.counter"};
  c.add();
  c.add(9);
  const auto snap = find("test.counter");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->kind, MetricKind::Counter);
  EXPECT_EQ(snap->count, 10u);
}

TEST_F(MetricsTest, GaugeTracksMinMaxLastAndMean) {
  const Gauge g{"test.gauge"};
  g.set(4.0);
  g.set(1.0);
  g.set(7.0);
  const auto snap = find("test.gauge");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->kind, MetricKind::Gauge);
  EXPECT_EQ(snap->count, 3u);
  EXPECT_DOUBLE_EQ(snap->min, 1.0);
  EXPECT_DOUBLE_EQ(snap->max, 7.0);
  EXPECT_DOUBLE_EQ(snap->last, 7.0);
  EXPECT_DOUBLE_EQ(snap->mean(), 4.0);
}

TEST_F(MetricsTest, HistogramBucketMath) {
  // Bucket 0 holds v < 1; bucket i holds [2^(i-1), 2^i).
  EXPECT_EQ(histogram_bucket(0.0), 0u);
  EXPECT_EQ(histogram_bucket(0.5), 0u);
  EXPECT_EQ(histogram_bucket(1.0), 1u);
  EXPECT_EQ(histogram_bucket(1.9), 1u);
  EXPECT_EQ(histogram_bucket(2.0), 2u);
  EXPECT_EQ(histogram_bucket(3.0), 2u);
  EXPECT_EQ(histogram_bucket(4.0), 3u);
  EXPECT_EQ(histogram_bucket(1024.0), 11u);
  EXPECT_DOUBLE_EQ(histogram_bucket_floor(0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_floor(1), 1.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_floor(2), 2.0);
  EXPECT_DOUBLE_EQ(histogram_bucket_floor(11), 1024.0);
}

TEST_F(MetricsTest, HistogramObservationsLandInBuckets) {
  const Histogram h{"test.hist"};
  h.observe(0.2);
  h.observe(3.0);
  h.observe(3.5);
  const auto snap = find("test.hist");
  ASSERT_TRUE(snap.has_value());
  EXPECT_EQ(snap->kind, MetricKind::Histogram);
  EXPECT_EQ(snap->count, 3u);
  EXPECT_EQ(snap->buckets[0], 1u);
  EXPECT_EQ(snap->buckets[2], 2u);
  EXPECT_DOUBLE_EQ(snap->min, 0.2);
  EXPECT_DOUBLE_EQ(snap->max, 3.5);
  EXPECT_DOUBLE_EQ(snap->sum, 6.7);
}

TEST_F(MetricsTest, ThreadBlocksMergeOnFlush) {
  const Counter c{"test.threads.counter"};
  const Histogram h{"test.threads.hist"};
  c.add(5);  // main thread's unflushed block counts too
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&c, &h] {
      for (int i = 0; i < 100; ++i) c.add();
      h.observe(2.0);
      flush_thread_metrics();  // the sweep runner does this per run
    });
  }
  for (auto& w : workers) w.join();
  const auto counter = find("test.threads.counter");
  const auto hist = find("test.threads.hist");
  ASSERT_TRUE(counter.has_value());
  ASSERT_TRUE(hist.has_value());
  EXPECT_EQ(counter->count, 405u);
  EXPECT_EQ(hist->count, 4u);
  EXPECT_EQ(hist->buckets[2], 4u);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  const Counter c{"test.reset.counter"};
  c.add(3);
  reset_metrics();
  const auto snap = find("test.reset.counter");
  ASSERT_TRUE(snap.has_value());  // the name survives
  EXPECT_EQ(snap->count, 0u);
  c.add();  // the old handle still works
  EXPECT_EQ(find("test.reset.counter")->count, 1u);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  (void)register_metric("test.zz", MetricKind::Counter);
  (void)register_metric("test.aa", MetricKind::Counter);
  const auto snaps = metrics_snapshot();
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_LT(snaps[i - 1].name, snaps[i].name);
  }
}

}  // namespace
}  // namespace corelite::telemetry

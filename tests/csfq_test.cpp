// Unit and small-network tests for the weighted CSFQ baseline:
// exponential rate estimation, fair-share (alpha) estimation, the
// probabilistic dropper, relabeling, and loss notification.
#include <gtest/gtest.h>

#include <cmath>

#include "csfq/core.h"
#include "csfq/edge_router.h"
#include "csfq/rate_estimator.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::csfq {
namespace {

sim::SimTime at(double t) { return sim::SimTime::seconds(t); }

// ---------------------------------------------------------------------------
// ExponentialRateEstimator

TEST(RateEstimator, ConvergesToArrivalRate) {
  ExponentialRateEstimator est{sim::TimeDelta::millis(100)};
  // 200 packets/s for 2 s (20 averaging constants).
  for (int i = 0; i < 400; ++i) est.on_arrival(1.0, at(i * 0.005));
  EXPECT_NEAR(est.rate(), 200.0, 10.0);
}

TEST(RateEstimator, TracksRateChange) {
  ExponentialRateEstimator est{sim::TimeDelta::millis(100)};
  for (int i = 0; i < 200; ++i) est.on_arrival(1.0, at(i * 0.005));  // 200 pps to t=1
  for (int i = 0; i < 50; ++i) est.on_arrival(1.0, at(1.0 + i * 0.02));  // 50 pps to t=2
  EXPECT_NEAR(est.rate(), 50.0, 5.0);
}

TEST(RateEstimator, InsensitiveToAveragingWindowChoice) {
  // Same arrival process, different K: both converge to the same rate.
  ExponentialRateEstimator fast{sim::TimeDelta::millis(50)};
  ExponentialRateEstimator slow{sim::TimeDelta::millis(500)};
  for (int i = 0; i < 2000; ++i) {
    fast.on_arrival(1.0, at(i * 0.01));
    slow.on_arrival(1.0, at(i * 0.01));
  }
  EXPECT_NEAR(fast.rate(), 100.0, 5.0);
  EXPECT_NEAR(slow.rate(), 100.0, 5.0);
}

TEST(RateEstimator, ResetClearsState) {
  ExponentialRateEstimator est{sim::TimeDelta::millis(100)};
  est.on_arrival(1.0, at(0.0));
  est.reset();
  EXPECT_FALSE(est.started());
  EXPECT_DOUBLE_EQ(est.rate(), 0.0);
}

TEST(RateEstimator, SimultaneousArrivalsDoNotDivideByZero) {
  ExponentialRateEstimator est{sim::TimeDelta::millis(100)};
  est.on_arrival(1.0, at(1.0));
  est.on_arrival(1.0, at(1.0));
  est.on_arrival(1.0, at(1.0));
  EXPECT_TRUE(std::isfinite(est.rate()));
  EXPECT_GT(est.rate(), 0.0);
}

// ---------------------------------------------------------------------------
// CsfqLinkPolicy

net::Packet labeled_packet(double label, net::FlowId flow = 1) {
  net::Packet p;
  p.kind = net::PacketKind::Data;
  p.flow = flow;
  p.size = sim::DataSize::kilobytes(1);
  p.label = label;
  return p;
}

TEST(CsfqPolicy, NoDropsWhenUncongested) {
  sim::Rng rng{1};
  CsfqConfig cfg;
  CsfqLinkPolicy policy{cfg, /*capacity_pps=*/500.0, rng};
  // 100 pkt/s offered on a 500 pkt/s link: everything passes.
  for (int i = 0; i < 300; ++i) {
    auto p = labeled_packet(100.0);
    EXPECT_TRUE(policy.admit(p, at(i * 0.01)));
  }
  EXPECT_FALSE(policy.congested());
  EXPECT_EQ(policy.drops(), 0u);
}

TEST(CsfqPolicy, AlphaTracksMaxLabelWhenUncongested) {
  sim::Rng rng{1};
  CsfqConfig cfg;
  CsfqLinkPolicy policy{cfg, 500.0, rng};
  for (int i = 0; i < 300; ++i) {
    auto p = labeled_packet(i % 2 == 0 ? 40.0 : 90.0);
    (void)policy.admit(p, at(i * 0.01));
  }
  EXPECT_NEAR(policy.alpha(), 90.0, 1e-9);
}

TEST(CsfqPolicy, OverloadedLinkDropsProportionally) {
  sim::Rng rng{3};
  CsfqConfig cfg;
  CsfqLinkPolicy policy{cfg, 500.0, rng};
  // Two flows, labels 300 and 100 (normalized), aggregate 1000 pkt/s on a
  // 500 pkt/s link.  After alpha converges, flow 1 should be capped near
  // alpha/label_1 acceptance and flow 2 near min(1, alpha/label_2).
  int accept1 = 0;
  int accept2 = 0;
  int sent1 = 0;
  int sent2 = 0;
  double t = 0.0;
  for (int i = 0; i < 20000; ++i) {
    t += 0.001;  // 1000 pkt/s aggregate
    const bool flow1 = (i % 4) != 3;  // 750 pps with label 300... mix 3:1
    auto p = flow1 ? labeled_packet(300.0, 1) : labeled_packet(100.0, 2);
    const bool ok = policy.admit(p, at(t));
    if (flow1) {
      ++sent1;
      accept1 += ok;
    } else {
      ++sent2;
      accept2 += ok;
    }
  }
  EXPECT_TRUE(policy.congested());
  EXPECT_GT(policy.drops(), 0u);
  const double frac1 = static_cast<double>(accept1) / sent1;
  const double frac2 = static_cast<double>(accept2) / sent2;
  // The higher-labelled flow must lose a larger fraction.
  EXPECT_LT(frac1, frac2);
}

TEST(CsfqPolicy, RelabelsToMinLabelAlpha) {
  sim::Rng rng{1};
  CsfqConfig cfg;
  CsfqLinkPolicy policy{cfg, 500.0, rng};
  // Converge alpha below 200 by overloading with label-200 packets.
  double t = 0.0;
  for (int i = 0; i < 5000; ++i) {
    t += 0.00125;  // 800 pps > 500 capacity
    auto p = labeled_packet(200.0);
    (void)policy.admit(p, at(t));
  }
  ASSERT_TRUE(policy.congested());
  ASSERT_LT(policy.alpha(), 200.0);
  auto p = labeled_packet(200.0);
  // Find an accepted packet and check its outgoing label.
  while (!policy.admit(p, at(t += 0.00125))) p = labeled_packet(200.0);
  EXPECT_NEAR(p.label, policy.alpha(), 1e-9);
}

// ---------------------------------------------------------------------------
// CSFQ end to end on a small network

struct CsfqNetFixture {
  sim::Simulator simulator{5};
  net::Network network{simulator};
  net::NodeId edge_a = network.add_node("edgeA");
  net::NodeId edge_b = network.add_node("edgeB");
  net::NodeId core = network.add_node("core");
  net::NodeId sink = network.add_node("sink");
  CsfqConfig cfg;
  stats::FlowTracker tracker;

  CsfqNetFixture() {
    network.connect_duplex(edge_a, core, sim::Rate::mbps(10), sim::TimeDelta::millis(5), 100);
    network.connect_duplex(edge_b, core, sim::Rate::mbps(10), sim::TimeDelta::millis(5), 100);
    network.connect_duplex(core, sink, sim::Rate::mbps(4), sim::TimeDelta::millis(5), 40);
    network.build_routes();
    network.node(sink).set_local_sink([this](net::Packet&& p) {
      if (p.is_data()) tracker.on_delivered(p.flow);
    });
  }

  net::FlowSpec flow(net::FlowId id, net::NodeId ingress, double weight) {
    net::FlowSpec fs;
    fs.id = id;
    fs.ingress = ingress;
    fs.egress = sink;
    fs.weight = weight;
    return fs;
  }
};

TEST(CsfqNetwork, LossNoticesReachIngressAndThrottle) {
  CsfqNetFixture f;
  CsfqCoreRouter core{f.network, f.core, f.cfg};
  CsfqEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CsfqEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(60));
  EXPECT_GT(core.loss_notices_sent(), 0u);
  EXPECT_GT(ea.loss_notices_received() + eb.loss_notices_received(), 0u);
  // Rates must settle near the 250/250 fair split rather than blow up.
  const double ra = f.tracker.series(1).allotted_rate.average_over(30, 60);
  const double rb = f.tracker.series(2).allotted_rate.average_over(30, 60);
  EXPECT_NEAR(ra + rb, 500.0, 120.0);
}

TEST(CsfqNetwork, WeightedSharesEmerge) {
  CsfqNetFixture f;
  CsfqCoreRouter core{f.network, f.core, f.cfg};
  CsfqEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CsfqEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 3.0));
  f.simulator.run_until(sim::SimTime::seconds(120));
  const double ra = f.tracker.series(1).allotted_rate.average_over(60, 120);
  const double rb = f.tracker.series(2).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(rb / ra, 3.0, 1.2);
}

TEST(CsfqNetwork, DropTailBaselineIsLessFairAtEqualWeights) {
  // Same offered load through a dumb FIFO core: both flows still adapt
  // via loss notices (so rates stay bounded) but CSFQ's drops target the
  // over-share flow whereas FIFO's hit whoever arrives at a full queue.
  CsfqNetFixture f;
  LossNotifyingCoreRouter core{f.network, f.core};
  CsfqEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CsfqEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 3.0));
  f.simulator.run_until(sim::SimTime::seconds(120));
  EXPECT_GT(core.loss_notices_sent(), 0u);
  const double ra = f.tracker.series(1).allotted_rate.average_over(60, 120);
  const double rb = f.tracker.series(2).allotted_rate.average_over(60, 120);
  // FIFO cannot enforce the 3:1 weighting; the ratio lands near 1.
  EXPECT_LT(rb / ra, 2.0);
}

TEST(CsfqNetwork, RouterDestructionDetachesObserversFromLinks) {
  // Regression: destroying a core router before the network used to
  // leave its LinkObserver pointers registered on the links, so any
  // later drop dereferenced freed memory (caught under ASan).
  sim::Simulator simulator{1};
  net::Network network{simulator};
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  net::Link& link = network.connect(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 2);
  network.build_routes();

  {
    CsfqCoreRouter csfq_router{network, a, CsfqConfig{}};
    LossNotifyingCoreRouter notifier{network, a};
    // Both routers die here, before the network and its links.
  }

  // Overflow the 2-packet queue so the link fires on_drop on whatever
  // observers remain registered.
  for (int i = 0; i < 8; ++i) {
    net::Packet p;
    p.uid = static_cast<std::uint64_t>(i + 1);
    p.kind = net::PacketKind::Data;
    p.flow = 1;
    p.src = a;
    p.dst = b;
    p.size = sim::DataSize::kilobytes(1);
    p.created = simulator.now();
    link.send(std::move(p));
  }
  simulator.run();
  EXPECT_GT(link.stats().dropped, 0u);
}

}  // namespace
}  // namespace corelite::csfq

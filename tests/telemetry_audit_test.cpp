// Fairness auditor + engine introspection tests.
//
// Three layers:
//   1. Auditor math on a synthetic two-flow tracker: deviations pinned
//      to the water-filling oracle, the demand-capped blind spot closed
//      by the uncapped overage test, watchdog consecutive/grace/boundary
//      semantics, and flight-recorder ring wraparound.
//   2. End-to-end scenario runs: fig5/fig7 under corelite and CSFQ stay
//      inside the band (watchdog silent), the recorded oracle shares are
//      reproducible from the recorded samples, a drop-tail run flooded
//      by an unresponsive source trips the watchdog and dumps the ring,
//      and CSFQ polices the same flood back to its fair share (the
//      paper's core claim) so its watchdog stays silent.
//   3. Engine probes: audit-on sweep digests are --jobs-invariant, the
//      LP profiler's per-LP event/message counts are thread-count-
//      invariant (and attaching it never changes the digest), the fluid
//      flight recorder bounds its log, and the heartbeat ETA model
//      keeps fluid and packet wall times separate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "runner/sweep.h"
#include "scenario/paper_topology.h"
#include "scenario/scenario.h"
#include "sim/fluid/allocator.h"
#include "sim/fluid/probe.h"
#include "sim/units.h"
#include "stats/flow_tracker.h"
#include "telemetry/engine_probe.h"
#include "telemetry/fairness_audit.h"

namespace tel = corelite::telemetry;
namespace fl = corelite::sim::fluid;
namespace rn = corelite::runner;
namespace sc = corelite::scenario;
namespace st = corelite::stats;
using corelite::net::FlowId;
using corelite::sim::SimTime;
using corelite::sim::TimeDelta;

namespace {

// ---------------------------------------------------------------------------
// Synthetic-tracker harness: one 100 pkt/s link, flows driven by hand.

struct AuditRig {
  st::FlowTracker tracker;
  std::unique_ptr<tel::FairnessAuditor> auditor;
  double t_sec = 0.0;

  AuditRig(tel::FairnessAuditConfig cfg, std::vector<tel::FairnessAuditor::FlowInfo> flows,
           tel::FairnessAuditor::ActiveFn active = nullptr) {
    for (const auto& f : flows) tracker.declare_flow(f.id, f.weight);
    auditor = std::make_unique<tel::FairnessAuditor>(cfg, tracker, std::vector<double>{100.0},
                                                     std::move(flows), std::move(active));
  }

  /// Advance one 1-second window in which flow `id` delivered/sent the
  /// given packet counts.
  void deliver(FlowId id, std::uint64_t delivered, std::uint64_t sent) {
    tracker.add_synthesized(id, delivered, sent, 0);
  }
  void close_window() {
    t_sec += 1.0;
    auditor->on_window(SimTime::seconds(t_sec));
  }
};

tel::FairnessAuditConfig rig_config() {
  tel::FairnessAuditConfig cfg;
  cfg.enabled = true;
  cfg.window = TimeDelta::seconds(1);
  cfg.band = 0.40;
  cfg.watchdog_windows = 3;
  cfg.grace_windows = 0;
  cfg.rate_floor_pps = 5.0;
  cfg.ring_capacity = 4;
  return cfg;
}

std::vector<tel::FairnessAuditor::FlowInfo> two_flows() {
  return {{1, 1.0, {0}}, {2, 1.0, {0}}};
}

TEST(AuditorMath, DeviationPinnedToWaterFillingOracle) {
  AuditRig rig{rig_config(), {{1, 1.0, {0}}, {2, 3.0, {0}}}};
  // Both flows over-demand a 100 pkt/s link at weights 1:3 -> oracle
  // shares 25 and 75.  Flow 1 delivers 40 (dev +0.6), flow 2 delivers
  // 60 (dev -0.2).
  rig.deliver(1, 40, 120);
  rig.deliver(2, 60, 120);
  rig.close_window();

  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  ASSERT_EQ(rep.windows.size(), 1u);
  const tel::AuditWindow& w = rep.windows[0];
  ASSERT_EQ(w.flows.size(), 2u);
  EXPECT_NEAR(w.flows[0].oracle_pps, 25.0, 1e-9);
  EXPECT_NEAR(w.flows[1].oracle_pps, 75.0, 1e-9);
  EXPECT_NEAR(w.flows[0].deviation, (40.0 - 25.0) / 25.0, 1e-9);
  EXPECT_NEAR(w.flows[1].deviation, (60.0 - 75.0) / 75.0, 1e-9);
  // Uncapped shares are the same here (demands exceed them).
  EXPECT_NEAR(w.flows[0].fair_share_pps, 25.0, 1e-9);
  EXPECT_NEAR(w.flows[1].fair_share_pps, 75.0, 1e-9);
  EXPECT_EQ(w.violations, 1u);  // flow 1 out of band, flow 2 inside
  EXPECT_EQ(w.worst_flow, 1u);
  EXPECT_NEAR(w.worst_deviation, 0.6, 1e-9);
  EXPECT_TRUE(w.violating);
}

TEST(AuditorMath, SelfThrottledFlowIsItsOwnOracle) {
  AuditRig rig{rig_config(), two_flows()};
  // Flow 1 chose to send only 10 pkt/s; the demand-capped oracle gives
  // it exactly that, so it must not read as starved.
  rig.deliver(1, 10, 10);
  rig.deliver(2, 90, 120);
  rig.close_window();

  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  const tel::AuditWindow& w = rep.windows[0];
  EXPECT_NEAR(w.flows[0].oracle_pps, 10.0, 1e-9);
  EXPECT_NEAR(w.flows[0].deviation, 0.0, 1e-9);
  EXPECT_NEAR(w.flows[1].oracle_pps, 90.0, 1e-9);
  EXPECT_NEAR(w.flows[1].deviation, 0.0, 1e-9);
  // But flow 2 exceeds its UNcapped 50/50 share by 80% -> overage
  // violation: the spare capacity excuse only goes as far as the band.
  EXPECT_NEAR(w.flows[1].fair_share_pps, 50.0, 1e-9);
  EXPECT_NEAR(w.flows[1].overage, (90.0 - 50.0) / 50.0, 1e-9);
  EXPECT_TRUE(w.violating);
  EXPECT_EQ(w.worst_flow, 2u);
}

TEST(AuditorMath, OverageClosesTheFloodBlindSpot) {
  // The flood scenario in miniature: flow 1 blasts and gets 90; flow 2
  // has been beaten down to offering 5.  The capped oracle is satisfied
  // (both flows get >= their demand-capped share) -- only the uncapped
  // overage test sees the grab.
  AuditRig rig{rig_config(), two_flows()};
  rig.deliver(1, 90, 95);
  rig.deliver(2, 5, 5);
  rig.close_window();

  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  const tel::AuditWindow& w = rep.windows[0];
  EXPECT_LE(std::abs(w.flows[0].deviation), 0.40);  // capped test blessed it
  EXPECT_NEAR(w.flows[0].fair_share_pps, 50.0, 1e-9);
  EXPECT_GT(w.flows[0].overage, 0.40);  // the uncapped test did not
  EXPECT_TRUE(w.violating);
}

TEST(AuditorWatchdog, TripsAfterConsecutiveViolations) {
  AuditRig rig{rig_config(), two_flows()};  // watchdog_windows = 3, grace 0
  for (int i = 0; i < 6; ++i) {
    rig.deliver(1, 90, 95);
    rig.deliver(2, 5, 5);
    rig.close_window();
  }
  EXPECT_TRUE(rig.auditor->watchdog_fired());
  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  EXPECT_TRUE(rep.watchdog_fired);
  EXPECT_EQ(rep.watchdog_window, 2u);  // windows 0,1,2 -> third consecutive
  // The dump holds everything up to and including the tripping window.
  ASSERT_EQ(rep.flight_recorder.size(), 3u);
  EXPECT_EQ(rep.flight_recorder.back().index, 2u);
  // Auditing continued after the trip.
  EXPECT_EQ(rep.windows.size(), 6u);
}

TEST(AuditorWatchdog, GraceWindowsResetTheCount) {
  tel::FairnessAuditConfig cfg = rig_config();
  cfg.grace_windows = 5;
  AuditRig rig{cfg, two_flows()};
  for (int i = 0; i < 8; ++i) {
    rig.deliver(1, 90, 95);
    rig.deliver(2, 5, 5);
    rig.close_window();
  }
  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  ASSERT_TRUE(rep.watchdog_fired);
  // Windows 0-4 are grace; the count starts at window 5 and reaches 3
  // at window 7.
  EXPECT_EQ(rep.watchdog_window, 7u);
}

TEST(AuditorWatchdog, BoundaryWindowResetsTheCount) {
  // Flow 3 carries no traffic but becomes active at t = 1.5 s, inside
  // window 1 -- a boundary window that must reset the consecutive
  // count even though the window itself still violates.
  auto active = [](FlowId id, double t) { return id != 3 || t >= 1.5; };
  std::vector<tel::FairnessAuditor::FlowInfo> flows = two_flows();
  flows.push_back({3, 1.0, {0}});
  AuditRig rig{rig_config(), std::move(flows), active};
  for (int i = 0; i < 5; ++i) {
    rig.deliver(1, 90, 95);
    rig.deliver(2, 5, 5);
    rig.close_window();
  }
  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  EXPECT_TRUE(rep.windows[1].boundary);
  ASSERT_TRUE(rep.watchdog_fired);
  // Without the boundary reset the trip would land on window 2; the
  // reset pushes it to window 4 (violating run 2,3,4).
  EXPECT_EQ(rep.watchdog_window, 4u);
}

TEST(AuditorWatchdog, RingWrapsAroundAndDumpsOldestFirst) {
  tel::FairnessAuditConfig cfg = rig_config();
  cfg.watchdog_windows = 6;
  cfg.ring_capacity = 4;
  AuditRig rig{cfg, two_flows()};
  for (int i = 0; i < 6; ++i) {
    rig.deliver(1, 90, 95);
    rig.deliver(2, 5, 5);
    rig.close_window();
  }
  const tel::FairnessAuditReport rep = rig.auditor->take_report();
  ASSERT_TRUE(rep.watchdog_fired);
  EXPECT_EQ(rep.watchdog_window, 5u);
  // Six windows through a 4-deep ring: the dump is windows 2..5 in
  // oldest-first order.
  ASSERT_EQ(rep.flight_recorder.size(), 4u);
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(rep.flight_recorder[k].index, 2u + k);
  }
}

// ---------------------------------------------------------------------------
// End-to-end scenario runs.

sc::ScenarioSpec audited(sc::ScenarioSpec spec) {
  spec.audit.enabled = true;
  return spec;
}

TEST(AuditScenario, Fig5CoreliteInBandAndReproducible) {
  const sc::ScenarioResult r = sc::run_paper_scenario(audited(
      sc::fig5_simultaneous_start(sc::Mechanism::Corelite)));
  ASSERT_NE(r.audit_report, nullptr);
  const tel::FairnessAuditReport& rep = *r.audit_report;
  EXPECT_FALSE(rep.watchdog_fired);
  ASSERT_GE(rep.windows.size(), 10u);
  EXPECT_GT(rep.min_jain, 0.6);

  // Pin the recorded oracle: re-solve water-filling from the recorded
  // samples over the paper topology's three 500 pkt/s core links and
  // demand both the capped share and the deviation arithmetic match.
  const std::vector<double> caps(3, 500.0);
  for (const tel::AuditWindow& w : rep.windows) {
    std::vector<fl::AllocFlow> capped(w.flows.size());
    std::vector<fl::AllocFlow> uncapped(w.flows.size());
    for (std::size_t i = 0; i < w.flows.size(); ++i) {
      const tel::AuditFlowSample& s = w.flows[i];
      const auto links = sc::PaperTopology::congested_links(s.id);
      capped[i].weight = uncapped[i].weight = s.weight;
      for (const std::size_t l : links) {
        capped[i].links.push_back(static_cast<std::uint32_t>(l));
      }
      uncapped[i].links = capped[i].links;
      capped[i].demand = s.active ? std::max(s.sent_pps, 0.0) : 0.0;
      uncapped[i].demand = s.active ? 1e15 : 0.0;
    }
    const std::vector<double> oracle = fl::water_fill(caps, capped);
    const std::vector<double> fair = fl::water_fill(caps, uncapped);
    for (std::size_t i = 0; i < w.flows.size(); ++i) {
      const tel::AuditFlowSample& s = w.flows[i];
      EXPECT_NEAR(s.oracle_pps, oracle[i], 1e-6) << "window " << w.index << " flow " << s.id;
      EXPECT_NEAR(s.fair_share_pps, fair[i], 1e-6) << "window " << w.index << " flow " << s.id;
      EXPECT_NEAR(s.deviation, (s.rate_pps - oracle[i]) / std::max(oracle[i], 5.0), 1e-6);
      EXPECT_NEAR(s.overage, (s.rate_pps - fair[i]) / std::max(fair[i], 5.0), 1e-6);
    }
  }
}

TEST(AuditScenario, Fig7StaggeredStartsStaySilent) {
  for (const sc::Mechanism m : {sc::Mechanism::Corelite, sc::Mechanism::Csfq}) {
    const sc::ScenarioResult r = sc::run_paper_scenario(audited(sc::fig7_staggered_start(m)));
    ASSERT_NE(r.audit_report, nullptr) << sc::mechanism_name(m);
    // Staggered arrivals violate transiently, but every arrival lands
    // in a boundary window that resets the watchdog count.
    EXPECT_FALSE(r.audit_report->watchdog_fired) << sc::mechanism_name(m);
    EXPECT_GE(r.audit_report->windows.size(), 10u);
  }
}

TEST(AuditScenario, DropTailFloodTripsWatchdogAndDumpsRing) {
  sc::ScenarioSpec spec = audited(sc::fig5_simultaneous_start(sc::Mechanism::DropTail));
  spec.flood_pps.assign(spec.num_flows, 0.0);
  spec.flood_pps[0] = 600.0;  // flow 1 blasts at 1.2x the link rate
  const sc::ScenarioResult r = sc::run_paper_scenario(spec);
  ASSERT_NE(r.audit_report, nullptr);
  const tel::FairnessAuditReport& rep = *r.audit_report;
  EXPECT_TRUE(rep.watchdog_fired);
  EXPECT_FALSE(rep.flight_recorder.empty());
  // The dump carries engine gauges (queue occupancies) for every window.
  ASSERT_FALSE(rep.gauge_names.empty());
  for (const tel::AuditWindow& w : rep.flight_recorder) {
    EXPECT_EQ(w.gauges.size(), rep.gauge_names.size());
  }
  // The worst offender is the flood itself, far over its fair share.
  EXPECT_EQ(rep.worst_flow, 1u);
  EXPECT_GT(rep.worst_deviation, 0.40);
}

TEST(AuditScenario, CsfqPolicesTheSameFlood) {
  // The paper's claim: a core-stateless fair-queueing network confines
  // an unresponsive flood to its fair share.  Same flood, CSFQ
  // mechanism -> the auditor must stay silent.
  sc::ScenarioSpec spec = audited(sc::fig5_simultaneous_start(sc::Mechanism::Csfq));
  spec.flood_pps.assign(spec.num_flows, 0.0);
  spec.flood_pps[0] = 600.0;
  const sc::ScenarioResult r = sc::run_paper_scenario(spec);
  ASSERT_NE(r.audit_report, nullptr);
  EXPECT_FALSE(r.audit_report->watchdog_fired);
  // After the grace windows the flood's delivered rate sits at (or
  // below) its uncapped fair share within the band.
  for (const tel::AuditWindow& w : r.audit_report->windows) {
    if (w.index < 3) continue;
    for (const tel::AuditFlowSample& s : w.flows) {
      if (s.id != 1) continue;
      EXPECT_LT(s.overage, 0.40) << "window " << w.index;
    }
  }
}

// ---------------------------------------------------------------------------
// Digest contracts and engine probes.

TEST(AuditSweep, CombinedDigestIsJobsInvariant) {
  std::vector<rn::RunDescriptor> runs;
  for (std::size_t i = 0; i < 4; ++i) {
    rn::RunDescriptor d;
    d.scenario = "fig5";
    d.mechanism = sc::Mechanism::Corelite;
    d.seed = 42;
    d.repeat = i;
    d.duration_sec = 20.0;
    runs.push_back(d);
  }
  const rn::SpecHook hook = [](sc::ScenarioSpec& spec) { spec.audit.enabled = true; };

  auto digest_with_jobs = [&](std::size_t jobs) {
    rn::SweepRunner runner{jobs};
    runner.set_run_spec_hook(0, hook);
    const std::vector<rn::RunResult> results = runner.run(runs);
    EXPECT_NE(results[0].audit, nullptr);   // the hooked run carries the report
    EXPECT_EQ(results[1].audit, nullptr);   // the rest of the grid stays clean
    return rn::combined_digest(results);
  };
  EXPECT_EQ(digest_with_jobs(1), digest_with_jobs(4));
}

TEST(AuditSweep, AuditOnDigestDiffersFromOffDeterministically) {
  rn::RunDescriptor d;
  d.scenario = "fig5";
  d.mechanism = sc::Mechanism::Corelite;
  d.seed = 7;
  d.duration_sec = 20.0;
  const rn::SpecHook hook = [](sc::ScenarioSpec& spec) { spec.audit.enabled = true; };

  const std::uint64_t off = rn::execute_run(d).digest;
  const std::uint64_t on1 = rn::execute_run(d, nullptr, hook).digest;
  const std::uint64_t on2 = rn::execute_run(d, nullptr, hook).digest;
  EXPECT_EQ(on1, on2);  // audit-on is deterministic...
  EXPECT_NE(on1, off);  // ...and deliberately distinct (the sampler adds events)
}

TEST(LpProfilerProbe, CountsAreThreadCountInvariantAndDigestNeutral) {
  auto run_with_threads = [](std::size_t lp_threads, tel::LpProfiler* prof) {
    rn::RunDescriptor d;
    d.scenario = "fig5";
    d.mechanism = sc::Mechanism::Corelite;
    d.seed = 11;
    d.duration_sec = 20.0;
    d.lp = 2;
    d.lp_threads = lp_threads;
    const rn::SpecHook hook = [prof](sc::ScenarioSpec& spec) { spec.lp_probe = prof; };
    return rn::execute_run(d, nullptr, prof ? hook : rn::SpecHook{});
  };

  tel::LpProfiler p1;
  tel::LpProfiler p2;
  const rn::RunResult r1 = run_with_threads(1, &p1);
  const rn::RunResult r2 = run_with_threads(2, &p2);
  ASSERT_TRUE(r1.ok);
  ASSERT_TRUE(r2.ok);

  // Attaching the probe is pure observation: same digest as bare runs.
  const rn::RunResult bare = run_with_threads(2, nullptr);
  EXPECT_EQ(r1.digest, bare.digest);
  EXPECT_EQ(r2.digest, bare.digest);

  // Per-LP event and cross-LP message counts depend only on the LP
  // partition, never on how many OS threads drove it.
  ASSERT_EQ(p1.report().lp_count, p2.report().lp_count);
  ASSERT_EQ(p1.report().lps.size(), p2.report().lps.size());
  std::uint64_t total_events = 0;
  for (std::size_t i = 0; i < p1.report().lps.size(); ++i) {
    EXPECT_EQ(p1.report().lps[i].events, p2.report().lps[i].events) << "lp " << i;
    EXPECT_EQ(p1.report().lps[i].msgs_in, p2.report().lps[i].msgs_in) << "lp " << i;
    total_events += p1.report().lps[i].events;
  }
  EXPECT_GT(total_events, 0u);
  EXPECT_EQ(p2.report().threads, 2u);
}

TEST(FluidRecorder, BoundsTheLogAndCountsDrops) {
  tel::FluidFlightRecorder rec{2};
  fl::FluidCertEvent e;
  e.kind = fl::FluidCertEvent::Kind::kAttempt;
  rec.on_cert_event(e);
  e.kind = fl::FluidCertEvent::Kind::kAccept;
  rec.on_cert_event(e);
  e.kind = fl::FluidCertEvent::Kind::kReanchor;
  rec.on_cert_event(e);
  EXPECT_EQ(rec.events().size(), 2u);
  EXPECT_EQ(rec.dropped(), 1u);
  EXPECT_EQ(rec.events()[0].kind, fl::FluidCertEvent::Kind::kAttempt);
  EXPECT_EQ(tel::FluidFlightRecorder::kind_name(fl::FluidCertEvent::Kind::kAccept), "accept");
}

// ---------------------------------------------------------------------------
// Heartbeat ETA model.

TEST(EtaModel, UnknownUntilFirstCompletion) {
  rn::EtaSnapshot snap;
  snap.workers = 4;
  snap.pending_packet = 10;
  EXPECT_LT(rn::estimate_eta_sec(snap), 0.0);
}

TEST(EtaModel, PerKindAveragesDoNotPool) {
  // 2 packet runs at 1000 ms, 2 fluid runs at 100 ms; 10 fluid runs
  // pending on 1 worker.  A pooled mean (550 ms) would predict 5.5 s;
  // the per-kind model predicts 1 s.
  rn::EtaSnapshot snap;
  snap.workers = 1;
  snap.done_packet = 2;
  snap.wall_ms_packet = 2000.0;
  snap.done_fluid = 2;
  snap.wall_ms_fluid = 200.0;
  snap.pending_fluid = 10;
  EXPECT_NEAR(rn::estimate_eta_sec(snap), 1.0, 1e-9);
}

TEST(EtaModel, PooledFallbackWhenAKindHasNoCompletions) {
  rn::EtaSnapshot snap;
  snap.workers = 1;
  snap.done_packet = 1;
  snap.wall_ms_packet = 1000.0;
  snap.pending_fluid = 2;  // no fluid run has finished yet
  EXPECT_NEAR(rn::estimate_eta_sec(snap), 2.0, 1e-9);
}

TEST(EtaModel, BusyRunsGetElapsedCredit) {
  rn::EtaSnapshot snap;
  snap.workers = 2;
  snap.done_packet = 4;
  snap.wall_ms_packet = 4000.0;  // avg 1000 ms
  snap.pending_packet = 4;
  snap.busy.push_back({false, 600.0});   // 400 ms of its average left
  snap.busy.push_back({false, 5000.0});  // past the average: zero, not negative
  EXPECT_NEAR(rn::estimate_eta_sec(snap), (4 * 1000.0 + 400.0 + 0.0) / 2000.0, 1e-9);
}

}  // namespace

// Tests for the pluggable variants: AIMD/MIMD rate controllers, the
// replaceable congestion detectors, and the edge pacing modes.
#include <gtest/gtest.h>

#include <cmath>

#include "net/network.h"
#include "qos/congestion_estimator.h"
#include "qos/edge_router.h"
#include "qos/rate_controller.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {
namespace {

sim::SimTime at(double t) { return sim::SimTime::seconds(t); }

RateAdaptConfig cfg_of(AdaptKind kind) {
  RateAdaptConfig cfg;
  cfg.kind = kind;
  return cfg;
}

// ---------------------------------------------------------------------------
// Controller variants

TEST(AdaptVariants, FactoryBuildsRequestedKind) {
  auto limd = make_rate_controller(cfg_of(AdaptKind::Limd));
  auto aimd = make_rate_controller(cfg_of(AdaptKind::Aimd));
  auto mimd = make_rate_controller(cfg_of(AdaptKind::Mimd));
  ASSERT_NE(dynamic_cast<LimdRateController*>(limd.get()), nullptr);
  ASSERT_NE(dynamic_cast<AimdRateController*>(aimd.get()), nullptr);
  ASSERT_NE(dynamic_cast<MimdRateController*>(mimd.get()), nullptr);
}

TEST(AdaptVariants, AimdDecreaseIsMultiplicative) {
  auto cfg = cfg_of(AdaptKind::Aimd);
  cfg.md_factor = 0.1;
  AimdRateController c{cfg};
  c.reset(at(0));
  for (int s = 1; s <= 6; ++s) c.on_epoch(0, at(s));  // exit slow start at 32
  for (int e = 0; e < 100; ++e) c.on_epoch(0, at(6.1 + 0.1 * e));  // climb to 132
  const double r0 = c.rate_pps();
  c.on_epoch(2, at(17.0));
  EXPECT_NEAR(c.rate_pps(), r0 * 0.81, 1e-9);  // (1-0.1)^2
}

TEST(AdaptVariants, MimdIncreaseIsMultiplicative) {
  auto cfg = cfg_of(AdaptKind::Mimd);
  cfg.mi_factor = 1.05;
  MimdRateController c{cfg};
  c.reset(at(0));
  for (int s = 1; s <= 6; ++s) c.on_epoch(0, at(s));  // exit slow start at 32
  const double r0 = c.rate_pps();
  c.on_epoch(0, at(6.5));
  c.on_epoch(0, at(6.6));
  EXPECT_NEAR(c.rate_pps(), r0 * 1.05 * 1.05, 1e-9);
}

TEST(AdaptVariants, AllVariantsShareSlowStart) {
  for (AdaptKind kind : {AdaptKind::Limd, AdaptKind::Aimd, AdaptKind::Mimd}) {
    auto c = make_rate_controller(cfg_of(kind));
    c->reset(at(0));
    EXPECT_TRUE(c->in_slow_start());
    c->on_epoch(1, at(0.1));  // first feedback exits slow start everywhere
    EXPECT_FALSE(c->in_slow_start());
  }
}

TEST(AdaptVariants, FloorHoldsForAllVariants) {
  for (AdaptKind kind : {AdaptKind::Limd, AdaptKind::Aimd, AdaptKind::Mimd}) {
    auto cfg = cfg_of(kind);
    auto c = make_rate_controller(cfg, /*contract=*/7.0);
    c->reset(at(0));
    for (int e = 0; e < 200; ++e) c->on_epoch(10, at(0.1 * (e + 1)));
    EXPECT_GE(c->rate_pps(), 7.0) << "kind " << static_cast<int>(kind);
  }
}

// ---------------------------------------------------------------------------
// Detector variants

TEST(DetectorVariants, FactoryBuildsRequestedKind) {
  CoreliteConfig cfg;
  cfg.detector = DetectorKind::EpochAverage;
  ASSERT_NE(dynamic_cast<CongestionEstimator*>(make_congestion_detector(cfg, 500.0).get()),
            nullptr);
  cfg.detector = DetectorKind::BusyIdleCycle;
  ASSERT_NE(dynamic_cast<BusyIdleCycleDetector*>(make_congestion_detector(cfg, 500.0).get()),
            nullptr);
  cfg.detector = DetectorKind::Ewma;
  ASSERT_NE(dynamic_cast<EwmaDetector*>(make_congestion_detector(cfg, 500.0).get()), nullptr);
}

TEST(DetectorVariants, LegacyMuScalesFn) {
  CoreliteConfig cfg;
  cfg.k_cubic = 0.0;
  auto modern = make_congestion_detector(cfg, 500.0);
  cfg.legacy_per_epoch_mu = true;
  auto legacy = make_congestion_detector(cfg, 500.0);
  // Same queue trajectory through both.
  for (auto* d : {modern.get(), legacy.get()}) {
    d->on_queue_length(20, at(0.0));
  }
  const double fn_modern = modern->end_epoch(at(0.1));
  const double fn_legacy = legacy->end_epoch(at(0.1));
  EXPECT_NEAR(fn_modern, fn_legacy * 10.0, 1e-9);  // 100 ms epochs
}

TEST(DetectorVariants, BusyIdleAveragesOverCycles) {
  BusyIdleCycleDetector d{8.0, 0.0, 500.0, 1.0};
  // Busy at 20 for 0.1 s, idle for 0.1 s, busy again: at the second
  // busy transition the previous cycle (avg 10) is complete.
  d.on_queue_length(20, at(0.0));
  d.on_queue_length(0, at(0.1));
  d.on_queue_length(20, at(0.2));
  (void)d.end_epoch(at(0.2));
  EXPECT_NEAR(d.last_q_avg(), 10.0, 1e-9);
}

TEST(DetectorVariants, BusyIdleSignalsCongestionUnderSustainedLoad) {
  BusyIdleCycleDetector d{8.0, 0.0, 500.0, 1.0};
  d.on_queue_length(30, at(0.0));  // busy, never idles
  const double fn = d.end_epoch(at(0.5));
  EXPECT_GT(fn, 0.0);
  EXPECT_NEAR(d.last_q_avg(), 30.0, 1e-9);
}

TEST(DetectorVariants, EwmaTracksSamplesNotTime) {
  EwmaDetector d{8.0, 0.0, 500.0, 1.0, /*gain=*/0.5};
  // avg after two samples of 16 with gain 0.5: 0 -> 8 -> 12, regardless
  // of how much virtual time separates the samples.
  d.on_queue_length(16, at(0.0));
  d.on_queue_length(16, at(5.0));
  EXPECT_NEAR(d.last_q_avg(), 12.0, 1e-9);
  const double fn = d.end_epoch(at(5.1));
  EXPECT_GT(fn, 0.0);  // 12 > threshold 8
}

// ---------------------------------------------------------------------------
// Pacing modes (measured through the edge router)

struct PacingFixture {
  sim::Simulator simulator{3};
  net::Network network{simulator};
  net::NodeId edge = network.add_node("edge");
  net::NodeId sink = network.add_node("sink");
  CoreliteConfig cfg;
  stats::FlowTracker tracker;
  std::vector<double> arrivals;

  PacingFixture() {
    network.connect_duplex(edge, sink, sim::Rate::mbps(100), sim::TimeDelta::millis(1), 2000);
    network.build_routes();
    network.node(sink).set_local_sink([this](net::Packet&& p) {
      if (p.is_data()) arrivals.push_back(simulator.now().sec());
    });
  }

  void run(PacingMode mode) {
    cfg.pacing = mode;
    // Pin the rate: no adaptation noise (no congestion on a fat link).
    cfg.adapt.ss_thresh_pps = 100.0;
    cfg.adapt.alpha_pps = 1e-6;
    qos::CoreliteEdgeRouter er{network, edge, cfg, &tracker};
    net::FlowSpec fs;
    fs.id = 1;
    fs.ingress = edge;
    fs.egress = sink;
    fs.weight = 1.0;
    er.add_flow(fs);
    simulator.run_until(sim::SimTime::seconds(60));
  }

  [[nodiscard]] double rate_between(double t0, double t1) const {
    int n = 0;
    for (double t : arrivals) {
      if (t >= t0 && t < t1) ++n;
    }
    return n / (t1 - t0);
  }
};

TEST(Pacing, PoissonKeepsAverageRate) {
  PacingFixture paced;
  paced.run(PacingMode::Paced);
  PacingFixture poisson;
  poisson.run(PacingMode::Poisson);
  // Same controller trajectory, same average rate within 10%.
  EXPECT_NEAR(poisson.rate_between(20, 60), paced.rate_between(20, 60),
              0.1 * paced.rate_between(20, 60));
}

TEST(Pacing, PoissonGapsAreIrregular) {
  PacingFixture f;
  f.run(PacingMode::Poisson);
  // Coefficient of variation of inter-arrival gaps ~1 for Poisson, ~0 for CBR.
  double mean = 0.0;
  std::vector<double> gaps;
  for (std::size_t i = 1; i < f.arrivals.size(); ++i) {
    if (f.arrivals[i] > 20.0) gaps.push_back(f.arrivals[i] - f.arrivals[i - 1]);
  }
  ASSERT_GT(gaps.size(), 100u);
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  const double cov = std::sqrt(var) / mean;
  EXPECT_GT(cov, 0.7);
  EXPECT_LT(cov, 1.3);
}

TEST(Pacing, OnOffBurstsAndIdles) {
  PacingFixture f;
  f.cfg.on_off_burst = sim::TimeDelta::millis(200);
  f.cfg.on_off_idle = sim::TimeDelta::millis(200);
  f.run(PacingMode::OnOff);
  // Average rate preserved within 20%...
  PacingFixture paced;
  paced.run(PacingMode::Paced);
  EXPECT_NEAR(f.rate_between(20, 60), paced.rate_between(20, 60),
              0.2 * paced.rate_between(20, 60));
  // ...but arrivals cluster: some 100 ms buckets empty, others loaded.
  int empty_buckets = 0;
  int loaded_buckets = 0;
  for (double t = 20.0; t < 60.0; t += 0.1) {
    const double n = f.rate_between(t, t + 0.1);
    if (n == 0.0) ++empty_buckets;
    if (n > 1.5 * paced.rate_between(20, 60)) ++loaded_buckets;
  }
  EXPECT_GT(empty_buckets, 50);
  EXPECT_GT(loaded_buckets, 50);
}

}  // namespace
}  // namespace corelite::qos

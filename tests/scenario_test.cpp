// Tests for the paper-topology builder and scenario factories: path
// assignment, round-trip times, the ideal-rate oracle reproducing the
// paper's §4.1 arithmetic, and spec construction.
#include <gtest/gtest.h>

#include "net/network.h"
#include "scenario/paper_topology.h"
#include "scenario/scenario.h"
#include "sim/simulator.h"

namespace corelite::scenario {
namespace {

TEST(PaperTopology, CoreSpanAssignment) {
  using P = std::pair<std::size_t, std::size_t>;
  EXPECT_EQ(PaperTopology::core_span(1), (P{0, 1}));
  EXPECT_EQ(PaperTopology::core_span(5), (P{0, 1}));
  EXPECT_EQ(PaperTopology::core_span(6), (P{0, 2}));
  EXPECT_EQ(PaperTopology::core_span(8), (P{0, 2}));
  EXPECT_EQ(PaperTopology::core_span(9), (P{0, 3}));
  EXPECT_EQ(PaperTopology::core_span(10), (P{0, 3}));
  EXPECT_EQ(PaperTopology::core_span(11), (P{1, 2}));
  EXPECT_EQ(PaperTopology::core_span(12), (P{1, 2}));
  EXPECT_EQ(PaperTopology::core_span(13), (P{1, 3}));
  EXPECT_EQ(PaperTopology::core_span(15), (P{1, 3}));
  EXPECT_EQ(PaperTopology::core_span(16), (P{2, 3}));
  EXPECT_EQ(PaperTopology::core_span(20), (P{2, 3}));
}

TEST(PaperTopology, CongestedLinksPerFlow) {
  EXPECT_EQ(PaperTopology::congested_links(3), (std::vector<std::size_t>{0}));
  EXPECT_EQ(PaperTopology::congested_links(7), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(PaperTopology::congested_links(9), (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(PaperTopology::congested_links(14), (std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(PaperTopology::congested_links(18), (std::vector<std::size_t>{2}));
}

TEST(PaperTopology, RoutesFollowAssignedSpans) {
  sim::Simulator simulator{1};
  net::Network network{simulator};
  PaperTopology topo{network, 20};
  network.build_routes();
  // Flow 9 (C1 -> C4): ingress -> C1 -> C2 -> C3 -> C4 -> egress.
  const auto& ep = topo.endpoints(9);
  const auto path = network.path(ep.ingress, ep.egress);
  ASSERT_EQ(path.size(), 6u);
  EXPECT_EQ(path[1], topo.core(0));
  EXPECT_EQ(path[2], topo.core(1));
  EXPECT_EQ(path[3], topo.core(2));
  EXPECT_EQ(path[4], topo.core(3));
}

TEST(PaperTopology, RoundTripTimesMatchPaper) {
  // One-way: access 40 + n x 40 core + access 40; RTT doubles it.
  // 1 congested link -> 240 ms, 2 -> 320 ms, 3 -> 400 ms (paper §4.1).
  sim::Simulator simulator{1};
  net::Network network{simulator};
  PaperTopology topo{network, 20};
  network.build_routes();
  auto rtt_ms = [&](net::FlowId f) {
    const auto& ep = topo.endpoints(f);
    const auto path = network.path(ep.ingress, ep.egress);
    double one_way = 0.0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      one_way += network.find_link(path[i], path[i + 1])->propagation_delay().sec();
    }
    return 2.0 * one_way * 1000.0;
  };
  EXPECT_NEAR(rtt_ms(1), 240.0, 1e-9);
  EXPECT_NEAR(rtt_ms(7), 320.0, 1e-9);
  EXPECT_NEAR(rtt_ms(9), 400.0, 1e-9);
  EXPECT_NEAR(rtt_ms(11), 240.0, 1e-9);
  EXPECT_NEAR(rtt_ms(14), 320.0, 1e-9);
  EXPECT_NEAR(rtt_ms(17), 240.0, 1e-9);
}

TEST(PaperTopology, CapacityIs500PacketsPerSecond) {
  sim::Simulator simulator{1};
  net::Network network{simulator};
  PaperTopology topo{network, 4};
  EXPECT_DOUBLE_EQ(topo.capacity_pps(), 500.0);
}

TEST(ScenarioSpec, Fig3WeightsAndActivity) {
  const auto s = fig3_network_dynamics(Mechanism::Corelite);
  ASSERT_EQ(s.num_flows, 20u);
  EXPECT_DOUBLE_EQ(s.weights[4], 3.0);   // flow 5
  EXPECT_DOUBLE_EQ(s.weights[14], 3.0);  // flow 15
  EXPECT_DOUBLE_EQ(s.weights[0], 1.0);   // flow 1
  EXPECT_DOUBLE_EQ(s.weights[10], 1.0);  // flow 11
  EXPECT_DOUBLE_EQ(s.weights[15], 1.0);  // flow 16
  EXPECT_DOUBLE_EQ(s.weights[9], 2.0);   // flow 10 has weight 2 in §4.1
  // Late flows run [250, 500); the rest [0, 750).
  EXPECT_DOUBLE_EQ(s.activity[0][0].start.sec(), 250.0);
  EXPECT_DOUBLE_EQ(s.activity[0][0].stop.sec(), 500.0);
  EXPECT_DOUBLE_EQ(s.activity[1][0].start.sec(), 0.0);
  EXPECT_DOUBLE_EQ(s.activity[1][0].stop.sec(), 750.0);
}

TEST(ScenarioSpec, Fig5Weights) {
  const auto s = fig5_simultaneous_start(Mechanism::Csfq);
  ASSERT_EQ(s.num_flows, 10u);
  const std::vector<double> expect{1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  EXPECT_EQ(s.weights, expect);
  EXPECT_EQ(s.mechanism, Mechanism::Csfq);
}

TEST(ScenarioSpec, Fig7WeightsDifferFromFig3) {
  const auto s = fig7_staggered_start(Mechanism::Corelite);
  EXPECT_DOUBLE_EQ(s.weights[9], 3.0);  // flow 10 has weight 3 in §4.3
  EXPECT_DOUBLE_EQ(s.activity[4][0].start.sec(), 4.0);  // flow 5 starts at t=4
}

TEST(ScenarioSpec, Fig9ChurnWindows) {
  const auto s = fig9_churn(Mechanism::Corelite);
  // Flow 3: [2, 62) then [67, inf).
  ASSERT_EQ(s.activity[2].size(), 2u);
  EXPECT_DOUBLE_EQ(s.activity[2][0].start.sec(), 2.0);
  EXPECT_DOUBLE_EQ(s.activity[2][0].stop.sec(), 62.0);
  EXPECT_DOUBLE_EQ(s.activity[2][1].start.sec(), 67.0);
}

TEST(IdealRates, MatchesPaperExpectations) {
  const auto spec = fig3_network_dynamics(Mechanism::Corelite);
  // t = 100: flows 1, 9, 10, 11, 16 inactive -> 33.33 per unit weight.
  const auto early = ideal_rates_at(spec, sim::SimTime::seconds(100));
  EXPECT_EQ(early.count(1), 0u);
  EXPECT_NEAR(early.at(5), 100.0, 0.01);
  EXPECT_NEAR(early.at(2), 66.67, 0.01);
  // t = 300: all 20 active -> 25 per unit weight.
  const auto mid = ideal_rates_at(spec, sim::SimTime::seconds(300));
  EXPECT_NEAR(mid.at(1), 25.0, 0.01);
  EXPECT_NEAR(mid.at(5), 75.0, 0.01);
  EXPECT_NEAR(mid.at(9), 50.0, 0.01);
  // t = 600: the late flows have left again.
  const auto late = ideal_rates_at(spec, sim::SimTime::seconds(600));
  EXPECT_EQ(late.count(16), 0u);
  EXPECT_NEAR(late.at(20), 66.67, 0.01);
}

TEST(ScenarioRun, SmallRunProducesSaneAccounting) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.duration = sim::SimTime::seconds(10);
  const auto r = run_paper_scenario(spec);
  EXPECT_GT(r.events_processed, 1000u);
  EXPECT_EQ(r.unrouteable, 0u);
  EXPECT_GT(r.markers_injected, 0u);
  EXPECT_EQ(r.queue_series.size(), 3u);
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    EXPECT_GT(fs.sent, 0u) << "flow " << i;
    // Conservation: deliveries can't exceed sends.
    EXPECT_LE(fs.delivered, fs.sent);
  }
}

TEST(ScenarioRun, MechanismNames) {
  EXPECT_EQ(mechanism_name(Mechanism::Corelite), "corelite");
  EXPECT_EQ(mechanism_name(Mechanism::Csfq), "csfq");
  EXPECT_EQ(mechanism_name(Mechanism::DropTail), "droptail");
  EXPECT_EQ(mechanism_name(Mechanism::Red), "red");
}

}  // namespace
}  // namespace corelite::scenario

// Tests for the TCP agents: ACK clocking, slow start / congestion
// avoidance, fast retransmit, RTO recovery, receiver reordering — and
// the end-host <-> Corelite-edge interaction (transit shaping) the
// paper lists as ongoing work.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"
#include "transport/tcp.h"

namespace corelite::transport {
namespace {

// Sender host -> link -> receiver host.
struct TcpPairFixture {
  sim::Simulator simulator{11};
  net::Network network{simulator};
  net::NodeId a = network.add_node("sender");
  net::NodeId b = network.add_node("receiver");
  TcpConfig cfg;

  std::unique_ptr<TcpSender> sender;
  std::unique_ptr<TcpReceiver> receiver;

  void wire(sim::Rate rate, sim::TimeDelta delay, std::size_t queue) {
    network.connect_duplex(a, b, rate, delay, queue);
    network.build_routes();
    sender = std::make_unique<TcpSender>(network, a, b, /*flow=*/1, cfg);
    receiver = std::make_unique<TcpReceiver>(network, b, a, /*flow=*/1, cfg);
    network.node(b).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Data) receiver->on_segment(p);
    });
    network.node(a).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Ack) sender->on_ack(p);
    });
    sender->start(sim::SimTime::zero());
  }
};

TEST(Tcp, DeliversInOrderOverCleanLink) {
  TcpPairFixture f;
  // Cap cwnd below BDP + queue so the window never overruns the path:
  // a genuinely loss-free run.
  f.cfg.max_cwnd_pkts = 60.0;
  f.wire(sim::Rate::mbps(8), sim::TimeDelta::millis(10), 100);
  f.simulator.run_until(sim::SimTime::seconds(10));
  // 8 Mbps = 1000 pkt/s; after 10 s nearly 10k segments in order.
  EXPECT_GT(f.receiver->delivered_in_order(), 8000u);
  EXPECT_EQ(f.receiver->reorder_buffer_size(), 0u);
  EXPECT_EQ(f.sender->retransmits(), 0u);
  EXPECT_EQ(f.sender->timeouts(), 0u);
}

TEST(Tcp, SlowStartDoublesWindow) {
  TcpPairFixture f;
  f.cfg.initial_ssthresh_pkts = 512.0;
  f.wire(sim::Rate::mbps(100), sim::TimeDelta::millis(50), 2000);
  // One RTT = ~100 ms.  After k RTTs in slow start, cwnd ~ 2^k * init.
  f.simulator.run_until(sim::SimTime::seconds(0.45));  // ~4 RTTs
  EXPECT_GT(f.sender->cwnd_pkts(), 16.0);
  EXPECT_TRUE(f.sender->in_slow_start() || f.sender->cwnd_pkts() >= 512.0);
}

TEST(Tcp, BottleneckCausesLossAndRecovery) {
  TcpPairFixture f;
  // Slow link, small queue: loss is inevitable; TCP must keep going.
  f.wire(sim::Rate::mbps(1), sim::TimeDelta::millis(20), 10);
  f.simulator.run_until(sim::SimTime::seconds(30));
  EXPECT_GT(f.sender->retransmits(), 0u);
  // Goodput close to the 125 pkt/s bottleneck (>= 70%).
  EXPECT_GT(f.receiver->delivered_in_order(), 30u * 125u * 7 / 10);
  // No stuck connection: everything sent was eventually acked or refilled.
  EXPECT_GT(f.sender->highest_acked(), 30u * 125u * 7 / 10);
}

TEST(Tcp, FastRetransmitWithoutTimeout) {
  TcpPairFixture f;
  f.wire(sim::Rate::mbps(2), sim::TimeDelta::millis(20), 20);
  f.simulator.run_until(sim::SimTime::seconds(20));
  EXPECT_GT(f.sender->retransmits(), 0u);
  // With steady dup-ACK streams, most recoveries avoid RTO.
  EXPECT_LT(f.sender->timeouts(), f.sender->retransmits());
}

TEST(Tcp, RttEstimateTracksPathDelay) {
  TcpPairFixture f;
  f.wire(sim::Rate::mbps(8), sim::TimeDelta::millis(40), 200);
  f.simulator.run_until(sim::SimTime::seconds(5));
  // Path RTT: 2 x 40 ms + queueing/serialization.
  EXPECT_GT(f.sender->srtt_sec(), 0.07);
  EXPECT_LT(f.sender->srtt_sec(), 0.4);
}

TEST(Tcp, DelayedAcksHalveAckVolume) {
  TcpPairFixture plain;
  plain.cfg.max_cwnd_pkts = 60.0;
  plain.wire(sim::Rate::mbps(8), sim::TimeDelta::millis(10), 100);
  plain.simulator.run_until(sim::SimTime::seconds(10));

  TcpPairFixture delayed;
  delayed.cfg.max_cwnd_pkts = 60.0;
  delayed.cfg.delayed_acks = true;
  delayed.wire(sim::Rate::mbps(8), sim::TimeDelta::millis(10), 100);
  delayed.simulator.run_until(sim::SimTime::seconds(10));

  // Roughly one ACK per two segments instead of one per segment...
  const double plain_ratio = static_cast<double>(plain.receiver->acks_sent()) /
                             static_cast<double>(plain.receiver->delivered_in_order());
  const double delayed_ratio = static_cast<double>(delayed.receiver->acks_sent()) /
                               static_cast<double>(delayed.receiver->delivered_in_order());
  EXPECT_NEAR(plain_ratio, 1.0, 0.05);
  EXPECT_NEAR(delayed_ratio, 0.5, 0.1);
  // ...at comparable goodput (ACK clocking at every-other segment).
  EXPECT_GT(delayed.receiver->delivered_in_order(),
            plain.receiver->delivered_in_order() * 8 / 10);
}

TEST(Tcp, DelayedAcksStillRecoverFromLoss) {
  TcpPairFixture f;
  f.cfg.delayed_acks = true;
  f.wire(sim::Rate::mbps(1), sim::TimeDelta::millis(20), 10);
  f.simulator.run_until(sim::SimTime::seconds(30));
  // Out-of-order arrivals bypass the delay, so dup-ACKs still flow and
  // the connection keeps its goodput near the 125 pkt/s bottleneck.
  EXPECT_GT(f.sender->retransmits(), 0u);
  EXPECT_GT(f.receiver->delivered_in_order(), 30u * 125u * 6 / 10);
}

TEST(TcpReceiver, ReordersOutOfOrderSegments) {
  sim::Simulator simulator{1};
  net::Network network{simulator};
  const auto a = network.add_node("a");
  const auto b = network.add_node("b");
  network.connect_duplex(a, b, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 50);
  network.build_routes();
  TcpReceiver rx{network, b, a, 1};
  auto seg = [&](std::uint64_t seq) {
    net::Packet p;
    p.kind = net::PacketKind::Data;
    p.flow = 1;
    p.seq = seq;
    return p;
  };
  rx.on_segment(seg(0));
  rx.on_segment(seg(2));  // gap at 1
  rx.on_segment(seg(3));
  EXPECT_EQ(rx.next_expected(), 1u);
  EXPECT_EQ(rx.reorder_buffer_size(), 2u);
  rx.on_segment(seg(1));  // fills the hole; drains the buffer
  EXPECT_EQ(rx.next_expected(), 4u);
  EXPECT_EQ(rx.reorder_buffer_size(), 0u);
  // Duplicate ACKs were emitted for the out-of-order arrivals.
  EXPECT_EQ(rx.acks_sent(), 4u);
}

// ---------------------------------------------------------------------------
// TCP through a Corelite edge (transit shaping): the end-host <-> edge
// interaction of paper §6.

struct TcpOverCoreliteFixture {
  sim::Simulator simulator{21};
  net::Network network{simulator};
  // host_a -> edge_a -> core -> sink edge -> receiver hosts,
  // host_b -> edge_b -> core (same bottleneck core -> sink).
  net::NodeId host_a = network.add_node("hostA");
  net::NodeId host_b = network.add_node("hostB");
  net::NodeId edge_a = network.add_node("edgeA");
  net::NodeId edge_b = network.add_node("edgeB");
  net::NodeId core = network.add_node("core");
  net::NodeId sink = network.add_node("sinkEdge");
  net::NodeId rx_a = network.add_node("rxA");
  net::NodeId rx_b = network.add_node("rxB");

  qos::CoreliteConfig cfg;
  stats::FlowTracker tracker;
  std::unique_ptr<qos::CoreliteCoreRouter> core_router;
  std::unique_ptr<qos::CoreliteEdgeRouter> er_a;
  std::unique_ptr<qos::CoreliteEdgeRouter> er_b;
  std::unique_ptr<TcpSender> tcp_a;
  std::unique_ptr<TcpSender> tcp_b;
  std::unique_ptr<TcpReceiver> rxr_a;
  std::unique_ptr<TcpReceiver> rxr_b;

  void wire(double weight_a, double weight_b) {
    const auto fast = sim::Rate::mbps(20);
    const auto slow = sim::Rate::mbps(4);  // 500 pkt/s bottleneck
    const auto d = sim::TimeDelta::millis(5);
    network.connect_duplex(host_a, edge_a, fast, d, 200);
    network.connect_duplex(host_b, edge_b, fast, d, 200);
    network.connect_duplex(edge_a, core, fast, d, 200);
    network.connect_duplex(edge_b, core, fast, d, 200);
    network.connect_duplex(core, sink, slow, d, 40);
    network.connect_duplex(sink, rx_a, fast, d, 200);
    network.connect_duplex(sink, rx_b, fast, d, 200);
    network.build_routes();

    core_router = std::make_unique<qos::CoreliteCoreRouter>(network, core, cfg);
    er_a = std::make_unique<qos::CoreliteEdgeRouter>(network, edge_a, cfg, &tracker);
    er_b = std::make_unique<qos::CoreliteEdgeRouter>(network, edge_b, cfg, &tracker);

    net::FlowSpec fa;
    fa.id = 1;
    fa.ingress = edge_a;
    fa.egress = rx_a;
    fa.weight = weight_a;
    er_a->add_transit_flow(fa);
    net::FlowSpec fb;
    fb.id = 2;
    fb.ingress = edge_b;
    fb.egress = rx_b;
    fb.weight = weight_b;
    er_b->add_transit_flow(fb);

    tcp_a = std::make_unique<TcpSender>(network, host_a, rx_a, 1);
    tcp_b = std::make_unique<TcpSender>(network, host_b, rx_b, 2);
    rxr_a = std::make_unique<TcpReceiver>(network, rx_a, host_a, 1);
    rxr_b = std::make_unique<TcpReceiver>(network, rx_b, host_b, 2);
    network.node(rx_a).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Data) rxr_a->on_segment(p);
    });
    network.node(rx_b).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Data) rxr_b->on_segment(p);
    });
    network.node(host_a).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Ack) tcp_a->on_ack(p);
    });
    network.node(host_b).set_local_sink([this](net::Packet&& p) {
      if (p.kind == net::PacketKind::Ack) tcp_b->on_ack(p);
    });
    tcp_a->start(sim::SimTime::zero());
    tcp_b->start(sim::SimTime::zero());
  }
};

TEST(TcpOverCorelite, WeightedGoodputAndLossFreeCore) {
  TcpOverCoreliteFixture f;
  f.wire(/*weight_a=*/1.0, /*weight_b=*/3.0);
  f.simulator.run_until(sim::SimTime::seconds(120));

  const double goodput_a = static_cast<double>(f.rxr_a->delivered_in_order()) / 120.0;
  const double goodput_b = static_cast<double>(f.rxr_b->delivered_in_order()) / 120.0;
  // Weighted shares ~125 / ~375 pkt/s, with TCP/shaping overhead slack.
  EXPECT_GT(goodput_a + goodput_b, 380.0);
  EXPECT_NEAR(goodput_b / goodput_a, 3.0, 1.2);

  // The core (and every in-network link) stays loss-free; all drops are
  // edge shaping-queue drops, as §6 prescribes.
  for (const auto& link : f.network.links()) {
    EXPECT_EQ(link->stats().dropped, 0u);
  }
  EXPECT_GT(f.er_a->transit_drops() + f.er_b->transit_drops(), 0u);
}

TEST(TcpOverCorelite, MicroFlowAggregation) {
  // Paper §2: "any reference to a flow ... signifies an edge to edge
  // flow that can potentially comprise of several end to end micro
  // flows."  Three TCP micro-flows share edge-to-edge flow 1 while a
  // single micro-flow is flow 2; with equal weights the AGGREGATES get
  // equal bandwidth (not 3:1 by connection count).
  TcpOverCoreliteFixture f;
  f.wire(/*weight_a=*/1.0, /*weight_b=*/1.0);

  // Two more TCP connections through edge_a, all under FlowId 1, each
  // with its own receiver host behind the sink edge.
  struct Micro {
    net::NodeId host, rx;
    std::unique_ptr<TcpSender> tcp;
    std::unique_ptr<TcpReceiver> receiver;
  };
  std::vector<Micro> extra(2);
  for (auto& m : extra) {
    m.host = f.network.add_node("microHost");
    m.rx = f.network.add_node("microRx");
    f.network.connect_duplex(m.host, f.edge_a, sim::Rate::mbps(20),
                             sim::TimeDelta::millis(5), 200);
    f.network.connect_duplex(f.sink, m.rx, sim::Rate::mbps(20), sim::TimeDelta::millis(5),
                             200);
  }
  f.network.build_routes();
  for (auto& m : extra) {
    m.tcp = std::make_unique<TcpSender>(f.network, m.host, m.rx, /*flow=*/1);
    m.receiver = std::make_unique<TcpReceiver>(f.network, m.rx, m.host, /*flow=*/1);
    f.network.node(m.rx).set_local_sink([&m](net::Packet&& p) {
      if (p.kind == net::PacketKind::Data) m.receiver->on_segment(p);
    });
    f.network.node(m.host).set_local_sink([&m](net::Packet&& p) {
      if (p.kind == net::PacketKind::Ack) m.tcp->on_ack(p);
    });
    m.tcp->start(sim::SimTime::zero());
  }

  f.simulator.run_until(sim::SimTime::seconds(120));

  const double agg_a = (static_cast<double>(f.rxr_a->delivered_in_order()) +
                        static_cast<double>(extra[0].receiver->delivered_in_order()) +
                        static_cast<double>(extra[1].receiver->delivered_in_order())) /
                       120.0;
  const double agg_b = static_cast<double>(f.rxr_b->delivered_in_order()) / 120.0;
  // Equal weights => equal aggregate shares (~250 each), regardless of
  // the 3:1 connection count.
  EXPECT_NEAR(agg_a / agg_b, 1.0, 0.35);
  EXPECT_GT(agg_a + agg_b, 350.0);
}

TEST(TcpOverCorelite, EdgeQueueBoundsHoldUnderPressure) {
  TcpOverCoreliteFixture f;
  f.cfg.edge_queue_capacity = 16;
  f.wire(1.0, 1.0);
  f.simulator.run_until(sim::SimTime::seconds(60));
  // Both connections make progress despite the tiny shaping queues.
  EXPECT_GT(f.rxr_a->delivered_in_order(), 3000u);
  EXPECT_GT(f.rxr_b->delivered_in_order(), 3000u);
}

}  // namespace
}  // namespace corelite::transport

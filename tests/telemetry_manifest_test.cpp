// Run-manifest tests: digest formatting, build provenance, and the JSON
// document every binary emits behind --telemetry.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/manifest.h"
#include "telemetry/metrics.h"

namespace corelite::telemetry {
namespace {

TEST(Manifest, DigestHexIsSixteenLowercaseDigits) {
  EXPECT_EQ(digest_hex(0), "0000000000000000");
  EXPECT_EQ(digest_hex(0xabcu), "0000000000000abc");
  EXPECT_EQ(digest_hex(0xDEADBEEFCAFEF00DULL), "deadbeefcafef00d");
}

TEST(Manifest, BuildInfoIsAlwaysPopulated) {
  // Values depend on the build environment, but the accessors must
  // never return empty strings ("unknown" is the worst case).
  EXPECT_FALSE(BuildInfo::git_sha().empty());
  EXPECT_FALSE(BuildInfo::compiler().empty());
  EXPECT_FALSE(BuildInfo::flags().empty());
  EXPECT_FALSE(BuildInfo::build_type().empty());
}

TEST(Manifest, DocumentCarriesEveryRequiredKey) {
  RunManifest m;
  m.tool = "unit_test";
  m.scenario = "fig5,fig7";
  m.mechanism = "corelite,csfq";
  m.base_seed = 42;
  m.runs = 8;
  m.jobs = 4;
  m.events = 123456;
  m.result_digest = 0x1234abcd5678ef00ULL;
  m.hotpath.exp_calls = 7;
  m.wall_phases_ms.emplace_back("setup", 1.5);
  m.wall_phases_ms.emplace_back("run", 250.25);
  m.extra.emplace_back("trace", "trace.json");

  std::ostringstream os;
  write_manifest(os, m);
  const std::string out = os.str();

  EXPECT_NE(out.find("\"tool\": \"unit_test\""), std::string::npos);
  EXPECT_NE(out.find("\"scenario\": \"fig5,fig7\""), std::string::npos);
  EXPECT_NE(out.find("\"mechanism\": \"corelite,csfq\""), std::string::npos);
  EXPECT_NE(out.find("\"base_seed\": 42"), std::string::npos);
  EXPECT_NE(out.find("\"runs\": 8"), std::string::npos);
  EXPECT_NE(out.find("\"jobs\": 4"), std::string::npos);
  EXPECT_NE(out.find("\"events\": 123456"), std::string::npos);
  // The digest is rendered exactly as the binaries print it, so the
  // manifest can be cross-checked against stdout.
  EXPECT_NE(out.find("\"result_digest\": \"1234abcd5678ef00\""), std::string::npos);
  EXPECT_NE(out.find("\"build\""), std::string::npos);
  EXPECT_NE(out.find("\"git_sha\""), std::string::npos);
  EXPECT_NE(out.find("\"compiler\""), std::string::npos);
  EXPECT_NE(out.find("\"flags\""), std::string::npos);
  EXPECT_NE(out.find("\"build_type\""), std::string::npos);
  EXPECT_NE(out.find("\"wall_phases_ms\": {\"setup\": 1.5, \"run\": 250.25}"), std::string::npos);
  EXPECT_NE(out.find("\"exp_calls\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"metrics\": ["), std::string::npos);
  EXPECT_NE(out.find("\"extra\": {\"trace\": \"trace.json\"}"), std::string::npos);
}

TEST(Manifest, MetricsSectionReflectsTheLiveSnapshot) {
  set_enabled(true);
  reset_metrics();
  const Counter c{"manifest.test.counter"};
  const Histogram h{"manifest.test.hist"};
  c.add(3);
  h.observe(5.0);  // bucket [4, 8)

  std::ostringstream os;
  write_manifest(os, RunManifest{});
  const std::string out = os.str();
  EXPECT_NE(out.find("{\"name\": \"manifest.test.counter\", \"kind\": \"counter\", "
                     "\"count\": 3, \"sum\": 3}"),
            std::string::npos);
  // Histograms render sparse [bucket_floor, count] pairs.
  EXPECT_NE(out.find("\"buckets\": [[4, 1]]"), std::string::npos);

  reset_metrics();
  set_enabled(false);
}

}  // namespace
}  // namespace corelite::telemetry

// Tests for the command-line argument parser and the option ->
// ScenarioSpec mapping used by tools/corelite_sim.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "cli/args.h"
#include "cli/scenario_args.h"

namespace corelite::cli {
namespace {

bool parse(ArgParser& p, std::vector<const char*> args, std::ostream& err) {
  args.insert(args.begin(), "prog");
  return p.parse(static_cast<int>(args.size()), args.data(), err);
}

TEST(ArgParser, DefaultsApplyWhenUnset) {
  ArgParser p{"prog", "test"};
  p.add_string("name", "alpha", "h");
  p.add_double("x", 2.5, "h");
  p.add_int("n", 7, "h");
  p.add_flag("v", "h");
  std::ostringstream err;
  ASSERT_TRUE(parse(p, {}, err));
  EXPECT_EQ(p.get_string("name"), "alpha");
  EXPECT_DOUBLE_EQ(p.get_double("x"), 2.5);
  EXPECT_EQ(p.get_int("n"), 7);
  EXPECT_FALSE(p.get_flag("v"));
  EXPECT_FALSE(p.was_set("name"));
}

TEST(ArgParser, SpaceAndEqualsSyntax) {
  ArgParser p{"prog", "test"};
  p.add_string("name", "", "h");
  p.add_double("x", 0.0, "h");
  std::ostringstream err;
  ASSERT_TRUE(parse(p, {"--name", "beta", "--x=3.25"}, err));
  EXPECT_EQ(p.get_string("name"), "beta");
  EXPECT_DOUBLE_EQ(p.get_double("x"), 3.25);
  EXPECT_TRUE(p.was_set("name"));
}

TEST(ArgParser, FlagNeedsNoValue) {
  ArgParser p{"prog", "test"};
  p.add_flag("verbose", "h");
  std::ostringstream err;
  ASSERT_TRUE(parse(p, {"--verbose"}, err));
  EXPECT_TRUE(p.get_flag("verbose"));
}

TEST(ArgParser, RejectsUnknownOption) {
  ArgParser p{"prog", "test"};
  std::ostringstream err;
  EXPECT_FALSE(parse(p, {"--nope", "1"}, err));
  EXPECT_NE(err.str().find("unknown option"), std::string::npos);
}

TEST(ArgParser, RejectsMalformedNumber) {
  ArgParser p{"prog", "test"};
  p.add_double("x", 0.0, "h");
  p.add_int("n", 0, "h");
  std::ostringstream err;
  EXPECT_FALSE(parse(p, {"--x", "abc"}, err));
  std::ostringstream err2;
  EXPECT_FALSE(parse(p, {"--n", "1.5"}, err2));
}

// Regression: strtoll saturates silently on overflow (errno=ERANGE was
// never checked), so "--n 99999999999999999999" became LLONG_MAX.
TEST(ArgParser, RejectsOutOfRangeInteger) {
  ArgParser p{"prog", "test"};
  p.add_int("n", 0, "h");
  std::ostringstream err;
  EXPECT_FALSE(parse(p, {"--n", "99999999999999999999"}, err));
  EXPECT_NE(err.str().find("out of range"), std::string::npos);
  std::ostringstream err2;
  EXPECT_FALSE(parse(p, {"--n", "-99999999999999999999"}, err2));
  // The boundary values themselves still parse.
  std::ostringstream err3;
  ArgParser q{"prog", "test"};
  q.add_int("n", 0, "h");
  ASSERT_TRUE(parse(q, {"--n", "9223372036854775807"}, err3));
  EXPECT_EQ(q.get_int("n"), INT64_MAX);
}

// Regression: "--x 1e999" parsed to inf (ERANGE ignored) and literal
// inf/nan passed straight through to option consumers.
TEST(ArgParser, RejectsNonFiniteDouble) {
  for (const char* bad : {"1e999", "-1e999", "inf", "-inf", "nan"}) {
    ArgParser p{"prog", "test"};
    p.add_double("x", 0.0, "h");
    std::ostringstream err;
    EXPECT_FALSE(parse(p, {"--x", bad}, err)) << bad;
    EXPECT_NE(err.str().find("out of range"), std::string::npos) << bad;
  }
}

TEST(ArgParser, RejectsMissingValue) {
  ArgParser p{"prog", "test"};
  p.add_string("name", "", "h");
  std::ostringstream err;
  EXPECT_FALSE(parse(p, {"--name"}, err));
}

TEST(ArgParser, HelpPrintsUsageAndFails) {
  ArgParser p{"prog", "my tool"};
  p.add_string("name", "d", "the name option");
  std::ostringstream err;
  EXPECT_FALSE(parse(p, {"--help"}, err));
  EXPECT_NE(err.str().find("my tool"), std::string::npos);
  EXPECT_NE(err.str().find("the name option"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Scenario mapping

TEST(ScenarioArgs, WeightListParsing) {
  auto w = parse_weight_list("1,2.5,3");
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(*w, (std::vector<double>{1.0, 2.5, 3.0}));
  EXPECT_FALSE(parse_weight_list("").has_value());
  EXPECT_FALSE(parse_weight_list("1,x").has_value());
  EXPECT_FALSE(parse_weight_list("1,-2").has_value());
}

// Regression: NaN compares false against `w <= 0.0`, so "nan" used to
// slip through and poison every normalized-rate computation; "inf" and
// overflowing literals ("1e999" parses to inf) passed outright.
TEST(ScenarioArgs, WeightListRejectsNonFiniteWeights) {
  EXPECT_FALSE(parse_weight_list("nan").has_value());
  EXPECT_FALSE(parse_weight_list("1,nan,2").has_value());
  EXPECT_FALSE(parse_weight_list("-nan").has_value());
  EXPECT_FALSE(parse_weight_list("inf").has_value());
  EXPECT_FALSE(parse_weight_list("1,inf").has_value());
  EXPECT_FALSE(parse_weight_list("1e999").has_value());
  EXPECT_FALSE(parse_weight_list("1,1e999,2").has_value());
}

// Regression: empty items between or around delimiters must not be
// silently skipped ("1,,2") or dropped ("1,2,", ",1").
TEST(ScenarioArgs, WeightListRejectsEmptyItems) {
  EXPECT_FALSE(parse_weight_list("1,,2").has_value());
  EXPECT_FALSE(parse_weight_list("1,2,").has_value());
  EXPECT_FALSE(parse_weight_list(",1").has_value());
  EXPECT_FALSE(parse_weight_list(",").has_value());
}

TEST(ScenarioArgs, DefaultsProduceFig5Corelite) {
  ArgParser p{"prog", "test"};
  register_scenario_options(p);
  std::ostringstream err;
  ASSERT_TRUE(parse(p, {}, err));
  auto spec = spec_from_args(p, err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->mechanism, scenario::Mechanism::Corelite);
  EXPECT_EQ(spec->num_flows, 10u);
}

TEST(ScenarioArgs, FullOverrides) {
  ArgParser p{"prog", "test"};
  register_scenario_options(p);
  std::ostringstream err;
  ASSERT_TRUE(parse(p,
                    {"--scenario", "fig3", "--mechanism", "csfq", "--duration", "42",
                     "--seed", "99", "--epoch-ms", "50", "--k1", "2", "--qthresh", "12",
                     "--link-delay-ms", "10"},
                    err));
  auto spec = spec_from_args(p, err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->mechanism, scenario::Mechanism::Csfq);
  EXPECT_EQ(spec->num_flows, 20u);
  EXPECT_DOUBLE_EQ(spec->duration.sec(), 42.0);
  EXPECT_EQ(spec->seed, 99u);
  EXPECT_DOUBLE_EQ(spec->corelite.core_epoch.ms(), 50.0);
  EXPECT_DOUBLE_EQ(spec->corelite.k1, 2.0);
  EXPECT_DOUBLE_EQ(spec->corelite.q_thresh_pkts, 12.0);
  EXPECT_DOUBLE_EQ(spec->topology.link_delay.ms(), 10.0);
}

TEST(ScenarioArgs, WeightsMustMatchFlowCount) {
  ArgParser p{"prog", "test"};
  register_scenario_options(p);
  std::ostringstream err;
  ASSERT_TRUE(parse(p, {"--weights", "1,2,3"}, err));  // fig5 has 10 flows
  EXPECT_FALSE(spec_from_args(p, err).has_value());
  EXPECT_NE(err.str().find("exactly 10"), std::string::npos);
}

TEST(ScenarioArgs, RejectsUnknownEnumValues) {
  for (const auto& bad : std::vector<std::vector<const char*>>{
           {"--scenario", "fig99"},
           {"--mechanism", "magic"},
           {"--selector", "psychic"},
           {"--detector", "vibes"},
           {"--adaptation", "none"},
           {"--pacing", "vibes"}}) {
    ArgParser p{"prog", "test"};
    register_scenario_options(p);
    std::ostringstream err;
    ASSERT_TRUE(parse(p, bad, err));
    EXPECT_FALSE(spec_from_args(p, err).has_value()) << bad[0] << " " << bad[1];
  }
}

TEST(ScenarioArgs, VariantSelectionsApply) {
  ArgParser p{"prog", "test"};
  register_scenario_options(p);
  std::ostringstream err;
  ASSERT_TRUE(parse(p,
                    {"--selector", "cache", "--detector", "ewma", "--adaptation", "aimd",
                     "--pacing", "poisson"},
                    err));
  auto spec = spec_from_args(p, err);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->corelite.selector, qos::SelectorKind::MarkerCache);
  EXPECT_EQ(spec->corelite.detector, qos::DetectorKind::Ewma);
  EXPECT_EQ(spec->corelite.adapt.kind, qos::AdaptKind::Aimd);
  EXPECT_EQ(spec->corelite.pacing, qos::PacingMode::Poisson);
}

}  // namespace
}  // namespace corelite::cli

// Tests for descriptive statistics and convergence detection.
#include <gtest/gtest.h>

#include <vector>

#include "stats/summary.h"

namespace corelite::stats {
namespace {

TEST(Summary, EmptyIsZeros) {
  const auto s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(Summary, BasicMoments) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const auto s = summarize(xs);
  EXPECT_EQ(s.n, 8u);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  EXPECT_DOUBLE_EQ(s.stddev, 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min, 2.0);
  EXPECT_DOUBLE_EQ(s.max, 9.0);
}

TEST(Summary, Percentiles) {
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  EXPECT_NEAR(percentile(xs, 50.0), 50.5, 1e-9);
  EXPECT_NEAR(percentile(xs, 0.0), 1.0, 1e-9);
  EXPECT_NEAR(percentile(xs, 100.0), 100.0, 1e-9);
  EXPECT_NEAR(percentile(xs, 90.0), 90.1, 1e-9);
}

TEST(Summary, PercentileSingleElement) {
  const std::vector<double> xs{42.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 42.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 42.0);
}

TEST(Convergence, DetectsSettlingPoint) {
  TimeSeries ts;
  // Ramp 0..50 over [0, 10], then hold at 100 +/- 2.
  for (int i = 0; i <= 100; ++i) ts.add(i * 0.1, i * 0.5);
  for (int i = 1; i <= 300; ++i) ts.add(10.0 + i * 0.1, 100.0 + ((i % 2 == 0) ? 2.0 : -2.0));
  const double t = convergence_time(ts, 100.0, 40.0);
  EXPECT_GT(t, 8.0);
  EXPECT_LT(t, 14.0);
}

TEST(Convergence, NeverSettledReturnsEnd) {
  TimeSeries ts;
  for (int i = 0; i <= 400; ++i) ts.add(i * 0.1, static_cast<double>(i));  // diverges
  EXPECT_DOUBLE_EQ(convergence_time(ts, 10.0, 40.0), 40.0);
}

TEST(Convergence, ImmediatelySettledReturnsNearZero) {
  TimeSeries ts;
  for (int i = 0; i <= 400; ++i) ts.add(i * 0.1, 50.0);
  EXPECT_LE(convergence_time(ts, 50.0, 40.0), 2.0);
}

}  // namespace
}  // namespace corelite::stats

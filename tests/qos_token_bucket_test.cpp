// Unit tests for the token-bucket shaper.
#include <gtest/gtest.h>

#include "qos/token_bucket.h"

namespace corelite::qos {
namespace {

sim::SimTime at(double t) { return sim::SimTime::seconds(t); }

TEST(TokenBucket, StartsFullAllowsBurst) {
  TokenBucket tb{10.0, 5.0};
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(tb.try_consume(1.0, at(0)));
  EXPECT_FALSE(tb.try_consume(1.0, at(0)));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb{10.0, 5.0};
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(tb.try_consume(1.0, at(0)));
  // 0.1 s at 10 tokens/s => exactly 1 token.
  EXPECT_FALSE(tb.try_consume(1.0, at(0.05)));
  EXPECT_TRUE(tb.try_consume(1.0, at(0.1)));
  EXPECT_FALSE(tb.try_consume(1.0, at(0.1)));
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb{10.0, 3.0};
  // A long idle period must not bank more than `burst` tokens.
  EXPECT_DOUBLE_EQ(tb.tokens(at(100.0)), 3.0);
  EXPECT_TRUE(tb.try_consume(3.0, at(100.0)));
  EXPECT_FALSE(tb.try_consume(0.5, at(100.0)));
}

TEST(TokenBucket, TimeUntilIsExact) {
  TokenBucket tb{4.0, 2.0};
  ASSERT_TRUE(tb.try_consume(2.0, at(0)));
  EXPECT_DOUBLE_EQ(tb.time_until(1.0, at(0)).sec(), 0.25);
  EXPECT_DOUBLE_EQ(tb.time_until(2.0, at(0)).sec(), 0.5);
  EXPECT_DOUBLE_EQ(tb.time_until(1.0, at(0.25)).sec(), 0.0);
}

TEST(TokenBucket, SetRateRefillsAtOldRateFirst) {
  TokenBucket tb{10.0, 10.0};
  ASSERT_TRUE(tb.try_consume(10.0, at(0)));
  // Half a second at the OLD rate banks 5 tokens, then switch to 2/s.
  tb.set_rate(2.0, at(0.5));
  EXPECT_NEAR(tb.tokens(at(0.5)), 5.0, 1e-9);
  EXPECT_NEAR(tb.tokens(at(1.0)), 6.0, 1e-9);  // +0.5 s at 2/s
}

TEST(TokenBucket, ClearEmptiesBucket) {
  TokenBucket tb{10.0, 5.0};
  tb.clear(at(1.0));
  EXPECT_DOUBLE_EQ(tb.tokens(at(1.0)), 0.0);
  EXPECT_NEAR(tb.tokens(at(1.1)), 1.0, 1e-9);
}

TEST(TokenBucket, TimeUntilNeverBelowSchedulableQuantum) {
  // Regression: with the bucket a hair (~1e-12 tokens) short, the naive
  // wait (deficit / rate) is ~3e-15 s — BELOW the double ulp of a
  // mid-simulation timestamp like t = 32.5 s, so `now + wait == now`
  // and a rescheduling waiter livelocks at constant virtual time.
  TokenBucket tb{289.0, 8.0};
  const auto now = at(32.5);
  // Drain to a value just under 1 token.
  ASSERT_TRUE(tb.try_consume(8.0, at(0)));
  // Let it refill to just below 1: a 2e-12-token deficit (just past the
  // consume epsilon) whose naive wait is ~7e-15 s at rate 289.
  const double target = (1.0 - 2e-12) / 289.0;
  EXPECT_FALSE(tb.try_consume(1.0, at(target)));
  const auto wait = tb.time_until(1.0, at(target));
  EXPECT_GE(wait.sec(), 1e-6);
  // And the floored wait actually advances a mid-run timestamp.
  EXPECT_GT((now + wait).sec(), now.sec());
}

TEST(TokenBucket, LongRunRateIsEnforced) {
  TokenBucket tb{100.0, 8.0};
  tb.clear(at(0));
  int sent = 0;
  // Greedy consumption over 10 s in 1 ms steps.
  for (int ms = 0; ms < 10000; ++ms) {
    while (tb.try_consume(1.0, at(ms * 0.001))) ++sent;
  }
  EXPECT_NEAR(static_cast<double>(sent) / 10.0, 100.0, 2.0);
}

}  // namespace
}  // namespace corelite::qos

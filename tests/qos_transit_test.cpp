// Direct unit tests for the edge router's transit-shaping mode (the
// end-host interaction substrate): interception, shaping rate, queue
// bounds, marker injection for forwarded traffic, lifecycle, and the
// ill-behaved-flow protection the paper's §6 promises.
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {
namespace {

// host -> edge -> sink; the edge shapes transit flows.
struct TransitFixture {
  sim::Simulator simulator{41};
  net::Network network{simulator};
  net::NodeId host = network.add_node("host");
  net::NodeId edge = network.add_node("edge");
  net::NodeId sink = network.add_node("sink");
  CoreliteConfig cfg;
  stats::FlowTracker tracker;
  std::vector<double> arrivals;

  TransitFixture() {
    network.connect_duplex(host, edge, sim::Rate::mbps(100), sim::TimeDelta::millis(1), 500);
    network.connect_duplex(edge, sink, sim::Rate::mbps(100), sim::TimeDelta::millis(1), 500);
    network.build_routes();
    network.node(sink).set_local_sink([this](net::Packet&& p) {
      if (p.is_data()) {
        arrivals.push_back(simulator.now().sec());
        tracker.on_delivered(p.flow);
      }
    });
  }

  net::FlowSpec flow(net::FlowId id, double weight = 1.0) {
    net::FlowSpec fs;
    fs.id = id;
    fs.ingress = edge;
    fs.egress = sink;
    fs.weight = weight;
    return fs;
  }

  // CBR blaster at the host: `pps` packets/s of flow `id`.
  void blast(net::FlowId id, double pps) {
    simulator.every(sim::TimeDelta::seconds(1.0 / pps), [this, id] {
      net::Packet p;
      p.uid = network.next_packet_uid();
      p.kind = net::PacketKind::Data;
      p.flow = id;
      p.src = host;
      p.dst = sink;
      p.size = sim::DataSize::kilobytes(1);
      network.inject(host, std::move(p));
    });
  }

  [[nodiscard]] double delivered_pps(double t0, double t1) const {
    int n = 0;
    for (double t : arrivals) {
      if (t >= t0 && t < t1) ++n;
    }
    return n / (t1 - t0);
  }
};

TEST(Transit, ShapesBlasterToAllottedRate) {
  TransitFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_transit_flow(f.flow(1));
  f.blast(1, 400.0);  // host sends 400 pkt/s regardless of its share
  f.simulator.run_until(sim::SimTime::seconds(60));
  // No congestion anywhere (fat links): the edge's b_g keeps climbing,
  // so eventually everything passes — but while b_g < 400 the shaping
  // bound binds and the excess is dropped at the edge.
  EXPECT_GT(er.transit_drops(), 0u);
  // b_g crosses 400 around t ~ 43 s (slow-start exit at 32 at t = 6,
  // then +1 pkt/s per 100 ms epoch); delivery then equals the offer.
  EXPECT_NEAR(f.delivered_pps(50, 60), 400.0, 20.0);
  // While shaping was binding, delivery tracked b_g instead (~150 at
  // t ~ 17-18 s).
  EXPECT_LT(f.delivered_pps(15, 20), 250.0);
}

TEST(Transit, DropsStayAtEdgeQueueBound) {
  TransitFixture f;
  f.cfg.edge_queue_capacity = 8;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_transit_flow(f.flow(1));
  f.blast(1, 300.0);
  f.simulator.run_until(sim::SimTime::seconds(10));
  // In-network links never drop; the edge queue polices.
  for (const auto& link : f.network.links()) EXPECT_EQ(link->stats().dropped, 0u);
  EXPECT_GT(er.transit_drops(), 0u);
}

TEST(Transit, NonTransitFlowsForwardUntouched) {
  TransitFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_transit_flow(f.flow(1));
  f.blast(2, 100.0);  // flow 2 is NOT registered: plain forwarding
  f.simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_NEAR(f.delivered_pps(1, 5), 100.0, 10.0);
  EXPECT_EQ(er.transit_drops(), 0u);
}

TEST(Transit, InactiveWindowDropsAtEdge) {
  TransitFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  auto fs = f.flow(1);
  fs.active = {{sim::SimTime::seconds(5), sim::SimTime::infinite()}};
  er.add_transit_flow(fs);
  f.blast(1, 100.0);
  f.simulator.run_until(sim::SimTime::seconds(20));
  // Nothing passes before the admission window opens at t = 5; after
  // it opens the flow slow-starts from scratch and ramps up.
  EXPECT_NEAR(f.delivered_pps(0, 5), 0.0, 1.0);
  EXPECT_GT(f.delivered_pps(6, 10), 2.0);
  EXPECT_GT(f.delivered_pps(15, 20), 40.0);
}

TEST(Transit, MarkersInjectedForForwardedTraffic) {
  TransitFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_transit_flow(f.flow(1, /*weight=*/2.0));
  f.blast(1, 200.0);
  f.simulator.run_until(sim::SimTime::seconds(10));
  EXPECT_GT(er.markers_injected(), 0u);
  // Spacing ~ K1 * w = 2 data packets per marker.
  const auto sent = f.tracker.series(1).sent;
  EXPECT_NEAR(static_cast<double>(sent) / er.markers_injected(), 2.0, 0.5);
}

// Ill-behaved flow protection (paper §6: "drop packets from ill behaved
// flows at the edges of the network"): a blaster ignoring all feedback
// must not degrade a conforming flow sharing the same bottleneck.
TEST(Transit, IllBehavedFlowCannotHurtConformingFlow) {
  sim::Simulator simulator{43};
  net::Network network{simulator};
  const auto host_bad = network.add_node("hostBad");
  const auto edge_bad = network.add_node("edgeBad");
  const auto edge_good = network.add_node("edgeGood");
  const auto core = network.add_node("core");
  const auto sink = network.add_node("sink");
  const auto d = sim::TimeDelta::millis(2);
  network.connect_duplex(host_bad, edge_bad, sim::Rate::mbps(100), d, 500);
  network.connect_duplex(edge_bad, core, sim::Rate::mbps(20), d, 100);
  network.connect_duplex(edge_good, core, sim::Rate::mbps(20), d, 100);
  network.connect_duplex(core, sink, sim::Rate::mbps(4), d, 40);  // 500 pkt/s
  network.build_routes();

  CoreliteConfig cfg;
  stats::FlowTracker tracker;
  CoreliteCoreRouter core_router{network, core, cfg};
  CoreliteEdgeRouter er_bad{network, edge_bad, cfg, &tracker};
  CoreliteEdgeRouter er_good{network, edge_good, cfg, &tracker};

  // Flow 1: hostile 2000 pkt/s blaster behind edge_bad (transit).
  net::FlowSpec f1;
  f1.id = 1;
  f1.ingress = edge_bad;
  f1.egress = sink;
  f1.weight = 1.0;
  er_bad.add_transit_flow(f1);
  simulator.every(sim::TimeDelta::millis(0.5), [&network, host_bad, sink] {
    net::Packet p;
    p.uid = network.next_packet_uid();
    p.kind = net::PacketKind::Data;
    p.flow = 1;
    p.src = host_bad;
    p.dst = sink;
    p.size = sim::DataSize::kilobytes(1);
    network.inject(host_bad, std::move(p));
  });

  // Flow 2: conforming sourced flow with equal weight.
  net::FlowSpec f2;
  f2.id = 2;
  f2.ingress = edge_good;
  f2.egress = sink;
  f2.weight = 1.0;
  er_good.add_flow(f2);

  network.node(sink).set_local_sink([&tracker](net::Packet&& p) {
    if (p.is_data()) tracker.on_delivered(p.flow);
  });

  simulator.run_until(sim::SimTime::seconds(120));

  // Equal weights: the conforming flow still receives its ~250 pkt/s.
  const double good_rate = tracker.series(2).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(good_rate, 250.0, 50.0);
  // The blaster's excess (2000 - ~250) dies at ITS edge, not in the core.
  EXPECT_GT(er_bad.transit_drops(), 50000u);
  const auto* bottleneck = network.find_link(core, sink);
  EXPECT_EQ(bottleneck->stats().dropped, 0u);
}

}  // namespace
}  // namespace corelite::qos

// Tests for the Corelite core router on a real (small) network: marker
// interception, congestion-triggered feedback, weighted-fair feedback
// proportionality, and the feedback packet's addressing contract.
#include <gtest/gtest.h>

#include <map>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {
namespace {

// Two ingress edges -> one core -> sink, with a slow core->sink link so
// the core's output queue actually congests.
struct CoreFixture {
  sim::Simulator simulator{7};
  net::Network network{simulator};
  net::NodeId edge_a = network.add_node("edgeA");
  net::NodeId edge_b = network.add_node("edgeB");
  net::NodeId core = network.add_node("core");
  net::NodeId sink = network.add_node("sink");
  CoreliteConfig cfg;
  stats::FlowTracker tracker;

  CoreFixture() {
    network.connect_duplex(edge_a, core, sim::Rate::mbps(10), sim::TimeDelta::millis(5), 100);
    network.connect_duplex(edge_b, core, sim::Rate::mbps(10), sim::TimeDelta::millis(5), 100);
    network.connect_duplex(core, sink, sim::Rate::mbps(4), sim::TimeDelta::millis(5), 40);
    network.build_routes();
    network.node(sink).set_local_sink([](net::Packet&&) {});
  }

  net::FlowSpec flow(net::FlowId id, net::NodeId ingress, double weight) {
    net::FlowSpec fs;
    fs.id = id;
    fs.ingress = ingress;
    fs.egress = sink;
    fs.weight = weight;
    return fs;
  }
};

TEST(CoreRouter, GeneratesFeedbackUnderCongestion) {
  CoreFixture f;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(60));
  EXPECT_GT(core.total_feedback_sent(), 0u);
  EXPECT_GT(ea.feedback_received() + eb.feedback_received(), 0u);
}

TEST(CoreRouter, NoFeedbackWithoutCongestion) {
  CoreFixture f;
  // Single low-weight flow far below capacity: queue never builds.
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  auto fs = f.flow(1, f.edge_a, 1.0);
  f.cfg.adapt.ss_thresh_pps = 8.0;
  ea.add_flow(fs);
  f.simulator.run_until(sim::SimTime::seconds(5));
  // Rates this early stay under 100 pkt/s vs 500 capacity.
  EXPECT_EQ(core.total_feedback_sent(), 0u);
}

TEST(CoreRouter, FeedbackAddressedToGeneratingEdge) {
  CoreFixture f;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(60));
  // Every feedback the edges counted was addressed to them and stamped
  // with the core's id; both edges converge so both must have seen some.
  EXPECT_GT(ea.feedback_received(), 0u);
  EXPECT_GT(eb.feedback_received(), 0u);
}

TEST(CoreRouter, WeightedRatesEmergeOnSingleBottleneck) {
  CoreFixture f;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  // Weights 1:4 on a 500 pkt/s link: expect ~100 vs ~400 pkt/s.
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 4.0));
  f.simulator.run_until(sim::SimTime::seconds(120));
  const double ra = f.tracker.series(1).allotted_rate.average_over(60, 120);
  const double rb = f.tracker.series(2).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(ra, 100.0, 25.0);
  EXPECT_NEAR(rb, 400.0, 60.0);
  EXPECT_NEAR(rb / ra, 4.0, 1.0);
}

TEST(CoreRouter, MarkerCacheSelectorAlsoConverges) {
  CoreFixture f;
  f.cfg.selector = SelectorKind::MarkerCache;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 2.0));
  f.simulator.run_until(sim::SimTime::seconds(120));
  const double ra = f.tracker.series(1).allotted_rate.average_over(60, 120);
  const double rb = f.tracker.series(2).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(rb / ra, 2.0, 0.8);
  EXPECT_NEAR(ra + rb, 500.0, 100.0);
}

TEST(CoreRouter, DiagnosticsExposePerLinkState) {
  CoreFixture f;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(30));
  const auto diags = core.diagnostics();
  ASSERT_EQ(diags.size(), 3u);  // links to edgeA, edgeB (reverse) and sink
  bool found_congested = false;
  for (const auto& d : diags) {
    ASSERT_NE(d.q_avg_series, nullptr);
    ASSERT_NE(d.fn_series, nullptr);
    if (d.link_to == f.sink && d.congested_epochs > 0) found_congested = true;
  }
  EXPECT_TRUE(found_congested);
}

TEST(CoreRouter, CoreliteKeepsQueueBelowCapacityNoDrops) {
  CoreFixture f;
  CoreliteCoreRouter core{f.network, f.core, f.cfg};
  CoreliteEdgeRouter ea{f.network, f.edge_a, f.cfg, &f.tracker};
  CoreliteEdgeRouter eb{f.network, f.edge_b, f.cfg, &f.tracker};
  ea.add_flow(f.flow(1, f.edge_a, 1.0));
  eb.add_flow(f.flow(2, f.edge_b, 3.0));
  f.simulator.run_until(sim::SimTime::seconds(120));
  // The paper's headline property: rate adaptation without packet loss.
  const auto* bottleneck = f.network.find_link(f.core, f.sink);
  ASSERT_NE(bottleneck, nullptr);
  EXPECT_EQ(bottleneck->stats().dropped, 0u);
}

}  // namespace
}  // namespace corelite::qos

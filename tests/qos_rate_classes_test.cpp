// Tests for the administrative rate-class registry (paper §2.1) and a
// small end-to-end check that class selection yields the classes'
// weighted shares.
#include <gtest/gtest.h>

#include "qos/rate_classes.h"
#include "scenario/scenario.h"

namespace corelite::qos {
namespace {

TEST(RateClasses, DefineAndLookup) {
  RateClassRegistry reg;
  reg.define("best-effort", 1.0);
  reg.define("premium", 5.0, 20.0);
  EXPECT_TRUE(reg.has("premium"));
  EXPECT_FALSE(reg.has("platinum"));
  const auto rc = reg.find("premium");
  ASSERT_TRUE(rc.has_value());
  EXPECT_DOUBLE_EQ(rc->weight, 5.0);
  EXPECT_DOUBLE_EQ(rc->min_rate_pps, 20.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(RateClasses, RedefineReplaces) {
  RateClassRegistry reg;
  reg.define("gold", 4.0);
  reg.define("gold", 8.0);
  EXPECT_DOUBLE_EQ(reg.find("gold")->weight, 8.0);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(RateClasses, MakeFlowStampsSpec) {
  const auto reg = RateClassRegistry::standard_tiers();
  const auto fs = reg.make_flow(7, /*ingress=*/3, /*egress=*/9, "silver");
  ASSERT_TRUE(fs.has_value());
  EXPECT_EQ(fs->id, 7u);
  EXPECT_EQ(fs->ingress, 3u);
  EXPECT_EQ(fs->egress, 9u);
  EXPECT_DOUBLE_EQ(fs->weight, 2.0);
  EXPECT_FALSE(reg.make_flow(8, 3, 9, "platinum").has_value());
}

TEST(RateClasses, StandardTiersOrdering) {
  const auto reg = RateClassRegistry::standard_tiers();
  const auto classes = reg.list();
  ASSERT_EQ(classes.size(), 3u);
  EXPECT_LT(reg.find("bronze")->weight, reg.find("silver")->weight);
  EXPECT_LT(reg.find("silver")->weight, reg.find("gold")->weight);
}

TEST(RateClasses, TiersYieldWeightedSharesEndToEnd) {
  // Ten flows select tiers round-robin: gold flows must receive 4x the
  // bronze rate and 2x the silver rate at the shared bottleneck.
  const auto reg = RateClassRegistry::standard_tiers();
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
  const char* tiers[] = {"bronze", "silver", "gold"};
  for (std::size_t i = 0; i < spec.num_flows; ++i) {
    spec.weights[i] = reg.find(tiers[i % 3])->weight;
  }
  const auto r = scenario::run_paper_scenario(spec);
  auto tier_avg = [&](std::size_t offset) {
    double sum = 0.0;
    int n = 0;
    for (std::size_t i = offset; i < spec.num_flows; i += 3) {
      sum += r.tracker.series(static_cast<net::FlowId>(i + 1)).allotted_rate.average_over(40,
                                                                                          80);
      ++n;
    }
    return sum / n;
  };
  const double bronze = tier_avg(0);
  const double silver = tier_avg(1);
  const double gold = tier_avg(2);
  EXPECT_NEAR(silver / bronze, 2.0, 0.5);
  EXPECT_NEAR(gold / bronze, 4.0, 0.9);
}

}  // namespace
}  // namespace corelite::qos

// Tests for the scenario-script parser and runner (the ns-2 script
// substitute): grammar, diagnostics, and an end-to-end scripted run.
#include <gtest/gtest.h>

#include <sstream>

#include "scenario/config_script.h"

namespace corelite::scenario {
namespace {

std::optional<ScriptScenario> parse(const std::string& text, std::string* err_out = nullptr) {
  std::istringstream in{text};
  std::ostringstream err;
  auto s = parse_scenario_script(in, err);
  if (err_out != nullptr) *err_out = err.str();
  return s;
}

constexpr const char* kDumbbell = R"(
# two edges, one core pair, shared 4 Mbps bottleneck
mechanism corelite
duration 60
seed 5

link E1 A 20 5 100
link E2 A 20 5 100
link A B 4 5 40
link B X1 20 5 100
link B X2 20 5 100

core A
core B
edge E1
edge E2

class gold 3
flow 1 E1 X1 weight 1
flow 2 E2 X2 class gold
)";

TEST(ConfigScript, ParsesDumbbell) {
  const auto s = parse(kDumbbell);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->mechanism, "corelite");
  EXPECT_DOUBLE_EQ(s->duration_sec, 60.0);
  EXPECT_EQ(s->seed, 5u);
  EXPECT_EQ(s->links.size(), 5u);
  EXPECT_EQ(s->cores.size(), 2u);
  EXPECT_EQ(s->edges.size(), 2u);
  ASSERT_EQ(s->flows.size(), 2u);
  EXPECT_DOUBLE_EQ(s->flows[0].weight, 1.0);
  EXPECT_DOUBLE_EQ(s->flows[1].weight, 3.0);  // from the gold class
  // Nodes auto-created in reference order: E1, A, E2, B, X1, X2.
  EXPECT_EQ(s->nodes.size(), 6u);
}

TEST(ConfigScript, WindowsAndMinRate) {
  const auto s = parse(R"(
link E A 10 1 40
link A X 4 1 40
edge E
core A
flow 1 E X weight 2 min 15 window 10 20 window 30 inf
)");
  ASSERT_TRUE(s.has_value());
  const auto& f = s->flows[0];
  EXPECT_DOUBLE_EQ(f.min_rate_pps, 15.0);
  ASSERT_EQ(f.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(f.windows[0].start.sec(), 10.0);
  EXPECT_DOUBLE_EQ(f.windows[0].stop.sec(), 20.0);
  EXPECT_FALSE(f.windows[1].stop < sim::SimTime::infinite());
}

TEST(ConfigScript, DiagnosticsCarryLineNumbers) {
  std::string err;
  EXPECT_FALSE(parse("link A\n", &err).has_value());
  EXPECT_NE(err.find("line 1"), std::string::npos);

  EXPECT_FALSE(parse("\n\nbogus command\n", &err).has_value());
  EXPECT_NE(err.find("line 3"), std::string::npos);
  EXPECT_NE(err.find("unknown command"), std::string::npos);
}

TEST(ConfigScript, RejectsBadValues) {
  std::string err;
  EXPECT_FALSE(parse("link A B -1 5 40\nflow 1 A B weight 1\n", &err).has_value());
  EXPECT_FALSE(parse("link A B 4 5 40\nflow 0 A B weight 1\n", &err).has_value());
  EXPECT_FALSE(parse("link A B 4 5 40\nflow 1 A B weight -2\n", &err).has_value());
  EXPECT_FALSE(parse("link A B 4 5 40\nflow 1 A B class nope\n", &err).has_value());
  EXPECT_FALSE(parse("link A A 4 5 40\n", &err).has_value());
  EXPECT_FALSE(parse("mechanism magic\n", &err).has_value());
  EXPECT_FALSE(parse("link A B 4 5 40\nflow 1 A B weight 1 window 5 3\n", &err).has_value());
}

TEST(ConfigScript, RequiresLinksAndFlows) {
  std::string err;
  EXPECT_FALSE(parse("node A\n", &err).has_value());
  EXPECT_NE(err.find("no links"), std::string::npos);
  EXPECT_FALSE(parse("link A B 4 5 40\n", &err).has_value());
  EXPECT_NE(err.find("no flows"), std::string::npos);
}

TEST(ConfigScript, RunValidatesEdgesAndRoutes) {
  // Flow from a node not declared 'edge'.
  auto s = parse(R"(
link E A 10 1 40
link A X 4 1 40
core A
flow 1 E X weight 1
)");
  ASSERT_TRUE(s.has_value());
  std::ostringstream err;
  EXPECT_FALSE(run_script_scenario(*s, err).has_value());
  EXPECT_NE(err.str().find("not declared 'edge'"), std::string::npos);

  // Unreachable egress (simplex link the wrong way).
  auto s2 = parse(R"(
link X A 4 1 40 simplex
link E A 10 1 40
edge E
core A
flow 1 E X weight 1
)");
  ASSERT_TRUE(s2.has_value());
  std::ostringstream err2;
  EXPECT_FALSE(run_script_scenario(*s2, err2).has_value());
  EXPECT_NE(err2.str().find("no route"), std::string::npos);
}

TEST(ConfigScript, EndToEndScriptedRunConverges) {
  auto s = parse(kDumbbell);
  ASSERT_TRUE(s.has_value());
  std::ostringstream err;
  const auto r = run_script_scenario(*s, err);
  ASSERT_TRUE(r.has_value()) << err.str();
  EXPECT_EQ(r->unrouteable, 0u);
  // Weights 1:3 on 500 pkt/s -> ~125 / ~375.
  const double r1 = r->tracker.series(1).allotted_rate.average_over(30, 60);
  const double r2 = r->tracker.series(2).allotted_rate.average_over(30, 60);
  EXPECT_NEAR(r2 / r1, 3.0, 0.8);
  EXPECT_NEAR(r1 + r2, 500.0, 80.0);
}

TEST(ConfigScript, CsfqScriptRuns) {
  auto s = parse(kDumbbell);
  ASSERT_TRUE(s.has_value());
  s->mechanism = "csfq";
  std::ostringstream err;
  const auto r = run_script_scenario(*s, err);
  ASSERT_TRUE(r.has_value()) << err.str();
  EXPECT_GT(r->data_drops, 0u);  // CSFQ's congestion signal
  const double r1 = r->tracker.series(1).allotted_rate.average_over(30, 60);
  const double r2 = r->tracker.series(2).allotted_rate.average_over(30, 60);
  EXPECT_NEAR(r2 / r1, 3.0, 1.2);
}

}  // namespace
}  // namespace corelite::scenario

// Unit tests for the Corelite edge router: shaping rate, marker spacing
// N_w = K1*w, marker labels, feedback accounting (max over core
// routers), flow lifecycle (start/stop/restart), and egress counting.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "net/network.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {
namespace {

// Edge node connected to a sink node over a fat link: the edge's shaping
// is the only rate limit, so packet arrivals directly expose b_g.
struct EdgeFixture {
  sim::Simulator simulator{1};
  net::Network network{simulator};
  net::NodeId edge = network.add_node("edge");
  net::NodeId sink = network.add_node("sink");
  CoreliteConfig cfg;
  stats::FlowTracker tracker;

  std::vector<net::Packet> at_sink;

  EdgeFixture() {
    network.connect_duplex(edge, sink, sim::Rate::mbps(100), sim::TimeDelta::millis(1), 1000);
    network.build_routes();
    network.node(sink).set_local_sink([this](net::Packet&& p) { at_sink.push_back(p); });
  }

  net::FlowSpec flow(net::FlowId id, double weight,
                     std::vector<net::ActiveInterval> active = {}) {
    net::FlowSpec fs;
    fs.id = id;
    fs.ingress = edge;
    fs.egress = sink;
    fs.weight = weight;
    if (!active.empty()) fs.active = std::move(active);
    return fs;
  }

  net::Packet feedback_for(net::FlowId flow, net::NodeId origin) {
    net::Packet fb;
    fb.kind = net::PacketKind::Feedback;
    fb.flow = flow;
    fb.src = origin;
    fb.dst = edge;
    fb.marker = net::MarkerInfo{edge, flow, 0.0};
    fb.feedback_origin = origin;
    return fb;
  }
};

TEST(EdgeRouter, MarkerEveryNwDataPackets) {
  EdgeFixture f;
  f.cfg.k1 = 1.0;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, /*weight=*/3.0));
  f.simulator.run_until(sim::SimTime::seconds(10));

  int data = 0;
  int markers = 0;
  int since_marker = 0;
  for (const auto& p : f.at_sink) {
    if (p.kind == net::PacketKind::Data) {
      ++data;
      ++since_marker;
    } else if (p.kind == net::PacketKind::Marker) {
      // Marker after every K1 * w = 3 data packets.
      EXPECT_EQ(since_marker, 3);
      since_marker = 0;
      ++markers;
    }
  }
  EXPECT_GT(data, 0);
  EXPECT_GT(markers, 0);
  EXPECT_NEAR(static_cast<double>(data) / markers, 3.0, 0.2);
}

TEST(EdgeRouter, MarkerSpacingScalesWithK1) {
  EdgeFixture f;
  f.cfg.k1 = 4.0;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, /*weight=*/2.0));
  f.simulator.run_until(sim::SimTime::seconds(10));
  int data = 0;
  int markers = 0;
  for (const auto& p : f.at_sink) {
    data += p.kind == net::PacketKind::Data;
    markers += p.kind == net::PacketKind::Marker;
  }
  // N_w = 8.
  EXPECT_NEAR(static_cast<double>(data) / markers, 8.0, 0.5);
}

TEST(EdgeRouter, MarkerCarriesNormalizedRateLabel) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  const double w = 2.0;
  er.add_flow(f.flow(1, w));
  f.simulator.run_until(sim::SimTime::seconds(5));
  bool saw_marker = false;
  for (const auto& p : f.at_sink) {
    if (p.kind != net::PacketKind::Marker) continue;
    saw_marker = true;
    EXPECT_EQ(p.marker.edge_router, f.edge);
    EXPECT_EQ(p.marker.flow, 1u);
    EXPECT_GT(p.marker.normalized_rate, 0.0);
  }
  EXPECT_TRUE(saw_marker);
  // The last markers carry the slow-start rate of the time they were
  // sent divided by the weight; spot-check against the tracked rate.
  const auto& last = f.at_sink.back();
  const double tracked = er.current_rate_pps(1) / w;
  if (last.kind == net::PacketKind::Marker) {
    EXPECT_NEAR(last.marker.normalized_rate, tracked, tracked * 0.6);
  }
}

TEST(EdgeRouter, PacingMatchesAllowedRate) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, 1.0));
  // After slow start with no feedback the rate keeps climbing; measure
  // sent packets over a window and compare to the tracked rate series.
  f.simulator.run_until(sim::SimTime::seconds(20));
  const auto sent_20 = f.tracker.series(1).sent;
  f.simulator.run_until(sim::SimTime::seconds(21));
  const auto sent_21 = f.tracker.series(1).sent;
  const double measured_pps = static_cast<double>(sent_21 - sent_20);
  const double expected = f.tracker.series(1).allotted_rate.average_over(20.0, 21.0);
  EXPECT_NEAR(measured_pps, expected, expected * 0.15 + 2.0);
}

TEST(EdgeRouter, FeedbackThrottlesFlow) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(10));
  const double before = er.current_rate_pps(1);
  ASSERT_GT(before, 0.0);
  // Deliver 5 feedback markers from one core router within one epoch.
  for (int i = 0; i < 5; ++i) f.network.inject(f.sink, f.feedback_for(1, /*origin=*/f.sink));
  f.simulator.run_until(sim::SimTime::seconds(10.3));
  const double after = er.current_rate_pps(1);
  EXPECT_LT(after, before);
}

TEST(EdgeRouter, ReactsToMaxAcrossCoreRoutersNotSum) {
  // Identical seeds give identical epoch phases, so the runs are
  // directly comparable.  A: 3 markers from core X + 2 from core Y.
  // B: 3 markers from core X only.  C: 5 markers from core X.
  // Max-of-cores semantics => rate(A) == rate(B) > rate(C).
  auto run_with = [](int from_x, int from_y) {
    EdgeFixture f;
    CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
    er.add_flow(f.flow(1, 1.0));
    f.simulator.run_until(sim::SimTime::seconds(10));
    for (int i = 0; i < from_x; ++i) {
      auto fb = f.feedback_for(1, /*origin=*/f.sink);
      f.network.inject(f.sink, std::move(fb));
    }
    for (int i = 0; i < from_y; ++i) {
      auto fb = f.feedback_for(1, /*origin=*/f.sink);
      fb.feedback_origin = 99;  // synthetic second core router id
      f.network.inject(f.sink, std::move(fb));
    }
    f.simulator.run_until(sim::SimTime::seconds(11));
    return er.current_rate_pps(1);
  };
  const double a = run_with(3, 2);
  const double b = run_with(3, 0);
  const double c = run_with(5, 0);
  EXPECT_DOUBLE_EQ(a, b);  // the second core's 2 markers are shadowed by max
  EXPECT_LT(c, a);         // but 5 from one core would throttle harder
}

TEST(EdgeRouter, LifecycleStartsAndStopsEmission) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, 1.0,
                     {{sim::SimTime::seconds(2), sim::SimTime::seconds(4)}}));
  f.simulator.run_until(sim::SimTime::seconds(1.9));
  EXPECT_EQ(f.tracker.series(1).sent, 0u);
  EXPECT_DOUBLE_EQ(er.current_rate_pps(1), 0.0);
  f.simulator.run_until(sim::SimTime::seconds(3.9));
  EXPECT_GT(f.tracker.series(1).sent, 0u);
  const auto sent_at_stop = f.tracker.series(1).sent;
  f.simulator.run_until(sim::SimTime::seconds(10));
  EXPECT_EQ(f.tracker.series(1).sent, sent_at_stop);
  EXPECT_DOUBLE_EQ(er.current_rate_pps(1), 0.0);
}

TEST(EdgeRouter, RestartRedoesSlowStart) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, 1.0,
                     {{sim::SimTime::seconds(0), sim::SimTime::seconds(30)},
                      {sim::SimTime::seconds(35), sim::SimTime::infinite()}}));
  f.simulator.run_until(sim::SimTime::seconds(29));
  const double before_stop = er.current_rate_pps(1);
  EXPECT_GT(before_stop, 50.0);  // long uncongested climb
  f.simulator.run_until(sim::SimTime::seconds(35.5));
  // Fresh slow start: back near the initial rate.
  const double after_restart = er.current_rate_pps(1);
  EXPECT_LT(after_restart, 5.0);
  EXPECT_GT(after_restart, 0.0);
}

TEST(EdgeRouter, EgressCountsDeliveredData) {
  EdgeFixture f;
  // Second edge router on the sink node acting as pure egress.
  CoreliteEdgeRouter ingress{f.network, f.edge, f.cfg, &f.tracker};
  f.at_sink.clear();
  CoreliteEdgeRouter egress{f.network, f.sink, f.cfg, &f.tracker};
  ingress.add_flow(f.flow(1, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(5));
  EXPECT_GT(egress.data_delivered_here(), 0u);
  EXPECT_EQ(f.tracker.series(1).delivered, egress.data_delivered_here());
}

TEST(EdgeRouter, TracksRatePerEpochInTracker) {
  EdgeFixture f;
  CoreliteEdgeRouter er{f.network, f.edge, f.cfg, &f.tracker};
  er.add_flow(f.flow(1, 1.0));
  f.simulator.run_until(sim::SimTime::seconds(3));
  // ~10 samples per second of simulated time (one per 100 ms epoch).
  const auto n = f.tracker.series(1).allotted_rate.size();
  EXPECT_GE(n, 25u);
  EXPECT_LE(n, 40u);
}

}  // namespace
}  // namespace corelite::qos

// Unit tests for incipient congestion detection: time-weighted queue
// averaging, epoch bookkeeping, and the F_n formula's analytic
// properties (threshold behaviour, the diminishing M/M/1 term, and the
// cubic self-correction the paper's §3.1 motivates).
#include <gtest/gtest.h>

#include "qos/congestion_estimator.h"

namespace corelite::qos {
namespace {

sim::SimTime at(double t) { return sim::SimTime::seconds(t); }

TEST(CongestionEstimator, NoCongestionBelowThreshold) {
  CongestionEstimator est{8.0, 0.01, 500.0, 1.0};
  est.on_queue_length(5, at(0.0));
  EXPECT_DOUBLE_EQ(est.end_epoch(at(0.1)), 0.0);
  EXPECT_DOUBLE_EQ(est.last_q_avg(), 5.0);
  EXPECT_FALSE(est.last_congested());
}

TEST(CongestionEstimator, TimeWeightedAverage) {
  CongestionEstimator est{8.0, 0.0, 500.0, 1.0};
  // len 0 for 50 ms, then 20 for 50 ms: q_avg = 10.
  est.on_queue_length(0, at(0.0));
  est.on_queue_length(20, at(0.05));
  (void)est.end_epoch(at(0.1));
  EXPECT_NEAR(est.last_q_avg(), 10.0, 1e-9);
  EXPECT_TRUE(est.last_congested());
}

TEST(CongestionEstimator, EpochResetsIntegral) {
  CongestionEstimator est{8.0, 0.0, 500.0, 1.0};
  est.on_queue_length(30, at(0.0));
  (void)est.end_epoch(at(0.1));
  EXPECT_NEAR(est.last_q_avg(), 30.0, 1e-9);
  // Queue drains to zero right at the boundary: next epoch must not see
  // the previous epoch's buildup.
  est.on_queue_length(0, at(0.1));
  (void)est.end_epoch(at(0.2));
  EXPECT_NEAR(est.last_q_avg(), 0.0, 1e-9);
}

TEST(CongestionEstimator, LengthPersistsAcrossEpochs) {
  CongestionEstimator est{8.0, 0.0, 500.0, 1.0};
  est.on_queue_length(12, at(0.0));
  (void)est.end_epoch(at(0.1));
  // No further updates: the queue stayed at 12 the whole next epoch.
  (void)est.end_epoch(at(0.2));
  EXPECT_NEAR(est.last_q_avg(), 12.0, 1e-9);
}

TEST(CongestionEstimator, FnFormulaMatchesClosedForm) {
  const double mu = 500.0;
  const double k = 0.02;
  const double beta = 2.0;
  CongestionEstimator est{8.0, k, mu, beta};
  const double q = 14.0;
  const double expected =
      mu * (q / (1.0 + q) - 8.0 / 9.0) / beta + k * (q - 8.0) * (q - 8.0) * (q - 8.0);
  EXPECT_NEAR(est.markers_for(q), expected, 1e-12);
}

TEST(CongestionEstimator, FnZeroAtOrBelowThreshold) {
  CongestionEstimator est{8.0, 0.01, 500.0, 1.0};
  EXPECT_DOUBLE_EQ(est.markers_for(8.0), 0.0);
  EXPECT_DOUBLE_EQ(est.markers_for(3.0), 0.0);
  EXPECT_GT(est.markers_for(8.01), 0.0);
}

TEST(CongestionEstimator, FnMonotonicInQueueAverage) {
  CongestionEstimator est{8.0, 0.01, 500.0, 1.0};
  double prev = 0.0;
  for (double q = 8.5; q < 40.0; q += 0.5) {
    const double fn = est.markers_for(q);
    EXPECT_GT(fn, prev);
    prev = fn;
  }
}

TEST(CongestionEstimator, WithoutCubicTermMarginalFeedbackShrinks) {
  // Paper §3.1: with k = 0 the derivative dF_n/dq ~ 1/(1+q)^2 falls as
  // the queue grows — the very failure mode the cubic term corrects.
  CongestionEstimator flat{8.0, 0.0, 500.0, 1.0};
  const double d_small = flat.markers_for(11.0) - flat.markers_for(10.0);
  const double d_large = flat.markers_for(31.0) - flat.markers_for(30.0);
  EXPECT_LT(d_large, d_small);

  // With k > 0 the marginal feedback grows with the queue instead.
  CongestionEstimator cubic{8.0, 0.05, 500.0, 1.0};
  const double c_small = cubic.markers_for(11.0) - cubic.markers_for(10.0);
  const double c_large = cubic.markers_for(31.0) - cubic.markers_for(30.0);
  EXPECT_GT(c_large, c_small);
}

TEST(CongestionEstimator, BetaScalesMarkerCount) {
  CongestionEstimator beta1{8.0, 0.0, 500.0, 1.0};
  CongestionEstimator beta2{8.0, 0.0, 500.0, 2.0};
  // A marker that throttles twice as hard means half as many are needed.
  EXPECT_NEAR(beta1.markers_for(15.0), 2.0 * beta2.markers_for(15.0), 1e-12);
}

// Parameterized sweep: for any (threshold, q) with q > threshold, F_n is
// positive, finite and increases with the capacity mu.
class FnSweep : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(FnSweep, PositiveFiniteAndCapacityMonotone) {
  const auto [thresh, excess] = GetParam();
  const double q = thresh + excess;
  CongestionEstimator small{thresh, 0.01, 250.0, 1.0};
  CongestionEstimator large{thresh, 0.01, 1000.0, 1.0};
  EXPECT_GT(small.markers_for(q), 0.0);
  EXPECT_TRUE(std::isfinite(small.markers_for(q)));
  EXPECT_GT(large.markers_for(q), small.markers_for(q));
}

INSTANTIATE_TEST_SUITE_P(Thresholds, FnSweep,
                         ::testing::Combine(::testing::Values(2.0, 8.0, 16.0, 32.0),
                                            ::testing::Values(0.5, 2.0, 8.0, 20.0)));

}  // namespace
}  // namespace corelite::qos

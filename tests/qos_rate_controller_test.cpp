// Unit tests for the weighted LIMD rate controller: slow-start doubling
// and exit conditions, linear increase, marker-proportional decrease,
// floors and minimum-rate contracts.
#include <gtest/gtest.h>

#include "qos/rate_controller.h"

namespace corelite::qos {
namespace {

RateAdaptConfig default_cfg() {
  RateAdaptConfig cfg;
  cfg.alpha_pps = 1.0;
  cfg.beta_pps = 1.0;
  cfg.initial_rate_pps = 1.0;
  cfg.min_rate_pps = 0.5;
  cfg.ss_thresh_pps = 32.0;
  cfg.ss_double_interval = sim::TimeDelta::seconds(1);
  return cfg;
}

sim::SimTime at(double t) { return sim::SimTime::seconds(t); }

TEST(Limd, StartsInSlowStartAtInitialRate) {
  LimdRateController c{default_cfg()};
  EXPECT_TRUE(c.in_slow_start());
  EXPECT_DOUBLE_EQ(c.rate_pps(), 1.0);
}

TEST(Limd, SlowStartDoublesOncePerInterval) {
  LimdRateController c{default_cfg()};
  c.reset(at(0));
  // Epochs every 0.1 s: the rate must double only at whole seconds.
  for (int e = 1; e <= 10; ++e) c.on_epoch(0, at(0.1 * e));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 2.0);
  for (int e = 11; e <= 20; ++e) c.on_epoch(0, at(0.1 * e));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 4.0);
}

TEST(Limd, SlowStartExitsOnThreshold) {
  LimdRateController c{default_cfg()};
  c.reset(at(0));
  // Doubling 1,2,4,8,16,32: 32 does not strictly exceed ss-thresh, so
  // slow start continues to 64 and only then halves to 32 and enters the
  // linear phase — matching the paper's "complete slow start at 7 s".
  for (int s = 1; s <= 5; ++s) c.on_epoch(0, at(s));
  EXPECT_TRUE(c.in_slow_start());
  EXPECT_DOUBLE_EQ(c.rate_pps(), 32.0);
  c.on_epoch(0, at(6));
  EXPECT_FALSE(c.in_slow_start());
  EXPECT_DOUBLE_EQ(c.rate_pps(), 32.0);  // 64 halved
}

TEST(Limd, SlowStartExitsOnFirstFeedback) {
  LimdRateController c{default_cfg()};
  c.reset(at(0));
  c.on_epoch(0, at(1));  // 2
  c.on_epoch(0, at(2));  // 4
  EXPECT_TRUE(c.in_slow_start());
  c.on_epoch(1, at(2.1));  // first congestion notification
  EXPECT_FALSE(c.in_slow_start());
  EXPECT_DOUBLE_EQ(c.rate_pps(), 2.0);  // halved
}

TEST(Limd, LinearIncreaseByAlphaWhenUnmarked) {
  auto cfg = default_cfg();
  cfg.alpha_pps = 2.5;
  LimdRateController c{cfg};
  c.reset(at(0));
  c.on_epoch(1, at(0.1));  // exit slow start at 0.5 (floored)
  const double r0 = c.rate_pps();
  c.on_epoch(0, at(0.2));
  c.on_epoch(0, at(0.3));
  EXPECT_DOUBLE_EQ(c.rate_pps(), r0 + 5.0);
}

TEST(Limd, DecreaseProportionalToMarkers) {
  auto cfg = default_cfg();
  cfg.beta_pps = 2.0;
  LimdRateController c{cfg};
  c.reset(at(0));
  // Force into linear at a known rate.
  for (int s = 1; s <= 5; ++s) c.on_epoch(0, at(s));  // still in slow start at 32
  for (int e = 0; e < 40; ++e) c.on_epoch(0, at(5.1 + 0.1 * e));
  const double r0 = c.rate_pps();  // 16 + 40
  c.on_epoch(3, at(9.2));          // 3 markers, beta 2 => -6
  EXPECT_DOUBLE_EQ(c.rate_pps(), r0 - 6.0);
}

TEST(Limd, NeverBelowFloor) {
  LimdRateController c{default_cfg()};
  c.reset(at(0));
  c.on_epoch(1, at(0.1));  // exit slow start
  for (int e = 0; e < 100; ++e) c.on_epoch(50, at(0.2 + 0.1 * e));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 0.5);  // cfg.min_rate_pps
}

TEST(Limd, MinRateContractRaisesFloor) {
  LimdRateController c{default_cfg(), /*min_rate_contract_pps=*/10.0};
  c.reset(at(0));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 10.0);  // initial rate lifted to contract
  c.on_epoch(1, at(0.1));
  for (int e = 0; e < 100; ++e) c.on_epoch(50, at(0.2 + 0.1 * e));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 10.0);  // never throttled below contract
  EXPECT_DOUBLE_EQ(c.floor_pps(), 10.0);
}

TEST(Limd, ResetRestartsSlowStart) {
  LimdRateController c{default_cfg()};
  c.reset(at(0));
  for (int s = 1; s <= 6; ++s) c.on_epoch(0, at(s));
  EXPECT_FALSE(c.in_slow_start());
  c.reset(at(10));
  EXPECT_TRUE(c.in_slow_start());
  EXPECT_DOUBLE_EQ(c.rate_pps(), 1.0);
  // Doubling interval measured from the reset time, not from epoch 0.
  c.on_epoch(0, at(10.5));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 1.0);
  c.on_epoch(0, at(11.0));
  EXPECT_DOUBLE_EQ(c.rate_pps(), 2.0);
}

TEST(Limd, ConvergesToFairnessForTwoSources) {
  // Chiu-Jain style check: two LIMD controllers sharing feedback
  // proportional to their (normalized) rates converge to equal rates.
  auto cfg = default_cfg();
  LimdRateController a{cfg};
  LimdRateController b{cfg};
  a.reset(at(0));
  b.reset(at(0));
  // Seed them asymmetrically in the linear phase.
  a.on_epoch(1, at(0.05));
  b.on_epoch(1, at(0.05));
  for (int e = 0; e < 200; ++e) a.on_epoch(0, at(0.1 + e * 0.001));  // a races to ~200
  const double capacity = 300.0;
  for (int e = 0; e < 4000; ++e) {
    const auto t = at(1.0 + 0.1 * e);
    const double total = a.rate_pps() + b.rate_pps();
    // Feedback model: when over capacity, each flow is marked in
    // proportion to its rate (what the Corelite core guarantees).
    int ma = 0;
    int mb = 0;
    if (total > capacity) {
      const double excess = total - capacity;
      ma = static_cast<int>(excess * a.rate_pps() / total + 0.5);
      mb = static_cast<int>(excess * b.rate_pps() / total + 0.5);
    }
    a.on_epoch(ma, t);
    b.on_epoch(mb, t);
  }
  EXPECT_NEAR(a.rate_pps(), b.rate_pps(), 0.2 * (a.rate_pps() + b.rate_pps()) / 2.0);
  EXPECT_NEAR(a.rate_pps() + b.rate_pps(), capacity, 30.0);
}

}  // namespace
}  // namespace corelite::qos

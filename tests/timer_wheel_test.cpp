// Tie-break and tier-equivalence audit for the hierarchical timing
// wheel (src/sim/timer_wheel.h) and its integration in EventQueue.
//
// The contract under test: the two-tier engine (wheel + overflow heap)
// fires events in exactly the same (time, insertion-sequence) total
// order as a heap-only engine — including ties at the same timestamp,
// lazily cancelled events, entries that cascade across wheel levels,
// and entries the wheel declines into the heap.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <vector>

#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/timer_wheel.h"
#include "sim/units.h"

namespace corelite::sim {
namespace {

// Deterministic 64-bit mixer (splitmix64) — test-local, no global RNG.
std::uint64_t mix(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// ---------------------------------------------------------------------------
// TimerWheel directly: collection order equals a global sort.

TEST(TimerWheel, CollectedSlotsConcatenateToGloballySortedOrder) {
  TimerWheel wheel;
  std::vector<WheelEntry> accepted;
  std::vector<WheelEntry> declined;
  std::uint64_t rng = 42;

  // Times spanning all four levels (ticks 1 .. ~2^30), with deliberate
  // exact ties distinguished only by key.
  for (std::uint64_t key = 0; key < 5000; ++key) {
    const std::uint64_t r = mix(rng);
    const double span = static_cast<double>(1u << ((r >> 8) % 31));  // 1..2^30 ticks
    double at = (1.0 + static_cast<double>(r % 1000) / 1000.0 * span) / TimerWheel::kTicksPerSecond;
    if (key % 7 == 0 && !accepted.empty()) at = accepted.back().at;  // exact tie
    const WheelEntry e{at, key};
    if (wheel.try_insert(e.at, e.key)) {
      accepted.push_back(e);
    } else {
      declined.push_back(e);
    }
  }
  ASSERT_EQ(wheel.count(), accepted.size());
  ASSERT_FALSE(accepted.empty());

  // Collect every slot; EventQueue sorts each slot by exact (at, key),
  // so the concatenation of per-slot sorts must equal the global sort.
  std::vector<WheelEntry> collected;
  while (wheel.count() > 0) {
    std::vector<WheelEntry> slot;
    wheel.collect_next(slot);
    ASSERT_FALSE(slot.empty()) << "collect_next must surface at least one entry";
    std::sort(slot.begin(), slot.end(), [](const WheelEntry& a, const WheelEntry& b) {
      if (a.at != b.at) return a.at < b.at;
      return a.key < b.key;
    });
    collected.insert(collected.end(), slot.begin(), slot.end());
  }

  std::sort(accepted.begin(), accepted.end(), [](const WheelEntry& a, const WheelEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  });
  ASSERT_EQ(collected.size(), accepted.size());
  for (std::size_t i = 0; i < accepted.size(); ++i) {
    EXPECT_EQ(collected[i].at, accepted[i].at) << "position " << i;
    EXPECT_EQ(collected[i].key, accepted[i].key) << "position " << i;
  }
}

TEST(TimerWheel, DeclinesPastCurrentAndNonFiniteTimes) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.try_insert(0.0, 1));  // tick 0 == cursor
  EXPECT_FALSE(wheel.try_insert(-1.0, 2));
  EXPECT_FALSE(wheel.try_insert(std::numeric_limits<double>::infinity(), 3));
  EXPECT_FALSE(wheel.try_insert(std::numeric_limits<double>::quiet_NaN(), 4));
  // Beyond the 4-level horizon (~2^32 ticks).
  EXPECT_FALSE(wheel.try_insert(5.0e32, 5));
  EXPECT_EQ(wheel.count(), 0u);
  // Just inside the horizon is accepted.
  EXPECT_TRUE(wheel.try_insert(1.0 / TimerWheel::kTicksPerSecond, 6));
  EXPECT_EQ(wheel.count(), 1u);
}

TEST(TimerWheel, CascadeAcrossLevelsPreservesEveryEntry) {
  TimerWheel wheel;
  // One entry per level: ticks 3, 3*2^8, 3*2^16, 3*2^24.
  const double tick = 1.0 / TimerWheel::kTicksPerSecond;
  const std::uint64_t ticks[] = {3ULL, 3ULL << 8, 3ULL << 16, 3ULL << 24};
  for (std::uint64_t k = 0; k < 4; ++k) {
    ASSERT_TRUE(wheel.try_insert(static_cast<double>(ticks[k]) * tick, k));
  }
  std::vector<WheelEntry> out;
  while (wheel.count() > 0) wheel.collect_next(out);
  ASSERT_EQ(out.size(), 4u);
  for (std::uint64_t k = 0; k < 4; ++k) EXPECT_EQ(out[k].key, k);
}

TEST(TimerWheel, DrainAllEmptiesEveryLevel) {
  TimerWheel wheel;
  const double tick = 1.0 / TimerWheel::kTicksPerSecond;
  for (std::uint64_t k = 1; k <= 100; ++k) {
    ASSERT_TRUE(wheel.try_insert(static_cast<double>(k * k * 17ULL) * tick, k));
  }
  std::vector<WheelEntry> out;
  wheel.drain_all(out);
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(wheel.count(), 0u);
}

// ---------------------------------------------------------------------------
// EventQueue / Simulator: wheel-on and wheel-off firing order identical.

/// Schedules an identical workload (mixed horizons, exact ties, some
/// cancellations) and returns the firing order as event ids.
std::vector<int> run_workload(bool wheel_on) {
  if (wheel_on) {
    unsetenv("CORELITE_NO_WHEEL");
  } else {
    setenv("CORELITE_NO_WHEEL", "1", 1);
  }
  Simulator s;  // EventQueue reads the escape hatch at construction
  std::vector<int> fired;
  std::vector<EventHandle> handles;
  std::uint64_t rng = 7;
  for (int id = 0; id < 800; ++id) {
    const std::uint64_t r = mix(rng);
    // Mix of horizons: same-instant (heap), microseconds (level 0),
    // milliseconds (level 1) and minutes (level 2+).
    double delay = 0.0;
    switch (r % 4) {
      case 0: delay = 0.0; break;
      case 1: delay = static_cast<double>(r % 97) * 1e-6; break;
      case 2: delay = static_cast<double>(r % 997) * 1e-3; break;
      default: delay = 60.0 + static_cast<double>(r % 89); break;
    }
    if (id % 10 < 3) delay = 0.25;  // deliberate exact ties
    if (id % 5 == 0) {
      handles.push_back(s.at(SimTime::seconds(delay), [&fired, id] { fired.push_back(id); }));
    } else {
      s.at_detached(SimTime::seconds(delay), [&fired, id] { fired.push_back(id); });
    }
  }
  // Cancel every third handle — lazy cancellation must be skipped
  // identically whichever tier holds the entry.
  for (std::size_t i = 0; i < handles.size(); i += 3) handles[i].cancel();
  s.run();
  unsetenv("CORELITE_NO_WHEEL");
  return fired;
}

TEST(EventQueueTiering, WheelOnFiringOrderMatchesHeapOnly) {
  const std::vector<int> on = run_workload(/*wheel_on=*/true);
  const std::vector<int> off = run_workload(/*wheel_on=*/false);
  ASSERT_EQ(on.size(), off.size());
  EXPECT_EQ(on, off);
}

TEST(EventQueueTiering, WheelEnabledReflectsEnvironment) {
  {
    EventQueue q;
    EXPECT_TRUE(q.wheel_enabled());
  }
  setenv("CORELITE_NO_WHEEL", "1", 1);
  {
    EventQueue q;
    EXPECT_FALSE(q.wheel_enabled());
  }
  unsetenv("CORELITE_NO_WHEEL");
}

TEST(EventQueueTiering, SameTimestampFifoAcrossTiers) {
  // A genuine cross-tier tie: two wheel-resident events at time t, and a
  // third scheduled *during* t's own slot drain at exactly t — the wheel
  // declines it (tick == cursor) into the heap.  Sequence order must
  // still decide: wheel buffer front (earlier seq) fires before the
  // heap-resident latecomer.
  Simulator s;
  std::vector<int> fired;
  const SimTime t = SimTime::seconds(0.25);
  s.at_detached(t, [&] {
    fired.push_back(1);
    s.at_detached(s.now(), [&fired] { fired.push_back(3); });
  });
  s.at_detached(t, [&fired] { fired.push_back(2); });
  s.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTiering, ClearCancelsWheelResidentEvents) {
  EventQueue q;
  std::vector<EventHandle> handles;
  int fired = 0;
  for (int i = 0; i < 50; ++i) {
    handles.push_back(
        q.schedule(SimTime::seconds(0.001 * (i + 1)), [&fired] { ++fired; }));
  }
  EXPECT_FALSE(q.empty());
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 0);
  for (const auto& h : handles) EXPECT_FALSE(h.pending());
  // The queue stays usable after clear().
  bool ran = false;
  q.schedule_detached(SimTime::seconds(1.0), [&ran] { ran = true; });
  EXPECT_EQ(q.run_next(), SimTime::seconds(1.0));
  EXPECT_TRUE(ran);
}

TEST(EventQueueTiering, RunUntilDeadlineLeavesWheelEventsPending) {
  Simulator s;
  std::vector<int> fired;
  s.at_detached(SimTime::seconds(1.0), [&] { fired.push_back(1); });
  s.at_detached(SimTime::seconds(2.0), [&] { fired.push_back(2); });
  s.at_detached(SimTime::seconds(3.0), [&] { fired.push_back(3); });
  s.run_until(SimTime::seconds(2.0));  // inclusive boundary
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(s.now(), SimTime::seconds(2.0));
  s.run_until(SimTime::seconds(5.0));
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace corelite::sim

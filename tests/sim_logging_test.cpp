// Tests for the logging facility: levels, sinks, formatting, and the
// off-by-default guarantee (experiment binaries must stay quiet).
#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.h"

namespace corelite::sim {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LogConfig::set_sink(buffer_);
    LogConfig::set_level(LogLevel::None);
  }
  void TearDown() override {
    LogConfig::set_level(LogLevel::None);
    LogConfig::set_sink(std::cerr);
  }
  std::ostringstream buffer_;
};

TEST_F(LoggingTest, SilentByDefault) {
  CORELITE_LOG(Error, "test", SimTime::seconds(1)) << "should not appear";
  EXPECT_TRUE(buffer_.str().empty());
}

TEST_F(LoggingTest, LevelGatesOutput) {
  LogConfig::set_level(LogLevel::Warn);
  CORELITE_LOG(Error, "c", SimTime::seconds(1)) << "E";
  CORELITE_LOG(Warn, "c", SimTime::seconds(2)) << "W";
  CORELITE_LOG(Info, "c", SimTime::seconds(3)) << "I";
  CORELITE_LOG(Debug, "c", SimTime::seconds(4)) << "D";
  const std::string out = buffer_.str();
  EXPECT_NE(out.find("E"), std::string::npos);
  EXPECT_NE(out.find("W"), std::string::npos);
  EXPECT_EQ(out.find("I\n"), std::string::npos);
  EXPECT_EQ(out.find("D\n"), std::string::npos);
}

TEST_F(LoggingTest, FormatsTimestampComponentAndLevel) {
  LogConfig::set_level(LogLevel::Debug);
  CORELITE_LOG(Info, "edge", SimTime::seconds(2.5)) << "flow " << 7 << " rate " << 33.5;
  const std::string out = buffer_.str();
  EXPECT_NE(out.find("[INFO]"), std::string::npos);
  EXPECT_NE(out.find("t=2.5"), std::string::npos);
  EXPECT_NE(out.find("edge:"), std::string::npos);
  EXPECT_NE(out.find("flow 7 rate 33.5"), std::string::npos);
}

TEST_F(LoggingTest, EachLineTerminated) {
  LogConfig::set_level(LogLevel::Debug);
  CORELITE_LOG(Debug, "a", SimTime::zero()) << "one";
  CORELITE_LOG(Debug, "a", SimTime::zero()) << "two";
  const std::string out = buffer_.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

// A stream-insertable type that counts its insertions, to witness that
// a disabled log statement formats nothing (the lazy-buffer guarantee).
struct CountingStreamable {
  mutable int* inserted = nullptr;
};
std::ostream& operator<<(std::ostream& os, const CountingStreamable& c) {
  ++*c.inserted;
  return os << "formatted";
}

TEST_F(LoggingTest, DisabledStatementWritesNothingAndFormatsNothing) {
  int insertions = 0;
  CountingStreamable probe{&insertions};
  // Level is None (SetUp), so the statement is disabled: the sink must
  // stay empty AND the operand's operator<< must never run — a disabled
  // LogLine has no buffer to format into.
  CORELITE_LOG(Debug, "hot", SimTime::seconds(1)) << "x=" << probe << 42;
  EXPECT_TRUE(buffer_.str().empty());
  EXPECT_EQ(insertions, 0);
  // Sanity: the same statement enabled both writes and formats.
  LogConfig::set_level(LogLevel::Debug);
  CORELITE_LOG(Debug, "hot", SimTime::seconds(1)) << "x=" << probe << 42;
  EXPECT_NE(buffer_.str().find("x=formatted42"), std::string::npos);
  EXPECT_EQ(insertions, 1);
}

TEST_F(LoggingTest, LevelNames) {
  EXPECT_EQ(log_level_name(LogLevel::Error), "ERROR");
  EXPECT_EQ(log_level_name(LogLevel::Warn), "WARN");
  EXPECT_EQ(log_level_name(LogLevel::Info), "INFO");
  EXPECT_EQ(log_level_name(LogLevel::Debug), "DEBUG");
}

}  // namespace
}  // namespace corelite::sim

// Unit tests for the discrete-event kernel: units, event queue,
// simulator clock, periodic timers, RNG determinism.
#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

#include "sim/simulator.h"
#include "sim/small_function.h"
#include "sim/units.h"

namespace corelite::sim {
namespace {

// ---------------------------------------------------------------------------
// Units

TEST(Units, TimeDeltaConversions) {
  EXPECT_DOUBLE_EQ(TimeDelta::seconds(1.5).sec(), 1.5);
  EXPECT_DOUBLE_EQ(TimeDelta::millis(250).sec(), 0.25);
  EXPECT_DOUBLE_EQ(TimeDelta::micros(500).sec(), 0.0005);
  EXPECT_DOUBLE_EQ(TimeDelta::seconds(2).ms(), 2000.0);
}

TEST(Units, TimeDeltaArithmetic) {
  const auto a = TimeDelta::seconds(1.0);
  const auto b = TimeDelta::millis(500);
  EXPECT_DOUBLE_EQ((a + b).sec(), 1.5);
  EXPECT_DOUBLE_EQ((a - b).sec(), 0.5);
  EXPECT_DOUBLE_EQ((a * 3).sec(), 3.0);
  EXPECT_DOUBLE_EQ((a / 4).sec(), 0.25);
  EXPECT_DOUBLE_EQ(a / b, 2.0);
  EXPECT_LT(b, a);
}

TEST(Units, SimTimeArithmetic) {
  const auto t = SimTime::seconds(10);
  EXPECT_DOUBLE_EQ((t + TimeDelta::seconds(5)).sec(), 15.0);
  EXPECT_DOUBLE_EQ((t - SimTime::seconds(4)).sec(), 6.0);
  EXPECT_LT(t, SimTime::infinite());
}

TEST(Units, DataSize) {
  EXPECT_EQ(DataSize::kilobytes(1).byte_count(), 1000);
  EXPECT_DOUBLE_EQ(DataSize::bytes(125).bits(), 1000.0);
  EXPECT_TRUE(DataSize::zero().is_zero());
}

TEST(Units, RateConversions) {
  const auto r = Rate::mbps(4);
  EXPECT_DOUBLE_EQ(r.bits_per_second(), 4e6);
  // 4 Mbps at 1 KB packets = 500 packets/s — the paper's link capacity.
  EXPECT_DOUBLE_EQ(r.pps(DataSize::kilobytes(1)), 500.0);
}

TEST(Units, SerializationTime) {
  const auto r = Rate::mbps(4);
  // 1 KB = 8000 bits over 4e6 bps = 2 ms.
  EXPECT_DOUBLE_EQ(r.serialization_time(DataSize::kilobytes(1)).sec(), 0.002);
  // Zero-size (piggybacked control) packets serialize instantly.
  EXPECT_TRUE(r.serialization_time(DataSize::zero()).is_zero());
}

// ---------------------------------------------------------------------------
// EventQueue

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.schedule(SimTime::seconds(1), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  EXPECT_TRUE(h.pending());
  h.cancel();
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, NextTimeSkipsCancelled) {
  EventQueue q;
  auto h = q.schedule(SimTime::seconds(1), [] {});
  q.schedule(SimTime::seconds(2), [] {});
  h.cancel();
  EXPECT_DOUBLE_EQ(q.next_time().sec(), 2.0);
}

TEST(EventQueue, HandleReportsFired) {
  EventQueue q;
  auto h = q.schedule(SimTime::seconds(1), [] {});
  q.run_next();
  EXPECT_FALSE(h.pending());
}

TEST(EventQueue, ClearCancelsOutstandingHandles) {
  EventQueue q;
  bool fired = false;
  auto h = q.schedule(SimTime::seconds(1), [&] { fired = true; });
  ASSERT_TRUE(h.pending());
  q.clear();
  // A cleared event must not look alive to whoever still holds a handle.
  EXPECT_FALSE(h.pending());
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, DetachedInterleavesWithHandledInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  // All at the same time: firing order must be exactly schedule order,
  // regardless of which path (handled vs detached) scheduled each one.
  q.schedule(SimTime::seconds(1), [&] { order.push_back(0); });
  q.schedule_detached(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule(SimTime::seconds(1), [&] { order.push_back(2); });
  q.schedule_detached(SimTime::seconds(1), [&] { order.push_back(3); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, DetachedFiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_detached(SimTime::seconds(3), [&] { order.push_back(3); });
  q.schedule_detached(SimTime::seconds(1), [&] { order.push_back(1); });
  q.schedule_detached(SimTime::seconds(2), [&] { order.push_back(2); });
  while (!q.empty()) q.run_next();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SlotsAreRecycled) {
  EventQueue q;
  int fired = 0;
  for (int round = 0; round < 1000; ++round) {
    q.schedule_detached(SimTime::seconds(round), [&] { ++fired; });
    q.run_next();
  }
  EXPECT_EQ(fired, 1000);
  // One event pending at a time -> the pool never grows past a handful.
  EXPECT_LE(q.slot_capacity(), 4u);
}

// ---------------------------------------------------------------------------
// SmallFunction

TEST(SmallFunction, SmallCaptureStaysInline) {
  int hits = 0;
  SmallFunction<void(), 48> f{[&hits] { ++hits; }};
  EXPECT_TRUE(static_cast<bool>(f));
  EXPECT_TRUE(f.is_inline());
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFunction, OversizedCaptureFallsBackToHeap) {
  std::array<double, 16> payload{};  // 128 bytes > the 48-byte buffer
  payload[7] = 42.0;
  double seen = 0.0;
  SmallFunction<void(), 48> f{[payload, &seen] { seen = payload[7]; }};
  EXPECT_FALSE(f.is_inline());
  f();
  EXPECT_DOUBLE_EQ(seen, 42.0);
}

TEST(SmallFunction, MoveTransfersCallable) {
  auto counter = std::make_shared<int>(0);
  SmallFunction<void(), 48> a{[counter] { ++*counter; }};
  SmallFunction<void(), 48> b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(*counter, 1);

  SmallFunction<void(), 48> c;
  c = std::move(b);
  c();
  EXPECT_EQ(*counter, 2);
  c.reset();
  EXPECT_FALSE(static_cast<bool>(c));
}

TEST(SmallFunction, DestroysCapturedState) {
  auto token = std::make_shared<int>(7);
  std::weak_ptr<int> watch = token;
  {
    SmallFunction<void(), 48> f{[token] { (void)*token; }};
    token.reset();
    EXPECT_FALSE(watch.expired());  // the closure keeps it alive
  }
  EXPECT_TRUE(watch.expired());  // destroying the function releases it
}

// ---------------------------------------------------------------------------
// Simulator

TEST(Simulator, ClockAdvancesWithEvents) {
  Simulator s;
  std::vector<double> times;
  s.after(TimeDelta::seconds(1), [&] { times.push_back(s.now().sec()); });
  s.after(TimeDelta::seconds(2.5), [&] { times.push_back(s.now().sec()); });
  s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.5}));
  EXPECT_DOUBLE_EQ(s.now().sec(), 2.5);
  EXPECT_EQ(s.events_processed(), 2u);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator s;
  int fired = 0;
  s.after(TimeDelta::seconds(1), [&] { ++fired; });
  s.after(TimeDelta::seconds(5), [&] { ++fired; });
  s.run_until(SimTime::seconds(3));
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now().sec(), 3.0);  // clock advances to the deadline
  s.run_until(SimTime::seconds(10));
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NestedSchedulingFromCallbacks) {
  Simulator s;
  std::vector<double> times;
  s.after(TimeDelta::seconds(1), [&] {
    times.push_back(s.now().sec());
    s.after(TimeDelta::seconds(1), [&] { times.push_back(s.now().sec()); });
  });
  s.run();
  EXPECT_EQ(times, (std::vector<double>{1.0, 2.0}));
}

TEST(Simulator, PeriodicFiresUntilCancelled) {
  Simulator s;
  int count = 0;
  auto h = s.every(TimeDelta::seconds(1), [&] { ++count; });
  s.run_until(SimTime::seconds(5.5));
  EXPECT_EQ(count, 5);
  h.cancel();
  s.run_until(SimTime::seconds(20));
  EXPECT_EQ(count, 5);
}

TEST(Simulator, PeriodicCancelFromInsideCallback) {
  Simulator s;
  int count = 0;
  PeriodicHandle h;
  h = s.every(TimeDelta::seconds(1), [&] {
    if (++count == 3) h.cancel();
  });
  s.run_until(SimTime::seconds(100));
  EXPECT_EQ(count, 3);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int count = 0;
  s.every(TimeDelta::seconds(1), [&] {
    if (++count == 4) s.stop();
  });
  s.run_until(SimTime::seconds(1000));
  EXPECT_EQ(count, 4);
}

// ---------------------------------------------------------------------------
// Rng

TEST(Rng, DeterministicForSameSeed) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Rng, Uniform01InRange) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r{7};
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r{7};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng r{7};
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(3, 9);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, SampleIndicesDistinct) {
  Rng r{7};
  const auto idx = r.sample_indices(10, 4);
  ASSERT_EQ(idx.size(), 4u);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    EXPECT_LT(idx[i], 10u);
    for (std::size_t j = i + 1; j < idx.size(); ++j) EXPECT_NE(idx[i], idx[j]);
  }
}

TEST(Rng, SampleIndicesWantMoreThanAvailable) {
  Rng r{7};
  const auto idx = r.sample_indices(3, 10);
  EXPECT_EQ(idx.size(), 3u);
}

TEST(Rng, ExponentialMean) {
  Rng r{7};
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += r.exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

}  // namespace
}  // namespace corelite::sim

// Golden determinism regression for the event engine.
//
// The engine rewrite (inline callbacks, detached scheduling, pooled
// packets, indexed 4-ary heap) must be invisible to the simulation:
// same (time, seq) firing order, same RNG draws, same packet-level
// outcome bit for bit.  These constants were captured from the seed
// engine (std::function + shared_ptr packets + std::priority_queue)
// running the Figure-5 scenario with seed 42; any engine change that
// alters event order or RNG consumption shifts the event count and the
// per-flow delivery checksum and fails here.
// The timing-wheel tier and batched link transmission must be equally
// invisible: the wheel only re-buckets entries (exact (time, seq) order
// is restored on collection) and a fused completion replays the exact
// event it elides, so every golden scenario must fingerprint
// identically with the tiers on and off (CORELITE_NO_WHEEL /
// CORELITE_NO_BATCH, read at EventQueue/Link construction).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>

#include "scenario/scenario.h"

namespace corelite {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t checksum = 0;
};

Fingerprint run(scenario::Mechanism mech) {
  auto spec = scenario::fig5_simultaneous_start(mech);
  spec.seed = 42;
  const auto r = scenario::run_paper_scenario(spec);
  Fingerprint fp;
  fp.events = r.events_processed;
  fp.checksum = 1469598103934665603ULL;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    const std::uint64_t bytes =
        fs.delivered * static_cast<std::uint64_t>(spec.topology.packet_size.byte_count());
    fp.checksum = fnv1a(fp.checksum, i);
    fp.checksum = fnv1a(fp.checksum, bytes);
    fp.delivered += fs.delivered;
  }
  return fp;
}

TEST(GoldenDeterminism, CoreliteFig5Seed42MatchesSeedEngine) {
  const Fingerprint fp = run(scenario::Mechanism::Corelite);
  EXPECT_EQ(fp.events, 444442u);
  EXPECT_EQ(fp.delivered, 36665u);
  EXPECT_EQ(fp.checksum, 0xfcdc133cb00a346bULL);
}

TEST(GoldenDeterminism, CsfqFig5Seed42MatchesSeedEngine) {
  const Fingerprint fp = run(scenario::Mechanism::Csfq);
  EXPECT_EQ(fp.events, 365906u);
  EXPECT_EQ(fp.delivered, 37264u);
  EXPECT_EQ(fp.checksum, 0x16e58923be532030ULL);
}

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  const Fingerprint a = run(scenario::Mechanism::Corelite);
  const Fingerprint b = run(scenario::Mechanism::Corelite);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.checksum, b.checksum);
}

// ---------------------------------------------------------------------------
// Wheel / batch tier equivalence across every golden scenario.

Fingerprint run_spec(scenario::ScenarioSpec spec) {
  spec.seed = 42;
  const auto r = scenario::run_paper_scenario(spec);
  Fingerprint fp;
  fp.events = r.events_processed;
  fp.checksum = 1469598103934665603ULL;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    const std::uint64_t bytes =
        fs.delivered * static_cast<std::uint64_t>(spec.topology.packet_size.byte_count());
    fp.checksum = fnv1a(fp.checksum, i);
    fp.checksum = fnv1a(fp.checksum, bytes);
    fp.delivered += fs.delivered;
  }
  return fp;
}

// Both escape hatches are read at construction time (EventQueue for the
// wheel, Link for batching), so flipping the environment between
// run_paper_scenario calls compares fresh engines inside one process.
Fingerprint run_with(scenario::ScenarioSpec spec, bool wheel, bool batch) {
  if (wheel) {
    unsetenv("CORELITE_NO_WHEEL");
  } else {
    setenv("CORELITE_NO_WHEEL", "1", 1);
  }
  if (batch) {
    unsetenv("CORELITE_NO_BATCH");
  } else {
    setenv("CORELITE_NO_BATCH", "1", 1);
  }
  const Fingerprint fp = run_spec(std::move(spec));
  unsetenv("CORELITE_NO_WHEEL");
  unsetenv("CORELITE_NO_BATCH");
  return fp;
}

using SpecFactory = scenario::ScenarioSpec (*)(scenario::Mechanism);

struct GoldenCase {
  const char* name;
  SpecFactory make;
};

constexpr GoldenCase kGoldenScenarios[] = {
    {"fig3", &scenario::fig3_network_dynamics},
    {"fig5", &scenario::fig5_simultaneous_start},
    {"fig7", &scenario::fig7_staggered_start},
    {"fig9", &scenario::fig9_churn},
};

TEST(GoldenDeterminism, WheelOnMatchesWheelOffOnEveryGoldenScenario) {
  for (const auto& g : kGoldenScenarios) {
    for (const auto mech : {scenario::Mechanism::Corelite, scenario::Mechanism::Csfq}) {
      const Fingerprint on = run_with(g.make(mech), /*wheel=*/true, /*batch=*/true);
      const Fingerprint off = run_with(g.make(mech), /*wheel=*/false, /*batch=*/true);
      EXPECT_EQ(on.events, off.events) << g.name << " mech " << static_cast<int>(mech);
      EXPECT_EQ(on.delivered, off.delivered) << g.name << " mech " << static_cast<int>(mech);
      EXPECT_EQ(on.checksum, off.checksum) << g.name << " mech " << static_cast<int>(mech);
    }
  }
}

TEST(GoldenDeterminism, BatchingOnMatchesBatchingOffOnEveryGoldenScenario) {
  for (const auto& g : kGoldenScenarios) {
    for (const auto mech : {scenario::Mechanism::Corelite, scenario::Mechanism::Csfq}) {
      const Fingerprint on = run_with(g.make(mech), /*wheel=*/true, /*batch=*/true);
      const Fingerprint off = run_with(g.make(mech), /*wheel=*/true, /*batch=*/false);
      EXPECT_EQ(on.events, off.events) << g.name << " mech " << static_cast<int>(mech);
      EXPECT_EQ(on.delivered, off.delivered) << g.name << " mech " << static_cast<int>(mech);
      EXPECT_EQ(on.checksum, off.checksum) << g.name << " mech " << static_cast<int>(mech);
    }
  }
}

TEST(GoldenDeterminism, BothTiersOffStillMatchesTheGoldenFingerprint) {
  // Anchors the equivalence chain to the frozen seed-engine constants:
  // heap-only, unbatched — the engine configuration the golden numbers
  // were captured on.
  const Fingerprint fp =
      run_with(scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite),
               /*wheel=*/false, /*batch=*/false);
  EXPECT_EQ(fp.events, 444442u);
  EXPECT_EQ(fp.delivered, 36665u);
  EXPECT_EQ(fp.checksum, 0xfcdc133cb00a346bULL);
}

}  // namespace
}  // namespace corelite

// Golden determinism regression for the event engine.
//
// The engine rewrite (inline callbacks, detached scheduling, pooled
// packets, indexed 4-ary heap) must be invisible to the simulation:
// same (time, seq) firing order, same RNG draws, same packet-level
// outcome bit for bit.  These constants were captured from the seed
// engine (std::function + shared_ptr packets + std::priority_queue)
// running the Figure-5 scenario with seed 42; any engine change that
// alters event order or RNG consumption shifts the event count and the
// per-flow delivery checksum and fails here.
#include <gtest/gtest.h>

#include <cstdint>

#include "scenario/scenario.h"

namespace corelite {
namespace {

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffu;
    h *= 1099511628211ULL;
  }
  return h;
}

struct Fingerprint {
  std::uint64_t events = 0;
  std::uint64_t delivered = 0;
  std::uint64_t checksum = 0;
};

Fingerprint run(scenario::Mechanism mech) {
  auto spec = scenario::fig5_simultaneous_start(mech);
  spec.seed = 42;
  const auto r = scenario::run_paper_scenario(spec);
  Fingerprint fp;
  fp.events = r.events_processed;
  fp.checksum = 1469598103934665603ULL;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    const std::uint64_t bytes =
        fs.delivered * static_cast<std::uint64_t>(spec.topology.packet_size.byte_count());
    fp.checksum = fnv1a(fp.checksum, i);
    fp.checksum = fnv1a(fp.checksum, bytes);
    fp.delivered += fs.delivered;
  }
  return fp;
}

TEST(GoldenDeterminism, CoreliteFig5Seed42MatchesSeedEngine) {
  const Fingerprint fp = run(scenario::Mechanism::Corelite);
  EXPECT_EQ(fp.events, 444442u);
  EXPECT_EQ(fp.delivered, 36665u);
  EXPECT_EQ(fp.checksum, 0xfcdc133cb00a346bULL);
}

TEST(GoldenDeterminism, CsfqFig5Seed42MatchesSeedEngine) {
  const Fingerprint fp = run(scenario::Mechanism::Csfq);
  EXPECT_EQ(fp.events, 365906u);
  EXPECT_EQ(fp.delivered, 37264u);
  EXPECT_EQ(fp.checksum, 0x16e58923be532030ULL);
}

TEST(GoldenDeterminism, RepeatedRunsAreBitIdentical) {
  const Fingerprint a = run(scenario::Mechanism::Corelite);
  const Fingerprint b = run(scenario::Mechanism::Corelite);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.checksum, b.checksum);
}

}  // namespace
}  // namespace corelite

// Unit tests for the WFQ (start-time fair queueing) reference queue:
// weighted service proportions, virtual-time bookkeeping, per-flow
// state lifetime, control-priority bypass.
#include <gtest/gtest.h>

#include <map>

#include "net/network.h"
#include "net/wfq_queue.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

Packet data_packet(FlowId flow, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.kind = PacketKind::Data;
  p.flow = flow;
  p.size = sim::DataSize::kilobytes(1);
  return p;
}

const sim::SimTime t0 = sim::SimTime::zero();

WfqQueue::WeightFn weights(std::map<FlowId, double> w) {
  return [w](FlowId f) {
    auto it = w.find(f);
    return it == w.end() ? 1.0 : it->second;
  };
}

TEST(WfqQueue, EqualWeightsInterleaveService) {
  WfqQueue q{100, weights({})};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  std::vector<FlowId> order;
  while (auto p = q.dequeue(t0)) order.push_back(p->flow);
  // Strict alternation (flow 1 first on the tie-break).
  EXPECT_EQ(order, (std::vector<FlowId>{1, 2, 1, 2, 1, 2, 1, 2}));
}

TEST(WfqQueue, ServiceProportionalToWeights) {
  // Flows 1 (weight 1) and 2 (weight 3), both continuously backlogged:
  // over any long service run, flow 2 gets ~3x the service.
  WfqQueue q{1000, weights({{1, 1.0}, {2, 3.0}})};
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(1), t0));
    ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 200; ++i) {
    auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    ++served[p->flow];
  }
  EXPECT_NEAR(static_cast<double>(served[2]) / served[1], 3.0, 0.3);
}

TEST(WfqQueue, ThreeWayWeightedSplit) {
  WfqQueue q{2000, weights({{1, 1.0}, {2, 2.0}, {3, 5.0}})};
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(1), t0));
    ASSERT_TRUE(q.enqueue(data_packet(2), t0));
    ASSERT_TRUE(q.enqueue(data_packet(3), t0));
  }
  std::map<FlowId, int> served;
  for (int i = 0; i < 400; ++i) {
    auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    ++served[p->flow];
  }
  const double total = 400.0;
  EXPECT_NEAR(served[1] / total, 1.0 / 8.0, 0.03);
  EXPECT_NEAR(served[2] / total, 2.0 / 8.0, 0.03);
  EXPECT_NEAR(served[3] / total, 5.0 / 8.0, 0.03);
}

TEST(WfqQueue, NewlyBackloggedFlowStartsAtVirtualTime) {
  // Flow 2 arrives after flow 1 consumed service: it must not be owed
  // "credit" for its idle past (start tag = current virtual time).
  WfqQueue q{100, weights({})};
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  for (int i = 0; i < 5; ++i) (void)q.dequeue(t0);
  ASSERT_TRUE(q.enqueue(data_packet(2, 99), t0));
  // Flow 2's head should now compete fairly, not drain all at once:
  // next dequeues alternate between the two flows.
  std::vector<FlowId> order;
  for (int i = 0; i < 4; ++i) order.push_back(q.dequeue(t0)->flow);
  int f2 = 0;
  for (FlowId f : order) f2 += f == 2;
  EXPECT_EQ(f2, 1);  // exactly its fair 1-in-interleave share
}

TEST(WfqQueue, CapacityTailDrop) {
  WfqQueue q{5, weights({})};
  int accepted = 0;
  for (int i = 0; i < 10; ++i) accepted += q.enqueue(data_packet(1), t0);
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(q.data_packet_count(), 5u);
}

TEST(WfqQueue, ControlHasStrictPriority) {
  WfqQueue q{100, weights({})};
  ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  Packet m;
  m.kind = PacketKind::Marker;
  m.flow = 7;
  ASSERT_TRUE(q.enqueue(std::move(m), t0));
  EXPECT_EQ(q.dequeue(t0)->kind, PacketKind::Marker);
  EXPECT_EQ(q.dequeue(t0)->kind, PacketKind::Data);
}

TEST(WfqQueue, TagStateRetainedAcrossIdlePeriods) {
  WfqQueue q{100, weights({})};
  ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  EXPECT_EQ(q.backlogged_flows(), 2u);
  (void)q.dequeue(t0);
  (void)q.dequeue(t0);
  EXPECT_EQ(q.backlogged_flows(), 0u);
  // Finish tags survive the idle period (the WFQ statefulness the
  // paper's design avoids); without retention a fast flow that keeps
  // draining would jump the backlog on every arrival.
  EXPECT_EQ(q.tracked_flows(), 2u);
}

TEST(WfqQueue, DrainingFlowCannotJumpTheBacklog) {
  // Flow 1 arrives one packet at a time and is served immediately;
  // flow 2 keeps a standing backlog.  Over any window, service must
  // still split 1:1 — the re-entry tag must not reset.
  WfqQueue q{100, weights({})};
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  int f1 = 0;
  int f2 = 0;
  ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  for (int round = 0; round < 40; ++round) {
    auto p = q.dequeue(t0);
    ASSERT_TRUE(p.has_value());
    if (p->flow == 1) {
      ++f1;
      ASSERT_TRUE(q.enqueue(data_packet(1), t0));  // flow 1 re-arrives
    } else {
      ++f2;
    }
  }
  EXPECT_NEAR(static_cast<double>(f1) / (f1 + f2), 0.5, 0.1);
}

TEST(WfqQueue, VirtualTimeMonotone) {
  WfqQueue q{100, weights({{1, 2.0}, {2, 1.0}})};
  double last = -1.0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(1), t0));
    ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  }
  for (int i = 0; i < 40; ++i) {
    (void)q.dequeue(t0);
    EXPECT_GE(q.virtual_time(), last);
    last = q.virtual_time();
  }
}

// End-to-end: WFQ cores enforce weighted shares even against greedy
// (non-weight-aware) sources.
TEST(WfqIntegration, StatefulCoreEnforcesWeights) {
  sim::Simulator simulator{9};
  net::Network network{simulator};
  const auto a = network.add_node("a");
  const auto b = network.add_node("b");
  const auto mid = network.add_node("mid");
  const auto sink = network.add_node("sink");
  network.connect_duplex(a, mid, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 100);
  network.connect_duplex(b, mid, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 100);
  // Bottleneck with WFQ weights 1:4.
  network.connect_with_queue(
      mid, sink, sim::Rate::mbps(4), sim::TimeDelta::millis(1),
      std::make_unique<WfqQueue>(40, weights({{1, 1.0}, {2, 4.0}})));
  network.connect(sink, mid, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 40);
  network.build_routes();

  std::map<FlowId, int> delivered;
  network.node(sink).set_local_sink([&](Packet&& p) { ++delivered[p.flow]; });

  // Both sources blast at 400 pkt/s (aggregate 800 > 500 capacity).
  for (FlowId f : {1u, 2u}) {
    const auto src = f == 1 ? a : b;
    simulator.every(sim::TimeDelta::millis(2.5), [&network, src, sink, f] {
      Packet p;
      p.uid = network.next_packet_uid();
      p.kind = PacketKind::Data;
      p.flow = f;
      p.src = src;
      p.dst = sink;
      p.size = sim::DataSize::kilobytes(1);
      network.inject(src, std::move(p));
    });
  }
  simulator.run_until(sim::SimTime::seconds(30));
  // Flow 2 gets min(offered 400, weighted share 400) and flow 1 the
  // remaining ~100 pkt/s.
  EXPECT_NEAR(delivered[2] / 30.0, 400.0, 30.0);
  EXPECT_NEAR(delivered[1] / 30.0, 100.0, 30.0);
}

}  // namespace
}  // namespace corelite::net

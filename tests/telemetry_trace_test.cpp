// TraceWriter tests: the Chrome trace_event JSON shape, both clock
// domains, the event cap, and string escaping.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "telemetry/trace.h"

namespace corelite::telemetry {
namespace {

std::string render(const TraceWriter& w) {
  std::ostringstream os;
  w.write(os);
  return os.str();
}

TEST(TraceWriter, EmptyDocumentIsStillValidShape) {
  TraceWriter w;
  const std::string out = render(w);
  EXPECT_NE(out.find("\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(out.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(out.find("\"dropped_events\": 0"), std::string::npos);
}

TEST(TraceWriter, CompleteEventCarriesBothClockDomains) {
  TraceWriter w;
  w.add_complete(TraceWriter::kVirtualPid, 3, "pkt uid=1", "queue", 1000.0, 250.0);
  w.add_complete(TraceWriter::kWallPid, 0, "fig5/wfq r0", "run", 0.0, 12345.678, "events", 99.0);
  const std::string out = render(w);
  EXPECT_NE(out.find(R"("name": "pkt uid=1", "cat": "queue", "ph": "X", "pid": 1, "tid": 3, )"
                     R"("ts": 1000.000, "dur": 250.000)"),
            std::string::npos);
  EXPECT_NE(out.find(R"("ph": "X", "pid": 2, "tid": 0, "ts": 0.000, "dur": 12345.678, )"
                     R"("args": {"events": 99})"),
            std::string::npos);
}

TEST(TraceWriter, InstantAndCounterEvents) {
  TraceWriter w;
  w.add_instant(TraceWriter::kVirtualPid, 1, "drop uid=7", "drop", 500.0);
  w.add_counter(TraceWriter::kVirtualPid, "queue 0->1", 500.0, "packets", 4.0);
  const std::string out = render(w);
  EXPECT_NE(out.find(R"("ph": "i")"), std::string::npos);
  EXPECT_NE(out.find(R"("s": "t")"), std::string::npos);  // instant scope
  EXPECT_NE(out.find(R"("ph": "C")"), std::string::npos);
  EXPECT_NE(out.find(R"("args": {"packets": 4})"), std::string::npos);
}

TEST(TraceWriter, MetadataNamesTracks) {
  TraceWriter w;
  w.set_process_name(TraceWriter::kVirtualPid, "virtual time");
  w.set_thread_name(TraceWriter::kVirtualPid, 2, "link 0->1");
  const std::string out = render(w);
  EXPECT_NE(out.find(R"("name": "process_name", "ph": "M", "pid": 1, "tid": 0, )"
                     R"("args": {"name": "virtual time"})"),
            std::string::npos);
  EXPECT_NE(out.find(R"("name": "thread_name", "ph": "M", "pid": 1, "tid": 2, )"
                     R"("args": {"name": "link 0->1"})"),
            std::string::npos);
}

TEST(TraceWriter, EventLimitCountsOverflowInsteadOfStoring) {
  TraceWriter w;
  w.set_event_limit(2);
  for (int i = 0; i < 5; ++i) {
    w.add_instant(TraceWriter::kVirtualPid, 0, "e", "c", static_cast<double>(i));
  }
  EXPECT_EQ(w.event_count(), 2u);
  EXPECT_EQ(w.dropped_events(), 3u);
  EXPECT_NE(render(w).find("\"dropped_events\": 3"), std::string::npos);
}

TEST(TraceWriter, EscapesEventNames) {
  TraceWriter w;
  w.add_instant(TraceWriter::kVirtualPid, 0, "quote \" and \\ slash", "c", 0.0);
  const std::string out = render(w);
  EXPECT_NE(out.find(R"(quote \" and \\ slash)"), std::string::npos);
  EXPECT_EQ(out.find("quote \" and"), std::string::npos);  // raw quote never emitted
}

TEST(TraceWriter, TimestampsKeepSubMicrosecondPrecision) {
  // 80-second virtual runs produce µs timestamps ~8e7; the format must
  // not collapse nearby events onto a coarse grid.
  TraceWriter w;
  w.add_instant(TraceWriter::kVirtualPid, 0, "a", "c", 80'000'000.125);
  EXPECT_NE(render(w).find("\"ts\": 80000000.125"), std::string::npos);
}

}  // namespace
}  // namespace corelite::telemetry

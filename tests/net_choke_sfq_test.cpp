// Unit tests for the CHOKe and stochastic-fair-queueing baselines.
#include <gtest/gtest.h>

#include <map>

#include "net/choke_queue.h"
#include "net/sfq_queue.h"
#include "sim/random.h"

namespace corelite::net {
namespace {

Packet data_packet(FlowId flow, std::uint64_t uid = 0) {
  Packet p;
  p.uid = uid;
  p.kind = PacketKind::Data;
  p.flow = flow;
  p.size = sim::DataSize::kilobytes(1);
  return p;
}

const sim::SimTime t0 = sim::SimTime::zero();

// ---------------------------------------------------------------------------
// CHOKe

TEST(ChokeQueue, AcceptsEverythingWhileAverageLow) {
  sim::Rng rng{1};
  ChokeQueue q{ChokeQueue::Config{}, rng};
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(q.enqueue(data_packet(1), t0));
    (void)q.dequeue(t0);
  }
  EXPECT_EQ(q.choke_matches(), 0u);
}

TEST(ChokeQueue, MatchKillsBothPackets) {
  sim::Rng rng{7};
  ChokeQueue::Config cfg;
  cfg.min_thresh = 1.0;   // engage the comparison immediately
  cfg.max_thresh = 100.0;
  cfg.max_drop_prob = 0.0;  // isolate the CHOKe mechanism from RED drops
  cfg.ewma_weight = 1.0;    // average == instantaneous queue
  ChokeQueue q{cfg, rng};
  // Single-flow flood: once the average passes min_thresh, every
  // arrival has a same-flow match with probability 1.
  int accepted = 0;
  for (int i = 0; i < 100; ++i) accepted += q.enqueue(data_packet(1), t0);
  EXPECT_GT(q.choke_matches(), 0u);
  // Matches remove a queued packet per rejected arrival: occupancy
  // stays small even though nothing was ever dequeued.
  EXPECT_LT(q.data_packet_count(), 10u);
  EXPECT_LT(accepted, 100);
}

TEST(ChokeQueue, MatchesScaleWithBufferShare) {
  // Flow 1 floods; flow 2 trickles.  Flow 1 dominates the buffer, so
  // its arrivals match far more often than flow 2's.
  sim::Rng rng{3};
  ChokeQueue::Config cfg;
  cfg.capacity_data_packets = 100;
  cfg.min_thresh = 1.0;
  cfg.max_thresh = 200.0;
  cfg.max_drop_prob = 0.0;
  cfg.ewma_weight = 1.0;
  ChokeQueue q{cfg, rng};
  std::map<FlowId, int> rejected;
  std::map<FlowId, int> offered;
  for (int round = 0; round < 300; ++round) {
    for (int i = 0; i < 5; ++i) {
      ++offered[1];
      if (!q.enqueue(data_packet(1), t0)) ++rejected[1];
    }
    ++offered[2];
    if (!q.enqueue(data_packet(2), t0)) ++rejected[2];
    (void)q.dequeue(t0);
    (void)q.dequeue(t0);
  }
  const double frac1 = static_cast<double>(rejected[1]) / offered[1];
  const double frac2 = static_cast<double>(rejected[2]) / offered[2];
  EXPECT_GT(frac1, 2.0 * frac2);
}

TEST(ChokeQueue, ControlBypasses) {
  sim::Rng rng{1};
  ChokeQueue q{ChokeQueue::Config{}, rng};
  Packet m;
  m.kind = PacketKind::Marker;
  m.flow = 1;
  EXPECT_TRUE(q.enqueue(std::move(m), t0));
  EXPECT_EQ(q.data_packet_count(), 0u);
}

// ---------------------------------------------------------------------------
// SFQ

TEST(SfqQueue, HashIsDeterministicAndSpread) {
  SfqQueue q{16, 4};
  std::map<std::size_t, int> used;
  for (FlowId f = 1; f <= 32; ++f) {
    EXPECT_EQ(q.band_of(f), q.band_of(f));
    ++used[q.band_of(f)];
  }
  // 32 flows over 16 bands: expect a reasonable spread (>= 8 bands hit).
  EXPECT_GE(used.size(), 8u);
}

TEST(SfqQueue, RoundRobinInterleavesBands) {
  SfqQueue q{16, 10};
  // Find two flows hashing to different bands.
  FlowId a = 1;
  FlowId b = 2;
  while (q.band_of(a) == q.band_of(b)) ++b;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(q.enqueue(data_packet(a), t0));
    ASSERT_TRUE(q.enqueue(data_packet(b), t0));
  }
  std::map<FlowId, int> first_four;
  for (int i = 0; i < 4; ++i) ++first_four[q.dequeue(t0)->flow];
  EXPECT_EQ(first_four[a], 2);
  EXPECT_EQ(first_four[b], 2);
}

TEST(SfqQueue, PerBandCapacityIsolates) {
  SfqQueue q{16, 3};
  FlowId a = 1;
  FlowId b = 2;
  while (q.band_of(a) == q.band_of(b)) ++b;
  // Flow a floods its band to the 3-packet cap...
  int accepted_a = 0;
  for (int i = 0; i < 20; ++i) accepted_a += q.enqueue(data_packet(a), t0);
  EXPECT_EQ(accepted_a, 3);
  // ...but flow b's band is untouched.
  EXPECT_TRUE(q.enqueue(data_packet(b), t0));
}

TEST(SfqQueue, AggregateCountSpansBands) {
  SfqQueue q{4, 10};
  for (FlowId f = 1; f <= 8; ++f) ASSERT_TRUE(q.enqueue(data_packet(f), t0));
  EXPECT_EQ(q.data_packet_count(), 8u);
  (void)q.dequeue(t0);
  EXPECT_EQ(q.data_packet_count(), 7u);
}

TEST(SfqQueue, ControlStrictPriority) {
  SfqQueue q{4, 10};
  ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  Packet m;
  m.kind = PacketKind::Feedback;
  m.flow = 9;
  ASSERT_TRUE(q.enqueue(std::move(m), t0));
  EXPECT_EQ(q.dequeue(t0)->kind, PacketKind::Feedback);
  EXPECT_EQ(q.dequeue(t0)->kind, PacketKind::Data);
}

}  // namespace
}  // namespace corelite::net

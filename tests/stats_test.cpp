// Unit tests for the stats module: time series semantics, Jain index,
// the weighted max-min water-filling oracle (including the paper's own
// expected numbers), flow tracking and CSV emission.
#include <gtest/gtest.h>

#include <sstream>

#include "net/types.h"
#include "stats/csv_writer.h"
#include "stats/fairness.h"
#include "stats/flow_tracker.h"
#include "stats/time_series.h"

namespace corelite::stats {
namespace {

// ---------------------------------------------------------------------------
// TimeSeries

TEST(TimeSeries, StepValueSemantics) {
  TimeSeries ts;
  ts.add(1.0, 10.0);
  ts.add(3.0, 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(0.5), 0.0);   // before first sample
  EXPECT_DOUBLE_EQ(ts.value_at(1.0), 10.0);  // right-continuous
  EXPECT_DOUBLE_EQ(ts.value_at(2.999), 10.0);
  EXPECT_DOUBLE_EQ(ts.value_at(3.0), 20.0);
  EXPECT_DOUBLE_EQ(ts.value_at(100.0), 20.0);
}

TEST(TimeSeries, AverageOverIsTimeWeighted) {
  TimeSeries ts;
  ts.add(0.0, 10.0);
  ts.add(1.0, 30.0);
  // [0,2]: 10 for 1 s + 30 for 1 s => mean 20.
  EXPECT_DOUBLE_EQ(ts.average_over(0.0, 2.0), 20.0);
  // [0.5, 1.5]: 10 for 0.5 + 30 for 0.5 => mean 20.
  EXPECT_DOUBLE_EQ(ts.average_over(0.5, 1.5), 20.0);
  // [1, 2]: constant 30.
  EXPECT_DOUBLE_EQ(ts.average_over(1.0, 2.0), 30.0);
}

TEST(TimeSeries, AverageOfEmptyIsZero) {
  TimeSeries ts;
  EXPECT_DOUBLE_EQ(ts.average_over(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.value_at(5.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.last_value(), 0.0);
}

TEST(TimeSeries, MinMaxOverWindow) {
  TimeSeries ts;
  ts.add(0.0, 5.0);
  ts.add(1.0, 1.0);
  ts.add(2.0, 9.0);
  ts.add(3.0, 4.0);
  EXPECT_DOUBLE_EQ(ts.min_over(0.5, 2.5), 1.0);
  EXPECT_DOUBLE_EQ(ts.max_over(0.5, 2.5), 9.0);
  // Sample-free window: the step function still carries the last value
  // (4.0 from t=3) across it, consistent with value_at/average_over.
  EXPECT_DOUBLE_EQ(ts.min_over(10.0, 20.0), 4.0);
  EXPECT_DOUBLE_EQ(ts.max_over(10.0, 20.0), 4.0);
}

TEST(TimeSeries, MinMaxIncludeValueCarriedIntoWindow) {
  TimeSeries ts;
  ts.add(0.0, 7.0);
  ts.add(5.0, 2.0);
  // (1, 4] has no samples, but the series is 7.0 throughout.
  EXPECT_DOUBLE_EQ(ts.min_over(1.0, 4.0), 7.0);
  EXPECT_DOUBLE_EQ(ts.max_over(1.0, 4.0), 7.0);
  // A window straddling a sample sees both the carried-in and the new value.
  EXPECT_DOUBLE_EQ(ts.min_over(1.0, 6.0), 2.0);
  EXPECT_DOUBLE_EQ(ts.max_over(1.0, 6.0), 7.0);
  // Before the first sample the series is 0 (value_at semantics).
  TimeSeries late;
  late.add(10.0, 5.0);
  EXPECT_DOUBLE_EQ(late.min_over(0.0, 20.0), 0.0);
  EXPECT_DOUBLE_EQ(late.max_over(0.0, 20.0), 5.0);
  // Empty series and inverted windows stay 0.
  EXPECT_DOUBLE_EQ(TimeSeries{}.min_over(0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.max_over(4.0, 1.0), 0.0);
}

// ---------------------------------------------------------------------------
// Jain index

TEST(Fairness, JainPerfectlyFair) {
  const std::vector<double> x{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(jain_index(x), 1.0);
}

TEST(Fairness, JainMaximallyUnfair) {
  const std::vector<double> x{1.0, 0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(x), 0.25);  // 1/n
}

TEST(Fairness, JainWeightedNormalization) {
  // Rates exactly proportional to weights are perfectly weighted-fair.
  const std::vector<double> rates{10.0, 20.0, 30.0};
  const std::vector<double> weights{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(jain_index(rates, weights), 1.0);
}

TEST(Fairness, JainEmptyAndZeroInputs) {
  EXPECT_DOUBLE_EQ(jain_index(std::vector<double>{}), 1.0);
  const std::vector<double> zeros{0.0, 0.0};
  EXPECT_DOUBLE_EQ(jain_index(zeros), 1.0);
}

// ---------------------------------------------------------------------------
// Weighted max-min water-filling

TEST(MaxMin, SingleLinkEqualWeights) {
  const auto alloc = weighted_max_min({90.0}, {{1, 1.0, {0}}, {2, 1.0, {0}}, {3, 1.0, {0}}});
  EXPECT_DOUBLE_EQ(alloc.at(1), 30.0);
  EXPECT_DOUBLE_EQ(alloc.at(2), 30.0);
  EXPECT_DOUBLE_EQ(alloc.at(3), 30.0);
}

TEST(MaxMin, SingleLinkWeighted) {
  const auto alloc = weighted_max_min({120.0}, {{1, 1.0, {0}}, {2, 2.0, {0}}, {3, 3.0, {0}}});
  EXPECT_DOUBLE_EQ(alloc.at(1), 20.0);
  EXPECT_DOUBLE_EQ(alloc.at(2), 40.0);
  EXPECT_DOUBLE_EQ(alloc.at(3), 60.0);
}

TEST(MaxMin, BottleneckedFlowFreesOtherLink) {
  // Flow 1 crosses both links; flow 2 only link 0; flow 3 only link 1.
  // Link 0 cap 10, link 1 cap 100: flow 1 and 2 split link 0 (5 each),
  // flow 3 then takes the rest of link 1 (95).
  const auto alloc =
      weighted_max_min({10.0, 100.0}, {{1, 1.0, {0, 1}}, {2, 1.0, {0}}, {3, 1.0, {1}}});
  EXPECT_DOUBLE_EQ(alloc.at(1), 5.0);
  EXPECT_DOUBLE_EQ(alloc.at(2), 5.0);
  EXPECT_DOUBLE_EQ(alloc.at(3), 95.0);
}

TEST(MaxMin, PaperExpectedValuesAllTwentyFlows) {
  // The paper's §4.1 calculation: with all 20 flows active every congested link
  // carries weight 20, so the share is 500/20 = 25 pkt/s per unit weight.
  std::vector<MaxMinFlow> flows;
  auto weight_of = [](std::size_t f) {
    if (f == 5 || f == 15) return 3.0;
    if (f == 1 || f == 11 || f == 16) return 1.0;
    return 2.0;
  };
  auto links_of = [](std::size_t f) -> std::vector<std::size_t> {
    if (f <= 5) return {0};
    if (f <= 8) return {0, 1};
    if (f <= 10) return {0, 1, 2};
    if (f <= 12) return {1};
    if (f <= 15) return {1, 2};
    return {2};
  };
  for (std::size_t f = 1; f <= 20; ++f) {
    flows.push_back({static_cast<net::FlowId>(f), weight_of(f), links_of(f)});
  }
  const auto alloc = weighted_max_min({500.0, 500.0, 500.0}, flows);
  EXPECT_NEAR(alloc.at(5), 75.0, 1e-9);   // weight 3
  EXPECT_NEAR(alloc.at(15), 75.0, 1e-9);
  EXPECT_NEAR(alloc.at(1), 25.0, 1e-9);   // weight 1
  EXPECT_NEAR(alloc.at(11), 25.0, 1e-9);
  EXPECT_NEAR(alloc.at(16), 25.0, 1e-9);
  EXPECT_NEAR(alloc.at(2), 50.0, 1e-9);   // weight 2
  EXPECT_NEAR(alloc.at(9), 50.0, 1e-9);   // three congested links, same share
}

TEST(MaxMin, PaperExpectedValuesFifteenFlows) {
  // Without flows 1, 9, 10, 11, 16 each link carries weight 15:
  // 500/15 = 33.33 pkt/s per unit weight.
  std::vector<MaxMinFlow> flows;
  auto weight_of = [](std::size_t f) {
    if (f == 5 || f == 15) return 3.0;
    return 2.0;
  };
  auto links_of = [](std::size_t f) -> std::vector<std::size_t> {
    if (f <= 5) return {0};
    if (f <= 8) return {0, 1};
    if (f <= 12) return {1};
    if (f <= 15) return {1, 2};
    return {2};
  };
  for (std::size_t f : {2, 3, 4, 5, 6, 7, 8, 12, 13, 14, 15, 17, 18, 19, 20}) {
    flows.push_back({static_cast<net::FlowId>(f), weight_of(f), links_of(f)});
  }
  const auto alloc = weighted_max_min({500.0, 500.0, 500.0}, flows);
  EXPECT_NEAR(alloc.at(5), 100.0, 1e-9);   // 33.33 * 3 (paper prints 99.99)
  EXPECT_NEAR(alloc.at(15), 100.0, 1e-9);
  EXPECT_NEAR(alloc.at(2), 500.0 * 2 / 15, 1e-9);  // 66.66
  EXPECT_NEAR(alloc.at(20), 500.0 * 2 / 15, 1e-9);
}

TEST(MaxMin, ConservationNeverExceedsCapacity) {
  const std::vector<double> caps{100.0, 60.0};
  const std::vector<MaxMinFlow> flows{
      {1, 1.0, {0}}, {2, 2.0, {0, 1}}, {3, 1.5, {1}}, {4, 0.5, {0, 1}}};
  const auto alloc = weighted_max_min(caps, flows);
  double link0 = alloc.at(1) + alloc.at(2) + alloc.at(4);
  double link1 = alloc.at(2) + alloc.at(3) + alloc.at(4);
  EXPECT_LE(link0, caps[0] + 1e-9);
  EXPECT_LE(link1, caps[1] + 1e-9);
}

TEST(MaxMin, FlowWithNoLinksGetsZero) {
  const auto alloc = weighted_max_min({10.0}, {{1, 1.0, {}}, {2, 1.0, {0}}});
  EXPECT_DOUBLE_EQ(alloc.at(1), 0.0);
  EXPECT_DOUBLE_EQ(alloc.at(2), 10.0);
}

// ---------------------------------------------------------------------------
// FlowTracker

TEST(FlowTracker, CountsAndSeries) {
  FlowTracker t;
  t.declare_flow(1, 2.0);
  t.record_rate(1, sim::SimTime::seconds(0), 10.0);
  t.record_rate(1, sim::SimTime::seconds(1), 20.0);
  t.on_sent(1);
  t.on_sent(1);
  t.on_delivered(1);
  t.on_dropped(1);
  t.on_feedback(1, 3);
  t.sample_cumulative(sim::SimTime::seconds(2));

  const auto& fs = t.series(1);
  EXPECT_DOUBLE_EQ(fs.weight, 2.0);
  EXPECT_EQ(fs.sent, 2u);
  EXPECT_EQ(fs.delivered, 1u);
  EXPECT_EQ(fs.dropped, 1u);
  EXPECT_EQ(fs.feedback_received, 3u);
  EXPECT_DOUBLE_EQ(fs.allotted_rate.value_at(1.5), 20.0);
  EXPECT_DOUBLE_EQ(fs.cumulative_delivered.value_at(2.0), 1.0);
  EXPECT_EQ(t.total_delivered(), 1u);
  EXPECT_EQ(t.total_dropped(), 1u);
}

// ---------------------------------------------------------------------------
// CSV / table writers

TEST(CsvWriter, GridAndHeader) {
  TimeSeries a;
  a.add(0.0, 1.0);
  a.add(1.0, 2.0);
  TimeSeries b;
  b.add(0.5, 10.0);
  std::ostringstream os;
  write_csv(os, {{"a", &a}, {"b", &b}}, 0.0, 2.0, 1.0);
  EXPECT_EQ(os.str(), "t,a,b\n0,1,0\n1,2,10\n2,2,10\n");
}

TEST(CsvWriter, TableContainsValues) {
  TimeSeries a;
  a.add(0.0, 3.25);
  std::ostringstream os;
  write_table(os, {{"x", &a}}, 0.0, 1.0, 1.0);
  const std::string out = os.str();
  EXPECT_NE(out.find("3.25"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
}

}  // namespace
}  // namespace corelite::stats

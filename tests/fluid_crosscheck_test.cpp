// Fluid fast-forward fidelity and bit-identity contracts.
//
// Two promises gate the --fluid flag (see docs/architecture.md, "Fluid
// fast-forward"):
//   1. fluid OFF is not a mode — the controller is never constructed,
//      and results are bit-identical to the packet engine (the golden
//      determinism suite pins the digests; here we pin fluid-off ==
//      default-off at the digest level).
//   2. fluid ON actually jumps on a steady scenario AND stays within
//      the cross-check tolerance of the packet run: per-flow [T/2, T]
//      mean rates within 2% of packet mode relative to
//      max(packet_rate, 25 pps), Jain within 2% relative.
// The same tolerance, on whole-run means over a wider grid, is
// enforced by the release-perf CI job via tools/fluid_crosscheck.py.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "runner/sweep.h"

namespace rn = corelite::runner;
namespace sc = corelite::scenario;

namespace {

// The cross-check judges rates relative to this floor: below ~25 pps a
// 2% relative gate would demand sub-packet-per-minute agreement from
// counters that only move in whole packets.
constexpr double kRateFloorPps = 25.0;
constexpr double kTol = 0.02;

rn::RunResult run_fig5(bool fluid) {
  rn::RunDescriptor d;
  d.scenario = "fig5";
  d.mechanism = sc::Mechanism::Corelite;
  d.fluid = fluid;
  rn::RunResult r = rn::execute_run(d);
  EXPECT_TRUE(r.ok);
  return r;
}

TEST(FluidCrosscheck, Fig5WithinToleranceAndActuallyJumps) {
  const rn::RunResult pkt = run_fig5(false);
  const rn::RunResult fld = run_fig5(true);

  // A fast-forward that never fires would make this test vacuous: fig5
  // converges well before T/2, so the fluid run must compress part of
  // the steady tail.
  EXPECT_GE(fld.fluid_jumps, 1u);
  EXPECT_GT(fld.fluid_ff_sec, 0.0);
  EXPECT_GT(fld.fluid_events_elided, 0u);
  EXPECT_LT(fld.events, pkt.events);

  ASSERT_EQ(fld.avg_rate_pps.size(), pkt.avg_rate_pps.size());
  for (std::size_t i = 0; i < pkt.avg_rate_pps.size(); ++i) {
    const double rel = std::abs(fld.avg_rate_pps[i] - pkt.avg_rate_pps[i]) /
                       std::max(pkt.avg_rate_pps[i], kRateFloorPps);
    EXPECT_LE(rel, kTol) << "flow " << i << ": packet " << pkt.avg_rate_pps[i] << " pps, fluid "
                         << fld.avg_rate_pps[i] << " pps";
  }
  EXPECT_LE(std::abs(fld.jain - pkt.jain) / pkt.jain, kTol);
}

TEST(FluidCrosscheck, FluidOffIsBitIdenticalToDefault) {
  rn::RunDescriptor d;
  d.scenario = "fig5";
  d.mechanism = sc::Mechanism::Csfq;
  const rn::RunResult base = rn::execute_run(d);
  d.fluid = false;  // explicit off must be the same non-mode as default
  const rn::RunResult off = rn::execute_run(d);
  EXPECT_EQ(base.digest, off.digest);
  EXPECT_EQ(base.events, off.events);
  EXPECT_EQ(off.fluid_jumps, 0u);
  EXPECT_EQ(off.fluid_ff_sec, 0.0);
}

TEST(FluidCrosscheck, ObserveModeNeverJumpsButAttributesSteadyTime) {
  rn::RunDescriptor d;
  d.scenario = "fig5";
  d.mechanism = sc::Mechanism::Corelite;
  d.fluid_observe = true;
  const rn::RunResult r = rn::execute_run(d);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.fluid_jumps, 0u);
  EXPECT_EQ(r.fluid_ff_sec, 0.0);
  // fig5 is steady from a few seconds in; the detector must attribute
  // a substantial steady fraction without ever touching the results.
  EXPECT_GT(r.fluid_steady_sec, 10.0);
}

TEST(FluidCrosscheck, FluidIsDeterministic) {
  const rn::RunResult a = run_fig5(true);
  const rn::RunResult b = run_fig5(true);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.fluid_jumps, b.fluid_jumps);
  EXPECT_EQ(a.fluid_ff_sec, b.fluid_ff_sec);
}

}  // namespace

// Unit tests for the forwarding-plane storage: the packet free-list
// pool, its RAII loan handle, and the ring buffer behind the FIFO
// queues.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/packet_pool.h"
#include "net/ring_buffer.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

// ---------------------------------------------------------------------------
// PacketPool

TEST(PacketPool, AcquireReleaseRecyclesSlots) {
  PacketPool pool;
  Packet* a = pool.acquire();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.outstanding(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.outstanding(), 0u);

  // The freed slot comes back before the pool grows.
  Packet* b = pool.acquire();
  EXPECT_EQ(b, a);
  pool.release(b);
}

TEST(PacketPool, CapacityGrowsInChunksAndStopsGrowingOnReuse) {
  PacketPool pool;
  std::vector<Packet*> held;
  for (int i = 0; i < 100; ++i) held.push_back(pool.acquire());
  EXPECT_EQ(pool.outstanding(), 100u);
  const std::size_t cap = pool.capacity();
  EXPECT_GE(cap, 100u);
  for (Packet* p : held) pool.release(p);

  // Steady-state churn within the high-water mark never grows the pool.
  for (int round = 0; round < 1000; ++round) {
    Packet* p = pool.acquire();
    pool.release(p);
  }
  EXPECT_EQ(pool.capacity(), cap);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PacketPool, SlotKeepsAssignedContents) {
  PacketPool pool;
  Packet* p = pool.acquire();
  p->uid = 77;
  p->flow = 3;
  p->size = sim::DataSize::bytes(1000);
  EXPECT_EQ(p->uid, 77u);
  EXPECT_EQ(p->flow, 3u);
  pool.release(p);
}

// ---------------------------------------------------------------------------
// PooledPacket

TEST(PooledPacket, ReleasesOnDestruction) {
  PacketPool pool;
  {
    PooledPacket loan{pool};
    EXPECT_TRUE(static_cast<bool>(loan));
    EXPECT_EQ(pool.outstanding(), 1u);
    loan->uid = 9;
    EXPECT_EQ((*loan).uid, 9u);
  }
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PooledPacket, MoveTransfersOwnership) {
  PacketPool pool;
  PooledPacket a{pool};
  Packet* raw = a.get();
  PooledPacket b{std::move(a)};
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(b.get(), raw);
  EXPECT_EQ(pool.outstanding(), 1u);

  PooledPacket c;
  c = std::move(b);
  EXPECT_EQ(c.get(), raw);
  EXPECT_EQ(pool.outstanding(), 1u);
}

TEST(PooledPacket, MoveAssignReleasesPreviousLoan) {
  PacketPool pool;
  PooledPacket a{pool};
  PooledPacket b{pool};
  EXPECT_EQ(pool.outstanding(), 2u);
  a = std::move(b);  // a's original loan goes back to the pool
  EXPECT_EQ(pool.outstanding(), 1u);
}

// Loans hold raw pool pointers; the network keeps the pool alive via
// Simulator::retain(), whose keep-alives outlive the event queue (and
// with it every pending callback holding a loan).
TEST(PooledPacket, SimulatorRetainOutlivesPendingLoans) {
  auto pool = std::make_shared<PacketPool>();
  std::weak_ptr<PacketPool> watch = pool;
  {
    sim::Simulator sim;
    sim.retain(pool);
    pool.reset();
    EXPECT_FALSE(watch.expired());  // the simulator holds the last reference
  }
  EXPECT_TRUE(watch.expired());
}

// ---------------------------------------------------------------------------
// RingBuffer

TEST(RingBuffer, FifoOrder) {
  RingBuffer<int> rb;
  EXPECT_TRUE(rb.empty());
  for (int i = 0; i < 5; ++i) rb.push_back(int{i});
  EXPECT_EQ(rb.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rb.front(), i);
    rb.pop_front();
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, WrapsAroundWithoutReordering) {
  RingBuffer<int> rb;
  int next_in = 0;
  int next_out = 0;
  // Push/pop cycles far beyond the initial capacity force wraparound.
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 7; ++i) rb.push_back(int{next_in++});
    for (int i = 0; i < 7; ++i) {
      ASSERT_EQ(rb.front(), next_out++);
      rb.pop_front();
    }
  }
  EXPECT_TRUE(rb.empty());
}

TEST(RingBuffer, GrowsPreservingOrderAcrossWrapPoint) {
  RingBuffer<int> rb;
  // Offset the head so growth has to re-linearize a wrapped buffer.
  for (int i = 0; i < 10; ++i) rb.push_back(int{i});
  for (int i = 0; i < 10; ++i) rb.pop_front();
  for (int i = 0; i < 100; ++i) rb.push_back(int{i});
  EXPECT_EQ(rb.size(), 100u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBuffer, IndexingAndClear) {
  RingBuffer<int> rb;
  for (int i = 0; i < 20; ++i) rb.push_back(int{i * 10});
  for (std::size_t i = 0; i < rb.size(); ++i) EXPECT_EQ(rb.at(i), static_cast<int>(i) * 10);
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_EQ(rb.size(), 0u);
  rb.push_back(7);
  EXPECT_EQ(rb.front(), 7);
}

TEST(RingBuffer, MoveOnlyElements) {
  RingBuffer<std::unique_ptr<int>> rb;
  for (int i = 0; i < 40; ++i) rb.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 40; ++i) {
    ASSERT_NE(rb.front(), nullptr);
    EXPECT_EQ(*rb.front(), i);
    rb.pop_front();
  }
}

TEST(RingBuffer, ClearReleasesLiveElements) {
  // Regression: clear() used to reset only head_/size_, leaving the
  // moved-in elements alive in their slots — a resource-owning element
  // kept its resource until the slot happened to be overwritten.
  RingBuffer<std::shared_ptr<int>> rb;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  rb.push_back(std::move(token));
  rb.clear();
  EXPECT_TRUE(rb.empty());
  EXPECT_TRUE(watch.expired());
}

TEST(RingBuffer, ClearThenReuseAcrossWrapPoint) {
  RingBuffer<std::shared_ptr<int>> rb;
  // Advance the head so the live range straddles the wrap point.
  for (int i = 0; i < 12; ++i) rb.push_back(std::make_shared<int>(i));
  for (int i = 0; i < 12; ++i) rb.pop_front();
  std::vector<std::weak_ptr<int>> watches;
  for (int i = 0; i < 10; ++i) {
    auto sp = std::make_shared<int>(100 + i);
    watches.push_back(sp);
    rb.push_back(std::move(sp));
  }
  rb.clear();
  for (const auto& w : watches) EXPECT_TRUE(w.expired());
  // The buffer stays fully usable after clear.
  for (int i = 0; i < 5; ++i) rb.push_back(std::make_shared<int>(i));
  for (int i = 0; i < 5; ++i) {
    ASSERT_NE(rb.front(), nullptr);
    EXPECT_EQ(*rb.front(), i);
    rb.pop_front();
  }
}

}  // namespace
}  // namespace corelite::net

// Edge-case coverage for small utilities not exercised elsewhere:
// FlowSpec activity windows, packet classification, trace helpers,
// network lookups, table writer, marker info defaults.
#include <gtest/gtest.h>

#include <sstream>

#include "net/flow.h"
#include "net/network.h"
#include "net/packet.h"
#include "net/tracer.h"
#include "sim/simulator.h"
#include "stats/csv_writer.h"

namespace corelite {
namespace {

TEST(FlowSpec, ActiveAtRespectsWindows) {
  net::FlowSpec fs;
  fs.active = {{sim::SimTime::seconds(1), sim::SimTime::seconds(2)},
               {sim::SimTime::seconds(5), sim::SimTime::infinite()}};
  EXPECT_FALSE(fs.active_at(sim::SimTime::seconds(0.5)));
  EXPECT_TRUE(fs.active_at(sim::SimTime::seconds(1.0)));   // inclusive start
  EXPECT_FALSE(fs.active_at(sim::SimTime::seconds(2.0)));  // exclusive stop
  EXPECT_FALSE(fs.active_at(sim::SimTime::seconds(3.0)));
  EXPECT_TRUE(fs.active_at(sim::SimTime::seconds(100.0)));
}

TEST(FlowSpec, DefaultAlwaysOn) {
  net::FlowSpec fs;
  EXPECT_TRUE(fs.active_at(sim::SimTime::zero()));
  EXPECT_TRUE(fs.active_at(sim::SimTime::seconds(1e6)));
}

// Regression: unordered/overlapping windows used to be silently
// tolerated by the linear active_at scan; with the O(log W) binary
// search they must be rejected at spec-validation time instead.
TEST(FlowSpec, WindowValidationRejectsUnorderedAndOverlapping) {
  auto win = [](double a, double b) {
    return net::ActiveInterval{sim::SimTime::seconds(a), sim::SimTime::seconds(b)};
  };
  EXPECT_TRUE(net::valid_activity_windows({}));
  EXPECT_TRUE(net::valid_activity_windows({win(0, 5)}));
  EXPECT_TRUE(net::valid_activity_windows({win(0, 5), win(5, 9)}));  // touching is fine
  EXPECT_TRUE(net::valid_activity_windows(
      {win(0, 5), {sim::SimTime::seconds(6), sim::SimTime::infinite()}}));
  // Out of order.
  EXPECT_FALSE(net::valid_activity_windows({win(5, 9), win(0, 4)}));
  // Overlapping.
  EXPECT_FALSE(net::valid_activity_windows({win(0, 5), win(4, 9)}));
  // Empty or inverted window.
  EXPECT_FALSE(net::valid_activity_windows({win(3, 3)}));
  EXPECT_FALSE(net::valid_activity_windows({win(4, 2)}));
  // NaN start never orders.
  EXPECT_FALSE(net::valid_activity_windows(
      {{sim::SimTime::seconds(std::nan("")), sim::SimTime::seconds(1)}}));

  net::FlowSpec fs;
  EXPECT_TRUE(fs.valid());
  fs.active = {win(5, 9), win(0, 4)};
  EXPECT_FALSE(fs.valid());
  fs.active = {win(0, 4), win(5, 9)};
  EXPECT_TRUE(fs.valid());
  fs.weight = std::nan("");
  EXPECT_FALSE(fs.valid());
}

// The binary-search query must agree with a brute-force scan over a
// churn-sized window population, at boundaries included.
TEST(FlowSpec, ActiveAtBinarySearchMatchesLinearScan) {
  net::FlowSpec fs;
  fs.active.clear();
  for (int i = 0; i < 200; ++i) {
    fs.active.push_back({sim::SimTime::seconds(3.0 * i), sim::SimTime::seconds(3.0 * i + 2.0)});
  }
  ASSERT_TRUE(fs.valid());
  auto linear = [&](sim::SimTime t) {
    for (const auto& iv : fs.active) {
      if (t >= iv.start && t < iv.stop) return true;
    }
    return false;
  };
  for (double t = -1.0; t < 610.0; t += 0.25) {
    const auto st = sim::SimTime::seconds(t);
    EXPECT_EQ(fs.active_at(st), linear(st)) << "t=" << t;
  }
}

TEST(Packet, KindClassification) {
  net::Packet p;
  p.kind = net::PacketKind::Data;
  EXPECT_TRUE(p.is_data());
  EXPECT_FALSE(p.is_control());
  for (auto kind : {net::PacketKind::Marker, net::PacketKind::Feedback,
                    net::PacketKind::LossNotice, net::PacketKind::Ack}) {
    p.kind = kind;
    EXPECT_FALSE(p.is_data());
    EXPECT_TRUE(p.is_control());
  }
}

TEST(Tracer, KindNamesCoverAllValues) {
  EXPECT_EQ(net::packet_kind_name(net::PacketKind::Data), "data");
  EXPECT_EQ(net::packet_kind_name(net::PacketKind::Marker), "marker");
  EXPECT_EQ(net::packet_kind_name(net::PacketKind::Feedback), "feedback");
  EXPECT_EQ(net::packet_kind_name(net::PacketKind::LossNotice), "loss");
  EXPECT_EQ(net::packet_kind_name(net::PacketKind::Ack), "ack");
  EXPECT_EQ(net::trace_event_code(net::TraceEvent::Enqueue), '+');
  EXPECT_EQ(net::trace_event_code(net::TraceEvent::Dequeue), '-');
  EXPECT_EQ(net::trace_event_code(net::TraceEvent::Drop), 'd');
}

TEST(Network, SelfPathIsSingleton) {
  sim::Simulator simulator{1};
  net::Network n{simulator};
  const auto a = n.add_node("a");
  n.build_routes();
  EXPECT_EQ(n.path(a, a), std::vector<net::NodeId>{a});
}

TEST(Network, NodeNamesPreserved) {
  sim::Simulator simulator{1};
  net::Network n{simulator};
  const auto a = n.add_node("ingress-7");
  EXPECT_EQ(n.node(a).name(), "ingress-7");
  EXPECT_EQ(n.node_count(), 1u);
}

TEST(Network, ControlLossRateDefaultsOff) {
  sim::Simulator simulator{1};
  net::Network n{simulator};
  const auto a = n.add_node("a");
  const auto b = n.add_node("b");
  auto& l = n.connect(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  EXPECT_DOUBLE_EQ(l.control_loss_rate(), 0.0);
  l.set_control_loss_rate(0.25);
  EXPECT_DOUBLE_EQ(l.control_loss_rate(), 0.25);
}

TEST(CsvWriter, TableHandlesEmptySeries) {
  stats::TimeSeries empty;
  std::ostringstream os;
  stats::write_table(os, {{"x", &empty}}, 0.0, 2.0, 1.0);
  // Three grid rows of zeros, no crash.
  const std::string out = os.str();
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);  // header + 3 rows
}

TEST(MarkerInfo, DefaultsAreInvalid) {
  net::MarkerInfo m;
  EXPECT_EQ(m.edge_router, net::kInvalidNode);
  EXPECT_EQ(m.flow, net::kInvalidFlow);
  EXPECT_DOUBLE_EQ(m.normalized_rate, 0.0);
}

TEST(Units, RatePacketHelpers) {
  const auto r = sim::Rate::packets_per_second(500.0, sim::DataSize::kilobytes(1));
  EXPECT_DOUBLE_EQ(r.bits_per_second(), 4e6);
  EXPECT_DOUBLE_EQ(r.pps(sim::DataSize::kilobytes(1)), 500.0);
}

}  // namespace
}  // namespace corelite

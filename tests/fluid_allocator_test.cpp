// Water-filling allocator (sim/fluid/allocator.h) against closed-form
// weighted max-min solutions.
//
// The allocator is the fluid engine's convergence oracle, so its own
// correctness has to come from somewhere *other* than the simulation it
// gates: every expectation here is a hand-derivable fixed point — the
// single-bottleneck proportional split, the parking-lot topology's
// textbook allocation, demand caps redistributing freed capacity — with
// exact arithmetic chosen so EXPECT_NEAR tolerances are pure
// floating-point slack, not model slack.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "sim/fluid/allocator.h"

namespace corelite::sim::fluid {
namespace {

constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

AllocFlow flow(double weight, double demand, std::vector<std::uint32_t> links) {
  AllocFlow f;
  f.weight = weight;
  f.demand = demand;
  f.links = std::move(links);
  return f;
}

TEST(WaterFill, SingleBottleneckEqualWeights) {
  // Four unit-weight flows on one link of capacity 100: 25 each.
  const std::vector<double> caps{100.0};
  std::vector<AllocFlow> flows(4, flow(1.0, kInf, {0}));
  const auto r = water_fill(caps, flows);
  ASSERT_EQ(r.size(), 4u);
  for (double v : r) EXPECT_NEAR(v, 25.0, kEps);
}

TEST(WaterFill, SingleBottleneckWeighted) {
  // Weights 1:2:3:4 on capacity 100 split proportionally: 10/20/30/40.
  const std::vector<double> caps{100.0};
  std::vector<AllocFlow> flows{flow(1.0, kInf, {0}), flow(2.0, kInf, {0}),
                               flow(3.0, kInf, {0}), flow(4.0, kInf, {0})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 10.0, kEps);
  EXPECT_NEAR(r[1], 20.0, kEps);
  EXPECT_NEAR(r[2], 30.0, kEps);
  EXPECT_NEAR(r[3], 40.0, kEps);
}

TEST(WaterFill, ParkingLot) {
  // The classic two-link parking lot: A crosses both links, B only link
  // 0, C only link 1, caps {12, 6}.  Link 1 saturates first at level 3
  // (A and C frozen at 3); B then fills link 0's remainder: 12 - 3 = 9.
  const std::vector<double> caps{12.0, 6.0};
  std::vector<AllocFlow> flows{flow(1.0, kInf, {0, 1}), flow(1.0, kInf, {0}),
                               flow(1.0, kInf, {1})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 3.0, kEps);
  EXPECT_NEAR(r[1], 9.0, kEps);
  EXPECT_NEAR(r[2], 3.0, kEps);
}

TEST(WaterFill, DemandCapRedistributes) {
  // Three unit-weight flows on capacity 90, one capped at 10: the cap
  // binds below the fair share (30), and the freed 20 re-fills the
  // other two up to 40 each.
  const std::vector<double> caps{90.0};
  std::vector<AllocFlow> flows{flow(1.0, 10.0, {0}), flow(1.0, kInf, {0}),
                               flow(1.0, kInf, {0})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 10.0, kEps);
  EXPECT_NEAR(r[1], 40.0, kEps);
  EXPECT_NEAR(r[2], 40.0, kEps);
}

TEST(WaterFill, ZeroDemandGetsZeroAndConsumesNothing) {
  // A zero-demand flow neither receives rate nor occupies the link.
  const std::vector<double> caps{50.0};
  std::vector<AllocFlow> flows{flow(1.0, 0.0, {0}), flow(1.0, kInf, {0})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 0.0, kEps);
  EXPECT_NEAR(r[1], 50.0, kEps);
}

TEST(WaterFill, UnconstrainedFlowGetsItsDemand) {
  // No links: only the demand cap binds; infinite demand would be
  // unbounded, so the allocator must return the demand for finite ones.
  const std::vector<double> caps{};
  std::vector<AllocFlow> flows{flow(1.0, 7.5, {})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 7.5, kEps);
}

TEST(WaterFill, WeightedParkingLot) {
  // Parking lot with weight 2 on the long flow, caps {12, 6}.  Link 1:
  // levels 2w vs 1w saturate at normalized level 2 (A = 4, C = 2); B
  // then takes link 0's remainder 12 - 4 = 8.
  const std::vector<double> caps{12.0, 6.0};
  std::vector<AllocFlow> flows{flow(2.0, kInf, {0, 1}), flow(1.0, kInf, {0}),
                               flow(1.0, kInf, {1})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 4.0, kEps);
  EXPECT_NEAR(r[1], 8.0, kEps);
  EXPECT_NEAR(r[2], 2.0, kEps);
}

TEST(WaterFill, UncongestedLinkLeavesDemandsBinding) {
  // Total demand below capacity: everyone simply gets their demand.
  const std::vector<double> caps{1000.0};
  std::vector<AllocFlow> flows{flow(1.0, 30.0, {0}), flow(3.0, 70.0, {0}),
                               flow(2.0, 50.0, {0})};
  const auto r = water_fill(caps, flows);
  EXPECT_NEAR(r[0], 30.0, kEps);
  EXPECT_NEAR(r[1], 70.0, kEps);
  EXPECT_NEAR(r[2], 50.0, kEps);
}

TEST(WaterFill, EmptyInputs) {
  EXPECT_TRUE(water_fill({}, {}).empty());
  const auto r = water_fill({10.0}, {});
  EXPECT_TRUE(r.empty());
}

TEST(WaterFill, ConservationAndFeasibility) {
  // Structural invariants on a mixed case: no link over capacity, no
  // flow over demand, and every saturated link's capacity fully used.
  const std::vector<double> caps{40.0, 25.0, 60.0};
  std::vector<AllocFlow> flows{
      flow(1.0, kInf, {0, 1}),  flow(2.0, kInf, {1, 2}), flow(1.0, 12.0, {0}),
      flow(1.5, kInf, {2}),     flow(0.5, kInf, {0, 2})};
  const auto r = water_fill(caps, flows);
  ASSERT_EQ(r.size(), flows.size());
  std::vector<double> load(caps.size(), 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    EXPECT_LE(r[i], flows[i].demand + kEps);
    EXPECT_GE(r[i], 0.0);
    for (auto l : flows[i].links) load[l] += r[i];
  }
  for (std::size_t l = 0; l < caps.size(); ++l) EXPECT_LE(load[l], caps[l] + 1e-6);
}

}  // namespace
}  // namespace corelite::sim::fluid

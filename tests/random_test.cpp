// Pins the Rng draw streams against per-call distribution
// construction.
//
// sim/random.h hoists the distribution objects into members and routes
// parameterized draws through param_type.  libstdc++'s uniform and
// exponential distributions are stateless, so this must produce the
// exact stream the old construct-a-distribution-per-draw code produced
// — every golden digest in the repo depends on that.  These tests
// replay each draw against a freshly constructed distribution on a
// same-seeded engine and assert exact equality, so any future change
// that makes a member distribution carry state across draws fails
// loudly instead of silently shifting digests.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>

#include "sim/random.h"

namespace corelite::sim {
namespace {

TEST(RngStream, Uniform01MatchesPerCallConstruction) {
  Rng rng{777};
  std::mt19937_64 ref{777};
  for (int i = 0; i < 10000; ++i) {
    std::uniform_real_distribution<double> fresh{0.0, 1.0};
    const double expect = fresh(ref);
    EXPECT_EQ(rng.uniform01(), expect) << "draw " << i;
  }
}

TEST(RngStream, ParameterizedDrawsMatchPerCallConstruction) {
  // Interleave the three parameterized draw kinds with parameters that
  // change every iteration — the case where a distribution that kept
  // state across param changes would diverge from a fresh one.
  Rng rng{0xabcdef};
  std::mt19937_64 ref{0xabcdef};
  for (int i = 1; i <= 3000; ++i) {
    const double lo = -1.0 * i;
    const double hi = 2.0 * i;
    {
      std::uniform_real_distribution<double> fresh{lo, hi};
      EXPECT_EQ(rng.uniform(lo, hi), fresh(ref)) << "uniform draw " << i;
    }
    {
      std::uniform_int_distribution<std::int64_t> fresh{-i, 7 * i};
      EXPECT_EQ(rng.uniform_int(-i, 7 * i), fresh(ref)) << "int draw " << i;
    }
    {
      std::exponential_distribution<double> fresh{1.0 / (0.5 * i)};
      EXPECT_EQ(rng.exponential(0.5 * i), fresh(ref)) << "exponential draw " << i;
    }
  }
}

TEST(RngStream, DegenerateBernoulliDoesNotAdvanceEngine) {
  // p <= 0 and p >= 1 short-circuit without touching the engine; the
  // packet-drop path relies on this to keep uncongested runs aligned.
  Rng rng{31337};
  std::mt19937_64 ref{31337};
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_FALSE(rng.bernoulli(-2.5));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_TRUE(rng.bernoulli(17.0));
  std::uniform_real_distribution<double> fresh{0.0, 1.0};
  EXPECT_EQ(rng.uniform01(), fresh(ref));  // streams still aligned
}

TEST(RngStream, BernoulliConsumesExactlyOneUniform) {
  Rng rng{2024};
  std::mt19937_64 ref{2024};
  for (int i = 0; i < 1000; ++i) {
    std::uniform_real_distribution<double> fresh{0.0, 1.0};
    const double u = fresh(ref);
    EXPECT_EQ(rng.bernoulli(0.5), u < 0.5) << "trial " << i;
  }
}

TEST(RngStream, SampleIndicesIsDeterministicAndValid) {
  Rng a{5};
  Rng b{5};
  const auto sa = a.sample_indices(100, 10);
  const auto sb = b.sample_indices(100, 10);
  EXPECT_EQ(sa, sb);
  ASSERT_EQ(sa.size(), 10u);
  auto sorted = sa;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::unique(sorted.begin(), sorted.end()), sorted.end()) << "indices not distinct";
  EXPECT_LT(sorted.back(), 100u);

  // k >= n returns the whole population.
  EXPECT_EQ(a.sample_indices(4, 9).size(), 4u);
}

TEST(RngStream, SameSeedSameStreamDifferentSeedDifferentStream) {
  Rng a{42};
  Rng b{42};
  Rng c{43};
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const double va = a.uniform01();
    EXPECT_EQ(va, b.uniform01());
    if (va != c.uniform01()) all_equal_c = false;
  }
  EXPECT_FALSE(all_equal_c);
}

}  // namespace
}  // namespace corelite::sim

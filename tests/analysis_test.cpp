// Tests holding the simulator to the closed-form LIMD model — the
// "analysis" side of the paper's "simulations and analysis" claim.
#include <gtest/gtest.h>

#include "analysis/limd_model.h"
#include "qos/rate_controller.h"
#include "scenario/scenario.h"

namespace corelite::analysis {
namespace {

qos::RateAdaptConfig paper_adapt() {
  qos::RateAdaptConfig cfg;  // defaults are the paper's
  return cfg;
}

TEST(LimdModel, SlowStartClosedForm) {
  // 1 -> 2 -> 4 -> 8 -> 16 -> 32 -> 64 (exceeds 32) -> halve to 32.
  const auto p = predict_slow_start(paper_adapt());
  EXPECT_EQ(p.doublings, 6);
  EXPECT_DOUBLE_EQ(p.exit_rate_pps, 32.0);
  EXPECT_DOUBLE_EQ(p.exit_time_sec, 6.0);
}

TEST(LimdModel, SlowStartMatchesController) {
  const auto cfg = paper_adapt();
  const auto p = predict_slow_start(cfg);
  qos::LimdRateController c{cfg};
  c.reset(sim::SimTime::zero());
  double exit_t = -1.0;
  for (int e = 1; e <= 200; ++e) {
    const auto t = sim::SimTime::seconds(0.1 * e);
    c.on_epoch(0, t);
    if (!c.in_slow_start()) {
      exit_t = t.sec();
      break;
    }
  }
  ASSERT_GT(exit_t, 0.0);
  EXPECT_NEAR(exit_t, p.exit_time_sec, 0.2);
  EXPECT_DOUBLE_EQ(c.rate_pps(), p.exit_rate_pps);
}

TEST(LimdModel, TimeToShareClosedForm) {
  // Share 83.3 (weight-5 flow in Fig 5): exit at 32 @ t=6, climb at
  // +10 pkt/s^2 -> 6 + 5.13 = 11.1 s.
  const double t = predict_time_to_share(paper_adapt(), sim::TimeDelta::millis(100), 83.33);
  EXPECT_NEAR(t, 11.13, 0.05);
  // Share below the exit rate: slow-start time only.
  EXPECT_DOUBLE_EQ(
      predict_time_to_share(paper_adapt(), sim::TimeDelta::millis(100), 16.67), 6.0);
}

TEST(LimdModel, ConvergencePredictionHoldsInSimulation) {
  // The highest-weight flows of the Figure-5 run must first touch their
  // share close to the predicted time (within a few adaptation epochs +
  // feedback RTT).
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
  const auto r = scenario::run_paper_scenario(spec);
  const auto ideal = scenario::ideal_rates_at(spec, sim::SimTime::seconds(40));

  for (net::FlowId f : {9u, 10u}) {  // weight 5, share 83.3
    const double predicted =
        predict_time_to_share(spec.corelite.adapt, spec.corelite.edge_epoch, ideal.at(f));
    // First time the measured rate reaches the share.
    double reached = spec.duration.sec();
    for (const auto& pt : r.tracker.series(f).allotted_rate.points()) {
      if (pt.v >= ideal.at(f)) {
        reached = pt.t;
        break;
      }
    }
    EXPECT_NEAR(reached, predicted, 2.5) << "flow " << f;
  }
}

TEST(LimdModel, OscillationBoundHoldsInSimulation) {
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
  const auto r = scenario::run_paper_scenario(spec);
  const auto ideal = scenario::ideal_rates_at(spec, sim::SimTime::seconds(40));
  // Peak-to-trough swing in the converged window: at least alpha+beta
  // (the model's lower bound), and not absurdly larger (a few markers
  // per marked epoch at most for mid-weight flows).
  const double lower = predict_oscillation_pps(spec.corelite.adapt, 1.0);
  const double upper = predict_oscillation_pps(spec.corelite.adapt, 10.0) * 2.0;
  for (net::FlowId f : {5u, 6u, 7u, 8u}) {
    const auto& series = r.tracker.series(f).allotted_rate;
    const double swing = series.max_over(50, 80) - series.min_over(50, 80);
    EXPECT_GE(swing, lower * 0.99) << "flow " << f;
    EXPECT_LE(swing, upper) << "flow " << f;
    // And the swing straddles the ideal share.
    EXPECT_LT(series.min_over(50, 80), ideal.at(f));
    EXPECT_GT(series.max_over(50, 80), ideal.at(f));
  }
}

TEST(LimdModel, MarkerRates) {
  EXPECT_DOUBLE_EQ(marker_rate_pps(100.0, 2.0, 1.0), 50.0);
  EXPECT_DOUBLE_EQ(marker_rate_pps(100.0, 2.0, 4.0), 12.5);
  // Fig-5 equilibrium on the first link: sum of normalized rates =
  // 10 * 16.67 = 166.7 markers/s at K1 = 1.
  std::vector<double> rates;
  std::vector<double> weights{1, 1, 2, 2, 3, 3, 4, 4, 5, 5};
  for (double w : weights) rates.push_back(16.667 * w);
  EXPECT_NEAR(link_marker_rate_pps(rates, weights, 1.0), 166.67, 0.1);
}

TEST(LimdModel, MarkerRateMatchesSimulation) {
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
  const auto r = scenario::run_paper_scenario(spec);
  // Converged marker load: roughly sum of normalized rates / K1.
  // Total markers over 80 s includes slow start; compare loosely using
  // the aggregate: 166.7 markers/s * 80 s ~ 13.3k, transient-adjusted.
  EXPECT_NEAR(static_cast<double>(r.markers_injected), 166.7 * 80.0, 0.25 * 166.7 * 80.0);
}

TEST(LimdModel, EquilibriumQueuePrediction) {
  qos::CoreliteConfig cfg;
  // 10 flows probing +1 pkt/s per 100 ms epoch on a 500 pkt/s link:
  // requires F_n(q*) = 10 markers/epoch; with mu = 500 pkt/s the M/M/1
  // term supplies that just above q_thresh.
  const double q = predict_equilibrium_qavg(cfg, 500.0, 10);
  EXPECT_GT(q, cfg.q_thresh_pkts);
  EXPECT_LT(q, 16.0);

  // The fluid prediction brackets the simulated time-average of q_avg
  // on the fully loaded first link: the oscillation overshoots the
  // marked point during the feedback lag, so the measured mean lands
  // between q_thresh and ~2x the fluid equilibrium.
  auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
  const auto r = scenario::run_paper_scenario(spec);
  ASSERT_FALSE(r.mean_q_avg.empty());
  EXPECT_GT(r.mean_q_avg[0], cfg.q_thresh_pkts * 0.8);
  EXPECT_LT(r.mean_q_avg[0], 2.0 * q);
}

}  // namespace
}  // namespace corelite::analysis

// End-to-end integration tests on the paper's Figure-2 topology: the
// headline properties each figure demonstrates, checked quantitatively
// against the weighted max-min oracle.  These run the real scenarios at
// reduced duration where possible to keep the suite fast.
#include <gtest/gtest.h>

#include <vector>

#include "scenario/scenario.h"
#include "stats/fairness.h"

namespace corelite::scenario {
namespace {

double rate_avg(const ScenarioResult& r, net::FlowId f, double t0, double t1) {
  return r.tracker.series(f).allotted_rate.average_over(t0, t1);
}

TEST(Integration, CoreliteConvergesToWeightedMaxMin) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  const auto r = run_paper_scenario(spec);
  const auto ideal = ideal_rates_at(spec, sim::SimTime::seconds(40));
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i);
    const double got = rate_avg(r, f, 40.0, 80.0);
    // Within 20% of the weighted max-min ideal (plus 3 pkt/s slack for
    // the lowest-weight flows whose oscillation amplitude is coarse).
    EXPECT_NEAR(got, ideal.at(f), 0.2 * ideal.at(f) + 3.0) << "flow " << i;
  }
}

TEST(Integration, CoreliteHasNoSteadyStateLoss) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  const auto r = run_paper_scenario(spec);
  // Startup transients may clip the queue while ten synchronized flows
  // ramp; after convergence (t > 20 s) Corelite must be loss-free
  // (paper §4.2: "none of the flows experienced packet drops").
  int late_drops = 0;
  for (double t : r.drop_times) {
    if (t > 20.0) ++late_drops;
  }
  EXPECT_EQ(late_drops, 0);
}

TEST(Integration, CoreliteWeightedFairnessIndexNearOne) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(rate_avg(r, static_cast<net::FlowId>(i), 40.0, 80.0));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.98);
}

TEST(Integration, CsfqAlsoConvergesButWithLosses) {
  auto spec = fig5_simultaneous_start(Mechanism::Csfq);
  const auto r = run_paper_scenario(spec);
  const auto ideal = ideal_rates_at(spec, sim::SimTime::seconds(40));
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(rate_avg(r, static_cast<net::FlowId>(i), 40.0, 80.0));
    weights.push_back(spec.weights[i - 1]);
  }
  // Steady state close to ideal (paper: "both mechanisms achieve results
  // that closely approximate the ideal values in steady state")...
  EXPECT_GT(stats::jain_index(rates, weights), 0.95);
  EXPECT_NEAR(rates[9], ideal.at(10), 0.35 * ideal.at(10));
  // ...but CSFQ experiences real packet loss (its congestion signal).
  EXPECT_GT(r.total_data_drops, 100u);
}

TEST(Integration, CoreliteConvergesFasterThanCsfq) {
  // Paper §4.2: Corelite converges ~30 s faster.  Measure the earliest
  // time after which every flow stays within 30% of its ideal share.
  auto converged_by = [](Mechanism m) {
    auto spec = fig5_simultaneous_start(m);
    const auto r = run_paper_scenario(spec);
    const auto ideal = ideal_rates_at(spec, sim::SimTime::seconds(40));
    double latest = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<net::FlowId>(i);
      // March backward in 2 s steps until a window deviates.
      double t = 78.0;
      while (t > 2.0) {
        const double got = r.tracker.series(f).allotted_rate.average_over(t - 2.0, t);
        if (std::abs(got - ideal.at(f)) > 0.3 * ideal.at(f) + 3.0) break;
        t -= 2.0;
      }
      latest = std::max(latest, t);
    }
    return latest;
  };
  const double corelite_t = converged_by(Mechanism::Corelite);
  const double csfq_t = converged_by(Mechanism::Csfq);
  EXPECT_LE(corelite_t, csfq_t + 2.0);  // at least as fast (ties allowed)
  EXPECT_LE(corelite_t, 30.0);          // and absolutely fast
}

TEST(Integration, NetworkDynamicsTrackIdealThroughChurn) {
  // Figure 3 compressed: the same churn pattern at 1/5 the duration.
  ScenarioSpec spec = fig3_network_dynamics(Mechanism::Corelite);
  spec.duration = sim::SimTime::seconds(152);
  for (auto& windows : spec.activity) {
    for (auto& w : windows) {
      w.start = sim::SimTime::seconds(w.start.sec() / 5.0);
      if (w.stop < sim::SimTime::infinite()) {
        w.stop = sim::SimTime::seconds(w.stop.sec() / 5.0);
      }
    }
  }
  const auto r = run_paper_scenario(spec);

  // Phase 1 (late flows absent): 33.33 per unit weight.
  const auto p1 = ideal_rates_at(spec, sim::SimTime::seconds(40));
  EXPECT_NEAR(rate_avg(r, 5, 30, 49), p1.at(5), 0.25 * p1.at(5));   // ~100
  EXPECT_NEAR(rate_avg(r, 2, 30, 49), p1.at(2), 0.25 * p1.at(2));   // ~66.7
  // Phase 2 (all 20 flows): 25 per unit weight.
  const auto p2 = ideal_rates_at(spec, sim::SimTime::seconds(80));
  EXPECT_NEAR(rate_avg(r, 5, 70, 99), p2.at(5), 0.25 * p2.at(5));   // ~75
  EXPECT_NEAR(rate_avg(r, 1, 70, 99), p2.at(1), 0.25 * p2.at(1) + 4.0);  // ~25
  EXPECT_NEAR(rate_avg(r, 16, 70, 99), p2.at(16), 0.25 * p2.at(16) + 4.0);
  // Phase 3 (late flows gone again): rates recover.
  EXPECT_NEAR(rate_avg(r, 5, 120, 149), p1.at(5), 0.3 * p1.at(5));
}

TEST(Integration, MultiBottleneckFlowsGetMaxMinShare) {
  // Flows 9 and 10 cross all three congested links yet must receive the
  // same per-unit-weight share as single-link flows (max-min, not
  // proportional fairness) — the paper's Figure 4 point.
  auto spec = fig3_network_dynamics(Mechanism::Corelite);
  spec.duration = sim::SimTime::seconds(120);
  // Make all flows always-on for this check.
  for (auto& windows : spec.activity) {
    windows = {{sim::SimTime::zero(), sim::SimTime::infinite()}};
  }
  const auto r = run_paper_scenario(spec);
  const auto ideal = ideal_rates_at(spec, sim::SimTime::seconds(60));
  // Flow 9 (3 links, weight 2) vs flow 2 (1 link, weight 2).
  const double f9 = rate_avg(r, 9, 60, 120);
  const double f2 = rate_avg(r, 2, 60, 120);
  EXPECT_NEAR(f9, ideal.at(9), 0.25 * ideal.at(9));
  EXPECT_NEAR(f2, ideal.at(2), 0.25 * ideal.at(2));
  EXPECT_NEAR(f9 / f2, 1.0, 0.35);
}

TEST(Integration, MinRateContractsHonored) {
  // Extension: one flow buys a 120 pkt/s floor, far above its weighted
  // share (~16.7); Corelite must never throttle it below the contract.
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.min_rates.assign(spec.num_flows, 0.0);
  spec.min_rates[0] = 120.0;  // flow 1 (weight 1)
  const auto r = run_paper_scenario(spec);
  const double floor_rate = r.tracker.series(1).allotted_rate.min_over(5.0, 80.0);
  EXPECT_GE(floor_rate, 120.0);
  // The other flows still share what remains, weighted.
  const double f9 = rate_avg(r, 9, 40, 80);
  const double f3 = rate_avg(r, 3, 40, 80);
  EXPECT_NEAR(f9 / f3, 2.5, 1.0);  // weights 5:2
}

TEST(Integration, DropTailBaselineIgnoresWeights) {
  // The naive FIFO core cannot differentiate rate classes: the weighted
  // fairness index over normalized rates falls well below Corelite's.
  auto spec = fig5_simultaneous_start(Mechanism::DropTail);
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(rate_avg(r, static_cast<net::FlowId>(i), 40.0, 80.0));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_LT(stats::jain_index(rates, weights), 0.92);
}

TEST(Integration, EcnBinaryMarkingIgnoresWeights) {
  // The DECbit/ECN control: binary congestion marks arrive in
  // proportion to the packet rate, not the normalized rate, so the
  // same LIMD edges converge to EQUAL rates — weights are invisible.
  auto spec = fig5_simultaneous_start(Mechanism::EcnBit);
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(rate_avg(r, static_cast<net::FlowId>(i), 40.0, 80.0));
    weights.push_back(spec.weights[i - 1]);
  }
  // Plain (unweighted) fairness is excellent...
  EXPECT_GT(stats::jain_index(rates), 0.98);
  // ...which is exactly the failure for the weighted service model.
  EXPECT_LT(stats::jain_index(rates, weights), 0.85);
  // Weight-5 flows get no more than weight-1 flows (within noise).
  EXPECT_NEAR(rates[9] / rates[0], 1.0, 0.25);
}

TEST(Integration, MarkerCacheSelectorMatchesStatelessShape) {
  // §3.2 claims the stateless scheme replaces the marker cache without
  // changing the service model; both must land near the same allocation.
  auto stateless = fig5_simultaneous_start(Mechanism::Corelite);
  auto cache = fig5_simultaneous_start(Mechanism::Corelite);
  cache.corelite.selector = qos::SelectorKind::MarkerCache;
  const auto rs = run_paper_scenario(stateless);
  const auto rc = run_paper_scenario(cache);
  const auto ideal = ideal_rates_at(stateless, sim::SimTime::seconds(40));
  for (std::size_t i = 1; i <= stateless.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i);
    EXPECT_NEAR(rate_avg(rc, f, 40, 80), ideal.at(f), 0.30 * ideal.at(f) + 5.0)
        << "marker-cache flow " << i;
    EXPECT_NEAR(rate_avg(rc, f, 40, 80), rate_avg(rs, f, 40, 80),
                0.35 * ideal.at(f) + 5.0)
        << "selector divergence on flow " << i;
  }
}

}  // namespace
}  // namespace corelite::scenario

// Parallel-engine determinism tests: the LP partitioner, the thread
// budget, and the digest contract of the conservative parallel engine.
//
// The contract under test (see docs/architecture.md, "Parallel
// simulation"):
//   1. --lp 1 runs the legacy serial engine and is bit-identical to a
//      build that has never heard of LPs (the golden digests enforce
//      the absolute values; here we check lp=1 == lp-unset).
//   2. For N >= 2 the digest is a pure function of (spec, effective LP
//      count): invariant in the number of OS threads driving the LPs,
//      because event ORDER is fixed by the barrier protocol and the
//      src-ascending mailbox drain, not by thread scheduling.
//   3. Requests beyond what the topology supports clamp (lp 8 on the
//      3-core paper chain -> 4 LPs) and yield the clamped count's
//      digest.
//   4. A topology whose cut links have zero propagation delay has no
//      usable lookahead: the run falls back to the serial engine and
//      must match the plain serial digest exactly.
// Note what is NOT claimed: digest(lp=N>=2) == digest(serial).  LPs
// use derived per-LP RNG streams, so the serial and partitioned runs
// are different (equally valid) sample paths by design.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "runner/sweep.h"
#include "scenario/scenario.h"
#include "sim/hotpath.h"
#include "sim/parallel/lp_partition.h"
#include "sim/parallel/thread_budget.h"

namespace rn = corelite::runner;
namespace sc = corelite::scenario;
namespace par = corelite::sim::par;

namespace {

// Chain graph a-b-c-... with per-edge delays (seconds) and bottleneck flags.
par::LpGraph chain(const std::vector<double>& delays, const std::vector<bool>& bottleneck) {
  par::LpGraph g;
  g.nodes = delays.size() + 1;
  for (std::uint32_t i = 0; i < delays.size(); ++i) {
    g.edges.push_back({i, i + 1, delays[i], bottleneck[i]});
  }
  return g;
}

std::uint64_t digest_of(const std::string& scenario, double duration_sec, std::size_t lp,
                        std::size_t lp_threads) {
  rn::RunDescriptor d;
  d.scenario = scenario;
  d.seed = 42;
  d.duration_sec = duration_sec;
  d.lp = lp;
  d.lp_threads = lp_threads;
  const rn::RunResult r = rn::execute_run(d);
  EXPECT_TRUE(r.ok) << scenario << " failed";
  return r.digest;
}

}  // namespace

// ---------------------------------------------------------------- partitioner

TEST(LpPartition, TrivialRequestIsSerialPlan) {
  const auto g = chain({0.04, 0.04, 0.04}, {true, true, true});
  const auto plan = par::partition_lp_graph(g, 1);
  EXPECT_EQ(plan.lp_count, 1u);
  EXPECT_EQ(plan.cut_links, 0u);
  EXPECT_FALSE(plan.zero_lookahead_fallback);
  ASSERT_EQ(plan.lp_of_node.size(), g.nodes);
  for (auto lp : plan.lp_of_node) EXPECT_EQ(lp, 0u);
}

TEST(LpPartition, ChainCutsOnBottlenecksWithMinDelayLookahead) {
  // 5-node chain; only the middle two links are bottlenecks.  A 2-way
  // partition should cut exactly one link, prefer a bottleneck, and
  // report that link's delay as the lookahead.
  const auto g = chain({0.01, 0.04, 0.05, 0.01}, {false, true, true, false});
  const auto plan = par::partition_lp_graph(g, 2);
  EXPECT_EQ(plan.lp_count, 2u);
  EXPECT_EQ(plan.cut_links, 1u);
  EXPECT_EQ(plan.cut_bottlenecks, 1u);
  EXPECT_FALSE(plan.zero_lookahead_fallback);
  // The cut landed on one of the 40/50 ms bottlenecks, never a 10 ms edge.
  EXPECT_GE(plan.lookahead.sec(), 0.04 - 1e-12);
  // Contiguity: LP ids are nondecreasing along the chain.
  for (std::size_t i = 1; i < plan.lp_of_node.size(); ++i) {
    EXPECT_LE(plan.lp_of_node[i - 1], plan.lp_of_node[i]);
  }
}

TEST(LpPartition, RequestClampsToNodeCount) {
  const auto g = chain({0.04, 0.04, 0.04}, {true, true, true});
  const auto plan = par::partition_lp_graph(g, 16);
  EXPECT_EQ(plan.requested, 16u);
  EXPECT_LE(plan.lp_count, g.nodes);
  EXPECT_GE(plan.lp_count, 2u);
}

TEST(LpPartition, ZeroDelayCutFallsBackToSerial) {
  // Every edge has zero delay: any cut has zero lookahead, so the plan
  // must collapse to one LP and flag the fallback for the caller's
  // warning message.
  const auto g = chain({0.0, 0.0, 0.0}, {true, true, true});
  const auto plan = par::partition_lp_graph(g, 2);
  EXPECT_EQ(plan.lp_count, 1u);
  EXPECT_TRUE(plan.zero_lookahead_fallback);
  EXPECT_EQ(plan.lookahead, corelite::sim::TimeDelta::zero());
}

TEST(LpPartition, PlanIsDeterministic) {
  const auto g = chain({0.02, 0.04, 0.03, 0.04, 0.02}, {false, true, false, true, false});
  const auto p1 = par::partition_lp_graph(g, 3);
  const auto p2 = par::partition_lp_graph(g, 3);
  EXPECT_EQ(p1.lp_of_node, p2.lp_of_node);
  EXPECT_EQ(p1.lookahead, p2.lookahead);
  EXPECT_EQ(p1.cut_links, p2.cut_links);
}

// --------------------------------------------------------------- thread budget

TEST(ThreadBudget, AcquireNeverExceedsHardwareAndReleases) {
  auto& budget = par::ThreadBudget::instance();
  const std::size_t hw = par::ThreadBudget::hardware_threads();
  const std::size_t before = budget.used();
  const std::size_t got = budget.acquire(1000);
  EXPECT_LE(budget.used(), std::max(hw, before + 0));  // never grants past hw
  EXPECT_EQ(budget.used(), before + got);
  budget.release(got);
  EXPECT_EQ(budget.used(), before);
  // A second acquire after release grants the same amount (no leak).
  const std::size_t again = budget.acquire(1000);
  EXPECT_EQ(again, got);
  budget.release(again);
}

// ------------------------------------------------------------ digest contract

TEST(ParallelDeterminism, LpOneMatchesLegacySerial) {
  // d.lp = 0 keeps the scenario default (serial); d.lp = 1 forces the
  // serial engine through the LP plumbing.  Both must produce the same
  // digest -- the golden_determinism_test pins its absolute value.
  EXPECT_EQ(digest_of("fig5", 10.0, 0, 0), digest_of("fig5", 10.0, 1, 0));
}

TEST(ParallelDeterminism, PartitionedDigestDiffersFromSerialByDesign) {
  // Documents contract point "N >= 2 is a different sample path": the
  // partitioned run re-seeds per LP, so matching the serial digest
  // would be a coincidence, not a requirement.
  EXPECT_NE(digest_of("fig5", 10.0, 1, 0), digest_of("fig5", 10.0, 2, 1));
}

TEST(ParallelDeterminism, ThreadInvarianceOnPaperTopology) {
  for (const std::size_t lp : {std::size_t{2}, std::size_t{4}}) {
    const std::uint64_t one = digest_of("fig5", 10.0, lp, 1);
    const std::uint64_t four = digest_of("fig5", 10.0, lp, 4);
    EXPECT_EQ(one, four) << "digest depends on thread count at lp=" << lp;
    // And on the auto (ThreadBudget-clamped) thread count:
    EXPECT_EQ(one, digest_of("fig5", 10.0, lp, 0));
  }
}

TEST(ParallelDeterminism, ThreadInvarianceOnFig7) {
  EXPECT_EQ(digest_of("fig7", 10.0, 2, 1), digest_of("fig7", 10.0, 2, 4));
}

TEST(ParallelDeterminism, RequestBeyondTopologyClampsToSameDigest) {
  // The paper chain has 4 core routers -> at most 4 LPs.  --lp 8 clamps
  // and must land on exactly the --lp 4 digest.
  EXPECT_EQ(digest_of("fig5", 10.0, 8, 1), digest_of("fig5", 10.0, 4, 1));
}

TEST(ParallelDeterminism, ThreadInvarianceOnGeneratedTopologies) {
  // One scenario per generator family: parking-lot, fat-tree, ISP-like.
  for (const char* scen : {"gen-pl8-300", "gen-ft4-300", "gen-isp16-300"}) {
    EXPECT_EQ(digest_of(scen, 6.0, 2, 1), digest_of(scen, 6.0, 2, 4))
        << "digest depends on thread count for " << scen;
  }
}

TEST(ParallelDeterminism, ZeroLookaheadFallsBackToSerialDigest) {
  // Adversarial topology: zero core link delay leaves no conservative
  // window, so --lp 2 must warn and run the serial engine -- producing
  // the serial digest exactly, not a diverged parallel one.
  sc::ScenarioSpec spec;
  spec.mechanism = sc::Mechanism::Corelite;
  spec.num_flows = 8;
  spec.weights.assign(8, 1.0);
  spec.duration = corelite::sim::SimTime::seconds(5);
  spec.seed = 42;
  spec.topology.link_delay = corelite::sim::TimeDelta::zero();

  sc::ScenarioSpec serial = spec;
  serial.lp = 1;
  sc::ScenarioSpec parallel = spec;
  parallel.lp = 2;

  const auto rs = sc::run_paper_scenario(serial);
  const auto rp = sc::run_paper_scenario(parallel);
  EXPECT_EQ(rn::result_digest(rs), rn::result_digest(rp));
}

TEST(ParallelDeterminism, LpCountersAdvanceInPartitionedRuns) {
  corelite::sim::reset_hotpath_counters();
  (void)digest_of("fig5", 5.0, 2, 1);
  const auto c = corelite::sim::aggregated_hotpath_counters();
  EXPECT_GT(c.lp_barriers, 0u);
  EXPECT_GT(c.cross_lp_events, 0u);
  EXPECT_GT(c.mailbox_flushes, 0u);
  EXPECT_GT(c.lookahead_ns, 0u);

  // A serial run must leave the LP counters untouched.
  corelite::sim::reset_hotpath_counters();
  (void)digest_of("fig5", 5.0, 1, 0);
  const auto s = corelite::sim::aggregated_hotpath_counters();
  EXPECT_EQ(s.lp_barriers, 0u);
  EXPECT_EQ(s.cross_lp_events, 0u);
}

TEST(ParallelDeterminism, DigestInvariantUnderBatchAndWheelElision) {
  // The window-end run deadline must stop inline batch fusion at every
  // barrier, and the wheel/heap tiering must never reorder same-time
  // events -- so turning either optimization off cannot change a
  // partitioned run's digest.  Both knobs are read at construction
  // time, so setenv between runs takes effect in-process.
  const std::uint64_t base = digest_of("fig5", 8.0, 2, 1);
  ::setenv("CORELITE_NO_BATCH", "1", 1);
  const std::uint64_t no_batch = digest_of("fig5", 8.0, 2, 1);
  ::unsetenv("CORELITE_NO_BATCH");
  ::setenv("CORELITE_NO_WHEEL", "1", 1);
  const std::uint64_t no_wheel = digest_of("fig5", 8.0, 2, 1);
  ::unsetenv("CORELITE_NO_WHEEL");
  EXPECT_EQ(base, no_batch) << "inline batching changes the lp=2 digest";
  EXPECT_EQ(base, no_wheel) << "timing-wheel elision changes the lp=2 digest";
}

TEST(ParallelDeterminism, RepeatedPartitionedRunsAreBitStable) {
  // Same spec, same LP count, three runs with different thread counts
  // interleaved -- guards against any hidden run-to-run state in the
  // runtime (mailbox reuse, pool reuse, budget bleed).
  const std::uint64_t a = digest_of("fig5", 8.0, 2, 2);
  const std::uint64_t b = digest_of("fig5", 8.0, 2, 1);
  const std::uint64_t c = digest_of("fig5", 8.0, 2, 2);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

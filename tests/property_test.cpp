// Property-based (parameterized) tests: invariants that must hold for
// whole families of configurations — flow populations, weights, seeds,
// protocol constants — rather than single hand-picked cases.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include "scenario/scenario.h"
#include "stats/fairness.h"

namespace corelite::scenario {
namespace {

// ---------------------------------------------------------------------------
// Invariant: packet conservation.  Every data packet sent is delivered,
// dropped, or still in flight (bounded by total queue capacity plus
// links' in-flight packets) — for every mechanism and seed.

class ConservationSweep
    : public ::testing::TestWithParam<std::tuple<Mechanism, std::uint64_t>> {};

TEST_P(ConservationSweep, SentEqualsDeliveredPlusDroppedPlusInFlight) {
  const auto [mechanism, seed] = GetParam();
  auto spec = fig5_simultaneous_start(mechanism);
  spec.duration = sim::SimTime::seconds(30);
  spec.seed = seed;
  const auto r = run_paper_scenario(spec);

  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  for (const auto& [id, fs] : r.tracker.all()) {
    sent += fs.sent;
    delivered += fs.delivered;
  }
  ASSERT_GT(sent, 0u);
  EXPECT_EQ(r.unrouteable, 0u);
  EXPECT_LE(delivered + r.total_data_drops, sent);
  // In-flight bound: 26 links x (40 queued + ~20 in propagation) is a
  // generous static cap for this topology.
  EXPECT_LE(sent - delivered - r.total_data_drops, 26u * 60u);
}

INSTANTIATE_TEST_SUITE_P(
    MechanismsAndSeeds, ConservationSweep,
    ::testing::Combine(::testing::Values(Mechanism::Corelite, Mechanism::Csfq,
                                         Mechanism::DropTail, Mechanism::Red),
                       ::testing::Values(1u, 42u, 20260706u)),
    [](const auto& info) {
      return mechanism_name(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Invariant: weighted fairness emerges for any weight mix (Corelite).

class WeightMixSweep : public ::testing::TestWithParam<std::vector<double>> {};

TEST_P(WeightMixSweep, CoreliteNormalizedRatesEqualize) {
  const auto& weight_pattern = GetParam();
  ScenarioSpec spec = fig5_simultaneous_start(Mechanism::Corelite);
  for (std::size_t i = 0; i < spec.num_flows; ++i) {
    spec.weights[i] = weight_pattern[i % weight_pattern.size()];
  }
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(40, 80));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.97);
}

INSTANTIATE_TEST_SUITE_P(Patterns, WeightMixSweep,
                         ::testing::Values(std::vector<double>{1.0},
                                           std::vector<double>{1.0, 2.0},
                                           std::vector<double>{1.0, 4.0},
                                           std::vector<double>{2.0, 3.0, 5.0},
                                           std::vector<double>{1.0, 1.0, 8.0}));

// ---------------------------------------------------------------------------
// Invariant: Corelite steady state is loss-free across seeds (the
// paper's no-loss design goal) and utilization stays high.

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, CoreliteSteadyStateLossFreeAndEfficient) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.seed = GetParam();
  const auto r = run_paper_scenario(spec);
  int steady_drops = 0;
  for (double t : r.drop_times) {
    if (t > 25.0) ++steady_drops;
  }
  EXPECT_EQ(steady_drops, 0);
  // Aggregate allotted rate over the last half must fill the 500 pkt/s
  // bottleneck to at least 90%.
  double total = 0.0;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    total += r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(40, 80);
  }
  EXPECT_GT(total, 450.0);
  EXPECT_LT(total, 560.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Values(1u, 7u, 99u, 12345u, 987654321u));

// ---------------------------------------------------------------------------
// Invariant: parameter robustness.  The paper (§4.4) reports Corelite is
// "not very sensitive" to the core epoch size and marking threshold K1;
// fairness must hold across these sweeps.

class EpochSweep : public ::testing::TestWithParam<double> {};

TEST_P(EpochSweep, FairnessInsensitiveToCoreEpoch) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.corelite.core_epoch = sim::TimeDelta::millis(GetParam());
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(50, 80));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.95) << "epoch " << GetParam() << " ms";
}

INSTANTIATE_TEST_SUITE_P(EpochsMs, EpochSweep, ::testing::Values(50.0, 100.0, 200.0, 400.0));

class K1Sweep : public ::testing::TestWithParam<double> {};

TEST_P(K1Sweep, FairnessInsensitiveToMarkerSpacing) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.corelite.k1 = GetParam();
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(50, 80));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.95) << "K1 " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(K1Values, K1Sweep, ::testing::Values(1.0, 2.0, 4.0));

// ---------------------------------------------------------------------------
// Invariant: implementation capacities (cache sizes, edge queue depth)
// shift transients, not the service model.

class CacheSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheSizeSweep, MarkerCacheSizeDoesNotChangeAllocation) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.corelite.selector = qos::SelectorKind::MarkerCache;
  spec.corelite.marker_cache_size = GetParam();
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(50, 80));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.95) << "cache " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Sizes, CacheSizeSweep, ::testing::Values(32u, 128u, 1024u));

class CsfqKSweep : public ::testing::TestWithParam<double> {};

TEST_P(CsfqKSweep, CsfqConvergesAcrossAveragingWindows) {
  auto spec = fig5_simultaneous_start(Mechanism::Csfq);
  spec.csfq.k_flow = sim::TimeDelta::millis(GetParam());
  spec.csfq.k_link = sim::TimeDelta::millis(GetParam());
  spec.csfq.k_alpha = sim::TimeDelta::millis(GetParam());
  const auto r = run_paper_scenario(spec);
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    rates.push_back(
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(50, 80));
    weights.push_back(spec.weights[i - 1]);
  }
  EXPECT_GT(stats::jain_index(rates, weights), 0.93) << "K " << GetParam() << " ms";
  EXPECT_GT(r.total_data_drops, 0u);  // CSFQ's signal is loss, at any K
}

INSTANTIATE_TEST_SUITE_P(Windows, CsfqKSweep, ::testing::Values(50.0, 100.0, 300.0));

// ---------------------------------------------------------------------------
// Failure injection: the feedback loop tolerates lossy signalling.
// Markers and feedback are "piggybacked headers", but real networks
// corrupt packets; dropping a fraction of ALL control packets on EVERY
// link must degrade Corelite gracefully, not break convergence.

class ControlLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(ControlLossSweep, CoreliteDegradesGracefully) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.control_loss_rate = GetParam();
  const auto r = run_paper_scenario(spec);

  std::vector<double> rates;
  std::vector<double> weights;
  double total = 0.0;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const double got =
        r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.average_over(40, 80);
    rates.push_back(got);
    weights.push_back(spec.weights[i - 1]);
    total += got;
  }
  // Weighted fairness survives (feedback loss hits flows in proportion
  // to their marker rates, preserving the weighting).
  EXPECT_GT(stats::jain_index(rates, weights), 0.95) << "loss " << GetParam();
  // The loop stays closed: aggregate rate bounded near capacity.
  EXPECT_GT(total, 440.0);
  EXPECT_LT(total, 600.0);
  // Lost feedback means later throttling: more data drops than the
  // loss-free run, but not collapse.
  EXPECT_LT(static_cast<double>(r.total_data_drops), 0.15 * 500.0 * 80.0);
}

INSTANTIATE_TEST_SUITE_P(LossRates, ControlLossSweep, ::testing::Values(0.05, 0.1, 0.2));

// ---------------------------------------------------------------------------
// Invariant: randomized churn never breaks the system.  For arbitrary
// exponential on/off workloads: packets are conserved, losses stay
// bounded, the bottleneck is well-utilized whenever demand exists, and
// no long-lived flow starves.

class RandomChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomChurnSweep, CoreliteSurvivesArbitraryChurn) {
  const auto spec =
      random_churn(Mechanism::Corelite, 20, sim::TimeDelta::seconds(25),
                   sim::TimeDelta::seconds(10), sim::SimTime::seconds(120), GetParam());
  const auto r = run_paper_scenario(spec);

  EXPECT_EQ(r.unrouteable, 0u);
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  for (const auto& [id, fs] : r.tracker.all()) {
    sent += fs.sent;
    delivered += fs.delivered;
  }
  ASSERT_GT(sent, 0u);
  EXPECT_LE(delivered + r.total_data_drops, sent);
  // Churn transients may clip queues, but losses stay a small fraction.
  EXPECT_LT(static_cast<double>(r.total_data_drops), 0.03 * static_cast<double>(sent));

  // No starved long-lived activity: any flow that was active for at
  // least 20 consecutive seconds averaged a usable rate over them.
  for (std::size_t i = 0; i < spec.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i + 1);
    for (const auto& w : spec.activity[i]) {
      const double len = (w.stop - w.start).sec();
      if (len < 20.0) continue;
      const double avg = r.tracker.series(f).allotted_rate.average_over(
          w.start.sec() + 10.0, w.stop.sec());
      EXPECT_GT(avg, 5.0) << "flow " << f << " starved in [" << w.start.sec() << ", "
                          << w.stop.sec() << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChurnSweep, ::testing::Values(3u, 17u, 2026u));

// ---------------------------------------------------------------------------
// Stress: incast — many flows converging on ONE congested link (the
// worst case for any fairness mechanism: tiny per-flow shares, heavily
// shared feedback).  All flows enter at C3 and exit at C4.

TEST(Stress, IncastFortyFlowsOneLink) {
  ScenarioSpec spec;
  spec.mechanism = Mechanism::Corelite;
  spec.num_flows = 60;  // ids 21..60 cycle across spans; use all-on-C3C4 subset
  spec.duration = sim::SimTime::seconds(80);
  spec.weights.assign(60, 1.0);
  const auto r = run_paper_scenario(spec);
  // Focus on the 20 single-link flows of span C3-C4 plus the cycled ids
  // landing there; simply assert the global invariants under stress.
  EXPECT_EQ(r.unrouteable, 0u);
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  for (const auto& [id, fs] : r.tracker.all()) {
    sent += fs.sent;
    delivered += fs.delivered;
  }
  EXPECT_LE(delivered + r.total_data_drops, sent);
  EXPECT_LT(static_cast<double>(r.total_data_drops), 0.05 * static_cast<double>(sent));
  // Per-unit-weight shares on the most loaded link are small (~12 pkt/s
  // at 40+ equal-weight flows) — every flow must still get a live rate.
  for (const auto& [id, fs] : r.tracker.all()) {
    EXPECT_GT(fs.allotted_rate.average_over(40, 80), 2.0) << "flow " << id;
  }
}

// ---------------------------------------------------------------------------
// Invariant: determinism — identical spec and seed give bit-identical
// measurement series.

TEST(Determinism, SameSeedSameResults) {
  auto spec = fig5_simultaneous_start(Mechanism::Corelite);
  spec.duration = sim::SimTime::seconds(20);
  const auto a = run_paper_scenario(spec);
  const auto b = run_paper_scenario(spec);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.total_data_drops, b.total_data_drops);
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i);
    const auto& ra = a.tracker.series(f).allotted_rate.points();
    const auto& rb = b.tracker.series(f).allotted_rate.points();
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t k = 0; k < ra.size(); ++k) {
      ASSERT_DOUBLE_EQ(ra[k].t, rb[k].t);
      ASSERT_DOUBLE_EQ(ra[k].v, rb[k].v);
    }
  }
}

TEST(Determinism, DifferentSeedsDifferButConvergeAlike) {
  auto spec1 = fig5_simultaneous_start(Mechanism::Corelite);
  auto spec2 = spec1;
  spec2.seed = spec1.seed + 1;
  const auto a = run_paper_scenario(spec1);
  const auto b = run_paper_scenario(spec2);
  EXPECT_NE(a.events_processed, b.events_processed);
  // Same converged allocation despite different randomness.
  for (std::size_t i = 1; i <= spec1.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i);
    const double ra = a.tracker.series(f).allotted_rate.average_over(40, 80);
    const double rb = b.tracker.series(f).allotted_rate.average_over(40, 80);
    EXPECT_NEAR(ra, rb, 0.25 * std::max(ra, rb) + 3.0);
  }
}

}  // namespace
}  // namespace corelite::scenario

// Unit tests for Node forwarding and Network routing (Dijkstra FIBs,
// path extraction, delivery, unrouteable accounting).
#include <gtest/gtest.h>

#include <vector>

#include "net/network.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

Packet make_data(NodeId src, NodeId dst, FlowId flow = 1) {
  Packet p;
  p.kind = PacketKind::Data;
  p.flow = flow;
  p.src = src;
  p.dst = dst;
  p.size = sim::DataSize::kilobytes(1);
  return p;
}

TEST(Routing, ChainShortestPath) {
  sim::Simulator simulator{1};
  Network net{simulator};
  // a - b - c - d chain.
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  const auto d = net.add_node("d");
  net.connect_duplex(a, b, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 10);
  net.connect_duplex(b, c, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 10);
  net.connect_duplex(c, d, sim::Rate::mbps(10), sim::TimeDelta::millis(1), 10);
  net.build_routes();

  EXPECT_EQ(net.path(a, d), (std::vector<NodeId>{a, b, c, d}));
  EXPECT_EQ(net.path(d, a), (std::vector<NodeId>{d, c, b, a}));
  EXPECT_EQ(net.path(b, c), (std::vector<NodeId>{b, c}));
}

TEST(Routing, PrefersLowerDelayPath) {
  sim::Simulator simulator{1};
  Network net{simulator};
  // Two routes a->d: direct (50 ms) vs via b (10+10 ms).
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto d = net.add_node("d");
  net.connect(a, d, sim::Rate::mbps(10), sim::TimeDelta::millis(50), 10);
  net.connect(a, b, sim::Rate::mbps(10), sim::TimeDelta::millis(10), 10);
  net.connect(b, d, sim::Rate::mbps(10), sim::TimeDelta::millis(10), 10);
  net.build_routes();
  EXPECT_EQ(net.path(a, d), (std::vector<NodeId>{a, b, d}));
}

TEST(Routing, EqualDelayPrefersFewerHops) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto d = net.add_node("d");
  net.connect(a, d, sim::Rate::mbps(10), sim::TimeDelta::millis(20), 10);
  net.connect(a, b, sim::Rate::mbps(10), sim::TimeDelta::millis(10), 10);
  net.connect(b, d, sim::Rate::mbps(10), sim::TimeDelta::millis(10), 10);
  net.build_routes();
  // 20 ms direct vs 20 ms two-hop: per-hop epsilon favours the direct link.
  EXPECT_EQ(net.path(a, d), (std::vector<NodeId>{a, d}));
}

TEST(Routing, EndToEndDeliveryAcrossChain) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.connect_duplex(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(40), 10);
  net.connect_duplex(b, c, sim::Rate::mbps(4), sim::TimeDelta::millis(40), 10);
  net.build_routes();

  int delivered = 0;
  net.node(c).set_local_sink([&](Packet&&) { ++delivered; });
  net.inject(a, make_data(a, c));
  simulator.run();
  EXPECT_EQ(delivered, 1);
  // Two hops: 2 x (2 ms serialization + 40 ms propagation) = 84 ms.
  EXPECT_NEAR(simulator.now().sec(), 0.084, 1e-9);
}

TEST(Routing, UnrouteablePacketCounted) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.add_node("isolated");
  net.connect_duplex(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  net.build_routes();
  net.inject(a, make_data(a, 2));  // no route to the isolated node
  simulator.run();
  EXPECT_EQ(net.unrouteable_count(), 1u);
}

TEST(Routing, PathUnreachableIsEmpty) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  net.add_node("b");
  net.build_routes();
  EXPECT_TRUE(net.path(a, 1).empty());
}

TEST(Routing, FindLinkByEndpoints) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.connect_duplex(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  EXPECT_NE(net.find_link(a, b), nullptr);
  EXPECT_NE(net.find_link(b, a), nullptr);
  EXPECT_EQ(net.find_link(a, a), nullptr);
  EXPECT_NE(net.find_link(a, b), net.find_link(b, a));
}

TEST(Routing, LocalSinkReceivesAddressedPackets) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  net.connect_duplex(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  net.build_routes();
  std::vector<FlowId> flows;
  net.node(b).set_local_sink([&](Packet&& p) { flows.push_back(p.flow); });
  net.inject(a, make_data(a, b, 9));
  net.inject(a, make_data(a, b, 17));
  simulator.run();
  EXPECT_EQ(flows, (std::vector<FlowId>{9, 17}));
}

TEST(Routing, NodeCountersTrackForwarding) {
  sim::Simulator simulator{1};
  Network net{simulator};
  const auto a = net.add_node("a");
  const auto b = net.add_node("b");
  const auto c = net.add_node("c");
  net.connect_duplex(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  net.connect_duplex(b, c, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 10);
  net.build_routes();
  net.node(c).set_local_sink([](Packet&&) {});
  net.inject(a, make_data(a, c));
  simulator.run();
  EXPECT_EQ(net.node(b).forwarded(), 1u);
  EXPECT_EQ(net.node(c).delivered_locally(), 1u);
}

}  // namespace
}  // namespace corelite::net

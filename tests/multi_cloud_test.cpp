// Multi-cloud deployment (paper §2): "the mechanisms proposed in
// Corelite are for a single network cloud and hence can be deployed in
// a network cloud independently of other network clouds" — edge-to-edge
// mechanisms, chained at cloud boundaries.
//
// Topology: two Corelite clouds in series.
//
//   src1 edge ──► [cloud 1: X ══500══ Y] ──► boundary edge ──►
//        ──► [cloud 2: U ══250══ V] ──► sink
//
// Flow 1 crosses both clouds; flow 2 lives only in cloud 1; flow 3
// only in cloud 2.  Each cloud runs its own edges/cores with its own
// weights for flow 1.  The end-to-end rate of flow 1 must be the MIN of
// its two per-cloud allocations, and the surplus the first cloud
// forwards is policed away at the second cloud's ingress edge — losses
// at the cloud boundary, never inside either core.
#include <gtest/gtest.h>

#include <memory>

#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::qos {
namespace {

TEST(MultiCloud, IndependentCloudsComposeEndToEnd) {
  sim::Simulator simulator{31};
  net::Network network{simulator};

  // Cloud 1.
  const auto e1 = network.add_node("cloud1-ingress-f1");
  const auto e2 = network.add_node("cloud1-ingress-f2");
  const auto X = network.add_node("X");
  const auto Y = network.add_node("Y");
  const auto x2 = network.add_node("cloud1-egress-f2");
  // Cloud boundary: egress edge of cloud 1 == ingress edge of cloud 2.
  const auto boundary = network.add_node("boundary-edge");
  // Cloud 2.
  const auto e3 = network.add_node("cloud2-ingress-f3");
  const auto U = network.add_node("U");
  const auto V = network.add_node("V");
  const auto sink1 = network.add_node("sink-f1");
  const auto sink3 = network.add_node("sink-f3");

  const auto fast = sim::Rate::mbps(20);
  const auto d = sim::TimeDelta::millis(5);
  network.connect_duplex(e1, X, fast, d, 100);
  network.connect_duplex(e2, X, fast, d, 100);
  network.connect_duplex(X, Y, sim::Rate::mbps(4), d, 40);  // cloud-1 bottleneck: 500 pkt/s
  network.connect_duplex(Y, x2, fast, d, 100);
  network.connect_duplex(Y, boundary, fast, d, 100);
  network.connect_duplex(boundary, U, fast, d, 100);
  network.connect_duplex(e3, U, fast, d, 100);
  network.connect_duplex(U, V, sim::Rate::mbps(2), d, 40);  // cloud-2 bottleneck: 250 pkt/s
  network.connect_duplex(V, sink1, fast, d, 100);
  network.connect_duplex(V, sink3, fast, d, 100);
  network.build_routes();

  CoreliteConfig cfg;
  // Per-cloud trackers: flow 1 has a b_g in EACH cloud.
  stats::FlowTracker tracker1;
  stats::FlowTracker tracker2;

  // Cloud 1 machinery: cores X, Y; ingress edges e1 (flow 1), e2 (flow 2).
  CoreliteCoreRouter core_x{network, X, cfg};
  CoreliteCoreRouter core_y{network, Y, cfg};
  CoreliteEdgeRouter edge1{network, e1, cfg, &tracker1};
  CoreliteEdgeRouter edge2{network, e2, cfg, &tracker1};
  // Cloud 2 machinery: cores U, V; ingress edges boundary (flow 1,
  // transit: the traffic already exists) and e3 (flow 3).
  CoreliteCoreRouter core_u{network, U, cfg};
  CoreliteCoreRouter core_v{network, V, cfg};
  CoreliteEdgeRouter edge_boundary{network, boundary, cfg, &tracker2};
  CoreliteEdgeRouter edge3{network, e3, cfg, &tracker2};

  // Flow 1, cloud-1 leg: sourced at e1, weight 1, addressed THROUGH the
  // boundary (cloud 1's egress edge).  Note: within cloud 1 the flow's
  // "egress" is the boundary edge — edge-to-edge, not end-to-end.
  {
    net::FlowSpec fs;
    fs.id = 1;
    fs.ingress = e1;
    fs.egress = sink1;  // final destination: the boundary interception
                        // diverts it into cloud 2's shaping queue
    fs.weight = 1.0;
    edge1.add_flow(fs);
  }
  // Flow 2: cloud 1 only, weight 1 -> cloud-1 split is 250/250.
  {
    net::FlowSpec fs;
    fs.id = 2;
    fs.ingress = e2;
    fs.egress = x2;
    fs.weight = 1.0;
    edge2.add_flow(fs);
  }
  // Flow 1, cloud-2 leg: transit at the boundary edge with weight 1.
  {
    net::FlowSpec fs;
    fs.id = 1;
    fs.ingress = boundary;
    fs.egress = sink1;
    fs.weight = 1.0;
    edge_boundary.add_transit_flow(fs);
  }
  // Flow 3: cloud 2 only, weight 2 -> cloud-2 split is ~83 vs ~167.
  {
    net::FlowSpec fs;
    fs.id = 3;
    fs.ingress = e3;
    fs.egress = sink3;
    fs.weight = 2.0;
    edge3.add_flow(fs);
  }

  std::uint64_t sink1_count = 0;
  network.node(sink1).set_local_sink([&](net::Packet&& p) {
    if (p.is_data()) ++sink1_count;
  });
  network.node(sink3).set_local_sink([](net::Packet&&) {});
  network.node(x2).set_local_sink([](net::Packet&&) {});

  simulator.run_until(sim::SimTime::seconds(120));

  // Cloud-2 allocation for flow 1: 250 * 1/(1+2) = 83.3 pkt/s, the
  // end-to-end bottleneck (cloud 1 grants it 250).
  const double f1_goodput = static_cast<double>(sink1_count) / 120.0;
  EXPECT_NEAR(f1_goodput, 83.3, 15.0);

  // The surplus (cloud-1 rate ~250 minus ~83) is shed at the boundary
  // edge's shaping queue, NOT inside either cloud's core links.
  EXPECT_GT(edge_boundary.transit_drops(), 0u);
  for (const auto& link : network.links()) {
    EXPECT_EQ(link->stats().dropped, 0u)
        << "in-network drop on link " << link->from() << "->" << link->to();
  }

  // Cloud 1 still splits its bottleneck ~250/250 between flows 1 and 2
  // (it is oblivious to cloud 2's tighter allocation).
  const double f1_cloud1 = tracker1.series(1).allotted_rate.average_over(60, 120);
  const double f2_cloud1 = tracker1.series(2).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(f1_cloud1, 250.0, 50.0);
  EXPECT_NEAR(f2_cloud1, 250.0, 50.0);

  // Cloud 2 allots flow 1 its weighted share of the 250 pkt/s link.
  const double f1_cloud2 = tracker2.series(1).allotted_rate.average_over(60, 120);
  EXPECT_NEAR(f1_cloud2, 83.3, 15.0);
}

}  // namespace
}  // namespace corelite::qos

// Sweep-runner tests: thread pool, grid expansion, spec factory, the
// aggregator's scheduling-independence, and the headline determinism
// contract — parallel execution is bit-identical to serial.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "runner/sweep.h"
#include "runner/thread_pool.h"
#include "stats/aggregate.h"

namespace rn = corelite::runner;
namespace sc = corelite::scenario;
namespace st = corelite::stats;

TEST(ThreadPool, RunsEverySubmittedJob) {
  std::atomic<int> count{0};
  {
    rn::ThreadPool pool{4};
    for (int i = 0; i < 100; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 100);
  }
}

TEST(ThreadPool, DestructorDrainsQueue) {
  std::atomic<int> count{0};
  {
    rn::ThreadPool pool{2};
    for (int i = 0; i < 50; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No wait_idle: the destructor must still run everything queued.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ZeroThreadsIsFloorToOne) {
  std::atomic<int> count{0};
  {
    rn::ThreadPool pool{0};
    pool.submit([&count] { ++count; });
    pool.wait_idle();
  }
  EXPECT_EQ(count.load(), 1);
}

TEST(SweepGrid, ExpandsScenarioMajorWithDerivedSeeds) {
  rn::SweepGrid grid;
  grid.scenarios = {"fig5", "fig7"};
  grid.mechanisms = {sc::Mechanism::Corelite, sc::Mechanism::Csfq};
  grid.repeats = 3;
  grid.base_seed = 42;
  const auto runs = rn::expand_grid(grid);
  ASSERT_EQ(runs.size(), 2u * 2u * 3u);

  // Scenario-major, then mechanism, then repeat.
  EXPECT_EQ(runs[0].scenario, "fig5");
  EXPECT_EQ(runs[0].mechanism, sc::Mechanism::Corelite);
  EXPECT_EQ(runs[3].mechanism, sc::Mechanism::Csfq);
  EXPECT_EQ(runs[6].scenario, "fig7");

  // Repeat k shares its seed across every cell (paired comparisons)...
  EXPECT_EQ(runs[0].seed, runs[3].seed);
  EXPECT_EQ(runs[0].seed, runs[6].seed);
  EXPECT_EQ(runs[0].seed, rn::derive_seed(42, 0));
  // ...and seeds differ across repeats.
  std::set<std::uint64_t> seeds;
  for (std::size_t rep = 0; rep < 3; ++rep) seeds.insert(runs[rep].seed);
  EXPECT_EQ(seeds.size(), 3u);
}

TEST(SweepGrid, BuildSpecAppliesOverrides) {
  rn::RunDescriptor d;
  d.scenario = "fig5";
  d.mechanism = sc::Mechanism::Csfq;
  d.seed = 7;
  d.duration_sec = 25.0;
  const auto spec = rn::build_spec(d);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->mechanism, sc::Mechanism::Csfq);
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_DOUBLE_EQ(spec->duration.sec(), 25.0);

  d.num_flows = 6;
  const auto grown = rn::build_spec(d);
  ASSERT_TRUE(grown.has_value());
  EXPECT_EQ(grown->num_flows, 6u);
  ASSERT_EQ(grown->weights.size(), 6u);
  EXPECT_TRUE(grown->activity.empty());
}

TEST(SweepGrid, BuildSpecRejectsBadInput) {
  rn::RunDescriptor d;
  d.scenario = "no-such-figure";
  EXPECT_FALSE(rn::build_spec(d).has_value());

  d.scenario = "fig5";  // 10 flows
  d.weights = {1.0, 2.0};
  EXPECT_FALSE(rn::build_spec(d).has_value());
}

TEST(SweepAggregator, SnapshotIsInsertionOrderIndependent) {
  // Two aggregators fed the same samples in different (simulated
  // thread-completion) orders must emit bit-identical statistics.
  st::SweepAggregator forward;
  st::SweepAggregator reversed;
  const double values[] = {0.97, 1.03, 0.91, 1.11, 0.99};
  for (std::uint64_t i = 0; i < 5; ++i) forward.add("cell", i, "jain", values[i]);
  for (std::uint64_t i = 5; i-- > 0;) reversed.add("cell", i, "jain", values[i]);

  const auto a = forward.snapshot();
  const auto b = reversed.snapshot();
  ASSERT_EQ(a.size(), 1u);
  ASSERT_EQ(b.size(), 1u);
  ASSERT_EQ(a[0].metrics.size(), 1u);
  // Bit-for-bit, not approximate: replaying in run_index order makes
  // the float fold order canonical.
  EXPECT_EQ(a[0].metrics[0].acc.mean(), b[0].metrics[0].acc.mean());
  EXPECT_EQ(a[0].metrics[0].acc.stddev(), b[0].metrics[0].acc.stddev());
  EXPECT_EQ(a[0].metrics[0].acc.min(), b[0].metrics[0].acc.min());
  EXPECT_EQ(a[0].metrics[0].acc.max(), b[0].metrics[0].acc.max());
}

TEST(Accumulator, WelfordMatchesClosedForm) {
  st::Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_NEAR(acc.stddev(), 2.13809, 1e-5);  // sample stddev, n-1
  EXPECT_NEAR(acc.ci95_half_width(), 1.96 * 2.13809 / std::sqrt(8.0), 1e-5);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
}

namespace {

std::vector<rn::RunDescriptor> small_grid() {
  rn::SweepGrid grid;
  grid.scenarios = {"fig5"};
  grid.mechanisms = {sc::Mechanism::Corelite, sc::Mechanism::Csfq};
  grid.repeats = 2;
  grid.base_seed = 3;
  grid.duration_sec = 10.0;  // short: this runs under TSan in CI
  return rn::expand_grid(grid);
}

}  // namespace

TEST(SweepRunner, ParallelIsBitIdenticalToSerial) {
  const auto runs = small_grid();
  rn::SweepRunner serial{1};
  rn::SweepRunner wide{4};
  const auto a = serial.run(runs);
  const auto b = wide.run(runs);
  ASSERT_EQ(a.size(), runs.size());
  ASSERT_EQ(b.size(), runs.size());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    ASSERT_TRUE(a[i].ok);
    ASSERT_TRUE(b[i].ok);
    EXPECT_EQ(a[i].index, i);
    EXPECT_EQ(b[i].index, i);
    // The digest witnesses every per-flow counter and every rate /
    // cumulative-service sample bit-for-bit.
    EXPECT_EQ(a[i].digest, b[i].digest) << "run " << i;
    EXPECT_EQ(a[i].events, b[i].events);
    EXPECT_EQ(a[i].total_drops, b[i].total_drops);
    EXPECT_EQ(a[i].delivered, b[i].delivered);
    ASSERT_EQ(a[i].avg_rate_pps.size(), b[i].avg_rate_pps.size());
    for (std::size_t f = 0; f < a[i].avg_rate_pps.size(); ++f) {
      EXPECT_EQ(a[i].avg_rate_pps[f], b[i].avg_rate_pps[f]);
    }
  }
}

TEST(SweepRunner, SweepJsonIsByteIdenticalAcrossJobCounts) {
  const auto runs = small_grid();
  const auto render = [&runs](std::size_t jobs) {
    rn::SweepRunner runner{jobs};
    const auto results = runner.run(runs);
    st::SweepAggregator agg;
    for (const auto& r : results) rn::record_metrics(agg, r);
    st::SweepMetaJson meta;
    meta.title = "determinism";
    meta.runs = results.size();
    meta.repeats = 2;
    meta.base_seed = 3;
    std::ostringstream os;
    st::write_sweep_json(os, meta, agg.snapshot());
    return os.str();
  };
  const std::string serial = render(1);
  EXPECT_EQ(serial, render(4));
  EXPECT_NE(serial.find("\"cells\""), std::string::npos);
}

TEST(SweepRunner, ProgressReportsEveryRunExactlyOnce) {
  const auto runs = small_grid();
  rn::SweepRunner runner{4};
  std::mutex mu;
  std::set<std::size_t> seen;
  std::size_t max_done = 0;
  runner.set_progress([&](const rn::RunResult& r, std::size_t done, std::size_t total) {
    const std::lock_guard<std::mutex> lock{mu};
    EXPECT_TRUE(seen.insert(r.index).second);
    EXPECT_EQ(total, runs.size());
    max_done = std::max(max_done, done);
  });
  const auto results = runner.run(runs);
  EXPECT_EQ(seen.size(), runs.size());
  EXPECT_EQ(max_done, runs.size());
  EXPECT_EQ(results.size(), runs.size());
}

TEST(ThreadPool, WorkerIndexIsStablePerThreadAndInvalidOutside) {
  EXPECT_EQ(rn::ThreadPool::current_worker_index(), rn::ThreadPool::kNotAWorker);
  std::mutex mu;
  std::set<std::size_t> indices;
  {
    rn::ThreadPool pool{3};
    for (int i = 0; i < 30; ++i) {
      pool.submit([&] {
        const std::size_t idx = rn::ThreadPool::current_worker_index();
        const std::lock_guard<std::mutex> lock{mu};
        indices.insert(idx);
      });
    }
    pool.wait_idle();
  }
  // Every observed index names one of the pool's threads.
  EXPECT_FALSE(indices.empty());
  EXPECT_LE(indices.size(), 3u);
  for (const std::size_t idx : indices) EXPECT_LT(idx, 3u);
}

TEST(SweepRunner, CombinedDigestIsOrderCanonicalAndJobIndependent) {
  const auto runs = small_grid();
  rn::SweepRunner serial{1};
  rn::SweepRunner wide{4};
  const auto a = serial.run(runs);
  const auto b = wide.run(runs);
  // One digest for the whole sweep, identical at any --jobs: this is
  // the value the manifest records and check_telemetry.py verifies.
  EXPECT_EQ(rn::combined_digest(a), rn::combined_digest(b));
  // And it folds the per-run digests, so any single-run change moves it.
  auto c = a;
  c[0].digest ^= 1;
  EXPECT_NE(rn::combined_digest(a), rn::combined_digest(c));
}

TEST(SweepRunner, ResultsCarryWallClockTelemetryFields) {
  const auto runs = small_grid();
  rn::SweepRunner runner{2};
  const auto results = runner.run(runs);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok);
    EXPECT_LT(r.worker, 2u);
    EXPECT_GE(r.wall_start_ms, 0.0);
    EXPECT_GT(r.wall_ms, 0.0);
  }
}

TEST(SweepRunner, HeartbeatEmitsFinalProgressLine) {
  const auto runs = small_grid();
  rn::SweepRunner runner{2};
  std::ostringstream hb;
  // Long interval: only the guaranteed final line fires, keeping the
  // assertion deterministic.
  runner.set_heartbeat(&hb, 60.0);
  const auto results = runner.run(runs);
  EXPECT_EQ(results.size(), runs.size());
  const std::string out = hb.str();
  EXPECT_NE(out.find("[sweep]"), std::string::npos);
  EXPECT_NE(out.find("4/4 done"), std::string::npos);
}

TEST(SweepRunner, FailedBuildIsReportedNotCrashed) {
  std::vector<rn::RunDescriptor> runs(1);
  runs[0].scenario = "bogus";
  rn::SweepRunner runner{2};
  const auto results = runner.run(runs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].ok);
}

TEST(Scenario, MechanismNameRoundTrips) {
  for (const auto m : {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::DropTail,
                       sc::Mechanism::Red, sc::Mechanism::Fred, sc::Mechanism::Wfq,
                       sc::Mechanism::EcnBit, sc::Mechanism::Choke, sc::Mechanism::Sfq}) {
    const auto back = sc::mechanism_from_name(sc::mechanism_name(m));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, m);
  }
  EXPECT_FALSE(sc::mechanism_from_name("not-a-mechanism").has_value());
}

TEST(Scenario, ScenarioByNameMatchesFactories) {
  const auto spec = sc::scenario_by_name("fig5", sc::Mechanism::Wfq);
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->mechanism, sc::Mechanism::Wfq);
  EXPECT_EQ(spec->num_flows, 10u);
  EXPECT_FALSE(sc::scenario_by_name("fig99", sc::Mechanism::Wfq).has_value());
}

// Tests for the packet tracer: event recording, filters, formatting,
// memory limits.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "net/network.h"
#include "net/tracer.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

struct TracerFixture {
  sim::Simulator simulator{1};
  Network network{simulator};
  NodeId a = network.add_node("a");
  NodeId b = network.add_node("b");
  Link* link = nullptr;

  TracerFixture() {
    link = &network.connect(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 2);
    network.build_routes();
    network.node(b).set_local_sink([](Packet&&) {});
  }

  Packet data(FlowId flow, std::uint64_t uid) {
    Packet p;
    p.uid = uid;
    p.kind = PacketKind::Data;
    p.flow = flow;
    p.src = a;
    p.dst = b;
    p.size = sim::DataSize::kilobytes(1);
    return p;
  }
};

TEST(Tracer, RecordsEnqueueDequeuePairs) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.attach(*f.link);
  f.link->send(f.data(1, 100));
  f.simulator.run();
  // One enqueue + one dequeue.
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].event, TraceEvent::Enqueue);
  EXPECT_EQ(tracer.records()[1].event, TraceEvent::Dequeue);
  EXPECT_EQ(tracer.records()[0].uid, 100u);
  EXPECT_EQ(tracer.records()[0].from, f.a);
  EXPECT_EQ(tracer.records()[0].to, f.b);
}

TEST(Tracer, RecordsDrops) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.attach(*f.link);
  for (std::uint64_t i = 0; i < 10; ++i) f.link->send(f.data(1, i));
  f.simulator.run();
  int drops = 0;
  for (const auto& r : tracer.records()) drops += r.event == TraceEvent::Drop;
  EXPECT_EQ(drops, 7);  // capacity 2 + 1 in transmitter
}

TEST(Tracer, FlowFilter) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.set_flow_filter(2);
  tracer.attach(*f.link);
  f.link->send(f.data(1, 1));
  f.link->send(f.data(2, 2));
  f.simulator.run();
  for (const auto& r : tracer.records()) EXPECT_EQ(r.flow, 2u);
  EXPECT_EQ(tracer.records().size(), 2u);
}

TEST(Tracer, KindFilter) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.set_kind_filter(PacketKind::Marker);
  tracer.attach(*f.link);
  f.link->send(f.data(1, 1));
  Packet m;
  m.kind = PacketKind::Marker;
  m.flow = 1;
  m.src = f.a;
  m.dst = f.b;
  f.link->send(std::move(m));
  f.simulator.run();
  ASSERT_GE(tracer.records().size(), 1u);
  for (const auto& r : tracer.records()) EXPECT_EQ(r.kind, PacketKind::Marker);
}

TEST(Tracer, MemoryLimitStopsRetentionNotCounting) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.set_memory_limit(3);
  tracer.attach(*f.link);
  for (std::uint64_t i = 0; i < 5; ++i) f.link->send(f.data(1, i));
  f.simulator.run();
  EXPECT_EQ(tracer.records().size(), 3u);
  EXPECT_GT(tracer.total_events(), 3u);
}

TEST(Tracer, ClearPreservesTotalResetZeroesBoth) {
  TracerFixture f;
  PacketTracer tracer;
  tracer.attach(*f.link);
  f.link->send(f.data(1, 1));
  f.simulator.run();
  ASSERT_EQ(tracer.records().size(), 2u);
  ASSERT_EQ(tracer.total_events(), 2u);
  // clear() drops the retained records but keeps the running count.
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.total_events(), 2u);
  // Still attached: new events keep recording and counting.
  f.link->send(f.data(1, 2));
  f.simulator.run();
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.total_events(), 4u);
  // reset() zeroes both, as if freshly constructed.
  tracer.reset();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_EQ(tracer.total_events(), 0u);
  f.link->send(f.data(1, 3));
  f.simulator.run();
  EXPECT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.total_events(), 2u);
}

TEST(Tracer, StreamingContinuesPastMemoryCap) {
  TracerFixture f;
  std::ostringstream os;
  PacketTracer tracer{&os};
  tracer.set_memory_limit(2);
  tracer.attach(*f.link);
  for (std::uint64_t i = 0; i < 5; ++i) f.link->send(f.data(1, i));
  f.simulator.run();
  // Retention stops at the cap...
  EXPECT_EQ(tracer.records().size(), 2u);
  // ...but every event still reaches the stream and the counter.
  const std::string out = os.str();
  const auto lines =
      static_cast<std::uint64_t>(std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(lines, tracer.total_events());
  EXPECT_GT(lines, 2u);
}

TEST(Tracer, TracerOutlivesNetwork) {
  // Declared before the fixture, so the network (and its links) are
  // destroyed first; the dying link must null the shim via
  // on_link_destroyed so the tracer's destructor has nothing to detach.
  PacketTracer tracer;
  {
    TracerFixture f;
    tracer.attach(*f.link);
    f.link->send(f.data(1, 1));
    f.simulator.run();
  }
  // The records survive the network's death.
  ASSERT_EQ(tracer.records().size(), 2u);
  EXPECT_EQ(tracer.records()[0].uid, 1u);
  EXPECT_EQ(tracer.total_events(), 2u);
}

TEST(Tracer, StreamsFormattedLines) {
  TracerFixture f;
  std::ostringstream os;
  PacketTracer tracer{&os};
  tracer.attach(*f.link);
  f.link->send(f.data(7, 42));
  f.simulator.run();
  const std::string out = os.str();
  EXPECT_NE(out.find("+ 0->1 data f=7 uid=42 size=1000"), std::string::npos);
  EXPECT_NE(out.find("- 0->1 data"), std::string::npos);
}

TEST(Tracer, FormatRecordFields) {
  TraceRecord r;
  r.t = 1.5;
  r.event = TraceEvent::Drop;
  r.from = 3;
  r.to = 5;
  r.kind = PacketKind::Feedback;
  r.flow = 9;
  r.uid = 77;
  r.size_bytes = 0;
  r.queue_len = 4;
  EXPECT_EQ(format_trace_record(r), "t=1.500000 d 3->5 feedback f=9 uid=77 size=0 q=4");
}

}  // namespace
}  // namespace corelite::net

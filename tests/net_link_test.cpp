// Unit tests for Link: serialization/propagation timing, FIFO service,
// observer callbacks, admission policies, statistics.
#include <gtest/gtest.h>

#include <vector>

#include "net/link.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

struct TwoNodeFixture {
  sim::Simulator simulator{1};
  Network network{simulator};
  NodeId a = network.add_node("a");
  NodeId b = network.add_node("b");
  std::vector<Packet> received;

  TwoNodeFixture() {
    network.node(b).set_local_sink([this](Packet&& p) { received.push_back(p); });
  }

  Link& make_link(sim::Rate rate, sim::TimeDelta delay, std::size_t cap = 100) {
    Link& l = network.connect(a, b, rate, delay, cap);
    network.build_routes();
    return l;
  }

  Packet data(std::uint64_t uid = 0, FlowId flow = 1) {
    Packet p;
    p.uid = uid;
    p.kind = PacketKind::Data;
    p.flow = flow;
    p.src = a;
    p.dst = b;
    p.size = sim::DataSize::kilobytes(1);
    p.created = simulator.now();
    return p;
  }
};

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  TwoNodeFixture f;
  // 4 Mbps, 40 ms: 1 KB serializes in 2 ms, so arrival at 42 ms.
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(40));
  l.send(f.data());
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_NEAR(f.simulator.now().sec(), 0.042, 1e-9);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  std::vector<double> arrival_times;
  f.network.node(f.b).set_local_sink(
      [&](Packet&&) { arrival_times.push_back(f.simulator.now().sec()); });
  l.send(f.data(1));
  l.send(f.data(2));
  l.send(f.data(3));
  f.simulator.run();
  ASSERT_EQ(arrival_times.size(), 3u);
  EXPECT_NEAR(arrival_times[0], 0.002, 1e-9);
  EXPECT_NEAR(arrival_times[1], 0.004, 1e-9);
  EXPECT_NEAR(arrival_times[2], 0.006, 1e-9);
}

TEST(Link, ZeroSizeControlSerializesInstantly) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(10));
  Packet m;
  m.kind = PacketKind::Marker;
  m.src = f.a;
  m.dst = f.b;
  m.size = sim::DataSize::zero();
  l.send(std::move(m));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_NEAR(f.simulator.now().sec(), 0.010, 1e-9);  // propagation only
}

TEST(Link, FifoOrderAcrossKinds) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(1));
  l.send(f.data(1));
  Packet m;
  m.uid = 2;
  m.kind = PacketKind::Marker;
  m.src = f.a;
  m.dst = f.b;
  l.send(std::move(m));
  l.send(f.data(3));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 3u);
  EXPECT_EQ(f.received[0].uid, 1u);
  EXPECT_EQ(f.received[1].uid, 2u);
  EXPECT_EQ(f.received[2].uid, 3u);
}

TEST(Link, TailDropUpdatesStats) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::kbps(8), sim::TimeDelta::zero(), /*cap=*/2);
  // 1 KB at 8 kbps = 1 s per packet; flood 10 packets instantly.
  // Packet 0 is dequeued into the transmitter at once, packets 1-2 fill
  // the 2-slot queue, packets 3-9 tail-drop.
  for (int i = 0; i < 10; ++i) l.send(f.data(static_cast<std::uint64_t>(i)));
  f.simulator.run();
  EXPECT_EQ(l.stats().dropped, 7u);
  EXPECT_EQ(l.stats().delivered, 3u);
  EXPECT_EQ(f.received.size(), 3u);
}

struct CountingObserver final : LinkObserver {
  int enq = 0, drop = 0, deq = 0;
  std::vector<std::size_t> lengths;
  void on_enqueue(const Packet&, sim::SimTime) override { ++enq; }
  void on_drop(const Packet&, sim::SimTime) override { ++drop; }
  void on_dequeue(const Packet&, sim::SimTime) override { ++deq; }
  void on_queue_length(std::size_t len, sim::SimTime) override { lengths.push_back(len); }
};

TEST(Link, ObserverSeesEnqueueDequeueDrop) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::kbps(8), sim::TimeDelta::zero(), /*cap=*/1);
  CountingObserver obs;
  l.add_observer(&obs);
  for (int i = 0; i < 5; ++i) l.send(f.data(static_cast<std::uint64_t>(i)));
  f.simulator.run();
  EXPECT_EQ(obs.enq, 2);   // 1 serializing + 1 queued
  EXPECT_EQ(obs.drop, 3);
  EXPECT_EQ(obs.deq, 2);
  EXPECT_FALSE(obs.lengths.empty());
}

struct RejectOddFlows final : AdmissionPolicy {
  bool admit(Packet& p, sim::SimTime) override { return p.flow % 2 == 0; }
};

TEST(Link, AdmissionPolicyFiltersData) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  RejectOddFlows policy;
  l.set_admission(&policy);
  l.send(f.data(1, /*flow=*/1));
  l.send(f.data(2, /*flow=*/2));
  l.send(f.data(3, /*flow=*/3));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].flow, 2u);
  EXPECT_EQ(l.stats().dropped, 2u);
}

TEST(Link, AdmissionPolicyNotAppliedToControl) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  RejectOddFlows policy;  // would reject flow 1
  l.set_admission(&policy);
  Packet m;
  m.kind = PacketKind::Feedback;
  m.flow = 1;
  m.src = f.a;
  m.dst = f.b;
  l.send(std::move(m));
  f.simulator.run();
  EXPECT_EQ(f.received.size(), 1u);
}

struct Relabeler final : AdmissionPolicy {
  bool admit(Packet& p, sim::SimTime) override {
    p.label = 42.0;
    return true;
  }
};

TEST(Link, AdmissionPolicyMayRelabel) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  Relabeler policy;
  l.set_admission(&policy);
  Packet p = f.data(1);
  p.label = 7.0;
  l.send(std::move(p));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_DOUBLE_EQ(f.received[0].label, 42.0);
}

TEST(Link, StatsCountDataBytes) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  l.send(f.data(1));
  l.send(f.data(2));
  f.simulator.run();
  EXPECT_EQ(l.stats().data_delivered, 2u);
  EXPECT_EQ(l.stats().data_bytes_delivered.byte_count(), 2000);
}

}  // namespace
}  // namespace corelite::net

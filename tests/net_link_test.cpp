// Unit tests for Link: serialization/propagation timing, FIFO service,
// observer callbacks, admission policies, statistics.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "net/link.h"
#include "net/network.h"
#include "sim/hotpath.h"
#include "sim/simulator.h"

namespace corelite::net {
namespace {

struct TwoNodeFixture {
  sim::Simulator simulator{1};
  Network network{simulator};
  NodeId a = network.add_node("a");
  NodeId b = network.add_node("b");
  std::vector<Packet> received;

  TwoNodeFixture() {
    network.node(b).set_local_sink([this](Packet&& p) { received.push_back(p); });
  }

  Link& make_link(sim::Rate rate, sim::TimeDelta delay, std::size_t cap = 100) {
    Link& l = network.connect(a, b, rate, delay, cap);
    network.build_routes();
    return l;
  }

  Packet data(std::uint64_t uid = 0, FlowId flow = 1) {
    Packet p;
    p.uid = uid;
    p.kind = PacketKind::Data;
    p.flow = flow;
    p.src = a;
    p.dst = b;
    p.size = sim::DataSize::kilobytes(1);
    p.created = simulator.now();
    return p;
  }
};

TEST(Link, DeliveryTimeIsSerializationPlusPropagation) {
  TwoNodeFixture f;
  // 4 Mbps, 40 ms: 1 KB serializes in 2 ms, so arrival at 42 ms.
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(40));
  l.send(f.data());
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_NEAR(f.simulator.now().sec(), 0.042, 1e-9);
}

TEST(Link, BackToBackPacketsSpacedBySerialization) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  std::vector<double> arrival_times;
  f.network.node(f.b).set_local_sink(
      [&](Packet&&) { arrival_times.push_back(f.simulator.now().sec()); });
  l.send(f.data(1));
  l.send(f.data(2));
  l.send(f.data(3));
  f.simulator.run();
  ASSERT_EQ(arrival_times.size(), 3u);
  EXPECT_NEAR(arrival_times[0], 0.002, 1e-9);
  EXPECT_NEAR(arrival_times[1], 0.004, 1e-9);
  EXPECT_NEAR(arrival_times[2], 0.006, 1e-9);
}

TEST(Link, ZeroSizeControlSerializesInstantly) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(10));
  Packet m;
  m.kind = PacketKind::Marker;
  m.src = f.a;
  m.dst = f.b;
  m.size = sim::DataSize::zero();
  l.send(std::move(m));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_NEAR(f.simulator.now().sec(), 0.010, 1e-9);  // propagation only
}

TEST(Link, FifoOrderAcrossKinds) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(1));
  l.send(f.data(1));
  Packet m;
  m.uid = 2;
  m.kind = PacketKind::Marker;
  m.src = f.a;
  m.dst = f.b;
  l.send(std::move(m));
  l.send(f.data(3));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 3u);
  EXPECT_EQ(f.received[0].uid, 1u);
  EXPECT_EQ(f.received[1].uid, 2u);
  EXPECT_EQ(f.received[2].uid, 3u);
}

TEST(Link, TailDropUpdatesStats) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::kbps(8), sim::TimeDelta::zero(), /*cap=*/2);
  // 1 KB at 8 kbps = 1 s per packet; flood 10 packets instantly.
  // Packet 0 is dequeued into the transmitter at once, packets 1-2 fill
  // the 2-slot queue, packets 3-9 tail-drop.
  for (int i = 0; i < 10; ++i) l.send(f.data(static_cast<std::uint64_t>(i)));
  f.simulator.run();
  EXPECT_EQ(l.stats().dropped, 7u);
  EXPECT_EQ(l.stats().delivered, 3u);
  EXPECT_EQ(f.received.size(), 3u);
}

struct CountingObserver final : LinkObserver {
  int enq = 0, drop = 0, deq = 0;
  std::vector<std::size_t> lengths;
  void on_enqueue(const Packet&, sim::SimTime) override { ++enq; }
  void on_drop(const Packet&, sim::SimTime) override { ++drop; }
  void on_dequeue(const Packet&, sim::SimTime) override { ++deq; }
  void on_queue_length(std::size_t len, sim::SimTime) override { lengths.push_back(len); }
};

TEST(Link, ObserverSeesEnqueueDequeueDrop) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::kbps(8), sim::TimeDelta::zero(), /*cap=*/1);
  CountingObserver obs;
  l.add_observer(&obs);
  for (int i = 0; i < 5; ++i) l.send(f.data(static_cast<std::uint64_t>(i)));
  f.simulator.run();
  EXPECT_EQ(obs.enq, 2);   // 1 serializing + 1 queued
  EXPECT_EQ(obs.drop, 3);
  EXPECT_EQ(obs.deq, 2);
  EXPECT_FALSE(obs.lengths.empty());
}

struct RejectOddFlows final : AdmissionPolicy {
  bool admit(Packet& p, sim::SimTime) override { return p.flow % 2 == 0; }
};

TEST(Link, AdmissionPolicyFiltersData) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  RejectOddFlows policy;
  l.set_admission(&policy);
  l.send(f.data(1, /*flow=*/1));
  l.send(f.data(2, /*flow=*/2));
  l.send(f.data(3, /*flow=*/3));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_EQ(f.received[0].flow, 2u);
  EXPECT_EQ(l.stats().dropped, 2u);
}

TEST(Link, AdmissionPolicyNotAppliedToControl) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  RejectOddFlows policy;  // would reject flow 1
  l.set_admission(&policy);
  Packet m;
  m.kind = PacketKind::Feedback;
  m.flow = 1;
  m.src = f.a;
  m.dst = f.b;
  l.send(std::move(m));
  f.simulator.run();
  EXPECT_EQ(f.received.size(), 1u);
}

struct Relabeler final : AdmissionPolicy {
  bool admit(Packet& p, sim::SimTime) override {
    p.label = 42.0;
    return true;
  }
};

TEST(Link, AdmissionPolicyMayRelabel) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  Relabeler policy;
  l.set_admission(&policy);
  Packet p = f.data(1);
  p.label = 7.0;
  l.send(std::move(p));
  f.simulator.run();
  ASSERT_EQ(f.received.size(), 1u);
  EXPECT_DOUBLE_EQ(f.received[0].label, 42.0);
}

TEST(Link, StatsCountDataBytes) {
  TwoNodeFixture f;
  Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::zero());
  l.send(f.data(1));
  l.send(f.data(2));
  f.simulator.run();
  EXPECT_EQ(l.stats().data_delivered, 2u);
  EXPECT_EQ(l.stats().data_bytes_delivered.byte_count(), 2000);
}

// ---------------------------------------------------------------------------
// Batched transmission (Link::on_serialized drain loop).

/// Full externally observable trace of a burst: every observer callback
/// and delivery, tagged with its virtual timestamp.  Batched and
/// event-per-packet transmission must produce identical traces.
struct BurstTrace {
  std::vector<std::pair<std::string, double>> log;
  std::uint64_t events = 0;
  bool operator==(const BurstTrace& o) const { return log == o.log && events == o.events; }
};

struct TracingObserver final : LinkObserver {
  std::vector<std::pair<std::string, double>>* log;
  void on_dequeue(const Packet& p, sim::SimTime t) override {
    log->emplace_back("deq" + std::to_string(p.uid), t.sec());
  }
  void on_queue_length(std::size_t n, sim::SimTime t) override {
    log->emplace_back("qlen" + std::to_string(n), t.sec());
  }
};

/// 6-packet burst at t=0 on a 4 Mb/s link with a 40 ms pipe (2 ms per
/// packet, so completions at 2..12 ms all precede the first delivery at
/// 42 ms — the batchable shape), plus one unrelated mid-burst event at
/// 5 ms that must interleave between the 4 ms and 6 ms completions.
/// Optionally pauses at `deadline` before finishing the run.
BurstTrace run_burst(bool batch_on, double deadline_sec = -1.0) {
  if (batch_on) {
    unsetenv("CORELITE_NO_BATCH");
  } else {
    setenv("CORELITE_NO_BATCH", "1", 1);
  }
  BurstTrace trace;
  {
    TwoNodeFixture f;
    Link& l = f.make_link(sim::Rate::mbps(4), sim::TimeDelta::millis(40));
    TracingObserver obs;
    obs.log = &trace.log;
    l.add_observer(&obs, Link::kObserveDequeue | Link::kObserveQueueLength);
    f.network.node(f.b).set_local_sink([&](Packet&& p) {
      trace.log.emplace_back("arr" + std::to_string(p.uid), f.simulator.now().sec());
    });
    f.simulator.at_detached(sim::SimTime::seconds(0.005), [&] {
      trace.log.emplace_back("tick", f.simulator.now().sec());
    });
    for (std::uint64_t uid = 1; uid <= 6; ++uid) l.send(f.data(uid));
    if (deadline_sec >= 0.0) {
      f.simulator.run_until(sim::SimTime::seconds(deadline_sec));
      trace.log.emplace_back("pause", f.simulator.now().sec());
    }
    f.simulator.run();
    trace.events = f.simulator.events_processed();
    l.remove_observer(&obs);
  }
  unsetenv("CORELITE_NO_BATCH");
  return trace;
}

TEST(LinkBatching, BatchedTraceIsBitIdenticalToEventPerPacket) {
  const BurstTrace batched = run_burst(/*batch_on=*/true);
  const BurstTrace unbatched = run_burst(/*batch_on=*/false);
  EXPECT_EQ(batched, unbatched);
  // The mid-burst tick must sit between the 4 ms and 6 ms dequeues in
  // both traces — batching may not reorder an interleaving event.
  const auto find = [&](const std::string& tag) {
    for (std::size_t i = 0; i < batched.log.size(); ++i) {
      if (batched.log[i].first == tag) return i;
    }
    return batched.log.size();
  };
  EXPECT_LT(find("deq3"), find("tick"));
  EXPECT_LT(find("tick"), find("deq4"));
}

TEST(LinkBatching, EventsProcessedCountsFusedCompletions) {
  // advance_inline() accounts one processed event per fused completion,
  // so the externally visible event count must not depend on batching.
  const BurstTrace batched = run_burst(true);
  const BurstTrace unbatched = run_burst(false);
  EXPECT_EQ(batched.events, unbatched.events);
}

TEST(LinkBatching, RunUntilDeadlineIsNotOvershotByADrain) {
  // Pause mid-burst: completions past the deadline must not be fused
  // early, the clock must stop exactly at the deadline, and resuming
  // must finish identically to the unbatched engine.
  const BurstTrace batched = run_burst(true, /*deadline_sec=*/0.005);
  const BurstTrace unbatched = run_burst(false, /*deadline_sec=*/0.005);
  EXPECT_EQ(batched, unbatched);
  bool saw_pause = false;
  for (const auto& [tag, at] : batched.log) {
    if (tag == "pause") {
      saw_pause = true;
      EXPECT_DOUBLE_EQ(at, 0.005);
    }
    // Nothing after time 5 ms may appear before the pause entry.
    if (!saw_pause) EXPECT_LE(at, 0.005) << tag;
  }
  EXPECT_TRUE(saw_pause);
}

TEST(LinkBatching, EscapeHatchDisablesFusion) {
  sim::reset_hotpath_counters();
  (void)run_burst(true);
  EXPECT_GT(sim::aggregated_hotpath_counters().batch_drained, 0u);
  sim::reset_hotpath_counters();
  (void)run_burst(false);
  EXPECT_EQ(sim::aggregated_hotpath_counters().batch_drained, 0u);
}

}  // namespace
}  // namespace corelite::net

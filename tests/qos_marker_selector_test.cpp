// Unit tests for the two weighted-fair marker selection mechanisms:
// the §2.2 circular cache and the §3.2 stateless r_av/w_av/deficit
// scheme, including the statistical proportionality property both must
// satisfy (feedback per flow proportional to normalized rate).
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "net/packet.h"
#include "qos/marker_selector.h"
#include "sim/random.h"

namespace corelite::qos {
namespace {

net::MarkerInfo marker(net::FlowId flow, double rate, net::NodeId edge = 0) {
  return net::MarkerInfo{edge, flow, rate};
}

// ---------------------------------------------------------------------------
// MarkerCacheSelector

TEST(MarkerCache, HoldsMostRecentMarkers) {
  sim::Rng rng{1};
  MarkerCacheSelector sel{4, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  for (net::FlowId f = 1; f <= 10; ++f) sel.on_marker(marker(f, 1.0), nop);
  EXPECT_EQ(sel.cached(), 4u);
}

TEST(MarkerCache, NoFeedbackWithoutCongestion) {
  sim::Rng rng{1};
  MarkerCacheSelector sel{16, rng};
  int feedbacks = 0;
  MarkerSelector::FeedbackFn count = [&](const net::MarkerInfo&) { ++feedbacks; };
  for (net::FlowId f = 1; f <= 10; ++f) sel.on_marker(marker(f, 1.0), count);
  sel.on_epoch(0.0, count);
  EXPECT_EQ(feedbacks, 0);
}

TEST(MarkerCache, SendsRequestedCount) {
  sim::Rng rng{1};
  MarkerCacheSelector sel{100, rng};
  int feedbacks = 0;
  MarkerSelector::FeedbackFn count = [&](const net::MarkerInfo&) { ++feedbacks; };
  for (int i = 0; i < 100; ++i) sel.on_marker(marker(1, 1.0), count);
  sel.on_epoch(7.0, count);
  EXPECT_EQ(feedbacks, 7);
  EXPECT_EQ(sel.feedback_count(), 7u);
}

TEST(MarkerCache, FractionalCountRoundsProbabilistically) {
  sim::Rng rng{1};
  MarkerCacheSelector sel{100, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  int total = 0;
  MarkerSelector::FeedbackFn count = [&](const net::MarkerInfo&) { ++total; };
  const int rounds = 2000;
  for (int i = 0; i < rounds; ++i) {
    for (int j = 0; j < 5; ++j) sel.on_marker(marker(1, 1.0), nop);
    sel.on_epoch(0.5, count);
  }
  // E[total] = 0.5 * rounds; allow 10%.
  EXPECT_NEAR(static_cast<double>(total), 0.5 * rounds, 0.1 * rounds);
}

TEST(MarkerCache, FeedbackCappedAtEpochArrivals) {
  // F_n may spike far beyond the marker arrival rate during transients;
  // the cache must not amplify feedback beyond what actually arrived.
  sim::Rng rng{1};
  MarkerCacheSelector sel{256, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  for (int i = 0; i < 200; ++i) sel.on_marker(marker(1, 1.0), nop);
  sel.on_epoch(0.0, nop);  // roll the epoch: history cached, counter reset
  for (int i = 0; i < 10; ++i) sel.on_marker(marker(1, 1.0), nop);
  int feedbacks = 0;
  sel.on_epoch(300.0, [&](const net::MarkerInfo&) { ++feedbacks; });
  EXPECT_EQ(feedbacks, 10);
}

TEST(MarkerCache, FeedbackProportionalToCachePresence) {
  // Flow A inserts 3x the markers of flow B (3x the normalized rate);
  // uniform sampling must feed back ~3x as often to A.
  sim::Rng rng{7};
  MarkerCacheSelector sel{400, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};

  std::map<net::FlowId, int> hits;
  MarkerSelector::FeedbackFn tally = [&](const net::MarkerInfo& m) { ++hits[m.flow]; };
  for (int round = 0; round < 500; ++round) {
    for (int i = 0; i < 6; ++i) sel.on_marker(marker(1, 3.0), nop);
    for (int i = 0; i < 2; ++i) sel.on_marker(marker(2, 1.0), nop);
    sel.on_epoch(4.0, tally);
  }
  ASSERT_GT(hits[2], 0);
  const double ratio = static_cast<double>(hits[1]) / hits[2];
  EXPECT_NEAR(ratio, 3.0, 0.5);
}

TEST(MarkerCache, RequestBeyondCacheSendsAll) {
  sim::Rng rng{1};
  MarkerCacheSelector sel{8, rng};
  for (int i = 0; i < 8; ++i) sel.on_marker(marker(1, 1.0), [](const net::MarkerInfo&) {});
  int feedbacks = 0;
  sel.on_epoch(100.0, [&](const net::MarkerInfo&) { ++feedbacks; });
  EXPECT_EQ(feedbacks, 8);
}

// ---------------------------------------------------------------------------
// StatelessSelector

TEST(Stateless, RunningAverageTracksLabels) {
  sim::Rng rng{1};
  StatelessSelector sel{0.1, 0.25, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  sel.on_marker(marker(1, 10.0), nop);
  sel.on_epoch(0.0, nop);
  EXPECT_DOUBLE_EQ(sel.running_avg_rate(), 10.0);  // initialized to first epoch mean
  for (int e = 0; e < 100; ++e) {
    for (int i = 0; i < 20; ++i) sel.on_marker(marker(1, 20.0), nop);
    sel.on_epoch(0.0, nop);
  }
  EXPECT_NEAR(sel.running_avg_rate(), 20.0, 0.1);
}

TEST(Stateless, RunningAverageIsMarkerWeighted) {
  // Two flows, labels 15 and 5, markers in 3:1 proportion: the epoch
  // mean is (3*15 + 1*5)/4 = 12.5 — biased toward the faster flow, the
  // overestimation property §3.2 relies on.
  sim::Rng rng{1};
  StatelessSelector sel{1.0, 0.25, rng};  // gain 1: r_av = last epoch mean
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  for (int i = 0; i < 3; ++i) sel.on_marker(marker(1, 15.0), nop);
  sel.on_marker(marker(2, 5.0), nop);
  sel.on_epoch(0.0, nop);
  EXPECT_DOUBLE_EQ(sel.running_avg_rate(), 12.5);
}

TEST(Stateless, NoFeedbackWhenUncongested) {
  sim::Rng rng{1};
  StatelessSelector sel{0.1, 0.25, rng};
  int feedbacks = 0;
  MarkerSelector::FeedbackFn count = [&](const net::MarkerInfo&) { ++feedbacks; };
  sel.on_epoch(0.0, count);  // p_w stays 0
  for (int i = 0; i < 100; ++i) sel.on_marker(marker(1, 10.0), count);
  EXPECT_EQ(feedbacks, 0);
}

TEST(Stateless, OnlyAboveAverageFlowsReceiveFeedback) {
  sim::Rng rng{3};
  StatelessSelector sel{0.01, 0.25, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  // Establish r_av ~ 10 (mix of 5 and 15 in marker-rate proportion).
  for (int i = 0; i < 150; ++i) sel.on_marker(marker(1, 15.0), nop);
  for (int i = 0; i < 50; ++i) sel.on_marker(marker(2, 5.0), nop);
  sel.on_epoch(20.0, nop);  // congested: p_w = 20 / w_av

  std::map<net::FlowId, int> hits;
  MarkerSelector::FeedbackFn tally = [&](const net::MarkerInfo& m) { ++hits[m.flow]; };
  for (int e = 0; e < 50; ++e) {
    for (int i = 0; i < 15; ++i) sel.on_marker(marker(1, 15.0), tally);
    for (int i = 0; i < 5; ++i) sel.on_marker(marker(2, 5.0), tally);
    sel.on_epoch(20.0, tally);
  }
  EXPECT_GT(hits[1], 0);
  // The below-average flow is never throttled (the paper's selective
  // punishment property).
  EXPECT_EQ(hits[2], 0);
}

TEST(Stateless, DeficitSwapsPreserveFeedbackVolume) {
  // With a mix of labels, markers "selected" for a below-average flow are
  // swapped to above-average ones; total volume stays near p_w * markers.
  sim::Rng rng{11};
  StatelessSelector sel{0.001, 0.5, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  // Interleave arrivals (3:1) the way markers interleave on a real link;
  // a deficit incurred on a below-average marker can then be repaid by a
  // following above-average one within the same epoch.
  auto feed_epoch = [&](const MarkerSelector::FeedbackFn& fn) {
    for (int i = 0; i < 10; ++i) {
      sel.on_marker(marker(1, 15.0), fn);
      sel.on_marker(marker(1, 15.0), fn);
      sel.on_marker(marker(1, 15.0), fn);
      sel.on_marker(marker(2, 5.0), fn);
    }
  };
  feed_epoch(nop);
  sel.on_epoch(8.0, nop);  // request 8 markers/epoch

  int total = 0;
  MarkerSelector::FeedbackFn tally = [&](const net::MarkerInfo&) { ++total; };
  const int epochs = 300;
  for (int e = 0; e < epochs; ++e) {
    feed_epoch(tally);
    sel.on_epoch(8.0, tally);
  }
  // Expect close to the requested 8 per epoch (within 25%).
  EXPECT_NEAR(static_cast<double>(total) / epochs, 8.0, 2.0);
}

TEST(Stateless, SelectionProbabilityFollowsFnOverWav) {
  sim::Rng rng{1};
  StatelessSelector sel{0.1, 1.0, rng};  // wav gain 1: wav = last epoch count
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  for (int i = 0; i < 40; ++i) sel.on_marker(marker(1, 10.0), nop);
  sel.on_epoch(10.0, nop);
  EXPECT_NEAR(sel.running_avg_markers(), 40.0, 1e-9);
  EXPECT_NEAR(sel.selection_probability(), 0.25, 1e-9);
}

TEST(Stateless, DeficitResetsEachEpoch) {
  sim::Rng rng{1};
  StatelessSelector sel{0.001, 0.5, rng};
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  // Big r_av, then feed only below-average markers with certain selection:
  // deficit grows within the epoch...
  sel.on_marker(marker(1, 100.0), nop);
  sel.on_epoch(50.0, nop);  // p_w huge -> every marker "selected"
  for (int i = 0; i < 20; ++i) sel.on_marker(marker(2, 1.0), nop);
  EXPECT_GT(sel.deficit(), 0);
  // ...and is cleared at the boundary (paper §3.2: per-epoch state only).
  sel.on_epoch(50.0, nop);
  EXPECT_EQ(sel.deficit(), 0);
}

TEST(Stateless, ProportionalFeedbackAcrossManyFlows) {
  // Five flows with normalized rates 1..5 over many congested epochs:
  // feedback counts must order by rate, and the top flow must receive
  // a disproportionally large share (selective throttling).
  sim::Rng rng{23};
  sim::Rng arrival_order{99};
  StatelessSelector sel{0.01, 0.25, rng};
  std::map<net::FlowId, int> hits;
  MarkerSelector::FeedbackFn tally = [&](const net::MarkerInfo& m) { ++hits[m.flow]; };
  MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  auto epoch = [&](const MarkerSelector::FeedbackFn& fn) {
    // Marker counts proportional to normalized rates (edge behaviour),
    // shuffled into a random interleaving like real link arrivals.
    std::vector<net::FlowId> arrivals;
    for (net::FlowId f = 1; f <= 5; ++f) {
      for (int i = 0; i < static_cast<int>(f); ++i) arrivals.push_back(f);
    }
    for (std::size_t i = arrivals.size(); i > 1; --i) {
      std::swap(arrivals[i - 1],
                arrivals[static_cast<std::size_t>(arrival_order.uniform_int(0, i - 1))]);
    }
    for (net::FlowId f : arrivals) sel.on_marker(marker(f, static_cast<double>(f)), fn);
  };
  epoch(nop);
  sel.on_epoch(5.0, nop);
  for (int e = 0; e < 400; ++e) {
    epoch(tally);
    sel.on_epoch(5.0, tally);
  }
  // r_av converges to the marker-weighted mean ~3.67: flows 1-3 are
  // below it and protected; flows 4 and 5 take all the feedback.
  EXPECT_EQ(hits[1], 0);
  EXPECT_EQ(hits[2], 0);
  EXPECT_GT(hits[5], hits[4]);
}

}  // namespace
}  // namespace corelite::qos

// Unit tests for the FRED queue: per-flow buffering caps, strike-based
// policing of non-adaptive flows, state lifetime, and the fairness
// property that distinguishes it from plain RED.
#include <gtest/gtest.h>

#include "net/fred_queue.h"
#include "sim/random.h"

namespace corelite::net {
namespace {

Packet data_packet(FlowId flow) {
  Packet p;
  p.kind = PacketKind::Data;
  p.flow = flow;
  p.size = sim::DataSize::kilobytes(1);
  return p;
}

Packet marker_packet(FlowId flow) {
  Packet p;
  p.kind = PacketKind::Marker;
  p.flow = flow;
  p.size = sim::DataSize::zero();
  return p;
}

const sim::SimTime t0 = sim::SimTime::zero();

FredQueue::Config small_cfg() {
  FredQueue::Config cfg;
  cfg.capacity_data_packets = 40;
  cfg.min_thresh = 5.0;
  cfg.max_thresh = 15.0;
  cfg.min_q = 2;
  return cfg;
}

TEST(FredQueue, EveryFlowMayBufferMinQ) {
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  // Ten flows, two packets each: all accepted (within min_q, avg low).
  for (FlowId f = 1; f <= 10; ++f) {
    EXPECT_TRUE(q.enqueue(data_packet(f), t0));
    EXPECT_TRUE(q.enqueue(data_packet(f), t0));
  }
  EXPECT_EQ(q.data_packet_count(), 20u);
}

TEST(FredQueue, SingleFlowCappedAtMaxQ) {
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  // One flow floods: it may hold at most max_q = max(min_q, minth) = 5.
  int accepted = 0;
  for (int i = 0; i < 30; ++i) {
    if (q.enqueue(data_packet(1), t0)) ++accepted;
  }
  EXPECT_EQ(accepted, 5);
  EXPECT_EQ(q.queued_for(1), 5u);
}

TEST(FredQueue, PerFlowStateOnlyWhileBuffered) {
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  ASSERT_TRUE(q.enqueue(data_packet(1), t0));
  ASSERT_TRUE(q.enqueue(data_packet(2), t0));
  EXPECT_EQ(q.tracked_flows(), 2u);
  (void)q.dequeue(t0);
  (void)q.dequeue(t0);
  EXPECT_EQ(q.tracked_flows(), 0u);  // FRED forgets drained flows
}

TEST(FredQueue, ControlPacketsBypass) {
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  for (int i = 0; i < 30; ++i) (void)q.enqueue(data_packet(1), t0);
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(q.enqueue(marker_packet(1), t0));
  EXPECT_EQ(q.tracked_flows(), 1u);
}

TEST(FredQueue, HardCapacityRespected) {
  sim::Rng rng{1};
  auto cfg = small_cfg();
  cfg.capacity_data_packets = 10;
  cfg.min_thresh = 50.0;  // disable RED-zone drops
  cfg.max_thresh = 100.0;
  FredQueue q{cfg, rng};
  int accepted = 0;
  for (FlowId f = 1; f <= 20; ++f) {
    for (int i = 0; i < 2; ++i) {
      if (q.enqueue(data_packet(f), t0)) ++accepted;
    }
  }
  EXPECT_LE(q.data_packet_count(), 10u);
  EXPECT_EQ(accepted, 10);
}

TEST(FredQueue, GreedyFlowPunishedPoliteFlowProtected) {
  // A greedy flow hammers the queue while a polite flow keeps a single
  // packet buffered.  FRED must keep accepting the polite flow's
  // packets while rejecting most of the greedy flow's.
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  int greedy_ok = 0;
  int greedy_try = 0;
  int polite_ok = 0;
  int polite_try = 0;
  double t = 0.0;
  for (int round = 0; round < 400; ++round) {
    t += 0.002;
    // Greedy: four arrivals per service; polite: one per four services.
    for (int i = 0; i < 4; ++i) {
      ++greedy_try;
      if (q.enqueue(data_packet(1), sim::SimTime::seconds(t))) ++greedy_ok;
    }
    if (round % 4 == 0) {
      ++polite_try;
      if (q.enqueue(data_packet(2), sim::SimTime::seconds(t))) ++polite_ok;
    }
    (void)q.dequeue(sim::SimTime::seconds(t));
  }
  const double greedy_frac = static_cast<double>(greedy_ok) / greedy_try;
  const double polite_frac = static_cast<double>(polite_ok) / polite_try;
  EXPECT_GT(polite_frac, 0.75);
  EXPECT_LT(greedy_frac, 0.4);
}

TEST(FredQueue, FifoOrderPreserved) {
  sim::Rng rng{1};
  FredQueue q{small_cfg(), rng};
  Packet a = data_packet(1);
  a.uid = 1;
  Packet b = data_packet(2);
  b.uid = 2;
  ASSERT_TRUE(q.enqueue(std::move(a), t0));
  ASSERT_TRUE(q.enqueue(std::move(b), t0));
  EXPECT_EQ(q.dequeue(t0)->uid, 1u);
  EXPECT_EQ(q.dequeue(t0)->uid, 2u);
}

}  // namespace
}  // namespace corelite::net

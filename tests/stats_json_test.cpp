// Tests for the JSON run-summary writer.
#include <gtest/gtest.h>

#include <limits>
#include <sstream>

#include "stats/json_writer.h"

namespace corelite::stats {
namespace {

TEST(Json, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(json_escape(std::string_view{"\x01", 1}), "\\u0001");
}

TEST(Json, NumbersAndNonFinite) {
  EXPECT_EQ(json_number(1.5), "1.5");
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
}

TEST(Json, RunSummaryIsWellFormed) {
  FlowTracker tracker;
  tracker.declare_flow(1, 2.0);
  tracker.record_rate(1, sim::SimTime::seconds(0), 10.0);
  tracker.record_rate(1, sim::SimTime::seconds(5), 30.0);
  for (int i = 0; i < 20; ++i) {
    tracker.on_delivered(1, sim::TimeDelta::millis(50));
  }
  tracker.on_sent(1);
  tracker.declare_flow(2, 1.0);

  RunSummaryJson meta;
  meta.scenario = "fig5";
  meta.mechanism = "corelite";
  meta.duration_sec = 10.0;
  meta.seed = 7;
  meta.events = 1234;
  meta.total_drops = 5;
  meta.window_start = 0.0;
  meta.window_end = 10.0;

  std::ostringstream os;
  write_run_json(os, meta, tracker);
  const std::string out = os.str();

  // Structural checks (no JSON parser available; validate key content).
  EXPECT_NE(out.find("\"scenario\": \"fig5\""), std::string::npos);
  EXPECT_NE(out.find("\"mechanism\": \"corelite\""), std::string::npos);
  EXPECT_NE(out.find("\"seed\": 7"), std::string::npos);
  EXPECT_NE(out.find("\"flows\": ["), std::string::npos);
  EXPECT_NE(out.find("\"id\": 1"), std::string::npos);
  EXPECT_NE(out.find("\"id\": 2"), std::string::npos);
  EXPECT_NE(out.find("\"delivered\": 20"), std::string::npos);
  // Average over [0,10] of the step series 10 (0-5s) then 30 (5-10s) = 20.
  EXPECT_NE(out.find("\"avg_rate_pps\": 20"), std::string::npos);
  // Balanced braces/brackets as a cheap well-formedness proxy.
  EXPECT_EQ(std::count(out.begin(), out.end(), '{'), std::count(out.begin(), out.end(), '}'));
  EXPECT_EQ(std::count(out.begin(), out.end(), '['), std::count(out.begin(), out.end(), ']'));
}

}  // namespace
}  // namespace corelite::stats

// Unit tests for the DECbit/ECN binary-marking baseline.
#include <gtest/gtest.h>

#include "net/network.h"
#include "qos/ecn.h"
#include "sim/simulator.h"

namespace corelite::qos {
namespace {

struct EcnFixture {
  sim::Simulator simulator{5};
  net::Network network{simulator};
  net::NodeId a = network.add_node("a");
  net::NodeId b = network.add_node("b");
  net::Link* link = nullptr;

  EcnFixture() {
    link = &network.connect(a, b, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 40);
    network.connect(b, a, sim::Rate::mbps(4), sim::TimeDelta::millis(1), 40);
    network.build_routes();
  }

  net::Packet data(net::FlowId flow) {
    net::Packet p;
    p.uid = network.next_packet_uid();
    p.kind = net::PacketKind::Data;
    p.flow = flow;
    p.src = a;
    p.dst = b;
    p.size = sim::DataSize::kilobytes(1);
    return p;
  }
};

TEST(EcnPolicy, NoMarkingWhileQueueShort) {
  EcnFixture f;
  EcnMarkPolicy policy{*f.link, 8.0, 0.5};
  for (int i = 0; i < 20; ++i) {
    auto p = f.data(1);
    EXPECT_TRUE(policy.admit(p, f.simulator.now()));
    EXPECT_FALSE(p.ecn);  // queue is empty; average stays 0
  }
  EXPECT_EQ(policy.marked(), 0u);
}

TEST(EcnPolicy, MarksWhenAverageExceedsThreshold) {
  EcnFixture f;
  // Fill the link's queue without letting the simulator drain it.
  for (int i = 0; i < 30; ++i) f.link->send(f.data(1));
  ASSERT_GT(f.link->queued_data_packets(), 8u);
  EcnMarkPolicy policy{*f.link, 8.0, 0.5};
  bool marked = false;
  for (int i = 0; i < 10; ++i) {
    auto p = f.data(1);
    EXPECT_TRUE(policy.admit(p, f.simulator.now()));  // never drops
    marked |= p.ecn;
  }
  EXPECT_TRUE(marked);
  EXPECT_GT(policy.average_queue(), 8.0);
}

TEST(EcnCore, MarksOnlyUnderCongestionEndToEnd) {
  EcnFixture f;
  CoreliteConfig cfg;
  EcnCoreRouter core{f.network, f.a, cfg};
  int marked = 0;
  int total = 0;
  f.network.node(f.b).set_local_sink([&](net::Packet&& p) {
    if (p.is_data()) {
      ++total;
      marked += p.ecn ? 1 : 0;
    }
  });
  // Offer 1000 pkt/s on a 500 pkt/s link for 2 s: sustained congestion.
  f.simulator.every(sim::TimeDelta::millis(1), [&f] { f.network.inject(f.a, f.data(1)); });
  f.simulator.run_until(sim::SimTime::seconds(2));
  EXPECT_GT(total, 500);
  EXPECT_GT(marked, total / 2);  // most survivors crossed a long queue
  EXPECT_GT(core.total_marked(), 0u);
}

TEST(EcnEgress, EchoesOnlyMarkedPackets) {
  EcnFixture f;
  EcnEgressAgent agent{f.network, f.b};
  int feedback_at_a = 0;
  f.network.node(f.a).set_local_sink([&](net::Packet&& p) {
    if (p.kind == net::PacketKind::Feedback) ++feedback_at_a;
  });
  auto plain = f.data(7);
  agent.on_data(plain);
  auto tagged = f.data(7);
  tagged.ecn = true;
  agent.on_data(tagged);
  f.simulator.run();
  EXPECT_EQ(agent.echoes_sent(), 1u);
  EXPECT_EQ(feedback_at_a, 1);
}

}  // namespace
}  // namespace corelite::qos

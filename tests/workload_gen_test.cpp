// Tests for the generated-workload subsystem: topology generators,
// flow-population generation, the gen-* scenario names and the
// generated-scenario runner.
//
// The digest goldens pin the exact FNV-1a value of each generator's
// output: they fail loudly if a generator's output changes AT ALL,
// which is the determinism contract sweeps rely on (workers regenerate
// populations independently and must land on bit-identical workloads).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "net/flow.h"
#include "runner/sweep.h"
#include "scenario/flow_gen.h"
#include "scenario/scenario.h"
#include "scenario/topology_gen.h"

namespace sc = corelite::scenario;
namespace rn = corelite::runner;

// ---------------------------------------------------------------------------
// Topology generators.

TEST(TopologyGen, ParkingLotShape) {
  const auto t = sc::make_parking_lot(8);
  EXPECT_EQ(t.name, "pl8");
  EXPECT_EQ(t.routers, 9u);
  EXPECT_EQ(t.links.size(), 8u);
  EXPECT_EQ(t.bottlenecks.size(), 8u);  // every chain link
  EXPECT_EQ(t.sources.size(), 8u);
  EXPECT_EQ(t.sinks.size(), 8u);
  EXPECT_TRUE(t.connected());
}

TEST(TopologyGen, FatTreeShape) {
  const std::size_t k = 4;
  const auto t = sc::make_fat_tree(k);
  EXPECT_EQ(t.name, "ft4");
  // (k/2)^2 cores + k pods x (k/2 agg + k/2 edge).
  EXPECT_EQ(t.routers, (k / 2) * (k / 2) + k * k);
  // Each pod: k/2 aggs x k/2 core uplinks + k/2 edges x k/2 agg links.
  EXPECT_EQ(t.links.size(), k * 2 * (k / 2) * (k / 2));
  EXPECT_EQ(t.bottlenecks.size(), k * (k / 2) * (k / 2));  // agg-core tier
  EXPECT_EQ(t.sources.size(), k * (k / 2));                // the edge routers
  EXPECT_EQ(t.sinks.size(), k * (k / 2));
  EXPECT_TRUE(t.connected());
}

TEST(TopologyGen, IspConnectedWithChords) {
  const auto t = sc::make_isp(32, 7);
  EXPECT_EQ(t.name, "isp32");
  EXPECT_EQ(t.routers, 32u);
  EXPECT_GE(t.links.size(), 31u);  // spanning tree at minimum
  EXPECT_TRUE(t.connected());
  EXPECT_FALSE(t.bottlenecks.empty());
  EXPECT_EQ(t.sources.size(), 32u);
  for (std::size_t idx : t.bottlenecks) EXPECT_LT(idx, t.links.size());
}

TEST(TopologyGen, IspDeterministicInSeed) {
  const auto a = sc::make_isp(32, 7);
  const auto b = sc::make_isp(32, 7);
  const auto c = sc::make_isp(32, 8);
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_NE(a.digest(), c.digest());
}

TEST(TopologyGen, DigestCoversLinkParameters) {
  const auto base = sc::make_parking_lot(3);
  sc::TopologyGenConfig cfg;
  cfg.queue_capacity_packets = 80;
  const auto tweaked = sc::make_parking_lot(3, cfg);
  EXPECT_NE(base.digest(), tweaked.digest());
}

// Golden digests: the exact output of each generator family is pinned.
// A change here means every previously published generated-scenario
// result is invalidated — bump deliberately, never casually.
TEST(TopologyGen, DigestGoldens) {
  EXPECT_EQ(sc::make_parking_lot(8).digest(), 6236516109183052463ULL);
  EXPECT_EQ(sc::make_fat_tree(4).digest(), 11096844073701037376ULL);
  EXPECT_EQ(sc::make_isp(32, 7).digest(), 16569675608704102840ULL);
}

// ---------------------------------------------------------------------------
// Flow-population generation.

TEST(FlowGen, SameSeedByteIdentical) {
  const auto topo = sc::make_parking_lot(8);
  sc::FlowGenConfig cfg;
  cfg.num_flows = 200;
  const auto a = sc::generate_flows(topo, cfg, 80.0, 42);
  const auto b = sc::generate_flows(topo, cfg, 80.0, 42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].src_router, b[i].src_router);
    EXPECT_EQ(a[i].dst_router, b[i].dst_router);
    EXPECT_EQ(a[i].weight, b[i].weight);
    ASSERT_EQ(a[i].windows.size(), b[i].windows.size());
    for (std::size_t w = 0; w < a[i].windows.size(); ++w) {
      EXPECT_EQ(a[i].windows[w].start.sec(), b[i].windows[w].start.sec());
      EXPECT_EQ(a[i].windows[w].stop.sec(), b[i].windows[w].stop.sec());
    }
  }
  EXPECT_EQ(sc::flows_digest(a), sc::flows_digest(b));
  EXPECT_NE(sc::flows_digest(a), sc::flows_digest(sc::generate_flows(topo, cfg, 80.0, 43)));
}

TEST(FlowGen, PopulationsAreValidOnEveryFamily) {
  const std::vector<sc::GeneratedTopology> topos{
      sc::make_parking_lot(4), sc::make_fat_tree(4), sc::make_isp(16, 7)};
  for (const auto& topo : topos) {
    sc::FlowGenConfig cfg;
    cfg.num_flows = 300;
    const auto flows = sc::generate_flows(topo, cfg, 80.0, 1);
    ASSERT_EQ(flows.size(), cfg.num_flows);
    const std::set<std::uint32_t> sources(topo.sources.begin(), topo.sources.end());
    const std::set<std::uint32_t> sinks(topo.sinks.begin(), topo.sinks.end());
    for (std::size_t i = 0; i < flows.size(); ++i) {
      const auto& f = flows[i];
      EXPECT_EQ(f.id, static_cast<corelite::net::FlowId>(i + 1));  // dense, 1-based
      EXPECT_TRUE(sources.count(f.src_router) == 1) << topo.name;
      EXPECT_TRUE(sinks.count(f.dst_router) == 1) << topo.name;
      EXPECT_NE(f.src_router, f.dst_router) << topo.name;
      EXPECT_EQ(f.weight, cfg.weight_cycle[i % cfg.weight_cycle.size()]);
      EXPECT_FALSE(f.windows.empty());
      EXPECT_LE(f.windows.size(), cfg.max_windows);
      EXPECT_TRUE(corelite::net::valid_activity_windows(f.windows)) << topo.name;
    }
  }
}

TEST(FlowGen, NonChurnFlowsRunToTheEnd) {
  sc::FlowGenConfig cfg;
  cfg.num_flows = 50;
  cfg.churn = false;
  const auto flows = sc::generate_flows(sc::make_parking_lot(3), cfg, 80.0, 1);
  for (const auto& f : flows) {
    ASSERT_EQ(f.windows.size(), 1u);
    EXPECT_LT(f.windows[0].start.sec(), 80.0);
    EXPECT_EQ(f.windows[0].stop, corelite::sim::SimTime::infinite());
  }
}

TEST(FlowGen, DigestGolden) {
  sc::FlowGenConfig cfg;
  cfg.num_flows = 100;
  const auto flows = sc::generate_flows(sc::make_parking_lot(8), cfg, 80.0, 1);
  EXPECT_EQ(sc::flows_digest(flows), 11560722300537787670ULL);
}

// ---------------------------------------------------------------------------
// Scenario names and sweep composition.

TEST(GenScenarioNames, ParseAndReject) {
  for (const char* name : {"gen-pl8-1000", "gen-ft4-500", "gen-isp32-100"}) {
    const auto spec = sc::scenario_by_name(name, sc::Mechanism::Corelite);
    ASSERT_TRUE(spec.has_value()) << name;
    ASSERT_TRUE(spec->generated.has_value()) << name;
    EXPECT_EQ(spec->num_flows, spec->generated->flows.num_flows) << name;
    EXPECT_TRUE(spec->generated->topology.connected()) << name;
  }
  EXPECT_EQ(sc::scenario_by_name("gen-pl8-1000", sc::Mechanism::Corelite)->num_flows, 1000u);
  for (const char* bad :
       {"gen-pl0-10", "gen-pl8-0", "gen-pl8-", "gen-ft3-10", "gen-ft0-10", "gen-isp1-10",
        "gen-xx4-10", "gen-pl8", "gen-", "gen-pl8-1e3", "gen-pl-10", "gen-pl8--10"}) {
    EXPECT_FALSE(sc::scenario_by_name(bad, sc::Mechanism::Corelite).has_value()) << bad;
  }
}

TEST(GenScenarioNames, NamedIspTopologyIsStable) {
  // The name must denote ONE topology instance: only the flow
  // population varies with the run seed.
  const auto a = sc::scenario_by_name("gen-isp32-100", sc::Mechanism::Corelite);
  const auto b = sc::scenario_by_name("gen-isp32-100", sc::Mechanism::Csfq);
  ASSERT_TRUE(a.has_value() && b.has_value());
  EXPECT_EQ(a->generated->topology.digest(), b->generated->topology.digest());
}

TEST(SweepBuildSpec, OverridesResizeGeneratedPopulation) {
  rn::RunDescriptor d;
  d.scenario = "gen-pl4-100";
  d.mechanism = sc::Mechanism::Corelite;
  d.num_flows = 37;
  d.weights = {1.0, 4.0};
  d.duration_sec = 12.0;
  d.seed = 99;
  const auto spec = rn::build_spec(d);
  ASSERT_TRUE(spec.has_value());
  ASSERT_TRUE(spec->generated.has_value());
  EXPECT_EQ(spec->num_flows, 37u);
  EXPECT_EQ(spec->generated->flows.num_flows, 37u);
  EXPECT_EQ(spec->generated->flows.weight_cycle, (std::vector<double>{1.0, 4.0}));
  EXPECT_EQ(spec->duration.sec(), 12.0);
  EXPECT_EQ(spec->seed, 99u);
}

// ---------------------------------------------------------------------------
// The generated-scenario runner.

namespace {

sc::ScenarioSpec small_gen_spec(sc::Mechanism m, const char* name = "gen-pl4-60") {
  auto spec = sc::scenario_by_name(name, m);
  EXPECT_TRUE(spec.has_value());
  spec->duration = corelite::sim::SimTime::seconds(8);
  return *spec;
}

}  // namespace

TEST(GeneratedRunner, DeterministicResultDigest) {
  const auto spec = small_gen_spec(sc::Mechanism::Corelite);
  const auto a = sc::run_paper_scenario(spec);
  const auto b = sc::run_paper_scenario(spec);
  EXPECT_EQ(rn::result_digest(a), rn::result_digest(b));
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_GT(a.events_processed, 0u);
}

TEST(GeneratedRunner, SeedChangesThePopulationAndTheRun) {
  auto spec = small_gen_spec(sc::Mechanism::Corelite);
  const auto a = sc::run_paper_scenario(spec);
  spec.seed = 2;
  const auto b = sc::run_paper_scenario(spec);
  EXPECT_NE(rn::result_digest(a), rn::result_digest(b));
}

TEST(GeneratedRunner, DeliversTrafficUnderEveryMechanismFamily) {
  for (const auto m : {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::DropTail,
                       sc::Mechanism::Wfq, sc::Mechanism::EcnBit}) {
    const auto spec = small_gen_spec(m);
    const auto r = sc::run_paper_scenario(spec);
    EXPECT_EQ(r.unrouteable, 0u) << sc::mechanism_name(m);
    EXPECT_GT(r.tracker.total_delivered(), 0u) << sc::mechanism_name(m);
    EXPECT_EQ(r.tracker.flow_count(), spec.num_flows) << sc::mechanism_name(m);
    // Telemetry surface mirrors the designated bottlenecks.
    EXPECT_EQ(r.queue_series.size(), spec.generated->topology.bottlenecks.size())
        << sc::mechanism_name(m);
  }
}

TEST(GeneratedRunner, CoreStateOnlyForStatefulDisciplines) {
  const auto stateless = sc::run_paper_scenario(small_gen_spec(sc::Mechanism::Corelite));
  EXPECT_EQ(stateless.core_flow_state, 0u);
  const auto stateful = sc::run_paper_scenario(small_gen_spec(sc::Mechanism::Wfq));
  EXPECT_GT(stateful.core_flow_state, 0u);
}

TEST(GeneratedRunner, CountersOnlyModeKeepsCountersExact) {
  auto spec = small_gen_spec(sc::Mechanism::Corelite);
  const auto with_series = sc::run_paper_scenario(spec);
  spec.generated->flows.record_series = false;
  const auto counters_only = sc::run_paper_scenario(spec);
  // Same simulation, same counters — only the stored series differ.
  EXPECT_EQ(with_series.events_processed, counters_only.events_processed);
  EXPECT_EQ(with_series.total_data_drops, counters_only.total_data_drops);
  EXPECT_EQ(with_series.tracker.total_delivered(), counters_only.tracker.total_delivered());
  for (const auto& [id, fs] : counters_only.tracker.all()) {
    EXPECT_TRUE(fs.allotted_rate.points().empty()) << id;
    EXPECT_EQ(fs.delivered, with_series.tracker.series(id).delivered) << id;
  }
}

TEST(GeneratedRunner, InstrumentHookSeesBottleneckLinks) {
  auto spec = small_gen_spec(sc::Mechanism::Corelite);
  std::size_t seen = 0;
  spec.instrument = [&seen](corelite::net::Network&,
                            const std::vector<corelite::net::Link*>& congested) {
    seen = congested.size();
    for (const auto* l : congested) EXPECT_NE(l, nullptr);
  };
  (void)sc::run_paper_scenario(spec);
  EXPECT_EQ(seen, spec.generated->topology.bottlenecks.size());
}

TEST(GeneratedRunner, IdealRatesOracleDeclinesGeneratedGraphs) {
  const auto spec = small_gen_spec(sc::Mechanism::Corelite);
  EXPECT_TRUE(sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(4)).empty());
}

TEST(GeneratedRunner, SweepExecuteRunScoresGeneratedCells) {
  rn::RunDescriptor d;
  d.scenario = "gen-pl4-60";
  d.mechanism = sc::Mechanism::Corelite;
  d.duration_sec = 8.0;
  d.seed = 1;
  const auto r = rn::execute_run(d);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.delivered, 0u);
  EXPECT_GT(r.jain, 0.0);
  EXPECT_LE(r.jain, 1.0 + 1e-12);
  EXPECT_EQ(r.avg_rate_pps.size(), 60u);
}

// Google-benchmark micro-benchmarks of the per-packet hot paths: these
// are the operations a software router would execute per packet/marker,
// so their cost bounds achievable line rate.
#include <benchmark/benchmark.h>

#include <memory>

#include "csfq/core.h"
#include "csfq/rate_estimator.h"
#include "net/queue.h"
#include "qos/congestion_estimator.h"
#include "qos/marker_selector.h"
#include "scenario/scenario.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"

namespace {

using namespace corelite;

net::Packet make_data() {
  net::Packet p;
  p.kind = net::PacketKind::Data;
  p.flow = 1;
  p.size = sim::DataSize::kilobytes(1);
  p.label = 100.0;
  return p;
}

void BM_EventQueueScheduleRun(benchmark::State& state) {
  sim::EventQueue q;
  std::uint64_t t = 0;
  for (auto _ : state) {
    q.schedule(sim::SimTime::seconds(static_cast<double>(++t)), [] {});
    benchmark::DoNotOptimize(q.run_next());
  }
}
BENCHMARK(BM_EventQueueScheduleRun);

void BM_DropTailEnqueueDequeue(benchmark::State& state) {
  net::DropTailQueue q{64};
  const auto t = sim::SimTime::zero();
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.enqueue(make_data(), t));
    benchmark::DoNotOptimize(q.dequeue(t));
  }
}
BENCHMARK(BM_DropTailEnqueueDequeue);

void BM_RedEnqueueDequeue(benchmark::State& state) {
  sim::Rng rng{1};
  net::RedQueue q{net::RedQueue::Config{}, rng};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    benchmark::DoNotOptimize(q.enqueue(make_data(), sim::SimTime::seconds(t)));
    benchmark::DoNotOptimize(q.dequeue(sim::SimTime::seconds(t)));
  }
}
BENCHMARK(BM_RedEnqueueDequeue);

void BM_CongestionEstimatorUpdate(benchmark::State& state) {
  qos::CongestionEstimator est{8.0, 0.01, 500.0, 1.0};
  double t = 0.0;
  std::size_t len = 0;
  for (auto _ : state) {
    t += 0.0001;
    est.on_queue_length(++len % 40, sim::SimTime::seconds(t));
  }
}
BENCHMARK(BM_CongestionEstimatorUpdate);

void BM_StatelessSelectorOnMarker(benchmark::State& state) {
  sim::Rng rng{1};
  qos::StatelessSelector sel{0.1, 0.25, rng};
  const net::MarkerInfo m{0, 1, 50.0};
  qos::MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  sel.on_marker(m, nop);
  sel.on_epoch(5.0, nop);  // congested: the full per-marker path runs
  for (auto _ : state) {
    sel.on_marker(m, nop);
  }
}
BENCHMARK(BM_StatelessSelectorOnMarker);

void BM_MarkerCacheSelectorOnMarker(benchmark::State& state) {
  sim::Rng rng{1};
  qos::MarkerCacheSelector sel{256, rng};
  const net::MarkerInfo m{0, 1, 50.0};
  qos::MarkerSelector::FeedbackFn nop = [](const net::MarkerInfo&) {};
  for (auto _ : state) {
    sel.on_marker(m, nop);
  }
}
BENCHMARK(BM_MarkerCacheSelectorOnMarker);

void BM_CsfqAdmit(benchmark::State& state) {
  sim::Rng rng{1};
  csfq::CsfqConfig cfg;
  csfq::CsfqLinkPolicy policy{cfg, 500.0, rng};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.001;
    auto p = make_data();
    benchmark::DoNotOptimize(policy.admit(p, sim::SimTime::seconds(t)));
  }
}
BENCHMARK(BM_CsfqAdmit);

void BM_RateEstimatorOnArrival(benchmark::State& state) {
  csfq::ExponentialRateEstimator est{sim::TimeDelta::millis(100)};
  double t = 0.0;
  for (auto _ : state) {
    t += 0.002;
    benchmark::DoNotOptimize(est.on_arrival(1.0, sim::SimTime::seconds(t)));
  }
}
BENCHMARK(BM_RateEstimatorOnArrival);

// Whole-system: simulated-seconds-per-wall-second on the Figure-5 run.
void BM_FullScenarioSecond(benchmark::State& state) {
  for (auto _ : state) {
    auto spec = scenario::fig5_simultaneous_start(scenario::Mechanism::Corelite);
    spec.duration = sim::SimTime::seconds(static_cast<double>(state.range(0)));
    auto result = scenario::run_paper_scenario(spec);
    benchmark::DoNotOptimize(result.events_processed);
    state.counters["events"] = static_cast<double>(result.events_processed);
  }
}
BENCHMARK(BM_FullScenarioSecond)->Arg(10)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

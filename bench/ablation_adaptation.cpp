// Ablation (paper §4.4): "simulations using different adaptation
// schemes at the edge router ... are part of ongoing work."
//
// Three edge controllers run against the same core mechanisms:
//   LIMD — the paper's scheme (+alpha / -beta per marker),
//   AIMD — classic additive increase, multiplicative decrease,
//   MIMD — multiplicative increase & decrease.  Under *binary* feedback
//          MIMD famously fails to converge to fairness (Chiu & Jain);
//          under Corelite it converges anyway, because the feedback
//          itself is weighted-fair — markers arrive in proportion to
//          the normalized rate and only above-average flows are ever
//          throttled.  The fairness-restoring force lives in the
//          network, not the controller, which is the paper's thesis.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: edge rate-adaptation scheme (paper section 4.4 ongoing work)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-8s %-8s %-12s %-10s %-12s %-10s\n", "scheme", "drops", "steadyDrops",
              "jain", "thru[pkt/s]", "conv[s]");

  struct Row {
    const char* name;
    corelite::qos::AdaptKind kind;
  };
  const Row rows[] = {
      {"LIMD", corelite::qos::AdaptKind::Limd},
      {"AIMD", corelite::qos::AdaptKind::Aimd},
      {"MIMD", corelite::qos::AdaptKind::Mimd},
  };

  for (const Row& row : rows) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.corelite.adapt.kind = row.kind;
    const auto r = sc::run_paper_scenario(spec);

    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    double thru = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
      thru += static_cast<double>(r.tracker.series(f).delivered) / 80.0;
    }
    std::printf("%-8s %-8llu %-12d %-10.4f %-12.1f %-10.0f\n", row.name,
                static_cast<unsigned long long>(r.total_data_drops), steady,
                corelite::stats::jain_index(rates, weights), thru, conv);
  }
  std::printf(
      "\nExpected shape: all three schemes reach jain ~1 and full utilization —\n"
      "because the core's marker feedback is itself weighted-fair, the edge\n"
      "controller's exact form barely matters (the paper's central claim:\n"
      "fairness is produced in the network, not at the sources).\n");
  return 0;
}

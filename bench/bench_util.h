// Shared reporting helpers for the figure-reproduction benches.
//
// Each figure bench prints (a) the time series the paper plots, on a
// regular grid, and (b) a quantitative summary against the weighted
// max-min oracle so "does the shape hold?" is decidable from the text
// output alone.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "stats/csv_writer.h"
#include "stats/fairness.h"
#include "stats/summary.h"

namespace corelite::benchutil {

/// Per-flow allotted rate (pkt/s) on a regular grid — the data behind
/// the paper's "Alloted rate" figures.
inline void print_rate_table(const scenario::ScenarioSpec& spec,
                             const scenario::ScenarioResult& r, double t0, double t1,
                             double dt) {
  std::printf("\nAllotted rate b_g(f) [pkt/s]\n%8s", "t[s]");
  for (std::size_t i = 1; i <= spec.num_flows; ++i) std::printf("  f%-5zu", i);
  std::printf("\n%8s", "w");
  for (std::size_t i = 1; i <= spec.num_flows; ++i) std::printf("  %-6.0f", spec.weights[i - 1]);
  std::printf("\n");
  for (double t = t0; t <= t1 + 1e-9; t += dt) {
    std::printf("%8.0f", t);
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      std::printf("  %6.1f",
                  r.tracker.series(static_cast<net::FlowId>(i)).allotted_rate.value_at(t));
    }
    std::printf("\n");
  }
}

/// Per-flow cumulative delivered packets — the paper's Figure 4 series.
inline void print_cumulative_table(const scenario::ScenarioSpec& spec,
                                   const scenario::ScenarioResult& r, double t0, double t1,
                                   double dt) {
  std::printf("\nCumulative service (data packets delivered)\n%8s", "t[s]");
  for (std::size_t i = 1; i <= spec.num_flows; ++i) std::printf("  f%-6zu", i);
  std::printf("\n");
  for (double t = t0; t <= t1 + 1e-9; t += dt) {
    std::printf("%8.0f", t);
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      std::printf("  %7.0f",
                  r.tracker.series(static_cast<net::FlowId>(i)).cumulative_delivered.value_at(t));
    }
    std::printf("\n");
  }
}

/// Earliest time after which the flow's 2 s rate averages stay within
/// 30% (+3 pkt/s) of `ideal` until `t_end`.  Returns t_end if never.
inline double convergence_time(const stats::FlowSeries& fs, double ideal, double t_end) {
  return stats::convergence_time(fs.allotted_rate, ideal, t_end);
}

/// Ideal-vs-measured summary over [w0, w1] plus loss/fairness roll-up.
inline void print_summary(const char* title, const scenario::ScenarioSpec& spec,
                          const scenario::ScenarioResult& r, double w0, double w1,
                          double ideal_probe_t) {
  const auto ideal =
      scenario::ideal_rates_at(spec, sim::SimTime::seconds(ideal_probe_t));
  std::printf("\n%s — steady-state summary over [%.0f, %.0f] s\n", title, w0, w1);
  std::printf("%-6s %-7s %-9s %-9s %-7s %-10s\n", "flow", "weight", "ideal", "measured",
              "dev%", "converged");
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<net::FlowId>(i);
    const auto& fs = r.tracker.series(f);
    const double got = fs.allotted_rate.average_over(w0, w1);
    const double want = ideal.count(f) != 0 ? ideal.at(f) : 0.0;
    const double dev = want > 0.0 ? 100.0 * (got - want) / want : 0.0;
    const double conv = want > 0.0 ? convergence_time(fs, want, w1) : 0.0;
    std::printf("%-6zu %-7.0f %-9.2f %-9.2f %+-7.1f t=%-.0fs\n", i, spec.weights[i - 1], want,
                got, dev, conv);
    if (want > 0.0) {
      rates.push_back(got);
      weights.push_back(spec.weights[i - 1]);
    }
  }
  std::printf("weighted Jain index (steady state): %.4f\n",
              stats::jain_index(rates, weights));
  std::printf("data drops: %llu total, %llu on congested links",
              static_cast<unsigned long long>(r.total_data_drops),
              static_cast<unsigned long long>(r.congested_link_drops));
  int steady_drops = 0;
  for (double t : r.drop_times) {
    if (t >= w0) ++steady_drops;
  }
  std::printf(" (%d in the summary window)\n", steady_drops);
  std::printf("feedback messages: %llu   markers injected: %llu   events: %llu\n",
              static_cast<unsigned long long>(r.feedback_messages),
              static_cast<unsigned long long>(r.markers_injected),
              static_cast<unsigned long long>(r.events_processed));
}

/// When the CORELITE_ARTIFACTS environment variable names a directory,
/// export the run's per-flow rate and cumulative-service series as CSV
/// plus a ready-to-run gnuplot script, so every figure bench can also
/// regenerate the actual plots.  No-op otherwise.
inline void maybe_export_artifacts(const char* name, const scenario::ScenarioSpec& spec,
                                   const scenario::ScenarioResult& r) {
  const char* dir = std::getenv("CORELITE_ARTIFACTS");
  if (dir == nullptr || *dir == '\0') return;
  const std::string base = std::string(dir) + "/" + name;

  std::map<std::string, const stats::TimeSeries*> rates;
  std::map<std::string, const stats::TimeSeries*> cum;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto& fs = r.tracker.series(static_cast<net::FlowId>(i));
    rates["flow" + std::to_string(i)] = &fs.allotted_rate;
    cum["flow" + std::to_string(i)] = &fs.cumulative_delivered;
  }
  const double t_end = spec.duration.sec();
  {
    std::ofstream os{base + "_rates.csv"};
    if (os) stats::write_csv(os, rates, 0.0, t_end, 1.0);
  }
  {
    std::ofstream os{base + "_cumulative.csv"};
    if (os) stats::write_csv(os, cum, 0.0, t_end, 1.0);
  }
  {
    std::ofstream os{base + ".gp"};
    if (os) {
      os << "# gnuplot script regenerating the paper-style figure\n"
         << "set datafile separator ','\n"
         << "set key outside right\n"
         << "set xlabel 'time in seconds'\n"
         << "set ylabel 'alloted rate [pkt/s]'\n"
         << "set term pngcairo size 1000,600\n"
         << "set output '" << name << "_rates.png'\n"
         << "plot for [i=2:" << (spec.num_flows + 1) << "] '" << name
         << "_rates.csv' using 1:i with lines title columnheader(i)\n"
         << "set ylabel 'cumulative packets delivered'\n"
         << "set output '" << name << "_cumulative.png'\n"
         << "plot for [i=2:" << (spec.num_flows + 1) << "] '" << name
         << "_cumulative.csv' using 1:i with lines title columnheader(i)\n";
    }
  }
  std::fprintf(stderr, "artifacts written to %s_{rates,cumulative}.csv and %s.gp\n",
               base.c_str(), base.c_str());
}

}  // namespace corelite::benchutil

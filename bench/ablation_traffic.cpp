// Ablation (paper §3.1): sensitivity of the F_n computation to the
// input traffic pattern.
//
// F_n is derived under M/M/1 (Poisson arrival) assumptions.  The paper
// reports "the computation for F_n works reasonably well even if the
// Poisson traffic assumptions do not hold".  This sweep drives the same
// Figure-5 population with three source pacing disciplines — smooth
// CBR, Poisson gaps, and on/off bursts — and reports queue behaviour,
// loss and fairness for each.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;

int main() {
  std::printf("Ablation: input traffic pattern vs the F_n M/M/1 assumptions (section 3.1)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-22s %-8s %-12s %-12s %-10s %-12s\n", "pacing", "drops", "steadyDrops",
              "mean_q_avg", "jain", "thru[pkt/s]");

  struct Mode {
    const char* name;
    corelite::qos::PacingMode pacing;
    double burst_ms = 0.0;
    double idle_ms = 0.0;
  };
  const Mode modes[] = {
      {"CBR (paper)", corelite::qos::PacingMode::Paced},
      {"Poisson", corelite::qos::PacingMode::Poisson},
      {"on/off 200ms/200ms", corelite::qos::PacingMode::OnOff, 200.0, 200.0},
      {"on/off 50ms/150ms", corelite::qos::PacingMode::OnOff, 50.0, 150.0},
      {"on/off 500ms/500ms", corelite::qos::PacingMode::OnOff, 500.0, 500.0},
  };

  for (const Mode& mode : modes) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.corelite.pacing = mode.pacing;
    if (mode.burst_ms > 0.0) {
      spec.corelite.on_off_burst = corelite::sim::TimeDelta::millis(mode.burst_ms);
      spec.corelite.on_off_idle = corelite::sim::TimeDelta::millis(mode.idle_ms);
    }
    const auto r = sc::run_paper_scenario(spec);

    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    double mq = 0.0;
    for (double q : r.mean_q_avg) mq += q;
    if (!r.mean_q_avg.empty()) mq /= static_cast<double>(r.mean_q_avg.size());

    std::vector<double> rates;
    std::vector<double> weights;
    double thru = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      thru += static_cast<double>(r.tracker.series(f).delivered) / 80.0;
    }
    std::printf("%-22s %-8llu %-12d %-12.2f %-10.4f %-12.1f\n", mode.name,
                static_cast<unsigned long long>(r.total_data_drops), steady, mq,
                corelite::stats::jain_index(rates, weights), thru);
  }
  std::printf(
      "\nExpected shape: fairness (jain) holds across patterns; burstier input\n"
      "raises the average queue and may cost some loss, but the feedback loop\n"
      "remains stable (the paper's robustness claim for F_n).\n");
  return 0;
}

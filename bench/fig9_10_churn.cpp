// Reproduces Figures 9 and 10 (paper §4.3): flows entering AND leaving,
// Corelite vs weighted CSFQ.
//
// 20 flows start 1 s apart, live 60 s, stop 1 s apart, restart 5 s
// later; 160 s.  Between t=65 s and t=80 s flows are simultaneously
// entering and leaving.  Expected shape: Corelite adapts gracefully;
// with CSFQ, short-lived and high-weight flows fare noticeably worse
// because restarting flows exit slow start prematurely on spurious
// losses.
#include <cstdio>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

namespace {

void run_one(const char* figure, sc::Mechanism m) {
  const auto spec = sc::fig9_churn(m);
  const auto r = sc::run_paper_scenario(spec);
  bu::maybe_export_artifacts((std::string("fig9_10_") + sc::mechanism_name(m)).c_str(), spec, r);
  std::printf("\n== %s: %s ==\n", figure, sc::mechanism_name(m).c_str());
  bu::print_rate_table(spec, r, 0.0, 160.0, 8.0);
  // Summary over the final stretch, where the population is stable
  // again (all flows in their second life).
  bu::print_summary(sc::mechanism_name(m).c_str(), spec, r, 110.0, 160.0, 120.0);

  // The churn-specific metric: service received by high-weight flows
  // during their short first life [start, start+60).
  std::printf("\nFirst-life service of weight-3 flows (packets delivered by stop time):\n");
  for (corelite::net::FlowId f : {5u, 10u, 15u}) {
    const auto& fs = r.tracker.series(f);
    const double start = static_cast<double>(f - 1);
    const double got = fs.cumulative_delivered.value_at(start + 60.0) -
                       fs.cumulative_delivered.value_at(start);
    std::printf("  flow %-2u: %.0f pkts in 60 s (%.1f pkt/s average)\n", f, got, got / 60.0);
  }
}

}  // namespace

int main() {
  std::printf(
      "== Figures 9 & 10: start/stop/restart churn, Corelite vs weighted CSFQ ==\n");
  run_one("Figure 9", sc::Mechanism::Corelite);
  run_one("Figure 10", sc::Mechanism::Csfq);
  return 0;
}

// Ablation: the self-correcting cubic term `k` in the F_n formula (§3.1).
//
// The paper argues k = 0 lets queues build progressively when the M/M/1
// assumption fails (dF_n/dq shrinks as 1/(1+q)^2) while a small positive
// k keeps queues bounded without over-throttling.  Two scenarios:
//   (a) the Figure-5 startup (mild — the M/M/1 term mostly suffices), and
//   (b) a step overload: 15 flows at equilibrium joined at t=50 s by five
//       more in slow start, the Figure-3 transition compressed — the
//       regime where the queue ramps fast and the cubic term must react.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;

namespace {

void sweep(const char* title, const sc::ScenarioSpec& base, double drop_window_start) {
  std::printf("%s\n", title);
  std::printf("%-8s %-10s %-14s %-12s %-10s\n", "k", "drops", "windowDrops", "mean_q_avg",
              "jain");
  for (double k : {0.0, 0.001, 0.01, 0.05, 0.2}) {
    auto spec = base;
    spec.corelite.k_cubic = k;
    const auto r = sc::run_paper_scenario(spec);

    int window_drops = 0;
    for (double t : r.drop_times) {
      if (t >= drop_window_start) ++window_drops;
    }
    double mq = 0.0;
    for (double q : r.mean_q_avg) mq += q;
    if (!r.mean_q_avg.empty()) mq /= static_cast<double>(r.mean_q_avg.size());

    std::vector<double> rates;
    std::vector<double> weights;
    const double t_end = spec.duration.sec();
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      rates.push_back(r.tracker.series(static_cast<corelite::net::FlowId>(i))
                          .allotted_rate.average_over(t_end - 20.0, t_end));
      weights.push_back(spec.weights[i - 1]);
    }
    std::printf("%-8.3f %-10llu %-14d %-12.2f %-10.4f\n", k,
                static_cast<unsigned long long>(r.total_data_drops), window_drops, mq,
                corelite::stats::jain_index(rates, weights));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("Ablation: cubic self-correction gain k in F_n (paper section 3.1)\n\n");

  sweep("(a) Figure-5 startup, drops counted after t=25 s:",
        sc::fig5_simultaneous_start(sc::Mechanism::Corelite), 25.0);

  // (b) Step overload: Figure-3 population with the five late flows
  // joining at t=50 s into an already-converged network; 100 s total.
  auto spec = sc::fig3_network_dynamics(sc::Mechanism::Corelite);
  spec.duration = corelite::sim::SimTime::seconds(100);
  for (std::size_t f = 1; f <= 20; ++f) {
    const bool late = (f == 1 || f == 9 || f == 10 || f == 11 || f == 16);
    spec.activity[f - 1] = {{corelite::sim::SimTime::seconds(late ? 50.0 : 0.0),
                             corelite::sim::SimTime::infinite()}};
  }
  sweep("(b) Step overload at t=50 s (5 joining flows), drops counted after t=50 s:", spec,
        50.0);

  // (c) The paper's literal F_n (mu in packets per *epoch*): the M/M/1
  // term is ~10x weaker, so the cubic term is what keeps queues bounded
  // — k = 0 degenerates into sustained tail drops, the §3.1 scenario.
  auto legacy = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
  legacy.corelite.legacy_per_epoch_mu = true;
  sweep("(c) Literal per-epoch mu in F_n (paper wording), Figure-5 startup:", legacy, 25.0);
  return 0;
}

// Reproduces Figures 7 and 8 (paper §4.3): flows entering the network
// in rapid succession, Corelite vs weighted CSFQ.
//
// 20 flows start 1 s apart in ascending order (weights: 1 for flows
// 1/11/16, 3 for flows 5/10/15, 2 otherwise); 80 s.  Expected shape:
// Corelite converges faster — its flows slow-start up to near their
// final rate before the first congestion indication, whereas CSFQ's
// fair-share estimate lags the rapidly changing population, flows see
// early losses, and the router can degenerate into tail dropping.
#include <cstdio>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

namespace {

void run_one(const char* figure, sc::Mechanism m) {
  const auto spec = sc::fig7_staggered_start(m);
  const auto r = sc::run_paper_scenario(spec);
  bu::maybe_export_artifacts((std::string("fig7_8_") + sc::mechanism_name(m)).c_str(), spec, r);
  std::printf("\n== %s: %s ==\n", figure, sc::mechanism_name(m).c_str());
  bu::print_rate_table(spec, r, 0.0, 80.0, 4.0);
  bu::print_summary(sc::mechanism_name(m).c_str(), spec, r, 50.0, 80.0, 50.0);
}

}  // namespace

int main() {
  std::printf("== Figures 7 & 8: staggered start (1 s apart), Corelite vs weighted CSFQ ==\n");
  run_one("Figure 7", sc::Mechanism::Corelite);
  run_one("Figure 8", sc::Mechanism::Csfq);
  return 0;
}

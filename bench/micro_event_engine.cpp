// Event-engine microbenchmark: events/sec and heap allocations/event.
//
// The paper's experiments are million-event runs; the engine exists to
// make those cheap.  This bench measures the three layers that matter:
//   1. raw schedule/fire throughput of detached events with realistic
//      (24-byte) captures — the forwarding plane's bread and butter,
//   2. the same loop through handle-keeping schedule(), isolating the
//      cost of the cancellation control block,
//   3. steady-state packet forwarding on a live link, asserting the
//      zero-allocations-per-hop property end to end,
//   4. the 80-flow scale_flows rows (wall clock), tying the micro
//      numbers back to a full scenario.
//
// Results go to stdout and, machine-readable, to
// BENCH_event_engine.json in the working directory.  The baseline
// constants below were measured on the pre-engine seed (std::function
// callbacks, shared_ptr packets, binary heap of fat entries) on the
// same reference machine, so the JSON also carries the speedup ratios
// the acceptance criteria quote.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

#include "net/network.h"
#include "scenario/scenario.h"
#include "sim/hotpath.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Allocation counting: replace global new/delete for this binary.

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_frees = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete[](void* p) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  ++g_frees;
  std::free(p);
}

namespace {

namespace sim = corelite::sim;
namespace net = corelite::net;
namespace sc = corelite::scenario;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

// Seed-engine reference numbers (same machine, Release build):
//   - 2M detached-equivalent events, 8 chains, 24-byte captures:
//     11.6M events/s at 2.00 allocs/event (std::function heap copy +
//     shared_ptr control block per event).
//   - scale_flows 80-flow rows: corelite 268.0 ms, csfq 193.8 ms wall.
// The wall baselines were re-measured by rebuilding the seed commit
// (a8dbe2f) and alternating seed/current cold fresh-process runs in one
// session (5 pairs; medians) — the seed binary replays the IDENTICAL
// event sequence (923918 / 718581 events), so the rows compare the same
// workload.  For a fresh comparison on different hardware, repeat that
// interleaved procedure rather than trusting these frozen numbers.
constexpr double kSeedEventsPerSec = 11.6e6;
constexpr double kSeedAllocsPerEvent = 2.0;
constexpr double kSeedCorelite80WallMs = 268.0;
constexpr double kSeedCsfq80WallMs = 193.8;

constexpr std::uint64_t kEvents = 2'000'000;
constexpr std::size_t kChains = 8;
// Wall time of a scale row is the median of this many back-to-back
// runs: single cold runs on a shared box carry +-15 ms of scheduler
// noise, which is the same order as the margin being measured.
constexpr int kRowRepeats = 5;

struct LoopResult {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

// One self-rescheduling chain of detached events.  The capture is
// 24 bytes — the size of a link-completion closure — and lives inline
// in the event slot.
void arm_detached(sim::Simulator& s, std::uint64_t& fired, std::uint64_t limit) {
  s.after_detached(sim::TimeDelta::micros(1), [&s, &fired, limit] {
    if (++fired < limit) arm_detached(s, fired, limit);
  });
}

LoopResult run_detached_loop() {
  sim::Simulator s;
  std::uint64_t fired = 0;
  // Warm the slot pool and heap storage before counting.
  arm_detached(s, fired, 1024);
  s.run();
  fired = 0;

  const std::uint64_t allocs0 = g_allocs;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < kChains; ++c) arm_detached(s, fired, kEvents);
  s.run();
  const double wall = now_seconds() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;

  LoopResult r;
  r.events = fired;
  r.events_per_sec = static_cast<double>(fired) / wall;
  r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(fired);
  return r;
}

void arm_handled(sim::Simulator& s, std::uint64_t& fired, std::uint64_t limit) {
  (void)s.after(sim::TimeDelta::micros(1), [&s, &fired, limit] {
    if (++fired < limit) arm_handled(s, fired, limit);
  });
}

LoopResult run_handled_loop() {
  sim::Simulator s;
  std::uint64_t fired = 0;
  arm_handled(s, fired, 1024);
  s.run();
  fired = 0;

  const std::uint64_t allocs0 = g_allocs;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < kChains; ++c) arm_handled(s, fired, kEvents);
  s.run();
  const double wall = now_seconds() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;

  LoopResult r;
  r.events = fired;
  r.events_per_sec = static_cast<double>(fired) / wall;
  r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(fired);
  return r;
}

struct ForwardingResult {
  std::uint64_t hops = 0;
  std::uint64_t allocs = 0;
  double allocs_per_hop = 0.0;
  double hops_per_sec = 0.0;
};

// Saturate one 10 Mb/s link with 1 KB packets for 11 simulated seconds;
// after a 1 s warmup (pool slots, ring buffers and heap storage all
// materialized), the steady-state forwarding path must not touch the
// heap at all.
ForwardingResult run_forwarding_loop() {
  sim::Simulator s;
  net::Network network{s};
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  const sim::DataSize pkt = sim::DataSize::bytes(1000);
  const sim::Rate rate = sim::Rate::mbps(10);
  network.connect(a, b, rate, sim::TimeDelta::millis(1), 64);
  network.build_routes();

  std::uint64_t delivered = 0;
  network.node(b).set_local_sink([&delivered](net::Packet&&) { ++delivered; });

  // Inject at 99% of line rate so the queue stays shallow and bounded.
  const double dt = rate.serialization_time(pkt).sec() / 0.99;
  struct Pump {
    sim::Simulator& s;
    net::Network& network;
    net::NodeId a, b;
    sim::DataSize pkt;
    double dt;
    void fire() {
      net::Packet p;
      p.uid = network.next_packet_uid();
      p.flow = 1;
      p.src = a;
      p.dst = b;
      p.size = pkt;
      p.created = s.now();
      network.inject(a, std::move(p));
      s.after_detached(sim::TimeDelta::seconds(dt), [this] { fire(); });
    }
  };
  Pump pump{s, network, a, b, pkt, dt};
  pump.fire();

  s.run_until(sim::SimTime::seconds(1));  // warmup
  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t delivered0 = delivered;
  const double t0 = now_seconds();
  s.run_until(sim::SimTime::seconds(11));
  const double wall = now_seconds() - t0;

  ForwardingResult r;
  r.hops = delivered - delivered0;
  r.allocs = g_allocs - allocs0;
  r.allocs_per_hop = static_cast<double>(r.allocs) / static_cast<double>(r.hops);
  r.hops_per_sec = static_cast<double>(r.hops) / wall;
  return r;
}

struct ScaleRow {
  double wall_ms = 0.0;          ///< median over kRowRepeats runs
  sim::HotPathCounters ops;      ///< op counts of one run (deterministic)
};

ScaleRow run_scale_row(sc::Mechanism mech) {
  sc::ScenarioSpec spec;
  spec.mechanism = mech;
  spec.num_flows = 80;
  spec.duration = sim::SimTime::seconds(60);
  spec.weights.resize(80);
  for (std::size_t i = 0; i < 80; ++i) spec.weights[i] = static_cast<double>(i % 3 + 1);

  double walls[kRowRepeats];
  ScaleRow row;
  for (int rep = 0; rep < kRowRepeats; ++rep) {
    sim::reset_hotpath_counters();
    const double t0 = now_seconds();
    const auto r = sc::run_paper_scenario(spec);
    walls[rep] = (now_seconds() - t0) * 1e3;
    // Keep the run honest: the result must be materially the same workload.
    if (r.events_processed < 100000) std::abort();
    row.ops = sim::aggregated_hotpath_counters();
  }
  std::sort(walls, walls + kRowRepeats);
  row.wall_ms = walls[kRowRepeats / 2];
  return row;
}

}  // namespace

int main() {
  std::printf("Event-engine microbenchmark (%llu events, %zu chains, 24-byte captures)\n\n",
              static_cast<unsigned long long>(kEvents), kChains);

  // Scenario rows first, before the hot loops heat the machine — the
  // seed reference numbers were captured the same way (fresh process).
  const ScaleRow row_cl = run_scale_row(sc::Mechanism::Corelite);
  const ScaleRow row_cs = run_scale_row(sc::Mechanism::Csfq);
  const double cl80 = row_cl.wall_ms;
  const double cs80 = row_cs.wall_ms;

  const LoopResult detached = run_detached_loop();
  std::printf("detached schedule/fire : %8.2f M events/s   %.4f allocs/event\n",
              detached.events_per_sec / 1e6, detached.allocs_per_event);

  const LoopResult handled = run_handled_loop();
  std::printf("handled schedule/fire  : %8.2f M events/s   %.4f allocs/event\n",
              handled.events_per_sec / 1e6, handled.allocs_per_event);

  const ForwardingResult fwd = run_forwarding_loop();
  std::printf("forwarding steady state: %8.2f M hops/s     %.4f allocs/hop (%llu allocs / %llu hops)\n",
              fwd.hops_per_sec / 1e6, fwd.allocs_per_hop,
              static_cast<unsigned long long>(fwd.allocs),
              static_cast<unsigned long long>(fwd.hops));

  std::printf("scale_flows 80 flows   : corelite %.1f ms, csfq %.1f ms wall (median of %d)\n",
              cl80, cs80, kRowRepeats);
  std::printf("hot-path ops (csfq-80) : %llu exp calls, %.1f%% cache hits; %llu rng draws, "
              "%llu observer dispatches\n",
              static_cast<unsigned long long>(row_cs.ops.exp_calls),
              row_cs.ops.exp_hit_rate() * 100.0,
              static_cast<unsigned long long>(row_cs.ops.rng_draws),
              static_cast<unsigned long long>(row_cs.ops.observer_dispatches));

  const double speedup_events = detached.events_per_sec / kSeedEventsPerSec;
  const double speedup_cl = kSeedCorelite80WallMs / cl80;
  const double speedup_cs = kSeedCsfq80WallMs / cs80;
  std::printf("\nvs seed engine         : %.2fx events/s, %.2fx corelite-80, %.2fx csfq-80\n",
              speedup_events, speedup_cl, speedup_cs);

  std::FILE* json = std::fopen("BENCH_event_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"detached_schedule_fire\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.6f\n"
                 "  },\n"
                 "  \"handled_schedule_fire\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.6f\n"
                 "  },\n"
                 "  \"forwarding_steady_state\": {\n"
                 "    \"hops\": %llu,\n"
                 "    \"allocs\": %llu,\n"
                 "    \"allocs_per_hop\": %.6f,\n"
                 "    \"hops_per_sec\": %.0f\n"
                 "  },\n"
                 "  \"scale_flows_80\": {\n"
                 "    \"corelite_wall_ms\": %.1f,\n"
                 "    \"csfq_wall_ms\": %.1f,\n"
                 "    \"row_repeats\": %d,\n"
                 "    \"row_statistic\": \"median\"\n"
                 "  },\n"
                 "  \"hot_path_counters\": {\n"
                 "    \"corelite_80\": {\n"
                 "      \"exp_calls\": %llu,\n"
                 "      \"exp_cache_hits\": %llu,\n"
                 "      \"exp_hit_rate\": %.3f,\n"
                 "      \"pow_calls\": %llu,\n"
                 "      \"rng_draws\": %llu,\n"
                 "      \"observer_dispatches\": %llu,\n"
                 "      \"series_appends\": %llu\n"
                 "    },\n"
                 "    \"csfq_80\": {\n"
                 "      \"exp_calls\": %llu,\n"
                 "      \"exp_cache_hits\": %llu,\n"
                 "      \"exp_hit_rate\": %.3f,\n"
                 "      \"pow_calls\": %llu,\n"
                 "      \"rng_draws\": %llu,\n"
                 "      \"observer_dispatches\": %llu,\n"
                 "      \"series_appends\": %llu\n"
                 "    },\n"
                 "    \"exp_hit_rate_ceiling_note\": "
                 "\"csfq-80 evaluates 115205 distinct exp argument bit patterns over 439131 "
                 "calls (FP-accumulated paced emission times drift continuously at shared "
                 "links), so even an infinite bit-exact cache caps at 0.738; the 4096-slot "
                 "direct-mapped cache reaches ~0.725 of that ceiling.\"\n"
                 "  },\n"
                 "  \"seed_reference\": {\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.2f,\n"
                 "    \"corelite_80_wall_ms\": %.1f,\n"
                 "    \"csfq_80_wall_ms\": %.1f\n"
                 "  },\n"
                 "  \"speedup_vs_seed\": {\n"
                 "    \"events_per_sec\": %.2f,\n"
                 "    \"corelite_80_wall\": %.2f,\n"
                 "    \"csfq_80_wall\": %.2f\n"
                 "  }\n"
                 "}\n",
                 static_cast<unsigned long long>(detached.events), detached.events_per_sec,
                 detached.allocs_per_event, static_cast<unsigned long long>(handled.events),
                 handled.events_per_sec, handled.allocs_per_event,
                 static_cast<unsigned long long>(fwd.hops),
                 static_cast<unsigned long long>(fwd.allocs), fwd.allocs_per_hop,
                 fwd.hops_per_sec, cl80, cs80, kRowRepeats,
                 static_cast<unsigned long long>(row_cl.ops.exp_calls),
                 static_cast<unsigned long long>(row_cl.ops.exp_cache_hits),
                 row_cl.ops.exp_hit_rate(),
                 static_cast<unsigned long long>(row_cl.ops.pow_calls),
                 static_cast<unsigned long long>(row_cl.ops.rng_draws),
                 static_cast<unsigned long long>(row_cl.ops.observer_dispatches),
                 static_cast<unsigned long long>(row_cl.ops.series_appends),
                 static_cast<unsigned long long>(row_cs.ops.exp_calls),
                 static_cast<unsigned long long>(row_cs.ops.exp_cache_hits),
                 row_cs.ops.exp_hit_rate(),
                 static_cast<unsigned long long>(row_cs.ops.pow_calls),
                 static_cast<unsigned long long>(row_cs.ops.rng_draws),
                 static_cast<unsigned long long>(row_cs.ops.observer_dispatches),
                 static_cast<unsigned long long>(row_cs.ops.series_appends),
                 kSeedEventsPerSec, kSeedAllocsPerEvent,
                 kSeedCorelite80WallMs, kSeedCsfq80WallMs, speedup_events, speedup_cl,
                 speedup_cs);
    std::fclose(json);
    std::printf("wrote BENCH_event_engine.json\n");
  }
  return 0;
}

// Event-engine microbenchmark: events/sec and heap allocations/event.
//
// The paper's experiments are million-event runs; the engine exists to
// make those cheap.  This bench measures the three layers that matter:
//   1. raw schedule/fire throughput of detached events with realistic
//      (24-byte) captures — the forwarding plane's bread and butter,
//   2. the same loop through handle-keeping schedule(), isolating the
//      cost of the cancellation control block,
//   3. steady-state packet forwarding on a live link, asserting the
//      zero-allocations-per-hop property end to end,
//   4. the 80-flow scale_flows rows (wall clock), tying the micro
//      numbers back to a full scenario.
//
// Results go to stdout and, machine-readable, to
// BENCH_event_engine.json in the working directory.  The baseline
// constants below were measured on the pre-engine seed (std::function
// callbacks, shared_ptr packets, binary heap of fat entries) on the
// same reference machine, so the JSON also carries the speedup ratios
// the acceptance criteria quote.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "net/network.h"
#include "scenario/scenario.h"
#include "sim/hotpath.h"
#include "sim/simulator.h"

// ---------------------------------------------------------------------------
// Allocation counting: replace global new/delete for this binary.

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_frees = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  ++g_allocs;
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete[](void* p) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  ++g_frees;
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  ++g_frees;
  std::free(p);
}

namespace {

namespace sim = corelite::sim;
namespace net = corelite::net;
namespace sc = corelite::scenario;

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

// Seed-engine reference numbers (same machine, Release build):
//   - 2M detached-equivalent events, 8 chains, 24-byte captures:
//     11.39M events/s at 2.00 allocs/event (std::function heap copy +
//     shared_ptr control block per event).
//   - scale_flows 80-flow rows: corelite 301.9 ms, csfq 224.8 ms wall.
// Captured by rebuilding the seed commit (a8dbe2f) in a worktree and
// alternating seed / pre-wheel (4d90153) / current cold fresh-process
// runs in one session (5 triples; medians) — the seed binary replays
// the IDENTICAL event sequence, so the rows compare the same workload.
// The pre-wheel engine measured 147.6 / 97.4 ms on the same triples
// (the wheel's contribution is that delta, the rest is the PR-2/3
// engine rewrite).  For a fresh comparison on different hardware,
// repeat the interleaved procedure rather than trusting frozen numbers.
constexpr double kSeedEventsPerSec = 11.39e6;
constexpr double kSeedAllocsPerEvent = 2.0;
constexpr double kSeedCorelite80WallMs = 301.9;
constexpr double kSeedCsfq80WallMs = 224.8;

constexpr std::uint64_t kEvents = 2'000'000;
constexpr std::size_t kChains = 8;

// Empirical schedule-delay distribution of the event engine's real
// traffic: 64 evenly spaced quantiles of the 670k schedule() deltas of a
// full csfq-80 scale row (60 s, weights i%3+1), captured with a
// temporary sampling hook on Simulator::at_detached.  The mass at 2 ms
// is propagation events, the 40 ms plateau is epoch/estimator timers,
// and the 37-67 ms spread is per-flow pacing (packet_size / rate for
// the weighted rate grid); ~3% of deltas are zero (same-instant
// handoffs, which the wheel declines to the heap by design).
constexpr double kCsfq80ScheduleDelays[64] = {
    0.000000000e+00, 0.000000000e+00, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.000000000e-03,
    2.000000000e-03, 2.000000000e-03, 2.000000000e-03, 2.631578947e-02,
    3.703703704e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.000000000e-02, 4.000000000e-02,
    4.000000000e-02, 4.000000000e-02, 4.166666667e-02, 4.347826087e-02,
    4.545454545e-02, 4.761904762e-02, 5.263157895e-02, 6.666666667e-02,
};
// Enough chains that the overflow heap's O(log n) actually bites when
// the wheel is disabled — a csfq-80 run keeps a few thousand timers
// pending, so this is the population the engine really carries.
constexpr std::size_t kShortChains = 4096;
constexpr std::uint64_t kShortEvents = 4'000'000;
constexpr std::uint64_t kShortWarmup = 200'000;
// Wall time of a scale row is the median of this many back-to-back
// runs: single cold runs on a shared box carry +-15 ms of scheduler
// noise, which is the same order as the margin being measured.
constexpr int kRowRepeats = 5;

struct LoopResult {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
};

// One self-rescheduling chain of detached events.  The capture is
// 24 bytes — the size of a link-completion closure — and lives inline
// in the event slot.
void arm_detached(sim::Simulator& s, std::uint64_t& fired, std::uint64_t limit) {
  s.after_detached(sim::TimeDelta::micros(1), [&s, &fired, limit] {
    if (++fired < limit) arm_detached(s, fired, limit);
  });
}

LoopResult run_detached_loop() {
  sim::Simulator s;
  std::uint64_t fired = 0;
  // Warm the slot pool and heap storage before counting.
  arm_detached(s, fired, 1024);
  s.run();
  fired = 0;

  const std::uint64_t allocs0 = g_allocs;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < kChains; ++c) arm_detached(s, fired, kEvents);
  s.run();
  const double wall = now_seconds() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;

  LoopResult r;
  r.events = fired;
  r.events_per_sec = static_cast<double>(fired) / wall;
  r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(fired);
  return r;
}

void arm_handled(sim::Simulator& s, std::uint64_t& fired, std::uint64_t limit) {
  (void)s.after(sim::TimeDelta::micros(1), [&s, &fired, limit] {
    if (++fired < limit) arm_handled(s, fired, limit);
  });
}

LoopResult run_handled_loop() {
  sim::Simulator s;
  std::uint64_t fired = 0;
  arm_handled(s, fired, 1024);
  s.run();
  fired = 0;

  const std::uint64_t allocs0 = g_allocs;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < kChains; ++c) arm_handled(s, fired, kEvents);
  s.run();
  const double wall = now_seconds() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;

  LoopResult r;
  r.events = fired;
  r.events_per_sec = static_cast<double>(fired) / wall;
  r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(fired);
  return r;
}

// One self-rescheduling chain whose delays walk the empirical table via
// a Weyl sequence (deterministic, per-chain phase) — the short-horizon
// traffic shape the timing wheel exists for.
void arm_short(sim::Simulator& s, std::uint64_t& fired, std::uint64_t limit, std::uint32_t phase) {
  const double d = kCsfq80ScheduleDelays[phase >> 26];
  s.after_detached(sim::TimeDelta::seconds(d), [&s, &fired, limit, phase] {
    if (++fired < limit) arm_short(s, fired, limit, phase + 0x9E3779B9u);
  });
}

struct ShortHorizonResult {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double allocs_per_event = 0.0;
  double wheel_insert_rate = 0.0;   ///< share of events the wheel absorbed
  double cascades_per_event = 0.0;
};

ShortHorizonResult run_short_horizon(bool wheel_on) {
  // EventQueue reads the escape hatch at construction, so toggling the
  // environment here compares both engines inside one process.
  if (wheel_on) {
    unsetenv("CORELITE_NO_WHEEL");
  } else {
    setenv("CORELITE_NO_WHEEL", "1", 1);
  }
  sim::Simulator s;
  std::uint64_t fired = 0;
  // Warmup materializes the slot pool, the wheel's first level-1 lap
  // and the heap storage before counting.
  for (std::size_t c = 0; c < kShortChains; ++c) {
    arm_short(s, fired, kShortWarmup, static_cast<std::uint32_t>(c) * 0x61C88647u);
  }
  s.run();
  fired = 0;

  sim::reset_hotpath_counters();
  const std::uint64_t allocs0 = g_allocs;
  const double t0 = now_seconds();
  for (std::size_t c = 0; c < kShortChains; ++c) {
    arm_short(s, fired, kShortEvents, static_cast<std::uint32_t>(c) * 0x61C88647u);
  }
  s.run();
  const double wall = now_seconds() - t0;
  const std::uint64_t allocs = g_allocs - allocs0;
  const sim::HotPathCounters ops = sim::aggregated_hotpath_counters();

  ShortHorizonResult r;
  r.events = fired;
  r.events_per_sec = static_cast<double>(fired) / wall;
  r.allocs_per_event = static_cast<double>(allocs) / static_cast<double>(fired);
  r.wheel_insert_rate = ops.wheel_insert_rate();
  r.cascades_per_event = static_cast<double>(ops.wheel_cascades) /
                         static_cast<double>(ops.wheel_inserts + ops.heap_inserts);
  unsetenv("CORELITE_NO_WHEEL");
  return r;
}

struct ForwardingResult {
  std::uint64_t hops = 0;
  std::uint64_t allocs = 0;
  double allocs_per_hop = 0.0;
  double hops_per_sec = 0.0;
};

// Saturate one 10 Mb/s link with 1 KB packets for 11 simulated seconds;
// after a 1 s warmup (pool slots, ring buffers and heap storage all
// materialized), the steady-state forwarding path must not touch the
// heap at all.
ForwardingResult run_forwarding_loop() {
  sim::Simulator s;
  net::Network network{s};
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  const sim::DataSize pkt = sim::DataSize::bytes(1000);
  const sim::Rate rate = sim::Rate::mbps(10);
  network.connect(a, b, rate, sim::TimeDelta::millis(1), 64);
  network.build_routes();

  std::uint64_t delivered = 0;
  network.node(b).set_local_sink([&delivered](net::Packet&&) { ++delivered; });

  // Inject at 99% of line rate so the queue stays shallow and bounded.
  const double dt = rate.serialization_time(pkt).sec() / 0.99;
  struct Pump {
    sim::Simulator& s;
    net::Network& network;
    net::NodeId a, b;
    sim::DataSize pkt;
    double dt;
    void fire() {
      net::Packet p;
      p.uid = network.next_packet_uid();
      p.flow = 1;
      p.src = a;
      p.dst = b;
      p.size = pkt;
      p.created = s.now();
      network.inject(a, std::move(p));
      s.after_detached(sim::TimeDelta::seconds(dt), [this] { fire(); });
    }
  };
  Pump pump{s, network, a, b, pkt, dt};
  pump.fire();

  s.run_until(sim::SimTime::seconds(1));  // warmup
  const std::uint64_t allocs0 = g_allocs;
  const std::uint64_t delivered0 = delivered;
  const double t0 = now_seconds();
  s.run_until(sim::SimTime::seconds(11));
  const double wall = now_seconds() - t0;

  ForwardingResult r;
  r.hops = delivered - delivered0;
  r.allocs = g_allocs - allocs0;
  r.allocs_per_hop = static_cast<double>(r.allocs) / static_cast<double>(r.hops);
  r.hops_per_sec = static_cast<double>(r.hops) / wall;
  return r;
}

struct BurstResult {
  std::uint64_t hops = 0;
  double hops_per_sec = 0.0;
  double mean_batch_len = 0.0;
};

// Back-to-back trains on an uncontended link: 32-packet bursts with a
// propagation pipe longer than the train and an idle gap before the
// next burst, so between one completion and the next nothing — not the
// pump, not a delivery of this or the previous train — can interleave.
// This is the shape batched transmission collapses into one event per
// train (31 of 32 completions fuse; the first rides a real event).
BurstResult run_burst_forwarding(bool batch_on) {
  if (batch_on) {
    unsetenv("CORELITE_NO_BATCH");
  } else {
    setenv("CORELITE_NO_BATCH", "1", 1);
  }
  sim::Simulator s;
  net::Network network{s};
  const net::NodeId a = network.add_node("a");
  const net::NodeId b = network.add_node("b");
  const sim::DataSize pkt = sim::DataSize::bytes(1000);
  const sim::Rate rate = sim::Rate::mbps(1000);
  network.connect(a, b, rate, sim::TimeDelta::millis(1), 64);
  network.build_routes();

  std::uint64_t delivered = 0;
  network.node(b).set_local_sink([&delivered](net::Packet&&) { ++delivered; });

  constexpr std::size_t kBurst = 32;
  const double ser = rate.serialization_time(pkt).sec();
  struct Pump {
    sim::Simulator& s;
    net::Network& network;
    net::NodeId a, b;
    sim::DataSize pkt;
    double gap;  ///< burst period: propagation + twice the train length
    void fire() {
      for (std::size_t i = 0; i < kBurst; ++i) {
        net::Packet p;
        p.uid = network.next_packet_uid();
        p.flow = 1;
        p.src = a;
        p.dst = b;
        p.size = pkt;
        p.created = s.now();
        network.inject(a, std::move(p));
      }
      s.after_detached(sim::TimeDelta::seconds(gap), [this] { fire(); });
    }
  };
  Pump pump{s, network, a, b, pkt,
            0.001 + 2.0 * ser * static_cast<double>(kBurst)};
  pump.fire();

  s.run_until(sim::SimTime::seconds(1));  // warmup
  sim::reset_hotpath_counters();
  const std::uint64_t delivered0 = delivered;
  const double t0 = now_seconds();
  s.run_until(sim::SimTime::seconds(21));
  const double wall = now_seconds() - t0;
  const sim::HotPathCounters ops = sim::aggregated_hotpath_counters();

  BurstResult r;
  r.hops = delivered - delivered0;
  r.hops_per_sec = static_cast<double>(r.hops) / wall;
  r.mean_batch_len = ops.mean_batch_len();
  unsetenv("CORELITE_NO_BATCH");
  return r;
}

struct ScaleRow {
  double wall_ms = 0.0;          ///< median over kRowRepeats runs
  sim::HotPathCounters ops;      ///< op counts of one run (deterministic)
};

ScaleRow run_scale_row(sc::Mechanism mech, bool wheel_on = true) {
  if (wheel_on) {
    unsetenv("CORELITE_NO_WHEEL");
  } else {
    setenv("CORELITE_NO_WHEEL", "1", 1);
  }
  sc::ScenarioSpec spec;
  spec.mechanism = mech;
  spec.num_flows = 80;
  spec.duration = sim::SimTime::seconds(60);
  spec.weights.resize(80);
  for (std::size_t i = 0; i < 80; ++i) spec.weights[i] = static_cast<double>(i % 3 + 1);

  double walls[kRowRepeats];
  ScaleRow row;
  for (int rep = 0; rep < kRowRepeats; ++rep) {
    sim::reset_hotpath_counters();
    const double t0 = now_seconds();
    const auto r = sc::run_paper_scenario(spec);
    walls[rep] = (now_seconds() - t0) * 1e3;
    // Keep the run honest: the result must be materially the same workload.
    if (r.events_processed < 100000) std::abort();
    row.ops = sim::aggregated_hotpath_counters();
  }
  std::sort(walls, walls + kRowRepeats);
  row.wall_ms = walls[kRowRepeats / 2];
  unsetenv("CORELITE_NO_WHEEL");
  return row;
}

}  // namespace

int main() {
  std::printf("Event-engine microbenchmark (%llu events, %zu chains, 24-byte captures)\n\n",
              static_cast<unsigned long long>(kEvents), kChains);

  // Scenario rows first, before the hot loops heat the machine — the
  // seed reference numbers were captured the same way (fresh process).
  const ScaleRow row_cl = run_scale_row(sc::Mechanism::Corelite);
  const ScaleRow row_cs = run_scale_row(sc::Mechanism::Csfq);
  const ScaleRow row_cl_off = run_scale_row(sc::Mechanism::Corelite, /*wheel_on=*/false);
  const ScaleRow row_cs_off = run_scale_row(sc::Mechanism::Csfq, /*wheel_on=*/false);
  const double cl80 = row_cl.wall_ms;
  const double cs80 = row_cs.wall_ms;

  const LoopResult detached = run_detached_loop();
  std::printf("detached schedule/fire : %8.2f M events/s   %.4f allocs/event\n",
              detached.events_per_sec / 1e6, detached.allocs_per_event);

  const LoopResult handled = run_handled_loop();
  std::printf("handled schedule/fire  : %8.2f M events/s   %.4f allocs/event\n",
              handled.events_per_sec / 1e6, handled.allocs_per_event);

  const ShortHorizonResult sh_on = run_short_horizon(/*wheel_on=*/true);
  const ShortHorizonResult sh_off = run_short_horizon(/*wheel_on=*/false);
  const double sh_ratio = sh_on.events_per_sec / sh_off.events_per_sec;
  std::printf("short-horizon (wheel)  : %8.2f M events/s   %.4f allocs/event  "
              "(%.1f%% wheel, %.2f cascades/event)\n",
              sh_on.events_per_sec / 1e6, sh_on.allocs_per_event,
              sh_on.wheel_insert_rate * 100.0, sh_on.cascades_per_event);
  std::printf("short-horizon (heap)   : %8.2f M events/s   %.4f allocs/event  "
              "(wheel/heap ratio %.2fx)\n",
              sh_off.events_per_sec / 1e6, sh_off.allocs_per_event, sh_ratio);

  const ForwardingResult fwd = run_forwarding_loop();
  std::printf("forwarding steady state: %8.2f M hops/s     %.4f allocs/hop (%llu allocs / %llu hops)\n",
              fwd.hops_per_sec / 1e6, fwd.allocs_per_hop,
              static_cast<unsigned long long>(fwd.allocs),
              static_cast<unsigned long long>(fwd.hops));

  const BurstResult burst_on = run_burst_forwarding(/*batch_on=*/true);
  const BurstResult burst_off = run_burst_forwarding(/*batch_on=*/false);
  std::printf("burst forwarding       : %8.2f M hops/s batched (%.1f/drain), "
              "%.2f M unbatched — %.2fx\n",
              burst_on.hops_per_sec / 1e6, burst_on.mean_batch_len,
              burst_off.hops_per_sec / 1e6, burst_on.hops_per_sec / burst_off.hops_per_sec);

  std::printf("scale_flows 80 flows   : corelite %.1f ms, csfq %.1f ms wall (median of %d; "
              "wheel off: %.1f / %.1f ms)\n",
              cl80, cs80, kRowRepeats, row_cl_off.wall_ms, row_cs_off.wall_ms);
  std::printf("hot-path ops (csfq-80) : %llu exp calls, %.1f%% cache hits; %llu rng draws, "
              "%llu observer dispatches\n",
              static_cast<unsigned long long>(row_cs.ops.exp_calls),
              row_cs.ops.exp_hit_rate() * 100.0,
              static_cast<unsigned long long>(row_cs.ops.rng_draws),
              static_cast<unsigned long long>(row_cs.ops.observer_dispatches));
  std::printf("wheel/batch (csfq-80)  : %.1f%% wheel inserts, %llu cascades; "
              "%llu batch drains (%llu fused, mean %.2f)\n",
              row_cs.ops.wheel_insert_rate() * 100.0,
              static_cast<unsigned long long>(row_cs.ops.wheel_cascades),
              static_cast<unsigned long long>(row_cs.ops.batch_drains),
              static_cast<unsigned long long>(row_cs.ops.batch_drained),
              row_cs.ops.mean_batch_len());

  const double speedup_events = detached.events_per_sec / kSeedEventsPerSec;
  const double speedup_cl = kSeedCorelite80WallMs / cl80;
  const double speedup_cs = kSeedCsfq80WallMs / cs80;
  std::printf("\nvs seed engine         : %.2fx events/s, %.2fx corelite-80, %.2fx csfq-80\n",
              speedup_events, speedup_cl, speedup_cs);

  std::FILE* json = std::fopen("BENCH_event_engine.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"detached_schedule_fire\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.6f\n"
                 "  },\n"
                 "  \"handled_schedule_fire\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.6f\n"
                 "  },\n"
                 "  \"short_horizon\": {\n"
                 "    \"events\": %llu,\n"
                 "    \"chains\": %zu,\n"
                 "    \"delay_distribution\": \"64-quantile table sampled from a real csfq-80 "
                 "run (see kCsfq80ScheduleDelays)\",\n"
                 "    \"wheel_on_events_per_sec\": %.0f,\n"
                 "    \"wheel_off_events_per_sec\": %.0f,\n"
                 "    \"wheel_over_heap_ratio\": %.3f,\n"
                 "    \"wheel_insert_rate\": %.3f,\n"
                 "    \"cascades_per_event\": %.3f,\n"
                 "    \"allocs_per_event_wheel_on\": %.6f\n"
                 "  },\n"
                 "  \"forwarding_steady_state\": {\n"
                 "    \"hops\": %llu,\n"
                 "    \"allocs\": %llu,\n"
                 "    \"allocs_per_hop\": %.6f,\n"
                 "    \"hops_per_sec\": %.0f\n"
                 "  },\n"
                 "  \"burst_forwarding\": {\n"
                 "    \"batch_on_hops_per_sec\": %.0f,\n"
                 "    \"batch_off_hops_per_sec\": %.0f,\n"
                 "    \"batch_speedup\": %.3f,\n"
                 "    \"mean_batch_len\": %.2f\n"
                 "  },\n"
                 "  \"scale_flows_80\": {\n"
                 "    \"corelite_wall_ms\": %.1f,\n"
                 "    \"csfq_wall_ms\": %.1f,\n"
                 "    \"corelite_wall_ms_wheel_off\": %.1f,\n"
                 "    \"csfq_wall_ms_wheel_off\": %.1f,\n"
                 "    \"row_repeats\": %d,\n"
                 "    \"row_statistic\": \"median\"\n"
                 "  },\n"
                 "  \"hot_path_counters\": {\n"
                 "    \"corelite_80\": {\n"
                 "      \"exp_calls\": %llu,\n"
                 "      \"exp_cache_hits\": %llu,\n"
                 "      \"exp_hit_rate\": %.3f,\n"
                 "      \"pow_calls\": %llu,\n"
                 "      \"rng_draws\": %llu,\n"
                 "      \"observer_dispatches\": %llu,\n"
                 "      \"series_appends\": %llu,\n"
                 "      \"wheel_inserts\": %llu,\n"
                 "      \"wheel_cascades\": %llu,\n"
                 "      \"heap_inserts\": %llu,\n"
                 "      \"batch_drains\": %llu,\n"
                 "      \"batch_drained\": %llu\n"
                 "    },\n"
                 "    \"csfq_80\": {\n"
                 "      \"exp_calls\": %llu,\n"
                 "      \"exp_cache_hits\": %llu,\n"
                 "      \"exp_hit_rate\": %.3f,\n"
                 "      \"pow_calls\": %llu,\n"
                 "      \"rng_draws\": %llu,\n"
                 "      \"observer_dispatches\": %llu,\n"
                 "      \"series_appends\": %llu,\n"
                 "      \"wheel_inserts\": %llu,\n"
                 "      \"wheel_cascades\": %llu,\n"
                 "      \"heap_inserts\": %llu,\n"
                 "      \"batch_drains\": %llu,\n"
                 "      \"batch_drained\": %llu\n"
                 "    },\n"
                 "    \"exp_hit_rate_ceiling_note\": "
                 "\"csfq-80 evaluates 115205 distinct exp argument bit patterns over 439131 "
                 "calls (FP-accumulated paced emission times drift continuously at shared "
                 "links), so even an infinite bit-exact cache caps at 0.738; the 4096-slot "
                 "direct-mapped cache reaches ~0.725 of that ceiling.\"\n"
                 "  },\n"
                 "  \"seed_reference\": {\n"
                 "    \"events_per_sec\": %.0f,\n"
                 "    \"allocs_per_event\": %.2f,\n"
                 "    \"corelite_80_wall_ms\": %.1f,\n"
                 "    \"csfq_80_wall_ms\": %.1f\n"
                 "  },\n"
                 "  \"speedup_vs_seed\": {\n"
                 "    \"events_per_sec\": %.2f,\n"
                 "    \"corelite_80_wall\": %.2f,\n"
                 "    \"csfq_80_wall\": %.2f\n"
                 "  }\n"
                 "}\n",
                 std::thread::hardware_concurrency(),
                 static_cast<unsigned long long>(detached.events), detached.events_per_sec,
                 detached.allocs_per_event, static_cast<unsigned long long>(handled.events),
                 handled.events_per_sec, handled.allocs_per_event,
                 static_cast<unsigned long long>(sh_on.events), kShortChains,
                 sh_on.events_per_sec, sh_off.events_per_sec, sh_ratio,
                 sh_on.wheel_insert_rate, sh_on.cascades_per_event, sh_on.allocs_per_event,
                 static_cast<unsigned long long>(fwd.hops),
                 static_cast<unsigned long long>(fwd.allocs), fwd.allocs_per_hop,
                 fwd.hops_per_sec,
                 burst_on.hops_per_sec, burst_off.hops_per_sec,
                 burst_on.hops_per_sec / burst_off.hops_per_sec, burst_on.mean_batch_len,
                 cl80, cs80, row_cl_off.wall_ms, row_cs_off.wall_ms, kRowRepeats,
                 static_cast<unsigned long long>(row_cl.ops.exp_calls),
                 static_cast<unsigned long long>(row_cl.ops.exp_cache_hits),
                 row_cl.ops.exp_hit_rate(),
                 static_cast<unsigned long long>(row_cl.ops.pow_calls),
                 static_cast<unsigned long long>(row_cl.ops.rng_draws),
                 static_cast<unsigned long long>(row_cl.ops.observer_dispatches),
                 static_cast<unsigned long long>(row_cl.ops.series_appends),
                 static_cast<unsigned long long>(row_cl.ops.wheel_inserts),
                 static_cast<unsigned long long>(row_cl.ops.wheel_cascades),
                 static_cast<unsigned long long>(row_cl.ops.heap_inserts),
                 static_cast<unsigned long long>(row_cl.ops.batch_drains),
                 static_cast<unsigned long long>(row_cl.ops.batch_drained),
                 static_cast<unsigned long long>(row_cs.ops.exp_calls),
                 static_cast<unsigned long long>(row_cs.ops.exp_cache_hits),
                 row_cs.ops.exp_hit_rate(),
                 static_cast<unsigned long long>(row_cs.ops.pow_calls),
                 static_cast<unsigned long long>(row_cs.ops.rng_draws),
                 static_cast<unsigned long long>(row_cs.ops.observer_dispatches),
                 static_cast<unsigned long long>(row_cs.ops.series_appends),
                 static_cast<unsigned long long>(row_cs.ops.wheel_inserts),
                 static_cast<unsigned long long>(row_cs.ops.wheel_cascades),
                 static_cast<unsigned long long>(row_cs.ops.heap_inserts),
                 static_cast<unsigned long long>(row_cs.ops.batch_drains),
                 static_cast<unsigned long long>(row_cs.ops.batch_drained),
                 kSeedEventsPerSec, kSeedAllocsPerEvent,
                 kSeedCorelite80WallMs, kSeedCsfq80WallMs, speedup_events, speedup_cl,
                 speedup_cs);
    std::fclose(json);
    std::printf("wrote BENCH_event_engine.json\n");
  }
  return 0;
}

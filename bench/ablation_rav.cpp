// Ablation: the stateless selector's running-average parameters (§3.2).
//
// r_av decides which markers are eligible for feedback.  Two knobs:
//   - rav_gain: per-epoch EWMA gain (averaging window length), and
//   - eligibility_factor: tolerance band below r_av that still counts
//     as "at or above the average".
// The paper's strict reading (factor 1.0) starves the feedback channel
// at a converged equilibrium — every flow sits exactly at the average
// and numeric jitter arbitrarily disqualifies half the markers — which
// shows up as steady-state drops.  This sweep makes that visible.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: r_av gain and eligibility tolerance (stateless selector)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-10s %-10s %-8s %-12s %-10s %-10s\n", "rav_gain", "factor", "drops",
              "steadyDrops", "jain", "feedback");

  for (double gain : {1.0, 0.5, 0.1, 0.02}) {
    for (double factor : {1.0, 0.95, 0.9, 0.8}) {
      auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
      spec.corelite.rav_gain = gain;
      spec.corelite.eligibility_factor = factor;
      const auto r = sc::run_paper_scenario(spec);

      std::vector<double> rates;
      std::vector<double> weights;
      for (std::size_t i = 1; i <= spec.num_flows; ++i) {
        rates.push_back(r.tracker.series(static_cast<corelite::net::FlowId>(i))
                            .allotted_rate.average_over(40, 80));
        weights.push_back(spec.weights[i - 1]);
      }
      int steady = 0;
      for (double t : r.drop_times) {
        if (t > 25.0) ++steady;
      }
      std::printf("%-10.2f %-10.2f %-8llu %-12d %-10.4f %-10llu\n", gain, factor,
                  static_cast<unsigned long long>(r.total_data_drops), steady,
                  corelite::stats::jain_index(rates, weights),
                  static_cast<unsigned long long>(r.feedback_messages));
    }
  }
  return 0;
}

// Ablation (paper §3.1): replacing the congestion-estimation module.
//
// "the congestion estimation module can be replaced with no impact on
// the rest of the Corelite mechanisms."  Three detectors share the same
// F_n mapping but measure congestion differently:
//   epoch-average  — time-weighted q_avg per 100 ms epoch (paper),
//   busy+idle      — DECbit-style cycle averaging (Jain & Ramakrishnan),
//   ewma           — RED-style exponentially weighted average.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: congestion-estimation module (paper section 3.1 claim)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-16s %-8s %-12s %-12s %-10s %-10s\n", "detector", "drops", "steadyDrops",
              "mean_q_avg", "jain", "conv[s]");

  struct Row {
    const char* name;
    corelite::qos::DetectorKind kind;
  };
  const Row rows[] = {
      {"epoch-average", corelite::qos::DetectorKind::EpochAverage},
      {"busy+idle", corelite::qos::DetectorKind::BusyIdleCycle},
      {"ewma", corelite::qos::DetectorKind::Ewma},
  };

  for (const Row& row : rows) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.corelite.detector = row.kind;
    const auto r = sc::run_paper_scenario(spec);

    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    double mq = 0.0;
    for (double q : r.mean_q_avg) mq += q;
    if (!r.mean_q_avg.empty()) mq /= static_cast<double>(r.mean_q_avg.size());

    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
    }
    std::printf("%-16s %-8llu %-12d %-12.2f %-10.4f %-10.0f\n", row.name,
                static_cast<unsigned long long>(r.total_data_drops), steady, mq,
                corelite::stats::jain_index(rates, weights), conv);
  }
  std::printf(
      "\nExpected shape: all three detectors keep the system fair and stable —\n"
      "the weighted-fair marker selection, not the congestion measure, is what\n"
      "produces the service model.\n");
  return 0;
}

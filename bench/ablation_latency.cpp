// Ablation (paper §4.4): sensitivity to link latency.
//
// The paper reports Corelite works "with channels with large latencies".
// Larger propagation delay stretches the feedback loop (marker -> edge)
// and the RTT spread between 1/2/3-link flows.  Sweep the per-link
// delay and report fairness and loss.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: per-link propagation delay (paper section 4.4 claim)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n");
  std::printf("RTT for a 1-congested-link flow = 6 x delay; paper default 40 ms -> 240 ms\n\n");
  std::printf("%-10s %-10s %-8s %-12s %-10s %-10s\n", "delay[ms]", "RTT1[ms]", "drops",
              "steadyDrops", "jain", "conv[s]");

  for (double ms : {2.0, 10.0, 20.0, 40.0, 80.0}) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.topology.link_delay = corelite::sim::TimeDelta::millis(ms);
    const auto r = sc::run_paper_scenario(spec);

    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
    }
    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    std::printf("%-10.0f %-10.0f %-8llu %-12d %-10.4f %-10.0f\n", ms, 6.0 * ms,
                static_cast<unsigned long long>(r.total_data_drops), steady,
                corelite::stats::jain_index(rates, weights), conv);
  }
  return 0;
}

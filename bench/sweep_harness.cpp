// Sweep-harness benchmark: serial vs parallel execution of one grid.
//
// Runs the same 32-run grid (2 scenarios × 4 mechanisms × 4 seeds)
// twice through the sweep runner — once with --jobs 1 and once with
// the requested parallelism — and verifies the determinism contract
// the runner promises: every RunResult digest must match bit-for-bit
// between the two executions.  Timing for both passes, the measured
// speedup and the verdict land in BENCH_sweep.json in the working
// directory, alongside the hardware thread count so results from
// single-core containers are honestly labelled as such.
//
//   sweep_harness [--jobs N] [--tiny] [--profile]
//                 [--telemetry] [--trace-out PATH] [--manifest PATH]
//                 [--heartbeat SEC]
//
// --jobs N        parallel pass width (default: hardware threads, min 2)
// --tiny          shrink the grid to 16 x 10 s runs — the CI smoke grid
// --profile       print the hot-path op counters and add them to the JSON
// --telemetry     enable the metrics registry + write a run manifest
// --trace-out P   write a Chrome trace (virtual tracks from run 0 of the
//                 parallel pass, wall spans for every parallel run);
//                 implies --telemetry
// --manifest P    manifest path (default run_manifest.json)
// --heartbeat S   live sweep progress to stderr every S seconds
//
// Exit status is non-zero if any digest differs, so CI can gate on it.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runner/sweep.h"
#include "sim/hotpath.h"
#include "stats/aggregate.h"
#include "telemetry/harness.h"
#include "telemetry/metrics.h"

namespace sc = corelite::scenario;
namespace rn = corelite::runner;
namespace tel = corelite::telemetry;

namespace {

double run_pass(rn::SweepRunner& runner, const std::vector<rn::RunDescriptor>& runs,
                std::vector<rn::RunResult>& out) {
  const auto t0 = std::chrono::steady_clock::now();
  out = runner.run(runs);
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = std::max(2u, std::thread::hardware_concurrency());
  bool tiny = false;
  bool profile = false;
  bool telemetry = false;
  std::string trace_path;
  std::string manifest_path = "run_manifest.json";
  double heartbeat_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_path = argv[++i];
      telemetry = true;
    } else if (std::strcmp(argv[i], "--manifest") == 0 && i + 1 < argc) {
      manifest_path = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat") == 0 && i + 1 < argc) {
      heartbeat_sec = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--tiny] [--profile] [--telemetry] [--trace-out PATH] "
                   "[--manifest PATH] [--heartbeat SEC]\n",
                   argv[0]);
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;
  tel::set_enabled(telemetry);

  rn::SweepGrid grid;
  grid.scenarios = {"fig5", "fig7"};
  grid.mechanisms = {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::Wfq,
                     sc::Mechanism::DropTail};
  grid.repeats = tiny ? 2 : 4;
  grid.base_seed = 1;
  grid.duration_sec = tiny ? 10.0 : 40.0;
  const auto runs = rn::expand_grid(grid);

  std::printf("Sweep harness: %zu runs (%zu scenario(s) x %zu mechanism(s) x %zu seed(s))\n",
              runs.size(), grid.scenarios.size(), grid.mechanisms.size(), grid.repeats);
  std::printf("hardware threads: %u\n\n", std::thread::hardware_concurrency());

  tel::PhaseTimer phases;
  tel::TraceWriter trace;
  std::unique_ptr<tel::LinkTraceCollector> collector;

  std::vector<rn::RunResult> serial;
  std::vector<rn::RunResult> parallel;
  phases.start("serial_pass");
  rn::SweepRunner serial_runner{1};
  if (heartbeat_sec > 0.0) serial_runner.set_heartbeat(&std::cerr, heartbeat_sec);
  const double wall_serial = run_pass(serial_runner, runs, serial);
  std::printf("serial   (--jobs 1):  %.1f ms\n", wall_serial);
  phases.start("parallel_pass");
  rn::SweepRunner parallel_runner{jobs};
  if (heartbeat_sec > 0.0) parallel_runner.set_heartbeat(&std::cerr, heartbeat_sec);
  if (!trace_path.empty()) {
    parallel_runner.set_run_instrument(0, tel::congested_link_instrument(trace, collector));
  }
  const double wall_parallel = run_pass(parallel_runner, runs, parallel);
  phases.start("report");
  std::printf("parallel (--jobs %zu): %.1f ms\n", jobs, wall_parallel);
  const double speedup = wall_parallel > 0.0 ? wall_serial / wall_parallel : 0.0;
  std::printf("speedup: %.2fx\n\n", speedup);

  std::size_t mismatches = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    if (!serial[i].ok || !parallel[i].ok || serial[i].digest != parallel[i].digest ||
        serial[i].events != parallel[i].events) {
      ++mismatches;
      std::printf("MISMATCH run %zu (%s): serial digest %016llx, parallel %016llx\n", i,
                  rn::cell_key(runs[i]).c_str(),
                  static_cast<unsigned long long>(serial[i].digest),
                  static_cast<unsigned long long>(parallel[i].digest));
    }
  }
  std::printf("bit-identity: %zu/%zu runs match%s\n", runs.size() - mismatches, runs.size(),
              mismatches == 0 ? " — parallel output is bit-identical to serial" : "");

  corelite::stats::SweepAggregator agg;
  for (const auto& r : parallel) {
    if (r.ok) rn::record_metrics(agg, r);
  }
  std::printf("\n%-28s %-4s %-20s %-12s\n", "cell", "n", "jain (mean +- ci95)", "drops(mean)");
  for (const auto& cell : agg.snapshot()) {
    double jain_mean = 0.0;
    double jain_ci = 0.0;
    double drops_mean = 0.0;
    std::size_t n = 0;
    for (const auto& m : cell.metrics) {
      if (m.name == "jain") {
        jain_mean = m.acc.mean();
        jain_ci = m.acc.ci95_half_width();
        n = m.acc.count();
      } else if (m.name == "total_drops") {
        drops_mean = m.acc.mean();
      }
    }
    std::printf("%-28s %-4zu %.4f +- %.4f     %.1f\n", cell.name.c_str(), n, jain_mean, jain_ci,
                drops_mean);
  }

  // Both passes' workers have flushed into the process aggregate, so
  // these totals cover the serial and the parallel execution together.
  const corelite::sim::HotPathCounters ops = corelite::sim::aggregated_hotpath_counters();
  if (profile) {
    std::printf("\nhot-path op counters (both passes)\n");
    std::printf("%-22s %14s\n", "op", "count");
    std::printf("%-22s %14llu  (hits %llu, %.1f%%)\n", "exp calls",
                static_cast<unsigned long long>(ops.exp_calls),
                static_cast<unsigned long long>(ops.exp_cache_hits), ops.exp_hit_rate() * 100.0);
    std::printf("%-22s %14llu  (hits %llu, %.1f%%)\n", "pow calls",
                static_cast<unsigned long long>(ops.pow_calls),
                static_cast<unsigned long long>(ops.pow_cache_hits), ops.pow_hit_rate() * 100.0);
    std::printf("%-22s %14llu\n", "rng draws", static_cast<unsigned long long>(ops.rng_draws));
    std::printf("%-22s %14llu\n", "observer dispatches",
                static_cast<unsigned long long>(ops.observer_dispatches));
    std::printf("%-22s %14llu\n", "series appends",
                static_cast<unsigned long long>(ops.series_appends));
    std::printf("%-22s %14llu  (%.1f%% of events; heap %llu, cascades %llu)\n", "wheel inserts",
                static_cast<unsigned long long>(ops.wheel_inserts), ops.wheel_insert_rate() * 100.0,
                static_cast<unsigned long long>(ops.heap_inserts),
                static_cast<unsigned long long>(ops.wheel_cascades));
    std::printf("%-22s %14llu  (%llu fused, mean %.2f/drain)\n", "batch drains",
                static_cast<unsigned long long>(ops.batch_drains),
                static_cast<unsigned long long>(ops.batch_drained), ops.mean_batch_len());
    std::printf("%-22s %14llu  (cross-LP events %llu, mailbox flushes %llu)\n", "lp barriers",
                static_cast<unsigned long long>(ops.lp_barriers),
                static_cast<unsigned long long>(ops.cross_lp_events),
                static_cast<unsigned long long>(ops.mailbox_flushes));
  }

  std::FILE* json = std::fopen("BENCH_sweep.json", "w");
  if (json != nullptr) {
    std::fprintf(json,
                 "{\n"
                 "  \"bench\": \"sweep_harness\",\n"
                 "  \"runs\": %zu,\n"
                 "  \"scenarios\": %zu,\n"
                 "  \"mechanisms\": %zu,\n"
                 "  \"repeats\": %zu,\n"
                 "  \"duration_sec\": %.0f,\n"
                 "  \"hw_threads\": %u,\n"
                 "  \"jobs_parallel\": %zu,\n"
                 "  \"wall_serial_ms\": %.1f,\n"
                 "  \"wall_parallel_ms\": %.1f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"digest_mismatches\": %zu",
                 runs.size(), grid.scenarios.size(), grid.mechanisms.size(), grid.repeats,
                 grid.duration_sec, std::thread::hardware_concurrency(), jobs, wall_serial,
                 wall_parallel, speedup, mismatches == 0 ? "true" : "false", mismatches);
    if (profile) {
      std::fprintf(json,
                   ",\n"
                   "  \"hot_path_counters\": {\n"
                   "    \"exp_calls\": %llu,\n"
                   "    \"exp_cache_hits\": %llu,\n"
                   "    \"exp_hit_rate\": %.3f,\n"
                   "    \"pow_calls\": %llu,\n"
                   "    \"pow_cache_hits\": %llu,\n"
                   "    \"rng_draws\": %llu,\n"
                   "    \"observer_dispatches\": %llu,\n"
                   "    \"series_appends\": %llu,\n"
                   "    \"wheel_inserts\": %llu,\n"
                   "    \"wheel_cascades\": %llu,\n"
                   "    \"heap_inserts\": %llu,\n"
                   "    \"batch_drains\": %llu,\n"
                   "    \"batch_drained\": %llu,\n"
                   "    \"lp_barriers\": %llu,\n"
                   "    \"cross_lp_events\": %llu,\n"
                   "    \"mailbox_flushes\": %llu\n"
                   "  }",
                   static_cast<unsigned long long>(ops.exp_calls),
                   static_cast<unsigned long long>(ops.exp_cache_hits), ops.exp_hit_rate(),
                   static_cast<unsigned long long>(ops.pow_calls),
                   static_cast<unsigned long long>(ops.pow_cache_hits),
                   static_cast<unsigned long long>(ops.rng_draws),
                   static_cast<unsigned long long>(ops.observer_dispatches),
                   static_cast<unsigned long long>(ops.series_appends),
                   static_cast<unsigned long long>(ops.wheel_inserts),
                   static_cast<unsigned long long>(ops.wheel_cascades),
                   static_cast<unsigned long long>(ops.heap_inserts),
                   static_cast<unsigned long long>(ops.batch_drains),
                   static_cast<unsigned long long>(ops.batch_drained),
                   static_cast<unsigned long long>(ops.lp_barriers),
                   static_cast<unsigned long long>(ops.cross_lp_events),
                   static_cast<unsigned long long>(ops.mailbox_flushes));
    }
    std::fprintf(json, "\n}\n");
    std::fclose(json);
    std::printf("\nwrote BENCH_sweep.json\n");
  }

  if (telemetry) {
    const std::uint64_t digest = rn::combined_digest(parallel);
    std::printf("result digest: %s\n", tel::digest_hex(digest).c_str());
    if (!trace_path.empty()) {
      tel::add_wall_spans(trace, parallel);
      if (!tel::write_trace_file(trace, trace_path, std::cerr)) return 1;
    }
    phases.stop();
    tel::RunManifest manifest;
    manifest.tool = "sweep_harness";
    manifest.scenario = "fig5,fig7";
    manifest.mechanism = "corelite,csfq,wfq,droptail";
    manifest.base_seed = grid.base_seed;
    manifest.runs = parallel.size();
    manifest.jobs = jobs;
    for (const auto& r : parallel) manifest.events += r.events;
    manifest.result_digest = digest;
    manifest.hotpath = ops;
    manifest.wall_phases_ms = phases.phases();
    manifest.extra.emplace_back("bit_identical", mismatches == 0 ? "true" : "false");
    if (!trace_path.empty()) manifest.extra.emplace_back("trace", trace_path);
    if (!tel::write_manifest_file(manifest, manifest_path, std::cerr)) return 1;
  }
  return mismatches == 0 ? 0 : 1;
}

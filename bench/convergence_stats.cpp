// Statistical confidence for the headline claim: convergence time and
// loss of Corelite vs weighted CSFQ across many seeds.
//
// The figure benches show single runs (seed 1, like the paper's single
// plots); this harness repeats the Figure-5 startup experiment over 10
// seeds per mechanism and reports mean / stddev / min / max of the
// convergence time, plus drop and fairness statistics — so "Corelite
// converges ~5x faster and loses nothing in steady state" rests on a
// distribution, not an anecdote.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

namespace {

struct RunStats {
  double conv = 0.0;
  double jain = 0.0;
  double drops = 0.0;
  double steady_drops = 0.0;
};

RunStats one_run(sc::Mechanism m, std::uint64_t seed) {
  auto spec = sc::fig5_simultaneous_start(m);
  spec.seed = seed;
  const auto r = sc::run_paper_scenario(spec);
  const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));

  RunStats out;
  std::vector<double> rates;
  std::vector<double> weights;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<corelite::net::FlowId>(i);
    rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
    weights.push_back(spec.weights[i - 1]);
    out.conv = std::max(out.conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
  }
  out.jain = corelite::stats::jain_index(rates, weights);
  out.drops = static_cast<double>(r.total_data_drops);
  for (double t : r.drop_times) {
    if (t > 25.0) out.steady_drops += 1.0;
  }
  return out;
}

void report(const char* name, sc::Mechanism m) {
  std::vector<double> conv;
  std::vector<double> jain;
  std::vector<double> drops;
  std::vector<double> steady;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto s = one_run(m, seed);
    conv.push_back(s.conv);
    jain.push_back(s.jain);
    drops.push_back(s.drops);
    steady.push_back(s.steady_drops);
  }
  const auto cs = corelite::stats::summarize(conv);
  const auto js = corelite::stats::summarize(jain);
  const auto ds = corelite::stats::summarize(drops);
  const auto ss = corelite::stats::summarize(steady);
  std::printf("%-10s conv[s]: %5.1f +/- %4.1f (min %4.1f max %4.1f)   jain: %.4f +/- %.4f\n",
              name, cs.mean, cs.stddev, cs.min, cs.max, js.mean, js.stddev);
  std::printf("%-10s drops:   %5.0f +/- %4.0f   steady-state drops: %.0f +/- %.0f\n", "",
              ds.mean, ds.stddev, ss.mean, ss.stddev);
}

}  // namespace

int main() {
  std::printf("Convergence statistics over 10 seeds (Figure-5 startup scenario)\n\n");
  report("corelite", sc::Mechanism::Corelite);
  report("csfq", sc::Mechanism::Csfq);
  return 0;
}

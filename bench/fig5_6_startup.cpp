// Reproduces Figures 5 and 6 (paper §4.2): startup and steady-state
// behaviour, Corelite vs weighted CSFQ.
//
// 10 flows with weight ceil(i/2) start simultaneously; 80 s.  Expected
// shape: both mechanisms approximate the ideal weighted shares
// (16.7/33.3/50/66.7/83.3 pkt/s) in steady state, but Corelite
// converges faster — its flows receive no congestion notifications
// until near their fair share and experience no packet drops, while
// CSFQ's fair-share estimate is wrong during startup, causing drops and
// slower convergence (the paper reports ~30 s slower).
#include <cstdio>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

namespace {

double run_one(const char* figure, sc::Mechanism m) {
  const auto spec = sc::fig5_simultaneous_start(m);
  const auto r = sc::run_paper_scenario(spec);
  bu::maybe_export_artifacts((std::string("fig5_6_") + sc::mechanism_name(m)).c_str(), spec, r);
  std::printf("\n== %s: %s ==\n", figure, sc::mechanism_name(m).c_str());
  bu::print_rate_table(spec, r, 0.0, 80.0, 4.0);
  bu::print_summary(sc::mechanism_name(m).c_str(), spec, r, 40.0, 80.0, 40.0);

  // Latest per-flow convergence time = the mechanism's convergence time.
  const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
  double latest = 0.0;
  for (std::size_t i = 1; i <= spec.num_flows; ++i) {
    const auto f = static_cast<corelite::net::FlowId>(i);
    latest = std::max(latest, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
  }
  std::printf("convergence (all flows within 30%% of ideal): t=%.0f s\n", latest);
  return latest;
}

}  // namespace

int main() {
  std::printf("== Figures 5 & 6: simultaneous startup, Corelite vs weighted CSFQ ==\n");
  std::printf("10 flows, weights ceil(i/2), all start at t=0; 80 s\n");
  const double t_corelite = run_one("Figure 5", sc::Mechanism::Corelite);
  const double t_csfq = run_one("Figure 6", sc::Mechanism::Csfq);
  std::printf("\n== Comparison ==\n");
  std::printf("Corelite converged by t=%.0f s; CSFQ by t=%.0f s (paper: Corelite ~30 s faster)\n",
              t_corelite, t_csfq);
  return 0;
}

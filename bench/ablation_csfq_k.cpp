// Ablation: CSFQ's averaging constants K / K_link, contrasted with
// Corelite's parameter insensitivity.
//
// CSFQ's fair-share estimate depends on exponential averaging windows;
// the Corelite paper argues its own feedback scheme "does not depend on
// the accuracy of explicit fair share measurement unlike CSFQ".  This
// sweep quantifies that: CSFQ's loss/fairness moves visibly with K
// while Corelite's analogous knob (the core epoch) barely matters
// (compare bench/ablation_epoch).
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: CSFQ averaging constants K = K_link (vs Corelite's epoch)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-10s %-10s %-12s %-10s %-12s %-10s\n", "K[ms]", "drops", "steadyDrops",
              "jain", "thru[pkt/s]", "conv[s]");

  for (double ms : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Csfq);
    spec.csfq.k_flow = corelite::sim::TimeDelta::millis(ms);
    spec.csfq.k_link = corelite::sim::TimeDelta::millis(ms);
    spec.csfq.k_alpha = corelite::sim::TimeDelta::millis(ms);
    const auto r = sc::run_paper_scenario(spec);

    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    double thru = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
      thru += static_cast<double>(r.tracker.series(f).delivered) / 80.0;
    }
    std::printf("%-10.0f %-10llu %-12d %-10.4f %-12.1f %-10.0f\n", ms,
                static_cast<unsigned long long>(r.total_data_drops), steady,
                corelite::stats::jain_index(rates, weights), thru, conv);
  }
  return 0;
}

// Ablation (paper §4.4): sensitivity to the core congestion epoch.
//
// The paper reports that "simulations with different core router epoch
// sizes ... indicate that Corelite is not very sensitive to these
// parameters".  Sweep the epoch from 25 to 400 ms on the Figure-5
// startup scenario and report fairness, loss and convergence.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: core congestion-epoch size (paper section 4.4 claim)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-10s %-8s %-12s %-10s %-12s %-10s\n", "epoch[ms]", "drops", "steadyDrops",
              "jain", "mean_q_avg", "conv[s]");

  for (double ms : {25.0, 50.0, 100.0, 200.0, 400.0}) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.corelite.core_epoch = corelite::sim::TimeDelta::millis(ms);
    const auto r = sc::run_paper_scenario(spec);

    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
    }
    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    double mq = 0.0;
    for (double q : r.mean_q_avg) mq += q;
    if (!r.mean_q_avg.empty()) mq /= static_cast<double>(r.mean_q_avg.size());

    std::printf("%-10.0f %-8llu %-12d %-10.4f %-12.2f %-10.0f\n", ms,
                static_cast<unsigned long long>(r.total_data_drops), steady,
                corelite::stats::jain_index(rates, weights), mq, conv);
  }
  return 0;
}

// Ablation: all four in-network mechanisms side by side on the same
// workload — Corelite with the stateless selector (§3.2), Corelite with
// the marker cache (§2.2), weighted CSFQ, plain drop-tail FIFO, and RED.
//
// This checks the §3.2 equivalence claim (cache vs stateless) and the
// related-work discussion (FIFO and RED "provide no fairness
// guarantees").
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

namespace {

struct Row {
  const char* name;
  sc::Mechanism mechanism;
  corelite::qos::SelectorKind selector = corelite::qos::SelectorKind::Stateless;
};

}  // namespace

int main() {
  std::printf("Ablation: in-network mechanism comparison\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-22s %-8s %-12s %-10s %-12s %-8s %-11s %-11s\n", "mechanism", "drops",
              "steadyDrops", "jain", "thru[pkt/s]", "conv[s]", "delay50[ms]", "delay99[ms]");

  const Row rows[] = {
      {"corelite/stateless", sc::Mechanism::Corelite, corelite::qos::SelectorKind::Stateless},
      {"corelite/markercache", sc::Mechanism::Corelite, corelite::qos::SelectorKind::MarkerCache},
      {"csfq (weighted)", sc::Mechanism::Csfq},
      {"droptail FIFO", sc::Mechanism::DropTail},
      {"RED", sc::Mechanism::Red},
      {"FRED", sc::Mechanism::Fred},
      {"WFQ (stateful)", sc::Mechanism::Wfq},
      {"ECN bit (DECbit)", sc::Mechanism::EcnBit},
      {"CHOKe", sc::Mechanism::Choke},
      {"SFQ (16 bands)", sc::Mechanism::Sfq},
  };

  for (const auto& row : rows) {
    auto spec = sc::fig5_simultaneous_start(row.mechanism);
    spec.corelite.selector = row.selector;
    const auto r = sc::run_paper_scenario(spec);

    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    double thru = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
      thru += static_cast<double>(r.tracker.series(f).delivered) / 80.0;
    }
    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    // Pooled one-way delay across flows (the queueing cost of the
    // mechanism: Corelite's incipient-congestion control should keep
    // queues — and hence delay — lower than the loss-driven baselines).
    std::vector<double> delays;
    for (const auto& [id, fs] : r.tracker.all()) {
      delays.insert(delays.end(), fs.delay_samples.begin(), fs.delay_samples.end());
    }
    const auto dsum = corelite::stats::summarize(delays);
    std::printf("%-22s %-8llu %-12d %-10.4f %-12.1f %-8.0f %-11.1f %-11.1f\n", row.name,
                static_cast<unsigned long long>(r.total_data_drops), steady,
                corelite::stats::jain_index(rates, weights), thru, conv, dsum.p50 * 1000.0,
                dsum.p99 * 1000.0);
  }
  std::printf(
      "\nExpected shape: both Corelite variants, CSFQ and the stateful WFQ reference\n"
      "reach jain ~1; Corelite is loss-free in steady state while the others drop\n"
      "packets by design; droptail/RED/FRED ignore the rate weights entirely.\n"
      "Corelite matches WFQ's weighted allocation with ZERO per-flow core state —\n"
      "the paper's central claim.  The ECN-bit row shows why: binary congestion\n"
      "marks arrive in proportion to the PACKET rate, so the same LIMD edges\n"
      "converge to EQUAL rates — the normalized-rate marker is what encodes the\n"
      "weights.\n");
  return 0;
}

// Scalability: the point of core-statelessness.
//
// The paper's motivation (§1): core routers serve "hundreds of
// thousands of flows simultaneously", so per-flow state in the core
// does not scale.  This bench grows the flow population on the Figure-2
// topology and reports, per mechanism:
//   - the amount of per-flow state a core router carries, measured from
//     the routers themselves (Corelite/CSFQ: none — two scalars per
//     LINK regardless of flows; WFQ: tag state per active flow),
//   - fairness at scale, and
//   - simulator throughput (events and simulated-vs-wall time).
// WFQ runs alongside the two core-stateless schemes so the measured
// state column actually contrasts O(1) with O(flows).
//
// The grid executes through the sweep runner, so
//   --jobs N    runs N universes in parallel (rows stay in grid order
//               and are bit-identical to --jobs 1), and
//   --sweep R   repeats every cell R times over derived seeds and adds
//               a mean±ci95 fairness summary.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runner/sweep.h"
#include "sim/hotpath.h"
#include "stats/aggregate.h"
#include "telemetry/harness.h"
#include "telemetry/metrics.h"

namespace sc = corelite::scenario;
namespace rn = corelite::runner;
namespace tel = corelite::telemetry;

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  std::size_t repeats = 1;
  std::uint64_t base_seed = 1;
  bool profile = false;
  bool telemetry = false;
  std::string trace_path;
  std::string manifest_path = "run_manifest.json";
  double heartbeat_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--jobs") == 0 && more) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sweep") == 0 && more) {
      repeats = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && more) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && more) {
      trace_path = argv[++i];
      telemetry = true;
    } else if (std::strcmp(argv[i], "--manifest") == 0 && more) {
      manifest_path = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat") == 0 && more) {
      heartbeat_sec = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--sweep REPEATS] [--seed S] [--profile] [--telemetry] "
                   "[--trace-out PATH] [--manifest PATH] [--heartbeat SEC]\n",
                   argv[0]);
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;
  if (repeats < 1) repeats = 1;
  tel::set_enabled(telemetry);

  std::vector<rn::RunDescriptor> runs;
  for (std::size_t n : {10u, 20u, 40u, 80u}) {
    for (const auto mech : {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::Wfq}) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        rn::RunDescriptor d;
        d.scenario = "fig5";  // Figure-2 topology with the population overridden
        d.mechanism = mech;
        d.num_flows = n;
        d.duration_sec = 60.0;
        d.weights.resize(n);
        for (std::size_t i = 0; i < n; ++i) d.weights[i] = static_cast<double>(i % 3 + 1);
        d.repeat = rep;
        d.seed = rn::derive_seed(base_seed, rep);
        runs.push_back(std::move(d));
      }
    }
  }

  std::printf("Scalability: flow population sweep (Figure-2 topology, 60 s runs)\n");
  std::printf("%zu runs, %zu job(s), %zu repeat(s) per cell\n\n", runs.size(), jobs, repeats);
  std::printf("%-8s %-10s %-8s %-10s %-10s %-12s %-14s %-12s\n", "flows", "mech", "rep", "jain",
              "drops", "events", "wall[ms]", "core state");

  tel::PhaseTimer phases;
  phases.start("run");
  tel::TraceWriter trace;
  std::unique_ptr<tel::LinkTraceCollector> collector;
  rn::SweepRunner runner{jobs};
  if (!trace_path.empty()) {
    runner.set_run_instrument(0, tel::congested_link_instrument(trace, collector));
  }
  if (heartbeat_sec > 0.0) runner.set_heartbeat(&std::cerr, heartbeat_sec);
  const auto results = runner.run(runs);
  phases.start("report");

  corelite::stats::SweepAggregator agg;
  for (const auto& r : results) {
    if (!r.ok) {
      std::printf("%-8zu %-10s run failed\n", r.desc.num_flows,
                  sc::mechanism_name(r.desc.mechanism).c_str());
      continue;
    }
    rn::record_metrics(agg, r);
    char state[32];
    std::snprintf(state, sizeof state, "%zu flows", r.core_flow_state);
    std::printf("%-8zu %-10s %-8zu %-10.4f %-10llu %-12llu %-14.1f %-12s\n", r.desc.num_flows,
                sc::mechanism_name(r.desc.mechanism).c_str(), r.desc.repeat, r.jain,
                static_cast<unsigned long long>(r.total_drops),
                static_cast<unsigned long long>(r.events), r.wall_ms, state);
  }

  if (repeats > 1) {
    std::printf("\nPer-cell fairness over %zu seeds\n%-28s %-4s %-22s\n", repeats, "cell", "n",
                "jain (mean +- ci95)");
    for (const auto& cell : agg.snapshot()) {
      for (const auto& m : cell.metrics) {
        if (m.name != "jain") continue;
        std::printf("%-28s %-4zu %.4f +- %.4f\n", cell.name.c_str(), m.acc.count(),
                    m.acc.mean(), m.acc.ci95_half_width());
      }
    }
  }

  if (profile) {
    const corelite::sim::HotPathCounters c = corelite::sim::aggregated_hotpath_counters();
    std::printf("\nhot-path profile (totals across all %zu runs)\n", runs.size());
    std::printf("  exp calls            %12llu  (cache hits %llu, %.1f%%)\n",
                static_cast<unsigned long long>(c.exp_calls),
                static_cast<unsigned long long>(c.exp_cache_hits), c.exp_hit_rate() * 100.0);
    std::printf("  pow calls            %12llu  (cache hits %llu, %.1f%%)\n",
                static_cast<unsigned long long>(c.pow_calls),
                static_cast<unsigned long long>(c.pow_cache_hits), c.pow_hit_rate() * 100.0);
    std::printf("  rng draws            %12llu\n", static_cast<unsigned long long>(c.rng_draws));
    std::printf("  observer dispatches  %12llu\n",
                static_cast<unsigned long long>(c.observer_dispatches));
    std::printf("  series appends       %12llu\n",
                static_cast<unsigned long long>(c.series_appends));
    std::printf("  wheel inserts        %12llu  (%.1f%% of events; heap %llu, cascades %llu)\n",
                static_cast<unsigned long long>(c.wheel_inserts), c.wheel_insert_rate() * 100.0,
                static_cast<unsigned long long>(c.heap_inserts),
                static_cast<unsigned long long>(c.wheel_cascades));
    std::printf("  batch drains         %12llu  (%llu completions fused, mean %.2f/drain)\n",
                static_cast<unsigned long long>(c.batch_drains),
                static_cast<unsigned long long>(c.batch_drained), c.mean_batch_len());
  }

  std::printf(
      "\nExpected shape: weighted fairness holds as the population grows (the\n"
      "per-unit-weight share shrinks toward the LIMD oscillation amplitude, so\n"
      "jain decays gently); measured core flow state stays 0 for the core-\n"
      "stateless schemes at every scale while WFQ's grows with the population\n"
      "— the paper's scalability argument.\n");

  if (telemetry) {
    const std::uint64_t digest = rn::combined_digest(results);
    std::printf("result digest: %s\n", tel::digest_hex(digest).c_str());
    if (!trace_path.empty()) {
      tel::add_wall_spans(trace, results);
      if (!tel::write_trace_file(trace, trace_path, std::cerr)) return 1;
    }
    phases.stop();
    tel::RunManifest manifest;
    manifest.tool = "scale_flows";
    manifest.scenario = "fig5";
    manifest.mechanism = "corelite,csfq,wfq";
    manifest.base_seed = base_seed;
    manifest.runs = results.size();
    manifest.jobs = jobs;
    for (const auto& r : results) manifest.events += r.events;
    manifest.result_digest = digest;
    manifest.hotpath = corelite::sim::aggregated_hotpath_counters();
    manifest.wall_phases_ms = phases.phases();
    if (!trace_path.empty()) manifest.extra.emplace_back("trace", trace_path);
    if (!tel::write_manifest_file(manifest, manifest_path, std::cerr)) return 1;
  }
  return 0;
}

// Scalability: the point of core-statelessness.
//
// The paper's motivation (§1): core routers serve "hundreds of
// thousands of flows simultaneously", so per-flow state in the core
// does not scale.  This bench grows the flow population on the Figure-2
// topology and reports, per mechanism:
//   - the amount of per-flow state a core router carries, measured from
//     the routers themselves (Corelite/CSFQ: none — two scalars per
//     LINK regardless of flows; WFQ: tag state per active flow),
//   - fairness at scale, and
//   - simulator throughput (events and simulated-vs-wall time).
// WFQ runs alongside the two core-stateless schemes so the measured
// state column actually contrasts O(1) with O(flows).
//
// The grid executes through the sweep runner, so
//   --jobs N    runs N universes in parallel (rows stay in grid order
//               and are bit-identical to --jobs 1), and
//   --sweep R   repeats every cell R times over derived seeds and adds
//               a mean±ci95 fairness summary.
//
// After the grid, the SCALING CURVE runs generated workloads at bench
// scale — 1k → 10k → 100k flows on a generated topology (1M with
// --stretch) — and records wall time, events/s, hot-path op counts and
// peak RSS per row into BENCH_scale.json.  The curve is the workload
// axis the paper motivates ("hundreds of thousands of flows"): each row
// is one deterministic generated scenario, so the per-row digest doubles
// as a regression gate.
//   --curve A,B,...      override the curve's flow counts (empty: skip)
//   --curve-topo T       generated topology (pl8, ft4, isp32, ...)
//   --curve-duration S   simulated seconds per curve row
//   --stretch            append the 1M-flow stretch row
#include <sys/resource.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "runner/sweep.h"
#include "sim/hotpath.h"
#include "sim/parallel/thread_budget.h"
#include "stats/aggregate.h"
#include "telemetry/harness.h"
#include "telemetry/metrics.h"

namespace sc = corelite::scenario;
namespace rn = corelite::runner;
namespace tel = corelite::telemetry;

namespace {

/// Current resident set size in KB from /proc/self/status (-1 if the
/// platform doesn't expose it — the JSON then records -1, not garbage).
long current_rss_kb() {
  std::ifstream in{"/proc/self/status"};
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmRSS:", 0) == 0) return std::strtol(line.c_str() + 6, nullptr, 10);
  }
  return -1;
}

/// Process-lifetime peak RSS in KB (ru_maxrss is KB on Linux).
long peak_rss_kb() {
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return -1;
  return ru.ru_maxrss;
}

struct CurveRow {
  std::size_t flows = 0;
  std::string scenario;
  std::size_t lp = 1;  ///< requested LP count (1 = serial engine)
  bool fluid = false;  ///< row ran with fluid fast-forward jumps enabled
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  double events_per_flow = 0.0;
  /// Fraction of simulated time the convergence detector classified as
  /// steady (fast-forwardable); packet rows measure it in observe-only
  /// mode, so fluid-mode wins are attributable row by row.
  double steady_state_fraction = 0.0;
  double fluid_ff_sec = 0.0;            ///< simulated seconds skipped by jumps
  std::uint64_t fluid_jumps = 0;
  std::uint64_t fluid_events_elided = 0;
  double speedup_vs_packet = 0.0;  ///< packet-row wall / this row's wall (fluid rows)
  /// Certification-attempt accounting (fluid rows; zeros elsewhere):
  /// how hard the controller worked for its jumps, and why it balked.
  std::uint64_t cert_attempts = 0;
  std::uint64_t cert_rejects_min_skip = 0;
  std::uint64_t cert_rejects_drift = 0;
  std::uint64_t cert_rejects_agreement = 0;
  double cert_mean_dwell_at_accept = 0.0;
  std::uint64_t delivered = 0;
  std::uint64_t drops = 0;
  double jain = 0.0;
  std::uint64_t rng_draws = 0;
  std::uint64_t wheel_inserts = 0;
  std::uint64_t series_appends = 0;
  std::uint64_t lp_barriers = 0;
  std::uint64_t cross_lp_events = 0;
  std::uint64_t mailbox_flushes = 0;
  double lookahead_ms = 0.0;
  double cross_lp_fraction = 0.0;  ///< cross-LP handoffs / events
  double speedup_vs_serial = 0.0;  ///< wall(lp=1, same flows) / wall(this row)
  /// lp > 1 rows re-run with --lp-threads 1: the digest must not depend
  /// on the OS thread count (the engine's determinism contract).
  bool digest_match_serial_stepped = false;
  long rss_kb = -1;
  long peak_kb = -1;
  std::uint64_t digest = 0;
  bool ok = false;
};

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 1;
  std::size_t repeats = 1;
  std::uint64_t base_seed = 1;
  bool profile = false;
  bool telemetry = false;
  bool stretch = false;
  std::string trace_path;
  std::string manifest_path = "run_manifest.json";
  std::string curve_topo = "pl8";
  std::string curve_list = "1000,10000,100000";
  std::string lp_list = "1,4";
  double curve_duration = 10.0;
  bool fluid_axis = true;
  double fluid_duration = 300.0;
  double heartbeat_sec = 0.0;
  for (int i = 1; i < argc; ++i) {
    const bool more = i + 1 < argc;
    if (std::strcmp(argv[i], "--jobs") == 0 && more) {
      jobs = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--sweep") == 0 && more) {
      repeats = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--seed") == 0 && more) {
      base_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      profile = true;
    } else if (std::strcmp(argv[i], "--telemetry") == 0) {
      telemetry = true;
    } else if (std::strcmp(argv[i], "--stretch") == 0) {
      stretch = true;
    } else if (std::strcmp(argv[i], "--curve") == 0 && more) {
      curve_list = argv[++i];
    } else if (std::strcmp(argv[i], "--curve-topo") == 0 && more) {
      curve_topo = argv[++i];
    } else if (std::strcmp(argv[i], "--curve-duration") == 0 && more) {
      curve_duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--lp-list") == 0 && more) {
      lp_list = argv[++i];
    } else if (std::strcmp(argv[i], "--no-fluid-axis") == 0) {
      fluid_axis = false;
    } else if (std::strcmp(argv[i], "--fluid-duration") == 0 && more) {
      fluid_duration = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && more) {
      trace_path = argv[++i];
      telemetry = true;
    } else if (std::strcmp(argv[i], "--manifest") == 0 && more) {
      manifest_path = argv[++i];
    } else if (std::strcmp(argv[i], "--heartbeat") == 0 && more) {
      heartbeat_sec = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--jobs N] [--sweep REPEATS] [--seed S] [--profile] [--telemetry] "
                   "[--trace-out PATH] [--manifest PATH] [--heartbeat SEC] "
                   "[--curve A,B,...] [--curve-topo T] [--curve-duration S] [--lp-list A,B,...] "
                   "[--no-fluid-axis] [--fluid-duration S] [--stretch]\n",
                   argv[0]);
      return 2;
    }
  }
  if (jobs < 1) jobs = 1;
  if (repeats < 1) repeats = 1;
  tel::set_enabled(telemetry);

  // ---- Scaling curve: generated workloads at bench scale ----------------
  std::vector<std::size_t> curve;
  {
    std::stringstream ss{curve_list};
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      char* end = nullptr;
      // strtoull silently wraps negatives; reject the sign up front so
      // "-100" fails as non-positive instead of becoming 2^64-100.
      const unsigned long long n =
          item[0] == '-' ? 0 : std::strtoull(item.c_str(), &end, 10);
      if (n == 0 || end == item.c_str() || *end != '\0') {
        std::fprintf(stderr, "--curve entry '%s': flow counts must be positive integers\n",
                     item.c_str());
        return 2;
      }
      if (!curve.empty() && n <= curve.back()) {
        std::fprintf(stderr,
                     "--curve entry '%llu' after '%zu': flow counts must be strictly "
                     "increasing (sorted, no duplicates)\n",
                     n, curve.back());
        return 2;
      }
      curve.push_back(static_cast<std::size_t>(n));
    }
  }
  if (stretch && (curve.empty() || curve.back() < 1000000)) curve.push_back(1000000);
  if (curve_duration <= 0.0) curve_duration = 10.0;

  std::vector<std::size_t> lps;
  {
    std::stringstream ss{lp_list};
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (item.empty()) continue;
      char* end = nullptr;
      const unsigned long long v = std::strtoull(item.c_str(), &end, 10);
      if (end == item.c_str() || *end != '\0' || v == 0) {
        std::fprintf(stderr, "malformed --lp-list entry '%s'\n", item.c_str());
        return 2;
      }
      lps.push_back(static_cast<std::size_t>(v));
    }
    if (lps.empty()) lps.push_back(1);
  }


  std::vector<rn::RunDescriptor> runs;
  for (std::size_t n : {10u, 20u, 40u, 80u}) {
    for (const auto mech : {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::Wfq}) {
      for (std::size_t rep = 0; rep < repeats; ++rep) {
        rn::RunDescriptor d;
        d.scenario = "fig5";  // Figure-2 topology with the population overridden
        d.mechanism = mech;
        d.num_flows = n;
        d.duration_sec = 60.0;
        d.weights.resize(n);
        for (std::size_t i = 0; i < n; ++i) d.weights[i] = static_cast<double>(i % 3 + 1);
        d.repeat = rep;
        d.seed = rn::derive_seed(base_seed, rep);
        runs.push_back(std::move(d));
      }
    }
  }

  std::printf("Scalability: flow population sweep (Figure-2 topology, 60 s runs)\n");
  std::printf("%zu runs, %zu job(s), %zu repeat(s) per cell\n\n", runs.size(), jobs, repeats);
  std::printf("%-8s %-10s %-8s %-10s %-10s %-12s %-14s %-12s\n", "flows", "mech", "rep", "jain",
              "drops", "events", "wall[ms]", "core state");

  tel::PhaseTimer phases;
  phases.start("run");
  tel::TraceWriter trace;
  std::unique_ptr<tel::LinkTraceCollector> collector;
  rn::SweepRunner runner{jobs};
  if (!trace_path.empty()) {
    runner.set_run_instrument(0, tel::congested_link_instrument(trace, collector));
  }
  if (heartbeat_sec > 0.0) runner.set_heartbeat(&std::cerr, heartbeat_sec);
  const auto results = runner.run(runs);
  phases.start("report");

  corelite::stats::SweepAggregator agg;
  for (const auto& r : results) {
    if (!r.ok) {
      std::printf("%-8zu %-10s run failed\n", r.desc.num_flows,
                  sc::mechanism_name(r.desc.mechanism).c_str());
      continue;
    }
    rn::record_metrics(agg, r);
    char state[32];
    std::snprintf(state, sizeof state, "%zu flows", r.core_flow_state);
    std::printf("%-8zu %-10s %-8zu %-10.4f %-10llu %-12llu %-14.1f %-12s\n", r.desc.num_flows,
                sc::mechanism_name(r.desc.mechanism).c_str(), r.desc.repeat, r.jain,
                static_cast<unsigned long long>(r.total_drops),
                static_cast<unsigned long long>(r.events), r.wall_ms, state);
  }

  if (repeats > 1) {
    std::printf("\nPer-cell fairness over %zu seeds\n%-28s %-4s %-22s\n", repeats, "cell", "n",
                "jain (mean +- ci95)");
    for (const auto& cell : agg.snapshot()) {
      for (const auto& m : cell.metrics) {
        if (m.name != "jain") continue;
        std::printf("%-28s %-4zu %.4f +- %.4f\n", cell.name.c_str(), m.acc.count(),
                    m.acc.mean(), m.acc.ci95_half_width());
      }
    }
  }

  if (profile) {
    const corelite::sim::HotPathCounters c = corelite::sim::aggregated_hotpath_counters();
    std::printf("\nhot-path profile (totals across all %zu runs)\n", runs.size());
    std::printf("  exp calls            %12llu  (cache hits %llu, %.1f%%)\n",
                static_cast<unsigned long long>(c.exp_calls),
                static_cast<unsigned long long>(c.exp_cache_hits), c.exp_hit_rate() * 100.0);
    std::printf("  pow calls            %12llu  (cache hits %llu, %.1f%%)\n",
                static_cast<unsigned long long>(c.pow_calls),
                static_cast<unsigned long long>(c.pow_cache_hits), c.pow_hit_rate() * 100.0);
    std::printf("  rng draws            %12llu\n", static_cast<unsigned long long>(c.rng_draws));
    std::printf("  observer dispatches  %12llu\n",
                static_cast<unsigned long long>(c.observer_dispatches));
    std::printf("  series appends       %12llu\n",
                static_cast<unsigned long long>(c.series_appends));
    std::printf("  wheel inserts        %12llu  (%.1f%% of events; heap %llu, cascades %llu)\n",
                static_cast<unsigned long long>(c.wheel_inserts), c.wheel_insert_rate() * 100.0,
                static_cast<unsigned long long>(c.heap_inserts),
                static_cast<unsigned long long>(c.wheel_cascades));
    std::printf("  batch drains         %12llu  (%llu completions fused, mean %.2f/drain)\n",
                static_cast<unsigned long long>(c.batch_drains),
                static_cast<unsigned long long>(c.batch_drained), c.mean_batch_len());
    std::printf("  lp barriers          %12llu  (cross-LP events %llu, mailbox flushes %llu)\n",
                static_cast<unsigned long long>(c.lp_barriers),
                static_cast<unsigned long long>(c.cross_lp_events),
                static_cast<unsigned long long>(c.mailbox_flushes));
  }

  std::printf(
      "\nExpected shape: weighted fairness holds as the population grows (the\n"
      "per-unit-weight share shrinks toward the LIMD oscillation amplitude, so\n"
      "jain decays gently); measured core flow state stays 0 for the core-\n"
      "stateless schemes at every scale while WFQ's grows with the population\n"
      "— the paper's scalability argument.\n");

  const std::size_t hw_threads = corelite::sim::par::ThreadBudget::hardware_threads();
  if (!curve.empty()) {
    phases.start("curve");
    std::printf("\nScaling curve: gen-%s topology, corelite, %.1f s per row, %zu hw thread(s)\n",
                curve_topo.c_str(), curve_duration, hw_threads);
    std::printf("%-10s %-4s %-12s %-12s %-12s %-12s %-10s %-8s %-9s %-10s %-10s\n", "flows", "lp",
                "wall[ms]", "events", "ev/s", "delivered", "drops", "jain", "speedup", "rss[MB]",
                "peak[MB]");
    std::vector<CurveRow> rows;
    for (const std::size_t n : curve) {
      double serial_wall_ms = 0.0;
      for (const std::size_t lp : lps) {
        rn::RunDescriptor d;
        d.scenario = "gen-" + curve_topo + "-" + std::to_string(n);
        d.mechanism = sc::Mechanism::Corelite;
        d.duration_sec = curve_duration;
        d.seed = rn::derive_seed(base_seed, 0);
        d.lp = lp;
        // Serial rows carry the convergence detector in observe-only
        // mode: the packet results stay authoritative while the row
        // records how much of its simulated time was fast-forwardable.
        // The detector is serial, so lp > 1 rows skip it.
        d.fluid_observe = lp <= 1;
        const corelite::sim::HotPathCounters before = corelite::sim::aggregated_hotpath_counters();
        const rn::RunResult r = rn::execute_run(d);
        const corelite::sim::HotPathCounters after = corelite::sim::aggregated_hotpath_counters();
        CurveRow row;
        row.flows = n;
        row.scenario = d.scenario;
        row.lp = lp;
        row.ok = r.ok;
        if (!r.ok) {
          std::printf("%-10zu run failed (scenario '%s')\n", n, d.scenario.c_str());
          rows.push_back(std::move(row));
          continue;
        }
        row.wall_ms = r.wall_ms;
        row.events = r.events;
        row.events_per_sec =
            r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3) : 0.0;
        row.events_per_flow = static_cast<double>(r.events) / static_cast<double>(n);
        row.steady_state_fraction =
            curve_duration > 0.0
                ? (r.fluid_steady_sec + r.fluid_ff_sec) / curve_duration
                : 0.0;
        row.delivered = r.delivered;
        row.drops = r.total_drops;
        row.jain = r.jain;
        row.rng_draws = after.rng_draws - before.rng_draws;
        row.wheel_inserts = after.wheel_inserts - before.wheel_inserts;
        row.series_appends = after.series_appends - before.series_appends;
        row.lp_barriers = after.lp_barriers - before.lp_barriers;
        row.cross_lp_events = after.cross_lp_events - before.cross_lp_events;
        row.mailbox_flushes = after.mailbox_flushes - before.mailbox_flushes;
        row.lookahead_ms = (after.lookahead_ns - before.lookahead_ns) / 1e6;
        row.cross_lp_fraction =
            row.events > 0 ? static_cast<double>(row.cross_lp_events) /
                                 static_cast<double>(row.events)
                           : 0.0;
        if (lp <= 1) serial_wall_ms = r.wall_ms;
        row.speedup_vs_serial =
            serial_wall_ms > 0.0 && row.wall_ms > 0.0 ? serial_wall_ms / row.wall_ms : 0.0;
        if (lp > 1) {
          // Determinism witness: the digest is a function of (spec, lp
          // count), never of the OS thread count — re-run the same row
          // stepped on one thread and compare.
          rn::RunDescriptor ds = d;
          ds.lp_threads = 1;
          const rn::RunResult rs = rn::execute_run(ds);
          row.digest_match_serial_stepped = rs.ok && rs.digest == r.digest;
          if (!row.digest_match_serial_stepped) {
            std::fprintf(stderr,
                         "DIGEST MISMATCH: %s lp=%zu auto-threads %016llx vs 1-thread %016llx\n",
                         d.scenario.c_str(), lp, static_cast<unsigned long long>(r.digest),
                         static_cast<unsigned long long>(rs.digest));
            row.ok = false;
          }
        } else {
          row.digest_match_serial_stepped = true;
        }
        row.rss_kb = current_rss_kb();
        row.peak_kb = peak_rss_kb();
        row.digest = r.digest;
        std::printf(
            "%-10zu %-4zu %-12.1f %-12llu %-12.3g %-12llu %-10llu %-8.4f %-9.2f %-10.1f %-10.1f\n",
            n, lp, row.wall_ms, static_cast<unsigned long long>(row.events), row.events_per_sec,
            static_cast<unsigned long long>(row.delivered),
            static_cast<unsigned long long>(row.drops), row.jain, row.speedup_vs_serial,
            static_cast<double>(row.rss_kb) / 1024.0, static_cast<double>(row.peak_kb) / 1024.0);
        rows.push_back(std::move(row));
      }
    }

    // ---- Fluid fast-forward axis -------------------------------------
    // Same flow counts on the steady variant of the generated scenario
    // (no churn, arrivals compressed into the first 5%), long enough
    // that converged cruise dominates — the regime the hybrid engine is
    // for.  Each count runs twice: a packet baseline with the detector
    // in observe-only mode (so the row's steady fraction is measured by
    // the identical detector workload the fluid row carries — the
    // speedup isolates event elision, not detector overhead), then the
    // same scenario with jumps enabled.
    if (fluid_axis) {
      phases.start("fluid");
      std::printf(
          "\nFluid fast-forward axis: gen-%s-*-steady, corelite, %.1f s per row\n",
          curve_topo.c_str(), fluid_duration);
      std::printf("%-10s %-7s %-12s %-12s %-9s %-8s %-9s %-8s %-12s\n", "flows", "mode",
                  "wall[ms]", "events", "ff[s]", "jumps", "steady%", "jain", "speedup");
      for (const std::size_t n : curve) {
        rn::RunDescriptor d;
        d.scenario = "gen-" + curve_topo + "-" + std::to_string(n) + "-steady";
        d.mechanism = sc::Mechanism::Corelite;
        d.duration_sec = fluid_duration;
        d.seed = rn::derive_seed(base_seed, 0);
        d.lp = 1;
        double packet_wall_ms = 0.0;
        for (const bool fluid_on : {false, true}) {
          rn::RunDescriptor df = d;
          df.fluid = fluid_on;
          df.fluid_observe = !fluid_on;
          const rn::RunResult r = rn::execute_run(df);
          CurveRow row;
          row.flows = n;
          row.scenario = df.scenario;
          row.lp = 1;
          row.fluid = fluid_on;
          row.ok = r.ok;
          if (!r.ok) {
            std::printf("%-10zu %-7s run failed (scenario '%s')\n", n,
                        fluid_on ? "fluid" : "packet", df.scenario.c_str());
            rows.push_back(std::move(row));
            continue;
          }
          row.wall_ms = r.wall_ms;
          row.events = r.events;
          row.events_per_sec =
              r.wall_ms > 0.0 ? static_cast<double>(r.events) / (r.wall_ms / 1e3) : 0.0;
          row.events_per_flow = static_cast<double>(r.events) / static_cast<double>(n);
          row.steady_state_fraction =
              fluid_duration > 0.0
                  ? (r.fluid_steady_sec + r.fluid_ff_sec) / fluid_duration
                  : 0.0;
          row.fluid_ff_sec = r.fluid_ff_sec;
          row.fluid_jumps = r.fluid_jumps;
          row.fluid_events_elided = r.fluid_events_elided;
          row.cert_attempts = r.cert_attempts;
          row.cert_rejects_min_skip = r.cert_rejects_min_skip;
          row.cert_rejects_drift = r.cert_rejects_drift;
          row.cert_rejects_agreement = r.cert_rejects_agreement;
          row.cert_mean_dwell_at_accept = r.cert_mean_dwell_at_accept;
          row.delivered = r.delivered;
          row.drops = r.total_drops;
          row.jain = r.jain;
          row.digest_match_serial_stepped = true;
          row.rss_kb = current_rss_kb();
          row.peak_kb = peak_rss_kb();
          row.digest = r.digest;
          if (!fluid_on) packet_wall_ms = r.wall_ms;
          row.speedup_vs_packet = fluid_on && packet_wall_ms > 0.0 && row.wall_ms > 0.0
                                      ? packet_wall_ms / row.wall_ms
                                      : 0.0;
          std::printf("%-10zu %-7s %-12.1f %-12llu %-9.1f %-8llu %-9.1f %-8.4f %-12.2f\n", n,
                      fluid_on ? "fluid" : "packet", row.wall_ms,
                      static_cast<unsigned long long>(row.events), row.fluid_ff_sec,
                      static_cast<unsigned long long>(row.fluid_jumps),
                      row.steady_state_fraction * 100.0, row.jain, row.speedup_vs_packet);
          rows.push_back(std::move(row));
        }
      }
    }

    std::FILE* f = std::fopen("BENCH_scale.json", "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write BENCH_scale.json\n");
      return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"scale_flows_curve\",\n");
    std::fprintf(f, "  \"topology\": \"%s\",\n", curve_topo.c_str());
    std::fprintf(f, "  \"mechanism\": \"corelite\",\n");
    std::fprintf(f, "  \"duration_sec\": %.6g,\n", curve_duration);
    std::fprintf(f, "  \"base_seed\": %llu,\n", static_cast<unsigned long long>(base_seed));
    std::fprintf(f, "  \"hw_threads\": %zu,\n", hw_threads);
    std::fprintf(f, "  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CurveRow& row = rows[i];
      std::fprintf(f,
                   "    {\"flows\": %zu, \"scenario\": \"%s\", \"lp\": %zu, \"hw_threads\": %zu, "
                   "\"fluid\": %s, \"ok\": %s, \"wall_ms\": %.3f, "
                   "\"events\": %llu, \"events_per_sec\": %.6g, \"events_per_flow\": %.6g, "
                   "\"steady_state_fraction\": %.6g, \"fluid_ff_sec\": %.6g, "
                   "\"fluid_jumps\": %llu, \"fluid_events_elided\": %llu, "
                   "\"cert_attempts\": %llu, \"cert_rejects_min_skip\": %llu, "
                   "\"cert_rejects_drift\": %llu, \"cert_rejects_agreement\": %llu, "
                   "\"cert_mean_dwell_at_accept\": %.6g, "
                   "\"speedup_vs_packet\": %.3f, \"delivered\": %llu, "
                   "\"drops\": %llu, \"jain\": %.6f, \"rng_draws\": %llu, "
                   "\"wheel_inserts\": %llu, \"series_appends\": %llu, "
                   "\"lp_barriers\": %llu, \"cross_lp_events\": %llu, "
                   "\"mailbox_flushes\": %llu, \"lookahead_ms\": %.6g, "
                   "\"cross_lp_fraction\": %.6g, \"speedup_vs_serial\": %.3f, "
                   "\"digest_match_serial_stepped\": %s, \"rss_kb\": %ld, "
                   "\"peak_rss_kb\": %ld, \"digest\": \"%s\"}%s\n",
                   row.flows, row.scenario.c_str(), row.lp, hw_threads,
                   row.fluid ? "true" : "false", row.ok ? "true" : "false", row.wall_ms,
                   static_cast<unsigned long long>(row.events), row.events_per_sec,
                   row.events_per_flow, row.steady_state_fraction, row.fluid_ff_sec,
                   static_cast<unsigned long long>(row.fluid_jumps),
                   static_cast<unsigned long long>(row.fluid_events_elided),
                   static_cast<unsigned long long>(row.cert_attempts),
                   static_cast<unsigned long long>(row.cert_rejects_min_skip),
                   static_cast<unsigned long long>(row.cert_rejects_drift),
                   static_cast<unsigned long long>(row.cert_rejects_agreement),
                   row.cert_mean_dwell_at_accept,
                   row.speedup_vs_packet,
                   static_cast<unsigned long long>(row.delivered),
                   static_cast<unsigned long long>(row.drops), row.jain,
                   static_cast<unsigned long long>(row.rng_draws),
                   static_cast<unsigned long long>(row.wheel_inserts),
                   static_cast<unsigned long long>(row.series_appends),
                   static_cast<unsigned long long>(row.lp_barriers),
                   static_cast<unsigned long long>(row.cross_lp_events),
                   static_cast<unsigned long long>(row.mailbox_flushes), row.lookahead_ms,
                   row.cross_lp_fraction, row.speedup_vs_serial,
                   row.digest_match_serial_stepped ? "true" : "false", row.rss_kb, row.peak_kb,
                   tel::digest_hex(row.digest).c_str(), i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote BENCH_scale.json (%zu rows)\n", rows.size());
    bool any_failed = false;
    for (const CurveRow& row : rows) any_failed = any_failed || !row.ok;
    if (any_failed) return 1;
  }

  if (telemetry) {
    const std::uint64_t digest = rn::combined_digest(results);
    std::printf("result digest: %s\n", tel::digest_hex(digest).c_str());
    if (!trace_path.empty()) {
      tel::add_wall_spans(trace, results);
      if (!tel::write_trace_file(trace, trace_path, std::cerr)) return 1;
    }
    phases.stop();
    tel::RunManifest manifest;
    manifest.tool = "scale_flows";
    manifest.scenario = "fig5";
    manifest.mechanism = "corelite,csfq,wfq";
    manifest.base_seed = base_seed;
    manifest.runs = results.size();
    manifest.jobs = jobs;
    for (const auto& r : results) manifest.events += r.events;
    manifest.result_digest = digest;
    manifest.hotpath = corelite::sim::aggregated_hotpath_counters();
    manifest.wall_phases_ms = phases.phases();
    if (!trace_path.empty()) manifest.extra.emplace_back("trace", trace_path);
    if (!tel::write_manifest_file(manifest, manifest_path, std::cerr)) return 1;
  }
  return 0;
}

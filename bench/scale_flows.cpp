// Scalability: the point of core-statelessness.
//
// The paper's motivation (§1): core routers serve "hundreds of
// thousands of flows simultaneously", so per-flow state in the core
// does not scale.  This bench grows the flow population on the Figure-2
// topology and reports, per mechanism:
//   - the amount of per-flow state a core router carries, measured from
//     the routers themselves (Corelite/CSFQ: none — two scalars per
//     LINK regardless of flows; WFQ: tag state per active flow),
//   - fairness at scale, and
//   - simulator throughput (events and simulated-vs-wall time).
// WFQ runs alongside the two core-stateless schemes so the measured
// state column actually contrasts O(1) with O(flows).
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;

int main() {
  std::printf("Scalability: flow population sweep (Figure-2 topology, 60 s runs)\n\n");
  std::printf("%-8s %-10s %-10s %-10s %-12s %-14s %-12s\n", "flows", "mech", "jain",
              "drops", "events", "wall[ms]", "core state");

  for (std::size_t n : {10u, 20u, 40u, 80u}) {
    for (const auto mech :
         {sc::Mechanism::Corelite, sc::Mechanism::Csfq, sc::Mechanism::Wfq}) {
      sc::ScenarioSpec spec;
      spec.mechanism = mech;
      spec.num_flows = n;
      spec.duration = corelite::sim::SimTime::seconds(60);
      spec.weights.resize(n);
      for (std::size_t i = 0; i < n; ++i) spec.weights[i] = static_cast<double>(i % 3 + 1);

      const auto t0 = std::chrono::steady_clock::now();
      const auto r = sc::run_paper_scenario(spec);
      const auto wall =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
              .count();

      const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(30));
      std::vector<double> rates;
      std::vector<double> weights;
      for (std::size_t i = 1; i <= n; ++i) {
        const auto f = static_cast<corelite::net::FlowId>(i);
        rates.push_back(r.tracker.series(f).allotted_rate.average_over(30, 60));
        weights.push_back(spec.weights[i - 1]);
      }
      // Per-flow state at a core router, measured from the queues
      // (max over cores of flow-table entries): Corelite keeps r_av +
      // w_av per LINK and CSFQ keeps A, F, alpha per link — both report
      // 0 flow entries at any scale; WFQ reports one entry per flow.
      char state[32];
      std::snprintf(state, sizeof state, "%zu flows", r.core_flow_state);
      std::printf("%-8zu %-10s %-10.4f %-10llu %-12llu %-14.1f %-12s\n", n,
                  sc::mechanism_name(mech).c_str(),
                  corelite::stats::jain_index(rates, weights),
                  static_cast<unsigned long long>(r.total_data_drops),
                  static_cast<unsigned long long>(r.events_processed), wall, state);
    }
  }
  std::printf(
      "\nExpected shape: weighted fairness holds as the population grows (the\n"
      "per-unit-weight share shrinks toward the LIMD oscillation amplitude, so\n"
      "jain decays gently); measured core flow state stays 0 for the core-\n"
      "stateless schemes at every scale while WFQ's grows with the population\n"
      "— the paper's scalability argument.\n");
  return 0;
}

// Reproduces Figures 3 and 4 (paper §4.1): weighted rate fairness with
// network dynamics.
//
// 20 flows on the Figure-2 topology; flows 1, 9, 10, 11, 16 are active
// only during [250 s, 500 s), all others during [0 s, 750 s).  Expected
// (paper's arithmetic): per-unit-weight share 33.33 pkt/s without the
// late flows, 25 pkt/s with them — e.g. flows 5/15 (weight 3) run at
// ~100 then ~75 pkt/s; flows 1/11/16 (weight 1) get ~25 pkt/s; all
// weight-2 flows ~66.7 then ~50 pkt/s — independent of RTT and of the
// number of congested links crossed (Figure 4's parallel cumulative-
// service lines).
#include <cstdio>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("== Figures 3 & 4: Corelite weighted rate fairness with network dynamics ==\n");
  std::printf("20 flows, churn at t=250 s and t=500 s, 750 s total\n");

  const auto spec = sc::fig3_network_dynamics(sc::Mechanism::Corelite);
  const auto r = sc::run_paper_scenario(spec);
  bu::maybe_export_artifacts("fig3_4", spec, r);

  // Figure 3: instantaneous allotted rate.
  bu::print_rate_table(spec, r, 0.0, 750.0, 25.0);

  // Expected-value checkpoints (the numbers §4.1 derives).
  std::printf("\nPhase summaries (paper expectations: 33.33/25/33.33 pkt/s per unit weight)\n");
  bu::print_summary("Phase 1 (15 flows)", spec, r, 100.0, 240.0, 100.0);
  bu::print_summary("Phase 2 (20 flows)", spec, r, 300.0, 490.0, 300.0);
  bu::print_summary("Phase 3 (15 flows)", spec, r, 550.0, 740.0, 600.0);

  // Figure 4: cumulative service.
  bu::print_cumulative_table(spec, r, 0.0, 750.0, 50.0);

  // The Figure-4 claim: equal-weight flows accumulate equal service
  // regardless of path length.  Compare weight-2 flows crossing 1, 2 and
  // 3 congested links.
  std::printf("\nCumulative service at t=750 s by path length (weight-2 flows):\n");
  std::printf("  1 congested link  (flow 2):  %.0f pkts\n",
              r.tracker.series(2).cumulative_delivered.value_at(750.0));
  std::printf("  2 congested links (flow 7):  %.0f pkts\n",
              r.tracker.series(7).cumulative_delivered.value_at(750.0));
  std::printf("  3 congested links (flow 9):  %.0f pkts (active half as long)\n",
              r.tracker.series(9).cumulative_delivered.value_at(750.0));
  return 0;
}

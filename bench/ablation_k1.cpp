// Ablation (paper §4.4): sensitivity to the marking threshold K1.
//
// K1 controls the marker spacing N_w = K1 * w: larger K1 means fewer
// markers (less feedback bandwidth, coarser control) in exchange for
// lower overhead.  The paper reports low sensitivity; this sweep also
// quantifies the marker overhead directly.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;
namespace bu = corelite::benchutil;

int main() {
  std::printf("Ablation: marker spacing constant K1 (paper section 4.4 claim)\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-6s %-10s %-12s %-10s %-10s %-12s %-10s\n", "K1", "markers", "mkr/data[%]",
              "drops", "jain", "feedback", "conv[s]");

  for (double k1 : {1.0, 2.0, 4.0, 8.0}) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.corelite.k1 = k1;
    const auto r = sc::run_paper_scenario(spec);

    std::uint64_t data_sent = 0;
    for (const auto& [id, fs] : r.tracker.all()) data_sent += fs.sent;

    const auto ideal = sc::ideal_rates_at(spec, corelite::sim::SimTime::seconds(40));
    std::vector<double> rates;
    std::vector<double> weights;
    double conv = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      conv = std::max(conv, bu::convergence_time(r.tracker.series(f), ideal.at(f), 78.0));
    }
    std::printf("%-6.0f %-10llu %-12.1f %-10llu %-10.4f %-12llu %-10.0f\n", k1,
                static_cast<unsigned long long>(r.markers_injected),
                100.0 * static_cast<double>(r.markers_injected) /
                    static_cast<double>(data_sent),
                static_cast<unsigned long long>(r.total_data_drops),
                corelite::stats::jain_index(rates, weights),
                static_cast<unsigned long long>(r.feedback_messages), conv);
  }
  return 0;
}

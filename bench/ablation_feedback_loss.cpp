// Ablation / failure injection: lossy signalling.
//
// Corelite's markers and feedback are piggybacked headers the paper
// treats as reliable.  This sweep drops a fraction of every control
// packet (markers, feedback) on every link and reports how the closed
// loop degrades — fairness, loss and queue pressure vs the loss rate.
#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace sc = corelite::scenario;

int main() {
  std::printf("Failure injection: control-packet (marker/feedback) loss\n");
  std::printf("Scenario: Figure 5 startup (10 flows, weights ceil(i/2), 80 s)\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-10s %-12s\n", "loss", "dataDrops", "steadyDrops",
              "mean_q_avg", "jain", "thru[pkt/s]");

  for (double loss : {0.0, 0.02, 0.05, 0.1, 0.2, 0.4}) {
    auto spec = sc::fig5_simultaneous_start(sc::Mechanism::Corelite);
    spec.control_loss_rate = loss;
    const auto r = sc::run_paper_scenario(spec);

    int steady = 0;
    for (double t : r.drop_times) {
      if (t > 25.0) ++steady;
    }
    double mq = 0.0;
    for (double q : r.mean_q_avg) mq += q;
    if (!r.mean_q_avg.empty()) mq /= static_cast<double>(r.mean_q_avg.size());

    std::vector<double> rates;
    std::vector<double> weights;
    double thru = 0.0;
    for (std::size_t i = 1; i <= spec.num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      rates.push_back(r.tracker.series(f).allotted_rate.average_over(40, 80));
      weights.push_back(spec.weights[i - 1]);
      thru += static_cast<double>(r.tracker.series(f).delivered) / 80.0;
    }
    std::printf("%-10.2f %-10llu %-12d %-12.2f %-10.4f %-12.1f\n", loss,
                static_cast<unsigned long long>(r.total_data_drops), steady, mq,
                corelite::stats::jain_index(rates, weights), thru);
  }
  std::printf(
      "\nExpected shape: fairness holds at every loss rate (lost feedback hits\n"
      "flows in proportion to their marker rates); rising loss weakens the brake,\n"
      "so queues ride higher and tail drops grow — graceful degradation, not\n"
      "collapse.\n");
  return 0;
}

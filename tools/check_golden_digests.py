#!/usr/bin/env python3
"""Fluid-off golden digest gate.

Runs every paper scenario (fig3/fig5/fig7/fig9 x corelite/csfq) through
corelite_sim WITHOUT --fluid and compares the result digest against the
committed manifest (tools/golden_digests.json).  The fluid machinery is
compiled into the binary but disabled by default; any digest drift here
means fluid-off is no longer bit-identical to the pure packet engine —
the single most important invariant of the hybrid design.

Digests depend on the scenarios' default seeds and durations and on the
serial engine's event ordering.  After an INTENTIONAL behaviour change
(new default, scheduler fix, ...) regenerate with --update and commit
the new manifest alongside the change that explains it.

Exit status: 0 = all digests match, 1 = any drift (or missing digest).
"""

import argparse
import json
import re
import subprocess
import sys
from pathlib import Path

MANIFEST = Path(__file__).resolve().parent / "golden_digests.json"

SCENARIOS = ["fig3", "fig5", "fig7", "fig9"]
MECHANISMS = ["corelite", "csfq"]


def run_digest(binary, scenario, mechanism):
    # The digest line only prints under --telemetry.
    out = subprocess.run(
        [binary, "--scenario", scenario, "--mechanism", mechanism, "--telemetry"],
        check=True, capture_output=True, text=True).stdout
    m = re.search(r"result digest: ([0-9a-f]+)", out)
    if not m:
        raise SystemExit(f"{scenario}/{mechanism}: no 'result digest:' line in output")
    return m.group(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to the corelite_sim binary")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the manifest with freshly measured digests")
    args = ap.parse_args()

    manifest = json.loads(MANIFEST.read_text())
    failed = False
    for scenario in SCENARIOS:
        for mechanism in MECHANISMS:
            key = f"{scenario}/{mechanism}"
            got = run_digest(args.binary, scenario, mechanism)
            if args.update:
                manifest[key] = got
                print(f"{key:16s} {got}")
                continue
            want = manifest.get(key)
            ok = got == want
            print(f"{key:16s} {got}  {'PASS' if ok else f'FAIL (expected {want})'}")
            failed = failed or not ok

    if args.update:
        MANIFEST.write_text(json.dumps(manifest, indent=2) + "\n")
        print(f"updated {MANIFEST}")
        return
    if failed:
        raise SystemExit(1)
    print("golden digests: fluid-off is bit-identical on the full scenario matrix")


if __name__ == "__main__":
    main()

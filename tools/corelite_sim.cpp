// corelite_sim — run any paper scenario from the command line.
//
// Examples:
//   corelite_sim                                   # Figure-5 Corelite run
//   corelite_sim --scenario fig3 --mechanism csfq  # CSFQ on the churn run
//   corelite_sim --weights 1,1,1,1,1,5,5,5,5,5 --summary
//   corelite_sim --csv-rates rates.csv --csv-cum cum.csv
//   corelite_sim --detector ewma --adaptation aimd --pacing poisson
//   corelite_sim --sweep 8 --jobs 4 --sweep-mechanisms corelite,csfq --json sweep.json
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "cli/args.h"
#include "cli/scenario_args.h"
#include "runner/sweep.h"
#include "scenario/config_script.h"
#include "sim/hotpath.h"
#include "sim/parallel/thread_budget.h"
#include "stats/aggregate.h"
#include "stats/csv_writer.h"
#include "stats/json_writer.h"
#include "stats/fairness.h"
#include "telemetry/engine_probe.h"
#include "telemetry/harness.h"
#include "telemetry/metrics.h"

namespace sc = corelite::scenario;
namespace rn = corelite::runner;
namespace tel = corelite::telemetry;

namespace {

std::vector<std::string> split_list(const std::string& text) {
  std::vector<std::string> out;
  std::stringstream ss{text};
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

std::string join_list(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& s : items) {
    if (!out.empty()) out += ",";
    out += s;
  }
  return out;
}

/// --telemetry / --trace-out / --manifest / --heartbeat, shared by the
/// single-run and sweep paths.
struct TelemetryArgs {
  bool on = false;            ///< metrics + manifest enabled
  std::string trace_path;     ///< empty = no trace file
  std::string manifest_path;  ///< where the manifest goes when on
  double heartbeat_sec = 0.0;

  static TelemetryArgs from(const corelite::cli::ArgParser& parser) {
    TelemetryArgs t;
    t.trace_path = parser.get_string("trace-out");
    t.on = parser.get_flag("telemetry") || !t.trace_path.empty() || parser.get_flag("audit");
    t.manifest_path =
        parser.was_set("manifest") ? parser.get_string("manifest") : "run_manifest.json";
    t.heartbeat_sec = parser.get_double("heartbeat");
    tel::set_enabled(t.on);
    return t;
  }
};

void register_telemetry_options(corelite::cli::ArgParser& parser) {
  parser.add_flag("telemetry", "enable the metrics registry and write a run manifest");
  parser.add_string("trace-out", "",
                    "write a Chrome trace_event / Perfetto JSON trace here (implies --telemetry)");
  parser.add_string("manifest", "run_manifest.json",
                    "run-manifest path (written when telemetry is on)");
  parser.add_double("heartbeat", 0.0,
                    "sweep mode: print live progress to stderr every N seconds (0 = off)");
  parser.add_flag("audit",
                  "run the fairness auditor: per-window oracle-deviation telemetry + watchdog "
                  "(implies --telemetry; adds audit sampler events to the run)");
  parser.add_string("audit-out", "fairness_audit.json",
                    "audit JSON document path (written when --audit is on)");
  parser.add_double("audit-window", 6.4, "audit measurement window in seconds");
  parser.add_double("audit-band", 0.40,
                    "relative oracle-deviation band; beyond it a flow's window violates");
  parser.add_int("audit-watchdog", 4,
                 "consecutive violating windows before the watchdog fires (0 = disarm)");
  parser.add_string("flood", "",
                    "inject unresponsive floods: comma-separated flow:pps pairs, e.g. "
                    "'3:400,7:250' (sources ignore the adaptation protocol)");
}

/// --audit family, shared by the single-run and sweep paths.
struct AuditArgs {
  bool on = false;
  std::string out_path;
  tel::FairnessAuditConfig cfg;
  std::vector<double> flood_pps;  ///< 0-sized when --flood absent
  bool flood_malformed = false;

  static AuditArgs from(const corelite::cli::ArgParser& parser) {
    AuditArgs a;
    a.on = parser.get_flag("audit");
    a.out_path = parser.get_string("audit-out");
    a.cfg.enabled = a.on;
    a.cfg.window = corelite::sim::TimeDelta::seconds(
        std::max(1e-3, parser.get_double("audit-window")));
    a.cfg.band = parser.get_double("audit-band");
    const auto wd = parser.get_int("audit-watchdog");
    a.cfg.watchdog_enabled = wd > 0;
    if (wd > 0) a.cfg.watchdog_windows = static_cast<int>(wd);
    if (parser.was_set("flood")) {
      const std::string text = parser.get_string("flood");
      for (const std::string& item : split_list(text)) {
        const auto colon = item.find(':');
        const long id = std::strtol(item.c_str(), nullptr, 10);
        const double pps = colon == std::string::npos
                               ? -1.0
                               : std::strtod(item.c_str() + colon + 1, nullptr);
        if (colon == std::string::npos || id < 1 || !(pps > 0.0)) {
          a.flood_malformed = true;
          break;
        }
        if (static_cast<std::size_t>(id) > a.flood_pps.size()) a.flood_pps.resize(id, 0.0);
        a.flood_pps[id - 1] = pps;
      }
    }
    return a;
  }
};

bool write_audit_file(const tel::AuditDocument& doc, const std::string& path) {
  std::ofstream os{path};
  if (!os) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  tel::write_audit_json(os, doc);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
  return true;
}

/// Fold the audit outcome into the trace (if any) and the manifest.
void render_audit_outcome(const tel::FairnessAuditReport* fairness,
                          const tel::LpProfiler& lp_profiler,
                          const tel::FluidFlightRecorder& flight, tel::TraceWriter* trace,
                          tel::RunManifest& manifest) {
  if (trace != nullptr) {
    if (fairness != nullptr) tel::render_audit_trace(*trace, *fairness);
    if (lp_profiler.report().runs > 0) tel::render_lp_trace(*trace, lp_profiler.report());
    if (!flight.events().empty()) tel::render_fluid_cert_trace(*trace, flight);
  }
  if (fairness != nullptr) {
    manifest.extra.emplace_back("audit_windows", std::to_string(fairness->windows.size()));
    manifest.extra.emplace_back("audit_watchdog", fairness->watchdog_fired ? "1" : "0");
  }
}

// --profile: the always-on hot-path op counters, aggregated across every
// run (and every sweep worker thread) this process executed.
void print_hotpath_profile() {
  const corelite::sim::HotPathCounters c = corelite::sim::aggregated_hotpath_counters();
  std::printf("\nhot-path profile (process totals)\n");
  std::printf("  exp calls            %12llu  (cache hits %llu, %.1f%%)\n",
              static_cast<unsigned long long>(c.exp_calls),
              static_cast<unsigned long long>(c.exp_cache_hits), c.exp_hit_rate() * 100.0);
  std::printf("  pow calls            %12llu  (cache hits %llu, %.1f%%)\n",
              static_cast<unsigned long long>(c.pow_calls),
              static_cast<unsigned long long>(c.pow_cache_hits), c.pow_hit_rate() * 100.0);
  std::printf("  rng draws            %12llu\n", static_cast<unsigned long long>(c.rng_draws));
  std::printf("  observer dispatches  %12llu\n",
              static_cast<unsigned long long>(c.observer_dispatches));
  std::printf("  series appends       %12llu\n",
              static_cast<unsigned long long>(c.series_appends));
  std::printf("  wheel inserts        %12llu  (%.1f%% of events; heap %llu, cascades %llu)\n",
              static_cast<unsigned long long>(c.wheel_inserts), c.wheel_insert_rate() * 100.0,
              static_cast<unsigned long long>(c.heap_inserts),
              static_cast<unsigned long long>(c.wheel_cascades));
  std::printf("  batch drains         %12llu  (%llu completions fused, mean %.2f/drain)\n",
              static_cast<unsigned long long>(c.batch_drains),
              static_cast<unsigned long long>(c.batch_drained), c.mean_batch_len());
  std::printf("  lp barriers          %12llu  (cross-LP events %llu, mailbox flushes %llu)\n",
              static_cast<unsigned long long>(c.lp_barriers),
              static_cast<unsigned long long>(c.cross_lp_events),
              static_cast<unsigned long long>(c.mailbox_flushes));
  std::printf("  lp lookahead         %12.3f ms\n", c.lookahead_ns / 1e6);
}

// Sweep mode: seed × scenario × mechanism grid on a worker pool.
int run_sweep(const corelite::cli::ArgParser& parser) {
  rn::SweepGrid grid;
  grid.repeats = static_cast<std::size_t>(parser.get_int("sweep"));
  grid.base_seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  grid.duration_sec = parser.get_double("duration");
  grid.lp = static_cast<std::size_t>(std::max<std::int64_t>(0, parser.get_int("lp")));
  grid.lp_threads =
      static_cast<std::size_t>(std::max<std::int64_t>(0, parser.get_int("lp-threads")));
  grid.fluid = parser.get_flag("fluid");

  grid.scenarios = parser.was_set("sweep-scenarios")
                       ? split_list(parser.get_string("sweep-scenarios"))
                       : std::vector<std::string>{parser.get_string("scenario")};
  const std::vector<std::string> mech_names =
      parser.was_set("sweep-mechanisms") ? split_list(parser.get_string("sweep-mechanisms"))
                                         : std::vector<std::string>{parser.get_string("mechanism")};
  grid.mechanisms.clear();
  for (const std::string& name : mech_names) {
    const auto m = sc::mechanism_from_name(name);
    if (!m.has_value()) {
      std::fprintf(stderr, "unknown mechanism '%s'\n", name.c_str());
      return 2;
    }
    grid.mechanisms.push_back(*m);
  }
  if (grid.scenarios.empty() || grid.mechanisms.empty() || grid.repeats == 0) {
    std::fprintf(stderr, "empty sweep grid\n");
    return 2;
  }
  if (parser.was_set("weights")) {
    auto weights = corelite::cli::parse_weight_list(parser.get_string("weights"));
    if (!weights.has_value()) {
      std::fprintf(stderr, "malformed --weights list\n");
      return 2;
    }
    grid.weights = std::move(*weights);
    grid.num_flows = grid.weights.size();
  }

  const auto jobs = static_cast<std::size_t>(parser.get_int("jobs"));
  const std::vector<rn::RunDescriptor> runs = rn::expand_grid(grid);
  std::fprintf(stderr, "sweep: %zu runs (%zu scenario(s) x %zu mechanism(s) x %zu repeat(s)), %zu job(s)\n",
               runs.size(), grid.scenarios.size(), grid.mechanisms.size(), grid.repeats, jobs);

  const TelemetryArgs tele = TelemetryArgs::from(parser);
  const AuditArgs audit = AuditArgs::from(parser);
  if (audit.flood_malformed) {
    std::fprintf(stderr, "malformed --flood list (expect flow:pps pairs)\n");
    return 2;
  }
  tel::PhaseTimer phases;
  phases.start("setup");
  tel::TraceWriter trace;
  std::unique_ptr<tel::LinkTraceCollector> collector;
  tel::LpProfiler lp_profiler;
  tel::FluidFlightRecorder flight;

  rn::SweepRunner sweep_runner{jobs};
  if (!tele.trace_path.empty()) {
    // Virtual-time tracks come from run 0 only: one representative
    // universe, no observer cost on the rest of the grid.
    sweep_runner.set_run_instrument(0, tel::congested_link_instrument(trace, collector));
  }
  if (audit.on || !audit.flood_pps.empty() || tele.on) {
    // The audit (and the engine probes) ride run 0 only: the rest of
    // the grid keeps its digest-clean event stream, so the combined
    // digest stays --jobs-invariant even with the auditor on.
    sweep_runner.set_run_spec_hook(0, [&audit, &lp_profiler, &flight, &tele](
                                          sc::ScenarioSpec& spec) {
      if (audit.on) spec.audit = audit.cfg;
      if (!audit.flood_pps.empty()) spec.flood_pps = audit.flood_pps;
      if (tele.on) {
        spec.lp_probe = &lp_profiler;
        spec.fluid_probe = &flight;
      }
    });
  }
  if (tele.heartbeat_sec > 0.0) sweep_runner.set_heartbeat(&std::cerr, tele.heartbeat_sec);
  if (!parser.get_flag("quiet")) {
    sweep_runner.set_progress([](const rn::RunResult& r, std::size_t done, std::size_t total) {
      std::fprintf(stderr, "  [%zu/%zu] %s repeat=%zu seed=%llu jain=%.4f (%.0f ms)\n", done,
                   total, rn::cell_key(r.desc).c_str(), r.desc.repeat,
                   static_cast<unsigned long long>(r.desc.seed), r.jain, r.wall_ms);
    });
  }
  phases.start("run");
  const std::vector<rn::RunResult> results = sweep_runner.run(runs);
  phases.start("report");

  corelite::stats::SweepAggregator agg;
  for (const auto& r : results) {
    if (!r.ok) {
      std::fprintf(stderr, "run %zu (%s) failed to build — unknown scenario or bad weights\n",
                   r.index, rn::cell_key(r.desc).c_str());
      return 2;
    }
    rn::record_metrics(agg, r);
  }
  const auto cells = agg.snapshot();

  const auto metric = [](const corelite::stats::SweepAggregator::Cell& cell,
                         const char* name) -> const corelite::stats::Accumulator* {
    for (const auto& m : cell.metrics) {
      if (m.name == name) return &m.acc;
    }
    return nullptr;
  };
  std::printf("%-28s %-4s %-20s %-14s %-14s\n", "cell", "n", "jain (mean+-ci95)", "drops",
              "events");
  for (const auto& cell : cells) {
    const auto* jain = metric(cell, "jain");
    const auto* drops = metric(cell, "total_drops");
    const auto* events = metric(cell, "events");
    if (jain == nullptr || drops == nullptr || events == nullptr) continue;
    std::printf("%-28s %-4zu %.4f +- %-8.4f %-14.0f %-14.0f\n", cell.name.c_str(), jain->count(),
                jain->mean(), jain->ci95_half_width(), drops->mean(), events->mean());
  }
  if (parser.get_flag("table")) {
    std::printf("\n%-6s %-28s %-20s %-10s %s\n", "run", "cell", "seed", "jain", "digest");
    for (const auto& r : results) {
      std::printf("%-6zu %-28s %-20llu %-10.4f %016llx\n", r.index, rn::cell_key(r.desc).c_str(),
                  static_cast<unsigned long long>(r.desc.seed), r.jain,
                  static_cast<unsigned long long>(r.digest));
    }
  }

  if (parser.was_set("json")) {
    std::ofstream os{parser.get_string("json")};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", parser.get_string("json").c_str());
      return 1;
    }
    corelite::stats::SweepMetaJson meta;
    meta.title = "corelite_sim sweep";
    meta.runs = results.size();
    meta.repeats = grid.repeats;
    meta.base_seed = grid.base_seed;
    corelite::stats::write_sweep_json(os, meta, cells);
    std::fprintf(stderr, "wrote %s\n", parser.get_string("json").c_str());
  }
  if (parser.was_set("sweep-csv")) {
    std::ofstream os{parser.get_string("sweep-csv")};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", parser.get_string("sweep-csv").c_str());
      return 1;
    }
    corelite::stats::write_sweep_csv(os, cells);
    std::fprintf(stderr, "wrote %s\n", parser.get_string("sweep-csv").c_str());
  }
  if (parser.get_flag("profile")) print_hotpath_profile();

  const tel::FairnessAuditReport* fairness =
      !results.empty() && results[0].audit ? results[0].audit.get() : nullptr;
  if (audit.on) {
    tel::AuditDocument doc;
    doc.scenario = join_list(grid.scenarios);
    doc.mechanism = join_list(mech_names);
    doc.seed = results.empty() ? grid.base_seed : results[0].desc.seed;
    doc.fairness = fairness;
    if (lp_profiler.report().runs > 0) doc.engine = &lp_profiler.report();
    if (!flight.events().empty()) doc.fluid_cert = &flight;
    if (!write_audit_file(doc, audit.out_path)) return 1;
    if (fairness != nullptr && fairness->watchdog_fired) {
      std::fprintf(stderr,
                   "fairness watchdog FIRED at %.1f s (window %llu) — see %s\n",
                   fairness->watchdog_t_sec,
                   static_cast<unsigned long long>(fairness->watchdog_window),
                   audit.out_path.c_str());
    }
  }

  if (tele.on) {
    const std::uint64_t digest = rn::combined_digest(results);
    std::printf("result digest: %s\n", tel::digest_hex(digest).c_str());
    phases.stop();
    tel::RunManifest manifest;
    manifest.tool = "corelite_sim";
    manifest.scenario = join_list(grid.scenarios);
    manifest.mechanism = join_list(mech_names);
    manifest.base_seed = grid.base_seed;
    manifest.runs = results.size();
    manifest.jobs = jobs;
    for (const auto& r : results) manifest.events += r.events;
    manifest.result_digest = digest;
    manifest.hotpath = corelite::sim::aggregated_hotpath_counters();
    manifest.wall_phases_ms = phases.phases();
    manifest.extra.emplace_back(
        "hw_threads", std::to_string(corelite::sim::par::ThreadBudget::hardware_threads()));
    if (grid.lp > 1) manifest.extra.emplace_back("lp", std::to_string(grid.lp));
    if (!tele.trace_path.empty()) manifest.extra.emplace_back("trace", tele.trace_path);
    render_audit_outcome(fairness, lp_profiler, flight,
                         tele.trace_path.empty() ? nullptr : &trace, manifest);
    if (audit.on) manifest.extra.emplace_back("audit", audit.out_path);
    if (!tele.trace_path.empty()) {
      tel::add_wall_spans(trace, results);
      if (!tel::write_trace_file(trace, tele.trace_path, std::cerr)) return 1;
    }
    if (!tel::write_manifest_file(manifest, tele.manifest_path, std::cerr)) return 1;
  }
  return 0;
}

// Scripted mode: build/run a custom scenario from a config file.
int run_config_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  auto script = sc::parse_scenario_script(in, std::cerr);
  if (!script.has_value()) return 2;
  std::fprintf(stderr, "running scripted scenario (%s, %zu flows, %.0f s)...\n",
               script->mechanism.c_str(), script->flows.size(), script->duration_sec);
  const auto r = sc::run_script_scenario(*script, std::cerr);
  if (!r.has_value()) return 2;

  const double t_end = script->duration_sec;
  std::printf("%-6s %-7s %-9s %-11s %-9s\n", "flow", "weight", "avg", "delivered", "dropped");
  for (const auto& f : script->flows) {
    const auto& fs = r->tracker.series(f.id);
    std::printf("%-6u %-7.1f %-9.2f %-11llu %-9llu\n", f.id, f.weight,
                fs.allotted_rate.average_over(t_end / 2.0, t_end),
                static_cast<unsigned long long>(fs.delivered),
                static_cast<unsigned long long>(fs.dropped));
  }
  std::printf("\ndata drops: %llu   events: %llu   unrouteable: %llu\n",
              static_cast<unsigned long long>(r->data_drops),
              static_cast<unsigned long long>(r->events_processed),
              static_cast<unsigned long long>(r->unrouteable));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  corelite::cli::ArgParser parser{
      "corelite_sim",
      "run a Corelite / CSFQ scenario on the paper's Figure-2 topology"};
  corelite::cli::register_scenario_options(parser);
  parser.add_string("config", "",
                    "run a scripted scenario from this file instead (see examples/scripts)");
  parser.add_string("csv-rates", "", "write per-flow allotted-rate CSV to this path");
  parser.add_string("csv-cum", "", "write per-flow cumulative-service CSV to this path");
  parser.add_string("json", "", "write a machine-readable run summary to this path");
  parser.add_flag("table", "print the rate table on a 5 s grid");
  parser.add_flag("quiet", "suppress the per-flow summary");
  parser.add_int("sweep", 0,
                 "sweep mode: repeats per grid cell, seeded deterministically from --seed");
  parser.add_int("jobs", 1, "sweep worker threads (one simulation universe each)");
  parser.add_string("sweep-scenarios", "",
                    "comma-separated scenario list for the sweep grid (default: --scenario)");
  parser.add_string("sweep-mechanisms", "",
                    "comma-separated mechanism list for the sweep grid (default: --mechanism)");
  parser.add_string("sweep-csv", "", "write per-cell sweep statistics CSV to this path");
  parser.add_flag("profile", "print the always-on hot-path op counters after the run");
  register_telemetry_options(parser);

  if (!parser.parse(argc, argv, std::cerr)) return 2;

  if (parser.was_set("config")) return run_config_file(parser.get_string("config"));
  if (parser.get_int("sweep") > 0) return run_sweep(parser);

  auto spec = corelite::cli::spec_from_args(parser, std::cerr);
  if (!spec.has_value()) return 2;

  const TelemetryArgs tele = TelemetryArgs::from(parser);
  const AuditArgs audit = AuditArgs::from(parser);
  if (audit.flood_malformed) {
    std::fprintf(stderr, "malformed --flood list (expect flow:pps pairs)\n");
    return 2;
  }
  tel::PhaseTimer phases;
  phases.start("setup");
  tel::TraceWriter trace;
  std::unique_ptr<tel::LinkTraceCollector> collector;
  tel::LpProfiler lp_profiler;
  tel::FluidFlightRecorder flight;
  if (!tele.trace_path.empty()) {
    spec->instrument = tel::congested_link_instrument(trace, collector);
  }
  if (audit.on) spec->audit = audit.cfg;
  if (!audit.flood_pps.empty()) spec->flood_pps = audit.flood_pps;
  if (tele.on) {
    spec->lp_probe = &lp_profiler;
    spec->fluid_probe = &flight;
  }

  std::fprintf(stderr, "running %s / %s for %.0f s (seed %llu)...\n",
               parser.get_string("scenario").c_str(), sc::mechanism_name(spec->mechanism).c_str(),
               spec->duration.sec(), static_cast<unsigned long long>(spec->seed));
  phases.start("run");
  const auto run_t0 = std::chrono::steady_clock::now();
  const auto result = sc::run_paper_scenario(*spec);
  const double run_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - run_t0)
          .count();
  phases.start("report");

  const double t_end = spec->duration.sec();
  const double w0 = t_end / 2.0;

  if (!parser.get_flag("quiet")) {
    const auto ideal = sc::ideal_rates_at(*spec, corelite::sim::SimTime::seconds(w0));
    std::printf("%-6s %-7s %-9s %-9s %-9s %-9s\n", "flow", "weight", "ideal", "avg",
                "delivered", "dropped");
    std::vector<double> rates;
    std::vector<double> weights;
    for (std::size_t i = 1; i <= spec->num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      const auto& fs = result.tracker.series(f);
      // Generated specs carry no weights list (the population owns the
      // weights) and may run counters-only; read both from the tracker.
      const double w = i <= spec->weights.size() ? spec->weights[i - 1] : fs.weight;
      const double got = !fs.allotted_rate.points().empty()
                             ? fs.allotted_rate.average_over(w0, t_end)
                             : static_cast<double>(fs.delivered) / t_end;
      const double want = ideal.count(f) != 0 ? ideal.at(f) : 0.0;
      std::printf("%-6zu %-7.1f %-9.2f %-9.2f %-9llu %-9llu\n", i, w, want,
                  got, static_cast<unsigned long long>(fs.delivered),
                  static_cast<unsigned long long>(fs.dropped));
      if (want > 0.0 || spec->generated.has_value()) {
        rates.push_back(got);
        weights.push_back(w);
      }
    }
    std::printf("\nweighted Jain index [%g, %g]: %.4f\n", w0, t_end,
                corelite::stats::jain_index(rates, weights));
    std::printf("data drops: %llu   feedback: %llu   events: %llu\n",
                static_cast<unsigned long long>(result.total_data_drops),
                static_cast<unsigned long long>(result.feedback_messages),
                static_cast<unsigned long long>(result.events_processed));
    if (result.fluid_stats.enabled) {
      std::printf("fluid: fast-forwarded %.1f s of %.1f s (%.1f%%) in %llu jump(s), "
                  "~%llu events elided\n",
                  result.fluid_stats.fast_forwarded_sec, t_end,
                  100.0 * result.fluid_stats.fast_forwarded_sec / t_end,
                  static_cast<unsigned long long>(result.fluid_stats.jumps),
                  static_cast<unsigned long long>(result.fluid_stats.events_elided_est));
    }
  }

  if (parser.get_flag("table")) {
    std::printf("\n%8s", "t[s]");
    for (std::size_t i = 1; i <= spec->num_flows; ++i) std::printf("  f%-5zu", i);
    std::printf("\n");
    for (double t = 0.0; t <= t_end + 1e-9; t += 5.0) {
      std::printf("%8.0f", t);
      for (std::size_t i = 1; i <= spec->num_flows; ++i) {
        std::printf("  %6.1f", result.tracker.series(static_cast<corelite::net::FlowId>(i))
                                   .allotted_rate.value_at(t));
      }
      std::printf("\n");
    }
  }

  auto dump_csv = [&](const std::string& path, bool cumulative) {
    std::map<std::string, const corelite::stats::TimeSeries*> series;
    for (std::size_t i = 1; i <= spec->num_flows; ++i) {
      const auto& fs = result.tracker.series(static_cast<corelite::net::FlowId>(i));
      series["flow" + std::to_string(i)] =
          cumulative ? &fs.cumulative_delivered : &fs.allotted_rate;
    }
    std::ofstream os{path};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    corelite::stats::write_csv(os, series, 0.0, t_end, 1.0);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  if (parser.was_set("csv-rates")) dump_csv(parser.get_string("csv-rates"), false);
  if (parser.was_set("csv-cum")) dump_csv(parser.get_string("csv-cum"), true);

  if (parser.was_set("json")) {
    std::ofstream os{parser.get_string("json")};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", parser.get_string("json").c_str());
      return 1;
    }
    corelite::stats::RunSummaryJson meta;
    meta.scenario = parser.get_string("scenario");
    meta.mechanism = sc::mechanism_name(spec->mechanism);
    meta.duration_sec = t_end;
    meta.seed = spec->seed;
    meta.events = result.events_processed;
    meta.total_drops = result.total_data_drops;
    meta.window_start = w0;
    meta.window_end = t_end;
    corelite::stats::write_run_json(os, meta, result.tracker);
    std::fprintf(stderr, "wrote %s\n", parser.get_string("json").c_str());
  }
  if (parser.get_flag("profile")) print_hotpath_profile();

  if (audit.on) {
    tel::AuditDocument doc;
    doc.scenario = parser.get_string("scenario");
    doc.mechanism = sc::mechanism_name(spec->mechanism);
    doc.seed = spec->seed;
    doc.fairness = result.audit_report.get();
    if (lp_profiler.report().runs > 0) doc.engine = &lp_profiler.report();
    if (!flight.events().empty()) doc.fluid_cert = &flight;
    if (result.fluid_stats.enabled) doc.fluid_stats = &result.fluid_stats;
    if (!write_audit_file(doc, audit.out_path)) return 1;
    if (result.audit_report != nullptr && result.audit_report->watchdog_fired) {
      std::fprintf(stderr,
                   "fairness watchdog FIRED at %.1f s (window %llu) — see %s\n",
                   result.audit_report->watchdog_t_sec,
                   static_cast<unsigned long long>(result.audit_report->watchdog_window),
                   audit.out_path.c_str());
    }
  }

  if (tele.on) {
    const std::uint64_t digest = rn::result_digest(result);
    std::printf("result digest: %s\n", tel::digest_hex(digest).c_str());
    phases.stop();
    tel::RunManifest manifest;
    manifest.tool = "corelite_sim";
    manifest.scenario = parser.get_string("scenario");
    manifest.mechanism = sc::mechanism_name(spec->mechanism);
    manifest.base_seed = spec->seed;
    manifest.runs = 1;
    manifest.jobs = 1;
    manifest.events = result.events_processed;
    manifest.result_digest = digest;
    manifest.hotpath = corelite::sim::aggregated_hotpath_counters();
    manifest.wall_phases_ms = phases.phases();
    manifest.extra.emplace_back(
        "hw_threads", std::to_string(corelite::sim::par::ThreadBudget::hardware_threads()));
    if (spec->lp > 1) manifest.extra.emplace_back("lp", std::to_string(spec->lp));
    if (result.fluid_stats.enabled) {
      manifest.extra.emplace_back("fluid", "1");
      manifest.extra.emplace_back("fluid_ff_sec",
                                  std::to_string(result.fluid_stats.fast_forwarded_sec));
      manifest.extra.emplace_back("fluid_jumps", std::to_string(result.fluid_stats.jumps));
    }
    if (!tele.trace_path.empty()) manifest.extra.emplace_back("trace", tele.trace_path);
    render_audit_outcome(result.audit_report.get(), lp_profiler, flight,
                         tele.trace_path.empty() ? nullptr : &trace, manifest);
    if (audit.on) manifest.extra.emplace_back("audit", audit.out_path);
    if (!tele.trace_path.empty()) {
      // One wall-clock span for the single run, so a single-run trace
      // also carries both clock domains.
      trace.set_process_name(tel::TraceWriter::kWallPid, "wall-clock (us since start)");
      trace.set_thread_name(tel::TraceWriter::kWallPid, 0, "main");
      trace.add_complete(tel::TraceWriter::kWallPid, 0,
                         parser.get_string("scenario") + "/" + sc::mechanism_name(spec->mechanism),
                         "run", 0.0, run_ms * 1000.0, "events",
                         static_cast<double>(result.events_processed));
      if (!tel::write_trace_file(trace, tele.trace_path, std::cerr)) return 1;
    }
    if (!tel::write_manifest_file(manifest, tele.manifest_path, std::cerr)) return 1;
  }
  return 0;
}

// corelite_sim — run any paper scenario from the command line.
//
// Examples:
//   corelite_sim                                   # Figure-5 Corelite run
//   corelite_sim --scenario fig3 --mechanism csfq  # CSFQ on the churn run
//   corelite_sim --weights 1,1,1,1,1,5,5,5,5,5 --summary
//   corelite_sim --csv-rates rates.csv --csv-cum cum.csv
//   corelite_sim --detector ewma --adaptation aimd --pacing poisson
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>

#include "cli/args.h"
#include "cli/scenario_args.h"
#include "scenario/config_script.h"
#include "stats/csv_writer.h"
#include "stats/json_writer.h"
#include "stats/fairness.h"

namespace sc = corelite::scenario;

namespace {

// Scripted mode: build/run a custom scenario from a config file.
int run_config_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 2;
  }
  auto script = sc::parse_scenario_script(in, std::cerr);
  if (!script.has_value()) return 2;
  std::fprintf(stderr, "running scripted scenario (%s, %zu flows, %.0f s)...\n",
               script->mechanism.c_str(), script->flows.size(), script->duration_sec);
  const auto r = sc::run_script_scenario(*script, std::cerr);
  if (!r.has_value()) return 2;

  const double t_end = script->duration_sec;
  std::printf("%-6s %-7s %-9s %-11s %-9s\n", "flow", "weight", "avg", "delivered", "dropped");
  for (const auto& f : script->flows) {
    const auto& fs = r->tracker.series(f.id);
    std::printf("%-6u %-7.1f %-9.2f %-11llu %-9llu\n", f.id, f.weight,
                fs.allotted_rate.average_over(t_end / 2.0, t_end),
                static_cast<unsigned long long>(fs.delivered),
                static_cast<unsigned long long>(fs.dropped));
  }
  std::printf("\ndata drops: %llu   events: %llu   unrouteable: %llu\n",
              static_cast<unsigned long long>(r->data_drops),
              static_cast<unsigned long long>(r->events_processed),
              static_cast<unsigned long long>(r->unrouteable));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  corelite::cli::ArgParser parser{
      "corelite_sim",
      "run a Corelite / CSFQ scenario on the paper's Figure-2 topology"};
  corelite::cli::register_scenario_options(parser);
  parser.add_string("config", "",
                    "run a scripted scenario from this file instead (see examples/scripts)");
  parser.add_string("csv-rates", "", "write per-flow allotted-rate CSV to this path");
  parser.add_string("csv-cum", "", "write per-flow cumulative-service CSV to this path");
  parser.add_string("json", "", "write a machine-readable run summary to this path");
  parser.add_flag("table", "print the rate table on a 5 s grid");
  parser.add_flag("quiet", "suppress the per-flow summary");

  if (!parser.parse(argc, argv, std::cerr)) return 2;

  if (parser.was_set("config")) return run_config_file(parser.get_string("config"));

  auto spec = corelite::cli::spec_from_args(parser, std::cerr);
  if (!spec.has_value()) return 2;

  std::fprintf(stderr, "running %s / %s for %.0f s (seed %llu)...\n",
               parser.get_string("scenario").c_str(), sc::mechanism_name(spec->mechanism).c_str(),
               spec->duration.sec(), static_cast<unsigned long long>(spec->seed));
  const auto result = sc::run_paper_scenario(*spec);

  const double t_end = spec->duration.sec();
  const double w0 = t_end / 2.0;

  if (!parser.get_flag("quiet")) {
    const auto ideal = sc::ideal_rates_at(*spec, corelite::sim::SimTime::seconds(w0));
    std::printf("%-6s %-7s %-9s %-9s %-9s %-9s\n", "flow", "weight", "ideal", "avg",
                "delivered", "dropped");
    std::vector<double> rates;
    std::vector<double> weights;
    for (std::size_t i = 1; i <= spec->num_flows; ++i) {
      const auto f = static_cast<corelite::net::FlowId>(i);
      const auto& fs = result.tracker.series(f);
      const double got = fs.allotted_rate.average_over(w0, t_end);
      const double want = ideal.count(f) != 0 ? ideal.at(f) : 0.0;
      std::printf("%-6zu %-7.1f %-9.2f %-9.2f %-9llu %-9llu\n", i, spec->weights[i - 1], want,
                  got, static_cast<unsigned long long>(fs.delivered),
                  static_cast<unsigned long long>(fs.dropped));
      if (want > 0.0) {
        rates.push_back(got);
        weights.push_back(spec->weights[i - 1]);
      }
    }
    std::printf("\nweighted Jain index [%g, %g]: %.4f\n", w0, t_end,
                corelite::stats::jain_index(rates, weights));
    std::printf("data drops: %llu   feedback: %llu   events: %llu\n",
                static_cast<unsigned long long>(result.total_data_drops),
                static_cast<unsigned long long>(result.feedback_messages),
                static_cast<unsigned long long>(result.events_processed));
  }

  if (parser.get_flag("table")) {
    std::printf("\n%8s", "t[s]");
    for (std::size_t i = 1; i <= spec->num_flows; ++i) std::printf("  f%-5zu", i);
    std::printf("\n");
    for (double t = 0.0; t <= t_end + 1e-9; t += 5.0) {
      std::printf("%8.0f", t);
      for (std::size_t i = 1; i <= spec->num_flows; ++i) {
        std::printf("  %6.1f", result.tracker.series(static_cast<corelite::net::FlowId>(i))
                                   .allotted_rate.value_at(t));
      }
      std::printf("\n");
    }
  }

  auto dump_csv = [&](const std::string& path, bool cumulative) {
    std::map<std::string, const corelite::stats::TimeSeries*> series;
    for (std::size_t i = 1; i <= spec->num_flows; ++i) {
      const auto& fs = result.tracker.series(static_cast<corelite::net::FlowId>(i));
      series["flow" + std::to_string(i)] =
          cumulative ? &fs.cumulative_delivered : &fs.allotted_rate;
    }
    std::ofstream os{path};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    corelite::stats::write_csv(os, series, 0.0, t_end, 1.0);
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  };
  if (parser.was_set("csv-rates")) dump_csv(parser.get_string("csv-rates"), false);
  if (parser.was_set("csv-cum")) dump_csv(parser.get_string("csv-cum"), true);

  if (parser.was_set("json")) {
    std::ofstream os{parser.get_string("json")};
    if (!os) {
      std::fprintf(stderr, "cannot write %s\n", parser.get_string("json").c_str());
      return 1;
    }
    corelite::stats::RunSummaryJson meta;
    meta.scenario = parser.get_string("scenario");
    meta.mechanism = sc::mechanism_name(spec->mechanism);
    meta.duration_sec = t_end;
    meta.seed = spec->seed;
    meta.events = result.events_processed;
    meta.total_drops = result.total_data_drops;
    meta.window_start = w0;
    meta.window_end = t_end;
    corelite::stats::write_run_json(os, meta, result.tracker);
    std::fprintf(stderr, "wrote %s\n", parser.get_string("json").c_str());
  }
  return 0;
}

#!/usr/bin/env python3
"""Fold fairness-audit JSON documents (and optionally BENCH_scale.json)
into one self-contained HTML report.

    python3 tools/fairness_report.py audit_fig5_corelite.json ... \
        --bench BENCH_scale.json --out fairness_report.html

Each audit document (schema "corelite-audit-v1", written by
corelite_sim --audit) becomes a section: run summary, inline SVG
sparklines of the per-window Jain index and max |oracle deviation|
against the configured band, the worst per-flow offenders, the
flight-recorder dump when the watchdog fired, and — when present — the
LP runtime profile and the fluid-certification decision log.  BENCH
rows contribute a scaling table with the certification-attempt columns.

Output is a single HTML file with no external assets (inline CSS +
SVG), so it can be archived as a CI artifact and opened anywhere.
Stdlib only.
"""

import argparse
import html
import json
import sys

PAGE_STYLE = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto; max-width: 70em;
       color: #1a1a2e; padding: 0 1em; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .2em; }
h2 { margin-top: 2em; }
table { border-collapse: collapse; margin: 1em 0; }
th, td { border: 1px solid #bbb; padding: .25em .6em; text-align: right; }
th { background: #eef; }
td.l, th.l { text-align: left; }
.ok { color: #0a7a2f; font-weight: 600; }
.bad { color: #b00020; font-weight: 600; }
.spark { vertical-align: middle; }
.meta { color: #555; font-size: 90%; }
"""

SPARK_W = 360
SPARK_H = 48


def esc(s):
    return html.escape(str(s))


def sparkline(values, band=None, lo=None, hi=None, color="#2255cc"):
    """Inline SVG polyline over `values`; optional horizontal band line."""
    if not values:
        return "<span class='meta'>no data</span>"
    vlo = min(values + ([band] if band is not None else []) + ([lo] if lo is not None else []))
    vhi = max(values + ([band] if band is not None else []) + ([hi] if hi is not None else []))
    if vhi - vlo < 1e-12:
        vhi = vlo + 1.0
    pad = 4

    def x(i):
        if len(values) == 1:
            return SPARK_W / 2
        return pad + (SPARK_W - 2 * pad) * i / (len(values) - 1)

    def y(v):
        return pad + (SPARK_H - 2 * pad) * (1 - (v - vlo) / (vhi - vlo))

    pts = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values))
    parts = [
        f"<svg class='spark' width='{SPARK_W}' height='{SPARK_H}' "
        f"viewBox='0 0 {SPARK_W} {SPARK_H}'>"
    ]
    if band is not None:
        by = y(band)
        parts.append(
            f"<line x1='0' y1='{by:.1f}' x2='{SPARK_W}' y2='{by:.1f}' "
            "stroke='#b00020' stroke-dasharray='4 3' stroke-width='1'/>"
        )
    parts.append(
        f"<polyline points='{pts}' fill='none' stroke='{color}' stroke-width='1.5'/>"
    )
    parts.append("</svg>")
    return "".join(parts)


def verdict_cell(fired):
    if fired:
        return "<td class='bad'>FIRED</td>"
    return "<td class='ok'>silent</td>"


def window_rows(windows, gauge_names, limit=None):
    out = [
        "<table><tr><th>#</th><th>t (s)</th><th>Jain</th><th>max |dev|</th>"
        "<th>worst flow</th><th>viol.</th><th>flags</th>"
    ]
    out.extend(f"<th>{esc(g)}</th>" for g in gauge_names)
    out.append("</tr>")
    shown = windows if limit is None else windows[-limit:]
    for w in shown:
        flags = []
        if w.get("boundary"):
            flags.append("boundary")
        if w.get("spans_jump"):
            flags.append("jump")
        cls = " class='bad'" if w.get("violating") else ""
        out.append(
            f"<tr{cls}><td>{w['index']}</td>"
            f"<td>{w['t0_sec']:.1f}&ndash;{w['t1_sec']:.1f}</td>"
            f"<td>{w['jain']:.3f}</td><td>{w['max_abs_deviation']:.3f}</td>"
            f"<td>{w['worst_flow']}</td><td>{w['violations']}</td>"
            f"<td class='l'>{' '.join(flags)}</td>"
        )
        for g in w.get("gauges", []):
            out.append(f"<td>{g:.1f}</td>")
        out.append("</tr>")
    out.append("</table>")
    return "".join(out)


def fairness_section(doc):
    f = doc["fairness"]
    windows = f.get("windows", [])
    jain = [w["jain"] for w in windows]
    maxdev = [w["max_abs_deviation"] for w in windows]
    fired = f.get("watchdog_fired", False)
    out = []
    out.append(
        "<table><tr><th class='l'>watchdog</th><th>windows</th><th>min Jain</th>"
        "<th>worst deviation</th><th>worst flow</th><th>band</th></tr><tr>"
    )
    out.append(verdict_cell(fired))
    out.append(
        f"<td>{len(windows)}</td><td>{f.get('min_jain', 1.0):.3f}</td>"
        f"<td>{f.get('worst_deviation', 0.0):+.3f}</td>"
        f"<td>{f.get('worst_flow', 0)}</td><td>{f.get('band', 0.0):.2f}</td></tr></table>"
    )
    out.append(
        f"<p>Jain index per window: {sparkline(jain, lo=0.0, hi=1.0, color='#0a7a2f')}<br>"
        f"max |oracle deviation| per window (dashed = band): "
        f"{sparkline(maxdev, band=f.get('band'), lo=0.0)}</p>"
    )

    # Worst offenders across the whole run: flows ranked by how often
    # they exceeded the band, capped so big populations stay readable.
    strikes = {}
    for w in windows:
        for s in w.get("flows", []):
            mag = max(abs(s["deviation"]), max(0.0, s.get("overage", 0.0)))
            if s.get("measurable") and mag > f.get("band", 0.4):
                strikes.setdefault(s["id"], []).append((w["index"], mag))
    if strikes:
        ranked = sorted(strikes.items(), key=lambda kv: -len(kv[1]))[:8]
        out.append("<h3>Out-of-band flows</h3><table><tr><th>flow</th>"
                   "<th>windows out of band</th><th>worst |dev/over|</th></tr>")
        for fid, hits in ranked:
            worst = max(m for _, m in hits)
            out.append(f"<tr><td>{fid}</td><td>{len(hits)}</td><td>{worst:.3f}</td></tr>")
        out.append("</table>")

    if fired:
        out.append(
            f"<h3>Flight recorder (tripped at window {f.get('watchdog_window')}, "
            f"t = {f.get('watchdog_t_sec', 0.0):.1f} s)</h3>"
        )
        out.append(window_rows(f.get("flight_recorder", []), f.get("gauge_names", [])))
    else:
        out.append("<h3>Last windows</h3>")
        out.append(window_rows(windows, f.get("gauge_names", []), limit=8))
    return "".join(out)


def engine_section(eng):
    out = [
        f"<h3>LP runtime profile ({eng['lp_count']} LPs, {eng['threads']} threads, "
        f"{eng['runs']} run-until batches)</h3>",
        "<table><tr><th>LP</th><th>windows</th><th>events</th><th>run ms</th>"
        "<th>mailbox drains</th><th>msgs in</th></tr>",
    ]
    for lp in eng.get("lps", []):
        out.append(
            f"<tr><td>{lp['lp']}</td><td>{lp['windows']}</td><td>{lp['events']}</td>"
            f"<td>{lp['run_ms']:.1f}</td><td>{lp['drains']}</td><td>{lp['msgs_in']}</td></tr>"
        )
    out.append("</table><table><tr><th>worker</th><th>barrier waits</th>"
               "<th>wait ms</th><th>max wait ms</th></tr>")
    for w in eng.get("workers", []):
        out.append(
            f"<tr><td>{w['worker']}</td><td>{w['barrier_waits']}</td>"
            f"<td>{w['barrier_wait_ms']:.1f}</td><td>{w['max_wait_ms']:.2f}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def fluid_cert_section(fc):
    out = [
        "<h3>Fluid certification</h3>",
        "<table><tr><th>attempts</th><th>rejects (min-skip)</th>"
        "<th>rejects (drift)</th><th>rejects (agreement)</th><th>accepts</th>"
        "<th>mean dwell at accept</th></tr>",
        f"<tr><td>{fc['attempts']}</td><td>{fc['reject_min_skip']}</td>"
        f"<td>{fc['reject_drift']}</td><td>{fc['reject_agreement']}</td>"
        f"<td>{fc['accepts']}</td><td>{fc['mean_dwell_at_accept']:.1f}</td></tr></table>",
    ]
    events = fc.get("events", [])
    if events:
        dwell = [e["dwell"] for e in events]
        out.append(f"<p>dwell at each decision: {sparkline(dwell, lo=0)}</p>")
        accepts = [e for e in events if e["kind"] in ("accept", "reanchor")]
        if accepts:
            out.append("<table><tr><th>t (s)</th><th>kind</th><th>dwell</th>"
                       "<th>jump span (s)</th></tr>")
            for e in accepts[:20]:
                out.append(
                    f"<tr><td>{e['t_sec']:.1f}</td><td class='l'>{esc(e['kind'])}</td>"
                    f"<td>{e['dwell']}</td><td>{e['extra']:.1f}</td></tr>"
                )
            out.append("</table>")
    if fc.get("dropped_events"):
        out.append(f"<p class='meta'>{fc['dropped_events']} decisions beyond the "
                   "recorder capacity were dropped.</p>")
    return "".join(out)


def bench_section(bench):
    rows = bench.get("rows", [])
    out = [
        "<h2>Scaling bench (BENCH_scale.json)</h2>",
        f"<p class='meta'>hw_threads = {bench.get('hw_threads', '?')}</p>",
        "<table><tr><th>flows</th><th>lp</th><th>fluid</th><th>wall ms</th>"
        "<th>Jain</th><th>cert attempts</th><th>min-skip</th><th>drift</th>"
        "<th>agreement</th><th>dwell@accept</th></tr>",
    ]
    for r in rows:
        out.append(
            f"<tr><td>{r.get('flows', '?')}</td><td>{r.get('lp', '?')}</td>"
            f"<td>{'yes' if r.get('fluid') else ''}</td>"
            f"<td>{r.get('wall_ms', 0):.0f}</td><td>{r.get('jain', 0):.3f}</td>"
            f"<td>{r.get('cert_attempts', 0)}</td>"
            f"<td>{r.get('cert_rejects_min_skip', 0)}</td>"
            f"<td>{r.get('cert_rejects_drift', 0)}</td>"
            f"<td>{r.get('cert_rejects_agreement', 0)}</td>"
            f"<td>{r.get('cert_mean_dwell_at_accept', 0):.1f}</td></tr>"
        )
    out.append("</table>")
    return "".join(out)


def build_report(audit_docs, bench):
    body = ["<h1>Fairness audit report</h1>"]
    fired_any = False
    for path, doc in audit_docs:
        f = doc.get("fairness")
        fired = bool(f and f.get("watchdog_fired"))
        fired_any = fired_any or fired
        body.append(
            f"<h2>{esc(doc.get('scenario', '?'))} / {esc(doc.get('mechanism', '?'))} "
            f"(seed {doc.get('seed', '?')})</h2>"
            f"<p class='meta'>{esc(path)}</p>"
        )
        if f:
            body.append(fairness_section(doc))
        else:
            body.append("<p class='meta'>no fairness section (audit was off).</p>")
        if doc.get("engine"):
            body.append(engine_section(doc["engine"]))
        if doc.get("fluid_cert"):
            body.append(fluid_cert_section(doc["fluid_cert"]))
    if bench is not None:
        body.append(bench_section(bench))
    title = "Fairness audit report"
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{title}</title><style>{PAGE_STYLE}</style></head><body>"
        + "".join(body)
        + "</body></html>"
    ), fired_any


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("audits", nargs="+", help="corelite-audit-v1 JSON files")
    parser.add_argument("--bench", help="BENCH_scale.json to fold in")
    parser.add_argument("--out", default="fairness_report.html", help="output HTML path")
    args = parser.parse_args()

    docs = []
    for path in args.audits:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        schema = doc.get("audit_schema")
        if schema != "corelite-audit-v1":
            print(f"fairness_report: {path}: unexpected audit_schema {schema!r}",
                  file=sys.stderr)
            return 1
        docs.append((path, doc))
    bench = None
    if args.bench:
        with open(args.bench, encoding="utf-8") as f:
            bench = json.load(f)

    page, fired_any = build_report(docs, bench)
    with open(args.out, "w", encoding="utf-8") as f:
        f.write(page)
    print(f"fairness_report: wrote {args.out} ({len(docs)} audit section(s)"
          + (", bench table" if bench else "")
          + (", WATCHDOG FIRED in at least one section" if fired_any else "")
          + ")")
    return 0


if __name__ == "__main__":
    sys.exit(main())

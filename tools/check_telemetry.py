#!/usr/bin/env python3
"""Validate telemetry output: a Chrome trace file and a run manifest.

CI runs this after a tiny sweep with --telemetry --trace-out:

    python3 tools/check_telemetry.py --trace trace.json \
        --manifest run_manifest.json --stdout captured_output.txt

Checks:
  - the trace is valid JSON in the trace_event format: a traceEvents
    list with metadata (ph "M") naming the tracks, and at least one
    complete span (ph "X") in EACH clock domain — pid 1 (virtual time)
    and pid 2 (sweep wall-clock);
  - the manifest carries every required key, its digest is 16 lowercase
    hex digits, and the build/phase sub-objects are well-formed;
  - with --stdout, the manifest digest equals the "result digest: X"
    line the binary printed (manifest-vs-output cross-check).

Exits non-zero with a message per failed check; prints a one-line
summary on success.  Stdlib only.
"""

import argparse
import json
import re
import sys

DIGEST_RE = re.compile(r"^[0-9a-f]{16}$")
STDOUT_DIGEST_RE = re.compile(r"result digest: ([0-9a-f]{16})")

MANIFEST_REQUIRED = {
    "tool": str,
    "scenario": str,
    "mechanism": str,
    "base_seed": int,
    "runs": int,
    "jobs": int,
    "events": int,
    "result_digest": str,
    "build": dict,
    "wall_phases_ms": dict,
    "hot_path_counters": dict,
    "metrics": list,
    "extra": dict,
}
BUILD_REQUIRED = ("git_sha", "compiler", "flags", "build_type")
HOTPATH_REQUIRED = (
    "exp_calls",
    "pow_calls",
    "rng_draws",
    "observer_dispatches",
    "series_appends",
)

VIRTUAL_PID = 1
WALL_PID = 2


class CheckError(Exception):
    pass


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise CheckError(f"{what}: cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise CheckError(f"{what}: {path} is not valid JSON: {e}") from e


def check_trace(path):
    doc = load_json(path, "trace")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise CheckError("trace: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise CheckError("trace: traceEvents is empty")

    spans_by_pid = {VIRTUAL_PID: 0, WALL_PID: 0}
    metadata = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise CheckError(f"trace: event {i} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in e:
                raise CheckError(f"trace: event {i} lacks {key!r}")
        ph = e["ph"]
        if ph == "M":
            metadata += 1
        elif ph == "X":
            if "ts" not in e or "dur" not in e:
                raise CheckError(f"trace: X event {i} lacks ts/dur")
            if e["pid"] in spans_by_pid:
                spans_by_pid[e["pid"]] += 1

    if metadata == 0:
        raise CheckError("trace: no metadata (ph M) events — tracks are unnamed")
    if spans_by_pid[VIRTUAL_PID] == 0:
        raise CheckError("trace: no complete spans on pid 1 (virtual time)")
    if spans_by_pid[WALL_PID] == 0:
        raise CheckError("trace: no complete spans on pid 2 (sweep wall-clock)")
    return len(events), spans_by_pid


def check_manifest(path):
    doc = load_json(path, "manifest")
    if not isinstance(doc, dict):
        raise CheckError("manifest: top level is not an object")
    for key, typ in MANIFEST_REQUIRED.items():
        if key not in doc:
            raise CheckError(f"manifest: missing key {key!r}")
        if not isinstance(doc[key], typ):
            raise CheckError(
                f"manifest: {key!r} should be {typ.__name__}, "
                f"got {type(doc[key]).__name__}"
            )
    if not DIGEST_RE.match(doc["result_digest"]):
        raise CheckError(
            f"manifest: result_digest {doc['result_digest']!r} is not "
            "16 lowercase hex digits"
        )
    for key in BUILD_REQUIRED:
        if not doc["build"].get(key):
            raise CheckError(f"manifest: build.{key} missing or empty")
    for key in HOTPATH_REQUIRED:
        if key not in doc["hot_path_counters"]:
            raise CheckError(f"manifest: hot_path_counters.{key} missing")
    for name, ms in doc["wall_phases_ms"].items():
        if not isinstance(ms, (int, float)) or ms < 0:
            raise CheckError(f"manifest: phase {name!r} has bad duration {ms!r}")
    for i, m in enumerate(doc["metrics"]):
        for key in ("name", "kind", "count", "sum"):
            if key not in m:
                raise CheckError(f"manifest: metrics[{i}] lacks {key!r}")
    return doc


def check_stdout(path, manifest):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise CheckError(f"stdout: cannot read {path}: {e}") from e
    match = STDOUT_DIGEST_RE.search(text)
    if not match:
        raise CheckError("stdout: no 'result digest: <16 hex>' line found")
    if match.group(1) != manifest["result_digest"]:
        raise CheckError(
            f"digest mismatch: stdout printed {match.group(1)} but the "
            f"manifest recorded {manifest['result_digest']}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument("--manifest", help="run_manifest.json to validate")
    parser.add_argument(
        "--stdout",
        help="captured binary output; its printed digest must match the manifest",
    )
    args = parser.parse_args()
    if not args.trace and not args.manifest:
        parser.error("nothing to check: pass --trace and/or --manifest")
    if args.stdout and not args.manifest:
        parser.error("--stdout requires --manifest (it cross-checks the digest)")

    try:
        parts = []
        if args.trace:
            count, spans = check_trace(args.trace)
            parts.append(
                f"trace ok ({count} events, {spans[VIRTUAL_PID]} virtual / "
                f"{spans[WALL_PID]} wall spans)"
            )
        if args.manifest:
            manifest = check_manifest(args.manifest)
            parts.append(
                f"manifest ok (tool={manifest['tool']}, runs={manifest['runs']}, "
                f"digest={manifest['result_digest']})"
            )
            if args.stdout:
                check_stdout(args.stdout, manifest)
                parts.append("stdout digest matches")
    except CheckError as e:
        print(f"check_telemetry: FAIL: {e}", file=sys.stderr)
        return 1
    print("check_telemetry: " + "; ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Validate telemetry output: a Chrome trace file, a run manifest,
and/or a fairness-audit document.

CI runs this after a tiny sweep with --telemetry --trace-out:

    python3 tools/check_telemetry.py --trace trace.json \
        --manifest run_manifest.json --stdout captured_output.txt

and after each audited golden-matrix run:

    python3 tools/check_telemetry.py --audit fairness_audit.json \
        --expect-watchdog silent

Checks:
  - the trace is valid JSON in the trace_event format: a traceEvents
    list with metadata (ph "M") naming the tracks, and at least one
    complete span (ph "X") in EACH clock domain — pid 1 (virtual time)
    and pid 2 (sweep wall-clock);
  - the manifest carries every required key, its digest is 16 lowercase
    hex digits, and the build/phase sub-objects are well-formed;
  - with --stdout, the manifest digest equals the "result digest: X"
    line the binary printed (manifest-vs-output cross-check);
  - the audit document follows schema "corelite-audit-v1": fairness
    windows with consistent per-flow samples and gauge vectors, a
    flight-recorder dump if (and only if) the watchdog fired, and
    well-formed optional engine / fluid_cert sections;
  - with --expect-watchdog fired|silent, the audit's watchdog state
    must match (the CI fairness gates).

Exits non-zero with a message per failed check; prints a one-line
summary on success.  Stdlib only.
"""

import argparse
import json
import re
import sys

DIGEST_RE = re.compile(r"^[0-9a-f]{16}$")
STDOUT_DIGEST_RE = re.compile(r"result digest: ([0-9a-f]{16})")

MANIFEST_REQUIRED = {
    "tool": str,
    "scenario": str,
    "mechanism": str,
    "base_seed": int,
    "runs": int,
    "jobs": int,
    "events": int,
    "result_digest": str,
    "build": dict,
    "wall_phases_ms": dict,
    "hot_path_counters": dict,
    "metrics": list,
    "extra": dict,
}
BUILD_REQUIRED = ("git_sha", "compiler", "flags", "build_type")
HOTPATH_REQUIRED = (
    "exp_calls",
    "pow_calls",
    "rng_draws",
    "observer_dispatches",
    "series_appends",
)

VIRTUAL_PID = 1
WALL_PID = 2


class CheckError(Exception):
    pass


def load_json(path, what):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except OSError as e:
        raise CheckError(f"{what}: cannot read {path}: {e}") from e
    except json.JSONDecodeError as e:
        raise CheckError(f"{what}: {path} is not valid JSON: {e}") from e


def check_trace(path):
    doc = load_json(path, "trace")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise CheckError("trace: missing top-level traceEvents")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        raise CheckError("trace: traceEvents is empty")

    spans_by_pid = {VIRTUAL_PID: 0, WALL_PID: 0}
    metadata = 0
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise CheckError(f"trace: event {i} is not an object")
        for key in ("name", "ph", "pid"):
            if key not in e:
                raise CheckError(f"trace: event {i} lacks {key!r}")
        ph = e["ph"]
        if ph == "M":
            metadata += 1
        elif ph == "X":
            if "ts" not in e or "dur" not in e:
                raise CheckError(f"trace: X event {i} lacks ts/dur")
            if e["pid"] in spans_by_pid:
                spans_by_pid[e["pid"]] += 1

    if metadata == 0:
        raise CheckError("trace: no metadata (ph M) events — tracks are unnamed")
    if spans_by_pid[VIRTUAL_PID] == 0:
        raise CheckError("trace: no complete spans on pid 1 (virtual time)")
    if spans_by_pid[WALL_PID] == 0:
        raise CheckError("trace: no complete spans on pid 2 (sweep wall-clock)")
    return len(events), spans_by_pid


def check_manifest(path):
    doc = load_json(path, "manifest")
    if not isinstance(doc, dict):
        raise CheckError("manifest: top level is not an object")
    for key, typ in MANIFEST_REQUIRED.items():
        if key not in doc:
            raise CheckError(f"manifest: missing key {key!r}")
        if not isinstance(doc[key], typ):
            raise CheckError(
                f"manifest: {key!r} should be {typ.__name__}, "
                f"got {type(doc[key]).__name__}"
            )
    if not DIGEST_RE.match(doc["result_digest"]):
        raise CheckError(
            f"manifest: result_digest {doc['result_digest']!r} is not "
            "16 lowercase hex digits"
        )
    for key in BUILD_REQUIRED:
        if not doc["build"].get(key):
            raise CheckError(f"manifest: build.{key} missing or empty")
    for key in HOTPATH_REQUIRED:
        if key not in doc["hot_path_counters"]:
            raise CheckError(f"manifest: hot_path_counters.{key} missing")
    for name, ms in doc["wall_phases_ms"].items():
        if not isinstance(ms, (int, float)) or ms < 0:
            raise CheckError(f"manifest: phase {name!r} has bad duration {ms!r}")
    for i, m in enumerate(doc["metrics"]):
        for key in ("name", "kind", "count", "sum"):
            if key not in m:
                raise CheckError(f"manifest: metrics[{i}] lacks {key!r}")
    return doc


AUDIT_FAIRNESS_REQUIRED = {
    "window_sec": (int, float),
    "band": (int, float),
    "watchdog_windows": int,
    "grace_windows": int,
    "rate_floor_pps": (int, float),
    "watchdog_enabled": bool,
    "watchdog_fired": bool,
    "min_jain": (int, float),
    "worst_deviation": (int, float),
    "gauge_names": list,
    "windows": list,
    "flight_recorder": list,
}
AUDIT_FLOW_REQUIRED = (
    "id", "weight", "rate_pps", "sent_pps", "normalized", "oracle_pps",
    "fair_share_pps", "deviation", "overage", "active", "measurable",
)
AUDIT_WINDOW_REQUIRED = (
    "index", "t0_sec", "t1_sec", "jain", "max_abs_deviation", "violations",
    "boundary", "spans_jump", "violating", "flows", "gauges",
)


def check_audit_windows(windows, gauge_count, what):
    last_index = -1
    for w in windows:
        for key in AUDIT_WINDOW_REQUIRED:
            if key not in w:
                raise CheckError(f"audit: {what} window lacks {key!r}")
        if w["index"] <= last_index:
            raise CheckError(f"audit: {what} window indices not increasing")
        last_index = w["index"]
        if w["t1_sec"] <= w["t0_sec"]:
            raise CheckError(f"audit: {what} window {w['index']} has t1 <= t0")
        if not 0.0 <= w["jain"] <= 1.0 + 1e-9:
            raise CheckError(f"audit: {what} window {w['index']} Jain out of [0,1]")
        if len(w["gauges"]) != gauge_count:
            raise CheckError(
                f"audit: {what} window {w['index']} has {len(w['gauges'])} "
                f"gauge values for {gauge_count} gauge names"
            )
        for s in w["flows"]:
            for key in AUDIT_FLOW_REQUIRED:
                if key not in s:
                    raise CheckError(
                        f"audit: {what} window {w['index']} flow sample lacks {key!r}"
                    )


def check_audit(path, expect_watchdog=None):
    doc = load_json(path, "audit")
    schema = doc.get("audit_schema")
    if schema != "corelite-audit-v1":
        raise CheckError(f"audit: unexpected audit_schema {schema!r}")
    for key, typ in (("scenario", str), ("mechanism", str), ("seed", int)):
        if not isinstance(doc.get(key), typ):
            raise CheckError(f"audit: missing or mistyped {key!r}")

    fairness = doc.get("fairness")
    fired = False
    windows = 0
    if fairness is not None:
        for key, typ in AUDIT_FAIRNESS_REQUIRED.items():
            if key not in fairness:
                raise CheckError(f"audit: fairness lacks {key!r}")
            if not isinstance(fairness[key], typ):
                raise CheckError(f"audit: fairness.{key} mistyped")
        gauges = len(fairness["gauge_names"])
        check_audit_windows(fairness["windows"], gauges, "fairness")
        check_audit_windows(fairness["flight_recorder"], gauges, "flight-recorder")
        fired = fairness["watchdog_fired"]
        windows = len(fairness["windows"])
        if fired and not fairness["flight_recorder"]:
            raise CheckError("audit: watchdog fired but the flight recorder is empty")
        if not fired and fairness["flight_recorder"]:
            raise CheckError("audit: flight recorder dumped without a watchdog trip")

    engine = doc.get("engine")
    if engine is not None:
        for key in ("lp_count", "threads", "runs", "lps", "workers"):
            if key not in engine:
                raise CheckError(f"audit: engine lacks {key!r}")
        if len(engine["lps"]) != engine["lp_count"]:
            raise CheckError("audit: engine.lps length != lp_count")
        for lp in engine["lps"]:
            for key in ("lp", "windows", "events", "run_ms", "drains", "msgs_in"):
                if key not in lp:
                    raise CheckError(f"audit: engine lp entry lacks {key!r}")

    fluid_cert = doc.get("fluid_cert")
    if fluid_cert is not None:
        for key in ("attempts", "reject_min_skip", "reject_drift",
                    "reject_agreement", "accepts", "events"):
            if key not in fluid_cert:
                raise CheckError(f"audit: fluid_cert lacks {key!r}")
        gates = (fluid_cert["reject_min_skip"] + fluid_cert["reject_drift"]
                 + fluid_cert["reject_agreement"] + fluid_cert["accepts"])
        if gates > fluid_cert["attempts"]:
            raise CheckError("audit: fluid_cert gate outcomes exceed attempts")

    if expect_watchdog and fairness is None:
        raise CheckError(
            "audit: --expect-watchdog given but the document has no "
            "fairness section (was the auditor skipped?)"
        )
    if expect_watchdog == "fired" and not fired:
        raise CheckError("audit: expected the watchdog to fire, but it stayed silent")
    if expect_watchdog == "silent" and fired:
        raise CheckError("audit: expected a silent watchdog, but it FIRED")
    return doc, fired, windows


def check_stdout(path, manifest):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise CheckError(f"stdout: cannot read {path}: {e}") from e
    match = STDOUT_DIGEST_RE.search(text)
    if not match:
        raise CheckError("stdout: no 'result digest: <16 hex>' line found")
    if match.group(1) != manifest["result_digest"]:
        raise CheckError(
            f"digest mismatch: stdout printed {match.group(1)} but the "
            f"manifest recorded {manifest['result_digest']}"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace", help="Chrome trace JSON to validate")
    parser.add_argument("--manifest", help="run_manifest.json to validate")
    parser.add_argument(
        "--stdout",
        help="captured binary output; its printed digest must match the manifest",
    )
    parser.add_argument(
        "--audit",
        help="fairness-audit JSON (schema corelite-audit-v1) to validate",
    )
    parser.add_argument(
        "--expect-watchdog",
        choices=("fired", "silent"),
        help="assert the audit's watchdog state (requires --audit)",
    )
    args = parser.parse_args()
    if not args.trace and not args.manifest and not args.audit:
        parser.error("nothing to check: pass --trace, --manifest and/or --audit")
    if args.stdout and not args.manifest:
        parser.error("--stdout requires --manifest (it cross-checks the digest)")
    if args.expect_watchdog and not args.audit:
        parser.error("--expect-watchdog requires --audit")

    try:
        parts = []
        if args.trace:
            count, spans = check_trace(args.trace)
            parts.append(
                f"trace ok ({count} events, {spans[VIRTUAL_PID]} virtual / "
                f"{spans[WALL_PID]} wall spans)"
            )
        if args.manifest:
            manifest = check_manifest(args.manifest)
            parts.append(
                f"manifest ok (tool={manifest['tool']}, runs={manifest['runs']}, "
                f"digest={manifest['result_digest']})"
            )
            if args.stdout:
                check_stdout(args.stdout, manifest)
                parts.append("stdout digest matches")
        if args.audit:
            doc, fired, windows = check_audit(args.audit, args.expect_watchdog)
            parts.append(
                f"audit ok ({doc['scenario']}/{doc['mechanism']}, "
                f"{windows} windows, watchdog "
                + ("FIRED" if fired else "silent")
                + ")"
            )
    except CheckError as e:
        print(f"check_telemetry: FAIL: {e}", file=sys.stderr)
        return 1
    print("check_telemetry: " + "; ".join(parts))
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fluid fast-forward cross-check gate.

Runs each grid cell twice through corelite_sim — packet mode and
--fluid — and compares whole-run per-flow mean rates (final cumulative
CSV row divided by the run duration) and the Jain index.  A cell passes
when every flow's rate error is within --tol relative to
max(packet_rate, 25 pps) and the Jain indices agree within --tol
relative.  Cells marked "jump" must also take at least one fast-forward
jump, otherwise the comparison is vacuously packet-vs-packet.

The 25 pps denominator floor mirrors the fidelity contract documented
in docs/architecture.md: counters move in whole packets, so below a few
packets per second a relative gate would be testing quantization noise,
not model fidelity.

Exit status: 0 = every cell passed, 1 = any gate failed.
"""

import argparse
import csv
import re
import subprocess
import sys
import tempfile
from pathlib import Path

RATE_FLOOR_PPS = 25.0

# (name, scenario, mechanism, duration ["" = scenario default], expect_jump)
GRID = [
    ("fig5/corelite", "fig5", "corelite", "", True),
    ("fig5/csfq", "fig5", "csfq", "", True),
    ("fig3/corelite", "fig3", "corelite", "", True),
    ("fig3/csfq", "fig3", "csfq", "", True),
    ("gen40/corelite", "gen-pl4-40-steady", "corelite", "200", True),
    ("gen40/csfq", "gen-pl4-40-steady", "csfq", "200", True),
]


def run_cell(binary, scenario, mechanism, duration, fluid, csv_path):
    cmd = [binary, "--scenario", scenario, "--mechanism", mechanism,
           "--csv-cum", str(csv_path)]
    if duration:
        cmd += ["--duration", duration]
    if fluid:
        cmd += ["--fluid"]
    out = subprocess.run(cmd, check=True, capture_output=True, text=True).stdout
    jumps = 0
    m = re.search(r"in (\d+) jump", out)
    if m:
        jumps = int(m.group(1))
    return jumps


def whole_run_means(csv_path, duration):
    rows = list(csv.reader(open(csv_path)))
    header, last = rows[0][1:], rows[-1]
    t = float(last[0])
    dur = duration if duration > 0 else t
    if dur <= 0:
        raise SystemExit(f"{csv_path}: zero-duration cumulative CSV")
    return dict(zip(header, (float(v) / dur for v in last[1:])))


def jain(rates):
    vals = list(rates.values())
    return sum(vals) ** 2 / (len(vals) * sum(v * v for v in vals))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("binary", help="path to the corelite_sim binary")
    ap.add_argument("--tol", type=float, default=0.02,
                    help="relative tolerance (default 0.02)")
    args = ap.parse_args()

    failed = False
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        for name, scenario, mechanism, duration, expect_jump in GRID:
            pkt_csv = tmp / f"{name.replace('/', '_')}_pkt.csv"
            fld_csv = tmp / f"{name.replace('/', '_')}_fld.csv"
            run_cell(args.binary, scenario, mechanism, duration, False, pkt_csv)
            jumps = run_cell(args.binary, scenario, mechanism, duration, True, fld_csv)

            dur = float(duration) if duration else 0.0
            pkt = whole_run_means(pkt_csv, dur)
            fld = whole_run_means(fld_csv, dur)
            worst_flow, worst = max(
                ((k, abs(fld[k] - pkt[k]) / max(pkt[k], RATE_FLOOR_PPS)) for k in pkt),
                key=lambda kv: kv[1])
            jp, jf = jain(pkt), jain(fld)
            jain_rel = abs(jf - jp) / jp

            cell_ok = worst <= args.tol and jain_rel <= args.tol
            if expect_jump and jumps < 1:
                cell_ok = False
            status = "PASS" if cell_ok else "FAIL"
            print(f"{name:16s} jumps {jumps:2d}  worst {worst * 100:6.2f}% "
                  f"({worst_flow})  jain rel {jain_rel * 100:5.2f}%  {status}")
            failed = failed or not cell_ok

    if failed:
        raise SystemExit(1)
    print("fluid cross-check grid: all cells within tolerance")


if __name__ == "__main__":
    main()

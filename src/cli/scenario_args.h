// Maps command-line options onto a ScenarioSpec (the corelite_sim tool).
#pragma once

#include <optional>
#include <ostream>
#include <string>

#include "cli/args.h"
#include "scenario/scenario.h"

namespace corelite::cli {

/// Registers every scenario-related option on `parser`.
void register_scenario_options(ArgParser& parser);

/// Builds the spec described by the parsed options.  On error (unknown
/// scenario/mechanism name, malformed weights list) writes a diagnostic
/// to `err` and returns nullopt.
[[nodiscard]] std::optional<scenario::ScenarioSpec> spec_from_args(const ArgParser& parser,
                                                                   std::ostream& err);

/// Parses "1,2,3.5" into weights; empty on malformed input.
[[nodiscard]] std::optional<std::vector<double>> parse_weight_list(const std::string& text);

}  // namespace corelite::cli

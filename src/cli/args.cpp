#include "cli/args.h"

#include <cassert>
#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <sstream>

namespace corelite::cli {

void ArgParser::add_string(const std::string& name, std::string default_value,
                           std::string help) {
  Option opt;
  opt.kind = Kind::String;
  opt.help = std::move(help);
  opt.default_text = default_value;
  opt.str_value = std::move(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value, std::string help) {
  Option opt;
  opt.kind = Kind::Double;
  opt.help = std::move(help);
  opt.dbl_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void ArgParser::add_int(const std::string& name, std::int64_t default_value, std::string help) {
  Option opt;
  opt.kind = Kind::Int;
  opt.help = std::move(help);
  opt.int_value = default_value;
  opt.default_text = std::to_string(default_value);
  options_[name] = std::move(opt);
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, std::string help) {
  Option opt;
  opt.kind = Kind::Flag;
  opt.help = std::move(help);
  opt.default_text = "false";
  options_[name] = std::move(opt);
  order_.push_back(name);
}

bool ArgParser::assign(Option& opt, const std::string& name, const std::string& value,
                       std::ostream& err) {
  switch (opt.kind) {
    case Kind::String:
      opt.str_value = value;
      break;
    case Kind::Double: {
      char* end = nullptr;
      errno = 0;
      const double parsed = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        err << program_ << ": --" << name << " expects a number, got '" << value << "'\n";
        return false;
      }
      // Overflow ("1e999" parses to inf with ERANGE) and literal
      // inf/nan all yield non-finite values no option can use.
      if (!std::isfinite(parsed)) {
        err << program_ << ": --" << name << " value '" << value
            << "' is out of range (must be finite)\n";
        return false;
      }
      opt.dbl_value = parsed;
      break;
    }
    case Kind::Int: {
      char* end = nullptr;
      errno = 0;
      const std::int64_t parsed = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        err << program_ << ": --" << name << " expects an integer, got '" << value << "'\n";
        return false;
      }
      // strtoll saturates to LLONG_MIN/LLONG_MAX on overflow and only
      // reports it through errno; without this check --flows with 20
      // digits would silently become LLONG_MAX.
      if (errno == ERANGE) {
        err << program_ << ": --" << name << " value '" << value
            << "' is out of range for a 64-bit integer\n";
        return false;
      }
      opt.int_value = parsed;
      break;
    }
    case Kind::Flag:
      err << program_ << ": --" << name << " is a flag and takes no value\n";
      return false;
  }
  opt.set = true;
  return true;
}

bool ArgParser::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      err << usage();
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      err << program_ << ": unexpected positional argument '" << arg << "'\n" << usage();
      return false;
    }
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    auto it = options_.find(arg);
    if (it == options_.end()) {
      err << program_ << ": unknown option --" << arg << "\n" << usage();
      return false;
    }
    Option& opt = it->second;
    if (opt.kind == Kind::Flag) {
      if (has_value) {
        err << program_ << ": --" << arg << " is a flag and takes no value\n";
        return false;
      }
      opt.flag_value = true;
      opt.set = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        err << program_ << ": --" << arg << " requires a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(opt, arg, value, err)) return false;
  }
  return true;
}

const std::string& ArgParser::get_string(const std::string& name) const {
  const auto& opt = options_.at(name);
  assert(opt.kind == Kind::String);
  return opt.str_value;
}

double ArgParser::get_double(const std::string& name) const {
  const auto& opt = options_.at(name);
  assert(opt.kind == Kind::Double);
  return opt.dbl_value;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const auto& opt = options_.at(name);
  assert(opt.kind == Kind::Int);
  return opt.int_value;
}

bool ArgParser::get_flag(const std::string& name) const {
  const auto& opt = options_.at(name);
  assert(opt.kind == Kind::Flag);
  return opt.flag_value;
}

bool ArgParser::was_set(const std::string& name) const { return options_.at(name).set; }

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\noptions:\n";
  for (const auto& name : order_) {
    const auto& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::Flag) os << " <value>";
    os << "\n      " << opt.help << " (default: " << opt.default_text << ")\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

}  // namespace corelite::cli

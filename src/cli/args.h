// A small dependency-free command-line flag parser for the tools.
//
// Supports `--name value`, `--name=value` and boolean `--flag`, with
// typed accessors, defaults, and generated usage text.  Unknown flags
// and malformed values are reported as errors rather than ignored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

namespace corelite::cli {

class ArgParser {
 public:
  ArgParser(std::string program, std::string description)
      : program_{std::move(program)}, description_{std::move(description)} {}

  void add_string(const std::string& name, std::string default_value, std::string help);
  void add_double(const std::string& name, double default_value, std::string help);
  void add_int(const std::string& name, std::int64_t default_value, std::string help);
  void add_flag(const std::string& name, std::string help);

  /// Parse argv.  Returns false on error or `--help` (diagnostics /
  /// usage written to `err`); option values are then unspecified.
  [[nodiscard]] bool parse(int argc, const char* const* argv, std::ostream& err);

  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;
  [[nodiscard]] bool was_set(const std::string& name) const;

  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { String, Double, Int, Flag };
  struct Option {
    Kind kind = Kind::String;
    std::string help;
    std::string str_value;
    double dbl_value = 0.0;
    std::int64_t int_value = 0;
    bool flag_value = false;
    bool set = false;
    std::string default_text;
  };

  [[nodiscard]] bool assign(Option& opt, const std::string& name, const std::string& value,
                            std::ostream& err);

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace corelite::cli

#include "cli/scenario_args.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <utility>

namespace corelite::cli {

void register_scenario_options(ArgParser& parser) {
  parser.add_string("scenario", "fig5",
                    "paper scenario: fig3 (network dynamics), fig5 (simultaneous start), "
                    "fig7 (staggered), fig9 (churn); or a generated workload "
                    "gen-{pl<stages>|ft<k>|isp<routers>}-<flows>, e.g. gen-pl8-1000 "
                    "(append -steady for a churn-free steady-state population)");
  parser.add_string("mechanism", "corelite",
                    "in-network mechanism: corelite, csfq, droptail, red, fred, wfq, ecnbit, choke, sfq");
  parser.add_string("selector", "stateless",
                    "corelite marker selector: stateless, cache");
  parser.add_string("detector", "epoch",
                    "corelite congestion detector: epoch, busyidle, ewma");
  parser.add_string("adaptation", "limd", "edge adaptation: limd, aimd, mimd");
  parser.add_string("pacing", "cbr", "source pacing: cbr, poisson, onoff");
  parser.add_string("weights", "",
                    "comma-separated per-flow weights overriding the scenario's");
  parser.add_double("duration", 0.0, "simulated seconds (0 = scenario default)");
  parser.add_int("seed", 1, "random seed");
  parser.add_int("lp", 1,
                 "logical processes for the parallel engine (1 = serial; clamped to "
                 "what the topology supports)");
  parser.add_int("lp-threads", 0,
                 "OS threads driving the LPs (0 = auto, budget-clamped to the hardware; "
                 "thread count never changes results)");
  parser.add_flag("fluid",
                  "hybrid fluid fast-forward: skip converged steady-state phases "
                  "analytically (serial only; results stay within the cross-check "
                  "tolerance of pure packet mode, but are not bit-identical)");
  parser.add_double("fluid-band", 0.12,
                    "fluid convergence band: per-flow rate EWMAs must stay within this "
                    "relative band for the dwell window before a fast-forward");
  parser.add_int("fluid-dwell", 6,
                 "consecutive in-band convergence checks required before a fast-forward");
  parser.add_double("epoch-ms", 100.0, "core congestion epoch [ms]");
  parser.add_double("k1", 1.0, "marker spacing constant K1");
  parser.add_double("qthresh", 8.0, "congestion threshold [packets]");
  parser.add_double("kcubic", 0.01, "cubic self-correction gain k");
  parser.add_double("link-delay-ms", 40.0, "per-link propagation delay [ms]");
}

std::optional<std::vector<double>> parse_weight_list(const std::string& text) {
  // A trailing delimiter would silently vanish in the getline loop below,
  // so an empty final item is rejected up front like any other empty item.
  if (text.empty() || text.back() == ',') return std::nullopt;
  std::vector<double> weights;
  std::stringstream ss{text};
  std::string item;
  while (std::getline(ss, item, ',')) {
    char* end = nullptr;
    const double w = std::strtod(item.c_str(), &end);
    // NaN compares false against <= and would slip through a plain
    // w <= 0.0 test; inf parses cleanly ("inf", "1e999").  Either one
    // poisons every normalized-rate computation downstream, so weights
    // must be finite and strictly positive.
    if (end == item.c_str() || *end != '\0' || !std::isfinite(w) || w <= 0.0) {
      return std::nullopt;
    }
    weights.push_back(w);
  }
  if (weights.empty()) return std::nullopt;
  return weights;
}

std::optional<scenario::ScenarioSpec> spec_from_args(const ArgParser& parser,
                                                     std::ostream& err) {
  const std::string& mech_name = parser.get_string("mechanism");
  const auto mech = scenario::mechanism_from_name(mech_name);
  if (!mech.has_value()) {
    err << "unknown mechanism '" << mech_name << "'\n";
    return std::nullopt;
  }

  const std::string& scen = parser.get_string("scenario");
  auto maybe_spec = scenario::scenario_by_name(scen, *mech);
  if (!maybe_spec.has_value()) {
    err << "unknown scenario '" << scen << "'\n";
    return std::nullopt;
  }
  scenario::ScenarioSpec spec = std::move(*maybe_spec);

  const std::string& sel = parser.get_string("selector");
  if (sel == "stateless") {
    spec.corelite.selector = qos::SelectorKind::Stateless;
  } else if (sel == "cache") {
    spec.corelite.selector = qos::SelectorKind::MarkerCache;
  } else {
    err << "unknown selector '" << sel << "'\n";
    return std::nullopt;
  }

  const std::string& det = parser.get_string("detector");
  if (det == "epoch") {
    spec.corelite.detector = qos::DetectorKind::EpochAverage;
  } else if (det == "busyidle") {
    spec.corelite.detector = qos::DetectorKind::BusyIdleCycle;
  } else if (det == "ewma") {
    spec.corelite.detector = qos::DetectorKind::Ewma;
  } else {
    err << "unknown detector '" << det << "'\n";
    return std::nullopt;
  }

  const std::string& adapt = parser.get_string("adaptation");
  if (adapt == "limd") {
    spec.corelite.adapt.kind = qos::AdaptKind::Limd;
  } else if (adapt == "aimd") {
    spec.corelite.adapt.kind = qos::AdaptKind::Aimd;
  } else if (adapt == "mimd") {
    spec.corelite.adapt.kind = qos::AdaptKind::Mimd;
  } else {
    err << "unknown adaptation '" << adapt << "'\n";
    return std::nullopt;
  }
  spec.csfq.adapt.kind = spec.corelite.adapt.kind;

  const std::string& pacing = parser.get_string("pacing");
  if (pacing == "cbr") {
    spec.corelite.pacing = qos::PacingMode::Paced;
  } else if (pacing == "poisson") {
    spec.corelite.pacing = qos::PacingMode::Poisson;
  } else if (pacing == "onoff") {
    spec.corelite.pacing = qos::PacingMode::OnOff;
  } else {
    err << "unknown pacing '" << pacing << "'\n";
    return std::nullopt;
  }

  if (parser.was_set("weights")) {
    auto weights = parse_weight_list(parser.get_string("weights"));
    if (!weights.has_value()) {
      err << "malformed --weights list '" << parser.get_string("weights") << "'\n";
      return std::nullopt;
    }
    if (spec.generated.has_value()) {
      // Generated populations take the list (any length) as their
      // repeating weight cycle.
      spec.generated->flows.weight_cycle = std::move(*weights);
    } else {
      if (weights->size() != spec.num_flows) {
        err << "--weights needs exactly " << spec.num_flows << " entries, got "
            << weights->size() << "\n";
        return std::nullopt;
      }
      spec.weights = std::move(*weights);
    }
  }

  if (parser.get_double("duration") > 0.0) {
    spec.duration = sim::SimTime::seconds(parser.get_double("duration"));
  }
  spec.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
  spec.lp = static_cast<std::size_t>(std::max<std::int64_t>(1, parser.get_int("lp")));
  spec.lp_threads = static_cast<std::size_t>(std::max<std::int64_t>(0, parser.get_int("lp-threads")));
  spec.fluid.enabled = parser.get_flag("fluid");
  if (parser.was_set("fluid-band")) {
    const double band = parser.get_double("fluid-band");
    if (!std::isfinite(band) || band <= 0.0 || band >= 1.0) {
      err << "--fluid-band must be in (0, 1), got " << parser.get_double("fluid-band") << "\n";
      return std::nullopt;
    }
    spec.fluid.band = band;
  }
  if (parser.was_set("fluid-dwell")) {
    if (parser.get_int("fluid-dwell") < 1) {
      err << "--fluid-dwell must be >= 1, got " << parser.get_int("fluid-dwell") << "\n";
      return std::nullopt;
    }
    spec.fluid.dwell_checks = static_cast<std::size_t>(parser.get_int("fluid-dwell"));
  }
  spec.corelite.core_epoch = sim::TimeDelta::millis(parser.get_double("epoch-ms"));
  spec.corelite.k1 = parser.get_double("k1");
  spec.corelite.q_thresh_pkts = parser.get_double("qthresh");
  spec.corelite.k_cubic = parser.get_double("kcubic");
  spec.topology.link_delay = sim::TimeDelta::millis(parser.get_double("link-delay-ms"));
  if (spec.generated.has_value() && parser.was_set("link-delay-ms")) {
    spec.generated->topology.cfg.link_delay =
        sim::TimeDelta::millis(parser.get_double("link-delay-ms"));
  }
  return spec;
}

}  // namespace corelite::cli

#include "scenario/topology_gen.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <utility>

#include "sim/random.h"

namespace corelite::scenario {

namespace {

// Same FNV-1a construction as the runner's result digest, so golden
// values are comparable across the codebase.
struct Fnv {
  std::uint64_t h = 1469598103934665603ULL;
  void mix(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  }
  void mix(double v) { mix(std::bit_cast<std::uint64_t>(v)); }
};

}  // namespace

std::uint64_t GeneratedTopology::digest() const {
  Fnv d;
  for (char c : name) d.mix(static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
  d.mix(static_cast<std::uint64_t>(routers));
  d.mix(static_cast<std::uint64_t>(links.size()));
  for (const GenLink& l : links) {
    d.mix(static_cast<std::uint64_t>(l.a));
    d.mix(static_cast<std::uint64_t>(l.b));
  }
  for (std::uint32_t r : sources) d.mix(static_cast<std::uint64_t>(r));
  for (std::uint32_t r : sinks) d.mix(static_cast<std::uint64_t>(r));
  for (std::size_t i : bottlenecks) d.mix(static_cast<std::uint64_t>(i));
  d.mix(cfg.core_rate.bits_per_second());
  d.mix(cfg.access_rate.bits_per_second());
  d.mix(cfg.link_delay.sec());
  d.mix(static_cast<std::uint64_t>(cfg.queue_capacity_packets));
  return d.h;
}

bool GeneratedTopology::connected() const {
  if (routers == 0) return false;
  std::vector<std::vector<std::uint32_t>> adj(routers);
  for (const GenLink& l : links) {
    if (l.a >= routers || l.b >= routers) return false;
    adj[l.a].push_back(l.b);
    adj[l.b].push_back(l.a);
  }
  std::vector<bool> seen(routers, false);
  std::vector<std::uint32_t> stack{0};
  seen[0] = true;
  std::size_t visited = 1;
  while (!stack.empty()) {
    const std::uint32_t n = stack.back();
    stack.pop_back();
    for (std::uint32_t m : adj[n]) {
      if (!seen[m]) {
        seen[m] = true;
        ++visited;
        stack.push_back(m);
      }
    }
  }
  return visited == routers;
}

GeneratedTopology make_parking_lot(std::size_t stages, TopologyGenConfig cfg) {
  assert(stages >= 1);
  GeneratedTopology t;
  t.name = "pl" + std::to_string(stages);
  t.cfg = cfg;
  t.routers = stages + 1;
  for (std::uint32_t i = 0; i < stages; ++i) {
    t.links.push_back({i, i + 1});
    t.bottlenecks.push_back(i);  // every chain link is a bottleneck
    t.sources.push_back(i);
    t.sinks.push_back(i + 1);
  }
  return t;
}

GeneratedTopology make_fat_tree(std::size_t k, TopologyGenConfig cfg) {
  assert(k >= 2 && k % 2 == 0);
  GeneratedTopology t;
  t.name = "ft" + std::to_string(k);
  t.cfg = cfg;
  const std::size_t half = k / 2;
  const std::size_t n_core = half * half;
  // Router layout: cores [0, n_core), then per pod p: aggs then edges.
  t.routers = n_core + k * k;  // k pods x (k/2 agg + k/2 edge)
  auto agg_of = [&](std::size_t pod, std::size_t j) {
    return static_cast<std::uint32_t>(n_core + pod * k + j);
  };
  auto edge_of = [&](std::size_t pod, std::size_t j) {
    return static_cast<std::uint32_t>(n_core + pod * k + half + j);
  };
  for (std::size_t pod = 0; pod < k; ++pod) {
    for (std::size_t j = 0; j < half; ++j) {
      // Aggregation j uplinks to cores [j*half, (j+1)*half) — the
      // bottleneck tier of the fabric.
      for (std::size_t c = 0; c < half; ++c) {
        t.bottlenecks.push_back(t.links.size());
        t.links.push_back({agg_of(pod, j), static_cast<std::uint32_t>(j * half + c)});
      }
      // Edge j connects to every aggregation router of its pod.
      for (std::size_t a = 0; a < half; ++a) {
        t.links.push_back({edge_of(pod, j), agg_of(pod, a)});
      }
      t.sources.push_back(edge_of(pod, j));
      t.sinks.push_back(edge_of(pod, j));
    }
  }
  return t;
}

GeneratedTopology make_isp(std::size_t routers, std::uint64_t seed, TopologyGenConfig cfg) {
  assert(routers >= 2);
  GeneratedTopology t;
  t.name = "isp" + std::to_string(routers);
  t.cfg = cfg;
  t.routers = routers;
  // Generation has its own stream, decoupled from the simulation's.
  sim::Rng rng{seed ^ 0xa5a5a5a55a5a5a5aULL};

  // Uniform random attachment tree: node i hangs off a uniformly chosen
  // earlier node — connected by construction.
  std::vector<std::size_t> degree(routers, 0);
  for (std::uint32_t i = 1; i < routers; ++i) {
    const auto parent = static_cast<std::uint32_t>(rng.uniform_int(0, i - 1));
    t.links.push_back({parent, i});
    ++degree[parent];
    ++degree[i];
  }
  const std::size_t tree_links = t.links.size();

  // Extra chords (~routers/3) make it a mesh rather than a tree.  Reject
  // self-loops and duplicates; bounded attempts keep generation total.
  const std::size_t extra = routers / 3;
  auto duplicate = [&t](std::uint32_t a, std::uint32_t b) {
    return std::any_of(t.links.begin(), t.links.end(), [&](const GenLink& l) {
      return (l.a == a && l.b == b) || (l.a == b && l.b == a);
    });
  };
  std::size_t added = 0;
  for (std::size_t attempt = 0; added < extra && attempt < extra * 16; ++attempt) {
    const auto a = static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(routers) - 1));
    const auto b = static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(routers) - 1));
    if (a == b || duplicate(a, b)) continue;
    t.links.push_back({a, b});
    ++degree[a];
    ++degree[b];
    ++added;
  }

  // Every router can source and sink traffic.
  for (std::uint32_t i = 0; i < routers; ++i) {
    t.sources.push_back(i);
    t.sinks.push_back(i);
  }

  // Bottlenecks: backbone tree links (both endpoints of degree >= 3);
  // small graphs fall back to the first tree links.
  for (std::size_t i = 0; i < tree_links; ++i) {
    if (degree[t.links[i].a] >= 3 && degree[t.links[i].b] >= 3) t.bottlenecks.push_back(i);
  }
  if (t.bottlenecks.empty()) {
    for (std::size_t i = 0; i < std::min<std::size_t>(3, tree_links); ++i) {
      t.bottlenecks.push_back(i);
    }
  }
  return t;
}

}  // namespace corelite::scenario

// The simulation topology of the paper (Figure 2).
//
// Four core routers C1-C2-C3-C4 in a chain; the three core links are
// the (potentially) congested links.  Every flow gets its own ingress
// edge router attached to its entry core router and its own egress node
// attached to its exit core router.  All links are 4 Mbps (500 pkt/s
// at 1 KB packets) with 40 ms propagation delay, giving the paper's
// round-trip times of 240/320/400 ms for flows crossing 1/2/3
// congested links.
//
// Flow-to-path assignment (paper §4.1, flow ids 1-based):
//   1-5   : C1 -> C2          (single congested link, RTT 240 ms)
//   6-8   : C1 -> C3          (two congested links,   RTT 320 ms)
//   9-10  : C1 -> C4          (three congested links, RTT 400 ms)
//   11-12 : C2 -> C3          (single)
//   13-15 : C2 -> C4          (two)
//   16-20 : C3 -> C4          (single)
// Ids beyond 20 cycle over the three single-link spans.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "net/choke_queue.h"
#include "net/fred_queue.h"
#include "net/network.h"
#include "net/sfq_queue.h"
#include "net/queue.h"
#include "net/types.h"
#include "net/wfq_queue.h"
#include "sim/units.h"

namespace corelite::scenario {

/// Queue discipline on the three congested core links.
enum class CoreQueueKind {
  DropTail,  ///< paper default
  Red,       ///< related-work baseline (Floyd & Jacobson)
  Fred,      ///< related-work baseline (Lin & Morris)
  Wfq,       ///< Intserv-style stateful reference (weighted fair queueing)
  Choke,     ///< CHOKe stateless AQM (Pan, Prabhakar & Psounis)
  Sfq,       ///< stochastic fair queueing: hashed round-robin bands
};

struct PaperTopologyConfig {
  sim::Rate link_rate = sim::Rate::mbps(4);
  sim::TimeDelta link_delay = sim::TimeDelta::millis(40);
  std::size_t queue_capacity_packets = 40;
  sim::DataSize packet_size = sim::DataSize::kilobytes(1);
  CoreQueueKind core_queue = CoreQueueKind::DropTail;
  net::RedQueue::Config red{};
  net::FredQueue::Config fred{};
  net::ChokeQueue::Config choke{};
  /// Stochastic-fair-queueing band count (per-band capacity is
  /// queue_capacity_packets / bands, floor 2).
  std::size_t sfq_bands = 16;
  /// Per-flow weights for CoreQueueKind::Wfq — the per-flow state a
  /// stateful core carries.
  net::WfqQueue::WeightFn wfq_weight_of{};
};

struct FlowEndpoints {
  net::NodeId ingress = net::kInvalidNode;
  net::NodeId egress = net::kInvalidNode;
  std::size_t entry_core = 0;
  std::size_t exit_core = 0;
};

class PaperTopology {
 public:
  static constexpr std::size_t kCoreCount = 4;
  static constexpr std::size_t kCongestedLinks = 3;  // C1C2, C2C3, C3C4

  /// Builds nodes and duplex links into `network` for flows 1..num_flows.
  /// Call network.build_routes() afterwards.
  ///
  /// `core_lp`, when non-null, pins core i to LP core_lp[i] (parallel
  /// engine); each flow's attach nodes follow its entry/exit core so
  /// only the three inter-core links can become cut links.  Null keeps
  /// everything on LP 0 (the legacy single-universe layout).
  PaperTopology(net::Network& network, std::size_t num_flows, PaperTopologyConfig cfg = {},
                const std::vector<std::uint32_t>* core_lp = nullptr);

  /// (entry core index, exit core index) for 1-based flow id.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> core_span(net::FlowId flow_1based);

  /// Indices (0..2) of congested core links the flow traverses.
  [[nodiscard]] static std::vector<std::size_t> congested_links(net::FlowId flow_1based);

  [[nodiscard]] net::NodeId core(std::size_t i) const { return cores_.at(i); }
  [[nodiscard]] const std::vector<net::NodeId>& cores() const { return cores_; }
  [[nodiscard]] const FlowEndpoints& endpoints(net::FlowId flow_1based) const {
    return endpoints_.at(flow_1based - 1);
  }
  [[nodiscard]] std::size_t num_flows() const { return endpoints_.size(); }

  /// Forward link of congested span i (core[i] -> core[i+1]).
  [[nodiscard]] net::Link* congested_link(net::Network& network, std::size_t i) const;

  /// Link capacity in packets per second (500 for the defaults).
  [[nodiscard]] double capacity_pps() const {
    return cfg_.link_rate.pps(cfg_.packet_size);
  }

  [[nodiscard]] const PaperTopologyConfig& config() const { return cfg_; }

 private:
  PaperTopologyConfig cfg_;
  std::vector<net::NodeId> cores_;
  std::vector<FlowEndpoints> endpoints_;
};

}  // namespace corelite::scenario

#include "scenario/paper_topology.h"

#include <cassert>
#include <string>

namespace corelite::scenario {

std::pair<std::size_t, std::size_t> PaperTopology::core_span(net::FlowId flow_1based) {
  assert(flow_1based >= 1);
  const auto f = flow_1based;
  if (f <= 5) return {0, 1};
  if (f <= 8) return {0, 2};
  if (f <= 10) return {0, 3};
  if (f <= 12) return {1, 2};
  if (f <= 15) return {1, 3};
  if (f <= 20) return {2, 3};
  // Beyond the paper's 20 flows: cycle across the single-link spans.
  const std::size_t span = (f - 21) % kCongestedLinks;
  return {span, span + 1};
}

std::vector<std::size_t> PaperTopology::congested_links(net::FlowId flow_1based) {
  const auto [entry, exit] = core_span(flow_1based);
  std::vector<std::size_t> out;
  for (std::size_t i = entry; i < exit; ++i) out.push_back(i);
  return out;
}

PaperTopology::PaperTopology(net::Network& network, std::size_t num_flows,
                             PaperTopologyConfig cfg,
                             const std::vector<std::uint32_t>* core_lp)
    : cfg_{cfg} {
  assert(core_lp == nullptr || core_lp->size() >= kCoreCount);
  const auto lp_of_core = [core_lp](std::size_t i) {
    return core_lp != nullptr ? (*core_lp)[i] : 0u;
  };
  for (std::size_t i = 0; i < kCoreCount; ++i) {
    cores_.push_back(network.add_node("C" + std::to_string(i + 1), lp_of_core(i)));
  }
  for (std::size_t i = 0; i + 1 < kCoreCount; ++i) {
    // The forward (congested) direction runs the configured discipline;
    // the reverse direction carries only control traffic and stays
    // drop-tail.
    switch (cfg_.core_queue) {
      case CoreQueueKind::Red: {
        auto red_cfg = cfg_.red;
        red_cfg.capacity_data_packets = cfg_.queue_capacity_packets;
        network.connect_with_queue(
            cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
            std::make_unique<net::RedQueue>(red_cfg, network.local_rng(cores_[i])));
        network.connect(cores_[i + 1], cores_[i], cfg_.link_rate, cfg_.link_delay,
                        cfg_.queue_capacity_packets);
        break;
      }
      case CoreQueueKind::Fred: {
        auto fred_cfg = cfg_.fred;
        fred_cfg.capacity_data_packets = cfg_.queue_capacity_packets;
        network.connect_with_queue(
            cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
            std::make_unique<net::FredQueue>(fred_cfg, network.local_rng(cores_[i])));
        network.connect(cores_[i + 1], cores_[i], cfg_.link_rate, cfg_.link_delay,
                        cfg_.queue_capacity_packets);
        break;
      }
      case CoreQueueKind::Choke: {
        auto choke_cfg = cfg_.choke;
        choke_cfg.capacity_data_packets = cfg_.queue_capacity_packets;
        network.connect_with_queue(
            cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
            std::make_unique<net::ChokeQueue>(choke_cfg, network.local_rng(cores_[i])));
        network.connect(cores_[i + 1], cores_[i], cfg_.link_rate, cfg_.link_delay,
                        cfg_.queue_capacity_packets);
        break;
      }
      case CoreQueueKind::Sfq: {
        const std::size_t per_band =
            std::max<std::size_t>(2, cfg_.queue_capacity_packets / cfg_.sfq_bands);
        network.connect_with_queue(
            cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
            std::make_unique<net::SfqQueue>(cfg_.sfq_bands, per_band));
        network.connect(cores_[i + 1], cores_[i], cfg_.link_rate, cfg_.link_delay,
                        cfg_.queue_capacity_packets);
        break;
      }
      case CoreQueueKind::Wfq: {
        network.connect_with_queue(
            cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
            std::make_unique<net::WfqQueue>(cfg_.queue_capacity_packets, cfg_.wfq_weight_of));
        network.connect(cores_[i + 1], cores_[i], cfg_.link_rate, cfg_.link_delay,
                        cfg_.queue_capacity_packets);
        break;
      }
      case CoreQueueKind::DropTail:
        network.connect_duplex(cores_[i], cores_[i + 1], cfg_.link_rate, cfg_.link_delay,
                               cfg_.queue_capacity_packets);
        break;
    }
  }
  endpoints_.reserve(num_flows);
  for (std::size_t f = 1; f <= num_flows; ++f) {
    const auto [entry, exit] = core_span(static_cast<net::FlowId>(f));
    FlowEndpoints ep;
    ep.entry_core = entry;
    ep.exit_core = exit;
    ep.ingress = network.add_node("E" + std::to_string(f) + "in", lp_of_core(entry));
    ep.egress = network.add_node("E" + std::to_string(f) + "out", lp_of_core(exit));
    network.connect_duplex(ep.ingress, cores_[entry], cfg_.link_rate, cfg_.link_delay,
                           cfg_.queue_capacity_packets);
    network.connect_duplex(cores_[exit], ep.egress, cfg_.link_rate, cfg_.link_delay,
                           cfg_.queue_capacity_packets);
    endpoints_.push_back(ep);
  }
}

net::Link* PaperTopology::congested_link(net::Network& network, std::size_t i) const {
  assert(i + 1 < kCoreCount);
  return network.find_link(cores_[i], cores_[i + 1]);
}

}  // namespace corelite::scenario

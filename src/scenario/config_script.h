// Text-based scenario scripts — the ns-2 OTcl-script substitute.
//
// The paper's experiments were driven by ns simulation scripts; this
// module provides the equivalent for the reproduction: a small
// line-oriented language describing a topology, the QoS mechanism and
// the flow population, runnable from `corelite_sim --config FILE`
// without recompiling.
//
// Grammar (one command per line, '#' starts a comment):
//
//   mechanism corelite|csfq         # default corelite
//   duration SECONDS                # default 80
//   seed N                          # default 1
//   class NAME WEIGHT [MINRATE]     # administrative rate class (§2.1)
//   node NAME                       # optional; nodes auto-create on use
//   link A B MBPS DELAY_MS QUEUE [simplex]    # default duplex
//   core NAME                       # run core-router machinery on NAME
//   edge NAME                       # run edge-router machinery on NAME
//   flow ID INGRESS EGRESS weight W [min PPS] [window START STOP]...
//   flow ID INGRESS EGRESS class NAME [window START STOP]...
//
// Flow ids are positive integers; INGRESS must be declared `edge`.
// `window` intervals are in seconds ("inf" allowed for STOP); a flow
// without windows runs for the whole simulation.
//
// See examples/scripts/ for complete scenario files.
#pragma once

#include <cstdint>
#include <istream>
#include <map>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "csfq/config.h"
#include "net/flow.h"
#include "qos/config.h"
#include "qos/rate_classes.h"
#include "stats/flow_tracker.h"

namespace corelite::scenario {

struct ScriptLink {
  std::string a;
  std::string b;
  double mbps = 4.0;
  double delay_ms = 40.0;
  std::size_t queue = 40;
  bool duplex = true;
};

struct ScriptFlow {
  net::FlowId id = net::kInvalidFlow;
  std::string ingress;
  std::string egress;
  double weight = 1.0;
  double min_rate_pps = 0.0;
  std::vector<net::ActiveInterval> windows;  // empty = always on
};

struct ScriptScenario {
  std::string mechanism = "corelite";
  double duration_sec = 80.0;
  std::uint64_t seed = 1;
  qos::RateClassRegistry classes;
  std::vector<std::string> nodes;   // declared or referenced, in order
  std::vector<ScriptLink> links;
  std::vector<std::string> cores;
  std::vector<std::string> edges;
  std::vector<ScriptFlow> flows;
  qos::CoreliteConfig corelite;
  csfq::CsfqConfig csfq;
};

/// Parse a scenario script.  On error, writes "line N: message" to
/// `err` and returns nullopt.
[[nodiscard]] std::optional<ScriptScenario> parse_scenario_script(std::istream& in,
                                                                  std::ostream& err);

struct ScriptRunResult {
  stats::FlowTracker tracker;
  std::uint64_t events_processed = 0;
  std::uint64_t data_drops = 0;
  std::uint64_t unrouteable = 0;
};

/// Build the network described by the script, run it, collect series.
/// Validation failures (unknown nodes, flows from non-edge nodes, ...)
/// are reported via `err` and nullopt.
[[nodiscard]] std::optional<ScriptRunResult> run_script_scenario(const ScriptScenario& s,
                                                                 std::ostream& err);

}  // namespace corelite::scenario

#include "scenario/flow_gen.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "sim/random.h"

namespace corelite::scenario {

namespace {

/// Bounded-Pareto(alpha, L, H) by inverse CDF: heavy-tailed on-times
/// without the unbounded draws plain Pareto would feed the simulator.
double bounded_pareto(sim::Rng& rng, double alpha, double lo, double hi) {
  const double u = rng.uniform01();
  const double ratio = std::pow(lo / hi, alpha);
  return lo / std::pow(1.0 - u * (1.0 - ratio), 1.0 / alpha);
}

}  // namespace

std::vector<GenFlow> generate_flows(const GeneratedTopology& topo, const FlowGenConfig& cfg,
                                    double duration_sec, std::uint64_t seed) {
  assert(!topo.sources.empty() && !topo.sinks.empty());
  assert(!cfg.weight_cycle.empty());
  assert(duration_sec > 0.0);

  // Distinct stream from the simulation's (which consumes the raw seed):
  // generating the population must not perturb the run's own draws.
  sim::Rng rng{seed ^ 0xc01e57a7e5eedULL};

  // Auto arrival pacing: spread arrivals over the first half of the run
  // so every population size keeps most flows live most of the time.
  const double mean_gap = cfg.mean_arrival_gap_sec > 0.0
                              ? cfg.mean_arrival_gap_sec
                              : duration_sec * 0.5 / static_cast<double>(cfg.num_flows);
  // Arrivals from an explicit (oversized) gap wrap back into the run.
  const double arrival_span = std::max(1e-9, duration_sec * cfg.arrival_span_frac);

  std::vector<GenFlow> flows;
  flows.reserve(cfg.num_flows);
  double arrivals = 0.0;
  for (std::size_t i = 0; i < cfg.num_flows; ++i) {
    GenFlow f;
    f.id = static_cast<net::FlowId>(i + 1);
    f.weight = cfg.weight_cycle[i % cfg.weight_cycle.size()];

    arrivals += rng.exponential(mean_gap);
    const double start0 = arrivals < arrival_span ? arrivals : std::fmod(arrivals, arrival_span);

    const auto n_src = static_cast<std::int64_t>(topo.sources.size());
    const auto n_snk = static_cast<std::int64_t>(topo.sinks.size());
    f.src_router = topo.sources[static_cast<std::size_t>(rng.uniform_int(0, n_src - 1))];
    f.dst_router = topo.sinks[static_cast<std::size_t>(rng.uniform_int(0, n_snk - 1))];
    for (int attempt = 0; f.dst_router == f.src_router && attempt < 64; ++attempt) {
      f.dst_router = topo.sinks[static_cast<std::size_t>(rng.uniform_int(0, n_snk - 1))];
    }
    assert(f.dst_router != f.src_router && "topology offers no distinct sink");

    if (!cfg.churn) {
      f.windows.push_back({sim::SimTime::seconds(start0), sim::SimTime::infinite()});
    } else {
      double t = start0;
      while (f.windows.size() < cfg.max_windows && t < duration_sec) {
        const double on = bounded_pareto(rng, cfg.pareto_alpha, cfg.on_min_sec, cfg.on_max_sec);
        const bool last = f.windows.size() + 1 == cfg.max_windows || t + on >= duration_sec;
        f.windows.push_back({sim::SimTime::seconds(t),
                             last ? sim::SimTime::infinite() : sim::SimTime::seconds(t + on)});
        if (last) break;
        t += on + rng.exponential(cfg.mean_off_sec);
      }
      if (f.windows.empty()) {
        f.windows.push_back({sim::SimTime::seconds(start0), sim::SimTime::infinite()});
      }
    }
    assert(net::valid_activity_windows(f.windows));
    flows.push_back(std::move(f));
  }
  return flows;
}

std::uint64_t flows_digest(const std::vector<GenFlow>& flows) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  for (const GenFlow& f : flows) {
    mix(static_cast<std::uint64_t>(f.id));
    mix(static_cast<std::uint64_t>(f.src_router));
    mix(static_cast<std::uint64_t>(f.dst_router));
    mix(std::bit_cast<std::uint64_t>(f.weight));
    for (const auto& w : f.windows) {
      mix(std::bit_cast<std::uint64_t>(w.start.sec()));
      mix(std::bit_cast<std::uint64_t>(w.stop.sec()));
    }
  }
  return h;
}

}  // namespace corelite::scenario

// The generated-workload runner: turns a GeneratedTopology + flow
// population into a live network and runs it under any mechanism.
//
// Structural differences from the paper runner (scenario.cpp):
//   - routers come from the generator, not the fixed C1..C4 chain, and
//     the configured queue discipline runs on BOTH directions of every
//     router-router link (generated graphs have no dedicated forward
//     direction);
//   - sources and sinks attach per ROUTER, not per flow: one source
//     attach node (with one multi-flow edge router) and one sink attach
//     node per router the topology designates, so node count stays
//     O(routers) and a 100k-flow population shares O(routers) access
//     links;
//   - the telemetry surface (drop times, queue series, congested-link
//     drops, the instrument hook) covers the topology's designated
//     bottleneck links instead of the paper's three core links.
//
// Everything downstream — FlowTracker, ScenarioResult, the sweep's
// result digest — is shared with the paper runner, so generated
// scenarios compose with every existing harness feature.
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "csfq/core.h"
#include "csfq/edge_router.h"
#include "net/network.h"
#include "qos/core_router.h"
#include "qos/ecn.h"
#include "qos/edge_router.h"
#include "scenario/scenario.h"
#include "sim/fluid/controller.h"
#include "sim/fluid/warp.h"
#include "sim/hotpath.h"
#include "sim/parallel/lp_partition.h"
#include "sim/parallel/lp_runtime.h"
#include "sim/simulator.h"
#include "telemetry/metrics.h"

namespace corelite::scenario {

namespace {

// Records the virtual time of every data drop on a link (same shape as
// the paper runner's recorder; local because that one is file-private).
struct GenDropRecorder final : net::LinkObserver {
  net::Link* link = nullptr;
  std::vector<double>* sink = nullptr;
  ~GenDropRecorder() override {
    if (link != nullptr) link->remove_observer(this);
  }
  void on_drop(const net::Packet& p, sim::SimTime now) override {
    if (p.is_data()) sink->push_back(now.sec());
  }
  void on_link_destroyed(net::Link& /*l*/) override { link = nullptr; }
};

/// One unidirectional router-router link running the configured core
/// queue discipline — the generated analogue of PaperTopology's switch.
net::Link& connect_core_directed(net::Network& network, net::NodeId from, net::NodeId to,
                                 const PaperTopologyConfig& q) {
  // AQM queues draw from the link's OWNING simulator's RNG (the from
  // node's LP): serially that is the one global stream, exactly as
  // before; in LP mode it keeps every draw single-threaded.
  switch (q.core_queue) {
    case CoreQueueKind::Red: {
      auto red_cfg = q.red;
      red_cfg.capacity_data_packets = q.queue_capacity_packets;
      return network.connect_with_queue(
          from, to, q.link_rate, q.link_delay,
          std::make_unique<net::RedQueue>(red_cfg, network.local_rng(from)));
    }
    case CoreQueueKind::Fred: {
      auto fred_cfg = q.fred;
      fred_cfg.capacity_data_packets = q.queue_capacity_packets;
      return network.connect_with_queue(
          from, to, q.link_rate, q.link_delay,
          std::make_unique<net::FredQueue>(fred_cfg, network.local_rng(from)));
    }
    case CoreQueueKind::Choke: {
      auto choke_cfg = q.choke;
      choke_cfg.capacity_data_packets = q.queue_capacity_packets;
      return network.connect_with_queue(
          from, to, q.link_rate, q.link_delay,
          std::make_unique<net::ChokeQueue>(choke_cfg, network.local_rng(from)));
    }
    case CoreQueueKind::Sfq: {
      const std::size_t per_band =
          std::max<std::size_t>(2, q.queue_capacity_packets / q.sfq_bands);
      return network.connect_with_queue(from, to, q.link_rate, q.link_delay,
                                        std::make_unique<net::SfqQueue>(q.sfq_bands, per_band));
    }
    case CoreQueueKind::Wfq:
      return network.connect_with_queue(
          from, to, q.link_rate, q.link_delay,
          std::make_unique<net::WfqQueue>(q.queue_capacity_packets, q.wfq_weight_of));
    case CoreQueueKind::DropTail:
      break;
  }
  return network.connect(from, to, q.link_rate, q.link_delay, q.queue_capacity_packets);
}

}  // namespace

ScenarioResult run_generated_scenario(const ScenarioSpec& spec) {
  assert(spec.generated.has_value() && "run_generated_scenario needs spec.generated");
  const GeneratedWorkload& wl = *spec.generated;
  const GeneratedTopology& topo = wl.topology;
  assert(topo.routers > 0 && topo.connected() && "generated topology must be connected");
  assert(spec.num_flows == wl.flows.num_flows &&
         "spec.num_flows must mirror generated->flows.num_flows");

  // The population is a pure function of (topology, config, duration,
  // seed): sweep workers regenerate it independently and still land on
  // bit-identical run digests.
  const std::vector<GenFlow> flows =
      generate_flows(topo, wl.flows, spec.duration.sec(), spec.seed);

  // LP partition over the router graph: cut preferentially at the
  // designated bottleneck links, lookahead = min propagation delay over
  // the cut set.  Attach nodes are co-located with their router, so only
  // router-router links can cross LPs.
  sim::par::LpPlan plan;
  if (spec.lp > 1) {
    std::vector<bool> is_bottleneck(topo.links.size(), false);
    for (std::size_t idx : topo.bottlenecks) {
      if (idx < is_bottleneck.size()) is_bottleneck[idx] = true;
    }
    sim::par::LpGraph g;
    g.nodes = topo.routers;
    g.edges.reserve(topo.links.size());
    for (std::size_t i = 0; i < topo.links.size(); ++i) {
      const GenLink& l = topo.links[i];
      g.edges.push_back({l.a, l.b, topo.cfg.link_delay.sec(), is_bottleneck[i]});
    }
    plan = sim::par::partition_lp_graph(g, spec.lp);
    if (plan.zero_lookahead_fallback) {
      std::fprintf(stderr,
                   "corelite: --lp %zu requires positive link delay for lookahead; "
                   "falling back to the serial engine\n",
                   spec.lp);
    } else if (plan.lp_count < plan.requested) {
      std::fprintf(stderr,
                   "corelite: --lp %zu clamped to %zu LPs (topology has %zu routers)\n",
                   spec.lp, plan.lp_count, topo.routers);
    }
  }
  const bool lp_mode = plan.lp_count > 1;

  // Fluid fast-forward is serial-only (see scenario.cpp): lp > 1 falls
  // back to pure packet mode with a warning.
  sim::fluid::FluidConfig fluid_cfg = spec.fluid;
  if (fluid_cfg.enabled && lp_mode) {
    std::fprintf(stderr,
                 "corelite: fluid fast-forward is serial-only; running --lp %zu in pure "
                 "packet mode\n",
                 spec.lp);
    fluid_cfg.enabled = false;
  }
  const bool fluid_on = fluid_cfg.enabled;

  // The fairness audit follows the same serial-only rule (its gauges
  // read live link state, its sampler adds engine events).
  telemetry::FairnessAuditConfig audit_cfg = spec.audit;
  if (audit_cfg.enabled && lp_mode) {
    std::fprintf(stderr,
                 "corelite: the fairness audit is not supported with --lp > 1; "
                 "skipping the auditor for this run\n");
    audit_cfg.enabled = false;
  }
  const bool audit_on = audit_cfg.enabled;

  sim::par::LpRuntime lp_rt{plan.lp_count, spec.seed, plan.lookahead, spec.lp_threads};
  if (spec.lp_probe != nullptr) lp_rt.set_probe(spec.lp_probe);
  sim::Simulator& simulator = lp_rt.lp_sim(0);
  std::unique_ptr<sim::fluid::TimeWarp> warp;
  if (fluid_on) warp = std::make_unique<sim::fluid::TimeWarp>(simulator);
  net::Network network{lp_rt};

  // Queue parameters: the generator's link knobs layered over the
  // spec's discipline configs (RED/FRED/CHOKe thresholds etc.).
  PaperTopologyConfig q = spec.topology;
  q.link_rate = topo.cfg.core_rate;
  q.link_delay = topo.cfg.link_delay;
  q.queue_capacity_packets = topo.cfg.queue_capacity_packets;
  q.packet_size = topo.cfg.packet_size;
  if (spec.mechanism == Mechanism::Red) q.core_queue = CoreQueueKind::Red;
  if (spec.mechanism == Mechanism::Fred) q.core_queue = CoreQueueKind::Fred;
  if (spec.mechanism == Mechanism::Choke) q.core_queue = CoreQueueKind::Choke;
  if (spec.mechanism == Mechanism::Sfq) q.core_queue = CoreQueueKind::Sfq;
  if (spec.mechanism == Mechanism::Wfq) {
    q.core_queue = CoreQueueKind::Wfq;
    // The stateful reference: cores know every generated flow's weight.
    std::vector<double> w(wl.flows.num_flows + 1, 1.0);
    for (const GenFlow& f : flows) w[f.id] = f.weight;
    q.wfq_weight_of = [w = std::move(w)](net::FlowId f) {
      return f < w.size() ? w[f] : 1.0;
    };
  }

  // Routers, then the discipline-bearing core links (both directions).
  std::vector<net::NodeId> routers;
  routers.reserve(topo.routers);
  for (std::size_t i = 0; i < topo.routers; ++i) {
    routers.push_back(network.add_node("R" + std::to_string(i),
                                       lp_mode ? plan.lp_of_node[i] : 0u));
  }
  std::vector<net::Link*> forward_of_link(topo.links.size(), nullptr);
  for (std::size_t i = 0; i < topo.links.size(); ++i) {
    const GenLink& l = topo.links[i];
    forward_of_link[i] = &connect_core_directed(network, routers[l.a], routers[l.b], q);
    connect_core_directed(network, routers[l.b], routers[l.a], q);
  }
  std::vector<net::Link*> bottleneck_links;
  bottleneck_links.reserve(topo.bottlenecks.size());
  for (std::size_t idx : topo.bottlenecks) bottleneck_links.push_back(forward_of_link.at(idx));

  // Attach nodes: one source node per source router (hosting that
  // router's multi-flow edge), one sink node per sink router.  Access
  // links are fat drop-tail pipes — the core links are the bottlenecks.
  std::vector<net::NodeId> src_node(topo.routers, net::kInvalidNode);
  std::vector<net::NodeId> dst_node(topo.routers, net::kInvalidNode);
  for (std::uint32_t r : topo.sources) {
    src_node[r] = network.add_node("S" + std::to_string(r), network.lp_of(routers[r]));
    network.connect_duplex(src_node[r], routers[r], topo.cfg.access_rate, topo.cfg.link_delay,
                           topo.cfg.queue_capacity_packets);
  }
  for (std::uint32_t r : topo.sinks) {
    dst_node[r] = network.add_node("D" + std::to_string(r), network.lp_of(routers[r]));
    network.connect_duplex(routers[r], dst_node[r], topo.cfg.access_rate, topo.cfg.link_delay,
                           topo.cfg.queue_capacity_packets);
  }
  network.build_routes();

  ScenarioResult result;
  stats::FlowTracker& tracker = result.tracker;
  tracker.set_series_enabled(wl.flows.record_series);

  // Egress sinks: count deliveries with one-way delay (EcnBit overrides
  // these below with a sink that also echoes marked packets).  Each sink
  // reads its own node's clock — the sink LP's simulator in LP mode, the
  // one global simulator serially.
  for (std::uint32_t r : topo.sinks) {
    network.node(dst_node[r]).set_local_sink(
        [&tracker, &snk_sim = network.local_sim(dst_node[r])](net::Packet&& p) {
          if (p.is_data()) tracker.on_delivered(p.flow, snk_sim.now() - p.created);
        });
  }

  if (spec.control_loss_rate > 0.0) {
    for (const auto& link : network.links()) {
      link->set_control_loss_rate(spec.control_loss_rate);
    }
  }

  // Drop timing on the designated bottleneck links.  In LP mode each
  // recorder gets a private sink (its link's LP is the only writer);
  // merged and time-sorted after the run.
  std::vector<std::unique_ptr<GenDropRecorder>> drop_recorders;
  std::deque<std::vector<double>> lp_drop_sinks;
  for (net::Link* l : bottleneck_links) {
    if (l == nullptr) continue;
    auto rec = std::make_unique<GenDropRecorder>();
    rec->link = l;
    if (lp_mode) {
      lp_drop_sinks.emplace_back();
      rec->sink = &lp_drop_sinks.back();
    } else {
      rec->sink = &result.drop_times;
    }
    l->add_observer(rec.get(), net::Link::kObserveDrop);
    drop_recorders.push_back(std::move(rec));
  }

  // Mechanism wiring.  Core machinery goes on EVERY router; one edge
  // router per source attach node carries all flows entering there.
  // Iteration order (sources in topology order, then flows in id order)
  // is deterministic, so RNG draw order — and hence the digest — is too.
  std::vector<std::unique_ptr<qos::CoreliteEdgeRouter>> cl_edges;
  std::vector<std::unique_ptr<qos::CoreliteCoreRouter>> cl_cores;
  std::vector<std::unique_ptr<csfq::CsfqEdgeRouter>> csfq_edges;
  std::vector<std::unique_ptr<csfq::CsfqCoreRouter>> csfq_cores;
  std::vector<std::unique_ptr<csfq::LossNotifyingCoreRouter>> droptail_cores;
  std::vector<std::unique_ptr<qos::EcnCoreRouter>> ecn_cores;
  std::vector<std::unique_ptr<qos::EcnEgressAgent>> ecn_agents;
  // edge_of[r]: index into the mechanism's edge vector for source router r.
  std::vector<std::size_t> edge_of(topo.routers, static_cast<std::size_t>(-1));

  auto flow_spec_of = [&](const GenFlow& f) {
    net::FlowSpec fs;
    fs.id = f.id;
    fs.ingress = src_node[f.src_router];
    fs.egress = dst_node[f.dst_router];
    fs.weight = f.weight;
    fs.active = f.windows;
    if (f.id >= 1 && f.id - 1 < spec.flood_pps.size()) fs.flood_pps = spec.flood_pps[f.id - 1];
    return fs;
  };

  const bool corelite_edges = spec.mechanism == Mechanism::Corelite ||
                              spec.mechanism == Mechanism::EcnBit;
  switch (spec.mechanism) {
    case Mechanism::Corelite:
      for (net::NodeId r : routers) {
        cl_cores.push_back(std::make_unique<qos::CoreliteCoreRouter>(network, r, spec.corelite));
      }
      break;
    case Mechanism::EcnBit:
      for (net::NodeId r : routers) {
        ecn_cores.push_back(std::make_unique<qos::EcnCoreRouter>(network, r, spec.corelite));
      }
      break;
    case Mechanism::Csfq:
      for (net::NodeId r : routers) {
        csfq_cores.push_back(std::make_unique<csfq::CsfqCoreRouter>(network, r, spec.csfq));
      }
      break;
    case Mechanism::DropTail:
    case Mechanism::Red:
    case Mechanism::Fred:
    case Mechanism::Choke:
    case Mechanism::Sfq:
    case Mechanism::Wfq:
      for (net::NodeId r : routers) {
        droptail_cores.push_back(std::make_unique<csfq::LossNotifyingCoreRouter>(network, r));
      }
      break;
  }
  for (std::uint32_t r : topo.sources) {
    if (corelite_edges) {
      edge_of[r] = cl_edges.size();
      cl_edges.push_back(std::make_unique<qos::CoreliteEdgeRouter>(network, src_node[r],
                                                                   spec.corelite, &tracker));
      if (warp) cl_edges.back()->set_fluid_warp(warp.get());
    } else {
      edge_of[r] = csfq_edges.size();
      csfq_edges.push_back(
          std::make_unique<csfq::CsfqEdgeRouter>(network, src_node[r], spec.csfq, &tracker));
      if (warp) csfq_edges.back()->set_fluid_warp(warp.get());
    }
  }
  for (const GenFlow& f : flows) {
    if (corelite_edges) {
      cl_edges[edge_of[f.src_router]]->add_flow(flow_spec_of(f));
    } else {
      csfq_edges[edge_of[f.src_router]]->add_flow(flow_spec_of(f));
    }
  }
  if (spec.mechanism == Mechanism::EcnBit) {
    // Egress echoes marked packets back as unweighted feedback.
    for (std::uint32_t r : topo.sinks) {
      auto agent = std::make_unique<qos::EcnEgressAgent>(network, dst_node[r]);
      qos::EcnEgressAgent* agent_ptr = agent.get();
      ecn_agents.push_back(std::move(agent));
      network.node(dst_node[r]).set_local_sink(
          [&tracker, &snk_sim = network.local_sim(dst_node[r]), agent_ptr](net::Packet&& p) {
            if (p.is_data()) {
              tracker.on_delivered(p.flow, snk_sim.now() - p.created);
              agent_ptr->on_data(p);
            }
          });
    }
  }

  // Fluid fast-forward controller.  Unlike the paper runner (whose three
  // congested links are fixed), each generated flow's constraint set is
  // its routed path: walk the FIB path once per flow and dense-index
  // every link encountered, with capacities in pkt/s of the generated
  // packet size.  Access links participate too — they are fat by
  // construction, so they simply never bind in the water-filling.
  std::unique_ptr<sim::fluid::FluidController> fluid_ctl;
  // Per-flow constraint sets, shared by the fluid controller and the
  // fairness auditor: walk the FIB path once per flow and dense-index
  // every link encountered, with capacities in pkt/s of the generated
  // packet size.  Access links participate too — they are fat by
  // construction, so they simply never bind in the water-filling.
  std::vector<double> path_caps;
  std::vector<std::vector<std::uint32_t>> flow_links(flows.size());
  if (fluid_on || audit_on) {
    std::unordered_map<const net::Link*, std::uint32_t> link_index;
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      const GenFlow& f = flows[fi];
      const std::vector<net::NodeId> hops =
          network.path(src_node[f.src_router], dst_node[f.dst_router]);
      for (std::size_t h = 0; h + 1 < hops.size(); ++h) {
        const net::Link* l = network.find_link(hops[h], hops[h + 1]);
        if (l == nullptr) continue;
        auto [it, inserted] = link_index.emplace(l, static_cast<std::uint32_t>(path_caps.size()));
        if (inserted) path_caps.push_back(l->rate().pps(topo.cfg.packet_size));
        flow_links[fi].push_back(it->second);
      }
    }
  }
  if (fluid_on) {
    fluid_cfg.synth_sample_period = spec.cumulative_sample_period;
    fluid_ctl = std::make_unique<sim::fluid::FluidController>(simulator, *warp, tracker,
                                                              fluid_cfg, spec.duration);
    fluid_ctl->set_link_capacities(path_caps);
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      fluid_ctl->add_flow(flows[fi].id, flows[fi].weight, flow_links[fi]);
    }
    if (spec.fluid_probe != nullptr) fluid_ctl->set_probe(spec.fluid_probe);
    fluid_ctl->start();
  }

  // Queue-length sampling on the bottleneck links.  Serially one timer
  // samples them all; in LP mode each link is sampled by a timer on its
  // from-router's LP (the link's single-threaded owner).
  result.queue_series.resize(bottleneck_links.size());
  std::vector<sim::PeriodicHandle> samplers;
  if (!lp_mode) {
    samplers.push_back(simulator.every(sim::TimeDelta::millis(100), [&] {
      for (std::size_t i = 0; i < bottleneck_links.size(); ++i) {
        if (bottleneck_links[i] != nullptr) {
          result.queue_series[i].add(
              simulator.exp_now().sec(),
              static_cast<double>(bottleneck_links[i]->queued_data_packets()));
        }
      }
    }));
  } else {
    for (std::size_t lp = 0; lp < plan.lp_count; ++lp) {
      std::vector<std::size_t> owned;
      for (std::size_t i = 0; i < topo.bottlenecks.size(); ++i) {
        if (bottleneck_links[i] == nullptr) continue;
        const std::uint32_t from_router = topo.links[topo.bottlenecks[i]].a;
        if (plan.lp_of_node[from_router] == lp) owned.push_back(i);
      }
      if (owned.empty()) continue;
      sim::Simulator& lsim = lp_rt.lp_sim(lp);
      samplers.push_back(lsim.every(
          sim::TimeDelta::millis(100), [&result, &bottleneck_links, &lsim, owned] {
            for (std::size_t i : owned) {
              result.queue_series[i].add(
                  lsim.now().sec(),
                  static_cast<double>(bottleneck_links[i]->queued_data_packets()));
            }
          }));
    }
  }

  // Cumulative-service sampling, sharded by egress (sink-router) LP in
  // LP mode so each flow's series keeps a single writer.
  tracker.sample_cumulative(simulator.exp_now());
  if (!lp_mode) {
    samplers.push_back(simulator.every(spec.cumulative_sample_period, [&tracker, &simulator] {
      tracker.sample_cumulative(simulator.exp_now());
    }));
  } else {
    for (std::size_t lp = 0; lp < plan.lp_count; ++lp) {
      std::vector<net::FlowId> owned;
      for (const GenFlow& f : flows) {
        if (plan.lp_of_node[f.dst_router] == lp) owned.push_back(f.id);
      }
      if (owned.empty()) continue;
      std::sort(owned.begin(), owned.end());
      sim::Simulator& lsim = lp_rt.lp_sim(lp);
      samplers.push_back(lsim.every(
          spec.cumulative_sample_period, [&tracker, &lsim, owned = std::move(owned)] {
            tracker.sample_cumulative(lsim.now(), owned);
          }));
    }
  }

  // Fairness auditor (opt-in, serial-only — audit_on already folds in
  // the lp_mode fallback).  The oracle runs over the same per-path
  // constraint sets the fluid controller uses; gauges watch the
  // designated bottleneck links.
  std::unique_ptr<telemetry::FairnessAuditor> auditor;
  if (audit_on) {
    std::vector<telemetry::FairnessAuditor::FlowInfo> audit_flows;
    audit_flows.reserve(flows.size());
    for (std::size_t fi = 0; fi < flows.size(); ++fi) {
      audit_flows.push_back({flows[fi].id, flows[fi].weight, flow_links[fi]});
    }
    // Activity oracle straight off the generated windows (`flows`
    // outlives the run; ids are 1-based and unique by construction).
    std::vector<const std::vector<net::ActiveInterval>*> act_of(wl.flows.num_flows + 1, nullptr);
    for (const GenFlow& f : flows) {
      if (f.id < act_of.size()) act_of[f.id] = &f.windows;
    }
    auto active_fn = [act_of = std::move(act_of)](net::FlowId id, double t_sec) {
      if (id >= act_of.size() || act_of[id] == nullptr || act_of[id]->empty()) return true;
      for (const auto& iv : *act_of[id]) {
        if (t_sec >= iv.start.sec() && t_sec < iv.stop.sec()) return true;
      }
      return false;
    };
    auditor = std::make_unique<telemetry::FairnessAuditor>(
        audit_cfg, tracker, path_caps, std::move(audit_flows), std::move(active_fn));
    for (std::size_t i = 0; i < bottleneck_links.size(); ++i) {
      net::Link* l = bottleneck_links[i];
      if (l == nullptr) continue;
      auditor->add_gauge("queue.bottleneck" + std::to_string(i), [l]() -> double {
        return static_cast<double>(l->queued_data_packets());
      });
    }
    if (spec.mechanism == Mechanism::Csfq) {
      for (std::size_t i = 0; i < bottleneck_links.size(); ++i) {
        if (bottleneck_links[i] == nullptr) continue;
        const GenLink& gl = topo.links[topo.bottlenecks[i]];
        const net::NodeId from = routers[gl.a];
        const net::NodeId to = routers[gl.b];
        for (const auto& c : csfq_cores) {
          if (c->node() != from) continue;
          const csfq::CsfqCoreRouter* core = c.get();
          auditor->add_gauge("csfq.alpha.bottleneck" + std::to_string(i),
                             [core, to]() -> double {
                               const auto* pol = core->policy_for(to);
                               return pol != nullptr ? pol->alpha() : 0.0;
                             });
        }
      }
    }
    samplers.push_back(simulator.every(audit_cfg.window, [&simulator, aud = auditor.get()] {
      aud->on_window(simulator.exp_now());
    }));
  }

  // Telemetry hook last, so collectors see the fully wired network.
  // Collector callbacks are not thread-safe, so the hook is serial-only.
  if (spec.instrument) {
    if (lp_mode) {
      std::fprintf(stderr,
                   "corelite: telemetry instrumentation is not supported with --lp > 1; "
                   "skipping collectors for this run\n");
    } else {
      spec.instrument(network, bottleneck_links);
    }
  }

  if (fluid_on) {
    // Each fast-forward jump stop()s the engine so the offset bump takes
    // effect between events; resume until experiment time reaches the
    // requested duration.
    while (simulator.now() < spec.duration - simulator.exp_offset()) {
      simulator.run_until(spec.duration - simulator.exp_offset());
    }
  } else {
    lp_rt.run_until(spec.duration);
  }
  for (auto& s : samplers) s.cancel();
  tracker.sample_cumulative(simulator.exp_now());
  if (lp_mode) {
    for (const auto& sink : lp_drop_sinks) {
      result.drop_times.insert(result.drop_times.end(), sink.begin(), sink.end());
    }
    std::sort(result.drop_times.begin(), result.drop_times.end());
  }

  // Global accounting — same fields the paper runner fills, so the
  // sweep's result digest covers generated runs identically.
  result.events_processed = lp_rt.events_processed();
  if (fluid_ctl) result.fluid_stats = fluid_ctl->stats();
  if (auditor) {
    result.audit_report = std::make_unique<telemetry::FairnessAuditReport>(auditor->take_report());
  }
  result.unrouteable = network.unrouteable_count();
  for (net::NodeId r : routers) {
    std::size_t state = 0;
    for (net::Link* l : network.node(r).out_links()) {
      state += l->queue().flow_state_entries();
    }
    result.core_flow_state = std::max(result.core_flow_state, state);
  }
  for (const auto& link : network.links()) result.total_data_drops += link->stats().dropped;
  // Synthesized drops never crossed a link (see scenario.cpp).
  result.total_data_drops += result.fluid_stats.synth_dropped;
  for (net::Link* l : bottleneck_links) {
    if (l != nullptr) result.congested_link_drops += l->stats().dropped;
  }
  for (const auto& e : cl_edges) result.markers_injected += e->markers_injected();
  for (const auto& e : cl_edges) result.feedback_messages += e->feedback_received();
  for (const auto& e : csfq_edges) result.feedback_messages += e->loss_notices_received();
  sim::flush_hotpath_counters();
  telemetry::flush_thread_metrics();
  return result;
}

}  // namespace corelite::scenario

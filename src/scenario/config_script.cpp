#include "scenario/config_script.h"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "csfq/core.h"
#include "csfq/edge_router.h"
#include "net/network.h"
#include "qos/core_router.h"
#include "qos/edge_router.h"
#include "sim/simulator.h"

namespace corelite::scenario {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss{line};
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == '#') break;
    out.push_back(tok);
  }
  return out;
}

bool to_double(const std::string& s, double& out) {
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0';
}

bool to_size(const std::string& s, std::size_t& out) {
  char* end = nullptr;
  const auto v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v < 0) return false;
  out = static_cast<std::size_t>(v);
  return true;
}

}  // namespace

std::optional<ScriptScenario> parse_scenario_script(std::istream& in, std::ostream& err) {
  ScriptScenario s;
  auto touch_node = [&s](const std::string& name) {
    if (std::find(s.nodes.begin(), s.nodes.end(), name) == s.nodes.end()) {
      s.nodes.push_back(name);
    }
  };

  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& msg) {
    err << "line " << lineno << ": " << msg << "\n";
    return std::nullopt;
  };

  while (std::getline(in, line)) {
    ++lineno;
    const auto tok = tokenize(line);
    if (tok.empty()) continue;
    const std::string& cmd = tok[0];

    if (cmd == "mechanism") {
      if (tok.size() != 2 || (tok[1] != "corelite" && tok[1] != "csfq")) {
        return fail("mechanism expects 'corelite' or 'csfq'");
      }
      s.mechanism = tok[1];
    } else if (cmd == "duration") {
      if (tok.size() != 2 || !to_double(tok[1], s.duration_sec) || s.duration_sec <= 0) {
        return fail("duration expects a positive number of seconds");
      }
    } else if (cmd == "seed") {
      std::size_t seed = 0;
      if (tok.size() != 2 || !to_size(tok[1], seed)) return fail("seed expects an integer");
      s.seed = seed;
    } else if (cmd == "class") {
      double w = 0.0;
      double min_rate = 0.0;
      if (tok.size() < 3 || tok.size() > 4 || !to_double(tok[2], w) || w <= 0.0) {
        return fail("class expects: class NAME WEIGHT [MINRATE]");
      }
      if (tok.size() == 4 && (!to_double(tok[3], min_rate) || min_rate < 0.0)) {
        return fail("class min-rate must be a non-negative number");
      }
      s.classes.define(tok[1], w, min_rate);
    } else if (cmd == "node") {
      if (tok.size() != 2) return fail("node expects: node NAME");
      touch_node(tok[1]);
    } else if (cmd == "link") {
      ScriptLink l;
      if (tok.size() < 6 || tok.size() > 7) {
        return fail("link expects: link A B MBPS DELAY_MS QUEUE [simplex]");
      }
      l.a = tok[1];
      l.b = tok[2];
      if (l.a == l.b) return fail("link endpoints must differ");
      if (!to_double(tok[3], l.mbps) || l.mbps <= 0.0) return fail("bad link rate");
      if (!to_double(tok[4], l.delay_ms) || l.delay_ms < 0.0) return fail("bad link delay");
      if (!to_size(tok[5], l.queue) || l.queue == 0) return fail("bad link queue size");
      if (tok.size() == 7) {
        if (tok[6] != "simplex") return fail("trailing link token must be 'simplex'");
        l.duplex = false;
      }
      touch_node(l.a);
      touch_node(l.b);
      s.links.push_back(std::move(l));
    } else if (cmd == "core") {
      if (tok.size() != 2) return fail("core expects: core NAME");
      touch_node(tok[1]);
      s.cores.push_back(tok[1]);
    } else if (cmd == "edge") {
      if (tok.size() != 2) return fail("edge expects: edge NAME");
      touch_node(tok[1]);
      s.edges.push_back(tok[1]);
    } else if (cmd == "flow") {
      if (tok.size() < 6) {
        return fail("flow expects: flow ID INGRESS EGRESS weight W | class NAME ...");
      }
      ScriptFlow f;
      std::size_t id = 0;
      if (!to_size(tok[1], id) || id == 0) return fail("flow id must be a positive integer");
      f.id = static_cast<net::FlowId>(id);
      f.ingress = tok[2];
      f.egress = tok[3];
      touch_node(f.ingress);
      touch_node(f.egress);
      std::size_t i = 4;
      if (tok[i] == "weight") {
        if (i + 1 >= tok.size() || !to_double(tok[i + 1], f.weight) || f.weight <= 0.0) {
          return fail("flow weight must be positive");
        }
        i += 2;
      } else if (tok[i] == "class") {
        if (i + 1 >= tok.size()) return fail("flow class expects a name");
        const auto rc = s.classes.find(tok[i + 1]);
        if (!rc.has_value()) return fail("unknown rate class '" + tok[i + 1] + "'");
        f.weight = rc->weight;
        f.min_rate_pps = rc->min_rate_pps;
        i += 2;
      } else {
        return fail("flow expects 'weight W' or 'class NAME' after the endpoints");
      }
      while (i < tok.size()) {
        if (tok[i] == "min") {
          if (i + 1 >= tok.size() || !to_double(tok[i + 1], f.min_rate_pps) ||
              f.min_rate_pps < 0.0) {
            return fail("flow min expects a non-negative rate");
          }
          i += 2;
        } else if (tok[i] == "window") {
          if (i + 2 >= tok.size()) return fail("window expects START STOP");
          double start = 0.0;
          double stop = 0.0;
          if (!to_double(tok[i + 1], start) || start < 0.0) return fail("bad window start");
          const bool inf = tok[i + 2] == "inf";
          if (!inf && (!to_double(tok[i + 2], stop) || stop <= start)) {
            return fail("window stop must be 'inf' or greater than start");
          }
          f.windows.push_back({sim::SimTime::seconds(start),
                               inf ? sim::SimTime::infinite() : sim::SimTime::seconds(stop)});
          i += 3;
        } else {
          return fail("unknown flow attribute '" + tok[i] + "'");
        }
      }
      if (!net::valid_activity_windows(f.windows)) {
        return fail("flow windows must be time-ordered and disjoint");
      }
      s.flows.push_back(std::move(f));
    } else {
      return fail("unknown command '" + cmd + "'");
    }
  }

  if (s.links.empty()) {
    err << "script declares no links\n";
    return std::nullopt;
  }
  if (s.flows.empty()) {
    err << "script declares no flows\n";
    return std::nullopt;
  }
  return s;
}

std::optional<ScriptRunResult> run_script_scenario(const ScriptScenario& s,
                                                   std::ostream& err) {
  sim::Simulator simulator{s.seed};
  net::Network network{simulator};

  std::unordered_map<std::string, net::NodeId> ids;
  for (const auto& name : s.nodes) ids[name] = network.add_node(name);

  for (const auto& l : s.links) {
    const auto rate = sim::Rate::mbps(l.mbps);
    const auto delay = sim::TimeDelta::millis(l.delay_ms);
    if (l.duplex) {
      network.connect_duplex(ids.at(l.a), ids.at(l.b), rate, delay, l.queue);
    } else {
      network.connect(ids.at(l.a), ids.at(l.b), rate, delay, l.queue);
    }
  }
  network.build_routes();

  // Validate flows against declared edges and reachability.
  for (const auto& f : s.flows) {
    if (std::find(s.edges.begin(), s.edges.end(), f.ingress) == s.edges.end()) {
      err << "flow " << f.id << ": ingress '" << f.ingress << "' is not declared 'edge'\n";
      return std::nullopt;
    }
    if (network.path(ids.at(f.ingress), ids.at(f.egress)).empty()) {
      err << "flow " << f.id << ": no route from " << f.ingress << " to " << f.egress << "\n";
      return std::nullopt;
    }
  }

  ScriptRunResult result;
  stats::FlowTracker& tracker = result.tracker;

  // Egress sinks.
  for (const auto& f : s.flows) {
    network.node(ids.at(f.egress)).set_local_sink([&tracker](net::Packet&& p) {
      if (p.is_data()) tracker.on_delivered(p.flow);
    });
  }

  std::vector<std::unique_ptr<qos::CoreliteCoreRouter>> cl_cores;
  std::vector<std::unique_ptr<csfq::CsfqCoreRouter>> csfq_cores;
  std::unordered_map<std::string, std::unique_ptr<qos::CoreliteEdgeRouter>> cl_edges;
  std::unordered_map<std::string, std::unique_ptr<csfq::CsfqEdgeRouter>> csfq_edges;

  const bool corelite = s.mechanism == "corelite";
  for (const auto& name : s.cores) {
    if (corelite) {
      cl_cores.push_back(
          std::make_unique<qos::CoreliteCoreRouter>(network, ids.at(name), s.corelite));
    } else {
      csfq_cores.push_back(
          std::make_unique<csfq::CsfqCoreRouter>(network, ids.at(name), s.csfq));
    }
  }
  for (const auto& name : s.edges) {
    if (corelite) {
      cl_edges.emplace(name, std::make_unique<qos::CoreliteEdgeRouter>(network, ids.at(name),
                                                                       s.corelite, &tracker));
    } else {
      csfq_edges.emplace(name, std::make_unique<csfq::CsfqEdgeRouter>(network, ids.at(name),
                                                                      s.csfq, &tracker));
    }
  }

  for (const auto& f : s.flows) {
    net::FlowSpec fs;
    fs.id = f.id;
    fs.ingress = ids.at(f.ingress);
    fs.egress = ids.at(f.egress);
    fs.weight = f.weight;
    fs.min_rate_pps = f.min_rate_pps;
    if (!f.windows.empty()) fs.active = f.windows;
    if (corelite) {
      cl_edges.at(f.ingress)->add_flow(fs);
    } else {
      csfq_edges.at(f.ingress)->add_flow(fs);
    }
  }

  tracker.sample_cumulative(simulator.now());
  auto sampler = simulator.every(sim::TimeDelta::seconds(1),
                                 [&] { tracker.sample_cumulative(simulator.now()); });
  simulator.run_until(sim::SimTime::seconds(s.duration_sec));
  sampler.cancel();
  tracker.sample_cumulative(simulator.now());

  result.events_processed = simulator.events_processed();
  result.unrouteable = network.unrouteable_count();
  for (const auto& link : network.links()) result.data_drops += link->stats().dropped;
  return result;
}

}  // namespace corelite::scenario

// Experiment harness: run a paper scenario end to end and collect the
// series the figures plot.
//
// A ScenarioSpec fully describes one run: the mechanism under test
// (Corelite with either selector, weighted CSFQ, or the naive drop-tail
// baseline), the flow population (weights + activity windows) and the
// protocol/topology parameters.  run_paper_scenario() builds the
// Figure-2 network, wires up the mechanism, runs the simulation and
// returns per-flow rate and cumulative-service time series plus global
// counters.  Factory functions produce the exact specs behind each of
// the paper's figures.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include <memory>

#include "csfq/config.h"
#include "net/flow.h"
#include "qos/config.h"
#include "scenario/flow_gen.h"
#include "scenario/paper_topology.h"
#include "sim/fluid/config.h"
#include "sim/fluid/probe.h"
#include "sim/parallel/lp_probe.h"
#include "sim/units.h"
#include "stats/flow_tracker.h"
#include "telemetry/fairness_audit.h"

namespace corelite::scenario {

enum class Mechanism {
  Corelite,  ///< stateless selector (the paper's default)
  Csfq,      ///< weighted CSFQ baseline
  DropTail,  ///< FIFO + loss notification, no fairness mechanism
  Red,       ///< RED queues + loss notification (related-work baseline)
  Fred,      ///< FRED queues + loss notification (related-work baseline)
  Wfq,       ///< per-flow WFQ cores — the stateful Intserv-style reference
  EcnBit,    ///< DECbit/ECN binary marking — the unweighted-feedback control
  Choke,     ///< CHOKe stateless AQM + loss notification
  Sfq,       ///< stochastic fair queueing (hashed bands) + loss notification
};

[[nodiscard]] std::string mechanism_name(Mechanism m);

/// Inverse of mechanism_name: nullopt for an unknown name.
[[nodiscard]] std::optional<Mechanism> mechanism_from_name(const std::string& name);

struct ScenarioSpec {
  Mechanism mechanism = Mechanism::Corelite;
  std::size_t num_flows = 20;
  /// weights[i] is the rate weight of 1-based flow i+1; must have
  /// num_flows entries.
  std::vector<double> weights;
  /// activity[i] are the activity windows of flow i+1; empty vector
  /// means always-on.
  std::vector<std::vector<net::ActiveInterval>> activity;
  /// Optional per-flow minimum rate contracts (pkt/s); empty = none.
  std::vector<double> min_rates;
  /// Optional unresponsive-flood injection: flood_pps[i] > 0 makes
  /// 1-based flow i+1 ignore the adaptation protocol and blast at that
  /// fixed rate (see net::FlowSpec::flood_pps).  Empty = no floods.
  std::vector<double> flood_pps;

  sim::SimTime duration = sim::SimTime::seconds(80);
  std::uint64_t seed = 1;
  sim::TimeDelta cumulative_sample_period = sim::TimeDelta::seconds(1);

  /// Logical processes for the conservative parallel engine (1 =
  /// legacy serial, bit-identical to pre-parallel builds).  Requests
  /// beyond what the topology supports are clamped by the partitioner
  /// (and logged).  Digests are a pure function of (spec, effective lp
  /// count) — NOT of lp_threads, which only changes wall time.
  std::size_t lp = 1;
  /// OS threads driving the LPs: 0 = auto (ThreadBudget-clamped to the
  /// hardware), otherwise honored exactly (capped at the LP count).
  std::size_t lp_threads = 0;

  /// Failure injection: probability that any control packet (marker,
  /// feedback, loss notice, ACK) is lost on each link it crosses.
  double control_loss_rate = 0.0;

  /// Hybrid fluid fast-forward (serial runs only; lp > 1 warns and
  /// falls back to pure packet mode).  Disabled (the default) is
  /// bit-identical to pure packet mode; enabled trades bit-identity for
  /// wall clock, with per-flow mean rates held within the cross-check
  /// tolerance (tests/fluid_crosscheck_test.cpp).
  sim::fluid::FluidConfig fluid{};

  /// Fairness audit (opt-in, serial-only; lp > 1 warns and skips, like
  /// the instrument hook).  The audit sampler adds simulation events,
  /// so audit-on digests differ from audit-off — deterministically and
  /// thread/jobs-invariantly; plain --telemetry must leave this off to
  /// keep its bit-identity contract.
  telemetry::FairnessAuditConfig audit{};

  /// Observation probes (non-owning; must outlive the run).  lp_probe
  /// receives per-window LP runtime measurements when lp > 1;
  /// fluid_probe receives every fluid certification decision when the
  /// fluid engine is on.  Both are pure observation — digests are
  /// identical with or without them.
  sim::par::LpProbe* lp_probe = nullptr;
  sim::fluid::FluidProbe* fluid_probe = nullptr;

  qos::CoreliteConfig corelite{};
  csfq::CsfqConfig csfq{};
  PaperTopologyConfig topology{};

  /// Generated workload (scaling axis): when set, the run uses the
  /// generated topology + flow population instead of the paper's
  /// Figure-2 network; `weights`/`activity`/`min_rates` above are
  /// ignored (the population carries its own).  The flow population is
  /// regenerated at run time from this spec's `seed`, so sweeps stay a
  /// pure function of the descriptor.  num_flows must equal
  /// generated->flows.num_flows.
  std::optional<GeneratedWorkload> generated;

  /// Optional observability hook, invoked once the network and mechanism
  /// are fully wired but before the simulation runs.  The only way to
  /// reach the spec-built network (it lives and dies inside
  /// run_paper_scenario) — telemetry collectors attach link observers
  /// here.  The second argument is the run's congested/bottleneck links
  /// (the paper topology's three core links, or the generated
  /// topology's designated bottlenecks).  Must be passive: attaching
  /// observers never touches the RNG or event order, so results stay
  /// bit-identical with or without it.
  using InstrumentFn = std::function<void(net::Network&, const std::vector<net::Link*>&)>;
  InstrumentFn instrument;
};

struct ScenarioResult {
  stats::FlowTracker tracker;
  std::uint64_t events_processed = 0;
  std::uint64_t total_data_drops = 0;       ///< across every link
  std::uint64_t congested_link_drops = 0;   ///< on the three core links only
  std::uint64_t feedback_messages = 0;      ///< markers echoed / loss notices
  std::uint64_t markers_injected = 0;       ///< Corelite only
  std::uint64_t unrouteable = 0;            ///< should always be 0
  /// Peak per-flow state held by any single core node at the end of the
  /// run: max over core routers of the sum of flow_state_entries() over
  /// their outgoing queues.  0 for core-stateless mechanisms (Corelite,
  /// CSFQ, drop-tail, RED, CHOKe), O(active flows) for WFQ/FRED.
  std::size_t core_flow_state = 0;
  /// Mean q_avg observed per congested link (Corelite diagnostics).
  std::vector<double> mean_q_avg;
  /// Timestamps (s) of every data-packet drop on the congested links,
  /// in order — localizes loss to startup transients vs steady state.
  std::vector<double> drop_times;
  /// Instantaneous data-queue length of each congested link, sampled
  /// every 100 ms (index matches PaperTopology's congested links).
  std::vector<stats::TimeSeries> queue_series;
  /// Fluid fast-forward outcome (all-zero when spec.fluid is off).
  sim::fluid::FluidStats fluid_stats{};
  /// Fairness audit report (null unless spec.audit.enabled ran).
  std::unique_ptr<telemetry::FairnessAuditReport> audit_report;
};

/// Build, run and measure one scenario.  Dispatches to the generated-
/// workload runner when spec.generated is set.
[[nodiscard]] ScenarioResult run_paper_scenario(const ScenarioSpec& spec);

/// The generated-workload path of run_paper_scenario: builds the
/// generated topology (one multi-flow edge router per source router,
/// one shared sink node per sink router, core machinery on every
/// router), generates the flow population from spec.seed, and runs the
/// configured mechanism.  Exposed for tests; prefer run_paper_scenario.
[[nodiscard]] ScenarioResult run_generated_scenario(const ScenarioSpec& spec);

/// Weighted max-min fair rates (pkt/s) for the flows active at time t,
/// computed by the water-filling oracle on the three congested links.
[[nodiscard]] std::unordered_map<net::FlowId, double> ideal_rates_at(const ScenarioSpec& spec,
                                                                     sim::SimTime t);

// --------------------------------------------------------------------------
// The paper's scenarios.

/// §4.1, Figures 3-4: 20 flows; flows 1, 9, 10, 11, 16 active only in
/// [250 s, 500 s); all others in [0 s, 750 s).  Weights: 3 for flows
/// 5 & 15, 1 for flows 1, 11 & 16, 2 otherwise.
[[nodiscard]] ScenarioSpec fig3_network_dynamics(Mechanism m);

/// §4.2, Figures 5-6: 10 flows with weight ceil(i/2), all starting at
/// t = 0; 80 s.
[[nodiscard]] ScenarioSpec fig5_simultaneous_start(Mechanism m);

/// §4.3, Figures 7-8: 20 flows starting 1 s apart in ascending order;
/// weights: 1 for flows 1, 11 & 16, 3 for flows 5, 10 & 15, 2 otherwise;
/// 80 s.
[[nodiscard]] ScenarioSpec fig7_staggered_start(Mechanism m);

/// §4.3, Figures 9-10: same population as fig7; each flow lives 60 s,
/// stops, and restarts 5 s later; 160 s.
[[nodiscard]] ScenarioSpec fig9_churn(Mechanism m);

/// Scenario by its CLI name — "fig3", "fig5", "fig7", "fig9", or a
/// generated-workload name "gen-<topo>-<flows>" where <topo> is
/// "pl<stages>" (parking lot), "ft<k>" (fat tree) or "isp<routers>"
/// (random ISP, fixed topology seed) and <flows> is the population
/// size, e.g. "gen-pl8-1000", "gen-ft4-1000", "gen-isp32-10000".
/// A "-steady" suffix (e.g. "gen-pl8-100000-steady") disables churn and
/// compresses arrivals into the first 5% of the run — the long
/// converged phase the fluid fast-forward engine targets.
/// nullopt for an unknown name.  Pure function of its arguments (no
/// shared state), so sweep workers can build specs concurrently.
[[nodiscard]] std::optional<ScenarioSpec> scenario_by_name(const std::string& name, Mechanism m);

/// Randomized generalization of the churn experiment: each flow cycles
/// through exponentially distributed on/off periods for the whole run.
/// Weights cycle {1, 2, 3}.  Deterministic in `seed` (which also seeds
/// the simulation itself).
[[nodiscard]] ScenarioSpec random_churn(Mechanism m, std::size_t num_flows,
                                        sim::TimeDelta mean_on, sim::TimeDelta mean_off,
                                        sim::SimTime duration, std::uint64_t seed);

}  // namespace corelite::scenario

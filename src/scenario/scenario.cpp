#include "scenario/scenario.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>
#include <deque>
#include <memory>
#include <string_view>
#include <utility>

#include "csfq/core.h"
#include "csfq/edge_router.h"
#include "net/network.h"
#include "qos/core_router.h"
#include "qos/ecn.h"
#include "qos/edge_router.h"
#include "sim/fluid/controller.h"
#include "sim/fluid/warp.h"
#include "sim/hotpath.h"
#include "sim/parallel/lp_partition.h"
#include "sim/parallel/lp_runtime.h"
#include "sim/simulator.h"
#include "stats/fairness.h"
#include "telemetry/metrics.h"

namespace corelite::scenario {

std::string mechanism_name(Mechanism m) {
  switch (m) {
    case Mechanism::Corelite: return "corelite";
    case Mechanism::Csfq: return "csfq";
    case Mechanism::DropTail: return "droptail";
    case Mechanism::Red: return "red";
    case Mechanism::Fred: return "fred";
    case Mechanism::Wfq: return "wfq";
    case Mechanism::EcnBit: return "ecnbit";
    case Mechanism::Choke: return "choke";
    case Mechanism::Sfq: return "sfq";
  }
  return "unknown";
}

std::optional<Mechanism> mechanism_from_name(const std::string& name) {
  for (Mechanism m : {Mechanism::Corelite, Mechanism::Csfq, Mechanism::DropTail, Mechanism::Red,
                      Mechanism::Fred, Mechanism::Wfq, Mechanism::EcnBit, Mechanism::Choke,
                      Mechanism::Sfq}) {
    if (mechanism_name(m) == name) return m;
  }
  return std::nullopt;
}

namespace {

/// Fixed topology seed for named "gen-isp*" scenarios: the name must
/// denote one stable topology instance (only the flow population varies
/// with the run seed), or sweep cells would not be comparable.
constexpr std::uint64_t kIspTopologySeed = 7;

/// Strictly positive decimal integer, nothing else; nullopt on junk,
/// empty, leading-zero-only or oversized input.
std::optional<std::size_t> parse_positive(const std::string& s) {
  if (s.empty() || s.size() > 9) return std::nullopt;
  std::size_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    v = v * 10 + static_cast<std::size_t>(c - '0');
  }
  if (v == 0) return std::nullopt;
  return v;
}

std::optional<ScenarioSpec> generated_scenario_from_name(const std::string& name, Mechanism m) {
  if (name.rfind("gen-", 0) != 0) return std::nullopt;
  std::string rest = name.substr(4);
  // "-steady" variant: no churn, arrivals compressed into the first 5%
  // of the run — one long converged phase, the fluid fast-forward
  // engine's best case (and the workload the >=3x speedup gate uses).
  bool steady = false;
  constexpr std::string_view kSteady = "-steady";
  if (rest.size() > kSteady.size() &&
      rest.compare(rest.size() - kSteady.size(), kSteady.size(), kSteady) == 0) {
    steady = true;
    rest.resize(rest.size() - kSteady.size());
  }
  const auto dash = rest.find('-');
  if (dash == std::string::npos) return std::nullopt;
  const std::string topo_part = rest.substr(0, dash);
  const auto flows = parse_positive(rest.substr(dash + 1));
  if (!flows.has_value() || *flows > 2'000'000) return std::nullopt;

  GeneratedTopology topo;
  if (topo_part.rfind("pl", 0) == 0) {
    const auto stages = parse_positive(topo_part.substr(2));
    if (!stages.has_value() || *stages > 64) return std::nullopt;
    topo = make_parking_lot(*stages);
  } else if (topo_part.rfind("ft", 0) == 0) {
    const auto k = parse_positive(topo_part.substr(2));
    if (!k.has_value() || *k < 2 || *k > 16 || *k % 2 != 0) return std::nullopt;
    topo = make_fat_tree(*k);
  } else if (topo_part.rfind("isp", 0) == 0) {
    const auto routers = parse_positive(topo_part.substr(3));
    if (!routers.has_value() || *routers < 2 || *routers > 512) return std::nullopt;
    topo = make_isp(*routers, kIspTopologySeed);
  } else {
    return std::nullopt;
  }

  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = *flows;
  s.duration = sim::SimTime::seconds(80);
  GeneratedWorkload wl;
  wl.topology = std::move(topo);
  wl.flows.num_flows = *flows;
  if (steady) {
    wl.flows.churn = false;
    wl.flows.arrival_span_frac = 0.05;
  }
  // Per-flow series cost O(flows x samples) memory: keep them up to
  // sweep-sized populations, counters-only at bench scale.
  wl.flows.record_series = *flows <= 20000;
  s.generated = std::move(wl);
  return s;
}

}  // namespace

std::optional<ScenarioSpec> scenario_by_name(const std::string& name, Mechanism m) {
  if (name == "fig3") return fig3_network_dynamics(m);
  if (name == "fig5") return fig5_simultaneous_start(m);
  if (name == "fig7") return fig7_staggered_start(m);
  if (name == "fig9") return fig9_churn(m);
  return generated_scenario_from_name(name, m);
}

namespace {

// Records the virtual time of every data drop on a link.
struct DropRecorder final : net::LinkObserver {
  net::Link* link = nullptr;
  std::vector<double>* sink = nullptr;
  ~DropRecorder() override {
    if (link != nullptr) link->remove_observer(this);
  }
  void on_drop(const net::Packet& p, sim::SimTime now) override {
    if (p.is_data()) sink->push_back(now.sec());
  }
  void on_link_destroyed(net::Link& /*l*/) override { link = nullptr; }
};

net::FlowSpec make_flow_spec(const ScenarioSpec& spec, std::size_t i /*0-based*/,
                             const FlowEndpoints& ep) {
  net::FlowSpec fs;
  fs.id = static_cast<net::FlowId>(i + 1);
  fs.ingress = ep.ingress;
  fs.egress = ep.egress;
  fs.weight = spec.weights.at(i);
  if (i < spec.activity.size() && !spec.activity[i].empty()) {
    fs.active = spec.activity[i];
  }
  if (i < spec.min_rates.size()) fs.min_rate_pps = spec.min_rates[i];
  if (i < spec.flood_pps.size()) fs.flood_pps = spec.flood_pps[i];
  return fs;
}

}  // namespace

ScenarioResult run_paper_scenario(const ScenarioSpec& spec) {
  if (spec.generated.has_value()) return run_generated_scenario(spec);
  assert(spec.weights.size() == spec.num_flows && "one weight per flow required");

  // LP partition of the four-core chain: the three inter-core links are
  // the only candidate cut links (every flow's attach nodes follow its
  // entry/exit core), so the paper topology supports at most 4 LPs and
  // the lookahead is the core link propagation delay.
  sim::par::LpPlan plan;
  if (spec.lp > 1) {
    sim::par::LpGraph g;
    g.nodes = PaperTopology::kCoreCount;
    for (std::uint32_t i = 0; i + 1 < PaperTopology::kCoreCount; ++i) {
      g.edges.push_back({i, i + 1, spec.topology.link_delay.sec(), true});
    }
    plan = sim::par::partition_lp_graph(g, spec.lp);
    if (plan.zero_lookahead_fallback) {
      std::fprintf(stderr,
                   "corelite: --lp %zu requires positive core link delay for lookahead; "
                   "falling back to the serial engine\n",
                   spec.lp);
    } else if (plan.lp_count < plan.requested) {
      std::fprintf(stderr, "corelite: --lp %zu clamped to %zu LPs (paper topology has %zu cores)\n",
                   spec.lp, plan.lp_count, PaperTopology::kCoreCount);
    }
  }
  const bool lp_mode = plan.lp_count > 1;

  // Fluid fast-forward rides the single serial engine clock; the LP
  // engine's barrier windows have no notion of a shared experiment-time
  // offset, so lp > 1 falls back to pure packet mode (same precedent as
  // the telemetry instrument hook).
  sim::fluid::FluidConfig fluid_cfg = spec.fluid;
  if (fluid_cfg.enabled && lp_mode) {
    std::fprintf(stderr,
                 "corelite: fluid fast-forward is serial-only; running --lp %zu in pure "
                 "packet mode\n",
                 spec.lp);
    fluid_cfg.enabled = false;
  }
  const bool fluid_on = fluid_cfg.enabled;

  sim::par::LpRuntime lp_rt{plan.lp_count, spec.seed, plan.lookahead, spec.lp_threads};
  if (spec.lp_probe != nullptr) lp_rt.set_probe(spec.lp_probe);
  sim::Simulator& simulator = lp_rt.lp_sim(0);
  std::unique_ptr<sim::fluid::TimeWarp> warp;
  if (fluid_on) warp = std::make_unique<sim::fluid::TimeWarp>(simulator);
  net::Network network{lp_rt};
  PaperTopologyConfig topo_cfg = spec.topology;
  if (spec.mechanism == Mechanism::Red) topo_cfg.core_queue = CoreQueueKind::Red;
  if (spec.mechanism == Mechanism::Fred) topo_cfg.core_queue = CoreQueueKind::Fred;
  if (spec.mechanism == Mechanism::Choke) topo_cfg.core_queue = CoreQueueKind::Choke;
  if (spec.mechanism == Mechanism::Sfq) topo_cfg.core_queue = CoreQueueKind::Sfq;
  if (spec.mechanism == Mechanism::Wfq) {
    topo_cfg.core_queue = CoreQueueKind::Wfq;
    // The stateful reference: core routers know every flow's weight.
    const std::vector<double> weights = spec.weights;
    topo_cfg.wfq_weight_of = [weights](net::FlowId f) {
      return (f >= 1 && f <= weights.size()) ? weights[f - 1] : 1.0;
    };
  }
  PaperTopology topo{network, spec.num_flows, topo_cfg,
                     lp_mode ? &plan.lp_of_node : nullptr};
  network.build_routes();

  ScenarioResult result;
  stats::FlowTracker& tracker = result.tracker;

  // Egress sinks: count delivered data packets per flow, with one-way
  // delay measured from the edge's emission timestamp.  The sink reads
  // its own node's clock — in LP mode that is the egress LP's simulator
  // (the single writer of this flow's delivery counters), serially it is
  // the one global simulator, exactly as before.
  for (std::size_t i = 0; i < spec.num_flows; ++i) {
    const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
    network.node(ep.egress).set_local_sink(
        [&tracker, &snk_sim = network.local_sim(ep.egress)](net::Packet&& p) {
          if (p.is_data()) tracker.on_delivered(p.flow, snk_sim.now() - p.created);
        });
  }

  if (spec.control_loss_rate > 0.0) {
    for (const auto& link : network.links()) {
      link->set_control_loss_rate(spec.control_loss_rate);
    }
  }

  // Drop timing on the three congested links.  In LP mode each recorder
  // writes a private vector (links live on different LPs); the vectors
  // are merged and time-sorted after the run.
  std::vector<std::unique_ptr<DropRecorder>> drop_recorders;
  std::deque<std::vector<double>> lp_drop_sinks;
  for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
    if (auto* l = topo.congested_link(network, i)) {
      auto rec = std::make_unique<DropRecorder>();
      rec->link = l;
      if (lp_mode) {
        lp_drop_sinks.emplace_back();
        rec->sink = &lp_drop_sinks.back();
      } else {
        rec->sink = &result.drop_times;
      }
      l->add_observer(rec.get(), net::Link::kObserveDrop);
      drop_recorders.push_back(std::move(rec));
    }
  }

  // Mechanism wiring.  Edge routers install themselves as the ingress
  // nodes' local sinks; core machinery attaches to the core nodes' links.
  std::vector<std::unique_ptr<qos::CoreliteEdgeRouter>> cl_edges;
  std::vector<std::unique_ptr<qos::CoreliteCoreRouter>> cl_cores;
  std::vector<std::unique_ptr<csfq::CsfqEdgeRouter>> csfq_edges;
  std::vector<std::unique_ptr<csfq::CsfqCoreRouter>> csfq_cores;
  std::vector<std::unique_ptr<csfq::LossNotifyingCoreRouter>> droptail_cores;
  std::vector<std::unique_ptr<qos::EcnCoreRouter>> ecn_cores;
  std::vector<std::unique_ptr<qos::EcnEgressAgent>> ecn_agents;

  switch (spec.mechanism) {
    case Mechanism::Corelite: {
      for (net::NodeId c : topo.cores()) {
        cl_cores.push_back(
            std::make_unique<qos::CoreliteCoreRouter>(network, c, spec.corelite));
      }
      for (std::size_t i = 0; i < spec.num_flows; ++i) {
        const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
        auto edge = std::make_unique<qos::CoreliteEdgeRouter>(network, ep.ingress,
                                                              spec.corelite, &tracker);
        if (warp) edge->set_fluid_warp(warp.get());
        edge->add_flow(make_flow_spec(spec, i, ep));
        cl_edges.push_back(std::move(edge));
      }
      break;
    }
    case Mechanism::Csfq: {
      for (net::NodeId c : topo.cores()) {
        csfq_cores.push_back(std::make_unique<csfq::CsfqCoreRouter>(network, c, spec.csfq));
      }
      for (std::size_t i = 0; i < spec.num_flows; ++i) {
        const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
        auto edge =
            std::make_unique<csfq::CsfqEdgeRouter>(network, ep.ingress, spec.csfq, &tracker);
        if (warp) edge->set_fluid_warp(warp.get());
        edge->add_flow(make_flow_spec(spec, i, ep));
        csfq_edges.push_back(std::move(edge));
      }
      break;
    }
    case Mechanism::EcnBit: {
      // Binary-marking control: same Corelite edges, but cores set the
      // DECbit instead of echoing markers; the egress echoes marked
      // packets back as unweighted feedback.
      for (net::NodeId c : topo.cores()) {
        ecn_cores.push_back(std::make_unique<qos::EcnCoreRouter>(network, c, spec.corelite));
      }
      for (std::size_t i = 0; i < spec.num_flows; ++i) {
        const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
        auto edge = std::make_unique<qos::CoreliteEdgeRouter>(network, ep.ingress,
                                                              spec.corelite, &tracker);
        if (warp) edge->set_fluid_warp(warp.get());
        edge->add_flow(make_flow_spec(spec, i, ep));
        cl_edges.push_back(std::move(edge));
        auto agent = std::make_unique<qos::EcnEgressAgent>(network, ep.egress);
        qos::EcnEgressAgent* agent_ptr = agent.get();
        ecn_agents.push_back(std::move(agent));
        network.node(ep.egress).set_local_sink(
            [&tracker, &snk_sim = network.local_sim(ep.egress), agent_ptr](net::Packet&& p) {
              if (p.is_data()) {
                tracker.on_delivered(p.flow, snk_sim.now() - p.created);
                agent_ptr->on_data(p);
              }
            });
      }
      break;
    }
    case Mechanism::DropTail:
    case Mechanism::Red:
    case Mechanism::Fred:
    case Mechanism::Choke:
    case Mechanism::Sfq:
    case Mechanism::Wfq: {
      // Both baselines are "dumb core + loss-reactive sources"; they
      // differ only in the core queue discipline (set above).
      for (net::NodeId c : topo.cores()) {
        droptail_cores.push_back(std::make_unique<csfq::LossNotifyingCoreRouter>(network, c));
      }
      for (std::size_t i = 0; i < spec.num_flows; ++i) {
        const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
        auto edge =
            std::make_unique<csfq::CsfqEdgeRouter>(network, ep.ingress, spec.csfq, &tracker);
        if (warp) edge->set_fluid_warp(warp.get());
        edge->add_flow(make_flow_spec(spec, i, ep));
        csfq_edges.push_back(std::move(edge));
      }
      break;
    }
  }

  // Fluid fast-forward controller: watches per-flow throughput EWMAs and,
  // once every flow sits inside the convergence band for the dwell
  // window AND the measured rates agree with the analytic water-filling
  // allocation, compresses the experiment timeline (simulator.exp_now()
  // jumps ahead of the engine clock; the warp registry caps each jump at
  // the next activity-window boundary).
  std::unique_ptr<sim::fluid::FluidController> fluid_ctl;
  if (fluid_on) {
    fluid_cfg.synth_sample_period = spec.cumulative_sample_period;
    fluid_ctl = std::make_unique<sim::fluid::FluidController>(simulator, *warp, tracker,
                                                              fluid_cfg, spec.duration);
    fluid_ctl->set_link_capacities(
        std::vector<double>(PaperTopology::kCongestedLinks, topo.capacity_pps()));
    for (std::size_t i = 0; i < spec.num_flows; ++i) {
      const auto id = static_cast<net::FlowId>(i + 1);
      std::vector<std::uint32_t> links;
      for (std::size_t l : PaperTopology::congested_links(id)) {
        links.push_back(static_cast<std::uint32_t>(l));
      }
      fluid_ctl->add_flow(id, spec.weights.at(i), std::move(links));
    }
    if (spec.fluid_probe != nullptr) fluid_ctl->set_probe(spec.fluid_probe);
    fluid_ctl->start();
  }

  // Queue-length sampling on the congested links.  Serially one timer
  // samples all three; in LP mode each congested link is sampled by a
  // timer on its from-node's LP (the link's owner), keeping every
  // observation single-threaded.
  result.queue_series.resize(PaperTopology::kCongestedLinks);
  std::vector<sim::PeriodicHandle> samplers;
  if (!lp_mode) {
    samplers.push_back(simulator.every(sim::TimeDelta::millis(100), [&] {
      for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
        if (auto* l = topo.congested_link(network, i)) {
          result.queue_series[i].add(simulator.exp_now().sec(),
                                     static_cast<double>(l->queued_data_packets()));
        }
      }
    }));
  } else {
    for (std::size_t lp = 0; lp < plan.lp_count; ++lp) {
      std::vector<std::size_t> owned;
      for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
        if (network.lp_of(topo.core(i)) == lp) owned.push_back(i);
      }
      if (owned.empty()) continue;
      sim::Simulator& lsim = lp_rt.lp_sim(lp);
      samplers.push_back(lsim.every(
          sim::TimeDelta::millis(100), [&result, &topo, &network, &lsim, owned] {
            for (std::size_t i : owned) {
              if (auto* l = topo.congested_link(network, i)) {
                result.queue_series[i].add(lsim.now().sec(),
                                           static_cast<double>(l->queued_data_packets()));
              }
            }
          }));
    }
  }

  // Periodic cumulative-service sampling (Figure 4's series).  The LP
  // variant shards flows by egress LP so each series has one writer —
  // the same LP that bumps the flow's delivered counter.
  tracker.sample_cumulative(simulator.exp_now());
  if (!lp_mode) {
    samplers.push_back(simulator.every(spec.cumulative_sample_period, [&tracker, &simulator] {
      tracker.sample_cumulative(simulator.exp_now());
    }));
  } else {
    for (std::size_t lp = 0; lp < plan.lp_count; ++lp) {
      std::vector<net::FlowId> owned;
      for (std::size_t i = 0; i < spec.num_flows; ++i) {
        const auto& ep = topo.endpoints(static_cast<net::FlowId>(i + 1));
        if (network.lp_of(ep.egress) == lp) owned.push_back(static_cast<net::FlowId>(i + 1));
      }
      if (owned.empty()) continue;
      sim::Simulator& lsim = lp_rt.lp_sim(lp);
      samplers.push_back(lsim.every(
          spec.cumulative_sample_period, [&tracker, &lsim, owned = std::move(owned)] {
            tracker.sample_cumulative(lsim.now(), owned);
          }));
    }
  }

  // Fairness auditor (opt-in): per-window oracle-deviation telemetry on
  // the serial engine only.  Its sampler adds simulation events — that
  // is the audit-on/off digest split documented in ScenarioSpec::audit —
  // and its gauges read live link/core state, so it follows the same
  // serial-only precedent as the instrument hook below.
  telemetry::FairnessAuditConfig audit_cfg = spec.audit;
  if (audit_cfg.enabled && lp_mode) {
    std::fprintf(stderr,
                 "corelite: the fairness audit is not supported with --lp > 1; "
                 "skipping the auditor for this run\n");
    audit_cfg.enabled = false;
  }
  std::unique_ptr<telemetry::FairnessAuditor> auditor;
  if (audit_cfg.enabled) {
    std::vector<telemetry::FairnessAuditor::FlowInfo> audit_flows;
    audit_flows.reserve(spec.num_flows);
    for (std::size_t i = 0; i < spec.num_flows; ++i) {
      const auto id = static_cast<net::FlowId>(i + 1);
      telemetry::FairnessAuditor::FlowInfo fi;
      fi.id = id;
      fi.weight = spec.weights.at(i);
      for (std::size_t l : PaperTopology::congested_links(id)) {
        fi.links.push_back(static_cast<std::uint32_t>(l));
      }
      audit_flows.push_back(std::move(fi));
    }
    // Activity oracle over the spec's half-open windows (empty list =
    // always on) — the same ground truth the edges schedule from.
    auto active_fn = [&spec](net::FlowId id, double t_sec) {
      const std::size_t i = static_cast<std::size_t>(id) - 1;
      if (i >= spec.activity.size() || spec.activity[i].empty()) return true;
      for (const auto& iv : spec.activity[i]) {
        if (t_sec >= iv.start.sec() && t_sec < iv.stop.sec()) return true;
      }
      return false;
    };
    auditor = std::make_unique<telemetry::FairnessAuditor>(
        audit_cfg, tracker,
        std::vector<double>(PaperTopology::kCongestedLinks, topo.capacity_pps()),
        std::move(audit_flows), std::move(active_fn));
    // Engine gauges for the flight recorder: congested-link occupancy,
    // plus the CSFQ fair-share estimate α on each congested link.
    for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
      auditor->add_gauge("queue.core" + std::to_string(i),
                         [&network, &topo, i]() -> double {
                           auto* l = topo.congested_link(network, i);
                           return l != nullptr
                                      ? static_cast<double>(l->queued_data_packets())
                                      : 0.0;
                         });
    }
    if (spec.mechanism == Mechanism::Csfq) {
      for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
        const net::NodeId from = topo.core(i);
        const net::NodeId to = topo.core(i + 1);
        for (const auto& c : csfq_cores) {
          if (c->node() != from) continue;
          const csfq::CsfqCoreRouter* core = c.get();
          auditor->add_gauge("csfq.alpha.core" + std::to_string(i),
                             [core, to]() -> double {
                               const auto* pol = core->policy_for(to);
                               return pol != nullptr ? pol->alpha() : 0.0;
                             });
        }
      }
    }
    samplers.push_back(simulator.every(audit_cfg.window, [&simulator, aud = auditor.get()] {
      aud->on_window(simulator.exp_now());
    }));
  }

  // Telemetry hook last, so collectors see the fully wired network.
  // Collector callbacks are not thread-safe, so the hook is serial-only.
  if (spec.instrument) {
    if (lp_mode) {
      std::fprintf(stderr,
                   "corelite: telemetry instrumentation is not supported with --lp > 1; "
                   "skipping collectors for this run\n");
    } else {
      std::vector<net::Link*> congested;
      for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
        if (auto* l = topo.congested_link(network, i)) congested.push_back(l);
      }
      spec.instrument(network, congested);
    }
  }

  if (fluid_on) {
    // Each fast-forward jump stop()s the engine so the offset bump takes
    // effect between events; resume until experiment time reaches the
    // requested duration (engine deadline shrinks by the skipped span).
    while (simulator.now() < spec.duration - simulator.exp_offset()) {
      simulator.run_until(spec.duration - simulator.exp_offset());
    }
  } else {
    lp_rt.run_until(spec.duration);
  }
  for (auto& s : samplers) s.cancel();
  tracker.sample_cumulative(simulator.exp_now());
  if (lp_mode) {
    for (const auto& sink : lp_drop_sinks) {
      result.drop_times.insert(result.drop_times.end(), sink.begin(), sink.end());
    }
    std::sort(result.drop_times.begin(), result.drop_times.end());
  }

  // Global accounting.
  result.events_processed = lp_rt.events_processed();
  if (fluid_ctl) result.fluid_stats = fluid_ctl->stats();
  if (auditor) {
    result.audit_report = std::make_unique<telemetry::FairnessAuditReport>(auditor->take_report());
  }
  result.unrouteable = network.unrouteable_count();
  for (net::NodeId c : topo.cores()) {
    std::size_t state = 0;
    for (net::Link* l : network.node(c).out_links()) {
      state += l->queue().flow_state_entries();
    }
    result.core_flow_state = std::max(result.core_flow_state, state);
  }
  for (const auto& link : network.links()) result.total_data_drops += link->stats().dropped;
  // Drops synthesized during fast-forwarded spans never cross a link,
  // so fold them into the global count here (congested_link_drops stays
  // a pure link-level observation).
  result.total_data_drops += result.fluid_stats.synth_dropped;
  for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
    if (auto* l = topo.congested_link(network, i)) {
      result.congested_link_drops += l->stats().dropped;
    }
  }
  for (const auto& e : cl_edges) result.markers_injected += e->markers_injected();
  for (const auto& e : cl_edges) result.feedback_messages += e->feedback_received();
  for (const auto& e : csfq_edges) result.feedback_messages += e->loss_notices_received();
  // Mean q_avg per congested link (Corelite only).
  if (spec.mechanism == Mechanism::Corelite) {
    for (std::size_t i = 0; i < PaperTopology::kCongestedLinks; ++i) {
      const net::NodeId from = topo.core(i);
      const net::NodeId to = topo.core(i + 1);
      for (const auto& c : cl_cores) {
        if (c->node() != from) continue;
        for (const auto& d : c->diagnostics()) {
          if (d.link_to == to && d.q_avg_series != nullptr && !d.q_avg_series->empty()) {
            result.mean_q_avg.push_back(
                d.q_avg_series->average_over(0.0, spec.duration.sec()));
          }
        }
      }
    }
  }
  sim::flush_hotpath_counters();
  telemetry::flush_thread_metrics();
  return result;
}

std::unordered_map<net::FlowId, double> ideal_rates_at(const ScenarioSpec& spec, sim::SimTime t) {
  // The water-filling oracle models the paper's fixed three-link chain;
  // generated topologies have no closed-form here (the sweep falls back
  // to weight-normalized delivered throughput for them).
  if (spec.generated.has_value()) return {};
  const double cap = PaperTopologyConfig{spec.topology}.link_rate.pps(spec.topology.packet_size);
  std::vector<double> caps(PaperTopology::kCongestedLinks, cap);
  std::vector<stats::MaxMinFlow> flows;
  for (std::size_t i = 0; i < spec.num_flows; ++i) {
    const auto id = static_cast<net::FlowId>(i + 1);
    // Activity check: empty activity list means always-on.
    bool active = true;
    if (i < spec.activity.size() && !spec.activity[i].empty()) {
      active = false;
      for (const auto& iv : spec.activity[i]) {
        if (t >= iv.start && t < iv.stop) {
          active = true;
          break;
        }
      }
    }
    if (!active) continue;
    flows.push_back({id, spec.weights.at(i), PaperTopology::congested_links(id)});
  }
  return stats::weighted_max_min(caps, flows);
}

// --------------------------------------------------------------------------
// Paper scenario factories.

namespace {

std::vector<double> fig3_weights(std::size_t n) {
  std::vector<double> w(n, 2.0);
  auto set = [&](std::size_t f, double v) {
    if (f <= n) w[f - 1] = v;
  };
  set(5, 3.0);
  set(15, 3.0);
  set(1, 1.0);
  set(11, 1.0);
  set(16, 1.0);
  return w;
}

std::vector<double> fig7_weights(std::size_t n) {
  std::vector<double> w(n, 2.0);
  auto set = [&](std::size_t f, double v) {
    if (f <= n) w[f - 1] = v;
  };
  set(1, 1.0);
  set(11, 1.0);
  set(16, 1.0);
  set(5, 3.0);
  set(10, 3.0);
  set(15, 3.0);
  return w;
}

}  // namespace

ScenarioSpec fig3_network_dynamics(Mechanism m) {
  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = 20;
  s.weights = fig3_weights(20);
  s.duration = sim::SimTime::seconds(760);
  s.activity.resize(20);
  for (std::size_t f = 1; f <= 20; ++f) {
    const bool late = (f == 1 || f == 9 || f == 10 || f == 11 || f == 16);
    if (late) {
      s.activity[f - 1] = {{sim::SimTime::seconds(250), sim::SimTime::seconds(500)}};
    } else {
      s.activity[f - 1] = {{sim::SimTime::zero(), sim::SimTime::seconds(750)}};
    }
  }
  return s;
}

ScenarioSpec fig5_simultaneous_start(Mechanism m) {
  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = 10;
  s.weights.resize(10);
  for (std::size_t i = 1; i <= 10; ++i) {
    s.weights[i - 1] = std::ceil(static_cast<double>(i) / 2.0);  // 1,1,2,2,3,3,4,4,5,5
  }
  s.duration = sim::SimTime::seconds(80);
  return s;
}

ScenarioSpec fig7_staggered_start(Mechanism m) {
  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = 20;
  s.weights = fig7_weights(20);
  s.duration = sim::SimTime::seconds(80);
  s.activity.resize(20);
  for (std::size_t f = 1; f <= 20; ++f) {
    s.activity[f - 1] = {{sim::SimTime::seconds(static_cast<double>(f - 1)),
                          sim::SimTime::infinite()}};
  }
  return s;
}

ScenarioSpec fig9_churn(Mechanism m) {
  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = 20;
  s.weights = fig7_weights(20);
  s.duration = sim::SimTime::seconds(160);
  s.activity.resize(20);
  for (std::size_t f = 1; f <= 20; ++f) {
    const double start = static_cast<double>(f - 1);
    // Live 60 s, pause 5 s, run again until the end of the experiment.
    s.activity[f - 1] = {{sim::SimTime::seconds(start), sim::SimTime::seconds(start + 60)},
                         {sim::SimTime::seconds(start + 65), sim::SimTime::infinite()}};
  }
  return s;
}

ScenarioSpec random_churn(Mechanism m, std::size_t num_flows, sim::TimeDelta mean_on,
                          sim::TimeDelta mean_off, sim::SimTime duration, std::uint64_t seed) {
  ScenarioSpec s;
  s.mechanism = m;
  s.num_flows = num_flows;
  s.duration = duration;
  s.seed = seed;
  s.weights.resize(num_flows);
  s.activity.resize(num_flows);
  sim::Rng rng{seed ^ 0x9e3779b97f4a7c15ULL};  // distinct stream from the sim's
  for (std::size_t i = 0; i < num_flows; ++i) {
    s.weights[i] = static_cast<double>(i % 3 + 1);
    double t = rng.exponential(mean_off.sec());
    std::vector<net::ActiveInterval> windows;
    while (t < duration.sec()) {
      const double on = rng.exponential(mean_on.sec());
      windows.push_back({sim::SimTime::seconds(t),
                         sim::SimTime::seconds(std::min(t + on, duration.sec()))});
      t += on + rng.exponential(mean_off.sec());
    }
    if (windows.empty()) {
      // Guarantee at least one active period per flow.
      windows.push_back({sim::SimTime::zero(), duration});
    }
    s.activity[i] = std::move(windows);
  }
  return s;
}

}  // namespace corelite::scenario

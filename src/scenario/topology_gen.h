// Deterministic topology generation — the workload axis beyond the
// paper's fixed Figure-2 chain.
//
// A GeneratedTopology is a pure description (routers, duplex links,
// source/sink attach points, designated bottleneck links) produced by a
// seed-driven generator.  Three families cover the evaluation space:
//   - parking lot: an N-stage chain of core routers, the classic
//     multi-bottleneck fairness topology (Figure 2 is the 3-stage
//     instance);
//   - fat tree: a k-ary data-center fabric (core/aggregation/edge),
//     exercising many equal-cost short paths;
//   - ISP: a random connected graph (uniform random spanning tree plus
//     extra chords), exercising irregular path lengths and degrees.
//
// Generators are pure functions of their arguments: the same (family,
// size, seed) yields a byte-identical description on every platform,
// witnessed by digest() (FNV-1a over the full structure) and pinned by
// golden tests.  The description is turned into a live net::Network by
// the generated-scenario runner (see scenario.h).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/units.h"

namespace corelite::scenario {

/// Link-parameter knobs shared by all generator families.
struct TopologyGenConfig {
  sim::Rate core_rate = sim::Rate::mbps(4);        ///< router-router links
  sim::Rate access_rate = sim::Rate::mbps(40);     ///< attach (source/sink) links
  sim::TimeDelta link_delay = sim::TimeDelta::millis(10);
  std::size_t queue_capacity_packets = 40;
  sim::DataSize packet_size = sim::DataSize::kilobytes(1);
};

/// One duplex router-router link (endpoints are router indices).
struct GenLink {
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct GeneratedTopology {
  std::string name;             ///< e.g. "pl8", "ft4", "isp32"
  std::size_t routers = 0;      ///< router indices are [0, routers)
  std::vector<GenLink> links;   ///< duplex, between routers
  std::vector<std::uint32_t> sources;  ///< routers where flows may enter
  std::vector<std::uint32_t> sinks;    ///< routers where flows may exit
  /// Indices into `links` of the designated bottleneck links — the ones
  /// the runner samples queue lengths on, records drop times for and
  /// exposes to the telemetry instrument hook (the generated analogue
  /// of the paper topology's three congested core links).
  std::vector<std::size_t> bottlenecks;
  TopologyGenConfig cfg;

  /// FNV-1a over the complete structure — the golden-test witness that
  /// a generator is deterministic and unchanged.
  [[nodiscard]] std::uint64_t digest() const;

  /// True iff every router is reachable from router 0 over `links`.
  [[nodiscard]] bool connected() const;

  /// Bottleneck capacity in packets per second.
  [[nodiscard]] double capacity_pps() const {
    return cfg.core_rate.pps(cfg.packet_size);
  }
};

/// N-stage parking lot: routers 0..stages in a chain; every chain link
/// is a bottleneck.  Sources attach at routers 0..stages-1, sinks at
/// 1..stages, so generated flows mix long hauls with cross traffic
/// exactly like the paper's population does.  Requires stages >= 1.
[[nodiscard]] GeneratedTopology make_parking_lot(std::size_t stages,
                                                 TopologyGenConfig cfg = {});

/// k-ary fat tree (k even, >= 2): (k/2)^2 core routers, k pods of k/2
/// aggregation + k/2 edge routers each.  Sources and sinks attach at
/// the edge routers; the aggregation-core links are the bottlenecks.
[[nodiscard]] GeneratedTopology make_fat_tree(std::size_t k, TopologyGenConfig cfg = {});

/// Random ISP-like graph: a uniform random spanning tree over `routers`
/// nodes plus ~routers/3 extra chords, fully determined by `seed`.
/// Every router is both a source and a sink candidate; the bottlenecks
/// are the highest-connectivity tree links (both endpoints of degree
/// >= 3), falling back to the first tree links for tiny graphs.
/// Requires routers >= 2.
[[nodiscard]] GeneratedTopology make_isp(std::size_t routers, std::uint64_t seed,
                                         TopologyGenConfig cfg = {});

}  // namespace corelite::scenario

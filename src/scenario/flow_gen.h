// Deterministic flow-population generation for generated topologies.
//
// Produces the 1k/10k/100k-flow populations of the scaling axis: each
// flow gets endpoints drawn from the topology's source/sink attach
// routers, a weight from a repeating cycle, a Poisson arrival time, a
// bounded-Pareto on-duration (heavy-tailed "flow sizes" expressed in
// time at the flow's nominal rate) and, in churn mode, an exponential
// off-gap before it restarts — up to max_windows activity windows, all
// satisfying net::valid_activity_windows.
//
// generate_flows is a pure function of (topology, config, duration,
// seed): identical arguments yield byte-identical populations on every
// platform and thread, which is what lets sweep workers regenerate the
// workload independently and still produce bit-identical run digests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "scenario/topology_gen.h"

namespace corelite::scenario {

struct FlowGenConfig {
  std::size_t num_flows = 1000;
  /// weights cycle over this list by flow index (never empty).
  std::vector<double> weight_cycle{1.0, 2.0, 3.0};

  /// Poisson arrival process: successive flow start times are separated
  /// by exponential gaps with this mean.
  double mean_arrival_gap_sec = 0.02;

  /// Arrivals wrap into the first arrival_span_frac of the run.  The
  /// default matches the historical hard-coded 0.8 (bit-identical
  /// populations); steady-state workloads ("-steady" scenario names)
  /// compress it so the run is one long converged phase after a short
  /// ramp — the regime the fluid fast-forward engine exploits.
  double arrival_span_frac = 0.8;

  /// Bounded-Pareto on-duration (seconds): heavy-tailed, truncated to
  /// [on_min_sec, on_max_sec].
  double pareto_alpha = 1.3;
  double on_min_sec = 5.0;
  double on_max_sec = 200.0;

  /// Churn: after each on-period the flow pauses for an exponential gap
  /// with this mean, then restarts — until duration or max_windows.
  bool churn = true;
  double mean_off_sec = 5.0;
  std::size_t max_windows = 4;

  /// Record per-epoch rate / cumulative series in the FlowTracker.
  /// Disable for very large populations (the 100k-flow bench rows):
  /// counters, weights and the run digest remain exact.
  bool record_series = true;
};

/// One generated flow: endpoints are ROUTER indices into the topology
/// (the runner maps them to the per-router attach nodes it builds).
struct GenFlow {
  net::FlowId id = 0;  ///< 1-based, dense
  std::uint32_t src_router = 0;
  std::uint32_t dst_router = 0;
  double weight = 1.0;
  std::vector<net::ActiveInterval> windows;  ///< valid_activity_windows holds
};

/// Deterministically generate the population.  src != dst for every
/// flow; every window list is non-empty, time-ordered and disjoint.
[[nodiscard]] std::vector<GenFlow> generate_flows(const GeneratedTopology& topo,
                                                  const FlowGenConfig& cfg,
                                                  double duration_sec, std::uint64_t seed);

/// FNV-1a over the full population — determinism witness for goldens.
[[nodiscard]] std::uint64_t flows_digest(const std::vector<GenFlow>& flows);

/// A generated workload: topology family instance + flow population
/// parameters.  Carried inside ScenarioSpec (see scenario.h); the flow
/// population itself is regenerated at run time from the run's seed.
struct GeneratedWorkload {
  GeneratedTopology topology;
  FlowGenConfig flows;
};

}  // namespace corelite::scenario

// Fairness metrics and the weighted max-min reference allocator.
//
// The water-filling allocator is the oracle for every "expected rate"
// the paper quotes (33.33 / 25 pkt/s per unit weight, etc.): given link
// capacities and each flow's weight + path, it computes the exact
// weighted max-min fair allocation that Corelite is supposed to
// converge to.
#pragma once

#include <cstddef>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/types.h"

namespace corelite::stats {

/// Jain's fairness index over already-normalized allocations x_i
/// (i.e. rate_i / weight_i).  1.0 = perfectly fair; 1/n = maximally unfair.
[[nodiscard]] double jain_index(std::span<const double> normalized);

/// Convenience overload normalizing rates by weights first.
[[nodiscard]] double jain_index(std::span<const double> rates, std::span<const double> weights);

/// A flow as seen by the reference allocator: its weight and the indices
/// (into the capacity vector) of the links it traverses.
struct MaxMinFlow {
  net::FlowId id = net::kInvalidFlow;
  double weight = 1.0;
  std::vector<std::size_t> links;
};

/// Weighted max-min fair allocation by progressive water-filling.
///
/// Repeatedly finds the most constrained link (smallest remaining
/// capacity per unit of unfrozen weight), freezes every unfrozen flow
/// crossing it at `weight x share`, and subtracts the frozen bandwidth
/// from every link those flows traverse.  O(iterations x links x flows),
/// exact for the small topologies used here.
///
/// Returns flow id -> allocated rate, in the same capacity units given.
[[nodiscard]] std::unordered_map<net::FlowId, double> weighted_max_min(
    const std::vector<double>& link_capacities, const std::vector<MaxMinFlow>& flows);

}  // namespace corelite::stats

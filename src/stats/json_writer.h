// Minimal JSON emission for run results (no third-party dependency).
//
// `corelite_sim --json out.json` and programmatic users get a
// machine-readable summary of a run: per-flow counters, steady-state
// averages, delay statistics, and global accounting — the glue for
// external tooling (plotting pipelines, CI dashboards).
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "stats/flow_tracker.h"

namespace corelite::stats {

/// Escape a string for inclusion in a JSON document.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Serialize a numeric value, mapping non-finite doubles to null.
[[nodiscard]] std::string json_number(double v);

struct RunSummaryJson {
  std::string scenario;
  std::string mechanism;
  double duration_sec = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t events = 0;
  std::uint64_t total_drops = 0;
  /// Steady-state window for averaged quantities.
  double window_start = 0.0;
  double window_end = 0.0;
};

/// Emit `{meta..., "flows": [{...}, ...]}` for every flow the tracker
/// knows, averaging rates over [window_start, window_end].
void write_run_json(std::ostream& os, const RunSummaryJson& meta, const FlowTracker& tracker);

}  // namespace corelite::stats

#include "stats/time_series.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace corelite::stats {

double TimeSeries::value_at(double t) const {
  if (points_.empty() || t < points_.front().t) return 0.0;
  // Last point with time <= t.
  auto it = std::upper_bound(points_.begin(), points_.end(), t,
                             [](double x, const Point& p) { return x < p.t; });
  return std::prev(it)->v;
}

double TimeSeries::average_over(double t0, double t1) const {
  if (t1 <= t0 || points_.empty()) return 0.0;
  double integral = 0.0;
  double cur_t = t0;
  double cur_v = value_at(t0);
  // Samples are time-ordered (enforced by add), so jump straight to the
  // first point inside (t0, t1) instead of scanning from the beginning —
  // windowed queries over long runs were quadratic otherwise.
  auto it = std::upper_bound(points_.begin(), points_.end(), t0,
                             [](double x, const Point& p) { return x < p.t; });
  for (; it != points_.end() && it->t < t1; ++it) {
    integral += cur_v * (it->t - cur_t);
    cur_t = it->t;
    cur_v = it->v;
  }
  integral += cur_v * (t1 - cur_t);
  return integral / (t1 - t0);
}

double TimeSeries::min_over(double t0, double t1) const {
  if (t1 < t0 || points_.empty()) return 0.0;
  // Seed with the value carried into the window (the step function's
  // value at t0, like average_over): a window containing no sample
  // points still has a value across it, not 0.
  double m = value_at(t0);
  auto it = std::upper_bound(points_.begin(), points_.end(), t0,
                             [](double x, const Point& p) { return x < p.t; });
  for (; it != points_.end() && it->t <= t1; ++it) m = std::min(m, it->v);
  return m;
}

double TimeSeries::max_over(double t0, double t1) const {
  if (t1 < t0 || points_.empty()) return 0.0;
  double m = value_at(t0);
  auto it = std::upper_bound(points_.begin(), points_.end(), t0,
                             [](double x, const Point& p) { return x < p.t; });
  for (; it != points_.end() && it->t <= t1; ++it) m = std::max(m, it->v);
  return m;
}

}  // namespace corelite::stats

// Cross-run aggregation for scenario sweeps.
//
// A sweep executes many independent runs (seed × parameter grid) on
// worker threads and needs their metrics folded into per-cell summary
// statistics — mean, stddev and a confidence interval across repeats —
// without the aggregate depending on which worker finished first.
//
// SweepAggregator is the thread-safe collection point: workers add
// (cell, run_index, metric, value) samples under a mutex; snapshot()
// replays the samples in run_index order before folding them, so the
// emitted statistics are bit-identical no matter how the threads
// interleaved.  write_sweep_json/write_sweep_csv feed the snapshot into
// the same JSON/CSV conventions the single-run writers use.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace corelite::stats {

/// Streaming mean/variance (Welford's algorithm) plus extrema.
class Accumulator {
 public:
  void add(double x);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  [[nodiscard]] double stddev() const;
  /// Half-width of the 95% confidence interval on the mean (normal
  /// approximation, 1.96 * stddev / sqrt(n)); 0 for n < 2.
  [[nodiscard]] double ci95_half_width() const;
  [[nodiscard]] double min() const { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Thread-safe sweep-metric collector (see file comment).
class SweepAggregator {
 public:
  struct Metric {
    std::string name;
    Accumulator acc;
  };
  struct Cell {
    std::string name;
    std::vector<Metric> metrics;  ///< sorted by metric name
  };

  /// Record one metric value of run `run_index` into cell `cell`.
  /// Callable from any thread.
  void add(std::string_view cell, std::uint64_t run_index, std::string_view metric,
           double value);

  /// Fold every recorded sample, in (run_index, insertion) order, into
  /// per-cell accumulators.  Cells and metrics come back sorted by
  /// name, so the result is independent of thread scheduling.
  [[nodiscard]] std::vector<Cell> snapshot() const;

 private:
  struct Sample {
    std::uint64_t run_index;
    double value;
  };
  mutable std::mutex mu_;
  std::map<std::string, std::map<std::string, std::vector<Sample>>> cells_;
};

/// Sweep-level metadata for the JSON summary.  Deliberately excludes
/// wall-clock timing and worker count: the document must be
/// byte-identical between serial and parallel executions of the same
/// grid (the determinism contract tests assert on).
struct SweepMetaJson {
  std::string title;
  std::size_t runs = 0;
  std::size_t repeats = 0;
  std::uint64_t base_seed = 0;
};

/// Emit `{meta..., "cells": [{name, metrics: [{name, n, mean, stddev,
/// ci95, min, max}]}]}`.
void write_sweep_json(std::ostream& os, const SweepMetaJson& meta,
                      const std::vector<SweepAggregator::Cell>& cells);

/// Long-format CSV: cell,metric,n,mean,stddev,ci95,min,max.
void write_sweep_csv(std::ostream& os, const std::vector<SweepAggregator::Cell>& cells);

}  // namespace corelite::stats

#include "stats/aggregate.h"

#include <algorithm>
#include <cmath>

#include "stats/json_writer.h"

namespace corelite::stats {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::stddev() const {
  if (n_ < 2) return 0.0;
  return std::sqrt(m2_ / static_cast<double>(n_ - 1));
}

double Accumulator::ci95_half_width() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void SweepAggregator::add(std::string_view cell, std::uint64_t run_index,
                          std::string_view metric, double value) {
  const std::lock_guard<std::mutex> lock{mu_};
  cells_[std::string{cell}][std::string{metric}].push_back({run_index, value});
}

std::vector<SweepAggregator::Cell> SweepAggregator::snapshot() const {
  const std::lock_guard<std::mutex> lock{mu_};
  std::vector<Cell> out;
  out.reserve(cells_.size());
  for (const auto& [cell_name, metrics] : cells_) {
    Cell cell;
    cell.name = cell_name;
    for (const auto& [metric_name, samples] : metrics) {
      // Replay in run order: Welford folds are order-sensitive in the
      // low bits, and workers record in completion order.
      std::vector<Sample> ordered = samples;
      std::stable_sort(ordered.begin(), ordered.end(),
                       [](const Sample& a, const Sample& b) { return a.run_index < b.run_index; });
      Metric m;
      m.name = metric_name;
      for (const Sample& s : ordered) m.acc.add(s.value);
      cell.metrics.push_back(std::move(m));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

namespace {

void write_metric_json(std::ostream& os, const SweepAggregator::Metric& m) {
  os << "{\"name\": \"" << json_escape(m.name) << "\", \"n\": " << m.acc.count()
     << ", \"mean\": " << json_number(m.acc.mean()) << ", \"stddev\": "
     << json_number(m.acc.stddev()) << ", \"ci95\": " << json_number(m.acc.ci95_half_width())
     << ", \"min\": " << json_number(m.acc.min()) << ", \"max\": " << json_number(m.acc.max())
     << "}";
}

}  // namespace

void write_sweep_json(std::ostream& os, const SweepMetaJson& meta,
                      const std::vector<SweepAggregator::Cell>& cells) {
  os << "{\n"
     << "  \"title\": \"" << json_escape(meta.title) << "\",\n"
     << "  \"runs\": " << meta.runs << ",\n"
     << "  \"repeats\": " << meta.repeats << ",\n"
     << "  \"base_seed\": " << meta.base_seed << ",\n"
     << "  \"cells\": [\n";
  bool first_cell = true;
  for (const auto& cell : cells) {
    if (!first_cell) os << ",\n";
    first_cell = false;
    os << "    {\"name\": \"" << json_escape(cell.name) << "\", \"metrics\": [\n";
    bool first_metric = true;
    for (const auto& m : cell.metrics) {
      if (!first_metric) os << ",\n";
      first_metric = false;
      os << "      ";
      write_metric_json(os, m);
    }
    os << "\n    ]}";
  }
  os << "\n  ]\n}\n";
}

void write_sweep_csv(std::ostream& os, const std::vector<SweepAggregator::Cell>& cells) {
  os << "cell,metric,n,mean,stddev,ci95,min,max\n";
  for (const auto& cell : cells) {
    for (const auto& m : cell.metrics) {
      os << cell.name << ',' << m.name << ',' << m.acc.count() << ',' << json_number(m.acc.mean())
         << ',' << json_number(m.acc.stddev()) << ',' << json_number(m.acc.ci95_half_width())
         << ',' << json_number(m.acc.min()) << ',' << json_number(m.acc.max()) << '\n';
    }
  }
}

}  // namespace corelite::stats

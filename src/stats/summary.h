// Descriptive statistics and convergence detection helpers shared by
// the benches, tests and tools.
#pragma once

#include <cstddef>
#include <span>

#include "stats/time_series.h"

namespace corelite::stats {

struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Descriptive statistics of a sample (percentiles by linear
/// interpolation on the sorted sample).  Empty input -> all zeros.
[[nodiscard]] Summary summarize(std::span<const double> values);

/// Percentile (0..100) of a sample by linear interpolation.
[[nodiscard]] double percentile(std::span<const double> values, double p);

/// Earliest time after which every sliding 2 s average of `series`
/// stays within rel_tol * target + abs_tol of `target` until `t_end`.
/// Returns t_end when the series never settles.  (This is the
/// convergence-time definition used throughout EXPERIMENTS.md.)
[[nodiscard]] double convergence_time(const TimeSeries& series, double target, double t_end,
                                      double rel_tol = 0.3, double abs_tol = 3.0);

}  // namespace corelite::stats

// Per-flow measurement collection.
//
// Tracks exactly what the paper's figures plot:
//   - "Alloted rate": the edge router's allowed transmission rate b_g(f),
//     recorded every adaptation epoch (Figures 3, 5-10).
//   - "Cumulative service": data packets delivered at the egress,
//     sampled periodically (Figure 4).
// Plus drop and delivery counters used in the comparisons.
//
// Storage is scale-friendly: FlowSeries live in a deque (address-stable
// slabs, no per-flow tree node), per-packet counter bumps go through a
// dense id-indexed pointer table, and iteration (all(), totals,
// sample_cumulative) walks a sorted id vector — 100k-flow populations
// pay array walks, not red-black-tree traversals.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "net/types.h"
#include "sim/units.h"
#include "stats/time_series.h"

namespace corelite::stats {

struct FlowSeries {
  double weight = 1.0;
  TimeSeries allotted_rate;        ///< b_g(f) in packets/s vs time
  TimeSeries cumulative_delivered; ///< total data packets delivered vs time
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sent = 0;
  std::uint64_t feedback_received = 0;  ///< Corelite markers / CSFQ loss notices

  /// One-way delay samples (seconds), subsampled to bound memory:
  /// every `kDelaySampleStride`-th delivered packet contributes.
  std::vector<double> delay_samples;
};

class FlowTracker {
 public:
  /// Counters-only mode for very large populations: rate and cumulative
  /// samples are not stored (a 100k-flow run would otherwise append one
  /// point per flow per adaptation epoch).  Per-packet counters, weights
  /// and delay samples are unaffected.  Flip before the run starts.
  void set_series_enabled(bool on) { series_enabled_ = on; }
  [[nodiscard]] bool series_enabled() const { return series_enabled_; }

  void declare_flow(net::FlowId id, double weight) { slot(id).weight = weight; }

  void record_rate(net::FlowId id, sim::SimTime t, double pps) {
    if (series_enabled_) slot(id).allotted_rate.add(t.sec(), pps);
  }
  /// Delay sampling stride: one sample per this many deliveries.
  static constexpr std::uint64_t kDelaySampleStride = 8;

  void on_sent(net::FlowId id) { ++slot(id).sent; }
  void on_delivered(net::FlowId id) { ++slot(id).delivered; }
  /// Delivery with a one-way delay measurement (emit -> egress).
  void on_delivered(net::FlowId id, sim::TimeDelta delay) {
    auto& fs = slot(id);
    ++fs.delivered;
    if (fs.delivered % kDelaySampleStride == 0) {
      if (fs.delay_samples.size() == fs.delay_samples.capacity()) {
        fs.delay_samples.reserve(fs.delay_samples.empty() ? 64
                                                          : fs.delay_samples.capacity() * 2);
      }
      fs.delay_samples.push_back(delay.sec());
    }
  }
  void on_dropped(net::FlowId id) { ++slot(id).dropped; }

  /// Fluid fast-forward synthesis: bulk-bump a flow's packet counters
  /// by whole packets in O(1), with no per-packet events behind them.
  /// No delay samples — the fluid model has no per-packet latencies.
  void add_synthesized(net::FlowId id, std::uint64_t delivered_n, std::uint64_t sent_n,
                       std::uint64_t dropped_n) {
    auto& fs = slot(id);
    fs.delivered += delivered_n;
    fs.sent += sent_n;
    fs.dropped += dropped_n;
  }
  void on_feedback(net::FlowId id, std::uint64_t count = 1) {
    slot(id).feedback_received += count;
  }

  /// Snapshot every flow's cumulative delivery counter at time t.
  void sample_cumulative(sim::SimTime t) {
    if (!series_enabled_) return;
    for (net::FlowId id : ids_) {
      auto& fs = *index_[id];
      fs.cumulative_delivered.add(t.sec(), static_cast<double>(fs.delivered));
    }
  }

  /// Subset variant for the parallel engine: each LP samples only the
  /// flows whose egress it owns (the single writer of their `delivered`
  /// counters), so concurrent LP samplers never touch the same series.
  /// Flows must have been declared up front (they are — add_flow runs
  /// at setup); ids outside the tracker are a bug, not a lazy insert.
  void sample_cumulative(sim::SimTime t, std::span<const net::FlowId> subset) {
    if (!series_enabled_) return;
    for (net::FlowId id : subset) {
      auto& fs = *index_[id];
      fs.cumulative_delivered.add(t.sec(), static_cast<double>(fs.delivered));
    }
  }

  [[nodiscard]] const FlowSeries& series(net::FlowId id) const {
    if (!has(id)) throw std::out_of_range{"FlowTracker::series: unknown flow"};
    return *index_[id];
  }
  [[nodiscard]] bool has(net::FlowId id) const {
    return id < index_.size() && index_[id] != nullptr;
  }
  [[nodiscard]] std::size_t flow_count() const { return ids_.size(); }

  /// Id-ordered iteration view; yields (FlowId, const FlowSeries&)
  /// pairs, so range-for structured bindings read like the std::map
  /// this replaces.
  class ConstView {
   public:
    class iterator {
     public:
      iterator(const FlowTracker* t, std::size_t i) : t_{t}, i_{i} {}
      [[nodiscard]] std::pair<net::FlowId, const FlowSeries&> operator*() const {
        const net::FlowId id = t_->ids_[i_];
        return {id, *t_->index_[id]};
      }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      [[nodiscard]] bool operator!=(const iterator& o) const { return i_ != o.i_; }
      [[nodiscard]] bool operator==(const iterator& o) const { return i_ == o.i_; }

     private:
      const FlowTracker* t_;
      std::size_t i_;
    };
    explicit ConstView(const FlowTracker* t) : t_{t} {}
    [[nodiscard]] iterator begin() const { return {t_, 0}; }
    [[nodiscard]] iterator end() const { return {t_, t_->ids_.size()}; }
    [[nodiscard]] std::size_t size() const { return t_->ids_.size(); }

   private:
    const FlowTracker* t_;
  };
  [[nodiscard]] ConstView all() const { return ConstView{this}; }

  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (net::FlowId id : ids_) n += index_[id]->dropped;
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (net::FlowId id : ids_) n += index_[id]->delivered;
    return n;
  }

 private:
  /// Flow ids are small and dense, and these counters are bumped for
  /// every packet of every flow, so lookups go through a flat pointer
  /// index.  The deque owns the series (address-stable, slab-allocated);
  /// ids_ stays sorted so all() keeps the map's id-ordered iteration.
  FlowSeries& slot(net::FlowId id) {
    if (id < index_.size() && index_[id] != nullptr) return *index_[id];
    storage_.emplace_back();
    FlowSeries* fs = &storage_.back();
    if (id >= index_.size()) index_.resize(id + 1, nullptr);
    index_[id] = fs;
    ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), id), id);
    return *fs;
  }

  std::deque<FlowSeries> storage_;
  std::vector<net::FlowId> ids_;       ///< sorted; iteration order of all()
  std::vector<FlowSeries*> index_;     ///< dense: id -> series
  bool series_enabled_ = true;
};

}  // namespace corelite::stats

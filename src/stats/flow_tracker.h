// Per-flow measurement collection.
//
// Tracks exactly what the paper's figures plot:
//   - "Alloted rate": the edge router's allowed transmission rate b_g(f),
//     recorded every adaptation epoch (Figures 3, 5-10).
//   - "Cumulative service": data packets delivered at the egress,
//     sampled periodically (Figure 4).
// Plus drop and delivery counters used in the comparisons.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "net/types.h"
#include "sim/units.h"
#include "stats/time_series.h"

namespace corelite::stats {

struct FlowSeries {
  double weight = 1.0;
  TimeSeries allotted_rate;        ///< b_g(f) in packets/s vs time
  TimeSeries cumulative_delivered; ///< total data packets delivered vs time
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t sent = 0;
  std::uint64_t feedback_received = 0;  ///< Corelite markers / CSFQ loss notices

  /// One-way delay samples (seconds), subsampled to bound memory:
  /// every `kDelaySampleStride`-th delivered packet contributes.
  std::vector<double> delay_samples;
};

class FlowTracker {
 public:
  void declare_flow(net::FlowId id, double weight) { slot(id).weight = weight; }

  void record_rate(net::FlowId id, sim::SimTime t, double pps) {
    slot(id).allotted_rate.add(t.sec(), pps);
  }
  /// Delay sampling stride: one sample per this many deliveries.
  static constexpr std::uint64_t kDelaySampleStride = 8;

  void on_sent(net::FlowId id) { ++slot(id).sent; }
  void on_delivered(net::FlowId id) { ++slot(id).delivered; }
  /// Delivery with a one-way delay measurement (emit -> egress).
  void on_delivered(net::FlowId id, sim::TimeDelta delay) {
    auto& fs = slot(id);
    ++fs.delivered;
    if (fs.delivered % kDelaySampleStride == 0) {
      if (fs.delay_samples.size() == fs.delay_samples.capacity()) {
        fs.delay_samples.reserve(fs.delay_samples.empty() ? 64
                                                          : fs.delay_samples.capacity() * 2);
      }
      fs.delay_samples.push_back(delay.sec());
    }
  }
  void on_dropped(net::FlowId id) { ++slot(id).dropped; }
  void on_feedback(net::FlowId id, std::uint64_t count = 1) {
    slot(id).feedback_received += count;
  }

  /// Snapshot every flow's cumulative delivery counter at time t.
  void sample_cumulative(sim::SimTime t) {
    for (auto& [id, fs] : flows_) {
      fs.cumulative_delivered.add(t.sec(), static_cast<double>(fs.delivered));
    }
  }

  [[nodiscard]] const FlowSeries& series(net::FlowId id) const { return flows_.at(id); }
  [[nodiscard]] bool has(net::FlowId id) const { return flows_.contains(id); }
  [[nodiscard]] const std::map<net::FlowId, FlowSeries>& all() const { return flows_; }

  [[nodiscard]] std::uint64_t total_dropped() const {
    std::uint64_t n = 0;
    for (const auto& [id, fs] : flows_) n += fs.dropped;
    return n;
  }
  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t n = 0;
    for (const auto& [id, fs] : flows_) n += fs.delivered;
    return n;
  }

 private:
  /// Flow ids are small and dense, and these counters are bumped for
  /// every packet of every flow, so lookups go through a flat pointer
  /// index instead of the tree.  The map stays the owner: its nodes are
  /// address-stable and `all()` keeps its sorted iteration order.
  FlowSeries& slot(net::FlowId id) {
    if (id < index_.size() && index_[id] != nullptr) return *index_[id];
    FlowSeries* fs = &flows_[id];
    if (id >= index_.size()) index_.resize(id + 1, nullptr);
    index_[id] = fs;
    return *fs;
  }

  std::map<net::FlowId, FlowSeries> flows_;
  std::vector<FlowSeries*> index_;
};

}  // namespace corelite::stats

#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace corelite::stats {

double percentile(std::span<const double> values, double p) {
  if (values.empty()) return 0.0;
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  if (values.empty()) return s;
  s.n = values.size();
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(s.n);
  double var = 0.0;
  for (double v : values) var += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(var / static_cast<double>(s.n));
  s.p50 = percentile(values, 50.0);
  s.p90 = percentile(values, 90.0);
  s.p99 = percentile(values, 99.0);
  return s;
}

double convergence_time(const TimeSeries& series, double target, double t_end, double rel_tol,
                        double abs_tol) {
  double t = t_end;
  while (t > 2.0) {
    const double got = series.average_over(t - 2.0, t);
    if (std::fabs(got - target) > rel_tol * target + abs_tol) break;
    t -= 2.0;
  }
  return t;
}

}  // namespace corelite::stats

#include "stats/fairness.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace corelite::stats {

double jain_index(std::span<const double> normalized) {
  if (normalized.empty()) return 1.0;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double x : normalized) {
    sum += x;
    sum_sq += x * x;
  }
  if (sum_sq == 0.0) return 1.0;
  const auto n = static_cast<double>(normalized.size());
  return (sum * sum) / (n * sum_sq);
}

double jain_index(std::span<const double> rates, std::span<const double> weights) {
  assert(rates.size() == weights.size());
  std::vector<double> normalized(rates.size());
  for (std::size_t i = 0; i < rates.size(); ++i) {
    assert(weights[i] > 0.0);
    normalized[i] = rates[i] / weights[i];
  }
  return jain_index(normalized);
}

std::unordered_map<net::FlowId, double> weighted_max_min(
    const std::vector<double>& link_capacities, const std::vector<MaxMinFlow>& flows) {
  std::vector<double> remaining = link_capacities;
  std::vector<bool> frozen(flows.size(), false);
  std::unordered_map<net::FlowId, double> alloc;
  alloc.reserve(flows.size());

  // Flows that traverse no link are unconstrained; report infinity is
  // unhelpful for callers, so freeze them at 0 by convention.
  for (std::size_t f = 0; f < flows.size(); ++f) {
    if (flows[f].links.empty()) {
      frozen[f] = true;
      alloc[flows[f].id] = 0.0;
    }
  }

  for (;;) {
    // Per-link sum of unfrozen weights.
    std::vector<double> live_weight(link_capacities.size(), 0.0);
    bool any_unfrozen = false;
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      any_unfrozen = true;
      for (std::size_t l : flows[f].links) {
        assert(l < live_weight.size());
        live_weight[l] += flows[f].weight;
      }
    }
    if (!any_unfrozen) break;

    // Most constrained link: smallest remaining capacity per unit weight.
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_link = link_capacities.size();
    for (std::size_t l = 0; l < link_capacities.size(); ++l) {
      if (live_weight[l] <= 0.0) continue;
      const double share = std::max(0.0, remaining[l]) / live_weight[l];
      if (share < best_share - 1e-12) {
        best_share = share;
        best_link = l;
      }
    }
    if (best_link == link_capacities.size()) {
      // No unfrozen flow crosses any link with live weight — should be
      // unreachable given the loop guard, but freeze defensively at 0.
      for (std::size_t f = 0; f < flows.size(); ++f) {
        if (!frozen[f]) {
          frozen[f] = true;
          alloc[flows[f].id] = 0.0;
        }
      }
      break;
    }

    // Freeze every unfrozen flow crossing the bottleneck.
    for (std::size_t f = 0; f < flows.size(); ++f) {
      if (frozen[f]) continue;
      if (std::find(flows[f].links.begin(), flows[f].links.end(), best_link) ==
          flows[f].links.end()) {
        continue;
      }
      const double rate = flows[f].weight * best_share;
      frozen[f] = true;
      alloc[flows[f].id] = rate;
      for (std::size_t l : flows[f].links) remaining[l] -= rate;
    }
  }
  return alloc;
}

}  // namespace corelite::stats

#include "stats/json_writer.h"

#include <cmath>
#include <cstdio>

#include "stats/summary.h"

namespace corelite::stats {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

void write_run_json(std::ostream& os, const RunSummaryJson& meta, const FlowTracker& tracker) {
  os << "{\n"
     << "  \"scenario\": \"" << json_escape(meta.scenario) << "\",\n"
     << "  \"mechanism\": \"" << json_escape(meta.mechanism) << "\",\n"
     << "  \"duration_sec\": " << json_number(meta.duration_sec) << ",\n"
     << "  \"seed\": " << meta.seed << ",\n"
     << "  \"events\": " << meta.events << ",\n"
     << "  \"total_drops\": " << meta.total_drops << ",\n"
     << "  \"window\": [" << json_number(meta.window_start) << ", "
     << json_number(meta.window_end) << "],\n"
     << "  \"flows\": [\n";
  bool first = true;
  for (const auto& [id, fs] : tracker.all()) {
    if (!first) os << ",\n";
    first = false;
    const double avg = fs.allotted_rate.average_over(meta.window_start, meta.window_end);
    const auto delay = summarize(fs.delay_samples);
    os << "    {\"id\": " << id << ", \"weight\": " << json_number(fs.weight)
       << ", \"avg_rate_pps\": " << json_number(avg) << ", \"sent\": " << fs.sent
       << ", \"delivered\": " << fs.delivered << ", \"dropped\": " << fs.dropped
       << ", \"feedback\": " << fs.feedback_received
       << ", \"delay_p50_ms\": " << json_number(delay.p50 * 1000.0)
       << ", \"delay_p99_ms\": " << json_number(delay.p99 * 1000.0) << "}";
  }
  os << "\n  ]\n}\n";
}

}  // namespace corelite::stats

// Append-only time series of (virtual time, value) samples.
//
// Values are interpreted as a right-continuous step function: the value
// at time t is the most recent sample at or before t.  This matches how
// the tracked quantities behave (allotted rate changes at epoch
// boundaries; cumulative counters jump at packet arrivals).
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "sim/hotpath.h"

namespace corelite::stats {

class TimeSeries {
 public:
  struct Point {
    double t;
    double v;
  };

  /// Append a sample.  Times must be non-decreasing.  Inline and
  /// pre-reserved: samples arrive once per adaptation epoch per flow —
  /// a per-packet-scale rate in big scenarios — so the append must not
  /// pay a call or repeated small regrowths.
  void add(double t, double v) {
    assert((points_.empty() || t >= points_.back().t) && "samples must be time-ordered");
    ++sim::hotpath_counters().series_appends;
    if (points_.size() == points_.capacity()) {
      points_.reserve(points_.empty() ? kFirstReserve : points_.capacity() * 2);
    }
    points_.push_back({t, v});
  }

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Step-function value at time t (0 before the first sample).
  [[nodiscard]] double value_at(double t) const;

  /// Value of the final sample (0 if empty).
  [[nodiscard]] double last_value() const { return points_.empty() ? 0.0 : points_.back().v; }

  /// Time-weighted mean of the step function over [t0, t1].
  [[nodiscard]] double average_over(double t0, double t1) const;

  /// Min / max of the step function over [t0, t1]: the value carried
  /// into the window at t0 plus every sample inside it.
  [[nodiscard]] double min_over(double t0, double t1) const;
  [[nodiscard]] double max_over(double t0, double t1) const;

 private:
  /// First allocation sized for a 60 s run's epoch samples (one slab
  /// instead of the vector's 1-2-4-... crawl).
  static constexpr std::size_t kFirstReserve = 64;

  std::vector<Point> points_;
};

}  // namespace corelite::stats

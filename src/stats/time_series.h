// Append-only time series of (virtual time, value) samples.
//
// Values are interpreted as a right-continuous step function: the value
// at time t is the most recent sample at or before t.  This matches how
// the tracked quantities behave (allotted rate changes at epoch
// boundaries; cumulative counters jump at packet arrivals).
#pragma once

#include <cstddef>
#include <vector>

namespace corelite::stats {

class TimeSeries {
 public:
  struct Point {
    double t;
    double v;
  };

  /// Append a sample.  Times must be non-decreasing.
  void add(double t, double v);

  [[nodiscard]] const std::vector<Point>& points() const { return points_; }
  [[nodiscard]] std::size_t size() const { return points_.size(); }
  [[nodiscard]] bool empty() const { return points_.empty(); }

  /// Step-function value at time t (0 before the first sample).
  [[nodiscard]] double value_at(double t) const;

  /// Value of the final sample (0 if empty).
  [[nodiscard]] double last_value() const { return points_.empty() ? 0.0 : points_.back().v; }

  /// Time-weighted mean of the step function over [t0, t1].
  [[nodiscard]] double average_over(double t0, double t1) const;

  /// Min / max of the step function over [t0, t1]: the value carried
  /// into the window at t0 plus every sample inside it.
  [[nodiscard]] double min_over(double t0, double t1) const;
  [[nodiscard]] double max_over(double t0, double t1) const;

 private:
  std::vector<Point> points_;
};

}  // namespace corelite::stats

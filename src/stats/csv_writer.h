// CSV / console table emission for experiment results.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "stats/time_series.h"

namespace corelite::stats {

/// Write a wide CSV: first column `t`, one column per named series,
/// resampled on a regular grid [t0, t1] with step dt (step-function
/// semantics, matching TimeSeries::value_at).
void write_csv(std::ostream& os, const std::map<std::string, const TimeSeries*>& series,
               double t0, double t1, double dt);

/// Render the same grid as a fixed-width console table (used by the
/// bench binaries to print the figure data the paper plots).
void write_table(std::ostream& os, const std::map<std::string, const TimeSeries*>& series,
                 double t0, double t1, double dt, int value_width = 9, int precision = 2);

}  // namespace corelite::stats

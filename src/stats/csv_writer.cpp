#include "stats/csv_writer.h"

#include <iomanip>

namespace corelite::stats {

void write_csv(std::ostream& os, const std::map<std::string, const TimeSeries*>& series,
               double t0, double t1, double dt) {
  os << "t";
  for (const auto& [name, ts] : series) os << "," << name;
  os << "\n";
  for (double t = t0; t <= t1 + 1e-9; t += dt) {
    os << t;
    for (const auto& [name, ts] : series) os << "," << ts->value_at(t);
    os << "\n";
  }
}

void write_table(std::ostream& os, const std::map<std::string, const TimeSeries*>& series,
                 double t0, double t1, double dt, int value_width, int precision) {
  const auto old_flags = os.flags();
  const auto old_prec = os.precision();
  os << std::fixed << std::setprecision(precision);
  os << std::setw(8) << "t";
  for (const auto& [name, ts] : series) os << std::setw(value_width) << name;
  os << "\n";
  for (double t = t0; t <= t1 + 1e-9; t += dt) {
    os << std::setw(8) << t;
    for (const auto& [name, ts] : series) os << std::setw(value_width) << ts->value_at(t);
    os << "\n";
  }
  os.flags(old_flags);
  os.precision(old_prec);
}

}  // namespace corelite::stats

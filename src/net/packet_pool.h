// A free-list recycler for in-flight packets.
//
// While a packet is being serialized onto a link or propagating towards
// the next hop, it lives inside a scheduled event.  Allocating a fresh
// heap packet for each of those handoffs costs two allocations per hop
// — the dominant cost of million-event runs.  The pool hands out slots
// from chunked storage and recycles them through a free list, so the
// steady-state forwarding path performs zero heap allocations per hop.
//
// Single-threaded, like the simulation it serves.  Packets are plain
// value types (no owned heap memory), so recycling a slot is just
// overwriting it.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "net/packet.h"

namespace corelite::net {

class PacketPool {
 public:
  PacketPool() = default;
  PacketPool(const PacketPool&) = delete;
  PacketPool& operator=(const PacketPool&) = delete;

  /// Borrow a packet slot.  Contents are unspecified (a recycled slot
  /// keeps its previous values) — the caller assigns before use.
  [[nodiscard]] Packet* acquire() {
    if (free_.empty()) grow();
    Packet* p = free_.back();
    free_.pop_back();
    ++outstanding_;
    return p;
  }

  /// Return a slot obtained from acquire().
  void release(Packet* p) {
    assert(p != nullptr);
    --outstanding_;
    free_.push_back(p);
  }

  /// Slots currently lent out.
  [[nodiscard]] std::size_t outstanding() const { return outstanding_; }

  /// Total slots ever materialized (high-water mark of concurrent use,
  /// rounded up to the chunk size).
  [[nodiscard]] std::size_t capacity() const { return chunks_.size() * kChunkPackets; }

 private:
  static constexpr std::size_t kChunkPackets = 64;

  void grow() {
    chunks_.push_back(std::make_unique<Packet[]>(kChunkPackets));
    Packet* base = chunks_.back().get();
    for (std::size_t i = 0; i < kChunkPackets; ++i) free_.push_back(base + i);
  }

  std::vector<std::unique_ptr<Packet[]>> chunks_;
  std::vector<Packet*> free_;
  std::size_t outstanding_ = 0;
};

/// Move-only RAII loan of a pool slot; releases it on destruction.
///
/// The loan holds a raw pool pointer — no per-hop refcount traffic.
/// Lifetime contract: whoever creates the pool guarantees it outlives
/// every loan.  `Network` does this by registering its pool with
/// `Simulator::retain()`, whose keep-alives are destroyed after the
/// event queue — so loans still pending inside events at teardown
/// always release into live memory.
class PooledPacket {
 public:
  PooledPacket() = default;
  explicit PooledPacket(PacketPool& pool) : pool_{&pool}, p_{pool.acquire()} {}

  PooledPacket(PooledPacket&& other) noexcept : pool_{other.pool_}, p_{other.p_} {
    other.p_ = nullptr;
  }

  PooledPacket& operator=(PooledPacket&& other) noexcept {
    if (this != &other) {
      if (p_ != nullptr) pool_->release(p_);
      pool_ = other.pool_;
      p_ = other.p_;
      other.p_ = nullptr;
    }
    return *this;
  }

  PooledPacket(const PooledPacket&) = delete;
  PooledPacket& operator=(const PooledPacket&) = delete;

  ~PooledPacket() {
    if (p_ != nullptr) pool_->release(p_);
  }

  [[nodiscard]] Packet& operator*() const { return *p_; }
  [[nodiscard]] Packet* operator->() const { return p_; }
  [[nodiscard]] Packet* get() const { return p_; }
  explicit operator bool() const { return p_ != nullptr; }

 private:
  PacketPool* pool_ = nullptr;
  Packet* p_ = nullptr;
};

}  // namespace corelite::net

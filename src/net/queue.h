// Output-queue disciplines for links.
//
// DropTailQueue is the discipline used by every experiment in the paper
// (ns-2 default).  RedQueue implements classic RED (Floyd & Jacobson 93),
// which the paper discusses as related work; it serves as an extra
// baseline in the ablation benches.
//
// Queue capacity counts DATA packets only.  Control packets (markers,
// feedback, loss notices) are zero-size piggybacked headers: they are
// always accepted and never counted against capacity (see packet.h).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "net/packet.h"
#include "net/ring_buffer.h"
#include "sim/random.h"
#include "sim/units.h"

namespace corelite::net {

class PacketQueue {
 public:
  virtual ~PacketQueue() = default;

  /// Attempt to enqueue.  Returns false if the packet was dropped.
  /// Contract: on rejection the packet is left INTACT (implementations
  /// decide before moving from `p`), so the caller can notify drop
  /// observers from `p` without keeping a defensive copy.
  [[nodiscard]] virtual bool enqueue(Packet&& p, sim::SimTime now) = 0;

  /// Invoked for packets the queue drops *after* having accepted them
  /// (e.g. WFQ evicting the longest backlog to admit a new arrival).
  /// The owning Link registers here so observers and statistics see
  /// internal drops exactly like rejected arrivals.
  using InternalDropFn = std::function<void(const Packet&)>;
  void set_internal_drop_callback(InternalDropFn fn) { internal_drop_ = std::move(fn); }

  /// Remove and return the head-of-line packet, or nullopt if empty.
  [[nodiscard]] virtual std::optional<Packet> dequeue(sim::SimTime now) = 0;

  /// Move the head-of-line packet directly into `out`; returns false if
  /// empty.  Semantically identical to dequeue() — the hot FIFO
  /// disciplines override it so the per-hop path moves each packet once
  /// (queue slot -> transmission slot) instead of through an optional.
  [[nodiscard]] virtual bool dequeue_into(Packet& out, sim::SimTime now) {
    auto p = dequeue(now);
    if (!p) return false;
    out = std::move(*p);
    return true;
  }

  /// Number of data packets currently queued (capacity metric and the
  /// quantity Corelite's congestion estimator averages).  Non-virtual:
  /// every discipline maintains the shared counter below, and the link
  /// reads it after every data enqueue/dequeue — a virtual call here
  /// costs an indirect branch on the per-packet path for a value that
  /// is a plain load in all implementations.
  [[nodiscard]] std::size_t data_packet_count() const { return data_count_; }

  [[nodiscard]] virtual bool empty() const = 0;

  /// Number of flow-keyed state entries the discipline currently holds —
  /// the quantity the paper's scalability argument is about.  Stateless
  /// disciplines (drop-tail, RED, CHOKe) hold none; WFQ and FRED report
  /// their per-flow tables.
  [[nodiscard]] virtual std::size_t flow_state_entries() const { return 0; }

 protected:
  void notify_internal_drop(const Packet& p) {
    if (internal_drop_) internal_drop_(p);
  }

  /// Data packets currently queued; disciplines keep it current on
  /// every data enqueue/dequeue/internal drop.
  std::size_t data_count_ = 0;

 private:
  InternalDropFn internal_drop_;
};

/// FIFO with a fixed data-packet capacity.
class DropTailQueue final : public PacketQueue {
 public:
  explicit DropTailQueue(std::size_t capacity_data_packets)
      : capacity_{capacity_data_packets} {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool dequeue_into(Packet& out, sim::SimTime now) override;
  [[nodiscard]] bool empty() const override { return q_.empty(); }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  std::size_t capacity_;
  RingBuffer<Packet> q_;
};

/// Classic RED (random early detection) gateway.
///
/// Exponentially weighted moving average of the data queue length with
/// idle-time compensation; drop probability ramps linearly between
/// min_thresh and max_thresh, with the standard 1/(1 - count*p) spreading.
class RedQueue final : public PacketQueue {
 public:
  struct Config {
    std::size_t capacity_data_packets = 40;
    double min_thresh = 5.0;
    double max_thresh = 15.0;
    double max_drop_prob = 0.1;
    double ewma_weight = 0.002;
    /// Estimated packet service time, used to age the average across idle
    /// periods (Floyd & Jacobson §4, "m" packets could have been sent).
    sim::TimeDelta typical_service_time = sim::TimeDelta::millis(2);
  };

  RedQueue(Config cfg, sim::Rng& rng) : cfg_{cfg}, rng_{&rng} {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool dequeue_into(Packet& out, sim::SimTime now) override;
  [[nodiscard]] bool empty() const override { return q_.empty(); }

  [[nodiscard]] double average_queue() const { return avg_; }

 private:
  void age_average(sim::SimTime now);

  Config cfg_;
  sim::Rng* rng_;
  RingBuffer<Packet> q_;
  double avg_ = 0.0;
  std::int64_t count_since_drop_ = -1;
  sim::SimTime idle_since_ = sim::SimTime::zero();
  bool idle_ = true;
};

}  // namespace corelite::net

#include "net/sfq_queue.h"

#include <utility>

namespace corelite::net {

bool SfqQueue::enqueue(Packet&& p, sim::SimTime /*now*/) {
  if (!p.is_data()) {
    control_.push_back(std::move(p));
    return true;
  }
  auto& band = queues_[band_of(p.flow)];
  if (band.size() >= per_band_) return false;  // per-band tail drop
  band.push_back(std::move(p));
  ++data_count_;
  return true;
}

std::optional<Packet> SfqQueue::dequeue(sim::SimTime /*now*/) {
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    return p;
  }
  if (data_count_ == 0) return std::nullopt;
  // Round-robin over non-empty bands.
  for (std::size_t step = 0; step < bands_; ++step) {
    auto& band = queues_[next_band_];
    next_band_ = (next_band_ + 1) % bands_;
    if (!band.empty()) {
      Packet p = std::move(band.front());
      band.pop_front();
      --data_count_;
      return p;
    }
  }
  return std::nullopt;  // unreachable while data_count_ > 0
}

bool SfqQueue::empty() const { return data_count_ == 0 && control_.empty(); }

}  // namespace corelite::net

// A growable circular FIFO.
//
// std::deque allocates and frees a storage block every few dozen
// elements as a FIFO cycles through it, which puts allocator traffic on
// every packet's path through every queue.  This ring buffer reaches a
// high-water capacity once and then cycles allocation-free; capacity is
// a power of two so the index wrap is a mask, not a division.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace corelite::net {

template <class T>
class RingBuffer {
 public:
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  void push_back(T&& v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_];
  }

  void pop_front() {
    assert(size_ > 0);
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    // Reset the live range, not just the indices: moved-in elements
    // would otherwise stay alive in their slots, so a cleared queue
    // silently retains stale state — and a resource-owning T would hold
    // its resource until the slot happens to be overwritten.
    for (std::size_t i = 0; i < size_; ++i) buf_[(head_ + i) & mask_] = T{};
    head_ = 0;
    size_ = 0;
  }

  /// Element i positions from the front (0 = front).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & mask_];
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 16 : buf_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) next[i] = std::move(buf_[(head_ + i) & mask_]);
    buf_ = std::move(next);
    head_ = 0;
    mask_ = cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace corelite::net

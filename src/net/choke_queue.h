// CHOKe — CHOose and Keep for responsive flows, CHOose and Kill for
// unresponsive flows (Pan, Prabhakar & Psounis, INFOCOM 2000).
//
// A contemporary of Corelite with the same goal — approximate fair
// bandwidth sharing with NO per-flow state — and a radically different
// mechanism: on arrival during congestion, compare the packet against a
// RANDOMLY CHOSEN queued packet; if they belong to the same flow, drop
// BOTH.  A flow occupying a fraction p of the buffer suffers matches at
// rate ~p, so heavy flows police themselves.  Included as a baseline so
// the marker-feedback approach can be compared against stateless AQM
// (bench/ablation_selector).
//
// Implemented on a RED base (as in the paper): below min_thresh accept,
// between the thresholds run the CHOKe match then RED's probabilistic
// drop, above max_thresh run the match then drop.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>

#include "net/queue.h"
#include "sim/random.h"

namespace corelite::net {

class ChokeQueue final : public PacketQueue {
 public:
  struct Config {
    std::size_t capacity_data_packets = 40;
    double min_thresh = 5.0;
    double max_thresh = 15.0;
    double max_drop_prob = 0.1;
    double ewma_weight = 0.002;
    sim::TimeDelta typical_service_time = sim::TimeDelta::millis(2);
  };

  ChokeQueue(Config cfg, sim::Rng& rng) : cfg_{cfg}, rng_{&rng} {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool empty() const override { return q_.empty(); }

  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] std::uint64_t choke_matches() const { return matches_; }

 private:
  void age_average(sim::SimTime now);
  /// Draw a random queued DATA packet; if it shares the arrival's flow,
  /// drop it (notifying) and report a match.
  bool choke_match_and_kill(const Packet& arrival);

  Config cfg_;
  sim::Rng* rng_;
  std::deque<Packet> q_;
  double avg_ = 0.0;
  std::int64_t count_since_drop_ = -1;
  sim::SimTime idle_since_ = sim::SimTime::zero();
  bool idle_ = true;
  std::uint64_t matches_ = 0;
};

}  // namespace corelite::net

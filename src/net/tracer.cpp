#include "net/tracer.h"

#include <cstdio>

namespace corelite::net {

char trace_event_code(TraceEvent e) {
  switch (e) {
    case TraceEvent::Enqueue: return '+';
    case TraceEvent::Dequeue: return '-';
    case TraceEvent::Drop: return 'd';
  }
  return '?';
}

std::string_view packet_kind_name(PacketKind k) {
  switch (k) {
    case PacketKind::Data: return "data";
    case PacketKind::Marker: return "marker";
    case PacketKind::Feedback: return "feedback";
    case PacketKind::LossNotice: return "loss";
    case PacketKind::Ack: return "ack";
  }
  return "unknown";
}

std::string format_trace_record(const TraceRecord& r) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "t=%.6f %c %u->%u %s f=%u uid=%llu size=%lld q=%zu", r.t,
                trace_event_code(r.event), r.from, r.to,
                std::string(packet_kind_name(r.kind)).c_str(), r.flow,
                static_cast<unsigned long long>(r.uid), static_cast<long long>(r.size_bytes),
                r.queue_len);
  return buf;
}

void PacketTracer::attach(Link& link) {
  auto shim = std::make_unique<LinkShim>();
  shim->owner = this;
  shim->link = &link;
  link.add_observer(shim.get(),
                    Link::kObserveEnqueue | Link::kObserveDequeue | Link::kObserveDrop);
  shims_.push_back(std::move(shim));
}

void PacketTracer::record(TraceEvent e, const Packet& p, sim::SimTime now, const Link& link) {
  if (flow_filter_ != kInvalidFlow && p.flow != flow_filter_) return;
  if (kind_filter_.has_value() && p.kind != *kind_filter_) return;
  ++total_;
  TraceRecord r;
  r.t = now.sec();
  r.event = e;
  r.from = link.from();
  r.to = link.to();
  r.kind = p.kind;
  r.flow = p.flow;
  r.uid = p.uid;
  r.size_bytes = p.size.byte_count();
  r.queue_len = link.queued_data_packets();
  if (out_ != nullptr) *out_ << format_trace_record(r) << "\n";
  if (limit_ == 0 || records_.size() < limit_) records_.push_back(r);
}

}  // namespace corelite::net

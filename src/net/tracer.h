// Packet-level event tracing (the ns-2 trace-file equivalent).
//
// A PacketTracer attaches to links and records enqueue / dequeue / drop
// events with virtual timestamps.  Traces can be filtered by flow and
// packet kind, kept in memory for programmatic inspection (tests,
// debugging) or streamed to an ostream in a compact one-line-per-event
// text format:
//
//   t=1.234567 + 3->5 data f=2 uid=991 size=1000 q=7
//
// where the second column is the event code: '+' enqueue, '-' dequeue,
// 'd' drop.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.h"
#include "net/packet.h"

namespace corelite::net {

enum class TraceEvent : std::uint8_t { Enqueue, Dequeue, Drop };

struct TraceRecord {
  double t = 0.0;
  TraceEvent event = TraceEvent::Enqueue;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  PacketKind kind = PacketKind::Data;
  FlowId flow = kInvalidFlow;
  std::uint64_t uid = 0;
  std::int64_t size_bytes = 0;
  std::size_t queue_len = 0;  ///< data packets queued after the event
};

[[nodiscard]] char trace_event_code(TraceEvent e);
[[nodiscard]] std::string_view packet_kind_name(PacketKind k);

/// Formats one record as the compact text line described above.
[[nodiscard]] std::string format_trace_record(const TraceRecord& r);

class PacketTracer {
 public:
  /// In-memory tracer; optionally also stream each record to `out`.
  explicit PacketTracer(std::ostream* out = nullptr) : out_{out} {}

  PacketTracer(const PacketTracer&) = delete;
  PacketTracer& operator=(const PacketTracer&) = delete;

  /// Detaches from every link still alive; a tracer may be destroyed
  /// before or after the network (dying links null the shim's pointer
  /// via on_link_destroyed).
  ~PacketTracer() {
    for (auto& s : shims_) {
      if (s->link != nullptr) s->link->remove_observer(s.get());
    }
  }

  /// Start observing a link.
  void attach(Link& link);

  /// Restrict recording to one flow (kInvalidFlow = all flows).
  void set_flow_filter(FlowId flow) { flow_filter_ = flow; }
  /// Restrict recording to one packet kind.
  void set_kind_filter(std::optional<PacketKind> kind) { kind_filter_ = kind; }
  /// Cap on retained in-memory records (recording stops at the cap but
  /// streaming continues); 0 = unbounded.
  void set_memory_limit(std::size_t records) { limit_ = records; }

  [[nodiscard]] const std::vector<TraceRecord>& records() const { return records_; }
  /// Events recorded since construction or reset() — NOT affected by
  /// clear(), so it keeps counting filtered events streamed past the
  /// memory cap.
  [[nodiscard]] std::uint64_t total_events() const { return total_; }
  /// Drop the retained records but keep counting: total_events() is
  /// preserved.  Use between phases of a run to bound memory while
  /// still accounting for everything seen.
  void clear() { records_.clear(); }
  /// Full reset: drops the records AND zeroes total_events(), as if
  /// freshly constructed (filters, cap and attachments are kept).
  void reset() {
    records_.clear();
    total_ = 0;
  }

 private:
  void record(TraceEvent e, const Packet& p, sim::SimTime now, const Link& link);

  // One shim per attached link so records carry the link endpoints.
  struct LinkShim final : LinkObserver {
    PacketTracer* owner = nullptr;
    Link* link = nullptr;
    void on_enqueue(const Packet& p, sim::SimTime now) override {
      owner->record(TraceEvent::Enqueue, p, now, *link);
    }
    void on_dequeue(const Packet& p, sim::SimTime now) override {
      owner->record(TraceEvent::Dequeue, p, now, *link);
    }
    void on_drop(const Packet& p, sim::SimTime now) override {
      owner->record(TraceEvent::Drop, p, now, *link);
    }
    void on_link_destroyed(Link& /*l*/) override { link = nullptr; }
  };

  std::ostream* out_;
  std::vector<TraceRecord> records_;
  std::vector<std::unique_ptr<LinkShim>> shims_;
  FlowId flow_filter_ = kInvalidFlow;
  std::optional<PacketKind> kind_filter_;
  std::size_t limit_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace corelite::net

// The unit of transmission.
//
// One Packet type covers the four kinds of traffic in the system:
//   Data        — payload packets of a flow (1 KB in the paper's runs).
//   Marker      — Corelite rate markers injected by edge routers; size 0
//                 because the paper allows them to be "physically
//                 piggybacked to a data packet".
//   Feedback    — a marker echoed back to its edge router by a congested
//                 core router.
//   LossNotice  — congestion indication for the CSFQ baseline (models the
//                 loss signal the paper's CSFQ source agents react to).
//
// Control packets (everything except Data) have zero size: they consume
// no link capacity and no queue space, mirroring piggybacked headers.
#pragma once

#include <cstdint>

#include "net/types.h"
#include "sim/units.h"

namespace corelite::net {

enum class PacketKind : std::uint8_t {
  Data,
  Marker,
  Feedback,
  LossNotice,
  Ack,  ///< transport-level acknowledgment (TCP agents)
};

/// Contents of a Corelite marker (paper §2.2): the marker's "source
/// address" is the generating edge router, its payload identifies the
/// flow and carries the flow's normalized rate label (paper §3.2).
struct MarkerInfo {
  NodeId edge_router = kInvalidNode;
  FlowId flow = kInvalidFlow;
  double normalized_rate = 0.0;  ///< b_g(f) / w(f), packets per second.
};

struct Packet {
  std::uint64_t uid = 0;
  PacketKind kind = PacketKind::Data;
  FlowId flow = kInvalidFlow;
  NodeId src = kInvalidNode;  ///< ingress edge router of the flow.
  NodeId dst = kInvalidNode;  ///< current forwarding destination.
  sim::DataSize size;

  /// CSFQ label: the flow's normalized rate estimate, stamped by the CSFQ
  /// edge router and possibly relabeled down by congested core links.
  double label = 0.0;

  /// Valid when kind is Marker or Feedback.
  MarkerInfo marker{};

  /// For Feedback packets: the core router that generated the feedback.
  /// The Corelite edge reacts to the MAX over origins (paper §2.2 step 3).
  NodeId feedback_origin = kInvalidNode;

  /// Transport sequence number (Data) / cumulative ack (Ack).  Used by
  /// the TCP agents; zero for the paper's rate-based sources.
  std::uint64_t seq = 0;

  /// Binary congestion-experienced mark (the DECbit/ECN baseline; see
  /// qos/ecn.h).  Unused by Corelite proper.
  bool ecn = false;

  sim::SimTime created;

  [[nodiscard]] bool is_data() const { return kind == PacketKind::Data; }
  [[nodiscard]] bool is_control() const { return kind != PacketKind::Data; }
};

}  // namespace corelite::net

#include "net/wfq_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace corelite::net {

WfqQueue::FlowQueue& WfqQueue::ensure_entry(FlowId id) {
  if (id >= flows_.size()) flows_.resize(id + 1);
  FlowQueue& fq = flows_[id];
  if (!fq.present) {
    fq.present = true;
    ++tracked_;
    double w = weight_of_ ? weight_of_(id) : 1.0;
    fq.weight = w <= 0.0 ? 1.0 : w;
  }
  return fq;
}

void WfqQueue::mark_backlogged(FlowId id) {
  backlogged_.insert(std::lower_bound(backlogged_.begin(), backlogged_.end(), id), id);
}

void WfqQueue::unmark_backlogged(FlowId id) {
  const auto it = std::lower_bound(backlogged_.begin(), backlogged_.end(), id);
  backlogged_.erase(it);
}

bool WfqQueue::enqueue(Packet&& p, sim::SimTime /*now*/) {
  if (!p.is_data()) {
    control_.push_back(std::move(p));
    return true;
  }

  FlowQueue& arriving = ensure_entry(p.flow);

  // Weighted per-flow buffer threshold: a flow may hold at most its
  // weight's share of the buffer (x2 slack, floor of 2).  This makes an
  // over-share flow's losses trickle out packet by packet — the loss
  // signal rate-adaptive sources need — rather than letting one flow
  // build a deep backlog that is later evicted in bursts.
  {
    double w_total = 0.0;
    for (FlowId id : backlogged_) w_total += flows_[id].weight;
    if (arriving.q.empty()) w_total += arriving.weight;
    const double limit =
        std::max(2.0, 2.0 * static_cast<double>(capacity_) * arriving.weight / w_total);
    if (static_cast<double>(arriving.q.size()) >= limit) return false;
  }

  if (data_count_ >= capacity_) {
    // Buffer stealing (a real WFQ router's policy): evict the tail of
    // the most over-share backlog — the flow with the largest
    // queue-length/weight ratio — to admit the arrival.  If the arrival
    // itself belongs to that flow, reject it instead.
    FlowId victim = kInvalidFlow;
    double worst = -1.0;
    for (FlowId id : backlogged_) {
      FlowQueue& fq = flows_[id];
      const double ratio = static_cast<double>(fq.q.size()) / fq.weight;
      if (ratio > worst) {
        worst = ratio;
        victim = id;
      }
    }
    if (victim == kInvalidFlow || victim == p.flow) return false;
    FlowQueue& vq = flows_[victim];
    Tagged evicted = std::move(vq.q.back());
    vq.q.pop_back();
    vq.last_finish = vq.q.empty() ? evicted.start_tag : vq.q.back().finish_tag;
    if (vq.q.empty()) unmark_backlogged(victim);
    --data_count_;
    notify_internal_drop(evicted.packet);
  }

  Tagged t;
  // Service cost in "packet / weight" units: all data packets here are
  // equal-size, so one packet costs 1/w virtual time.
  t.start_tag = std::max(vtime_, arriving.last_finish);
  t.finish_tag = t.start_tag + 1.0 / arriving.weight;
  arriving.last_finish = t.finish_tag;
  t.packet = std::move(p);
  if (arriving.q.empty()) mark_backlogged(t.packet.flow);
  arriving.q.push_back(std::move(t));
  ++data_count_;
  return true;
}

std::optional<Packet> WfqQueue::dequeue(sim::SimTime /*now*/) {
  // Control traffic is strict-priority (zero-size piggybacked headers).
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    return p;
  }
  if (data_count_ == 0) return std::nullopt;

  // Serve the backlogged flow whose head-of-line start tag is smallest
  // (deterministic tie-break on the lowest flow id: the backlogged list
  // is scanned in ascending id order).
  FlowId best = kInvalidFlow;
  double best_tag = std::numeric_limits<double>::infinity();
  for (FlowId id : backlogged_) {
    const double tag = flows_[id].q.front().start_tag;
    if (tag < best_tag) {
      best_tag = tag;
      best = id;
    }
  }

  FlowQueue& fq = flows_[best];
  Tagged t = std::move(fq.q.front());
  fq.q.pop_front();
  if (fq.q.empty()) unmark_backlogged(best);
  vtime_ = std::max(vtime_, t.start_tag);
  // NOTE: the flow's entry (its finish tag) is retained across idle
  // periods.  Erasing it would let a flow whose queue keeps emptying
  // re-enter at the current virtual time on every packet — jumping the
  // entire backlog and inverting the weighted shares.  Retaining tags
  // for idle flows is precisely the per-flow state the paper's core-
  // stateless design argues against carrying.
  --data_count_;
  return std::move(t.packet);
}

}  // namespace corelite::net

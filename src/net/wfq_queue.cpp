#include "net/wfq_queue.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace corelite::net {

std::size_t WfqQueue::backlogged_flows() const {
  std::size_t n = 0;
  for (const auto& [flow, fq] : flows_) n += fq.q.empty() ? 0 : 1;
  return n;
}

bool WfqQueue::enqueue(Packet&& p, sim::SimTime /*now*/) {
  if (!p.is_data()) {
    control_.push_back(std::move(p));
    return true;
  }

  // Weighted per-flow buffer threshold: a flow may hold at most its
  // weight's share of the buffer (x2 slack, floor of 2).  This makes an
  // over-share flow's losses trickle out packet by packet — the loss
  // signal rate-adaptive sources need — rather than letting one flow
  // build a deep backlog that is later evicted in bursts.
  {
    double w_arriving = weight_of_ ? weight_of_(p.flow) : 1.0;
    if (w_arriving <= 0.0) w_arriving = 1.0;
    double w_total = 0.0;
    bool arriving_backlogged = false;
    for (const auto& [flow, fq] : flows_) {
      if (fq.q.empty()) continue;
      double w = weight_of_ ? weight_of_(flow) : 1.0;
      w_total += w <= 0.0 ? 1.0 : w;
      arriving_backlogged |= flow == p.flow;
    }
    if (!arriving_backlogged) w_total += w_arriving;
    const double limit =
        std::max(2.0, 2.0 * static_cast<double>(capacity_) * w_arriving / w_total);
    const auto it = flows_.find(p.flow);
    if (it != flows_.end() && static_cast<double>(it->second.q.size()) >= limit) {
      return false;
    }
  }

  if (data_count_ >= capacity_) {
    // Buffer stealing (a real WFQ router's policy): evict the tail of
    // the most over-share backlog — the flow with the largest
    // queue-length/weight ratio — to admit the arrival.  If the arrival
    // itself belongs to that flow, reject it instead.
    auto victim = flows_.end();
    double worst = -1.0;
    for (auto it = flows_.begin(); it != flows_.end(); ++it) {
      if (it->second.q.empty()) continue;
      double vw = weight_of_ ? weight_of_(it->first) : 1.0;
      if (vw <= 0.0) vw = 1.0;
      const double ratio = static_cast<double>(it->second.q.size()) / vw;
      if (ratio > worst) {
        worst = ratio;
        victim = it;
      }
    }
    if (victim == flows_.end() || victim->first == p.flow) return false;
    Tagged evicted = std::move(victim->second.q.back());
    victim->second.q.pop_back();
    victim->second.last_finish = victim->second.q.empty()
                                     ? evicted.start_tag
                                     : victim->second.q.back().finish_tag;
    --data_count_;
    notify_internal_drop(evicted.packet);
  }

  double w = weight_of_ ? weight_of_(p.flow) : 1.0;
  if (w <= 0.0) w = 1.0;

  FlowQueue& fq = flows_[p.flow];
  Tagged t;
  // Service cost in "packet / weight" units: all data packets here are
  // equal-size, so one packet costs 1/w virtual time.
  t.start_tag = std::max(vtime_, fq.last_finish);
  t.finish_tag = t.start_tag + 1.0 / w;
  fq.last_finish = t.finish_tag;
  t.packet = std::move(p);
  fq.q.push_back(std::move(t));
  ++data_count_;
  return true;
}

std::optional<Packet> WfqQueue::dequeue(sim::SimTime /*now*/) {
  // Control traffic is strict-priority (zero-size piggybacked headers).
  if (!control_.empty()) {
    Packet p = std::move(control_.front());
    control_.pop_front();
    return p;
  }
  if (data_count_ == 0) return std::nullopt;

  // Serve the backlogged flow whose head-of-line start tag is smallest
  // (deterministic tie-break on flow id via map order).
  auto best = flows_.end();
  double best_tag = std::numeric_limits<double>::infinity();
  for (auto it = flows_.begin(); it != flows_.end(); ++it) {
    if (it->second.q.empty()) continue;
    const double tag = it->second.q.front().start_tag;
    if (tag < best_tag) {
      best_tag = tag;
      best = it;
    }
  }

  Tagged t = std::move(best->second.q.front());
  best->second.q.pop_front();
  vtime_ = std::max(vtime_, t.start_tag);
  // NOTE: the flow's entry (its finish tag) is retained across idle
  // periods.  Erasing it would let a flow whose queue keeps emptying
  // re-enter at the current virtual time on every packet — jumping the
  // entire backlog and inverting the weighted shares.  Retaining tags
  // for idle flows is precisely the per-flow state the paper's core-
  // stateless design argues against carrying.
  --data_count_;
  return std::move(t.packet);
}

}  // namespace corelite::net

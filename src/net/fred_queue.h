// FRED — Flow Random Early Drop (Lin & Morris, SIGCOMM'97).
//
// The Corelite paper discusses FRED as related work: it "extends RED to
// provide some degree of fair bandwidth allocation.  However, it
// maintains state for all flows that have at least one packet in the
// buffer" and "deviates from the ideal case in a number of scenarios".
// This implementation exists as a comparison baseline so those claims
// are checkable.
//
// Mechanism: RED's EWMA average gates drops globally, but each flow is
// additionally policed by its own buffered-packet count:
//   - every flow may always buffer min_q packets,
//   - no flow may buffer more than max_q = max(min_q, min_thresh),
//   - flows repeatedly exceeding max_q accumulate "strikes" and are then
//     held to the average per-flow occupancy avgcq,
//   - between the RED thresholds, flows above max(min_q, avgcq) suffer
//     RED's probabilistic drop.
// Per-flow state exists only while the flow has packets queued — the
// very property that distinguishes FRED from core-stateless schemes.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/queue.h"
#include "sim/random.h"

namespace corelite::net {

class FredQueue final : public PacketQueue {
 public:
  struct Config {
    std::size_t capacity_data_packets = 40;
    double min_thresh = 5.0;
    double max_thresh = 15.0;
    double max_drop_prob = 0.1;
    double ewma_weight = 0.002;
    std::size_t min_q = 2;  ///< packets every flow may always buffer
    sim::TimeDelta typical_service_time = sim::TimeDelta::millis(2);
  };

  FredQueue(Config cfg, sim::Rng& rng) : cfg_{cfg}, rng_{&rng} {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool empty() const override { return q_.empty(); }

  [[nodiscard]] double average_queue() const { return avg_; }
  [[nodiscard]] std::size_t tracked_flows() const { return tracked_; }
  [[nodiscard]] std::size_t flow_state_entries() const override { return tracked_; }
  [[nodiscard]] std::size_t queued_for(FlowId f) const {
    return f < flows_.size() && flows_[f].present ? flows_[f].qlen : 0;
  }

 private:
  /// Dense per-flow slot.  FRED's defining property is that state exists
  /// only while a flow has buffered packets; `present` models that
  /// lifetime (a "erased" slot keeps its storage but counts as absent,
  /// and re-creation resets qlen/strikes exactly like a fresh map node).
  struct FlowEntry {
    std::size_t qlen = 0;
    int strikes = 0;
    bool present = false;
  };

  FlowEntry& ensure_entry(FlowId id);
  void erase_entry(FlowEntry& fe) {
    fe.present = false;
    --tracked_;
  }

  void age_average(sim::SimTime now);

  Config cfg_;
  sim::Rng* rng_;
  std::deque<Packet> q_;
  std::vector<FlowEntry> flows_;  ///< dense: flow id -> entry
  std::size_t tracked_ = 0;       ///< slots with present == true
  double avg_ = 0.0;
  std::int64_t count_since_drop_ = -1;
  sim::SimTime idle_since_ = sim::SimTime::zero();
  bool idle_ = true;
};

}  // namespace corelite::net

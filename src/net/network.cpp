#include "net/network.h"

#include <cassert>
#include <limits>
#include <queue>
#include <utility>

namespace corelite::net {

NodeId Network::add_node(std::string name, std::uint32_t lp) {
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::make_unique<Node>(id, std::move(name)));
  if (lp_rt_ != nullptr) {
    assert(lp < lp_rt_->lp_count() && "node pinned to a nonexistent LP");
    lp_of_node_.push_back(lp);
  } else {
    lp_of_node_.push_back(0);
  }
  return id;
}

Link& Network::connect(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                       std::size_t queue_capacity_packets) {
  return connect_with_queue(a, b, rate, delay,
                            std::make_unique<DropTailQueue>(queue_capacity_packets));
}

Link& Network::connect_with_queue(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                                  std::unique_ptr<PacketQueue> queue) {
  assert(a < nodes_.size() && b < nodes_.size() && a != b);
  // The link runs on its upstream node's LP: send/serialize/dequeue all
  // happen there, and only the final propagation hop may cross LPs.
  links_.push_back(
      std::make_unique<Link>(local_sim(a), *this, a, b, rate, delay, std::move(queue)));
  Link* link = links_.back().get();
  nodes_[a]->add_out_link(link);
  return *link;
}

std::pair<Link*, Link*> Network::connect_duplex(NodeId a, NodeId b, sim::Rate rate,
                                                sim::TimeDelta delay,
                                                std::size_t queue_capacity_packets) {
  Link& ab = connect(a, b, rate, delay, queue_capacity_packets);
  Link& ba = connect(b, a, rate, delay, queue_capacity_packets);
  return {&ab, &ba};
}

Link* Network::find_link(NodeId from, NodeId to) {
  for (auto& l : links_) {
    if (l->from() == from && l->to() == to) return l.get();
  }
  return nullptr;
}

void Network::build_routes() {
  const std::size_t n = nodes_.size();
  // Dijkstra from every source.  Networks here are small (tens of nodes);
  // O(V * E log V) is more than fast enough and keeps the code simple.
  for (NodeId src = 0; src < n; ++src) {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    std::vector<double> dist(n, kInf);
    std::vector<Link*> first_hop(n, nullptr);
    using Item = std::pair<double, NodeId>;  // (distance, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0.0;
    pq.push({0.0, src});
    while (!pq.empty()) {
      const auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (Link* l : nodes_[u]->out_links()) {
        const NodeId v = l->to();
        // Tiny per-hop epsilon keeps paths minimal-hop among equal-delay
        // alternatives; tie-break below keeps them deterministic.
        const double w = l->propagation_delay().sec() + 1e-9;
        const double nd = d + w;
        if (nd < dist[v] - 1e-15) {
          dist[v] = nd;
          first_hop[v] = (u == src) ? l : first_hop[u];
          pq.push({nd, v});
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      if (dst != src && first_hop[dst] != nullptr) {
        nodes_[src]->set_next_hop(dst, first_hop[dst]);
      }
    }
  }
}

void Network::deliver(NodeId to, Packet&& p) {
  if (!nodes_.at(to)->receive(std::move(p))) {
    unrouteable_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Network::inject(NodeId at, Packet&& p) {
  if (!nodes_.at(at)->receive(std::move(p))) {
    unrouteable_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Network::post_cross_lp(std::uint32_t src_lp, sim::SimTime at, NodeId to, const Packet& p) {
  assert(lp_rt_ != nullptr);
  // The packet rides the mailbox message by value (headers only, no
  // payload); the dst LP's worker replays the delivery at its correct
  // virtual time after the next barrier.
  lp_rt_->post(src_lp, lp_of_node_[to], at,
               [this, to, p = p]() mutable { deliver(to, std::move(p)); });
}

std::vector<NodeId> Network::path(NodeId from, NodeId to) const {
  std::vector<NodeId> hops{from};
  NodeId cur = from;
  while (cur != to) {
    Link* l = nodes_.at(cur)->next_hop(to);
    if (l == nullptr) return {};
    cur = l->to();
    hops.push_back(cur);
    if (hops.size() > nodes_.size()) return {};  // routing loop guard
  }
  return hops;
}

}  // namespace corelite::net

// Flow descriptions.
//
// A "flow" in Corelite is an edge-to-edge aggregate (paper §2): it
// enters the network cloud at an ingress edge router, exits at an
// egress node, and carries a rate weight that selects its rate class.
#pragma once

#include <vector>

#include "net/types.h"
#include "sim/units.h"

namespace corelite::net {

/// Half-open activity window [start, stop).
struct ActiveInterval {
  sim::SimTime start;
  sim::SimTime stop = sim::SimTime::infinite();
};

struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId ingress = kInvalidNode;  ///< ingress edge router
  NodeId egress = kInvalidNode;   ///< egress node (edge router / sink)
  double weight = 1.0;            ///< rate weight w(f) > 0

  /// Disjoint, time-ordered activity windows.  A flow with several
  /// windows models the stop/restart churn of the paper's §4.3 scenario.
  std::vector<ActiveInterval> active{{sim::SimTime::zero(), sim::SimTime::infinite()}};

  /// Optional minimum rate contract in packets/s (Corelite extension:
  /// the edge never throttles the flow below this floor).
  double min_rate_pps = 0.0;

  [[nodiscard]] bool active_at(sim::SimTime t) const {
    for (const auto& iv : active) {
      if (t >= iv.start && t < iv.stop) return true;
    }
    return false;
  }
};

}  // namespace corelite::net

// Flow descriptions.
//
// A "flow" in Corelite is an edge-to-edge aggregate (paper §2): it
// enters the network cloud at an ingress edge router, exits at an
// egress node, and carries a rate weight that selects its rate class.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/types.h"
#include "sim/units.h"

namespace corelite::net {

/// Half-open activity window [start, stop).
struct ActiveInterval {
  sim::SimTime start;
  sim::SimTime stop = sim::SimTime::infinite();
};

/// True iff the windows are non-empty (start < stop), time-ordered and
/// pairwise disjoint — the contract every activity list must satisfy.
/// Touching windows ([0,5),[5,9)) are allowed; callers that want one
/// continuous window should merge them, but they are not ambiguous.
[[nodiscard]] inline bool valid_activity_windows(const std::vector<ActiveInterval>& windows) {
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (!(windows[i].start < windows[i].stop)) return false;
    if (std::isnan(windows[i].start.sec())) return false;
    if (i > 0 && windows[i].start < windows[i - 1].stop) return false;
  }
  return true;
}

struct FlowSpec {
  FlowId id = kInvalidFlow;
  NodeId ingress = kInvalidNode;  ///< ingress edge router
  NodeId egress = kInvalidNode;   ///< egress node (edge router / sink)
  double weight = 1.0;            ///< rate weight w(f) > 0

  /// Disjoint, time-ordered activity windows.  A flow with several
  /// windows models the stop/restart churn of the paper's §4.3 scenario;
  /// churn-generated populations carry hundreds.  Must satisfy
  /// valid_activity_windows() — see valid().
  std::vector<ActiveInterval> active{{sim::SimTime::zero(), sim::SimTime::infinite()}};

  /// Optional minimum rate contract in packets/s (Corelite extension:
  /// the edge never throttles the flow below this floor).
  double min_rate_pps = 0.0;

  /// Unresponsive-flood injection: when > 0, the source ignores the
  /// adaptation protocol entirely and blasts at this fixed rate
  /// (packets/s).  The edge infrastructure still does its part — CSFQ
  /// labels the flood's true arrival rate, Corelite's shaper is
  /// bypassed the way a non-compliant source bypasses it — so this
  /// models the attack traffic the fairness watchdog must catch, not a
  /// broken edge.
  double flood_pps = 0.0;

  /// Construction-time validation: finite positive weight, non-negative
  /// min rate and flood rate, well-formed activity windows.  Edge
  /// routers assert this on add_flow; generators and script parsers
  /// reject specs failing it.
  [[nodiscard]] bool valid() const {
    return std::isfinite(weight) && weight > 0.0 && std::isfinite(min_rate_pps) &&
           min_rate_pps >= 0.0 && std::isfinite(flood_pps) && flood_pps >= 0.0 &&
           valid_activity_windows(active);
  }

  /// O(log W) over the sorted disjoint windows: locate the last window
  /// starting at or before t and test its stop.
  [[nodiscard]] bool active_at(sim::SimTime t) const {
    auto it = std::upper_bound(active.begin(), active.end(), t,
                               [](sim::SimTime v, const ActiveInterval& iv) {
                                 return v < iv.start;
                               });
    if (it == active.begin()) return false;
    --it;
    return t < it->stop;
  }
};

}  // namespace corelite::net

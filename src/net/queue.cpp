#include "net/queue.h"

#include <utility>

#include "net/ewma_aging.h"

namespace corelite::net {

bool DropTailQueue::enqueue(Packet&& p, sim::SimTime /*now*/) {
  if (p.is_data()) {
    if (data_count_ >= capacity_) return false;
    ++data_count_;
  }
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> DropTailQueue::dequeue(sim::SimTime now) {
  Packet p;
  if (!dequeue_into(p, now)) return std::nullopt;
  return p;
}

bool DropTailQueue::dequeue_into(Packet& out, sim::SimTime /*now*/) {
  if (q_.empty()) return false;
  out = std::move(q_.front());
  q_.pop_front();
  if (out.is_data()) --data_count_;
  return true;
}

void RedQueue::age_average(sim::SimTime now) {
  if (!idle_) return;
  avg_ = ewma_idle_aged(avg_, cfg_.ewma_weight, now - idle_since_, cfg_.typical_service_time);
  idle_ = false;
}

bool RedQueue::enqueue(Packet&& p, sim::SimTime now) {
  if (!p.is_data()) {  // control packets bypass RED entirely
    q_.push_back(std::move(p));
    return true;
  }

  age_average(now);
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ + cfg_.ewma_weight * static_cast<double>(data_count_);

  bool drop = false;
  if (data_count_ >= cfg_.capacity_data_packets || avg_ >= cfg_.max_thresh) {
    drop = true;
    count_since_drop_ = 0;
  } else if (avg_ > cfg_.min_thresh) {
    const double pb = cfg_.max_drop_prob * (avg_ - cfg_.min_thresh) /
                      (cfg_.max_thresh - cfg_.min_thresh);
    ++count_since_drop_;
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : pb / denom;
    if (rng_->bernoulli(pa)) {
      drop = true;
      count_since_drop_ = 0;
    }
  } else {
    count_since_drop_ = -1;
  }

  if (drop) return false;
  ++data_count_;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> RedQueue::dequeue(sim::SimTime now) {
  Packet p;
  if (!dequeue_into(p, now)) return std::nullopt;
  return p;
}

bool RedQueue::dequeue_into(Packet& out, sim::SimTime now) {
  if (q_.empty()) return false;
  out = std::move(q_.front());
  q_.pop_front();
  if (out.is_data()) {
    --data_count_;
    if (data_count_ == 0) {
      idle_ = true;
      idle_since_ = now;
    }
  }
  return true;
}

}  // namespace corelite::net

// The network container: nodes, links, routing, packet delivery.
//
// Build a topology with add_node()/connect(), call build_routes() once,
// then inject packets at nodes.  Routing is static shortest-path by
// propagation delay (deterministic tie-break on node id), which matches
// the fixed routes of the paper's ns-2 scripts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/types.h"
#include "sim/simulator.h"

namespace corelite::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : sim_{simulator} {
    // Pending link events hold raw pool pointers; the simulator keeps
    // the pool alive until those callbacks are gone (see PooledPacket).
    sim_.retain(packet_pool_);
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node; returns its dense id.
  NodeId add_node(std::string name);

  /// Create one unidirectional link a -> b with a drop-tail queue.
  Link& connect(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                std::size_t queue_capacity_packets);

  /// Create one unidirectional link a -> b with a caller-supplied queue.
  Link& connect_with_queue(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                           std::unique_ptr<PacketQueue> queue);

  /// Create both directions with identical parameters.
  std::pair<Link*, Link*> connect_duplex(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                                         std::size_t queue_capacity_packets);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] Link* find_link(NodeId from, NodeId to);
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// Populate every node's FIB via all-pairs shortest paths
  /// (Dijkstra per source; edge weight = propagation delay).
  void build_routes();

  /// Hand a packet that finished traversing a link to its downstream node.
  void deliver(NodeId to, Packet&& p);

  /// Inject a freshly created packet at `at` (used by edge routers).
  void inject(NodeId at, Packet&& p);

  /// The hop sequence a packet from `from` to `to` follows, inclusive.
  /// Empty if unreachable.  Requires build_routes() to have run.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  [[nodiscard]] std::uint64_t next_packet_uid() { return ++packet_uid_; }
  [[nodiscard]] std::uint64_t unrouteable_count() const { return unrouteable_; }
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// Shared recycler for packets in flight on links (serialization and
  /// propagation events).  One pool per network: a slot freed by any
  /// link is immediately reusable by every other.
  [[nodiscard]] PacketPool& packet_pool() { return *packet_pool_; }

 private:
  sim::Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::shared_ptr<PacketPool> packet_pool_ = std::make_shared<PacketPool>();
  std::uint64_t packet_uid_ = 0;
  std::uint64_t unrouteable_ = 0;
};

}  // namespace corelite::net

// The network container: nodes, links, routing, packet delivery.
//
// Build a topology with add_node()/connect(), call build_routes() once,
// then inject packets at nodes.  Routing is static shortest-path by
// propagation delay (deterministic tie-break on node id), which matches
// the fixed routes of the paper's ns-2 scripts.
//
// Parallel mode: a Network constructed over an LpRuntime spans several
// logical processes.  Every node is pinned to one LP at add_node()
// time; each LP owns a private Simulator, RNG stream, packet pool and
// packet-uid space, and a link whose endpoints live in different LPs
// becomes a cut link — its propagation hop turns into a cross-LP
// mailbox message (see Link::on_serialized and LpRuntime).  With a
// single-LP runtime (or the plain Simulator constructor) every query
// below degenerates to the legacy single-universe behavior, bit for
// bit.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/node.h"
#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/types.h"
#include "sim/parallel/lp_runtime.h"
#include "sim/simulator.h"

namespace corelite::net {

class Network {
 public:
  explicit Network(sim::Simulator& simulator) : sim_{simulator} {
    // Pending link events hold raw pool pointers; the simulator keeps
    // the pool alive until those callbacks are gone (see PooledPacket).
    sim_.retain(pools_.front());
  }

  /// Parallel mode: one private packet pool per LP (pools are
  /// single-threaded free lists), retained by that LP's simulator.
  /// A 1-LP runtime leaves the network in exact legacy shape.
  explicit Network(sim::par::LpRuntime& runtime)
      : sim_{runtime.lp_sim(0)},
        lp_rt_{runtime.lp_count() > 1 ? &runtime : nullptr} {
    sim_.retain(pools_.front());
    if (lp_rt_ != nullptr) {
      for (std::size_t i = 1; i < runtime.lp_count(); ++i) {
        pools_.push_back(std::make_shared<PacketPool>());
        runtime.lp_sim(i).retain(pools_.back());
      }
      lp_packet_uid_.assign(runtime.lp_count(), 0);
    }
  }

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Create a node; returns its dense id.  `lp` pins the node to a
  /// logical process (ignored — treated as 0 — without a multi-LP
  /// runtime).
  NodeId add_node(std::string name, std::uint32_t lp = 0);

  /// Create one unidirectional link a -> b with a drop-tail queue.
  Link& connect(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                std::size_t queue_capacity_packets);

  /// Create one unidirectional link a -> b with a caller-supplied queue.
  Link& connect_with_queue(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                           std::unique_ptr<PacketQueue> queue);

  /// Create both directions with identical parameters.
  std::pair<Link*, Link*> connect_duplex(NodeId a, NodeId b, sim::Rate rate, sim::TimeDelta delay,
                                         std::size_t queue_capacity_packets);

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(NodeId id) const { return *nodes_.at(id); }
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  [[nodiscard]] Link* find_link(NodeId from, NodeId to);
  [[nodiscard]] const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

  /// Populate every node's FIB via all-pairs shortest paths
  /// (Dijkstra per source; edge weight = propagation delay).
  void build_routes();

  /// Hand a packet that finished traversing a link to its downstream node.
  void deliver(NodeId to, Packet&& p);

  /// Inject a freshly created packet at `at` (used by edge routers).
  void inject(NodeId at, Packet&& p);

  /// The hop sequence a packet from `from` to `to` follows, inclusive.
  /// Empty if unreachable.  Requires build_routes() to have run.
  [[nodiscard]] std::vector<NodeId> path(NodeId from, NodeId to) const;

  /// Legacy uid source — the single global counter the golden digests
  /// pin.  Only valid without a multi-LP runtime.
  [[nodiscard]] std::uint64_t next_packet_uid() { return ++packet_uid_; }

  /// Uid for a packet born at node `at`.  Parallel mode partitions the
  /// uid space by LP (top 16 bits) so concurrent allocations never
  /// collide or race; legacy mode is the global counter above.
  [[nodiscard]] std::uint64_t next_packet_uid(NodeId at) {
    if (lp_rt_ == nullptr) return ++packet_uid_;
    const std::uint32_t lp = lp_of_node_[at];
    return (static_cast<std::uint64_t>(lp) << 48) | ++lp_packet_uid_[lp];
  }

  [[nodiscard]] std::uint64_t unrouteable_count() const {
    return unrouteable_.load(std::memory_order_relaxed);
  }

  /// LP 0's simulator — the only one in legacy mode.  Setup-time code
  /// and single-universe tests use this; per-packet paths must use
  /// local_sim() so each component runs on its own LP clock.
  [[nodiscard]] sim::Simulator& simulator() { return sim_; }

  /// The simulator owning node `id` (== simulator() without a runtime).
  [[nodiscard]] sim::Simulator& local_sim(NodeId id) {
    return lp_rt_ == nullptr ? sim_ : lp_rt_->lp_sim(lp_of_node_[id]);
  }
  /// The RNG stream of node `id`'s LP.
  [[nodiscard]] sim::Rng& local_rng(NodeId id) { return local_sim(id).rng(); }

  [[nodiscard]] std::uint32_t lp_of(NodeId id) const {
    return lp_rt_ == nullptr ? 0 : lp_of_node_[id];
  }
  [[nodiscard]] sim::par::LpRuntime* lp_runtime() { return lp_rt_; }

  /// Shared recycler for packets in flight on links (serialization and
  /// propagation events).  One pool per LP: a slot freed by any link of
  /// an LP is immediately reusable by every other link of that LP.
  [[nodiscard]] PacketPool& packet_pool() { return *pools_.front(); }
  [[nodiscard]] PacketPool& packet_pool(NodeId id) {
    return lp_rt_ == nullptr ? *pools_.front() : *pools_[lp_of_node_[id]];
  }

  /// Cross-LP propagation hop: enqueue delivery of `p` to node `to` at
  /// absolute time `at` into the (src_lp -> dst LP of `to`) mailbox.
  /// Called by links whose endpoints live in different LPs.
  void post_cross_lp(std::uint32_t src_lp, sim::SimTime at, NodeId to, const Packet& p);

 private:
  sim::Simulator& sim_;
  sim::par::LpRuntime* lp_rt_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::shared_ptr<PacketPool>> pools_{std::make_shared<PacketPool>()};
  std::vector<std::uint32_t> lp_of_node_;
  std::uint64_t packet_uid_ = 0;
  std::vector<std::uint64_t> lp_packet_uid_;
  // Any LP may fail to route concurrently; diagnostics only (always 0
  // in healthy runs), so relaxed is fine.
  std::atomic<std::uint64_t> unrouteable_{0};
};

}  // namespace corelite::net

// Shared RED-family idle aging (Floyd & Jacobson 93, §4).
//
// RED, CHOKe and FRED all keep an EWMA of the data queue length and,
// when the queue goes idle, pretend `m = idle_time / service_time`
// small packets were serviced so the average decays by (1-w)^m.  The
// three disciplines previously triplicated this code; they now share
// this helper, which also routes the per-arrival pow through the
// bit-exact decay cache (sim/fastmath.h) — the idle gaps repeat, so the
// cache turns the libm pow into a table hit with identical results.
#pragma once

#include <algorithm>

#include "sim/fastmath.h"
#include "sim/units.h"

namespace corelite::net {

/// The EWMA average after an idle period of `idle`: the queue could
/// have serviced m = idle/service small packets, each decaying the
/// average by one EWMA step.
[[nodiscard]] inline double ewma_idle_aged(double avg, double ewma_weight, sim::TimeDelta idle,
                                           sim::TimeDelta typical_service) {
  const double m = std::max(0.0, idle.sec() / typical_service.sec());
  return avg * sim::fastmath::cached_pow(1.0 - ewma_weight, m);
}

}  // namespace corelite::net

#include "net/node.h"

#include <utility>

namespace corelite::net {

bool Node::receive(Packet&& p) {
  if (p.dst == id_) {
    ++delivered_locally_;
    if (local_sink_) local_sink_(std::move(p));
    return true;
  }
  if (transit_hook_ && transit_hook_(p)) return true;
  Link* out = next_hop(p.dst);
  if (out == nullptr) return false;
  ++forwarded_;
  out->send(std::move(p));
  return true;
}

}  // namespace corelite::net

#include "net/link.h"

#include <cassert>
#include <utility>

#include "net/network.h"

namespace corelite::net {

Link::Link(sim::Simulator& simulator, Network& network, NodeId from, NodeId to, sim::Rate rate,
           sim::TimeDelta propagation_delay, std::unique_ptr<PacketQueue> queue)
    : sim_{simulator},
      net_{network},
      from_{from},
      to_{to},
      rate_{rate},
      prop_delay_{propagation_delay},
      queue_{std::move(queue)} {
  assert(queue_ != nullptr);
  // Queue-internal drops (e.g. WFQ evictions) count and notify exactly
  // like rejected arrivals.
  queue_->set_internal_drop_callback([this](const Packet& p) {
    ++stats_.dropped;
    for (auto* obs : observers_) obs->on_drop(p, sim_.now());
  });
}

void Link::notify_queue_length() {
  const std::size_t len = queue_->data_packet_count();
  for (auto* obs : observers_) obs->on_queue_length(len, sim_.now());
}

void Link::send(Packet&& p) {
  const sim::SimTime now = sim_.now();

  if (p.is_data() && admission_ != nullptr && !admission_->admit(p, now)) {
    ++stats_.dropped;
    for (auto* obs : observers_) obs->on_drop(p, now);
    return;
  }
  if (p.is_control() && control_loss_rate_ > 0.0 &&
      sim_.rng().bernoulli(control_loss_rate_)) {
    ++stats_.dropped_control;
    for (auto* obs : observers_) obs->on_drop(p, now);
    return;
  }

  if (observers_.empty()) {
    // Fast path: nobody watches this link, so the defensive header copy
    // for post-enqueue notification is pure waste.
    if (!queue_->enqueue(std::move(p), now)) {
      ++stats_.dropped;
      return;
    }
    ++stats_.enqueued;
  } else {
    // Packet carries no payload (headers only), so keeping a copy for
    // observer notification is cheap and sidesteps moved-from hazards.
    const Packet header = p;
    if (!queue_->enqueue(std::move(p), now)) {
      ++stats_.dropped;
      for (auto* obs : observers_) obs->on_drop(header, now);
      return;
    }
    ++stats_.enqueued;
    for (auto* obs : observers_) obs->on_enqueue(header, now);
    if (header.is_data()) notify_queue_length();
  }
  if (!busy_) start_transmission();
}

void Link::start_transmission() {
  // Dequeue straight into a pooled slot that rides inside the completion
  // event — one packet move per hop and no allocation in the steady
  // state.  (On an empty queue the slot bounces straight back to the
  // free list: two vector ops.)
  PooledPacket pooled{net_.packet_pool()};
  if (!queue_->dequeue_into(*pooled, sim_.now())) {
    busy_ = false;
    return;
  }
  busy_ = true;
  if (!observers_.empty()) {
    for (auto* obs : observers_) obs->on_dequeue(*pooled, sim_.now());
    if (pooled->is_data()) notify_queue_length();
  }

  const sim::TimeDelta ser = rate_.serialization_time(pooled->size);
  sim_.after_detached(ser,
                      [this, pooled = std::move(pooled)]() mutable { on_serialized(std::move(pooled)); });
}

void Link::on_serialized(PooledPacket p) {
  ++stats_.delivered;
  if (p->is_data()) {
    ++stats_.data_delivered;
    stats_.data_bytes_delivered += p->size;
  }
  sim_.after_detached(prop_delay_, [this, p = std::move(p)]() mutable {
    net_.deliver(to_, std::move(*p));
  });
  start_transmission();
}

}  // namespace corelite::net

#include "net/link.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <utility>

#include "net/network.h"
#include "sim/hotpath.h"
#include "telemetry/metrics.h"

namespace corelite::net {

namespace {

// Drop-cause counters, registered once on first use (magic statics) so
// disabled telemetry costs one relaxed load per drop — drops are off the
// per-packet fast path, so this is invisible in the wall-time budget.
const telemetry::Counter& drops_admission() {
  static const telemetry::Counter c{"net.drops.admission"};
  return c;
}
const telemetry::Counter& drops_control_loss() {
  static const telemetry::Counter c{"net.drops.control_loss"};
  return c;
}
const telemetry::Counter& drops_queue_full() {
  static const telemetry::Counter c{"net.drops.queue_full"};
  return c;
}
const telemetry::Counter& drops_queue_internal() {
  static const telemetry::Counter c{"net.drops.queue_internal"};
  return c;
}

}  // namespace

Link::Link(sim::Simulator& simulator, Network& network, NodeId from, NodeId to, sim::Rate rate,
           sim::TimeDelta propagation_delay, std::unique_ptr<PacketQueue> queue)
    : sim_{simulator},
      net_{network},
      pool_{network.packet_pool(from)},
      from_{from},
      to_{to},
      cross_lp_{network.lp_of(from) != network.lp_of(to)},
      lp_from_{network.lp_of(from)},
      rate_{rate},
      prop_delay_{propagation_delay},
      queue_{std::move(queue)},
      batching_{std::getenv("CORELITE_NO_BATCH") == nullptr} {
  assert(queue_ != nullptr);
  // Queue-internal drops (e.g. WFQ evictions) count and notify exactly
  // like rejected arrivals.
  queue_->set_internal_drop_callback([this](const Packet& p) {
    ++stats_.dropped;
    drops_queue_internal().add();
    notify_drop(p, sim_.now());
  });
}

Link::~Link() {
  // Observers may sit on several event lists; notify each exactly once.
  std::vector<LinkObserver*> unique;
  for (const auto* list : {&enqueue_obs_, &drop_obs_, &dequeue_obs_, &qlen_obs_}) {
    for (auto* obs : *list) {
      if (std::find(unique.begin(), unique.end(), obs) == unique.end()) unique.push_back(obs);
    }
  }
  for (auto* obs : unique) obs->on_link_destroyed(*this);
}

void Link::notify_queue_length() {
  if (qlen_obs_.empty()) return;
  const std::size_t len = queue_->data_packet_count();
  sim::hotpath_counters().observer_dispatches += qlen_obs_.size();
  for (auto* obs : qlen_obs_) obs->on_queue_length(len, sim_.now());
}

void Link::notify_drop(const Packet& p, sim::SimTime now) {
  sim::hotpath_counters().observer_dispatches += drop_obs_.size();
  for (auto* obs : drop_obs_) obs->on_drop(p, now);
}

void Link::send(Packet&& p) {
  const sim::SimTime now = sim_.now();

  if (p.is_data() && admission_ != nullptr && !admission_->admit(p, now)) {
    ++stats_.dropped;
    drops_admission().add();
    notify_drop(p, now);
    return;
  }
  if (p.is_control() && control_loss_rate_ > 0.0 &&
      sim_.rng().bernoulli(control_loss_rate_)) {
    ++stats_.dropped_control;
    drops_control_loss().add();
    notify_drop(p, now);
    return;
  }

  const bool data = p.is_data();
  if (enqueue_obs_.empty()) {
    // Fast path: nobody watches enqueues, so the defensive header copy
    // for post-enqueue notification is pure waste.  Queues leave the
    // packet intact on rejection (contract in queue.h), so the drop
    // notification can use `p` directly.
    if (!queue_->enqueue(std::move(p), now)) {
      ++stats_.dropped;
      drops_queue_full().add();
      notify_drop(p, now);
      return;
    }
    ++stats_.enqueued;
    if (data) notify_queue_length();
  } else {
    // Packet carries no payload (headers only), so keeping a copy for
    // observer notification is cheap and sidesteps moved-from hazards.
    const Packet header = p;
    if (!queue_->enqueue(std::move(p), now)) {
      ++stats_.dropped;
      drops_queue_full().add();
      notify_drop(header, now);
      return;
    }
    ++stats_.enqueued;
    sim::hotpath_counters().observer_dispatches += enqueue_obs_.size();
    for (auto* obs : enqueue_obs_) obs->on_enqueue(header, now);
    if (data) notify_queue_length();
  }
  if (!busy_) start_transmission();
}

bool Link::dequeue_next(PooledPacket& pooled) {
  // Dequeue straight into a pooled slot that rides inside the completion
  // event — one packet move per hop and no allocation in the steady
  // state.  (On an empty queue the slot bounces straight back to the
  // free list: two vector ops.)
  if (!queue_->dequeue_into(*pooled, sim_.now())) {
    busy_ = false;
    return false;
  }
  busy_ = true;
  if (!dequeue_obs_.empty()) {
    sim::hotpath_counters().observer_dispatches += dequeue_obs_.size();
    for (auto* obs : dequeue_obs_) obs->on_dequeue(*pooled, sim_.now());
  }
  if (pooled->is_data()) notify_queue_length();
  return true;
}

void Link::start_transmission() {
  PooledPacket pooled{pool_};
  if (!dequeue_next(pooled)) return;
  const sim::TimeDelta ser = rate_.serialization_time(pooled->size);
  sim_.after_detached(ser,
                      [this, pooled = std::move(pooled)]() mutable { on_serialized(std::move(pooled)); });
}

void Link::on_serialized(PooledPacket p) {
  // Batched drain: while the queue holds back-to-back packets and the
  // simulator proves nothing can interleave before the next completion
  // (can_advance_inline — strictly earlier queued event, tie at the
  // completion instant, run deadline, or stop() all refuse), process
  // that completion inline instead of scheduling it.  Every side effect
  // — stats, dequeue observers at the dequeue instant, delivery time at
  // completion + propagation — is bit-identical to the event-per-packet
  // path; only the queue round trip is elided.
  bool fused_any = false;
  for (;;) {
    ++stats_.delivered;
    if (p->is_data()) {
      ++stats_.data_delivered;
      stats_.data_bytes_delivered += p->size;
    }
    if (!cross_lp_) {
      sim_.after_detached(prop_delay_, [this, p = std::move(p)]() mutable {
        net_.deliver(to_, std::move(*p));
      });
    } else {
      // Cut link: the propagation hop crosses an LP boundary.  The
      // packet is copied into the mailbox (due strictly after the
      // current conservative window — prop_delay_ >= the partition's
      // lookahead) and the pooled slot recycles locally right away.
      net_.post_cross_lp(lp_from_, sim_.now() + prop_delay_, to_, *p);
    }
    PooledPacket next{pool_};
    if (!dequeue_next(next)) return;
    const sim::TimeDelta ser = rate_.serialization_time(next->size);
    const sim::SimTime done = sim_.now() + ser;
    if (!batching_ || !sim_.can_advance_inline(done)) {
      sim_.after_detached(ser,
                          [this, next = std::move(next)]() mutable { on_serialized(std::move(next)); });
      return;
    }
    auto& hc = sim::hotpath_counters();
    if (!fused_any) {
      fused_any = true;
      ++hc.batch_drains;
    }
    ++hc.batch_drained;
    sim_.advance_inline(done);
    p = std::move(next);
  }
}

}  // namespace corelite::net

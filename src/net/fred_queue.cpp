#include "net/fred_queue.h"

#include <algorithm>
#include <utility>

#include "net/ewma_aging.h"

namespace corelite::net {

FredQueue::FlowEntry& FredQueue::ensure_entry(FlowId id) {
  if (id >= flows_.size()) flows_.resize(id + 1);
  FlowEntry& fe = flows_[id];
  if (!fe.present) {
    fe.present = true;
    fe.qlen = 0;
    fe.strikes = 0;
    ++tracked_;
  }
  return fe;
}

void FredQueue::age_average(sim::SimTime now) {
  if (!idle_) return;
  avg_ = ewma_idle_aged(avg_, cfg_.ewma_weight, now - idle_since_, cfg_.typical_service_time);
  idle_ = false;
}

bool FredQueue::enqueue(Packet&& p, sim::SimTime now) {
  if (!p.is_data()) {  // control packets bypass FRED entirely
    q_.push_back(std::move(p));
    return true;
  }

  age_average(now);
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ + cfg_.ewma_weight * static_cast<double>(data_count_);

  FlowEntry& fe = ensure_entry(p.flow);  // created on first buffered packet
  const double nactive = std::max<std::size_t>(1, tracked_);
  const double avgcq = std::max(1.0, avg_ / static_cast<double>(nactive));
  const std::size_t max_q =
      std::max(cfg_.min_q, static_cast<std::size_t>(cfg_.min_thresh));

  bool drop = false;
  if (data_count_ >= cfg_.capacity_data_packets) {
    drop = true;  // hard buffer limit
  } else if (fe.qlen >= max_q ||
             (avg_ >= cfg_.max_thresh && static_cast<double>(fe.qlen) > 2.0 * avgcq) ||
             (static_cast<double>(fe.qlen) >= avgcq && fe.strikes > 1)) {
    // Non-adaptive flow management: penalize flows monopolizing the buffer.
    drop = true;
    ++fe.strikes;
  } else if (avg_ >= cfg_.min_thresh && avg_ < cfg_.max_thresh) {
    if (static_cast<double>(fe.qlen) >=
        std::max(static_cast<double>(cfg_.min_q), avgcq)) {
      // RED's spaced probabilistic drop.
      const double pb = cfg_.max_drop_prob * (avg_ - cfg_.min_thresh) /
                        (cfg_.max_thresh - cfg_.min_thresh);
      ++count_since_drop_;
      const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
      const double pa = denom <= 0.0 ? 1.0 : pb / denom;
      if (rng_->bernoulli(pa)) {
        drop = true;
        count_since_drop_ = 0;
      }
    }
  } else if (avg_ >= cfg_.max_thresh) {
    // Average beyond maxth: only flows within their min_q allowance get in.
    if (fe.qlen >= cfg_.min_q) {
      drop = true;
      count_since_drop_ = 0;
    }
  } else {
    count_since_drop_ = -1;
  }

  if (drop) {
    if (fe.qlen == 0) erase_entry(fe);  // no state without buffered packets
    return false;
  }
  ++fe.qlen;
  ++data_count_;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> FredQueue::dequeue(sim::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  if (p.is_data()) {
    --data_count_;
    if (p.flow < flows_.size() && flows_[p.flow].present && --flows_[p.flow].qlen == 0) {
      // FRED keeps per-flow state only while packets are buffered.
      erase_entry(flows_[p.flow]);
    }
    if (data_count_ == 0) {
      idle_ = true;
      idle_since_ = now;
    }
  }
  return p;
}

}  // namespace corelite::net

// Identifier types shared across the network substrate.
#pragma once

#include <cstdint>
#include <limits>

namespace corelite::net {

/// Index of a node within its Network.  Dense, assigned in creation order.
using NodeId = std::uint32_t;

/// Network-unique identifier of an edge-to-edge flow.
using FlowId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr FlowId kInvalidFlow = std::numeric_limits<FlowId>::max();

}  // namespace corelite::net

#include "net/choke_queue.h"

#include <utility>

#include "net/ewma_aging.h"

namespace corelite::net {

void ChokeQueue::age_average(sim::SimTime now) {
  if (!idle_) return;
  avg_ = ewma_idle_aged(avg_, cfg_.ewma_weight, now - idle_since_, cfg_.typical_service_time);
  idle_ = false;
}

bool ChokeQueue::choke_match_and_kill(const Packet& arrival) {
  if (data_count_ == 0) return false;
  // Pick a uniformly random DATA packet: draw positions until one is
  // data (control packets are rare and zero-size; bounded retries).
  for (int tries = 0; tries < 8; ++tries) {
    const auto idx = static_cast<std::size_t>(
        rng_->uniform_int(0, static_cast<std::int64_t>(q_.size()) - 1));
    Packet& candidate = q_[idx];
    if (!candidate.is_data()) continue;
    if (candidate.flow != arrival.flow) return false;
    // Same flow: kill the queued one too.
    ++matches_;
    Packet victim = std::move(candidate);
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(idx));
    --data_count_;
    notify_internal_drop(victim);
    return true;
  }
  return false;
}

bool ChokeQueue::enqueue(Packet&& p, sim::SimTime now) {
  if (!p.is_data()) {
    q_.push_back(std::move(p));
    return true;
  }

  age_average(now);
  avg_ = (1.0 - cfg_.ewma_weight) * avg_ + cfg_.ewma_weight * static_cast<double>(data_count_);

  if (avg_ >= cfg_.min_thresh) {
    // The CHOKe comparison: a random queued packet of the same flow
    // dooms both.
    if (choke_match_and_kill(p)) return false;
  }

  bool drop = false;
  if (data_count_ >= cfg_.capacity_data_packets || avg_ >= cfg_.max_thresh) {
    drop = true;
    count_since_drop_ = 0;
  } else if (avg_ >= cfg_.min_thresh) {
    const double pb = cfg_.max_drop_prob * (avg_ - cfg_.min_thresh) /
                      (cfg_.max_thresh - cfg_.min_thresh);
    ++count_since_drop_;
    const double denom = 1.0 - static_cast<double>(count_since_drop_) * pb;
    const double pa = denom <= 0.0 ? 1.0 : pb / denom;
    if (rng_->bernoulli(pa)) {
      drop = true;
      count_since_drop_ = 0;
    }
  } else {
    count_since_drop_ = -1;
  }

  if (drop) return false;
  ++data_count_;
  q_.push_back(std::move(p));
  return true;
}

std::optional<Packet> ChokeQueue::dequeue(sim::SimTime now) {
  if (q_.empty()) return std::nullopt;
  Packet p = std::move(q_.front());
  q_.pop_front();
  if (p.is_data()) {
    --data_count_;
    if (data_count_ == 0) {
      idle_ = true;
      idle_since_ = now;
    }
  }
  return p;
}

}  // namespace corelite::net

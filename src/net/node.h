// A forwarding node: host, edge router or core router.
//
// Nodes keep only a next-hop table keyed by destination node — no
// per-flow state, matching the paper's core-stateless requirement.
// QoS machinery (Corelite edge/core logic, CSFQ) attaches from outside
// via the local sink and via link observers/admission policies.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "net/types.h"

namespace corelite::net {

class Node {
 public:
  using LocalSink = std::function<void(Packet&&)>;

  Node(NodeId id, std::string name) : id_{id}, name_{std::move(name)} {}

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Handler for packets addressed to this node.  Edge routers install
  /// their feedback/loss-notice handler here; egress sinks count
  /// delivered data packets.
  void set_local_sink(LocalSink sink) { local_sink_ = std::move(sink); }

  /// Optional transit interceptor, consulted for packets this node
  /// would otherwise *forward*.  Returning true means the hook took the
  /// packet (moving from it) — e.g. an ingress edge router diverting a
  /// host's packet into its per-flow shaping queue.  Returning false
  /// leaves the packet untouched for normal forwarding.
  using TransitHook = std::function<bool(Packet&)>;
  void set_transit_hook(TransitHook hook) { transit_hook_ = std::move(hook); }

  void add_out_link(Link* link) { out_links_.push_back(link); }
  [[nodiscard]] const std::vector<Link*>& out_links() const { return out_links_; }

  void set_next_hop(NodeId dst, Link* link) {
    if (dst >= fib_.size()) fib_.resize(dst + 1, nullptr);
    fib_[dst] = link;
  }
  [[nodiscard]] Link* next_hop(NodeId dst) const {
    return dst < fib_.size() ? fib_[dst] : nullptr;
  }

  /// Arrival processing: deliver locally or forward along the FIB.
  /// Returns false if the packet had no route (caller accounts for it).
  bool receive(Packet&& p);

  [[nodiscard]] std::uint64_t forwarded() const { return forwarded_; }
  [[nodiscard]] std::uint64_t delivered_locally() const { return delivered_locally_; }

 private:
  NodeId id_;
  std::string name_;
  LocalSink local_sink_;
  TransitHook transit_hook_;
  std::vector<Link*> out_links_;
  // Dense next-hop table indexed by destination id.  Node ids are dense
  // (assigned sequentially by Network::add_node), so a flat vector turns
  // the per-hop route lookup into an index instead of a hash probe.
  std::vector<Link*> fib_;
  std::uint64_t forwarded_ = 0;
  std::uint64_t delivered_locally_ = 0;
};

}  // namespace corelite::net

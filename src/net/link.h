// A unidirectional link: output queue + transmitter + propagation pipe.
//
// The upstream node hands packets to Link::send().  The link runs an
// admission policy (pluggable — CSFQ's probabilistic dropper lives here),
// queues accepted packets, serializes them at the link rate and delivers
// them to the downstream node after the propagation delay.
//
// Observers see every enqueue / drop / dequeue plus each change of the
// data queue length; Corelite's congestion estimator and marker selector
// attach as observers without the link knowing anything about them —
// the forwarding plane stays QoS-agnostic, as the paper requires.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/packet_pool.h"
#include "net/queue.h"
#include "net/types.h"
#include "sim/simulator.h"
#include "sim/units.h"

namespace corelite::net {

class Network;
class Link;

/// Decides, per packet, whether a link accepts it (and may rewrite its
/// label).  Used by CSFQ core routers.  Data packets only; control
/// packets are always admitted.
class AdmissionPolicy {
 public:
  virtual ~AdmissionPolicy() = default;
  /// Return true to accept.  May mutate `p` (e.g. CSFQ relabeling).
  [[nodiscard]] virtual bool admit(Packet& p, sim::SimTime now) = 0;
};

/// Passive tap on a link's queue activity.
class LinkObserver {
 public:
  virtual ~LinkObserver() = default;
  virtual void on_enqueue(const Packet&, sim::SimTime) {}
  virtual void on_drop(const Packet&, sim::SimTime) {}
  virtual void on_dequeue(const Packet&, sim::SimTime) {}
  /// Fired whenever the number of queued data packets changes.
  virtual void on_queue_length(std::size_t /*data_packets*/, sim::SimTime) {}
  /// Fired from the link's destructor while the observer is still
  /// attached.  Observers that can outlive the network (tracers,
  /// telemetry collectors) null their Link* here instead of detaching
  /// from a dead link later.
  virtual void on_link_destroyed(Link& /*link*/) {}
};

class Link {
 public:
  /// Observer interest mask.  Observers register for only the callbacks
  /// they override; the link keeps one list per event kind, so a packet
  /// passing an observed link never pays a virtual dispatch to a no-op
  /// default method (~1M wasted calls on a 60 s 80-flow run).
  enum ObserverEvents : unsigned {
    kObserveEnqueue = 1u << 0,
    kObserveDrop = 1u << 1,
    kObserveDequeue = 1u << 2,
    kObserveQueueLength = 1u << 3,
    kObserveAll = 0xFu,
  };

  struct Stats {
    std::uint64_t enqueued = 0;
    std::uint64_t dropped = 0;          ///< data packets dropped
    std::uint64_t dropped_control = 0;  ///< injected control-loss drops
    std::uint64_t delivered = 0;        ///< packets handed to the peer node
    std::uint64_t data_delivered = 0;   ///< data packets only
    sim::DataSize data_bytes_delivered;
  };

  Link(sim::Simulator& simulator, Network& network, NodeId from, NodeId to, sim::Rate rate,
       sim::TimeDelta propagation_delay, std::unique_ptr<PacketQueue> queue);

  Link(const Link&) = delete;
  Link& operator=(const Link&) = delete;

  /// Notifies every still-attached observer via on_link_destroyed().
  ~Link();

  /// Entry point for the upstream node.  Runs admission, queues, and
  /// (if the transmitter is idle) starts serialization.
  void send(Packet&& p);

  [[nodiscard]] NodeId from() const { return from_; }
  [[nodiscard]] NodeId to() const { return to_; }
  [[nodiscard]] sim::Rate rate() const { return rate_; }
  [[nodiscard]] sim::TimeDelta propagation_delay() const { return prop_delay_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  [[nodiscard]] std::size_t queued_data_packets() const { return queue_->data_packet_count(); }
  [[nodiscard]] PacketQueue& queue() { return *queue_; }

  /// Install the (single) admission policy.  Pass nullptr to remove.
  void set_admission(AdmissionPolicy* policy) { admission_ = policy; }

  /// Failure injection: drop each CONTROL packet (markers, feedback,
  /// loss notices, ACKs) with this probability.  Models corrupted or
  /// lost signalling headers; data packets are unaffected.  Default 0.
  void set_control_loss_rate(double p) { control_loss_rate_ = p; }
  [[nodiscard]] double control_loss_rate() const { return control_loss_rate_; }

  /// Attach a passive observer for the events in `events`.  Observers
  /// must either outlive the link or detach themselves with
  /// remove_observer() before destruction.  Passing a narrow mask keeps
  /// the unobserved dispatch points on their zero-cost fast path.
  void add_observer(LinkObserver* obs, unsigned events = kObserveAll) {
    if ((events & kObserveEnqueue) != 0) enqueue_obs_.push_back(obs);
    if ((events & kObserveDrop) != 0) drop_obs_.push_back(obs);
    if ((events & kObserveDequeue) != 0) dequeue_obs_.push_back(obs);
    if ((events & kObserveQueueLength) != 0) qlen_obs_.push_back(obs);
  }

  /// Detach a previously attached observer from every event list.
  /// No-op if absent.
  void remove_observer(LinkObserver* obs) {
    std::erase(enqueue_obs_, obs);
    std::erase(drop_obs_, obs);
    std::erase(dequeue_obs_, obs);
    std::erase(qlen_obs_, obs);
  }

 private:
  void start_transmission();
  void on_serialized(PooledPacket p);
  bool dequeue_next(PooledPacket& p);
  void notify_queue_length();
  void notify_drop(const Packet& p, sim::SimTime now);

  sim::Simulator& sim_;
  Network& net_;
  /// The upstream LP's packet pool (the network's only pool in legacy
  /// mode).  Pools are single-threaded; a link only ever touches its
  /// own LP's.
  PacketPool& pool_;
  NodeId from_;
  NodeId to_;
  /// Cut-link marker: endpoints live in different LPs, so propagation
  /// completions become cross-LP mailbox messages instead of local
  /// events.  Always false in legacy mode.
  bool cross_lp_ = false;
  std::uint32_t lp_from_ = 0;
  sim::Rate rate_;
  sim::TimeDelta prop_delay_;
  std::unique_ptr<PacketQueue> queue_;
  AdmissionPolicy* admission_ = nullptr;
  // One observer list per event kind (see ObserverEvents).
  std::vector<LinkObserver*> enqueue_obs_;
  std::vector<LinkObserver*> drop_obs_;
  std::vector<LinkObserver*> dequeue_obs_;
  std::vector<LinkObserver*> qlen_obs_;
  Stats stats_;
  double control_loss_rate_ = 0.0;
  bool busy_ = false;
  // Batched transmission (see on_serialized).  Read from the
  // CORELITE_NO_BATCH environment at construction so a process can
  // build comparison links with setenv() between constructions.
  bool batching_ = true;
};

}  // namespace corelite::net

// Weighted fair queueing (start-time fair queueing variant; Goyal,
// Vin & Cheng) — the state-INTENSIVE reference point.
//
// The paper's motivation (§1) is that Intserv-style per-flow weighted
// fairness "requires a substantial amount of per-flow state ... in the
// core".  This queue is that reference: it keeps a FIFO per active
// flow, tags packets with virtual start/finish times computed from the
// flow's weight, and serves in increasing start-tag order.  Two flows
// backlogged on the same link receive service in the exact ratio of
// their weights — the ideal Corelite approximates with no core state.
//
// Implementation notes:
//   - SFQ start-tag service (rather than textbook WFQ finish-time) is
//     used because it needs no reference fluid system and has the same
//     weighted-fairness guarantee up to one packet per flow.
//   - Virtual time v = start tag of the packet most recently dequeued.
//   - Per-flow state (queue + finish tag) exists only while the flow
//     is backlogged.
//   - Control packets bypass the scheduler through a strict-priority
//     queue (they are zero-size piggybacked headers).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "net/queue.h"

namespace corelite::net {

class WfqQueue final : public PacketQueue {
 public:
  using WeightFn = std::function<double(FlowId)>;

  /// `weight_of` supplies each flow's weight (the per-flow state a real
  /// WFQ router would have to carry); flows default to weight 1 if the
  /// function returns a non-positive value.
  WfqQueue(std::size_t capacity_data_packets, WeightFn weight_of)
      : capacity_{capacity_data_packets}, weight_of_{std::move(weight_of)} {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool empty() const override { return data_count_ == 0 && control_.empty(); }

  [[nodiscard]] double virtual_time() const { return vtime_; }
  /// Flows with packets currently queued.  (Finish-tag state is
  /// retained even for idle flows — the stateful cost of WFQ.)
  [[nodiscard]] std::size_t backlogged_flows() const { return backlogged_.size(); }
  /// Flows the scheduler holds tag state for (>= backlogged_flows()).
  [[nodiscard]] std::size_t tracked_flows() const { return tracked_; }
  [[nodiscard]] std::size_t flow_state_entries() const override { return tracked_; }

 private:
  struct Tagged {
    Packet packet;
    double start_tag = 0.0;
    double finish_tag = 0.0;
  };
  struct FlowQueue {
    std::deque<Tagged> q;
    double last_finish = 0.0;
    /// Weight cached at first touch (flow weights are per-run constants
    /// in every scenario; querying the callback per scheduler scan was
    /// the map-era hot spot).  Already normalized: non-positive -> 1.
    double weight = 1.0;
    bool present = false;  ///< scheduler holds tag state for this id
  };

  /// Dense per-flow table entry, created on first touch.
  FlowQueue& ensure_entry(FlowId id);
  /// Maintain the sorted backlogged-id list (scans iterate it in
  /// ascending id order — the same order, FP-sum order and tie-breaks
  /// as the ordered map this replaces).
  void mark_backlogged(FlowId id);
  void unmark_backlogged(FlowId id);

  std::size_t capacity_;
  WeightFn weight_of_;
  double vtime_ = 0.0;
  std::vector<FlowQueue> flows_;   ///< dense: flow id -> queue state
  std::vector<FlowId> backlogged_; ///< sorted ids with non-empty queues
  std::size_t tracked_ = 0;
  std::deque<Packet> control_;
};

}  // namespace corelite::net

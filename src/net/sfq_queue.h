// Stochastic fair queueing: hashed round-robin bands (McKenney '90).
//
// Another classic point on the state/fairness spectrum, and the
// concrete realization of the paper's remark (§3.1) that "a core router
// may have multiple packet queues ... we only care about the aggregate
// queue size over all the queues corresponding to a link": flows hash
// into a fixed number of FIFO bands served round-robin, giving
// approximate per-flow fairness with O(bands) state (collisions share a
// band's rate).  `data_packet_count()` reports the AGGREGATE across
// bands, so Corelite's congestion detector composes with this
// discipline unchanged — which tests/net_sfq_test.cpp exercises.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "net/queue.h"

namespace corelite::net {

class SfqQueue final : public PacketQueue {
 public:
  /// `bands`: number of hash buckets.  `per_band_capacity`: packets each
  /// band may hold (the aggregate capacity is bands * per_band).
  SfqQueue(std::size_t bands, std::size_t per_band_capacity, std::uint64_t hash_seed = 0x9e37)
      : bands_(bands), per_band_{per_band_capacity}, seed_{hash_seed}, queues_(bands) {}

  [[nodiscard]] bool enqueue(Packet&& p, sim::SimTime now) override;
  [[nodiscard]] std::optional<Packet> dequeue(sim::SimTime now) override;
  [[nodiscard]] bool empty() const override;

  [[nodiscard]] std::size_t band_of(FlowId flow) const {
    // Simple multiplicative hash; good enough dispersion for test-size
    // populations and fully deterministic.
    const std::uint64_t h = (static_cast<std::uint64_t>(flow) + seed_) * 0x9e3779b97f4a7c15ULL;
    return static_cast<std::size_t>(h >> 33) % bands_;
  }
  [[nodiscard]] std::size_t band_occupancy(std::size_t band) const {
    return queues_.at(band).size();
  }

 private:
  std::size_t bands_;
  std::size_t per_band_;
  std::uint64_t seed_;
  std::vector<std::deque<Packet>> queues_;
  std::deque<Packet> control_;  // strict priority, zero-size headers
  std::size_t next_band_ = 0;   // round-robin pointer
};

}  // namespace corelite::net

// A window-based TCP agent (Reno-flavoured) for end-host <-> edge
// interaction experiments.
//
// The paper's evaluation drives the network with rate-based source
// agents and lists "using agents like TCP which involve interaction
// between the edge router and end-host" as ongoing work.  This module
// provides that end-host: an ACK-clocked sender with slow start,
// congestion avoidance, fast retransmit/recovery and RTO, plus a
// cumulative-ACK receiver.  Segments are Data packets carrying `seq`;
// ACKs are zero-size control packets carrying the cumulative ack in
// `seq`.
//
// Intended deployment (examples/tcp_over_corelite.cpp): TCP hosts hang
// off ingress edge routers running in transit-shaping mode.  Corelite
// keeps the core loss-free; any policing drop happens in the edge's
// shaping queue, which is exactly the loss signal TCP adapts to —
// "drop packets from ill behaved flows at the edges of the network"
// (paper §6).
#pragma once

#include <cstdint>
#include <set>

#include "net/network.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace corelite::transport {

struct TcpConfig {
  sim::DataSize mss = sim::DataSize::kilobytes(1);
  double initial_cwnd_pkts = 2.0;
  double initial_ssthresh_pkts = 64.0;
  int dupack_threshold = 3;
  sim::TimeDelta min_rto = sim::TimeDelta::millis(200);
  sim::TimeDelta max_rto = sim::TimeDelta::seconds(60);
  /// Cap on cwnd (packets) — stands in for the receiver window.
  double max_cwnd_pkts = 1000.0;

  /// Receiver: delayed ACKs (RFC 1122 style).  Ack every second in-order
  /// segment, or after `ack_delay` if only one is pending; out-of-order
  /// arrivals are always acked immediately (they drive fast retransmit).
  bool delayed_acks = false;
  sim::TimeDelta ack_delay = sim::TimeDelta::millis(200);
};

/// Infinite-backlog TCP sender attached to a host node.
class TcpSender {
 public:
  TcpSender(net::Network& network, net::NodeId host, net::NodeId destination,
            net::FlowId flow, TcpConfig config = {});

  TcpSender(const TcpSender&) = delete;
  TcpSender& operator=(const TcpSender&) = delete;
  ~TcpSender();

  /// Begin transmitting at `at` (schedules the first window).
  void start(sim::SimTime at);

  /// Deliver an incoming ACK (the host node's local sink routes here).
  void on_ack(const net::Packet& ack);

  [[nodiscard]] double cwnd_pkts() const { return cwnd_; }
  [[nodiscard]] double ssthresh_pkts() const { return ssthresh_; }
  [[nodiscard]] bool in_slow_start() const { return cwnd_ < ssthresh_; }
  [[nodiscard]] std::uint64_t highest_acked() const { return highest_acked_; }
  [[nodiscard]] std::uint64_t segments_sent() const { return segments_sent_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  [[nodiscard]] sim::TimeDelta current_rto() const { return rto_; }
  [[nodiscard]] double srtt_sec() const { return srtt_; }

 private:
  void try_send();
  void send_segment(std::uint64_t seq, bool retransmit);
  void arm_rto();
  void on_rto();
  void update_rtt(sim::TimeDelta sample);

  net::Network& net_;
  net::NodeId host_;
  net::NodeId dst_;
  net::FlowId flow_;
  TcpConfig cfg_;

  std::uint64_t next_seq_ = 0;       ///< next new segment to send
  std::uint64_t highest_acked_ = 0;  ///< all seqs < this are acked
  double cwnd_;
  double ssthresh_;
  int dup_acks_ = 0;
  bool in_fast_recovery_ = false;
  /// NewReno: highest seq outstanding when fast recovery began; partial
  /// ACKs below this retransmit the next hole without leaving recovery.
  std::uint64_t recovery_point_ = 0;
  double rto_backoff_ = 1.0;

  // RTT estimation (RFC 6298 style).
  bool rtt_seeded_ = false;
  double srtt_ = 0.0;
  double rttvar_ = 0.0;
  sim::TimeDelta rto_;
  std::uint64_t rtt_probe_seq_ = 0;  ///< seq whose ACK times the RTT sample
  sim::SimTime rtt_probe_sent_;
  bool rtt_probe_armed_ = false;

  sim::EventHandle rto_event_;
  std::uint64_t segments_sent_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  bool started_ = false;
};

/// Cumulative-ACK receiver attached to the destination node.
class TcpReceiver {
 public:
  TcpReceiver(net::Network& network, net::NodeId host, net::NodeId sender_host,
              net::FlowId flow, TcpConfig config = {});
  ~TcpReceiver();

  /// Deliver an incoming data segment; emits a (possibly duplicate)
  /// cumulative ACK back to the sender (immediately, or per the delayed
  /// ACK policy when enabled).
  void on_segment(const net::Packet& segment);

  [[nodiscard]] std::uint64_t next_expected() const { return next_expected_; }
  [[nodiscard]] std::uint64_t delivered_in_order() const { return next_expected_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  [[nodiscard]] std::size_t reorder_buffer_size() const { return out_of_order_.size(); }

 private:
  void send_ack();

  net::Network& net_;
  net::NodeId host_;
  net::NodeId sender_;
  net::FlowId flow_;
  TcpConfig cfg_;
  std::uint64_t next_expected_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::uint64_t acks_sent_ = 0;
  int unacked_in_order_ = 0;
  sim::EventHandle delayed_ack_event_;
};

}  // namespace corelite::transport

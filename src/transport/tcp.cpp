#include "transport/tcp.h"

#include <algorithm>
#include <cmath>

namespace corelite::transport {

// ---------------------------------------------------------------------------
// TcpSender

TcpSender::TcpSender(net::Network& network, net::NodeId host, net::NodeId destination,
                     net::FlowId flow, TcpConfig config)
    : net_{network},
      host_{host},
      dst_{destination},
      flow_{flow},
      cfg_{config},
      cwnd_{config.initial_cwnd_pkts},
      ssthresh_{config.initial_ssthresh_pkts},
      rto_{sim::TimeDelta::seconds(1)} {}

TcpSender::~TcpSender() { rto_event_.cancel(); }

void TcpSender::start(sim::SimTime at) {
  net_.local_sim(host_).at(at, [this] {
    started_ = true;
    try_send();
  });
}

void TcpSender::send_segment(std::uint64_t seq, bool retransmit) {
  net::Packet p;
  p.uid = net_.next_packet_uid(host_);
  p.kind = net::PacketKind::Data;
  p.flow = flow_;
  p.src = host_;
  p.dst = dst_;
  p.size = cfg_.mss;
  p.seq = seq;
  p.created = net_.local_sim(host_).now();
  ++segments_sent_;
  if (retransmit) {
    ++retransmits_;
  } else if (!rtt_probe_armed_) {
    // Time one un-retransmitted segment per window (Karn's algorithm:
    // never sample retransmissions).
    rtt_probe_armed_ = true;
    rtt_probe_seq_ = seq;
    rtt_probe_sent_ = p.created;
  }
  net_.inject(host_, std::move(p));
}

void TcpSender::try_send() {
  if (!started_) return;
  const auto window_end =
      highest_acked_ + static_cast<std::uint64_t>(std::max(1.0, std::floor(cwnd_)));
  while (next_seq_ < window_end) {
    send_segment(next_seq_, /*retransmit=*/false);
    ++next_seq_;
  }
  arm_rto();
}

void TcpSender::arm_rto() {
  rto_event_.cancel();
  if (next_seq_ == highest_acked_) return;  // nothing outstanding
  rto_event_ = net_.local_sim(host_).after(rto_ * rto_backoff_, [this] { on_rto(); });
}

void TcpSender::update_rtt(sim::TimeDelta sample) {
  const double r = sample.sec();
  if (!rtt_seeded_) {
    rtt_seeded_ = true;
    srtt_ = r;
    rttvar_ = r / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(srtt_ - r);
    srtt_ = 0.875 * srtt_ + 0.125 * r;
  }
  const double rto = std::clamp(srtt_ + 4.0 * rttvar_, cfg_.min_rto.sec(), cfg_.max_rto.sec());
  rto_ = sim::TimeDelta::seconds(rto);
}

void TcpSender::on_ack(const net::Packet& ack) {
  const std::uint64_t cum = ack.seq;  // receiver's next expected seq
  if (cum > highest_acked_) {
    const auto newly_acked = cum - highest_acked_;
    highest_acked_ = cum;
    dup_acks_ = 0;
    rto_backoff_ = 1.0;  // forward progress resets exponential backoff

    if (rtt_probe_armed_ && cum > rtt_probe_seq_) {
      update_rtt(net_.local_sim(host_).now() - rtt_probe_sent_);
      rtt_probe_armed_ = false;
    }

    if (in_fast_recovery_) {
      if (cum < recovery_point_) {
        // NewReno partial ACK: the next hole is already lost too —
        // retransmit it immediately instead of waiting for three fresh
        // duplicate ACKs (which a small window cannot generate).
        send_segment(highest_acked_, /*retransmit=*/true);
        arm_rto();
        return;
      }
      // Full ACK: recovery complete; deflate to ssthresh.
      in_fast_recovery_ = false;
      cwnd_ = ssthresh_;
    } else if (cwnd_ < ssthresh_) {
      cwnd_ = std::min(cfg_.max_cwnd_pkts, cwnd_ + static_cast<double>(newly_acked));
    } else {
      cwnd_ = std::min(cfg_.max_cwnd_pkts,
                       cwnd_ + static_cast<double>(newly_acked) / std::max(1.0, cwnd_));
    }
    try_send();
    return;
  }

  // Duplicate ACK.
  ++dup_acks_;
  if (in_fast_recovery_) {
    // Window inflation: each dup ack signals a departed segment.
    cwnd_ = std::min(cfg_.max_cwnd_pkts, cwnd_ + 1.0);
    try_send();
    return;
  }
  if (dup_acks_ == cfg_.dupack_threshold) {
    // Fast retransmit the presumed-lost segment.
    ssthresh_ = std::max(2.0, cwnd_ / 2.0);
    cwnd_ = ssthresh_ + static_cast<double>(cfg_.dupack_threshold);
    in_fast_recovery_ = true;
    recovery_point_ = next_seq_;
    send_segment(highest_acked_, /*retransmit=*/true);
    arm_rto();
  }
}

void TcpSender::on_rto() {
  ++timeouts_;
  ssthresh_ = std::max(2.0, cwnd_ / 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_fast_recovery_ = false;
  rtt_probe_armed_ = false;  // Karn: discard the in-flight sample
  // Exponential backoff, capped; reset by the next new cumulative ACK.
  rto_backoff_ = std::min(rto_backoff_ * 2.0, cfg_.max_rto.sec() / rto_.sec());
  // Retransmit the first unacked segment; the receiver's out-of-order
  // buffer turns each filled hole into a large cumulative jump.
  send_segment(highest_acked_, /*retransmit=*/true);
  arm_rto();
}

// ---------------------------------------------------------------------------
// TcpReceiver

TcpReceiver::TcpReceiver(net::Network& network, net::NodeId host, net::NodeId sender_host,
                         net::FlowId flow, TcpConfig config)
    : net_{network}, host_{host}, sender_{sender_host}, flow_{flow}, cfg_{config} {}

TcpReceiver::~TcpReceiver() { delayed_ack_event_.cancel(); }

void TcpReceiver::send_ack() {
  delayed_ack_event_.cancel();
  unacked_in_order_ = 0;
  net::Packet ack;
  ack.uid = net_.next_packet_uid(host_);
  ack.kind = net::PacketKind::Ack;
  ack.flow = flow_;
  ack.src = host_;
  ack.dst = sender_;
  ack.size = sim::DataSize::zero();
  ack.seq = next_expected_;
  ack.created = net_.local_sim(host_).now();
  ++acks_sent_;
  net_.inject(host_, std::move(ack));
}

void TcpReceiver::on_segment(const net::Packet& segment) {
  const std::uint64_t seq = segment.seq;
  bool in_order = false;
  if (seq == next_expected_) {
    in_order = true;
    ++next_expected_;
    // Drain any contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == next_expected_) {
      out_of_order_.erase(out_of_order_.begin());
      ++next_expected_;
    }
  } else if (seq > next_expected_) {
    out_of_order_.insert(seq);
  }
  // else: old duplicate; still ack cumulatively (and immediately).

  if (!cfg_.delayed_acks || !in_order || !out_of_order_.empty()) {
    // Immediate ACK: delayed ACKs apply only to clean in-order arrivals;
    // gaps and duplicates must generate the dup-ACK stream fast
    // retransmit depends on.
    send_ack();
    return;
  }
  if (++unacked_in_order_ >= 2) {
    send_ack();
    return;
  }
  if (!delayed_ack_event_.pending()) {
    delayed_ack_event_ = net_.local_sim(host_).after(cfg_.ack_delay, [this] { send_ack(); });
  }
}

}  // namespace corelite::transport

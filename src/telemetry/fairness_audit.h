// The fairness auditor: per-window oracle-deviation telemetry.
//
// The paper's claim is a per-flow property — every flow's delivered
// rate tracks its weighted fair share — so the auditor makes that the
// measured signal instead of a post-hoc cross-check.  A periodic
// sampler (wired by the scenario runners on the opt-in audit path)
// calls on_window(); each window the auditor reads per-flow
// delivered/sent counter deltas from the FlowTracker, solves the
// demand-capped water-filling oracle (src/sim/fluid/allocator.h) for
// the flows active in the window, and records every flow's normalized
// rate, oracle share and signed relative deviation plus the window's
// Jain index.
//
// Demand capping matters: the oracle's share for a flow that chose to
// send less than its fair share is its demand, so self-throttled flows
// (staggered starts, churn gaps) don't read as "unfair".  Demand
// capping alone has a blind spot, though: an unresponsive flood beats
// adaptive senders down until their *offered* load is tiny, at which
// point the capped oracle blesses the flood's grab as spare capacity.
// The auditor therefore also solves the UNcapped weighted max-min
// share and flags any flow whose rate exceeds it by more than the band
// (AuditFlowSample::overage) — a flow can only hold more than its pure
// weighted share by crowding someone else out.  A droptail queue
// splitting capacity equally across unequal weights trips the capped
// test; a flood trips the overage test even after its victims give up.
//
// The watchdog trips after `watchdog_windows` CONSECUTIVE violating
// windows (a window violates when any measurable flow's |deviation|
// exceeds `band`).  Windows where the active set changed mid-window are
// transition noise and reset the count, as do the first `grace_windows`
// while the control loops converge.  On the first trip the ring buffer
// of the last `ring_capacity` fully-detailed windows — per-flow state
// plus every registered engine gauge (queue occupancies, CSFQ α) — is
// frozen into the report as the flight-recorder dump; auditing
// continues so the report still covers the whole run.
//
// Determinism: the audit sampler adds simulation events, so audit-on
// digests differ from audit-off — deterministically, and invariantly
// across --jobs (the audit rides run 0 of a sweep only).  The audit is
// therefore opt-in separately from --telemetry, which must keep digests
// bit-identical.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "net/types.h"
#include "sim/fluid/allocator.h"
#include "sim/units.h"
#include "stats/flow_tracker.h"
#include "telemetry/metrics.h"

namespace corelite::telemetry {

struct FairnessAuditConfig {
  bool enabled = false;
  /// Window length.  Shorter than the fluid detector's 25.6 s — the
  /// auditor integrates one or two control-loop oscillation periods,
  /// not a certification-grade mean.
  sim::TimeDelta window = sim::TimeDelta::seconds(6.4);
  /// Relative deviation band: a measurable flow with |deviation| beyond
  /// this makes its window a violation.
  double band = 0.40;
  /// Consecutive violating windows before the watchdog fires.
  int watchdog_windows = 4;
  /// Startup windows exempt from the watchdog (slow-start / LIMD ramp).
  int grace_windows = 3;
  /// Flows whose delivered AND oracle rates are below this (pkt/s) are
  /// too sparse to judge per-window; they are recorded but not counted.
  double rate_floor_pps = 5.0;
  /// Flight-recorder depth (windows kept in the ring).
  std::size_t ring_capacity = 32;
  /// Per-flow detail cap per recorded window; beyond it only the worst
  /// deviators are kept (summary stats still cover every flow).
  std::size_t max_flows_recorded = 64;
  /// Allow disarming the watchdog while keeping the deviation series
  /// (used when auditing scenarios that are SUPPOSED to be unfair).
  bool watchdog_enabled = true;
};

/// One flow's measurements for one window.
struct AuditFlowSample {
  net::FlowId id = net::kInvalidFlow;
  double weight = 1.0;
  double rate_pps = 0.0;        ///< delivered delta / window
  double sent_pps = 0.0;        ///< sent delta / window (the oracle's demand)
  double normalized = 0.0;      ///< rate / weight
  double oracle_pps = 0.0;      ///< demand-capped water-filling share
  double fair_share_pps = 0.0;  ///< UNcapped weighted max-min share
  double deviation = 0.0;       ///< (rate - oracle) / max(oracle, floor)
  /// (rate - fair_share) / max(fair_share, floor): how far the flow
  /// exceeds the share pure weighted max-min would give it.  The
  /// demand-capped deviation above excuses flows whose *senders* backed
  /// off — which is exactly what an unresponsive flood forces adaptive
  /// flows to do, laundering its grab as "spare capacity".  A positive
  /// overage beyond the band is a violation on its own.
  double overage = 0.0;
  bool active = false;          ///< active at the window midpoint
  bool measurable = false;      ///< active and above the rate floor
};

struct AuditWindow {
  std::uint64_t index = 0;
  double t0_sec = 0.0;
  double t1_sec = 0.0;
  double jain = 1.0;            ///< over active flows' normalized rates
  double max_abs_deviation = 0.0;
  net::FlowId worst_flow = net::kInvalidFlow;
  double worst_deviation = 0.0;  ///< signed, the max-|.| one
  std::size_t active_flows = 0;
  std::size_t measurable_flows = 0;
  std::size_t violations = 0;    ///< measurable flows out of band
  bool boundary = false;         ///< active set changed within the window
  bool spans_jump = false;       ///< window stretched by a fluid jump
  bool violating = false;
  std::vector<AuditFlowSample> flows;  ///< capped at max_flows_recorded
  std::vector<double> gauges;          ///< parallel to report gauge_names
};

struct FairnessAuditReport {
  FairnessAuditConfig config;
  std::vector<std::string> gauge_names;
  std::vector<AuditWindow> windows;
  bool watchdog_fired = false;
  double watchdog_t_sec = 0.0;
  std::uint64_t watchdog_window = 0;
  /// Ring contents frozen at the first trip, oldest first.
  std::vector<AuditWindow> flight_recorder;
  // Whole-run aggregates.
  double min_jain = 1.0;
  double worst_deviation = 0.0;  ///< signed, max-|.| over measurable windows
  net::FlowId worst_flow = net::kInvalidFlow;
  double worst_t_sec = 0.0;
};

class FairnessAuditor {
 public:
  struct FlowInfo {
    net::FlowId id = net::kInvalidFlow;
    double weight = 1.0;
    std::vector<std::uint32_t> links;  ///< indices into the capacity vector
  };
  /// Is flow `id` active (inside an activity window) at time `t_sec`?
  using ActiveFn = std::function<bool(net::FlowId, double)>;

  FairnessAuditor(FairnessAuditConfig cfg, const stats::FlowTracker& tracker,
                  std::vector<double> link_caps_pps, std::vector<FlowInfo> flows,
                  ActiveFn active);

  FairnessAuditor(const FairnessAuditor&) = delete;
  FairnessAuditor& operator=(const FairnessAuditor&) = delete;

  /// Register an engine gauge sampled into every recorded window (queue
  /// occupancy, CSFQ α, ...).  Call before the run starts.
  void add_gauge(std::string name, std::function<double()> poll);

  /// Close the window ending at `now`.  Wire as a periodic simulator
  /// callback with period = config.window.
  void on_window(sim::SimTime now);

  [[nodiscard]] bool watchdog_fired() const { return report_.watchdog_fired; }
  [[nodiscard]] std::uint64_t windows_audited() const { return report_.windows.size(); }

  /// Move the accumulated report out (call after the run).
  [[nodiscard]] FairnessAuditReport take_report();

 private:
  struct Gauge_ {
    std::string name;
    std::function<double()> poll;
  };
  struct FlowCursor {
    std::uint64_t last_delivered = 0;
    std::uint64_t last_sent = 0;
  };

  FairnessAuditConfig cfg_;
  const stats::FlowTracker& tracker_;
  std::vector<double> caps_;
  std::vector<FlowInfo> flows_;
  std::vector<sim::fluid::AllocFlow> alloc_flows_;  ///< parallel to flows_
  ActiveFn active_;
  std::vector<Gauge_> gauges_;
  std::vector<FlowCursor> cursors_;  ///< parallel to flows_

  double last_t_sec_ = 0.0;
  std::uint64_t window_index_ = 0;
  int consecutive_violations_ = 0;
  std::vector<AuditWindow> ring_;  ///< flight recorder, ring of cfg_.ring_capacity
  std::size_t ring_next_ = 0;

  FairnessAuditReport report_;

  // Live registry handles (no-ops unless telemetry::set_enabled(true)).
  Gauge m_jain_{"audit.jain"};
  Gauge m_max_dev_{"audit.max_abs_deviation"};
  Counter m_windows_{"audit.windows"};
  Counter m_violations_{"audit.violations"};
  Counter m_watchdog_{"audit.watchdog_fired"};
};

}  // namespace corelite::telemetry

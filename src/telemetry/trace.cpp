#include "telemetry/trace.h"

#include <cstdio>

#include "stats/json_writer.h"

namespace corelite::telemetry {

namespace {

/// Timestamps keep sub-µs precision (virtual events land on exact
/// simulated instants; %.6g would round 80-second runs to 10 ms grid).
std::string format_ts(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", us);
  return buf;
}

}  // namespace

void TraceWriter::set_process_name(int pid, std::string name) {
  const std::lock_guard<std::mutex> lock{mu_};
  process_names_[pid] = std::move(name);
}

void TraceWriter::set_thread_name(int pid, int tid, std::string name) {
  const std::lock_guard<std::mutex> lock{mu_};
  thread_names_[{pid, tid}] = std::move(name);
}

bool TraceWriter::push(Event&& e) {
  const std::lock_guard<std::mutex> lock{mu_};
  if (events_.size() >= limit_) {
    ++dropped_;
    return false;
  }
  events_.push_back(std::move(e));
  return true;
}

void TraceWriter::add_complete(int pid, int tid, std::string_view name, std::string_view cat,
                               double ts_us, double dur_us) {
  Event e;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts = ts_us;
  e.dur = dur_us;
  e.name = name;
  e.cat = cat;
  push(std::move(e));
}

void TraceWriter::add_complete(int pid, int tid, std::string_view name, std::string_view cat,
                               double ts_us, double dur_us, std::string_view arg_key,
                               double arg_value) {
  Event e;
  e.ph = 'X';
  e.pid = pid;
  e.tid = tid;
  e.ts = ts_us;
  e.dur = dur_us;
  e.name = name;
  e.cat = cat;
  e.arg_key = arg_key;
  e.arg_value = arg_value;
  push(std::move(e));
}

void TraceWriter::add_instant(int pid, int tid, std::string_view name, std::string_view cat,
                              double ts_us) {
  Event e;
  e.ph = 'i';
  e.pid = pid;
  e.tid = tid;
  e.ts = ts_us;
  e.name = name;
  e.cat = cat;
  push(std::move(e));
}

void TraceWriter::add_counter(int pid, std::string_view name, double ts_us,
                              std::string_view series, double value) {
  Event e;
  e.ph = 'C';
  e.pid = pid;
  e.tid = 0;
  e.ts = ts_us;
  e.name = name;
  e.cat = "counter";
  e.arg_key = series;
  e.arg_value = value;
  push(std::move(e));
}

void TraceWriter::set_event_limit(std::size_t limit) {
  const std::lock_guard<std::mutex> lock{mu_};
  limit_ = limit;
}

std::size_t TraceWriter::event_count() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return events_.size();
}

std::size_t TraceWriter::dropped_events() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return dropped_;
}

void TraceWriter::write(std::ostream& os) const {
  const std::lock_guard<std::mutex> lock{mu_};
  os << "{\n\"traceEvents\": [\n";
  bool first = true;
  const auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };
  for (const auto& [pid, name] : process_names_) {
    sep();
    os << R"({"name": "process_name", "ph": "M", "pid": )" << pid
       << R"(, "tid": 0, "args": {"name": ")" << stats::json_escape(name) << "\"}}";
  }
  for (const auto& [key, name] : thread_names_) {
    sep();
    os << R"({"name": "thread_name", "ph": "M", "pid": )" << key.first << R"(, "tid": )"
       << key.second << R"(, "args": {"name": ")" << stats::json_escape(name) << "\"}}";
  }
  for (const auto& e : events_) {
    sep();
    os << R"({"name": ")" << stats::json_escape(e.name) << R"(", "cat": ")"
       << stats::json_escape(e.cat) << R"(", "ph": ")" << e.ph << R"(", "pid": )" << e.pid
       << R"(, "tid": )" << e.tid << R"(, "ts": )" << format_ts(e.ts);
    if (e.ph == 'X') os << R"(, "dur": )" << format_ts(e.dur);
    if (e.ph == 'i') os << R"(, "s": "t")";
    if (!e.arg_key.empty()) {
      os << R"(, "args": {")" << stats::json_escape(e.arg_key)
         << "\": " << stats::json_number(e.arg_value) << "}";
    }
    os << "}";
  }
  os << "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"dropped_events\": " << dropped_
     << "}\n}\n";
}

}  // namespace corelite::telemetry

#include "telemetry/manifest.h"

#include <cmath>
#include <cstdio>

#include "stats/json_writer.h"
#include "telemetry/metrics.h"

#ifndef CORELITE_GIT_SHA
#define CORELITE_GIT_SHA "unknown"
#endif
#ifndef CORELITE_BUILD_FLAGS
#define CORELITE_BUILD_FLAGS "unknown"
#endif
#ifndef CORELITE_BUILD_TYPE
#define CORELITE_BUILD_TYPE "unknown"
#endif

namespace corelite::telemetry {

std::string_view BuildInfo::git_sha() { return CORELITE_GIT_SHA; }
#ifdef __VERSION__
std::string_view BuildInfo::compiler() { return __VERSION__; }
#else
std::string_view BuildInfo::compiler() { return "unknown"; }
#endif
std::string_view BuildInfo::flags() { return CORELITE_BUILD_FLAGS; }
std::string_view BuildInfo::build_type() { return CORELITE_BUILD_TYPE; }

std::string digest_hex(std::uint64_t digest) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(digest));
  return buf;
}

namespace {

void write_metric(std::ostream& os, const MetricSnapshot& m) {
  os << "    {\"name\": \"" << stats::json_escape(m.name) << "\", \"kind\": \""
     << metric_kind_name(m.kind) << "\", \"count\": " << m.count
     << ", \"sum\": " << stats::json_number(m.sum);
  if (m.kind != MetricKind::Counter && m.count > 0) {
    os << ", \"min\": " << stats::json_number(m.min)
       << ", \"max\": " << stats::json_number(m.max)
       << ", \"mean\": " << stats::json_number(m.mean());
  }
  if (m.kind == MetricKind::Gauge && m.count > 0) {
    os << ", \"last\": " << stats::json_number(m.last);
  }
  if (m.kind == MetricKind::Histogram && m.count > 0) {
    // Sparse bucket list: [bucket_floor, count] pairs for non-empty
    // buckets keeps the document small for narrow distributions.
    os << ", \"buckets\": [";
    bool first = true;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      if (m.buckets[b] == 0) continue;
      if (!first) os << ", ";
      first = false;
      os << "[" << stats::json_number(histogram_bucket_floor(b)) << ", " << m.buckets[b] << "]";
    }
    os << "]";
  }
  os << "}";
}

}  // namespace

void write_manifest(std::ostream& os, const RunManifest& m) {
  os << "{\n"
     << "  \"tool\": \"" << stats::json_escape(m.tool) << "\",\n"
     << "  \"scenario\": \"" << stats::json_escape(m.scenario) << "\",\n"
     << "  \"mechanism\": \"" << stats::json_escape(m.mechanism) << "\",\n"
     << "  \"base_seed\": " << m.base_seed << ",\n"
     << "  \"runs\": " << m.runs << ",\n"
     << "  \"jobs\": " << m.jobs << ",\n"
     << "  \"events\": " << m.events << ",\n"
     << "  \"result_digest\": \"" << digest_hex(m.result_digest) << "\",\n"
     << "  \"build\": {\n"
     << "    \"git_sha\": \"" << stats::json_escape(BuildInfo::git_sha()) << "\",\n"
     << "    \"compiler\": \"" << stats::json_escape(BuildInfo::compiler()) << "\",\n"
     << "    \"flags\": \"" << stats::json_escape(BuildInfo::flags()) << "\",\n"
     << "    \"build_type\": \"" << stats::json_escape(BuildInfo::build_type()) << "\"\n"
     << "  },\n";
  os << "  \"wall_phases_ms\": {";
  for (std::size_t i = 0; i < m.wall_phases_ms.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << stats::json_escape(m.wall_phases_ms[i].first)
       << "\": " << stats::json_number(m.wall_phases_ms[i].second);
  }
  os << "},\n";
  const sim::HotPathCounters& h = m.hotpath;
  os << "  \"hot_path_counters\": {"
     << "\"exp_calls\": " << h.exp_calls << ", \"exp_cache_hits\": " << h.exp_cache_hits
     << ", \"pow_calls\": " << h.pow_calls << ", \"pow_cache_hits\": " << h.pow_cache_hits
     << ", \"rng_draws\": " << h.rng_draws
     << ", \"observer_dispatches\": " << h.observer_dispatches
     << ", \"series_appends\": " << h.series_appends << "},\n";
  os << "  \"metrics\": [\n";
  const auto metrics = metrics_snapshot();
  for (std::size_t i = 0; i < metrics.size(); ++i) {
    write_metric(os, metrics[i]);
    os << (i + 1 < metrics.size() ? ",\n" : "\n");
  }
  os << "  ],\n";
  os << "  \"extra\": {";
  for (std::size_t i = 0; i < m.extra.size(); ++i) {
    if (i > 0) os << ", ";
    os << "\"" << stats::json_escape(m.extra[i].first) << "\": \""
       << stats::json_escape(m.extra[i].second) << "\"";
  }
  os << "}\n}\n";
}

}  // namespace corelite::telemetry

// Header-only glue between the telemetry layer and the experiment
// binaries (corelite_sim, sweep_harness, scale_flows).
//
// Kept out of corelite_telemetry proper because it needs the scenario
// and runner types (PaperTopology, RunResult) and the library must stay
// below them in the dependency order; binaries already link everything.
#pragma once

#include <chrono>
#include <fstream>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "runner/sweep.h"
#include "scenario/paper_topology.h"
#include "scenario/scenario.h"
#include "telemetry/manifest.h"
#include "telemetry/trace.h"
#include "telemetry/virtual_trace.h"

namespace corelite::telemetry {

/// Named wall-clock phases for the manifest: start() closes the current
/// phase and opens the next; stop() closes the last.
class PhaseTimer {
 public:
  void start(std::string name) {
    stop();
    current_ = std::move(name);
    t0_ = std::chrono::steady_clock::now();
    running_ = true;
  }

  void stop() {
    if (!running_) return;
    const double ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0_).count();
    phases_.emplace_back(std::move(current_), ms);
    running_ = false;
  }

  [[nodiscard]] const std::vector<std::pair<std::string, double>>& phases() const {
    return phases_;
  }

 private:
  std::vector<std::pair<std::string, double>> phases_;
  std::string current_;
  std::chrono::steady_clock::time_point t0_{};
  bool running_ = false;
};

/// Instrument hook tracing the run's congested links (the paper
/// topology's three core links, or a generated topology's designated
/// bottlenecks).  The collector is created inside the run (the network
/// only exists there) but parked in `slot`, which must outlive the run:
/// dying links notify it via on_link_destroyed, so destruction order is
/// safe either way.
[[nodiscard]] inline scenario::ScenarioSpec::InstrumentFn congested_link_instrument(
    TraceWriter& trace, std::unique_ptr<LinkTraceCollector>& slot) {
  return [&trace, &slot](net::Network& /*network*/, const std::vector<net::Link*>& congested) {
    slot = std::make_unique<LinkTraceCollector>(trace);
    for (net::Link* link : congested) {
      if (link != nullptr) slot->attach(*link);
    }
  };
}

/// Render the sweep's wall-clock execution (pid 2): one span per run on
/// its worker's track, from the RunResult bookkeeping the sweep runner
/// fills in.  Derived after the sweep completes, so recording costs the
/// workers nothing.
inline void add_wall_spans(TraceWriter& trace, const std::vector<runner::RunResult>& results) {
  trace.set_process_name(TraceWriter::kWallPid, "sweep wall-clock (us since start)");
  std::vector<bool> named;
  for (const auto& r : results) {
    if (!r.ok) continue;
    const int tid = static_cast<int>(r.worker);
    if (r.worker >= named.size()) named.resize(r.worker + 1, false);
    if (!named[r.worker]) {
      trace.set_thread_name(TraceWriter::kWallPid, tid, "worker " + std::to_string(r.worker));
      named[r.worker] = true;
    }
    const std::string name =
        runner::cell_key(r.desc) + " r" + std::to_string(r.desc.repeat);
    trace.add_complete(TraceWriter::kWallPid, tid, name, "run", r.wall_start_ms * 1000.0,
                       r.wall_ms * 1000.0, "events", static_cast<double>(r.events));
  }
}

/// Serialize `trace` to `path`; diagnostics to `err`.
inline bool write_trace_file(const TraceWriter& trace, const std::string& path,
                             std::ostream& err) {
  std::ofstream os{path};
  if (!os) {
    err << "cannot write " << path << "\n";
    return false;
  }
  trace.write(os);
  err << "wrote " << path << " (" << trace.event_count() << " events";
  if (trace.dropped_events() > 0) err << ", " << trace.dropped_events() << " over cap";
  err << ")\n";
  return true;
}

/// Serialize `manifest` to `path`; diagnostics to `err`.
inline bool write_manifest_file(const RunManifest& manifest, const std::string& path,
                                std::ostream& err) {
  std::ofstream os{path};
  if (!os) {
    err << "cannot write " << path << "\n";
    return false;
  }
  write_manifest(os, manifest);
  err << "wrote " << path << "\n";
  return true;
}

}  // namespace corelite::telemetry

#include "telemetry/engine_probe.h"

#include <algorithm>
#include <cmath>

#include "stats/json_writer.h"

namespace corelite::telemetry {

// ---------------------------------------------------------------- LpProfiler

void LpProfiler::on_run_start(std::size_t lp_count, std::size_t threads,
                              std::uint64_t windows_estimate) {
  // Called on the orchestrating thread before workers spawn, so
  // resizing the slot vectors here is race-free.
  report_.lp_count = std::max(report_.lp_count, lp_count);
  report_.threads = std::max(report_.threads, threads);
  report_.windows_estimate = std::max(report_.windows_estimate, windows_estimate);
  report_.runs += 1;
  if (report_.lps.size() < lp_count) report_.lps.resize(lp_count);
  if (report_.workers.size() < threads) report_.workers.resize(threads);
}

std::size_t LpProfiler::series_bucket(std::uint64_t window) const {
  const std::uint64_t total = std::max<std::uint64_t>(report_.windows_estimate, 1);
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(kSeriesBuckets - 1, window * kSeriesBuckets / total));
}

void LpProfiler::on_lp_window(std::size_t lp, std::uint64_t window, double run_ms,
                              std::uint64_t events) {
  if (lp >= report_.lps.size()) return;
  LpSummary& s = report_.lps[lp];  // single writer: LP's owning worker
  s.windows += 1;
  s.events += events;
  s.run_ms += run_ms;
  const std::size_t b = series_bucket(window);
  s.events_series[b] += events;
  s.run_ms_series[b] += run_ms;
}

void LpProfiler::on_barrier_wait(std::size_t worker, std::uint64_t /*window*/, double wait_ms) {
  if (worker >= report_.workers.size()) return;
  WorkerSummary& s = report_.workers[worker];  // single writer: worker itself
  s.barrier_waits += 1;
  s.barrier_wait_ms += wait_ms;
  s.max_wait_ms = std::max(s.max_wait_ms, wait_ms);
}

void LpProfiler::on_mailbox_drain(std::size_t dst_lp, std::uint64_t /*window*/,
                                  std::size_t msgs) {
  if (dst_lp >= report_.lps.size() || msgs == 0) return;
  LpSummary& s = report_.lps[dst_lp];  // single writer: dst's owning worker
  s.drains += 1;
  s.msgs_in += msgs;
  std::size_t bucket = 0;
  for (std::size_t m = msgs; m > 1 && bucket + 1 < kDepthBuckets; m >>= 1U) ++bucket;
  s.flush_depth_log2[bucket] += 1;
}

// ------------------------------------------------------- FluidFlightRecorder

std::string_view FluidFlightRecorder::kind_name(sim::fluid::FluidCertEvent::Kind k) {
  using Kind = sim::fluid::FluidCertEvent::Kind;
  switch (k) {
    case Kind::kWindowReset: return "window_reset";
    case Kind::kBoundaryReset: return "boundary_reset";
    case Kind::kAttempt: return "attempt";
    case Kind::kRejectMinSkip: return "reject_min_skip";
    case Kind::kRejectDrift: return "reject_drift";
    case Kind::kRejectAgreement: return "reject_agreement";
    case Kind::kAccept: return "accept";
    case Kind::kReanchor: return "reanchor";
  }
  return "unknown";
}

// ------------------------------------------------------------ trace renders

void render_audit_trace(TraceWriter& trace, const FairnessAuditReport& report) {
  constexpr int kPid = TraceWriter::kVirtualPid;
  for (const AuditWindow& w : report.windows) {
    const double ts = w.t1_sec * 1e6;
    trace.add_counter(kPid, "audit.jain", ts, "jain", w.jain);
    trace.add_counter(kPid, "audit.max_abs_deviation", ts, "max_abs_dev", w.max_abs_deviation);
    trace.add_counter(kPid, "audit.violations", ts, "violations",
                      static_cast<double>(w.violations));
  }
  // One deviation series for the run's overall worst offender, so the
  // failure is a plotted line rather than a number in a table.
  if (report.worst_flow != net::kInvalidFlow) {
    const std::string series = "flow " + std::to_string(report.worst_flow);
    for (const AuditWindow& w : report.windows) {
      for (const AuditFlowSample& s : w.flows) {
        if (s.id != report.worst_flow) continue;
        trace.add_counter(kPid, "audit.worst_flow_deviation", w.t1_sec * 1e6, series,
                          s.deviation);
        break;
      }
    }
  }
  if (report.watchdog_fired) {
    trace.add_instant(kPid, 0, "fairness watchdog FIRED", "audit",
                      report.watchdog_t_sec * 1e6);
  }
}

void render_lp_trace(TraceWriter& trace, const LpProfiler::Report& report) {
  if (report.lp_count == 0) return;
  constexpr int kPid = TraceWriter::kEnginePid;
  trace.set_process_name(kPid, "LP runtime (ms of run wall time)");
  // Per-LP tracks: downsampled execution spans laid end to end on each
  // LP's own thread row; the span's arg carries the bucket event count.
  for (std::size_t lp = 0; lp < report.lps.size(); ++lp) {
    const LpProfiler::LpSummary& s = report.lps[lp];
    const int tid = static_cast<int>(lp);
    trace.set_thread_name(kPid, tid, "LP " + std::to_string(lp));
    double cursor_us = 0.0;
    for (std::size_t b = 0; b < LpProfiler::kSeriesBuckets; ++b) {
      const double dur_us = s.run_ms_series[b] * 1000.0;
      if (dur_us <= 0.0 && s.events_series[b] == 0) continue;
      trace.add_complete(kPid, tid, "bucket " + std::to_string(b), "lp-run", cursor_us,
                         std::max(dur_us, 0.001), "events",
                         static_cast<double>(s.events_series[b]));
      cursor_us += std::max(dur_us, 0.001);
    }
    trace.add_counter(kPid, "lp.events", static_cast<double>(lp), "LP " + std::to_string(lp),
                      static_cast<double>(s.events));
  }
  for (std::size_t w = 0; w < report.workers.size(); ++w) {
    trace.add_counter(kPid, "lp.barrier_wait_ms", static_cast<double>(w),
                      "worker " + std::to_string(w), report.workers[w].barrier_wait_ms);
  }
}

void render_fluid_cert_trace(TraceWriter& trace, const FluidFlightRecorder& recorder) {
  constexpr int kPid = TraceWriter::kVirtualPid;
  for (const sim::fluid::FluidCertEvent& e : recorder.events()) {
    const std::string name = "fluid " + std::string(FluidFlightRecorder::kind_name(e.kind));
    trace.add_instant(kPid, 0, name, "fluid-cert", e.t_sec * 1e6);
  }
}

// ------------------------------------------------------------- audit JSON

namespace {

void write_flow_sample(std::ostream& os, const AuditFlowSample& s) {
  os << "{\"id\": " << s.id << ", \"weight\": " << stats::json_number(s.weight)
     << ", \"rate_pps\": " << stats::json_number(s.rate_pps)
     << ", \"sent_pps\": " << stats::json_number(s.sent_pps)
     << ", \"normalized\": " << stats::json_number(s.normalized)
     << ", \"oracle_pps\": " << stats::json_number(s.oracle_pps)
     << ", \"fair_share_pps\": " << stats::json_number(s.fair_share_pps)
     << ", \"deviation\": " << stats::json_number(s.deviation)
     << ", \"overage\": " << stats::json_number(s.overage)
     << ", \"active\": " << (s.active ? "true" : "false")
     << ", \"measurable\": " << (s.measurable ? "true" : "false") << "}";
}

void write_window(std::ostream& os, const AuditWindow& w, const char* indent) {
  os << indent << "{\"index\": " << w.index << ", \"t0_sec\": " << stats::json_number(w.t0_sec)
     << ", \"t1_sec\": " << stats::json_number(w.t1_sec)
     << ", \"jain\": " << stats::json_number(w.jain)
     << ", \"max_abs_deviation\": " << stats::json_number(w.max_abs_deviation)
     << ", \"worst_flow\": " << (w.worst_flow == net::kInvalidFlow ? -1 : static_cast<long long>(w.worst_flow))
     << ", \"worst_deviation\": " << stats::json_number(w.worst_deviation)
     << ", \"active_flows\": " << w.active_flows
     << ", \"measurable_flows\": " << w.measurable_flows
     << ", \"violations\": " << w.violations
     << ", \"boundary\": " << (w.boundary ? "true" : "false")
     << ", \"spans_jump\": " << (w.spans_jump ? "true" : "false")
     << ", \"violating\": " << (w.violating ? "true" : "false") << ",\n"
     << indent << " \"flows\": [";
  for (std::size_t i = 0; i < w.flows.size(); ++i) {
    if (i != 0) os << ", ";
    write_flow_sample(os, w.flows[i]);
  }
  os << "],\n" << indent << " \"gauges\": [";
  for (std::size_t i = 0; i < w.gauges.size(); ++i) {
    if (i != 0) os << ", ";
    os << stats::json_number(w.gauges[i]);
  }
  os << "]}";
}

void write_fairness(std::ostream& os, const FairnessAuditReport& r) {
  os << "  \"fairness\": {\n"
     << "    \"window_sec\": " << stats::json_number(r.config.window.sec()) << ",\n"
     << "    \"band\": " << stats::json_number(r.config.band) << ",\n"
     << "    \"watchdog_windows\": " << r.config.watchdog_windows << ",\n"
     << "    \"grace_windows\": " << r.config.grace_windows << ",\n"
     << "    \"rate_floor_pps\": " << stats::json_number(r.config.rate_floor_pps) << ",\n"
     << "    \"watchdog_enabled\": " << (r.config.watchdog_enabled ? "true" : "false") << ",\n"
     << "    \"watchdog_fired\": " << (r.watchdog_fired ? "true" : "false") << ",\n"
     << "    \"watchdog_t_sec\": " << stats::json_number(r.watchdog_t_sec) << ",\n"
     << "    \"watchdog_window\": " << r.watchdog_window << ",\n"
     << "    \"min_jain\": " << stats::json_number(r.min_jain) << ",\n"
     << "    \"worst_deviation\": " << stats::json_number(r.worst_deviation) << ",\n"
     << "    \"worst_flow\": "
     << (r.worst_flow == net::kInvalidFlow ? -1 : static_cast<long long>(r.worst_flow)) << ",\n"
     << "    \"worst_t_sec\": " << stats::json_number(r.worst_t_sec) << ",\n"
     << "    \"gauge_names\": [";
  for (std::size_t i = 0; i < r.gauge_names.size(); ++i) {
    if (i != 0) os << ", ";
    os << "\"" << stats::json_escape(r.gauge_names[i]) << "\"";
  }
  os << "],\n    \"windows\": [\n";
  for (std::size_t i = 0; i < r.windows.size(); ++i) {
    write_window(os, r.windows[i], "      ");
    os << (i + 1 < r.windows.size() ? ",\n" : "\n");
  }
  os << "    ],\n    \"flight_recorder\": [\n";
  for (std::size_t i = 0; i < r.flight_recorder.size(); ++i) {
    write_window(os, r.flight_recorder[i], "      ");
    os << (i + 1 < r.flight_recorder.size() ? ",\n" : "\n");
  }
  os << "    ]\n  }";
}

void write_engine(std::ostream& os, const LpProfiler::Report& r) {
  os << "  \"engine\": {\n"
     << "    \"lp_count\": " << r.lp_count << ",\n"
     << "    \"threads\": " << r.threads << ",\n"
     << "    \"windows_estimate\": " << r.windows_estimate << ",\n"
     << "    \"runs\": " << r.runs << ",\n"
     << "    \"lps\": [\n";
  for (std::size_t lp = 0; lp < r.lps.size(); ++lp) {
    const LpProfiler::LpSummary& s = r.lps[lp];
    os << "      {\"lp\": " << lp << ", \"windows\": " << s.windows
       << ", \"events\": " << s.events << ", \"run_ms\": " << stats::json_number(s.run_ms)
       << ", \"drains\": " << s.drains << ", \"msgs_in\": " << s.msgs_in
       << ", \"flush_depth_log2\": [";
    // Trim trailing zero buckets to keep the document small.
    std::size_t last = 0;
    for (std::size_t b = 0; b < LpProfiler::kDepthBuckets; ++b) {
      if (s.flush_depth_log2[b] != 0) last = b + 1;
    }
    for (std::size_t b = 0; b < last; ++b) {
      if (b != 0) os << ", ";
      os << s.flush_depth_log2[b];
    }
    os << "]}";
    os << (lp + 1 < r.lps.size() ? ",\n" : "\n");
  }
  os << "    ],\n    \"workers\": [\n";
  for (std::size_t w = 0; w < r.workers.size(); ++w) {
    const LpProfiler::WorkerSummary& s = r.workers[w];
    os << "      {\"worker\": " << w << ", \"barrier_waits\": " << s.barrier_waits
       << ", \"barrier_wait_ms\": " << stats::json_number(s.barrier_wait_ms)
       << ", \"max_wait_ms\": " << stats::json_number(s.max_wait_ms) << "}";
    os << (w + 1 < r.workers.size() ? ",\n" : "\n");
  }
  os << "    ]\n  }";
}

void write_fluid_cert(std::ostream& os, const FluidFlightRecorder& rec,
                      const sim::fluid::FluidStats* stats) {
  os << "  \"fluid_cert\": {\n";
  if (stats != nullptr) {
    const double accepts = static_cast<double>(stats->jumps);
    os << "    \"attempts\": " << stats->cert_attempts << ",\n"
       << "    \"reject_min_skip\": " << stats->cert_reject_min_skip << ",\n"
       << "    \"reject_drift\": " << stats->cert_reject_drift << ",\n"
       << "    \"reject_agreement\": " << stats->cert_reject_agreement << ",\n"
       << "    \"accepts\": " << stats->jumps << ",\n"
       << "    \"mean_dwell_at_accept\": "
       << stats::json_number(accepts > 0.0 ? stats->cert_dwell_at_accept_sum / accepts : 0.0)
       << ",\n";
  }
  os << "    \"dropped_events\": " << rec.dropped() << ",\n    \"events\": [\n";
  const auto& evs = rec.events();
  for (std::size_t i = 0; i < evs.size(); ++i) {
    const sim::fluid::FluidCertEvent& e = evs[i];
    os << "      {\"kind\": \"" << FluidFlightRecorder::kind_name(e.kind)
       << "\", \"t_sec\": " << stats::json_number(e.t_sec) << ", \"dwell\": " << e.dwell
       << ", \"window_sec\": " << stats::json_number(e.window_sec)
       << ", \"extra\": " << stats::json_number(e.extra) << "}";
    os << (i + 1 < evs.size() ? ",\n" : "\n");
  }
  os << "    ]\n  }";
}

}  // namespace

void write_audit_json(std::ostream& os, const AuditDocument& doc) {
  os << "{\n  \"audit_schema\": \"corelite-audit-v1\",\n"
     << "  \"scenario\": \"" << stats::json_escape(doc.scenario) << "\",\n"
     << "  \"mechanism\": \"" << stats::json_escape(doc.mechanism) << "\",\n"
     << "  \"seed\": " << doc.seed;
  if (doc.fairness != nullptr) {
    os << ",\n";
    write_fairness(os, *doc.fairness);
  }
  if (doc.engine != nullptr) {
    os << ",\n";
    write_engine(os, *doc.engine);
  }
  if (doc.fluid_cert != nullptr) {
    os << ",\n";
    write_fluid_cert(os, *doc.fluid_cert, doc.fluid_stats);
  }
  os << "\n}\n";
}

}  // namespace corelite::telemetry

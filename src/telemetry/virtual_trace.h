// Virtual-time packet-lifecycle tracks for the Chrome trace exporter.
//
// A LinkTraceCollector attaches to links as a passive observer and
// renders each link as one track (thread) of the virtual-time process:
//   - a "wait" span from enqueue to dequeue (time spent queued),
//   - a "tx" span from dequeue for the serialization time,
//   - an instant event per drop, and
//   - a queue-depth counter series sampled at every length change.
// Simulated seconds map to trace microseconds, so Perfetto's timeline
// reads directly in simulated time.
//
// It also feeds the metrics registry: per-hop queueing delay
// ("net.queue_wait_us") and queue depth ("net.queue_depth") histograms.
//
// Lifetime: the collector detaches from links it outlives and — via
// LinkObserver::on_link_destroyed — survives links that die first, so
// the owning binary can hold it across a run_paper_scenario() call
// whose network is torn down internally.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace corelite::telemetry {

class LinkTraceCollector {
 public:
  explicit LinkTraceCollector(TraceWriter& out, int pid = TraceWriter::kVirtualPid);

  LinkTraceCollector(const LinkTraceCollector&) = delete;
  LinkTraceCollector& operator=(const LinkTraceCollector&) = delete;

  /// Detaches from every link still alive.
  ~LinkTraceCollector();

  /// Start tracing a link; its track is named "from->to".
  void attach(net::Link& link);

  [[nodiscard]] std::size_t attached_links() const { return shims_.size(); }

 private:
  struct Shim final : net::LinkObserver {
    LinkTraceCollector* owner = nullptr;
    net::Link* link = nullptr;
    int tid = 0;
    std::string counter_name;
    /// uid -> enqueue timestamp (simulated µs); erased on dequeue.
    std::unordered_map<std::uint64_t, double> pending;

    void on_enqueue(const net::Packet& p, sim::SimTime now) override;
    void on_dequeue(const net::Packet& p, sim::SimTime now) override;
    void on_drop(const net::Packet& p, sim::SimTime now) override;
    void on_queue_length(std::size_t data_packets, sim::SimTime now) override;
    void on_link_destroyed(net::Link& l) override;
  };

  TraceWriter& out_;
  int pid_;
  int next_tid_ = 1;
  std::vector<std::unique_ptr<Shim>> shims_;
  Histogram queue_wait_us_{"net.queue_wait_us"};
  Histogram queue_depth_{"net.queue_depth"};
};

}  // namespace corelite::telemetry

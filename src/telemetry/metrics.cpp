#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <mutex>

namespace corelite::telemetry {

std::string_view metric_kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
  }
  return "unknown";
}

std::size_t histogram_bucket(double v) {
  if (!(v >= 1.0)) return 0;  // < 1, zero, negative and NaN all land in bucket 0
  const double capped = std::min(v, std::ldexp(1.0, kHistogramBuckets - 2));
  const auto u = static_cast<std::uint64_t>(capped);
  return std::min<std::size_t>(std::bit_width(u), kHistogramBuckets - 1);
}

double histogram_bucket_floor(std::size_t i) {
  return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
}

namespace {

/// One metric's accumulation state.  Merging two slots is commutative
/// except for `last`, which is last-flush-wins (gauges only).
struct Slot {
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  double last = 0.0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] bool empty() const { return count == 0; }

  void merge_into(Slot& g) const {
    g.kind = kind;
    g.count += count;
    g.sum += sum;
    g.min = std::min(g.min, min);
    g.max = std::max(g.max, max);
    g.last = last;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) g.buckets[b] += buckets[b];
  }
};

struct Registry {
  std::mutex mu;
  std::vector<std::string> names;     // index = MetricId
  std::vector<MetricKind> kinds;      // parallel to names
  std::map<std::string, MetricId, std::less<>> by_name;
  std::vector<Slot> aggregate;        // parallel to names

  static Registry& instance() {
    static Registry r;
    return r;
  }
};

thread_local std::vector<Slot> t_slots;

/// Size the thread block for `id`, copying the metric's kind into the
/// new slots.  Rare (first touch per thread per registry growth).
void grow_thread_block(MetricId id) {
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock{reg.mu};
  const std::size_t want = std::max<std::size_t>(id + 1, reg.names.size());
  t_slots.resize(want);
  for (std::size_t i = 0; i < t_slots.size() && i < reg.kinds.size(); ++i) {
    t_slots[i].kind = reg.kinds[i];
  }
}

}  // namespace

namespace detail {

void record(MetricId id, double v) {
  if (id >= t_slots.size()) grow_thread_block(id);
  Slot& s = t_slots[id];
  switch (s.kind) {
    case MetricKind::Counter:
      s.count += static_cast<std::uint64_t>(v);
      s.sum += v;
      break;
    case MetricKind::Gauge:
      ++s.count;
      s.sum += v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      s.last = v;
      break;
    case MetricKind::Histogram:
      ++s.count;
      s.sum += v;
      s.min = std::min(s.min, v);
      s.max = std::max(s.max, v);
      ++s.buckets[histogram_bucket(v)];
      break;
  }
}

}  // namespace detail

void set_enabled(bool on) { detail::g_enabled.store(on, std::memory_order_relaxed); }

MetricId register_metric(std::string_view name, MetricKind kind) {
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock{reg.mu};
  if (const auto it = reg.by_name.find(name); it != reg.by_name.end()) {
    return reg.kinds[it->second] == kind ? it->second : kInvalidMetric;
  }
  const auto id = static_cast<MetricId>(reg.names.size());
  reg.names.emplace_back(name);
  reg.kinds.push_back(kind);
  reg.aggregate.emplace_back().kind = kind;
  reg.by_name.emplace(reg.names.back(), id);
  return id;
}

void flush_thread_metrics() {
  if (t_slots.empty()) return;
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock{reg.mu};
  if (reg.aggregate.size() < t_slots.size()) reg.aggregate.resize(t_slots.size());
  for (std::size_t i = 0; i < t_slots.size(); ++i) {
    if (t_slots[i].empty()) continue;
    t_slots[i].merge_into(reg.aggregate[i]);
    t_slots[i] = Slot{};
    t_slots[i].kind = i < reg.kinds.size() ? reg.kinds[i] : MetricKind::Counter;
  }
}

std::vector<MetricSnapshot> metrics_snapshot() {
  flush_thread_metrics();
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock{reg.mu};
  std::vector<MetricSnapshot> out;
  out.reserve(reg.names.size());
  for (std::size_t i = 0; i < reg.names.size(); ++i) {
    MetricSnapshot m;
    m.name = reg.names[i];
    m.kind = reg.kinds[i];
    if (i < reg.aggregate.size() && !reg.aggregate[i].empty()) {
      const Slot& s = reg.aggregate[i];
      m.count = s.count;
      m.sum = s.sum;
      m.min = s.min;
      m.max = s.max;
      m.last = s.last;
      m.buckets = s.buckets;
    }
    out.push_back(std::move(m));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) { return a.name < b.name; });
  return out;
}

void reset_metrics() {
  Registry& reg = Registry::instance();
  const std::lock_guard<std::mutex> lock{reg.mu};
  for (std::size_t i = 0; i < reg.aggregate.size(); ++i) {
    reg.aggregate[i] = Slot{};
    reg.aggregate[i].kind = reg.kinds[i];
  }
  for (std::size_t i = 0; i < t_slots.size(); ++i) {
    t_slots[i] = Slot{};
    if (i < reg.kinds.size()) t_slots[i].kind = reg.kinds[i];
  }
}

}  // namespace corelite::telemetry

// Process-wide metrics registry: named counters, gauges and
// log-bucketed histograms.
//
// Components register a metric once (by name, under a mutex) and keep
// the returned handle; bumping a handle on the hot path is a couple of
// thread-local array writes — no allocation, no lock, no string lookup.
// Telemetry is OFF by default: a disabled handle bump is a single
// relaxed atomic load and a predicted branch, so instrumented code can
// stay compiled into release builds (the same contract as
// sim::HotPathCounters).
//
// Threading mirrors the hot-path counters: every thread accumulates
// into its own block and publishes it with flush_thread_metrics() — the
// sweep runner does this after each run, so sweep-wide aggregates are
// complete at any --jobs level.  Aggregation is commutative (sums,
// min/max, bucket adds), so the merged totals are independent of worker
// scheduling; only a gauge's `last` value depends on flush order.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace corelite::telemetry {

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

[[nodiscard]] std::string_view metric_kind_name(MetricKind k);

using MetricId = std::uint32_t;
inline constexpr MetricId kInvalidMetric = 0xffffffffu;

/// Histogram buckets are powers of two: bucket 0 holds values < 1,
/// bucket i (i >= 1) holds values in [2^(i-1), 2^i).
inline constexpr std::size_t kHistogramBuckets = 65;

namespace detail {
inline std::atomic<bool> g_enabled{false};
/// Out-of-line slow path: classify by kind and fold `v` into the
/// calling thread's slot for `id` (growing the block on first touch).
void record(MetricId id, double v);
}  // namespace detail

/// Master switch.  Off by default so experiment binaries pay nothing;
/// set before the run starts (the flag is read relaxed on hot paths).
void set_enabled(bool on);
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Merged view of one metric across every flushed thread block.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t count = 0;  ///< counter: total; gauge/histogram: samples
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;  ///< gauges only; last flushed value
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Register (or look up) a metric.  Idempotent by name; registering an
/// existing name with a different kind returns kInvalidMetric.
[[nodiscard]] MetricId register_metric(std::string_view name, MetricKind kind);

/// Publish the calling thread's block into the process aggregate and
/// zero it.  Called by the sweep runner after every run; cheap when the
/// thread recorded nothing.
void flush_thread_metrics();

/// Process aggregate (every flushed block) plus the calling thread's
/// unflushed block, sorted by metric name.  Metrics that were never
/// bumped still appear with count 0.
[[nodiscard]] std::vector<MetricSnapshot> metrics_snapshot();

/// Zero the aggregate and the calling thread's block (registrations —
/// names and ids — survive).  Tests and benchmarks call this between
/// measured sections; other threads' unflushed blocks are untouched.
void reset_metrics();

/// Histogram bucket index for a value (see kHistogramBuckets).
[[nodiscard]] std::size_t histogram_bucket(double v);

/// Lower bound of bucket `i` (0 for bucket 0).
[[nodiscard]] double histogram_bucket_floor(std::size_t i);

// --------------------------------------------------------------------------
// Cached handles.  Construct once (registry lookup under a mutex), bump
// freely: a disabled bump is one relaxed load + branch.

class Counter {
 public:
  Counter() = default;
  explicit Counter(std::string_view name)
      : id_{register_metric(name, MetricKind::Counter)} {}
  void add(std::uint64_t n = 1) const {
    if (enabled() && id_ != kInvalidMetric) detail::record(id_, static_cast<double>(n));
  }
  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_ = kInvalidMetric;
};

class Gauge {
 public:
  Gauge() = default;
  explicit Gauge(std::string_view name) : id_{register_metric(name, MetricKind::Gauge)} {}
  void set(double v) const {
    if (enabled() && id_ != kInvalidMetric) detail::record(id_, v);
  }
  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_ = kInvalidMetric;
};

class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::string_view name)
      : id_{register_metric(name, MetricKind::Histogram)} {}
  void observe(double v) const {
    if (enabled() && id_ != kInvalidMetric) detail::record(id_, v);
  }
  [[nodiscard]] MetricId id() const { return id_; }

 private:
  MetricId id_ = kInvalidMetric;
};

}  // namespace corelite::telemetry

#include "telemetry/virtual_trace.h"

#include <string>

#include "net/tracer.h"

namespace corelite::telemetry {

namespace {

constexpr double kUsPerSec = 1e6;

std::string span_name(const net::Packet& p) {
  std::string name{net::packet_kind_name(p.kind)};
  name += " f";
  name += std::to_string(p.flow);
  return name;
}

}  // namespace

LinkTraceCollector::LinkTraceCollector(TraceWriter& out, int pid) : out_{out}, pid_{pid} {
  out_.set_process_name(pid_, "virtual time (simulated µs)");
}

LinkTraceCollector::~LinkTraceCollector() {
  for (auto& s : shims_) {
    if (s->link != nullptr) s->link->remove_observer(s.get());
  }
}

void LinkTraceCollector::attach(net::Link& link) {
  auto shim = std::make_unique<Shim>();
  shim->owner = this;
  shim->link = &link;
  shim->tid = next_tid_++;
  const std::string track =
      std::to_string(link.from()) + "->" + std::to_string(link.to());
  shim->counter_name = "queue " + track;
  out_.set_thread_name(pid_, shim->tid, "link " + track);
  link.add_observer(shim.get(), net::Link::kObserveAll);
  shims_.push_back(std::move(shim));
}

void LinkTraceCollector::Shim::on_enqueue(const net::Packet& p, sim::SimTime now) {
  pending[p.uid] = now.sec() * kUsPerSec;
}

void LinkTraceCollector::Shim::on_dequeue(const net::Packet& p, sim::SimTime now) {
  const double ts = now.sec() * kUsPerSec;
  if (const auto it = pending.find(p.uid); it != pending.end()) {
    const double wait = ts - it->second;
    owner->out_.add_complete(owner->pid_, tid, span_name(p), "queue", it->second, wait);
    owner->queue_wait_us_.observe(wait);
    pending.erase(it);
  }
  if (link != nullptr) {
    const double ser = link->rate().serialization_time(p.size).sec() * kUsPerSec;
    owner->out_.add_complete(owner->pid_, tid, span_name(p), "tx", ts, ser, "size_bytes",
                             static_cast<double>(p.size.byte_count()));
  }
}

void LinkTraceCollector::Shim::on_drop(const net::Packet& p, sim::SimTime now) {
  pending.erase(p.uid);
  owner->out_.add_instant(owner->pid_, tid, "drop " + span_name(p), "drop",
                          now.sec() * kUsPerSec);
}

void LinkTraceCollector::Shim::on_queue_length(std::size_t data_packets, sim::SimTime now) {
  owner->out_.add_counter(owner->pid_, counter_name, now.sec() * kUsPerSec, "packets",
                          static_cast<double>(data_packets));
  owner->queue_depth_.observe(static_cast<double>(data_packets));
}

void LinkTraceCollector::Shim::on_link_destroyed(net::Link& /*l*/) { link = nullptr; }

}  // namespace corelite::telemetry

// Chrome trace_event JSON emission (the format chrome://tracing and
// Perfetto open directly).
//
// A TraceWriter buffers events and serializes them as the standard
// `{"traceEvents": [...]}` document.  The harness uses two "processes"
// as the two clock domains of a simulation campaign:
//   - pid 1 ("virtual time"): packet lifecycles in simulated time —
//     per-link tracks of queue-wait and transmit spans plus queue-depth
//     counters (see virtual_trace.h), timestamps in simulated µs;
//   - pid 2 ("sweep wall-clock"): one span per run on each worker
//     thread of the sweep pool, timestamps in real µs since the sweep
//     started.
// Opening one file therefore shows the simulated dynamics AND the
// harness parallelism side by side.
//
// Appends are mutex-protected (sweep workers may record concurrently);
// an event cap (default 2M) bounds memory and file size, with the
// overflow counted rather than silently discarded.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace corelite::telemetry {

class TraceWriter {
 public:
  /// Process ids of the clock domains (see file comment).  kEnginePid
  /// carries per-LP runtime-profiler tracks (engine_probe.h) — wall
  /// milliseconds of LP execution, separate from the sweep's pid 2 so
  /// run-internal and harness parallelism don't share tracks.
  static constexpr int kVirtualPid = 1;
  static constexpr int kWallPid = 2;
  static constexpr int kEnginePid = 3;

  /// Name a process / thread track (ph "M" metadata events).
  void set_process_name(int pid, std::string name);
  void set_thread_name(int pid, int tid, std::string name);

  /// Complete event (ph "X"): a span of `dur_us` starting at `ts_us`.
  void add_complete(int pid, int tid, std::string_view name, std::string_view cat, double ts_us,
                    double dur_us);
  /// Complete event with one numeric argument (shown in the event pane).
  void add_complete(int pid, int tid, std::string_view name, std::string_view cat, double ts_us,
                    double dur_us, std::string_view arg_key, double arg_value);

  /// Instant event (ph "i", thread scope).
  void add_instant(int pid, int tid, std::string_view name, std::string_view cat, double ts_us);

  /// Counter sample (ph "C"): `series` becomes the plotted line.
  void add_counter(int pid, std::string_view name, double ts_us, std::string_view series,
                   double value);

  /// Cap on buffered events; further adds are counted, not stored.
  void set_event_limit(std::size_t limit);

  [[nodiscard]] std::size_t event_count() const;
  [[nodiscard]] std::size_t dropped_events() const;

  /// Serialize the full document (metadata first, then events in
  /// insertion order).  Valid JSON by construction.
  void write(std::ostream& os) const;

 private:
  struct Event {
    char ph = 'X';
    int pid = 0;
    int tid = 0;
    double ts = 0.0;
    double dur = 0.0;
    std::string name;
    std::string cat;
    std::string arg_key;   ///< empty = no args object
    double arg_value = 0.0;
  };

  bool push(Event&& e);

  mutable std::mutex mu_;
  std::vector<Event> events_;
  std::map<int, std::string> process_names_;
  std::map<std::pair<int, int>, std::string> thread_names_;
  std::size_t limit_ = 2'000'000;
  std::size_t dropped_ = 0;
};

}  // namespace corelite::telemetry

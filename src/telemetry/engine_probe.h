// Engine introspection: the LP runtime profiler, the fluid-
// certification flight recorder, and the renderers that turn both plus
// the fairness audit into Chrome-trace tracks and the audit JSON
// document (`corelite-audit-v1`, validated by tools/check_telemetry.py
// and folded into HTML by tools/fairness_report.py).
//
// LpProfiler implements sim::par::LpProbe with one padded slot per LP
// and per worker — LpProbe's threading contract (single writer per
// slot) means no locks anywhere.  Per-LP event/message counts are
// thread-count-invariant (tests pin this); wall-clock figures are not.
// Window-resolved activity is downsampled into kSeriesBuckets fixed
// buckets so a million-window run still renders as bounded per-LP trace
// tracks (pid 3).
//
// FluidFlightRecorder implements sim::fluid::FluidProbe: an append-only
// bounded log of every certification decision, the data ROADMAP's
// detector auto-tuning needs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "sim/fluid/config.h"
#include "sim/fluid/probe.h"
#include "sim/parallel/lp_probe.h"
#include "telemetry/fairness_audit.h"
#include "telemetry/trace.h"

namespace corelite::telemetry {

class LpProfiler final : public sim::par::LpProbe {
 public:
  /// Fixed downsampling resolution for the per-LP trace tracks.
  static constexpr std::size_t kSeriesBuckets = 128;
  /// log2 buckets for mailbox flush depths (bucket i: depth in
  /// [2^(i-1), 2^i), bucket 0: depth 1).
  static constexpr std::size_t kDepthBuckets = 20;

  struct LpSummary {
    std::uint64_t windows = 0;  ///< barrier windows this LP executed
    std::uint64_t events = 0;   ///< events processed across all windows
    double run_ms = 0.0;        ///< wall time inside run_until batches
    std::uint64_t drains = 0;   ///< non-empty mailbox flushes received
    std::uint64_t msgs_in = 0;  ///< cross-LP messages received
    std::array<std::uint64_t, kDepthBuckets> flush_depth_log2{};
    std::array<std::uint64_t, kSeriesBuckets> events_series{};
    std::array<double, kSeriesBuckets> run_ms_series{};
  };

  struct WorkerSummary {
    std::uint64_t barrier_waits = 0;
    double barrier_wait_ms = 0.0;
    double max_wait_ms = 0.0;
  };

  struct Report {
    std::size_t lp_count = 0;
    std::size_t threads = 0;
    std::uint64_t windows_estimate = 0;
    std::uint64_t runs = 0;  ///< run_until invocations observed
    std::vector<LpSummary> lps;
    std::vector<WorkerSummary> workers;
  };

  void on_run_start(std::size_t lp_count, std::size_t threads,
                    std::uint64_t windows_estimate) override;
  void on_lp_window(std::size_t lp, std::uint64_t window, double run_ms,
                    std::uint64_t events) override;
  void on_barrier_wait(std::size_t worker, std::uint64_t window, double wait_ms) override;
  void on_mailbox_drain(std::size_t dst_lp, std::uint64_t window, std::size_t msgs) override;

  /// Snapshot after run_until returned (no workers running).
  [[nodiscard]] const Report& report() const { return report_; }

 private:
  [[nodiscard]] std::size_t series_bucket(std::uint64_t window) const;

  Report report_;
};

/// Bounded append-only log of fluid certification decisions.
class FluidFlightRecorder final : public sim::fluid::FluidProbe {
 public:
  explicit FluidFlightRecorder(std::size_t capacity = 4096) : capacity_{capacity} {}

  void on_cert_event(const sim::fluid::FluidCertEvent& e) override {
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else {
      ++dropped_;
    }
  }

  [[nodiscard]] const std::vector<sim::fluid::FluidCertEvent>& events() const { return events_; }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  [[nodiscard]] static std::string_view kind_name(sim::fluid::FluidCertEvent::Kind k);

 private:
  std::size_t capacity_;
  std::vector<sim::fluid::FluidCertEvent> events_;
  std::uint64_t dropped_ = 0;
};

// --------------------------------------------------------------------------
// Chrome-trace rendering (post-run; costs the engine nothing).

/// Fairness-audit counter series (Jain, max |deviation|, violations) on
/// the virtual-time process, plus an instant event where the watchdog
/// fired and one per-flow deviation series for the worst offender.
void render_audit_trace(TraceWriter& trace, const FairnessAuditReport& report);

/// Per-LP tracks on TraceWriter::kEnginePid: one thread per LP with
/// downsampled event-rate spans, plus barrier-wait summary counters.
void render_lp_trace(TraceWriter& trace, const LpProfiler::Report& report);

/// Certification decisions as instants on the virtual-time process.
void render_fluid_cert_trace(TraceWriter& trace, const FluidFlightRecorder& recorder);

// --------------------------------------------------------------------------
// Audit JSON (schema "corelite-audit-v1").

struct AuditDocument {
  std::string scenario;
  std::string mechanism;
  std::uint64_t seed = 0;
  const FairnessAuditReport* fairness = nullptr;          ///< null = section omitted
  const LpProfiler::Report* engine = nullptr;             ///< null = section omitted
  const FluidFlightRecorder* fluid_cert = nullptr;        ///< null = section omitted
  const sim::fluid::FluidStats* fluid_stats = nullptr;    ///< cert counters, optional
};

void write_audit_json(std::ostream& os, const AuditDocument& doc);

}  // namespace corelite::telemetry

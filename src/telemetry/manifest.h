// Run manifests: one JSON document that makes a BENCH row (or any
// experiment output) self-describing.
//
// A manifest records WHAT ran (tool, scenario grid, mechanism, seeds,
// event count), ON WHAT (git SHA, compiler, flags, build type — baked
// in at compile time), HOW LONG (named wall-clock phases) and WHAT CAME
// OUT (the FNV-1a result digest that the determinism tests key on, the
// hot-path op counters, and the telemetry metrics snapshot).  The
// digest field is the same value the binary prints, so a manifest can
// be validated against the run's visible output (tools/
// check_telemetry.py does exactly that in CI).
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/hotpath.h"

namespace corelite::telemetry {

/// Compile-time facts about this binary (populated by the build system;
/// "unknown" when built outside git or without the CMake definitions).
struct BuildInfo {
  [[nodiscard]] static std::string_view git_sha();
  [[nodiscard]] static std::string_view compiler();
  [[nodiscard]] static std::string_view flags();
  [[nodiscard]] static std::string_view build_type();
};

/// 16-digit lower-case hex, the format every binary prints digests in.
[[nodiscard]] std::string digest_hex(std::uint64_t digest);

struct RunManifest {
  std::string tool;       ///< binary name, e.g. "corelite_sim"
  std::string scenario;   ///< scenario name or comma-joined sweep list
  std::string mechanism;  ///< mechanism name or comma-joined sweep list
  std::uint64_t base_seed = 0;
  std::size_t runs = 1;
  std::size_t jobs = 1;
  std::uint64_t events = 0;          ///< total simulated events
  std::uint64_t result_digest = 0;   ///< matches the printed digest
  sim::HotPathCounters hotpath{};
  /// Named wall-clock phases, in order (e.g. setup / run / report).
  std::vector<std::pair<std::string, double>> wall_phases_ms;
  /// Free-form string facts (e.g. trace file path, repeats).
  std::vector<std::pair<std::string, std::string>> extra;
};

/// Emit the manifest plus build info and the current metrics snapshot.
void write_manifest(std::ostream& os, const RunManifest& m);

}  // namespace corelite::telemetry

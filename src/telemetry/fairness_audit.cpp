#include "telemetry/fairness_audit.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "stats/fairness.h"

namespace corelite::telemetry {

FairnessAuditor::FairnessAuditor(FairnessAuditConfig cfg, const stats::FlowTracker& tracker,
                                 std::vector<double> link_caps_pps, std::vector<FlowInfo> flows,
                                 ActiveFn active)
    : cfg_{cfg},
      tracker_{tracker},
      caps_{std::move(link_caps_pps)},
      flows_{std::move(flows)},
      active_{std::move(active)} {
  alloc_flows_.reserve(flows_.size());
  for (const FlowInfo& f : flows_) {
    sim::fluid::AllocFlow a;
    a.weight = f.weight > 0.0 ? f.weight : 1.0;
    a.links = f.links;
    alloc_flows_.push_back(std::move(a));
  }
  cursors_.resize(flows_.size());
  if (cfg_.ring_capacity > 0) ring_.reserve(cfg_.ring_capacity);
  report_.config = cfg_;
}

void FairnessAuditor::add_gauge(std::string name, std::function<double()> poll) {
  gauges_.push_back({std::move(name), std::move(poll)});
}

void FairnessAuditor::on_window(sim::SimTime now) {
  const double t1 = now.sec();
  const double t0 = last_t_sec_;
  const double dt = t1 - t0;
  if (dt <= 1e-12) return;
  last_t_sec_ = t1;

  AuditWindow w;
  w.index = window_index_++;
  w.t0_sec = t0;
  w.t1_sec = t1;
  // A fluid jump inside the window stretches it far past the sampler
  // period; the rates below are then dominated by synthesized counters.
  w.spans_jump = dt > 1.5 * cfg_.window.sec();

  const double t_mid = 0.5 * (t0 + t1);
  std::vector<AuditFlowSample> samples(flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowInfo& fi = flows_[i];
    AuditFlowSample& s = samples[i];
    s.id = fi.id;
    s.weight = fi.weight;
    std::uint64_t delivered = 0;
    std::uint64_t sent = 0;
    if (tracker_.has(fi.id)) {
      const auto& fs = tracker_.series(fi.id);
      delivered = fs.delivered;
      sent = fs.sent;
    }
    FlowCursor& c = cursors_[i];
    s.rate_pps = static_cast<double>(delivered - c.last_delivered) / dt;
    s.sent_pps = static_cast<double>(sent - c.last_sent) / dt;
    c.last_delivered = delivered;
    c.last_sent = sent;
    s.normalized = s.weight > 0.0 ? s.rate_pps / s.weight : s.rate_pps;
    s.active = active_ ? active_(fi.id, t_mid) : true;
    if (active_ && active_(fi.id, t0) != active_(fi.id, t1)) w.boundary = true;
    // The oracle's demand for a flow is what it actually offered this
    // window: a self-throttled flow's fair share is its demand, so it
    // cannot read as starved; an idle flow consumes nothing.
    alloc_flows_[i].demand = s.active ? std::max(s.sent_pps, 0.0) : 0.0;
  }

  const std::vector<double> oracle = sim::fluid::water_fill(caps_, alloc_flows_);
  // Second solve with unbounded demands: the pure weighted max-min
  // share of the active set.  Exceeding it is a violation regardless of
  // what the other flows offered (see the header on the flood blind
  // spot of the demand-capped test).
  for (std::size_t i = 0; i < samples.size(); ++i) {
    alloc_flows_[i].demand = samples[i].active ? 1e15 : 0.0;
  }
  const std::vector<double> fair = sim::fluid::water_fill(caps_, alloc_flows_);
  std::vector<double> normalized_active;
  normalized_active.reserve(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    AuditFlowSample& s = samples[i];
    s.oracle_pps = oracle[i];
    s.fair_share_pps = fair[i];
    s.deviation =
        (s.rate_pps - s.oracle_pps) / std::max(s.oracle_pps, cfg_.rate_floor_pps);
    s.overage =
        (s.rate_pps - s.fair_share_pps) / std::max(s.fair_share_pps, cfg_.rate_floor_pps);
    s.measurable = s.active && (s.rate_pps >= cfg_.rate_floor_pps ||
                                s.oracle_pps >= cfg_.rate_floor_pps);
    if (s.active) {
      ++w.active_flows;
      if (s.sent_pps > 0.0) normalized_active.push_back(s.normalized);
    }
    if (!s.measurable) continue;
    ++w.measurable_flows;
    const double over = std::max(0.0, s.overage);
    const double mag = std::max(std::abs(s.deviation), over);
    if (mag > w.max_abs_deviation) {
      w.max_abs_deviation = mag;
      w.worst_flow = s.id;
      w.worst_deviation = over > std::abs(s.deviation) ? s.overage : s.deviation;
    }
    if (mag > cfg_.band) ++w.violations;
  }
  w.jain = normalized_active.empty() ? 1.0 : stats::jain_index(normalized_active);
  w.violating = w.violations > 0;

  // Per-flow detail, worst deviators first when capped, then back in id
  // order so the recorded set is deterministic and diff-friendly.
  w.flows = std::move(samples);
  if (w.flows.size() > cfg_.max_flows_recorded) {
    std::partial_sort(w.flows.begin(),
                      w.flows.begin() + static_cast<std::ptrdiff_t>(cfg_.max_flows_recorded),
                      w.flows.end(), [](const AuditFlowSample& a, const AuditFlowSample& b) {
                        const double ma = std::max(std::abs(a.deviation), std::max(0.0, a.overage));
                        const double mb = std::max(std::abs(b.deviation), std::max(0.0, b.overage));
                        if (ma != mb) return ma > mb;
                        return a.id < b.id;
                      });
    w.flows.resize(cfg_.max_flows_recorded);
    std::sort(w.flows.begin(), w.flows.end(),
              [](const AuditFlowSample& a, const AuditFlowSample& b) { return a.id < b.id; });
  }
  w.gauges.reserve(gauges_.size());
  for (const Gauge_& g : gauges_) w.gauges.push_back(g.poll ? g.poll() : 0.0);

  // Live registry streams (cheap no-ops when telemetry is off).
  m_windows_.add();
  m_violations_.add(w.violations);
  m_jain_.set(w.jain);
  m_max_dev_.set(w.max_abs_deviation);

  // Watchdog: consecutive fully-measured violating windows.  Boundary
  // windows are transition noise, grace windows are convergence ramp —
  // both reset the count rather than pausing it, so a trip always means
  // a sustained steady-state violation.
  if (w.boundary || !w.violating || w.index < static_cast<std::uint64_t>(cfg_.grace_windows)) {
    consecutive_violations_ = 0;
  } else {
    ++consecutive_violations_;
  }

  // Flight recorder ring (insert before the trip check so the dump
  // includes the window that tripped it).
  if (cfg_.ring_capacity > 0) {
    if (ring_.size() < cfg_.ring_capacity) {
      ring_.push_back(w);
    } else {
      ring_[ring_next_] = w;
    }
    ring_next_ = (ring_next_ + 1) % cfg_.ring_capacity;
  }

  if (cfg_.watchdog_enabled && !report_.watchdog_fired &&
      consecutive_violations_ >= cfg_.watchdog_windows) {
    report_.watchdog_fired = true;
    report_.watchdog_t_sec = t1;
    report_.watchdog_window = w.index;
    report_.flight_recorder.reserve(ring_.size());
    const std::size_t n = ring_.size();
    const std::size_t start = n < cfg_.ring_capacity ? 0 : ring_next_;
    for (std::size_t k = 0; k < n; ++k) {
      report_.flight_recorder.push_back(ring_[(start + k) % n]);
    }
    m_watchdog_.add();
  }

  if (!normalized_active.empty()) report_.min_jain = std::min(report_.min_jain, w.jain);
  if (w.measurable_flows > 0 && w.max_abs_deviation > std::abs(report_.worst_deviation)) {
    report_.worst_deviation = w.worst_deviation;
    report_.worst_flow = w.worst_flow;
    report_.worst_t_sec = t1;
  }
  report_.windows.push_back(std::move(w));
}

FairnessAuditReport FairnessAuditor::take_report() {
  report_.gauge_names.clear();
  report_.gauge_names.reserve(gauges_.size());
  for (const Gauge_& g : gauges_) report_.gauge_names.push_back(g.name);
  return std::move(report_);
}

}  // namespace corelite::telemetry

// Deterministic pseudo-random source for the simulation.
//
// All randomness in a run flows through one Rng seeded explicitly, so
// every experiment is exactly reproducible from (code, seed).
//
// The distribution objects are members, constructed once: libstdc++'s
// uniform/exponential distributions are stateless, so constructing one
// per draw (the previous code) produced the identical stream while
// paying construction on every packet — random_test.cpp pins the
// stream against per-call construction so this stays true across
// refactors.  Parameterized draws pass a param_type to the stored
// object, which the standard defines to behave exactly like a fresh
// distribution with those parameters.
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/hotpath.h"

namespace corelite::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedc0de) : engine_{seed} {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    ++hotpath_counters().rng_draws;
    return unit_(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    ++hotpath_counters().rng_draws;
    return real_(engine_, std::uniform_real_distribution<double>::param_type{lo, hi});
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    ++hotpath_counters().rng_draws;
    return int_(engine_, std::uniform_int_distribution<std::int64_t>::param_type{lo, hi});
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    assert(mean > 0.0);
    ++hotpath_counters().rng_draws;
    return exp_(engine_, std::exponential_distribution<double>::param_type{1.0 / mean});
  }

  /// Pick k distinct indices uniformly from [0, n).  If k >= n returns all.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::uniform_real_distribution<double> real_;
  std::uniform_int_distribution<std::int64_t> int_;
  std::exponential_distribution<double> exp_;
};

}  // namespace corelite::sim

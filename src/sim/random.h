// Deterministic pseudo-random source for the simulation.
//
// All randomness in a run flows through one Rng seeded explicitly, so
// every experiment is exactly reproducible from (code, seed).
#pragma once

#include <cassert>
#include <cstdint>
#include <random>
#include <vector>

namespace corelite::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eedc0de) : engine_{seed} {}

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() {
    return std::uniform_real_distribution<double>{0.0, 1.0}(engine_);
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>{lo, hi}(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>{lo, hi}(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponentially distributed value with the given mean.
  [[nodiscard]] double exponential(double mean) {
    assert(mean > 0.0);
    return std::exponential_distribution<double>{1.0 / mean}(engine_);
  }

  /// Pick k distinct indices uniformly from [0, n).  If k >= n returns all.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace corelite::sim

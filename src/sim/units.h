// Strongly typed physical units used throughout the simulator.
//
// The discrete-event engine measures time in seconds (double), data in
// bytes (int64) and rates in bits per second (double).  Wrapping these
// in distinct value types prevents the classic unit bugs (ms-vs-s,
// bits-vs-bytes, pkt/s-vs-bit/s) that plague network simulators.
#pragma once

#include <cassert>
#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace corelite::sim {

/// A span of simulated time.  Internally stored as seconds.
class TimeDelta {
 public:
  constexpr TimeDelta() = default;

  [[nodiscard]] static constexpr TimeDelta seconds(double s) { return TimeDelta{s}; }
  [[nodiscard]] static constexpr TimeDelta millis(double ms) { return TimeDelta{ms / 1e3}; }
  [[nodiscard]] static constexpr TimeDelta micros(double us) { return TimeDelta{us / 1e6}; }
  [[nodiscard]] static constexpr TimeDelta zero() { return TimeDelta{0.0}; }
  [[nodiscard]] static constexpr TimeDelta infinite() {
    return TimeDelta{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double sec() const { return secs_; }
  [[nodiscard]] constexpr double ms() const { return secs_ * 1e3; }
  [[nodiscard]] constexpr bool is_zero() const { return secs_ == 0.0; }
  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr auto operator<=>(const TimeDelta&) const = default;
  constexpr TimeDelta operator+(TimeDelta o) const { return TimeDelta{secs_ + o.secs_}; }
  constexpr TimeDelta operator-(TimeDelta o) const { return TimeDelta{secs_ - o.secs_}; }
  constexpr TimeDelta operator*(double k) const { return TimeDelta{secs_ * k}; }
  constexpr TimeDelta operator/(double k) const { return TimeDelta{secs_ / k}; }
  constexpr double operator/(TimeDelta o) const { return secs_ / o.secs_; }
  constexpr TimeDelta& operator+=(TimeDelta o) { secs_ += o.secs_; return *this; }

 private:
  explicit constexpr TimeDelta(double s) : secs_{s} {}
  double secs_ = 0.0;
};

/// An absolute point on the simulated clock (seconds since simulation start).
class SimTime {
 public:
  constexpr SimTime() = default;

  [[nodiscard]] static constexpr SimTime zero() { return SimTime{0.0}; }
  [[nodiscard]] static constexpr SimTime seconds(double s) { return SimTime{s}; }
  [[nodiscard]] static constexpr SimTime infinite() {
    return SimTime{std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] constexpr double sec() const { return secs_; }
  [[nodiscard]] constexpr bool is_finite() const { return std::isfinite(secs_); }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(TimeDelta d) const { return SimTime{secs_ + d.sec()}; }
  constexpr SimTime operator-(TimeDelta d) const { return SimTime{secs_ - d.sec()}; }
  constexpr TimeDelta operator-(SimTime o) const { return TimeDelta::seconds(secs_ - o.secs_); }

 private:
  explicit constexpr SimTime(double s) : secs_{s} {}
  double secs_ = 0.0;
};

/// An amount of data.  Internally stored as bytes.
class DataSize {
 public:
  constexpr DataSize() = default;

  [[nodiscard]] static constexpr DataSize bytes(std::int64_t b) { return DataSize{b}; }
  [[nodiscard]] static constexpr DataSize kilobytes(std::int64_t kb) { return DataSize{kb * 1000}; }
  [[nodiscard]] static constexpr DataSize zero() { return DataSize{0}; }

  [[nodiscard]] constexpr std::int64_t byte_count() const { return bytes_; }
  [[nodiscard]] constexpr double bits() const { return static_cast<double>(bytes_) * 8.0; }
  [[nodiscard]] constexpr bool is_zero() const { return bytes_ == 0; }

  constexpr auto operator<=>(const DataSize&) const = default;
  constexpr DataSize operator+(DataSize o) const { return DataSize{bytes_ + o.bytes_}; }
  constexpr DataSize operator-(DataSize o) const { return DataSize{bytes_ - o.bytes_}; }
  constexpr DataSize& operator+=(DataSize o) { bytes_ += o.bytes_; return *this; }
  constexpr DataSize& operator-=(DataSize o) { bytes_ -= o.bytes_; return *this; }

 private:
  explicit constexpr DataSize(std::int64_t b) : bytes_{b} {}
  std::int64_t bytes_ = 0;
};

/// A transmission rate.  Internally stored as bits per second.
class Rate {
 public:
  constexpr Rate() = default;

  [[nodiscard]] static constexpr Rate bps(double v) { return Rate{v}; }
  [[nodiscard]] static constexpr Rate kbps(double v) { return Rate{v * 1e3}; }
  [[nodiscard]] static constexpr Rate mbps(double v) { return Rate{v * 1e6}; }
  [[nodiscard]] static constexpr Rate zero() { return Rate{0.0}; }

  /// Rate expressed as fixed-size packets per second.
  [[nodiscard]] static constexpr Rate packets_per_second(double pps, DataSize packet) {
    return Rate{pps * packet.bits()};
  }

  [[nodiscard]] constexpr double bits_per_second() const { return bps_; }
  [[nodiscard]] constexpr double pps(DataSize packet) const { return bps_ / packet.bits(); }
  [[nodiscard]] constexpr bool is_zero() const { return bps_ == 0.0; }

  /// Time to serialize `size` onto a link of this rate.
  [[nodiscard]] constexpr TimeDelta serialization_time(DataSize size) const {
    if (size.is_zero()) return TimeDelta::zero();
    assert(bps_ > 0.0 && "cannot serialize onto a zero-rate link");
    return TimeDelta::seconds(size.bits() / bps_);
  }

  constexpr auto operator<=>(const Rate&) const = default;
  constexpr Rate operator+(Rate o) const { return Rate{bps_ + o.bps_}; }
  constexpr Rate operator-(Rate o) const { return Rate{bps_ - o.bps_}; }
  constexpr Rate operator*(double k) const { return Rate{bps_ * k}; }
  constexpr Rate operator/(double k) const { return Rate{bps_ / k}; }
  constexpr double operator/(Rate o) const { return bps_ / o.bps_; }

 private:
  explicit constexpr Rate(double v) : bps_{v} {}
  double bps_ = 0.0;
};

inline std::ostream& operator<<(std::ostream& os, TimeDelta d) { return os << d.sec() << "s"; }
inline std::ostream& operator<<(std::ostream& os, SimTime t) { return os << t.sec() << "s"; }
inline std::ostream& operator<<(std::ostream& os, DataSize s) { return os << s.byte_count() << "B"; }
inline std::ostream& operator<<(std::ostream& os, Rate r) { return os << r.bits_per_second() << "bps"; }

}  // namespace corelite::sim

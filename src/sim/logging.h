// Minimal leveled logger for simulation components.
//
// Logging is off by default (level None) so experiment binaries stay
// quiet; tests and debugging sessions raise the level per component or
// globally.  All output carries the virtual timestamp supplied by the
// caller, never wall-clock time.
#pragma once

#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/units.h"

namespace corelite::sim {

enum class LogLevel : int { None = 0, Error = 1, Warn = 2, Info = 3, Debug = 4 };

/// Process-global log configuration.
class LogConfig {
 public:
  static LogLevel level() { return instance().level_; }
  static void set_level(LogLevel lvl) { instance().level_ = lvl; }
  static std::ostream& sink() { return *instance().sink_; }
  static void set_sink(std::ostream& os) { instance().sink_ = &os; }

 private:
  static LogConfig& instance() {
    static LogConfig cfg;
    return cfg;
  }
  LogLevel level_ = LogLevel::None;
  std::ostream* sink_ = &std::cerr;
};

[[nodiscard]] constexpr std::string_view log_level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::Error: return "ERROR";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Info: return "INFO";
    case LogLevel::Debug: return "DEBUG";
    default: return "";
  }
}

/// One log statement.  Buffered; flushed to the sink on destruction.
/// The buffer is lazy: a disabled statement never constructs the
/// ostringstream (or formats anything), so logging left in hot paths
/// costs one level comparison when off.
class LogLine {
 public:
  LogLine(LogLevel lvl, std::string_view component, SimTime at) {
    if (lvl <= LogConfig::level()) {
      buf_.emplace();
      *buf_ << "[" << log_level_name(lvl) << "] t=" << at.sec() << " " << component << ": ";
    }
  }
  ~LogLine() {
    if (buf_.has_value()) LogConfig::sink() << buf_->str() << "\n";
  }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    if (buf_.has_value()) *buf_ << v;
    return *this;
  }

 private:
  std::optional<std::ostringstream> buf_;  ///< engaged only when enabled
};

}  // namespace corelite::sim

/// Usage: CORELITE_LOG(Debug, "edge", sim.now()) << "flow " << f << " rate " << r;
#define CORELITE_LOG(lvl, component, at) \
  ::corelite::sim::LogLine(::corelite::sim::LogLevel::lvl, (component), (at))

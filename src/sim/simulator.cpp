#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace corelite::sim {

EventHandle Simulator::at(SimTime at, EventQueue::Callback cb) {
  assert(at >= now_ && "cannot schedule an event in the past");
  return queue_.schedule(at, std::move(cb));
}

EventHandle Simulator::after(TimeDelta delay, EventQueue::Callback cb) {
  assert(delay >= TimeDelta::zero());
  return at(now_ + delay, std::move(cb));
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  // Published so in-event batch drains (can_advance_inline) never fuse a
  // completion the deadline should have left pending.
  run_deadline_ = deadline;
  // run_next_until peeks the queue front once per event and advances the
  // clock to the fire time just before the callback observes now().
  const auto set_clock = [this](SimTime t) { now_ = t; };
  while (!stopped_) {
    if (!queue_.run_next_until(deadline, set_clock).is_finite()) break;
    ++processed_;
  }
  run_deadline_ = kNotRunning;
  if (!stopped_ && now_ < deadline && deadline < SimTime::infinite()) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  run_deadline_ = SimTime::infinite();
  const auto set_clock = [this](SimTime t) { now_ = t; };
  while (!stopped_) {
    if (!queue_.run_next_until(SimTime::infinite(), set_clock).is_finite()) break;
    ++processed_;
  }
  run_deadline_ = kNotRunning;
}

}  // namespace corelite::sim

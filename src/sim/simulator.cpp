#include "sim/simulator.h"

#include <cassert>
#include <utility>

namespace corelite::sim {

EventHandle Simulator::at(SimTime at, EventQueue::Callback cb) {
  assert(at >= now_ && "cannot schedule an event in the past");
  return queue_.schedule(at, std::move(cb));
}

EventHandle Simulator::after(TimeDelta delay, EventQueue::Callback cb) {
  assert(delay >= TimeDelta::zero());
  return at(now_ + delay, std::move(cb));
}

PeriodicHandle Simulator::every(TimeDelta period, std::function<void()> cb,
                                TimeDelta first_after) {
  assert(period > TimeDelta::zero());
  if (!first_after.is_finite()) first_after = period;
  auto control = std::make_shared<PeriodicHandle::Control>();
  auto body = std::make_shared<std::function<void()>>(std::move(cb));

  // Self-rescheduling chain.  The closure captures itself only weakly; the
  // pending queue entry is what keeps `fire` alive, so when the chain ends
  // (cancellation) the whole structure is reclaimed — no reference cycle.
  auto fire = std::make_shared<std::function<void()>>();
  *fire = [this, period, control, body, wfire = std::weak_ptr(fire)]() {
    if (control->cancelled) return;
    (*body)();
    if (control->cancelled) return;
    if (auto f = wfire.lock()) queue_.schedule_detached(now_ + period, [f] { (*f)(); });
  };
  queue_.schedule_detached(now_ + first_after, [fire] { (*fire)(); });
  return PeriodicHandle{std::move(control)};
}

void Simulator::run_until(SimTime deadline) {
  stopped_ = false;
  // One heap peek per event: next_time() returns infinite() on an empty
  // queue, which also terminates the loop for any finite deadline.
  while (!stopped_) {
    const SimTime t = queue_.next_time();
    if (t > deadline || t >= SimTime::infinite()) break;
    now_ = t;  // advance the clock before the callback observes now()
    queue_.run_next();
    ++processed_;
  }
  if (!stopped_ && now_ < deadline && deadline < SimTime::infinite()) now_ = deadline;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_) {
    const SimTime t = queue_.next_time();
    if (t >= SimTime::infinite()) break;
    now_ = t;
    queue_.run_next();
    ++processed_;
  }
}

}  // namespace corelite::sim

// Bit-exact memoization of the hot-path transcendentals.
//
// Every packet arrival in a CSFQ rate estimator evaluates
// exp(-T/K) (Stoica et al. SIGCOMM'98 eq. 5), and every RED-family
// queue leaving idle evaluates pow(1-w, m).  In this simulator the
// inter-arrival gaps T come from fixed-rate paced sources and constant
// link service times, so the set of DISTINCT argument bit patterns
// reaching these calls is tiny — a few hundred per run against ~10^6
// calls.  DecayCache exploits that: a small direct-mapped cache keyed
// on the exact bit pattern of the argument(s), falling back to libm on
// a miss and overwriting the colliding entry.
//
// Results are bit-identical to calling libm directly, by construction:
// a hit returns a value that libm itself produced for the SAME argument
// bits earlier in the run.  No approximation, no range reduction, no
// rounding difference — golden-determinism digests cannot move.
//
// Escape hatch: setting the environment variable CORELITE_NO_FASTMATH
// (to any value) disables the cache and routes every call straight to
// libm.  The determinism tests run both ways and assert identical
// output.
//
// Threading: one cache per thread (thread_local), matching the one
//-simulation-universe-per-thread model of the sweep runner.  Lookups
// and fills touch no shared state.
#pragma once

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "sim/hotpath.h"

namespace corelite::sim::fastmath {

class DecayCache {
 public:
  DecayCache() {
    // Every slot starts as a valid (argument, libm-result) pair so the
    // lookup needs no emptiness test: key bits 0 are +0.0, and
    // exp(0) == pow(0,0) == 1.0 exactly.
    exp_.fill(ExpEntry{0, 1.0});
    pow_.fill(PowEntry{0, 0, 1.0});
    enabled_ = std::getenv("CORELITE_NO_FASTMATH") == nullptr;
  }

  /// Memoized std::exp(x).
  double exp(double x) {
    HotPathCounters& c = hotpath_counters();
    ++c.exp_calls;
    const std::uint64_t key = std::bit_cast<std::uint64_t>(x);
    ExpEntry& e = exp_[hash(key)];
    if (e.key == key && enabled_) {
      ++c.exp_cache_hits;
      return e.value;
    }
    const double v = std::exp(x);
    e.key = key;
    e.value = v;
    return v;
  }

  /// Memoized std::pow(base, m).
  double pow(double base, double m) {
    HotPathCounters& c = hotpath_counters();
    ++c.pow_calls;
    const std::uint64_t kb = std::bit_cast<std::uint64_t>(base);
    const std::uint64_t km = std::bit_cast<std::uint64_t>(m);
    PowEntry& e = pow_[hash(kb ^ (km * 0x9e3779b97f4a7c15ULL))];
    if (e.key_base == kb && e.key_exp == km && enabled_) {
      ++c.pow_cache_hits;
      return e.value;
    }
    const double v = std::pow(base, m);
    e.key_base = kb;
    e.key_exp = km;
    e.value = v;
    return v;
  }

  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Slot count (direct-mapped; exposed for the adversarial tests).
  static constexpr std::size_t slots() { return kSlots; }

 private:
  // 4096 slots (64 KiB of exp entries + 96 KiB of pow entries).  The
  // 80-flow fig5 row has ~115k distinct exp arguments over ~440k calls
  // (paced emission times accumulate FP rounding, so aggregate-arrival
  // gaps at a shared link drift continuously); a direct-mapped cache
  // this size reaches ~73% hits against the 73.8% infinite-cache
  // ceiling measured for that row.  Going bigger buys nothing; going
  // smaller loses hits to collisions on the per-flow estimator keys.
  static constexpr std::size_t kSlotsLog2 = 12;
  static constexpr std::size_t kSlots = std::size_t{1} << kSlotsLog2;

  struct ExpEntry {
    std::uint64_t key;
    double value;
  };
  struct PowEntry {
    std::uint64_t key_base;
    std::uint64_t key_exp;
    double value;
  };

  static std::size_t hash(std::uint64_t bits) {
    // Fibonacci multiplicative hash: the interesting variation in a
    // double's bit pattern sits in the middle bits; multiply-and-shift
    // spreads it over the index uniformly.
    return static_cast<std::size_t>((bits * 0x9e3779b97f4a7c15ULL) >> (64 - kSlotsLog2));
  }

  std::array<ExpEntry, kSlots> exp_;
  std::array<PowEntry, kSlots> pow_;
  bool enabled_ = true;
};

/// The calling thread's cache (constructed, and the escape-hatch env
/// var read, on first use per thread).
[[nodiscard]] inline DecayCache& decay_cache() {
  thread_local DecayCache cache;
  return cache;
}

/// Memoized std::exp(x) — the CSFQ estimator decay e^(-T/K).
[[nodiscard]] inline double cached_exp(double x) { return decay_cache().exp(x); }

/// Memoized std::pow(base, m) — the RED-family idle decay (1-w)^m.
[[nodiscard]] inline double cached_pow(double base, double m) {
  return decay_cache().pow(base, m);
}

}  // namespace corelite::sim::fastmath

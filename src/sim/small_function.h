// A move-only callable with small-buffer optimization.
//
// The discrete-event engine fires millions of closures per simulated
// minute; storing each one in a std::function costs a heap allocation
// whenever the capture exceeds the library's tiny inline buffer (16
// bytes on libstdc++ — smaller than the link-completion closures).
// SmallFunction inlines captures up to `Capacity` bytes directly in the
// object and falls back to the heap only for oversized ones, so the
// steady-state event hot path never allocates.
//
// Unlike std::function it is move-only, which lets closures own
// move-only resources (pooled packets, unique_ptrs) without shared_ptr
// wrappers.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace corelite::sim {

template <class Sig, std::size_t Capacity = 48>
class SmallFunction;

template <class R, class... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<!std::is_same_v<D, SmallFunction> &&
                                     std::is_invocable_r_v<R, D&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    if constexpr (kFitsInline<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
      ops_ = &kHeapOps<D>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept : ops_{other.ops_} {
    if (ops_ != nullptr) relocate_from(other.buf_);
    other.ops_ = nullptr;
  }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) relocate_from(other.buf_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  /// Construct a callable directly in our buffer, destroying the current
  /// one.  Lets the event queue build the closure in its storage slot in
  /// one step instead of constructing a temporary and relocating it
  /// through every by-value parameter on the way in.
  template <class F, class D = std::decay_t<F>>
  void emplace(F&& f) {
    if constexpr (std::is_same_v<D, SmallFunction>) {
      *this = std::forward<F>(f);
    } else {
      static_assert(std::is_invocable_r_v<R, D&, Args...>);
      reset();
      if constexpr (kFitsInline<D>) {
        ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
        ops_ = &kInlineOps<D>;
      } else {
        ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
        ops_ = &kHeapOps<D>;
      }
    }
  }

  /// Destroy the held callable (if any); leaves the function empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  /// True if the callable lives in the inline buffer (no heap involved).
  [[nodiscard]] bool is_inline() const noexcept { return ops_ != nullptr && ops_->inline_stored; }

  R operator()(Args... args) {
    assert(ops_ != nullptr && "invoking an empty SmallFunction");
    return ops_->invoke(buf_, std::forward<Args>(args)...);
  }

  /// Invoke the callable and destroy it through ONE dispatched call,
  /// leaving the function empty.  The event loop fires every callback
  /// exactly once and then drops it; fusing the two operations removes
  /// an indirect call (and its branch-target miss) per event.
  R consume(Args... args) {
    assert(ops_ != nullptr && "consuming an empty SmallFunction");
    const Ops* ops = ops_;
    ops_ = nullptr;
    return ops->invoke_destroy(buf_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*invoke)(void*, Args&&...);
    R (*invoke_destroy)(void*, Args&&...);            ///< invoke, then destroy
    void (*relocate)(void* src, void* dst) noexcept;  ///< move into dst, destroy src
    void (*destroy)(void*) noexcept;
    bool inline_stored;
    /// Trivially copyable inline callables relocate by memcpy and skip
    /// the destructor — the move path compiles to a few register copies
    /// with no indirect calls.
    bool trivial;
  };

  /// Move the callable out of `src_buf` into our own buffer.
  /// Precondition: ops_ is set to the source's ops.
  void relocate_from(void* src_buf) noexcept {
    if (ops_->trivial) {
      std::memcpy(buf_, src_buf, Capacity);
    } else {
      ops_->relocate(src_buf, buf_);
    }
  }

  // Inline storage requires a nothrow move so relocation (and therefore
  // heap sifting in the event queue) cannot throw half-way.
  template <class D>
  static constexpr bool kFitsInline = sizeof(D) <= Capacity &&
                                      alignof(D) <= alignof(std::max_align_t) &&
                                      std::is_nothrow_move_constructible_v<D>;

  template <class D>
  struct InlineModel {
    static D* self(void* p) noexcept { return std::launder(reinterpret_cast<D*>(p)); }
    static R invoke(void* p, Args&&... args) {
      return (*self(p))(std::forward<Args>(args)...);
    }
    static R invoke_destroy(void* p, Args&&... args) {
      D* d = self(p);
      if constexpr (std::is_void_v<R>) {
        (*d)(std::forward<Args>(args)...);
        d->~D();
      } else {
        R r = (*d)(std::forward<Args>(args)...);
        d->~D();
        return r;
      }
    }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) D(std::move(*self(src)));
      self(src)->~D();
    }
    static void destroy(void* p) noexcept { self(p)->~D(); }
  };

  template <class D>
  struct HeapModel {
    static D* self(void* p) noexcept { return *std::launder(reinterpret_cast<D**>(p)); }
    static R invoke(void* p, Args&&... args) {
      return (*self(p))(std::forward<Args>(args)...);
    }
    static R invoke_destroy(void* p, Args&&... args) {
      D* d = self(p);
      if constexpr (std::is_void_v<R>) {
        (*d)(std::forward<Args>(args)...);
        delete d;
      } else {
        R r = (*d)(std::forward<Args>(args)...);
        delete d;
        return r;
      }
    }
    static void relocate(void* src, void* dst) noexcept {
      ::new (dst) D*(self(src));
    }
    static void destroy(void* p) noexcept { delete self(p); }
  };

  template <class D>
  static constexpr Ops kInlineOps{&InlineModel<D>::invoke, &InlineModel<D>::invoke_destroy,
                                  &InlineModel<D>::relocate, &InlineModel<D>::destroy, true,
                                  std::is_trivially_copyable_v<D>};
  // The heap representation (a single owning pointer) relocates by
  // pointer copy, but destruction must still delete — never trivial.
  template <class D>
  static constexpr Ops kHeapOps{&HeapModel<D>::invoke, &HeapModel<D>::invoke_destroy,
                                &HeapModel<D>::relocate, &HeapModel<D>::destroy, false, false};

  alignas(std::max_align_t) unsigned char buf_[Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace corelite::sim

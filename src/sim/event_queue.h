// A cancellable discrete-event priority queue, allocation-free in the
// steady state.
//
// Events are ordered by (time, insertion sequence): ties on time fire in
// the order they were scheduled, which makes simulations deterministic.
// Cancellation is lazy — a cancelled event stays filed but is skipped
// when it surfaces.
//
// Dispatch is two-tiered.  A hierarchical timing wheel (timer_wheel.h)
// is the primary structure: the dominant event classes — link transmit
// completions and paced emission timers — are short-horizon and
// near-monotonic, so filing them is two array writes instead of a heap
// sift.  The indexed 4-ary heap remains as the overflow tier for what
// the wheel declines: events at or before the cursor tick, beyond the
// ~2^32-tick horizon, or at non-finite times.  Popping merges the two
// tiers by exact (time, seq), so the firing order — and therefore every
// golden digest — is bit-identical to the heap-only engine.  Setting
// the environment variable CORELITE_NO_WHEEL (to any value) routes all
// traffic to the heap, mirroring CORELITE_NO_FASTMATH.
//
// Engineering notes (the million-event hot path):
//   - Callbacks are SmallFunction: captures up to 48 bytes live inline,
//     so scheduling a link-completion closure touches no heap.
//   - `schedule_detached()` skips the EventHandle control block
//     entirely; `schedule()` materializes one only because the caller
//     keeps the handle.
//   - Callbacks live in recycled slots; the wheel and heap both hold
//     16-byte (time, seq|flags|slot) keys, so filing moves two words
//     instead of a fat struct with a closure inside.
//   - The key carries a "cancellable" bit: skipping dead events only
//     inspects slot state for events that actually own a handle, so the
//     detached fast path never touches the slot array while peeking.
//   - The hot methods are defined inline here; the tier merge and the
//     schedule/fire pair inline into Simulator::run_until and the
//     forwarding plane.
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/hotpath.h"
#include "sim/small_function.h"
#include "sim/timer_wheel.h"
#include "sim/units.h"

namespace corelite::sim {

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Copying the handle shares the underlying event.  A default-constructed
/// handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing.  Idempotent; safe on empty handles.
  void cancel() {
    if (state_) state_->cancelled = true;
  }

  /// True if the event is scheduled and has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

/// Two-tier timed-callback queue (timing wheel + overflow min-heap).
/// Not thread-safe: the simulation is single-threaded by design
/// (determinism beats parallelism for reproducible network experiments).
class EventQueue {
 public:
  /// Inline capacity covers the forwarding-plane closures (a `this`
  /// pointer, a pooled packet handle and a couple of scalars); bigger
  /// captures silently fall back to the heap.
  using Callback = SmallFunction<void(), 48>;

  EventQueue() : wheel_enabled_{std::getenv("CORELITE_NO_WHEEL") == nullptr} {}

  /// Schedule `cb` to fire at absolute time `at`.  Allocates the
  /// handle's shared control block — use schedule_detached() when the
  /// handle would be discarded.
  EventHandle schedule(SimTime at, Callback cb);

  /// Fire-and-forget fast path: no handle, no control block, no way to
  /// cancel.  Shares the sequence counter with schedule(), so the
  /// (time, seq) firing order is identical however events are mixed.
  /// Templated so the closure is constructed directly in its storage
  /// slot — no relocation through by-value parameters on the way in.
  template <class F>
  void schedule_detached(SimTime at, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].cb.emplace(std::forward<F>(f));
    push_entry(at.sec(), slot, /*cancellable=*/false);
  }

  /// True if no live events remain.  May discard dead (cancelled) entries.
  [[nodiscard]] bool empty() const { return front_entry().entry == nullptr; }

  /// Fire time of the earliest live event; SimTime::infinite() if none.
  [[nodiscard]] SimTime next_time() const {
    const Front f = front_entry();
    return f.entry == nullptr ? SimTime::infinite() : SimTime::seconds(f.entry->at);
  }

  /// Pop and run the earliest live event (even one at t = infinity).
  /// Returns its fire time.  Precondition: !empty().
  SimTime run_next() {
    const Front f = front_entry();
    assert(f.entry != nullptr && "run_next on an empty event queue");
    return pop_and_fire(f, [](SimTime) {});
  }

  /// Single-peek run step: if the earliest live event fires at a finite
  /// time <= `deadline`, invoke `set_clock` with that time, pop and run
  /// the event, and return its fire time; otherwise leave the queue
  /// untouched and return SimTime::infinite().  Replaces the
  /// next_time()/run_next() pair in Simulator's run loops — one dead
  /// sweep and one front load per event instead of two.
  template <class SetClock>
  SimTime run_next_until(SimTime deadline, SetClock&& set_clock) {
    const Front f = front_entry();
    if (f.entry == nullptr) return SimTime::infinite();
    const double at = f.entry->at;
    if (at > deadline.sec() || !std::isfinite(at)) return SimTime::infinite();
    return pop_and_fire(f, std::forward<SetClock>(set_clock));
  }

  /// Number of events ever scheduled (including cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_seq_; }

  /// Drop every pending event.  Outstanding handles observe their events
  /// as cancelled.
  void clear();

  /// Slots ever materialized (high-water mark of concurrently pending
  /// events); exposed for the allocation-reuse benchmarks and tests.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

  /// True when the timing-wheel tier is active (CORELITE_NO_WHEEL unset).
  [[nodiscard]] bool wheel_enabled() const { return wheel_enabled_; }

 private:
  // Both tiers file two-word entries: the fire time and a packed
  // (sequence << kSeqShift) | cancellable | slot key.  The sequence
  // occupies the high bits, so comparing keys compares sequences — the
  // flag and slot never influence ordering (sequences are unique).  The
  // cancellable bit sits between: peeking skips the slot-state load for
  // detached events, which can never be cancelled.  39 bits of sequence
  // (~5*10^11 events) and 24 bits of slot (~16M concurrently pending
  // events) are far beyond any run we do.
  using Entry = WheelEntry;
  struct Slot {
    Callback cb;
    std::shared_ptr<EventHandle::State> state;  ///< null for detached events
  };

  /// The surfaced earliest live entry and which tier it came from.
  struct Front {
    const Entry* entry = nullptr;  ///< null when the queue is drained
    bool from_wheel = false;       ///< true: wheel buffer; false: heap root
  };

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kCancellableBit = std::uint64_t{1} << kSlotBits;
  static constexpr unsigned kSeqShift = kSlotBits + 1;

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }

  /// Surface the earliest live entry across both tiers, lazily
  /// discarding cancelled entries from the wheel buffer front and the
  /// heap root.  Refills the wheel buffer (sorted by exact (time, seq))
  /// from the next occupied slot when it runs dry.
  Front front_entry() const {
    for (;;) {
      if (buf_pos_ < buffer_.size()) {
        const Entry& e = buffer_[buf_pos_];
        if ((e.key & kCancellableBit) != 0 && recycle_if_cancelled(e)) {
          ++buf_pos_;
          continue;
        }
        break;
      }
      if (wheel_.count() == 0) break;
      buffer_.clear();
      buf_pos_ = 0;
      wheel_.collect_next(buffer_);
      if (buffer_.size() > 1) std::sort(buffer_.begin(), buffer_.end(), earlier);
    }
    drop_dead();
    const bool have_buf = buf_pos_ < buffer_.size();
    if (!have_buf) return heap_.empty() ? Front{} : Front{&heap_[0], false};
    if (heap_.empty() || earlier(buffer_[buf_pos_], heap_[0])) {
      return Front{&buffer_[buf_pos_], true};
    }
    return Front{&heap_[0], false};
  }

  /// Pop the surfaced entry (must be live) and fire its callback.
  /// `set_clock` runs after the tiers are consistent but before the
  /// callback, so the owner can advance its clock to the fire time the
  /// callback observes.
  template <class SetClock>
  SimTime pop_and_fire(Front f, SetClock&& set_clock) {
    const Entry top = *f.entry;
    if (f.from_wheel) {
      ++buf_pos_;
    } else {
      remove_root();
    }
    const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
    Slot& s = slots_[slot];
    // Move the callback out before invoking: the callback may schedule
    // new events, which can grow the slot vector and invalidate `s`.
    Callback cb = std::move(s.cb);
    if ((top.key & kCancellableBit) != 0) {
      s.state->fired = true;
      s.state.reset();
    }
    free_slots_.push_back(slot);
    const SimTime t = SimTime::seconds(top.at);
    set_clock(t);
    // consume() fuses invoke + destroy into one dispatch — one indirect
    // call per event instead of two for non-trivial closures.
    cb.consume();
    return t;
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    assert(slots_.size() < kSlotMask && "too many concurrently pending events");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Tier selector: file short-horizon events in the wheel, everything
  /// it declines (past/current tick, beyond horizon, non-finite, or
  /// CORELITE_NO_WHEEL) in the overflow heap.
  void push_entry(double at, std::uint32_t slot, bool cancellable) {
    const std::uint64_t seq = next_seq_++;
    assert(seq < (std::uint64_t{1} << (64 - kSeqShift)) && "event sequence space exhausted");
    const std::uint64_t key = (seq << kSeqShift) | (cancellable ? kCancellableBit : 0) | slot;
    if (wheel_enabled_ && wheel_.try_insert(at, key)) {
      ++hotpath_counters().wheel_inserts;
      return;
    }
    ++hotpath_counters().heap_inserts;
    heap_.push_back(Entry{at, key});
    sift_up(heap_.size() - 1);
  }

  /// Release a cancelled entry's storage.  Returns false if it is live.
  bool recycle_if_cancelled(const Entry& e) const {
    const auto slot = static_cast<std::uint32_t>(e.key & kSlotMask);
    Slot& s = slots_[slot];
    if (!s.state->cancelled) return false;
    s.cb.reset();
    s.state.reset();
    free_slots_.push_back(slot);
    return true;
  }

  void sift_up(std::size_t i) const {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) const {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  void remove_root() const {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (heap_.size() > 1) sift_down(0);
  }

  /// Pop cancelled entries off the heap root.  Detached events are live
  /// by construction, so the common case is a single bit test.
  void drop_dead() const {
    while (!heap_.empty()) {
      const std::uint64_t key = heap_[0].key;
      if ((key & kCancellableBit) == 0) return;
      if (!recycle_if_cancelled(heap_[0])) return;
      remove_root();
    }
  }

  // mutable: empty()/next_time() lazily discard cancelled entries, and
  // surfacing the wheel front collects its next occupied slot.
  mutable std::vector<Entry> heap_;       ///< 4-ary min-heap: overflow tier
  mutable TimerWheel wheel_;              ///< primary tier (short horizon)
  mutable std::vector<Entry> buffer_;     ///< current wheel slot, sorted
  mutable std::size_t buf_pos_ = 0;       ///< consumed prefix of buffer_
  mutable std::vector<Slot> slots_;       ///< callback storage, recycled
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
  bool wheel_enabled_;
};

}  // namespace corelite::sim

// A cancellable discrete-event priority queue, allocation-free in the
// steady state.
//
// Events are ordered by (time, insertion sequence): ties on time fire in
// the order they were scheduled, which makes simulations deterministic.
// Cancellation is lazy — a cancelled event stays in the heap but is
// skipped when popped.
//
// Engineering notes (the million-event hot path):
//   - Callbacks are SmallFunction: captures up to 48 bytes live inline,
//     so scheduling a link-completion closure touches no heap.
//   - `schedule_detached()` skips the EventHandle control block
//     entirely; `schedule()` materializes one only because the caller
//     keeps the handle.
//   - Callbacks live in recycled slots; the heap itself holds 16-byte
//     (time, seq|flags|slot) keys, so sift operations move two words
//     instead of a fat struct with a closure inside.
//   - The key carries a "cancellable" bit: skipping dead events only
//     inspects slot state for events that actually own a handle, so the
//     detached fast path never touches the slot array while peeking.
//   - The hot methods are defined inline here; the heap walk and the
//     schedule/fire pair inline into Simulator::run_until and the
//     forwarding plane.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "sim/small_function.h"
#include "sim/units.h"

namespace corelite::sim {

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Copying the handle shares the underlying event.  A default-constructed
/// handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing.  Idempotent; safe on empty handles.
  void cancel() {
    if (state_) state_->cancelled = true;
  }

  /// True if the event is scheduled and has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

/// Min-heap of timed callbacks.  Not thread-safe: the simulation is
/// single-threaded by design (determinism beats parallelism for
/// reproducible network experiments).
class EventQueue {
 public:
  /// Inline capacity covers the forwarding-plane closures (a `this`
  /// pointer, a pooled packet handle and a couple of scalars); bigger
  /// captures silently fall back to the heap.
  using Callback = SmallFunction<void(), 48>;

  /// Schedule `cb` to fire at absolute time `at`.  Allocates the
  /// handle's shared control block — use schedule_detached() when the
  /// handle would be discarded.
  EventHandle schedule(SimTime at, Callback cb);

  /// Fire-and-forget fast path: no handle, no control block, no way to
  /// cancel.  Shares the sequence counter with schedule(), so the
  /// (time, seq) firing order is identical however events are mixed.
  /// Templated so the closure is constructed directly in its storage
  /// slot — no relocation through by-value parameters on the way in.
  template <class F>
  void schedule_detached(SimTime at, F&& f) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].cb.emplace(std::forward<F>(f));
    push_entry(at.sec(), slot, /*cancellable=*/false);
  }

  /// True if no live events remain.  May pop dead (cancelled) entries.
  [[nodiscard]] bool empty() const {
    drop_dead();
    return heap_.empty();
  }

  /// Fire time of the earliest live event; SimTime::infinite() if none.
  [[nodiscard]] SimTime next_time() const {
    drop_dead();
    return heap_.empty() ? SimTime::infinite() : SimTime::seconds(heap_[0].at);
  }

  /// Pop and run the earliest live event.  Returns its fire time.
  /// Precondition: !empty().
  SimTime run_next() {
    drop_dead();
    assert(!heap_.empty() && "run_next on an empty event queue");
    return pop_and_fire([](SimTime) {});
  }

  /// Single-peek run step: if the earliest live event fires at a finite
  /// time <= `deadline`, invoke `set_clock` with that time, pop and run
  /// the event, and return its fire time; otherwise leave the queue
  /// untouched and return SimTime::infinite().  Replaces the
  /// next_time()/run_next() pair in Simulator's run loops — one
  /// drop_dead() and one root load per event instead of two.
  template <class SetClock>
  SimTime run_next_until(SimTime deadline, SetClock&& set_clock) {
    drop_dead();
    if (heap_.empty()) return SimTime::infinite();
    const double at = heap_[0].at;
    if (at > deadline.sec() || !std::isfinite(at)) return SimTime::infinite();
    return pop_and_fire(std::forward<SetClock>(set_clock));
  }

  /// Number of events ever scheduled (including cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_seq_; }

  /// Drop every pending event.  Outstanding handles observe their events
  /// as cancelled.
  void clear();

  /// Slots ever materialized (high-water mark of concurrently pending
  /// events); exposed for the allocation-reuse benchmarks and tests.
  [[nodiscard]] std::size_t slot_capacity() const { return slots_.size(); }

 private:
  /// Pop the root (must be live) and fire its callback.  `set_clock`
  /// runs after the heap is consistent but before the callback, so the
  /// owner can advance its clock to the fire time the callback observes.
  template <class SetClock>
  SimTime pop_and_fire(SetClock&& set_clock) {
    const Entry top = heap_[0];
    const auto slot = static_cast<std::uint32_t>(top.key & kSlotMask);
    Slot& s = slots_[slot];
    // Move the callback out before invoking: the callback may schedule
    // new events, which can grow the slot vector and invalidate `s`.
    Callback cb = std::move(s.cb);
    if ((top.key & kCancellableBit) != 0) {
      s.state->fired = true;
      s.state.reset();
    }
    remove_root();
    free_slots_.push_back(slot);
    const SimTime t = SimTime::seconds(top.at);
    set_clock(t);
    // consume() fuses invoke + destroy into one dispatch — one indirect
    // call per event instead of two for non-trivial closures.
    cb.consume();
    return t;
  }

  // Heap entries are two words: the fire time and a packed
  // (sequence << kSeqShift) | cancellable | slot key.  The sequence
  // occupies the high bits, so comparing keys compares sequences — the
  // flag and slot never influence ordering (sequences are unique).  The
  // cancellable bit sits between: peeking skips the slot-state load for
  // detached events, which can never be cancelled.  39 bits of sequence
  // (~5*10^11 events) and 24 bits of slot (~16M concurrently pending
  // events) are far beyond any run we do.
  struct Entry {
    double at;
    std::uint64_t key;
  };
  struct Slot {
    Callback cb;
    std::shared_ptr<EventHandle::State> state;  ///< null for detached events
  };

  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (std::uint64_t{1} << kSlotBits) - 1;
  static constexpr std::uint64_t kCancellableBit = std::uint64_t{1} << kSlotBits;
  static constexpr unsigned kSeqShift = kSlotBits + 1;

  static bool earlier(const Entry& a, const Entry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.key < b.key;
  }

  std::uint32_t acquire_slot() {
    if (!free_slots_.empty()) {
      const std::uint32_t slot = free_slots_.back();
      free_slots_.pop_back();
      return slot;
    }
    assert(slots_.size() < kSlotMask && "too many concurrently pending events");
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  void push_entry(double at, std::uint32_t slot, bool cancellable) {
    const std::uint64_t seq = next_seq_++;
    assert(seq < (std::uint64_t{1} << (64 - kSeqShift)) && "event sequence space exhausted");
    heap_.push_back(
        Entry{at, (seq << kSeqShift) | (cancellable ? kCancellableBit : 0) | slot});
    sift_up(heap_.size() - 1);
  }

  void sift_up(std::size_t i) const {
    const Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, heap_[parent])) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) const {
    const Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (earlier(heap_[c], heap_[best])) best = c;
      }
      if (!earlier(heap_[best], e)) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  void remove_root() const {
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (heap_.size() > 1) sift_down(0);
  }

  /// Pop cancelled entries off the root.  Detached events are live by
  /// construction, so the common case is a single bit test.
  void drop_dead() const {
    while (!heap_.empty()) {
      const std::uint64_t key = heap_[0].key;
      if ((key & kCancellableBit) == 0) return;
      const auto slot = static_cast<std::uint32_t>(key & kSlotMask);
      Slot& s = slots_[slot];
      if (!s.state->cancelled) return;
      s.cb.reset();
      s.state.reset();
      free_slots_.push_back(slot);
      remove_root();
    }
  }

  // mutable: empty()/next_time() lazily discard cancelled entries.
  mutable std::vector<Entry> heap_;       ///< 4-ary min-heap of keys
  mutable std::vector<Slot> slots_;       ///< callback storage, recycled
  mutable std::vector<std::uint32_t> free_slots_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace corelite::sim

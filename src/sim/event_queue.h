// A cancellable discrete-event priority queue.
//
// Events are ordered by (time, insertion sequence): ties on time fire in
// the order they were scheduled, which makes simulations deterministic.
// Cancellation is lazy — a cancelled event stays in the heap but is
// skipped when popped.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/units.h"

namespace corelite::sim {

/// Handle to a scheduled event; allows cancellation and liveness queries.
/// Copying the handle shares the underlying event.  A default-constructed
/// handle refers to no event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Prevent the event from firing.  Idempotent; safe on empty handles.
  void cancel() {
    if (state_) state_->cancelled = true;
  }

  /// True if the event is scheduled and has neither fired nor been cancelled.
  [[nodiscard]] bool pending() const { return state_ && !state_->cancelled && !state_->fired; }

 private:
  friend class EventQueue;
  struct State {
    bool cancelled = false;
    bool fired = false;
  };
  explicit EventHandle(std::shared_ptr<State> s) : state_{std::move(s)} {}
  std::shared_ptr<State> state_;
};

/// Min-heap of timed callbacks.  Not thread-safe: the simulation is
/// single-threaded by design (determinism beats parallelism for
/// reproducible network experiments).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` to fire at absolute time `at`.
  EventHandle schedule(SimTime at, Callback cb);

  /// True if no live events remain.  May pop dead (cancelled) entries.
  [[nodiscard]] bool empty() const;

  /// Fire time of the earliest live event; SimTime::infinite() if none.
  [[nodiscard]] SimTime next_time() const;

  /// Pop and run the earliest live event.  Returns its fire time.
  /// Precondition: !empty().
  SimTime run_next();

  /// Number of events ever scheduled (including cancelled ones).
  [[nodiscard]] std::uint64_t scheduled_count() const { return next_seq_; }

  /// Drop every pending event.
  void clear();

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;
    Callback cb;
    std::shared_ptr<EventHandle::State> state;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_dead() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace corelite::sim

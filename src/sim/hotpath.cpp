#include "sim/hotpath.h"

#include <atomic>

namespace corelite::sim {

namespace {

struct AtomicCounters {
  std::atomic<std::uint64_t> exp_calls{0};
  std::atomic<std::uint64_t> exp_cache_hits{0};
  std::atomic<std::uint64_t> pow_calls{0};
  std::atomic<std::uint64_t> pow_cache_hits{0};
  std::atomic<std::uint64_t> rng_draws{0};
  std::atomic<std::uint64_t> observer_dispatches{0};
  std::atomic<std::uint64_t> series_appends{0};
};

AtomicCounters g_aggregate;

}  // namespace

void flush_hotpath_counters() {
  HotPathCounters& c = hotpath_counters();
  g_aggregate.exp_calls.fetch_add(c.exp_calls, std::memory_order_relaxed);
  g_aggregate.exp_cache_hits.fetch_add(c.exp_cache_hits, std::memory_order_relaxed);
  g_aggregate.pow_calls.fetch_add(c.pow_calls, std::memory_order_relaxed);
  g_aggregate.pow_cache_hits.fetch_add(c.pow_cache_hits, std::memory_order_relaxed);
  g_aggregate.rng_draws.fetch_add(c.rng_draws, std::memory_order_relaxed);
  g_aggregate.observer_dispatches.fetch_add(c.observer_dispatches, std::memory_order_relaxed);
  g_aggregate.series_appends.fetch_add(c.series_appends, std::memory_order_relaxed);
  c = HotPathCounters{};
}

HotPathCounters aggregated_hotpath_counters() {
  HotPathCounters out = hotpath_counters();
  out.exp_calls += g_aggregate.exp_calls.load(std::memory_order_relaxed);
  out.exp_cache_hits += g_aggregate.exp_cache_hits.load(std::memory_order_relaxed);
  out.pow_calls += g_aggregate.pow_calls.load(std::memory_order_relaxed);
  out.pow_cache_hits += g_aggregate.pow_cache_hits.load(std::memory_order_relaxed);
  out.rng_draws += g_aggregate.rng_draws.load(std::memory_order_relaxed);
  out.observer_dispatches += g_aggregate.observer_dispatches.load(std::memory_order_relaxed);
  out.series_appends += g_aggregate.series_appends.load(std::memory_order_relaxed);
  return out;
}

void reset_hotpath_counters() {
  hotpath_counters() = HotPathCounters{};
  g_aggregate.exp_calls.store(0, std::memory_order_relaxed);
  g_aggregate.exp_cache_hits.store(0, std::memory_order_relaxed);
  g_aggregate.pow_calls.store(0, std::memory_order_relaxed);
  g_aggregate.pow_cache_hits.store(0, std::memory_order_relaxed);
  g_aggregate.rng_draws.store(0, std::memory_order_relaxed);
  g_aggregate.observer_dispatches.store(0, std::memory_order_relaxed);
  g_aggregate.series_appends.store(0, std::memory_order_relaxed);
}

}  // namespace corelite::sim

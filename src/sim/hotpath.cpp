#include "sim/hotpath.h"

#include <atomic>
#include <cstddef>

namespace corelite::sim {

namespace {

// Every counter field, in declaration order.  flush/aggregate/reset walk
// this table so adding a counter is a two-line change (struct + here).
constexpr std::uint64_t HotPathCounters::* kFields[] = {
    &HotPathCounters::exp_calls,        &HotPathCounters::exp_cache_hits,
    &HotPathCounters::pow_calls,        &HotPathCounters::pow_cache_hits,
    &HotPathCounters::rng_draws,        &HotPathCounters::observer_dispatches,
    &HotPathCounters::series_appends,   &HotPathCounters::wheel_inserts,
    &HotPathCounters::wheel_cascades,   &HotPathCounters::heap_inserts,
    &HotPathCounters::batch_drains,     &HotPathCounters::batch_drained,
    &HotPathCounters::lp_barriers,      &HotPathCounters::cross_lp_events,
    &HotPathCounters::mailbox_flushes,  &HotPathCounters::lookahead_ns,
};
constexpr std::size_t kNumFields = sizeof(kFields) / sizeof(kFields[0]);

std::atomic<std::uint64_t> g_aggregate[kNumFields];

}  // namespace

void flush_hotpath_counters() {
  HotPathCounters& c = hotpath_counters();
  for (std::size_t i = 0; i < kNumFields; ++i) {
    g_aggregate[i].fetch_add(c.*kFields[i], std::memory_order_relaxed);
  }
  c = HotPathCounters{};
}

HotPathCounters aggregated_hotpath_counters() {
  HotPathCounters out = hotpath_counters();
  for (std::size_t i = 0; i < kNumFields; ++i) {
    out.*kFields[i] += g_aggregate[i].load(std::memory_order_relaxed);
  }
  return out;
}

void reset_hotpath_counters() {
  hotpath_counters() = HotPathCounters{};
  for (std::size_t i = 0; i < kNumFields; ++i) {
    g_aggregate[i].store(0, std::memory_order_relaxed);
  }
}

}  // namespace corelite::sim

// Experiment-time event registry for the fluid fast-forward engine.
//
// Under fast-forward the engine clock stays continuous and the skipped
// time accumulates in Simulator::exp_offset(), so anything pinned to an
// absolute *experiment* time (workload activity-window starts/stops)
// cannot sit in the engine queue at a fixed engine timestamp — a jump
// would leave it stranded in the compressed-out span.  TimeWarp keeps
// those callbacks in its own (experiment-time, seq) min-heap and mirrors
// only the earliest one into the engine queue as a cancellable event,
// re-aimed whenever the controller advances the offset.  The heap top
// doubles as the controller's "next workload boundary": no jump ever
// crosses it, so registered callbacks fire exactly once at their
// experiment time (translated to the engine clock of that moment).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <vector>

#include "sim/simulator.h"
#include "sim/units.h"

namespace corelite::sim::fluid {

class TimeWarp {
 public:
  explicit TimeWarp(Simulator& sim) : sim_{sim} {}

  TimeWarp(const TimeWarp&) = delete;
  TimeWarp& operator=(const TimeWarp&) = delete;

  /// Schedule `fn` at absolute experiment time `t_exp` (not in the
  /// past).  Entries registered at the same experiment time fire in
  /// registration order.
  void at_exp(SimTime t_exp, std::function<void()> fn);

  /// Earliest registered experiment time; infinite when none.  This is
  /// the boundary the fluid controller must not jump across.
  [[nodiscard]] SimTime next_boundary() const {
    return heap_.empty() ? SimTime::infinite() : heap_.front().at;
  }

  /// Re-aim the mirrored engine event after the controller advanced the
  /// experiment-time offset.
  void on_offset_advanced() { arm(); }

  /// Monotonic count of entries fired so far.  The fluid controller
  /// compares it between checks: any workload boundary firing
  /// invalidates the measurement window in progress (a window must
  /// never straddle a workload change — a freshly started flow still
  /// ramping below the quantization slack would otherwise be
  /// extrapolated at near-zero).
  [[nodiscard]] std::uint64_t fired_count() const { return fired_; }

 private:
  struct Entry {
    SimTime at;         ///< experiment time
    std::uint64_t seq;  ///< registration order tie-break
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      return a.at > b.at || (a.at == b.at && a.seq > b.seq);
    }
  };

  /// Engine time at which the heap-top entry is due, given the current
  /// offset.  Used identically by arm() and fire_due() so the due test
  /// at fire time cannot disagree with the scheduled time by a rounding
  /// ulp.
  [[nodiscard]] SimTime engine_due(const Entry& e) const {
    return std::max(sim_.now(), e.at - sim_.exp_offset());
  }

  void arm();
  void fire_due();

  Simulator& sim_;
  std::vector<Entry> heap_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t fired_ = 0;
  EventHandle armed_;
  SimTime armed_at_ = SimTime::infinite();  ///< engine time of armed_
};

}  // namespace corelite::sim::fluid

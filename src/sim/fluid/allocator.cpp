#include "sim/fluid/allocator.h"

#include <cassert>
#include <cmath>

namespace corelite::sim::fluid {
namespace {

// Residual weight sums below this are treated as "no flow left on the
// link"; levels within the relative slack of the round minimum freeze
// together, so FP ties cannot split one logical freezing step into an
// unbounded number of rounds.
constexpr double kWeightEps = 1e-12;
constexpr double kLevelSlack = 1e-9;

[[nodiscard]] double freeze_threshold(double level) {
  return level * (1.0 + kLevelSlack) + 1e-12;
}

}  // namespace

std::vector<double> water_fill(const std::vector<double>& link_capacities,
                               const std::vector<AllocFlow>& flows) {
  const std::size_t n = flows.size();
  const std::size_t m = link_capacities.size();
  std::vector<double> rate(n, 0.0);
  std::vector<char> frozen(n, 0);
  std::vector<double> rem = link_capacities;
  std::vector<double> wsum(m, 0.0);

  for (const AllocFlow& f : flows) {
    assert(f.weight > 0.0 && "water_fill: weights must be positive");
    assert(f.demand >= 0.0 && "water_fill: demands must be non-negative");
    for (std::uint32_t l : f.links) {
      assert(l < m && "water_fill: link index out of range");
      wsum[l] += f.weight;
    }
  }

  std::size_t left = n;
  while (left > 0) {
    // The next constraint hit while raising the normalized level
    // rate/weight uniformly: either a link saturates or a flow's demand
    // cap is reached, whichever happens at the lower level.
    double link_level = std::numeric_limits<double>::infinity();
    for (std::size_t l = 0; l < m; ++l) {
      if (wsum[l] > kWeightEps) {
        link_level = std::min(link_level, std::max(rem[l], 0.0) / wsum[l]);
      }
    }
    double demand_level = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) demand_level = std::min(demand_level, flows[i].demand / flows[i].weight);
    }

    if (demand_level <= link_level) {
      if (!std::isfinite(demand_level)) {
        // No binding link and unbounded demand: the remaining flows are
        // unconstrained.  Hand back their (infinite) demands verbatim.
        for (std::size_t i = 0; i < n; ++i) {
          if (!frozen[i]) rate[i] = flows[i].demand;
        }
        break;
      }
      const double thr = freeze_threshold(demand_level);
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i] || flows[i].demand / flows[i].weight > thr) continue;
        rate[i] = flows[i].demand;
        frozen[i] = 1;
        --left;
        for (std::uint32_t l : flows[i].links) {
          rem[l] -= rate[i];
          wsum[l] -= flows[i].weight;
        }
      }
    } else {
      const double thr = freeze_threshold(link_level);
      std::vector<char> binding(m, 0);
      for (std::size_t l = 0; l < m; ++l) {
        binding[l] = wsum[l] > kWeightEps && std::max(rem[l], 0.0) / wsum[l] <= thr;
      }
      for (std::size_t i = 0; i < n; ++i) {
        if (frozen[i]) continue;
        bool hits = false;
        for (std::uint32_t l : flows[i].links) hits = hits || binding[l] != 0;
        if (!hits) continue;
        rate[i] = flows[i].weight * link_level;
        frozen[i] = 1;
        --left;
        for (std::uint32_t l : flows[i].links) {
          rem[l] -= rate[i];
          wsum[l] -= flows[i].weight;
        }
      }
    }
  }
  return rate;
}

}  // namespace corelite::sim::fluid

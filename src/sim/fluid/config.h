// Tuning knobs and result counters for the hybrid fluid fast-forward
// engine (see docs/architecture.md, "Fluid fast-forward").
//
// The engine watches per-flow delivery rates while the packet-level
// simulation runs; once every tracked rate has sat inside a relative
// band for a dwell window AND the measured rates agree with the
// analytic weighted max-min allocation, the remainder of the phase is
// compressed into one experiment-time jump with synthesized accounting.
#pragma once

#include <cstdint>

#include "sim/units.h"

namespace corelite::sim::fluid {

struct FluidConfig {
  /// Master switch.  Off means the controller is never constructed and
  /// every code path is bit-identical to the pure packet engine.
  bool enabled = false;

  /// Detect and report steady phases but never jump.  Used by the
  /// scale bench to attribute how much of a packet-mode row was spent
  /// in fast-forwardable state.
  bool observe_only = false;

  /// Cadence of the convergence detector.  Deliberately not a round
  /// multiple of the 100 ms epoch/sampler periods so the check tick
  /// never ties with existing periodic events.  Long enough that a
  /// moderate-rate flow delivers tens of packets per tick — the band
  /// test reads counter deltas, so the tick must integrate enough
  /// packets for a rate to be meaningful at all.
  TimeDelta check_period = TimeDelta::millis(213);

  /// Smoothing factor for the per-flow delivery-rate EWMAs.
  double ewma_alpha = 0.25;

  /// Relative band: a flow is "steady" when its instantaneous rate sits
  /// within band * max(ewma, rate_floor_pps) of its EWMA.
  double band = 0.12;

  /// Consecutive in-band checks required before a phase counts as
  /// converged.
  int dwell_checks = 6;

  /// Minimum span of in-band measurement before a jump (isolated
  /// single-tick band excursions don't reset the window; two in a row
  /// do).  The synthesized fluid rates are counter means over this
  /// window, so it must integrate several control-loop oscillation
  /// periods — the window mean is what the packet engine would have
  /// delivered, while an instantaneous EWMA samples one oscillation
  /// phase.
  TimeDelta measure_window = TimeDelta::seconds(25.6);

  /// Jumps shorter than this are not worth the synthesis bookkeeping;
  /// the packet engine just runs through them.
  TimeDelta min_skip = TimeDelta::seconds(1.0);

  /// The jump lands this far before the next workload boundary so the
  /// packet engine re-materializes and absorbs the transient with real
  /// packets in flight.
  TimeDelta margin = TimeDelta::millis(250);

  /// Flows whose delivery EWMA is below this (packets/s) are too sparse
  /// for a per-flow band test; they are covered by the aggregate check.
  double rate_floor_pps = 2.0;

  /// Counter-quantization allowance: a tick that delivers N packets can
  /// only ever measure a rate on a 1/dt grid, so every band tolerance
  /// gets this many packets per tick of slack on top of the relative
  /// band.  Without it a low-rate flow (a handful of packets per tick)
  /// could never test as steady no matter how converged it is.  The
  /// per-flow band test scales this by sqrt(2 ln n_flows) — the
  /// expected maximum of n noise draws — so large populations don't
  /// trip on one unlucky flow every tick.
  double quant_slack_pkts = 2.0;

  /// Absolute rate scale (packets/s) separating "major" from "minor"
  /// flows in the half-window drift gate.  Matches the fidelity
  /// cross-check's denominator floor: per-flow error is judged relative
  /// to max(rate, 25 pps), so below this scale the gate's absolute
  /// resolution (2% of 25 pps = 0.5 pps whole-run) exceeds the bias a
  /// capped jump can inject from a minor flow's control-loop
  /// oscillation.  Major flows keep the tight noise-only tolerance.
  double drift_major_pps = 25.0;

  /// Extra relative drift tolerance for minor flows: their half-window
  /// means may differ by this fraction of max(mean, rate_floor_pps) on
  /// top of the noise tolerance.  Adaptive (LIMD) flows near the rate
  /// floor oscillate with amplitude comparable to their mean — a real,
  /// steady property, not a transient — and with thousands of such
  /// flows the AND-over-flows gate would otherwise see a fresh
  /// first-time excursion every round and never pass.  Sign persistence
  /// still catches minor flows in a sustained monotone ramp beyond this
  /// fraction per window.
  double drift_minor_frac = 0.5;

  /// The measured rates must match the analytic water-filling
  /// allocation within this relative band before a jump is taken —
  /// the "converged to the *right* fixed point" oracle.  0 disables.
  double agreement_band = 0.35;

  /// A single jump extrapolates at most this many measurement windows
  /// of experiment time; longer steady spans become several jumps with
  /// fresh measurement between them, re-anchoring the fluid rates to
  /// the packet engine and bounding accumulated bias.  0 = unlimited.
  double max_extrapolation_windows = 3.0;

  /// Grid for the cumulative-service samples synthesized across a jump
  /// (the samples the periodic tracker sampler would have recorded).
  /// Runners overwrite this with the spec's cumulative_sample_period.
  /// Ignored when the tracker runs counters-only.
  TimeDelta synth_sample_period = TimeDelta::seconds(1.0);
};

/// Per-run outcome counters, surfaced through ScenarioResult.
struct FluidStats {
  bool enabled = false;
  double fast_forwarded_sec = 0.0;   ///< experiment time skipped by jumps
  double steady_detected_sec = 0.0;  ///< packet-mode time spent converged
  std::uint64_t jumps = 0;
  std::uint64_t events_elided_est = 0;  ///< measured-event-rate * skipped time
  std::uint64_t synth_delivered = 0;
  std::uint64_t synth_sent = 0;
  std::uint64_t synth_dropped = 0;

  // Certification-pipeline counters (always maintained; deterministic).
  // An "attempt" is a tick that reached the gate cascade with full dwell
  // and a complete measurement window; each reject names the gate that
  // stopped it.  mean dwell at acceptance = cert_dwell_at_accept_sum /
  // jumps.  These feed BENCH_scale.json fluid rows so detector
  // auto-tuning has a measured baseline.
  std::uint64_t cert_attempts = 0;
  std::uint64_t cert_reject_min_skip = 0;
  std::uint64_t cert_reject_drift = 0;
  std::uint64_t cert_reject_agreement = 0;
  double cert_dwell_at_accept_sum = 0.0;
};

}  // namespace corelite::sim::fluid

// The hybrid fluid fast-forward controller.
//
// Runs a periodic convergence detector beside the packet-level engine:
// per-flow delivery-rate EWMAs must sit inside a relative band for a
// dwell window (sparse flows are covered by an aggregate test), and the
// measured rates must agree with the analytic weighted max-min
// allocation (allocator.h) — converged, and converged to the right
// fixed point.  Once both hold, the remainder of the steady phase is
// compressed: the experiment-time offset jumps to just short of the
// next workload boundary (TimeWarp heap top) while per-flow
// sent/delivered/dropped counters and the allotted-rate/cumulative
// TimeSeries are synthesized from the flows' measurement-window mean
// rates with deterministic fractional-packet residues.  The window mean
// — counters integrated over several control-loop oscillation periods —
// is the packet engine's own steady behaviour; the analytic allocation
// is only the oracle certifying it converged to the RIGHT fixed point.  The engine clock never moves backward or
// skips, so queue contents, rate-estimator timestamps and packets in
// flight stay valid — steady state is time-translation invariant, which
// is exactly the property the detector certified.
#pragma once

#include <cstdint>
#include <vector>

#include "net/types.h"
#include "sim/fluid/allocator.h"
#include "sim/fluid/config.h"
#include "sim/fluid/probe.h"
#include "sim/fluid/warp.h"
#include "sim/simulator.h"
#include "stats/flow_tracker.h"

namespace corelite::sim::fluid {

class FluidController {
 public:
  FluidController(Simulator& sim, TimeWarp& warp, stats::FlowTracker& tracker, FluidConfig cfg,
                  SimTime experiment_end);
  ~FluidController() { tick_handle_.cancel(); }

  FluidController(const FluidController&) = delete;
  FluidController& operator=(const FluidController&) = delete;

  /// Directed-link capacities in packets/s; flow link sets index into
  /// this vector.  Call before start().
  void set_link_capacities(std::vector<double> caps_pps) { caps_ = std::move(caps_pps); }

  /// Register a flow with its weight and the capacity-vector indices of
  /// the links it crosses.  Call before start().
  void add_flow(net::FlowId id, double weight, std::vector<std::uint32_t> links);

  /// Arm the periodic convergence check.  Call once, before the run.
  void start();

  /// Attach a certification flight recorder.  Pure observation — the
  /// controller's decisions are identical with or without one.
  void set_probe(FluidProbe* probe) { probe_ = probe; }

  [[nodiscard]] const FluidStats& stats() const { return stats_; }

 private:
  struct Tracked {
    net::FlowId id = 0;
    double weight = 1.0;
    // Counter snapshots from the previous check tick.
    std::uint64_t last_delivered = 0;
    std::uint64_t last_sent = 0;
    std::uint64_t last_dropped = 0;
    // Rate EWMAs in packets/s; negative means "no measurement yet".
    double ewma_delivered = -1.0;
    double ewma_sent = 0.0;
    double ewma_dropped = 0.0;
    // EWMA of squared tick-rate deviations — an empirical per-flow
    // noise-variance estimate.  CBR-fed deterministic droppers measure
    // tiny variance, probabilistic droppers large; the drift gate's
    // tolerance scales with it instead of assuming one noise model.
    double var_delivered = -1.0;
    // Counter snapshots from the start of the current in-band
    // measurement window; (last_* - win_*) / window gives the fluid
    // rates a jump synthesizes from.
    std::uint64_t win_delivered = 0;
    std::uint64_t win_sent = 0;
    std::uint64_t win_dropped = 0;
    // Mid-window snapshots for the drift test: the window's first- and
    // second-half mean rates must agree before extrapolating.
    std::uint64_t mid_delivered = 0;
    std::uint64_t mid_sent = 0;
    std::uint64_t mid_dropped = 0;
    // Sign of the last half-window disagreement (+1/-1, 0 = none).  A
    // ramp repeats the same sign across slid windows — keep waiting; a
    // slow oscillation flips sign — the full-window mean averages it
    // out, so it is safe to extrapolate.
    int drift_sign = 0;
    // Sticky within a steady phase: set on the first sign flip.  A slow
    // oscillator (period >> window) holds each sign for several slid
    // windows; without the certificate it would alternate
    // tolerated/failed forever and a large population would never pass
    // the AND over flows.  Cleared with drift_sign on window reset, so
    // a flow that later starts a genuine ramp is re-examined from
    // scratch after the next phase change.
    bool oscillatory = false;
    // Window-mean rates (packets/s), filled right before a jump.
    double mean_delivered = 0.0;
    double mean_sent = 0.0;
    double mean_dropped = 0.0;
    // Fractional packets carried across jumps so long phases synthesize
    // exactly rate*time packets in total, deterministically.
    double res_delivered = 0.0;
    double res_sent = 0.0;
    double res_dropped = 0.0;
  };

  void tick();
  /// Reset the measurement window to start at `t` with current counters.
  void reset_window(SimTime t);
  /// Per-flow drift test at integrated resolution: the window's first-
  /// and second-half mean rates must agree.  Tick-scale band tests
  /// cannot see slow per-flow redistribution under a flat aggregate
  /// (their quantization slack dwarfs it); half-window means can.
  /// Updates each flow's drift_sign; a disagreement whose sign flipped
  /// since the last one is classified as oscillation and tolerated.
  [[nodiscard]] bool halves_agree(SimTime t);
  /// Slide the window forward so its second half becomes the new first
  /// half — re-measuring after a drift failure without starting over.
  void slide_window();
  /// Fill each flow's window-mean rates, solve the water-filling
  /// allocation for the measured demands, and gate on the means
  /// agreeing with it (within cfg_.agreement_band).
  [[nodiscard]] bool solve_allocation(double window_sec);
  void jump(SimTime target, bool capped);
  void emit_cert(FluidCertEvent::Kind kind, SimTime t, double window_sec, double extra = 0.0);

  Simulator& sim_;
  TimeWarp& warp_;
  stats::FlowTracker& tracker_;
  FluidConfig cfg_;
  SimTime end_;

  std::vector<Tracked> flows_;
  std::vector<AllocFlow> alloc_flows_;  ///< parallel to flows_; demand set per query
  std::vector<double> alloc_;  ///< last solve_allocation() result (fluid rates, pkt/s)
  std::vector<double> caps_;
  std::vector<double> link_load_;  ///< scratch: measured per-link totals
  PeriodicHandle tick_handle_;
  SimTime last_tick_ = SimTime::zero();
  SimTime win_start_ = SimTime::zero();  ///< current measurement-window origin
  SimTime win_mid_ = SimTime::zero();    ///< mid-window snapshot time
  bool mid_set_ = false;
  std::uint64_t last_events_ = 0;
  double event_rate_ = -1.0;  ///< engine events/s EWMA, for the elision estimate
  int dwell_ = 0;
  int out_band_ = 0;  ///< consecutive out-of-band ticks; >=2 resets the window
  /// The last jump was cut short by the extrapolation cap, not a
  /// workload boundary: the engine re-materialized *inside* the same
  /// certified steady phase, so the next measurement is a re-anchor
  /// (half window) rather than a from-scratch detection.  Any
  /// out-of-band excursion or boundary firing clears it — those mean
  /// the phase certificate no longer stands.
  bool reanchor_ = false;
  std::uint64_t warp_fired_seen_ = 0;  ///< warp fired_count() at last window reset
  FluidProbe* probe_ = nullptr;
  FluidStats stats_;
};

}  // namespace corelite::sim::fluid

// Analytic weighted max-min allocation by water-filling.
//
// Given directed link capacities and flows with (weight, demand, link
// set), computes the unique weighted max-min fair rate vector: the
// normalized level rate/weight is raised uniformly until either a link
// saturates (freezing every flow crossing it) or a flow hits its demand
// cap (freezing just that flow), and the freed capacity is re-filled
// among the rest.  This is the fixed point Corelite/CSFQ converge to in
// steady state (paper Section 2), which makes it the fluid engine's
// oracle: a measured rate vector that matches this allocation is
// converged to the *right* place, not just to *a* place.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace corelite::sim::fluid {

/// One flow as the allocator sees it.  `links` are indices into the
/// capacity vector handed to water_fill(); a flow may cross any number
/// of them (including none, in which case only its demand binds).
struct AllocFlow {
  double weight = 1.0;
  double demand = std::numeric_limits<double>::infinity();  ///< rate cap, same unit as capacities
  std::vector<std::uint32_t> links;
};

/// Weighted max-min rates, one per input flow (same order).  Capacities
/// and demands share one unit (the engine uses packets/s).  Weights
/// must be positive; demands non-negative (0 ⇒ the flow gets 0 and
/// consumes nothing).
std::vector<double> water_fill(const std::vector<double>& link_capacities,
                               const std::vector<AllocFlow>& flows);

}  // namespace corelite::sim::fluid

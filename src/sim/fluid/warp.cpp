#include "sim/fluid/warp.h"

#include <cassert>
#include <utility>

namespace corelite::sim::fluid {

void TimeWarp::at_exp(SimTime t_exp, std::function<void()> fn) {
  assert(t_exp >= sim_.exp_now() && "TimeWarp: cannot schedule in the experiment past");
  heap_.push_back(Entry{t_exp, next_seq_++, std::move(fn)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  arm();
}

void TimeWarp::arm() {
  const SimTime want = heap_.empty() ? SimTime::infinite() : engine_due(heap_.front());
  if (want == armed_at_ && armed_.pending()) return;
  armed_.cancel();
  armed_at_ = want;
  if (!want.is_finite()) return;
  armed_ = sim_.at(want, [this] { fire_due(); });
}

void TimeWarp::fire_due() {
  armed_at_ = SimTime::infinite();
  // Callbacks may register follow-up entries (a window start schedules
  // its stop); the loop re-checks the top after every invocation, so a
  // follow-up due at this same instant still fires inside this event.
  while (!heap_.empty() && engine_due(heap_.front()) <= sim_.now()) {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Entry e = std::move(heap_.back());
    heap_.pop_back();
    ++fired_;
    e.fn();
  }
  arm();
}

}  // namespace corelite::sim::fluid

// Introspection hook for the fluid fast-forward controller's
// certification pipeline.
//
// Every certify/reject/re-anchor decision the controller takes is
// surfaced as a FluidCertEvent so a flight recorder (see
// src/telemetry/engine_probe.h) can log dwell progress, gate outcomes
// and jump spans — the data the ROADMAP's detector auto-tuning needs.
// The probe is pure observation: the controller behaves identically
// with or without one attached, and the deterministic certification
// counters in FluidStats are maintained unconditionally.
#pragma once

#include <cstdint>

namespace corelite::sim::fluid {

struct FluidCertEvent {
  enum class Kind : std::uint8_t {
    kWindowReset,       ///< sustained out-of-band excursion voided the window
    kBoundaryReset,     ///< a workload boundary fired mid-measurement
    kAttempt,           ///< dwell + window complete; gates about to run
    kRejectMinSkip,     ///< remaining span too short to be worth a jump
    kRejectDrift,       ///< half-window means disagree (window slid)
    kRejectAgreement,   ///< measured rates fail the water-filling oracle
    kAccept,            ///< jump taken
    kReanchor,          ///< the accepted jump was extrapolation-capped
  };

  Kind kind = Kind::kAttempt;
  double t_sec = 0.0;       ///< experiment time of the decision
  int dwell = 0;            ///< consecutive in-band checks at decision time
  double window_sec = 0.0;  ///< measurement-window span at decision time
  /// Kind-specific payload: kAccept/kReanchor carry the jump span in
  /// seconds; kRejectMinSkip carries the (too-short) remaining span.
  double extra = 0.0;
};

class FluidProbe {
 public:
  virtual ~FluidProbe() = default;
  virtual void on_cert_event(const FluidCertEvent& e) = 0;
};

}  // namespace corelite::sim::fluid
